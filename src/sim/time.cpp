#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace coeff::sim {

std::string to_string(Time t) {
  const double ns = static_cast<double>(t.ns());
  char buf[64];
  if (std::llabs(t.ns()) >= 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fs", ns / 1e9);
  } else if (std::llabs(t.ns()) >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fms", ns / 1e6);
  } else if (std::llabs(t.ns()) >= 1'000) {
    std::snprintf(buf, sizeof buf, "%.3fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(t.ns()));
  }
  return buf;
}

}  // namespace coeff::sim
