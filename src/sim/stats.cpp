#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace coeff::sim {

void StreamingStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void StreamingStats::merge(const StreamingStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void PercentileTracker::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
  moments_.add(x);
}

double PercentileTracker::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  if (q < 0.0 || q > 100.0) {
    throw std::invalid_argument("percentile: q out of [0,100]");
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  // Nearest-rank method.
  const auto n = samples_.size();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q / 100.0 * static_cast<double>(n)));
  return samples_[rank == 0 ? 0 : rank - 1];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("Histogram: need lo < hi and bins > 0");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto i = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                          static_cast<double>(counts_.size()));
  ++counts_[std::min(i, counts_.size() - 1)];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[128];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(counts_[i] * width / peak);
    std::snprintf(line, sizeof line, "%10.3f | ", bin_lo(i));
    out += line;
    out.append(bar, '#');
    std::snprintf(line, sizeof line, " %llu\n",
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
  }
  return out;
}

}  // namespace coeff::sim
