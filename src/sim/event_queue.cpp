#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace coeff::sim {

std::uint64_t EventQueue::push(Time at, EventFn fn) {
  const std::uint64_t token = next_seq_++;
  alive_.push_back(true);
  heap_.push_back(Entry{at, token, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return token;
}

bool EventQueue::cancel(std::uint64_t token) {
  if (token >= next_seq_ || !alive_[token]) return false;
  alive_[token] = false;
  --live_;
  return true;
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty() && !alive_[heap_.front().seq]) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventQueue::empty() const {
  drop_cancelled_head();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  drop_cancelled_head();
  assert(!heap_.empty());
  return heap_.front().at;
}

std::pair<Time, EventFn> EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry top = std::move(heap_.back());
  heap_.pop_back();
  alive_[top.seq] = false;
  --live_;
  return {top.at, std::move(top.fn)};
}

}  // namespace coeff::sim
