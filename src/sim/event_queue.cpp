#include "sim/event_queue.hpp"

#include <cassert>
#include <memory>

namespace coeff::sim {

std::uint64_t EventQueue::push(Time at, EventFn fn) {
  const std::uint64_t token = next_seq_++;
  heap_.push(Entry{at, token, std::make_shared<EventFn>(std::move(fn))});
  ++live_;
  return token;
}

bool EventQueue::cancel(std::uint64_t token) {
  if (token >= next_seq_) return false;
  if (!cancelled_.insert(token).second) return false;
  --live_;
  return true;
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().seq);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_cancelled_head();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  drop_cancelled_head();
  assert(!heap_.empty());
  return heap_.top().at;
}

std::pair<Time, EventFn> EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty());
  Entry top = heap_.top();
  heap_.pop();
  --live_;
  return {top.at, std::move(*top.fn)};
}

}  // namespace coeff::sim
