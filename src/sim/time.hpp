// Simulation time: a strong integral type with nanosecond resolution.
//
// FlexRay timing is defined in macroticks (1 us in the paper's
// configuration) and minislots (multiples of macroticks); nanosecond
// resolution leaves ample headroom for sub-macrotick bookkeeping while
// keeping arithmetic exact (no floating point drift over long runs).
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace coeff::sim {

/// A point or span on the simulation clock, in integer nanoseconds.
///
/// Time is a value type: copyable, totally ordered, and closed under
/// addition/subtraction and integer scaling. Use the `nanos`/`micros`/
/// `millis`/`seconds` factories rather than the raw constructor.
class Time {
 public:
  constexpr Time() = default;
  constexpr explicit Time(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double as_us() const {
    return static_cast<double>(ns_) / 1e3;
  }
  [[nodiscard]] constexpr double as_ms() const {
    return static_cast<double>(ns_) / 1e6;
  }
  [[nodiscard]] constexpr double as_seconds() const {
    return static_cast<double>(ns_) / 1e9;
  }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time rhs) {
    ns_ += rhs.ns_;
    return *this;
  }
  constexpr Time& operator-=(Time rhs) {
    ns_ -= rhs.ns_;
    return *this;
  }

  friend constexpr Time operator+(Time a, Time b) { return Time{a.ns_ + b.ns_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ns_ - b.ns_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) {
    return Time{a.ns_ * k};
  }
  friend constexpr Time operator*(std::int64_t k, Time a) { return a * k; }
  /// Truncating integral division: how many whole `b` spans fit in `a`.
  friend constexpr std::int64_t operator/(Time a, Time b) {
    return a.ns_ / b.ns_;
  }
  /// Remainder of `a` modulo the span `b`.
  friend constexpr Time operator%(Time a, Time b) { return Time{a.ns_ % b.ns_}; }

  [[nodiscard]] static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }
  [[nodiscard]] static constexpr Time zero() { return Time{0}; }

 private:
  std::int64_t ns_ = 0;
};

[[nodiscard]] constexpr Time nanos(std::int64_t n) { return Time{n}; }
[[nodiscard]] constexpr Time micros(std::int64_t n) { return Time{n * 1'000}; }
[[nodiscard]] constexpr Time millis(std::int64_t n) {
  return Time{n * 1'000'000};
}
[[nodiscard]] constexpr Time seconds(std::int64_t n) {
  return Time{n * 1'000'000'000};
}

/// Human-readable rendering with an adaptive unit, e.g. "4.7ms".
[[nodiscard]] std::string to_string(Time t);

}  // namespace coeff::sim
