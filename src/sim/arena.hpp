// Bump allocator for per-cycle transients.
//
// The compiled cycle walk stages transmission decisions and verdict
// buffers that live for exactly one communication cycle. A bump arena
// hands out trivially-destructible storage with a pointer increment
// and reclaims everything with a single reset at the cycle boundary,
// so the hot loop never touches the general-purpose heap after the
// first cycle warms the chunk list.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace coeff::sim {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialised storage for `n` objects of T. T must be trivially
  /// destructible: reset() rewinds the bump pointer without running
  /// destructors.
  template <typename T>
  T* allocate(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena storage is reclaimed without destructors");
    if (n == 0) return nullptr;
    const std::size_t bytes = n * sizeof(T);
    void* p = allocate_bytes(bytes, alignof(T));
    return static_cast<T*>(p);
  }

  /// Value-initialised array of `n` objects of T.
  template <typename T>
  T* allocate_zeroed(std::size_t n) {
    T* p = allocate<T>(n);
    for (std::size_t i = 0; i < n; ++i) ::new (p + i) T{};
    return p;
  }

  /// Rewind all chunks; previously returned pointers become invalid.
  /// Chunk storage is retained for reuse.
  void reset() {
    for (auto& chunk : chunks_) chunk.used = 0;
    current_ = 0;
  }

  [[nodiscard]] std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const auto& chunk : chunks_) total += chunk.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void* allocate_bytes(std::size_t bytes, std::size_t align) {
    while (current_ < chunks_.size()) {
      Chunk& chunk = chunks_[current_];
      const std::size_t aligned =
          (chunk.used + align - 1) & ~(align - 1);
      if (aligned + bytes <= chunk.size) {
        chunk.used = aligned + bytes;
        return chunk.data.get() + aligned;
      }
      ++current_;
    }
    const std::size_t size = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
    Chunk chunk;
    chunk.data = std::make_unique<std::byte[]>(size);
    chunk.size = size;
    chunk.used = bytes;
    chunks_.push_back(std::move(chunk));
    current_ = chunks_.size() - 1;
    return chunks_.back().data.get();
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;
};

}  // namespace coeff::sim
