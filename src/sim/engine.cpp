#include "sim/engine.hpp"

#include <stdexcept>

namespace coeff::sim {

std::uint64_t Engine::schedule_at(Time at, EventFn fn) {
  if (at < now_) {
    throw std::invalid_argument("Engine::schedule_at: time " +
                                to_string(at) + " is before now " +
                                to_string(now_));
  }
  return queue_.push(at, std::move(fn));
}

std::uint64_t Engine::schedule_after(Time delay, EventFn fn) {
  if (delay < Time::zero()) {
    throw std::invalid_argument("Engine::schedule_after: negative delay " +
                                to_string(delay));
  }
  return queue_.push(now_ + delay, std::move(fn));
}

std::size_t Engine::run_until(Time deadline) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    auto [at, fn] = queue_.pop();
    now_ = at;
    fn();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  fired_ += n;
  return n;
}

std::size_t Engine::run_to_completion() {
  std::size_t n = 0;
  while (!queue_.empty()) {
    auto [at, fn] = queue_.pop();
    now_ = at;
    fn();
    ++n;
  }
  fired_ += n;
  return n;
}

bool Engine::step() {
  if (queue_.empty()) return false;
  auto [at, fn] = queue_.pop();
  now_ = at;
  fn();
  ++fired_;
  return true;
}

}  // namespace coeff::sim
