// Structured trace recorder.
//
// Components emit typed records (transmission start/end, fault, slack
// steal, deadline miss, ...) tagged with the simulated timestamp. Tests
// and benches filter the log to assert on protocol-level behaviour
// without coupling to component internals. Recording can be disabled
// for long benchmark runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace coeff::sim {

enum class TraceKind : std::uint8_t {
  kCycleStart,
  kSlotStart,
  kTxStart,
  kTxSuccess,
  kTxCorrupted,
  kRetransmissionScheduled,
  kSlackStolen,
  kDeadlineMiss,
  kDeadlineMet,
  kQueueDrop,
  kBerDrift,   ///< monitor detected BER drift; a=cycle, note carries estimate
  kPlanSwap,   ///< online re-plan swapped in; a=cycle, b=total copies, c=degraded
  kLoadShed,   ///< degraded mode shed a dynamic frame; a=message id, b=node
  // Structural fault domain (node/channel topology). All four state
  // transitions are applied at cycle boundaries, so `at` must coincide
  // with the enclosing kCycleStart timestamp (trace.structural-boundary).
  kNodeCrash,     ///< ECU went down; a=node, b=cycle
  kNodeRestart,   ///< ECU reintegrated; a=node, b=cycle
  kChannelDown,   ///< channel blackout began; a=channel, b=cycle
  kChannelUp,     ///< channel recovered; a=channel, b=cycle
  kFailover,      ///< static frame re-homed to surviving channel; a=node,
                  ///< b=slot, c=carrying channel, d=payload bits
  kVoteResolved,  ///< replica vote settled; a=message, b=accepted(0/1),
                  ///< c=clean replicas, d=replica count k
  kTemplateRebuild,  ///< compiled cycle template rebuilt; a=cycle,
                     ///< b=template version, c=trigger (see TemplateRebuildWhy)
  // Mixed-criticality mode-change protocol. Mode swaps happen only at
  // cycle boundaries (trace.mode-change-boundary); sheds only in a
  // degraded mode (trace.shed-outside-degraded); match-up re-admission
  // only after the recovery window has elapsed back in NORMAL
  // (trace.matchup-before-recovery).
  kModeChange,  ///< criticality mode swapped; a=from, b=to, c=cycle,
                ///< d=recovery window (cycles), note carries drift ratio
  kShedByMode,  ///< degraded mode shed a dynamic frame by criticality;
                ///< a=message id, b=node, c=current mode, d=criticality
  kMatchUp,     ///< shed traffic re-admitted after recovery; a=message id,
                ///< b=node, c=cycle, d=criticality
  kInfo,
};

/// Number of TraceKind enumerators (kInfo is last). Keep in sync when
/// adding kinds; the exhaustive-switch test in trace_test.cpp and the
/// trace linter both iterate [0, kTraceKindCount).
inline constexpr int kTraceKindCount = static_cast<int>(TraceKind::kInfo) + 1;

[[nodiscard]] const char* to_string(TraceKind k);

struct TraceRecord {
  Time at;
  TraceKind kind;
  // Generic integer tags; meaning depends on kind (documented at the
  // emission site): typically node id, frame/message id, channel, and
  // (for transmissions) payload bits in `d`.
  std::int64_t a = -1;
  std::int64_t b = -1;
  std::int64_t c = -1;
  std::int64_t d = -1;
  std::string note;
};

class Trace {
 public:
  /// Recording defaults to on; long benchmark runs disable it.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void emit(Time at, TraceKind kind, std::int64_t a = -1, std::int64_t b = -1,
            std::int64_t c = -1, std::int64_t d = -1, std::string note = {});

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t count(TraceKind kind) const;
  void clear() { records_.clear(); }

  /// Render the whole trace, one line per record (debugging aid).
  [[nodiscard]] std::string dump() const;

 private:
  std::vector<TraceRecord> records_;
  bool enabled_ = true;
};

}  // namespace coeff::sim
