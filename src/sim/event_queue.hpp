// A deterministic priority queue of timed events.
//
// Events that share a timestamp are delivered in insertion order (FIFO
// tie-break via a monotonically increasing sequence number), which makes
// whole-simulation runs reproducible bit-for-bit under a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace coeff::sim {

/// An event is an opaque callback fired at a simulated instant.
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Enqueue `fn` to fire at absolute time `at`. Returns a token that can
  /// be used to cancel the event before it fires.
  std::uint64_t push(Time at, EventFn fn);

  /// Cancel a pending event. Cancelling an already-fired or unknown token
  /// is a no-op and returns false.
  bool cancel(std::uint64_t token);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Timestamp of the earliest pending event. Precondition: !empty().
  [[nodiscard]] Time next_time() const;

  /// Remove and return the earliest pending event. Precondition: !empty().
  std::pair<Time, EventFn> pop();

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    // Shared (not unique) only so Entry stays copyable for the heap; each
    // callback has exactly one live owner at a time.
    std::shared_ptr<EventFn> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Cancellation is lazy: the token is recorded and the entry discarded
  // when it surfaces at the heap head.
  void drop_cancelled_head() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  mutable std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace coeff::sim
