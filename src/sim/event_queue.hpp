// A deterministic priority queue of timed events.
//
// Events that share a timestamp are delivered in insertion order (FIFO
// tie-break via a monotonically increasing sequence number), which makes
// whole-simulation runs reproducible bit-for-bit under a fixed seed.
//
// The heap stores callbacks by value (no per-event heap allocation
// beyond what the std::function itself may need), and cancellation is
// lazy: a one-bit-per-token liveness map marks cancelled entries, which
// are discarded when they surface at the heap head.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace coeff::sim {

/// An event is an opaque callback fired at a simulated instant.
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Enqueue `fn` to fire at absolute time `at`. Returns a token that can
  /// be used to cancel the event before it fires.
  std::uint64_t push(Time at, EventFn fn);

  /// Cancel a pending event. Cancelling an already-fired, already-
  /// cancelled, or unknown token is a no-op and returns false.
  bool cancel(std::uint64_t token);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Timestamp of the earliest pending event. Precondition: !empty().
  [[nodiscard]] Time next_time() const;

  /// Remove and return the earliest pending event. Precondition: !empty().
  std::pair<Time, EventFn> pop();

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Discard cancelled entries that have surfaced at the heap head.
  void drop_cancelled_head() const;

  // Tokens are issued sequentially, so liveness is a bit per token ever
  // pushed: true while the entry is pending, false once fired or
  // cancelled. An in-heap entry whose bit is clear was cancelled.
  mutable std::vector<Entry> heap_;
  std::vector<bool> alive_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace coeff::sim
