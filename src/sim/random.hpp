// Deterministic pseudo-random number generation for simulations.
//
// xoshiro256** seeded through SplitMix64, per the generators' reference
// implementations (Blackman & Vigna). We avoid std::mt19937 so results
// are identical across standard-library implementations, and we avoid
// std::*_distribution for the same reason.
#pragma once

#include <array>
#include <cstdint>

namespace coeff::sim {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform over the full 64-bit range.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). Precondition: bound > 0. Uses rejection
  /// sampling (Lemire) to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Split off an independent child stream (e.g. one per node) so that
  /// adding draws to one component never perturbs another.
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Philox4x32-10: counter-based generator (Salmon et al., SC'11).
///
/// Unlike the sequential generators above, output depends only on the
/// (key, counter) pair, so any point in the stream can be evaluated in
/// any order — the property the compiled cycle engine needs to batch
/// fault verdicts keyed by (seed, cycle, slot, channel) without
/// replaying every earlier draw. Stateless and cheap to construct.
class Philox4x32 {
 public:
  using Block = std::array<std::uint32_t, 4>;

  constexpr explicit Philox4x32(std::uint64_t key)
      : k0_(static_cast<std::uint32_t>(key)),
        k1_(static_cast<std::uint32_t>(key >> 32)) {}

  /// The 128-bit block for counter (c0, c1) after 10 rounds.
  [[nodiscard]] Block block(std::uint64_t c0, std::uint64_t c1) const;

  /// First 64 bits of the block — enough for one verdict draw.
  [[nodiscard]] std::uint64_t next_u64(std::uint64_t c0,
                                       std::uint64_t c1) const {
    const Block b = block(c0, c1);
    return (static_cast<std::uint64_t>(b[1]) << 32) | b[0];
  }

  /// Uniform double in [0, 1) with 53 bits, matching Rng::uniform01's
  /// bit-discipline ((x >> 11) * 2^-53).
  [[nodiscard]] double uniform01(std::uint64_t c0, std::uint64_t c1) const {
    return static_cast<double>(next_u64(c0, c1) >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p, std::uint64_t c0,
                               std::uint64_t c1) const {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01(c0, c1) < p;
  }

 private:
  std::uint32_t k0_;
  std::uint32_t k1_;
};

}  // namespace coeff::sim
