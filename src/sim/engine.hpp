// Discrete-event simulation engine.
//
// The engine owns the simulated clock and the event queue. Components
// schedule callbacks at absolute or relative times; `run_until` drains
// events in timestamp order, advancing the clock to each event as it
// fires. Within one run the clock never moves backwards.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace coeff::sim {

class Engine {
 public:
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute simulated time `at` (must be >= now()).
  std::uint64_t schedule_at(Time at, EventFn fn);

  /// Schedule `fn` after a relative delay (must be >= 0).
  std::uint64_t schedule_after(Time delay, EventFn fn);

  bool cancel(std::uint64_t token) { return queue_.cancel(token); }

  /// Run events with timestamp <= `deadline`. Returns the number of
  /// events fired. On return the clock reads `deadline` if the queue
  /// drained (or only later events remain), else the last event time.
  std::size_t run_until(Time deadline);

  /// Run until the event queue is empty. Returns the events fired.
  std::size_t run_to_completion();

  /// Fire at most one pending event. Returns false if the queue is empty.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::size_t events_fired() const { return fired_; }

  /// Timestamp of the earliest pending event, or `fallback` when the
  /// queue is empty. Lets callers skip `run_until` calls that would
  /// only advance the clock (the compiled cycle walk elides per-slot
  /// run_until when no event fires inside the slot).
  [[nodiscard]] Time next_event_time(Time fallback = Time::max()) const {
    return queue_.empty() ? fallback : queue_.next_time();
  }

 private:
  EventQueue queue_;
  Time now_ = Time::zero();
  std::size_t fired_ = 0;
};

}  // namespace coeff::sim
