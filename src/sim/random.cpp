#include "sim/random.hpp"

#include <cassert>
#include <cmath>

namespace coeff::sim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  // -log(1 - U) with U in [0,1): argument stays in (0,1], result finite.
  return -std::log1p(-uniform01()) / rate;
}

Rng Rng::split() {
  Rng child(0);
  // Derive the child's state from fresh parent output; the constant
  // offsets keep the child's seed sequence disjoint from direct draws.
  SplitMix64 sm(next_u64() ^ 0xA3EC647659359ACDULL);
  for (auto& word : child.s_) word = sm.next();
  return child;
}

namespace {

// Multipliers and Weyl constants from the Philox reference
// implementation (Random123).
constexpr std::uint32_t kPhiloxM0 = 0xD2511F53U;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57U;
constexpr std::uint32_t kPhiloxW0 = 0x9E3779B9U;
constexpr std::uint32_t kPhiloxW1 = 0xBB67AE85U;

}  // namespace

Philox4x32::Block Philox4x32::block(std::uint64_t c0, std::uint64_t c1) const {
  std::uint32_t x0 = static_cast<std::uint32_t>(c0);
  std::uint32_t x1 = static_cast<std::uint32_t>(c0 >> 32);
  std::uint32_t x2 = static_cast<std::uint32_t>(c1);
  std::uint32_t x3 = static_cast<std::uint32_t>(c1 >> 32);
  std::uint32_t k0 = k0_;
  std::uint32_t k1 = k1_;
  for (int round = 0; round < 10; ++round) {
    const std::uint64_t p0 = static_cast<std::uint64_t>(kPhiloxM0) * x0;
    const std::uint64_t p1 = static_cast<std::uint64_t>(kPhiloxM1) * x2;
    const std::uint32_t y0 =
        static_cast<std::uint32_t>(p1 >> 32) ^ x1 ^ k0;
    const std::uint32_t y1 = static_cast<std::uint32_t>(p1);
    const std::uint32_t y2 =
        static_cast<std::uint32_t>(p0 >> 32) ^ x3 ^ k1;
    const std::uint32_t y3 = static_cast<std::uint32_t>(p0);
    x0 = y0;
    x1 = y1;
    x2 = y2;
    x3 = y3;
    k0 += kPhiloxW0;
    k1 += kPhiloxW1;
  }
  return Block{x0, x1, x2, x3};
}

}  // namespace coeff::sim
