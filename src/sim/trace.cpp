#include "sim/trace.hpp"

#include <cstdio>

namespace coeff::sim {

const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kCycleStart:
      return "cycle_start";
    case TraceKind::kSlotStart:
      return "slot_start";
    case TraceKind::kTxStart:
      return "tx_start";
    case TraceKind::kTxSuccess:
      return "tx_success";
    case TraceKind::kTxCorrupted:
      return "tx_corrupted";
    case TraceKind::kRetransmissionScheduled:
      return "retx_scheduled";
    case TraceKind::kSlackStolen:
      return "slack_stolen";
    case TraceKind::kDeadlineMiss:
      return "deadline_miss";
    case TraceKind::kDeadlineMet:
      return "deadline_met";
    case TraceKind::kQueueDrop:
      return "queue_drop";
    case TraceKind::kBerDrift:
      return "ber_drift";
    case TraceKind::kPlanSwap:
      return "plan_swap";
    case TraceKind::kLoadShed:
      return "load_shed";
    case TraceKind::kNodeCrash:
      return "node_crash";
    case TraceKind::kNodeRestart:
      return "node_restart";
    case TraceKind::kChannelDown:
      return "channel_down";
    case TraceKind::kChannelUp:
      return "channel_up";
    case TraceKind::kFailover:
      return "failover";
    case TraceKind::kVoteResolved:
      return "vote_resolved";
    case TraceKind::kTemplateRebuild:
      return "template_rebuild";
    case TraceKind::kModeChange:
      return "mode_change";
    case TraceKind::kShedByMode:
      return "shed_by_mode";
    case TraceKind::kMatchUp:
      return "match_up";
    case TraceKind::kInfo:
      return "info";
  }
  return "unknown";
}

void Trace::emit(Time at, TraceKind kind, std::int64_t a, std::int64_t b,
                 std::int64_t c, std::int64_t d, std::string note) {
  if (!enabled_) return;
  records_.push_back(TraceRecord{at, kind, a, b, c, d, std::move(note)});
}

std::size_t Trace::count(TraceKind kind) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.kind == kind) ++n;
  }
  return n;
}

std::string Trace::dump() const {
  std::string out;
  char line[256];
  for (const auto& r : records_) {
    std::snprintf(line, sizeof line,
                  "%14s %-16s a=%lld b=%lld c=%lld d=%lld %s\n",
                  to_string(r.at).c_str(), to_string(r.kind),
                  static_cast<long long>(r.a), static_cast<long long>(r.b),
                  static_cast<long long>(r.c), static_cast<long long>(r.d),
                  r.note.c_str());
    out += line;
  }
  return out;
}

}  // namespace coeff::sim
