// Statistics accumulators used by the metrics and benchmark layers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace coeff::sim {

/// Streaming moments (Welford): count, mean, variance, min, max. O(1)
/// space; numerically stable for long runs.
class StreamingStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel Welford).
  void merge(const StreamingStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile tracker: stores all samples; sorts lazily on query.
/// Suitable for the sample counts in this project's experiments (<1e7).
class PercentileTracker {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  /// Nearest-rank percentile, q in [0, 100]. Returns 0 when empty.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  [[nodiscard]] const StreamingStats& moments() const { return moments_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  StreamingStats moments_;
};

/// Fixed-width histogram over [lo, hi); samples outside the range land in
/// saturating under/overflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Lower edge of bin i.
  [[nodiscard]] double bin_lo(std::size_t i) const;

  /// Compact ASCII rendering for logs.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Convenience: accumulate Time samples as milliseconds.
class LatencyStats {
 public:
  void add(Time t) { tracker_.add(t.as_ms()); }
  [[nodiscard]] double mean_ms() const { return tracker_.moments().mean(); }
  [[nodiscard]] double max_ms() const { return tracker_.moments().max(); }
  [[nodiscard]] double p99_ms() const { return tracker_.percentile(99.0); }
  [[nodiscard]] std::size_t count() const { return tracker_.count(); }
  [[nodiscard]] const PercentileTracker& tracker() const { return tracker_; }

 private:
  PercentileTracker tracker_;
};

}  // namespace coeff::sim
