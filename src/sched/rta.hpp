// Fixed-priority response-time analysis.
//
// Classic Joseph–Pandya recurrence under the synchronous (critical
// instant) assumption: offsets are ignored, which makes the test
// sufficient — a set that passes meets all deadlines for any offsets.
// The exact offset-aware behaviour is checked by simulation
// (PeriodicSchedule) where needed.
#pragma once

#include <optional>
#include <vector>

#include "sched/task.hpp"

namespace coeff::sched {

struct RtaResult {
  bool schedulable = false;
  /// Worst-case response time per priority level; meaningful up to the
  /// first unschedulable level (later levels hold Time::max()).
  std::vector<sim::Time> response_times;
};

/// Run the analysis on a deadline-monotonic-ordered set.
[[nodiscard]] RtaResult response_time_analysis(const TaskSet& set);

/// Worst-case response time of a single level, or nullopt if it diverges
/// past its deadline.
[[nodiscard]] std::optional<sim::Time> response_time_of_level(
    const TaskSet& set, std::size_t level);

/// Liu–Layland utilization bound for n tasks: n(2^{1/n} - 1). A set
/// whose utilization is below this bound is RM-schedulable; above it the
/// exact test decides.
[[nodiscard]] double liu_layland_bound(std::size_t n);

}  // namespace coeff::sched
