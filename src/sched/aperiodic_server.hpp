// Soft-aperiodic service disciplines (§III-B context).
//
// The paper adopts slack stealing for soft aperiodics because it
// minimizes response time among algorithms that never endanger hard
// periodic deadlines ([26], [27]). This module implements the classic
// alternatives so that claim is testable and benchable:
//
//   * background  — aperiodics run only when no periodic task is
//                   pending (safe, slowest),
//   * polling     — a periodic server (budget Cs every Ts) that forfeits
//                   its budget when it finds the queue empty,
//   * deferrable  — a periodic server that retains its budget across
//                   idle spells and serves at the top priority,
//   * slack stealing — serve at the top priority whenever the
//                   SlackTable says the periodic schedule can absorb it.
//
// Simulation is quantum-based (default 1 us — one macrotick): exact for
// workloads whose parameters are quantum multiples, which all of ours
// are.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/slack_stealer.hpp"
#include "sched/task.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace coeff::sched {

enum class ServerPolicy : std::uint8_t {
  kBackground,
  kPolling,
  kDeferrable,
  kSlackStealing,
};

[[nodiscard]] const char* to_string(ServerPolicy p);

struct ServerConfig {
  ServerPolicy policy = ServerPolicy::kSlackStealing;
  /// Server capacity per replenishment period (polling/deferrable).
  sim::Time budget = sim::millis(1);
  /// Replenishment period (polling/deferrable).
  sim::Time period = sim::millis(10);
  /// Simulation quantum; all task/job parameters should be multiples.
  sim::Time quantum = sim::micros(1);
};

struct AperiodicOutcome {
  std::uint64_t id = 0;
  sim::Time arrival;
  sim::Time work;
  sim::Time completion;  ///< Time::max() if unfinished at the horizon

  [[nodiscard]] bool finished() const { return completion != sim::Time::max(); }
  [[nodiscard]] sim::Time response() const { return completion - arrival; }
};

struct ServiceResult {
  std::vector<AperiodicOutcome> outcomes;
  bool periodic_deadline_missed = false;
  std::size_t finished = 0;

  /// Response-time statistics over the finished jobs, in milliseconds.
  [[nodiscard]] sim::StreamingStats response_stats_ms() const;
};

/// Serve `jobs` (sorted by arrival) alongside the periodic set under
/// `config`, over [0, horizon). Jobs are FIFO within the server.
[[nodiscard]] ServiceResult serve_aperiodics(const TaskSet& set,
                                             const std::vector<AperiodicJob>& jobs,
                                             const ServerConfig& config,
                                             sim::Time horizon);

}  // namespace coeff::sched
