// Mixed-criticality mode-change protocol (ROADMAP item 4).
//
// Generalizes the binary `degraded` flag into a three-mode state
// machine in the style of Novak/Sucha/Hanzalek's match-up scheduling
// (arXiv 1610.07384): NORMAL admits everything, DEGRADED-L1 sheds
// kLow dynamic traffic, DEGRADED-L2 sheds everything below kHigh.
// Escalation is driven by the ReliabilityMonitor's drift ratio
// (estimated/planned BER) and by dynamic-queue overload; de-escalation
// requires both a minimum dwell and a calm streak, so boundary BER
// estimates cannot flap the mode. Once back in NORMAL for a full
// recovery window, shed traffic is *matched up* — re-admitted with
// bounded catch-up bursts (adaptive re-admission per arXiv 2002.07535).
//
// All transitions happen at cycle boundaries (the scheduler calls
// evaluate() exactly once per cycle from its cycle-start hook), which
// is what the trace.mode-change-boundary lint rule checks.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "net/message.hpp"

namespace coeff::sched {

/// Operating mode, ordered by severity. Numeric values are stable:
/// they appear in trace records (kModeChange a/b, kShedByMode c) and
/// campaign rows.
enum class CriticalityMode : std::uint8_t {
  kNormal = 0,
  kDegradedL1 = 1,
  kDegradedL2 = 2,
};

inline constexpr int kCriticalityModeCount = 3;

[[nodiscard]] constexpr const char* to_string(CriticalityMode m) {
  return m == CriticalityMode::kNormal       ? "NORMAL"
         : m == CriticalityMode::kDegradedL1 ? "DEGRADED-L1"
                                             : "DEGRADED-L2";
}

/// Lowest criticality a *dynamic* release must have to be admitted in
/// mode `m` (statics are never shed by mode — the paper's static
/// segment carries the safety-critical traffic). NORMAL admits kLow,
/// L1 requires kMedium, L2 requires kHigh.
[[nodiscard]] constexpr net::Criticality admission_floor(CriticalityMode m) {
  return m == CriticalityMode::kNormal       ? net::Criticality::kLow
         : m == CriticalityMode::kDegradedL1 ? net::Criticality::kMedium
                                             : net::Criticality::kHigh;
}

/// Mode-change policy knobs. Defaults are the "conservative" preset;
/// `enabled` defaults to false so existing configurations keep the
/// legacy binary-degraded behaviour bit for bit.
struct ModePolicy {
  bool enabled = false;
  /// Drift-ratio thresholds (estimated/planned BER) for escalation.
  /// Entering L1 at `enter_l1_factor` matches the monitor's default
  /// trigger_factor, so drift detection and mode entry coincide.
  double enter_l1_factor = 5.0;
  double enter_l2_factor = 25.0;
  /// De-escalation threshold: the drift ratio must stay below this for
  /// `recovery_cycles` consecutive cycles. Must satisfy
  /// 1.0 <= exit_factor <= enter_l1_factor.
  double exit_factor = 2.0;
  /// Minimum cycles to stay in a degraded mode once entered (flap
  /// damping on top of the calm streak).
  int min_dwell_cycles = 20;
  /// Consecutive calm cycles required before stepping one mode down,
  /// and (back in NORMAL) before match-up re-admission opens.
  int recovery_cycles = 10;
  /// Maximum shed messages re-admitted per cycle during match-up.
  int matchup_burst = 4;
  /// Shed entries older than this many cycles are abandoned instead of
  /// matched up (their data is stale; counted, never re-admitted).
  int matchup_window_cycles = 64;
  /// Pending dynamic releases above which the scheduler reports
  /// overload to evaluate() (0 = overload detection off).
  int overload_backlog = 0;

  /// Throws std::invalid_argument on inconsistent thresholds/counts.
  void validate() const;
};

/// One evaluate() verdict.
struct ModeDecision {
  bool changed = false;
  CriticalityMode from = CriticalityMode::kNormal;
  CriticalityMode to = CriticalityMode::kNormal;
};

/// The mode-change state machine. Pure decide-side state: evaluate()
/// is called exactly once per cycle at the cycle boundary with inputs
/// that are identical across engines and job counts, so the mode
/// trajectory is deterministic.
class ModeManager {
 public:
  explicit ModeManager(const ModePolicy& policy);

  /// One cycle-boundary step. `drift_ratio` is the monitor's latched
  /// estimated/planned BER ratio (1.0 when no estimate is available);
  /// `overloaded` is the scheduler's backlog predicate. Escalates at
  /// most one level per call (L2 entry from NORMAL takes two cycles —
  /// each step is traced); de-escalates one level only after
  /// min_dwell_cycles in the current mode AND recovery_cycles of calm.
  ModeDecision evaluate(double drift_ratio, bool overloaded);

  [[nodiscard]] CriticalityMode mode() const { return mode_; }
  [[nodiscard]] bool degraded() const {
    return mode_ != CriticalityMode::kNormal;
  }
  /// True once the machine has been back in NORMAL for a full
  /// recovery window — the gate for match-up re-admission.
  [[nodiscard]] bool matchup_open() const {
    return mode_ == CriticalityMode::kNormal &&
           normal_streak_ >= policy_.recovery_cycles;
  }
  [[nodiscard]] const ModePolicy& policy() const { return policy_; }
  [[nodiscard]] std::int64_t dwell_cycles() const { return dwell_cycles_; }
  [[nodiscard]] std::int64_t mode_changes() const { return mode_changes_; }
  /// Cycles spent in each mode since construction (indexed by mode).
  [[nodiscard]] std::int64_t cycles_in(CriticalityMode m) const {
    return cycles_in_[static_cast<std::size_t>(m)];
  }

 private:
  ModePolicy policy_;
  CriticalityMode mode_ = CriticalityMode::kNormal;
  std::int64_t dwell_cycles_ = 0;   ///< cycles in the current mode
  int calm_streak_ = 0;             ///< consecutive cycles below exit_factor
  int normal_streak_ = 0;           ///< consecutive cycles spent in NORMAL
  std::int64_t mode_changes_ = 0;
  std::int64_t cycles_in_[kCriticalityModeCount] = {};
};

// --- Config parsing (total functions: never throw, nullopt on error) ---

/// Parse a --mode-policy spec. Accepts the presets "off",
/// "conservative" and "aggressive", or a comma-separated key=value
/// list over: enter-l1, enter-l2, exit, dwell, recovery, burst,
/// window, backlog (e.g. "enter-l1=4,exit=1.5,dwell=10"). Unlisted
/// keys keep the conservative defaults; any preset token may also be
/// the first list element. Returns nullopt on unknown keys, malformed
/// numbers, or values that fail ModePolicy::validate().
[[nodiscard]] std::optional<ModePolicy> parse_mode_policy(
    std::string_view spec);

/// Parse one criticality level name ("low" | "medium" | "high").
[[nodiscard]] std::optional<net::Criticality> parse_criticality(
    std::string_view name);

/// A parsed --criticality spec: kind-level defaults plus per-message
/// overrides, e.g. "static=high,dyn=low,7=medium".
struct CriticalitySpec {
  std::optional<net::Criticality> static_default;
  std::optional<net::Criticality> dynamic_default;
  /// (message id, level) overrides in spec order.
  std::vector<std::pair<int, net::Criticality>> overrides;
};

/// Parse a --criticality spec: comma-separated entries of the form
/// "static=LEVEL", "dyn=LEVEL" (alias "dynamic"), or "<id>=LEVEL".
/// Returns nullopt on malformed entries or unknown level names. The
/// empty spec is valid and assigns nothing.
[[nodiscard]] std::optional<CriticalitySpec> parse_criticality_spec(
    std::string_view spec);

/// Apply a spec to a message set: kind defaults first, then id
/// overrides (unknown ids are ignored — workload prefixes drop
/// messages legitimately). Messages not covered keep their level.
[[nodiscard]] net::MessageSet with_criticality(const net::MessageSet& set,
                                               const CriticalitySpec& spec);

/// The scheduler-side effective level: an explicit assignment wins;
/// sets left entirely at kLow get the kind-dependent default (static →
/// kHigh, dynamic → kLow) so legacy workloads reproduce the binary
/// degraded semantics. `any_assigned` is true when the set carries at
/// least one non-kLow level.
[[nodiscard]] net::Criticality effective_criticality(const net::Message& m,
                                                     bool any_assigned);

}  // namespace coeff::sched
