#include "sched/schedule_table.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

namespace coeff::sched {

namespace {

/// Two multiplexed occupants (b1, r1) and (b2, r2) collide iff some cycle
/// satisfies c = b1 (mod r1) and c = b2 (mod r2) with c >= max(b1, b2);
/// by CRT that is exactly when (b1 - b2) is divisible by gcd(r1, r2).
bool phases_conflict(units::CycleIndex b1, std::int64_t r1,
                     units::CycleIndex b2, std::int64_t r2) {
  const std::int64_t g = std::gcd(r1, r2);
  return ((b1 - b2) % g + g) % g == 0;
}

}  // namespace

StaticScheduleTable StaticScheduleTable::build(
    const net::MessageSet& statics, const flexray::ClusterConfig& cfg,
    const TableBuildOptions& options) {
  cfg.validate();
  statics.validate();

  StaticScheduleTable table;
  table.num_slots_ = cfg.g_number_of_static_slots;
  table.slot_occupants_.resize(static_cast<std::size_t>(table.num_slots_));

  const sim::Time cycle = cfg.cycle_duration();
  const sim::Time slot_dur = cfg.static_slot_duration();

  // Most-constrained first: tightest deadline, then shortest period.
  std::vector<const net::Message*> order;
  for (const auto& m : statics.messages()) {
    if (m.kind != net::MessageKind::kStatic) continue;
    order.push_back(&m);
  }
  std::sort(order.begin(), order.end(),
            [&options](const net::Message* a, const net::Message* b) {
              if (options.rank) {
                const int ra = options.rank(*a);
                const int rb = options.rank(*b);
                if (ra != rb) return ra < rb;
              }
              if (a->deadline != b->deadline) return a->deadline < b->deadline;
              if (a->period != b->period) return a->period < b->period;
              return a->id < b->id;
            });

  for (const net::Message* m : order) {
    if (m->period % cycle != sim::Time::zero()) {
      throw std::invalid_argument(
          "StaticScheduleTable: message " + std::to_string(m->id) +
          " period is not a multiple of the communication cycle");
    }
    if (m->size_bits > cfg.static_slot_capacity_bits()) {
      throw std::invalid_argument(
          "StaticScheduleTable: message " + std::to_string(m->id) +
          " payload (" + std::to_string(m->size_bits) +
          " bits) exceeds the static slot capacity (" +
          std::to_string(cfg.static_slot_capacity_bits()) + " bits)");
    }
    const std::int64_t repetition =
        options.exclusive_slots
            ? 1
            : std::max<std::int64_t>(1, m->period / cycle);

    // Evaluate every (slot, base) candidate; latency is constant across
    // jobs: latency = base*cycle + slot_offset + slot_dur - msg_offset.
    std::optional<SlotAssignment> best_meeting;  // meets deadline
    std::optional<SlotAssignment> best_any;      // fallback: min latency
    for (units::SlotId slot{1}; slot.value() <= table.num_slots_; ++slot) {
      const sim::Time slot_offset = slot_dur * (slot.value() - 1);
      // Earliest base cycle whose slot starts at/after the first release.
      units::CycleIndex base{0};
      if (slot_offset < m->offset) {
        const sim::Time gap = m->offset - slot_offset;
        base = units::CycleIndex{(gap.ns() + cycle.ns() - 1) / cycle.ns()};
      }
      // Advance base within the repetition to a free phase.
      const auto& occupants =
          table.slot_occupants_[static_cast<std::size_t>(slot.value() - 1)];
      std::optional<units::CycleIndex> free_base;
      for (std::int64_t probe = 0; probe < repetition; ++probe) {
        const units::CycleIndex b = base + probe;
        const bool clash = std::any_of(
            occupants.begin(), occupants.end(), [&](const Occupant& o) {
              return phases_conflict(b, repetition, o.base, o.repetition);
            });
        if (!clash) {
          free_base = b;
          break;
        }
      }
      if (!free_base) continue;

      SlotAssignment cand;
      cand.message_id = m->id;
      cand.slot = slot;
      cand.base_cycle = *free_base;
      cand.repetition = repetition;
      cand.latency =
          cycle * free_base->value() + slot_offset + slot_dur - m->offset;
      if (cand.latency <= m->deadline &&
          (!best_meeting || cand.latency < best_meeting->latency)) {
        best_meeting = cand;
      }
      if (!best_any || cand.latency < best_any->latency) {
        best_any = cand;
      }
    }

    if (!best_meeting && !best_any) {
      table.unplaced_.push_back(m->id);
      continue;
    }
    const SlotAssignment chosen = best_meeting ? *best_meeting : *best_any;
    if (!best_meeting) table.deadline_risk_.push_back(m->id);
    table.by_message_[m->id] = table.assignments_.size();
    table.assignments_.push_back(chosen);
    table.slot_occupants_[static_cast<std::size_t>(chosen.slot.value() - 1)]
        .push_back({chosen.base_cycle, chosen.repetition, m->id});
    table.table_period_ = std::lcm(table.table_period_, chosen.repetition);
  }

  return table;
}

StaticScheduleTable StaticScheduleTable::from_assignments(
    std::vector<SlotAssignment> assignments, std::int64_t num_slots) {
  StaticScheduleTable table;
  table.num_slots_ = num_slots;
  table.slot_occupants_.resize(
      num_slots > 0 ? static_cast<std::size_t>(num_slots) : 0);
  table.assignments_ = std::move(assignments);
  for (std::size_t i = 0; i < table.assignments_.size(); ++i) {
    const SlotAssignment& a = table.assignments_[i];
    table.by_message_[a.message_id] = i;
    // Out-of-range or degenerate entries stay in `assignments()` for the
    // linter to flag but cannot be indexed by slot.
    if (a.slot.value() >= 1 && a.slot.value() <= num_slots &&
        a.repetition >= 1) {
      table.slot_occupants_[static_cast<std::size_t>(a.slot.value() - 1)]
          .push_back({a.base_cycle, a.repetition, a.message_id});
      table.table_period_ = std::lcm(table.table_period_, a.repetition);
    }
  }
  return table;
}

std::optional<int> StaticScheduleTable::message_at(
    units::SlotId slot, units::CycleIndex cycle) const {
  if (slot.value() < 1 || slot.value() > num_slots_ || cycle.value() < 0) {
    return std::nullopt;
  }
  for (const auto& o :
       slot_occupants_[static_cast<std::size_t>(slot.value() - 1)]) {
    if (cycle >= o.base && (cycle - o.base) % o.repetition == 0) {
      return o.message_id;
    }
  }
  return std::nullopt;
}

const SlotAssignment* StaticScheduleTable::assignment_of(int message_id) const {
  auto it = by_message_.find(message_id);
  if (it == by_message_.end()) return nullptr;
  return &assignments_[it->second];
}

std::int64_t StaticScheduleTable::slots_used() const {
  std::int64_t used = 0;
  for (const auto& occupants : slot_occupants_) {
    if (!occupants.empty()) ++used;
  }
  return used;
}

double StaticScheduleTable::occupancy() const {
  if (num_slots_ == 0 || table_period_ == 0) return 0.0;
  std::int64_t occupied = 0;
  // Count occupied (slot, cycle) pairs over one steady-state table
  // period, starting past every base cycle.
  units::CycleIndex start{0};
  for (const auto& a : assignments_) start = std::max(start, a.base_cycle);
  for (units::SlotId slot{1}; slot.value() <= num_slots_; ++slot) {
    for (units::CycleIndex c = start; c < start + table_period_; ++c) {
      if (message_at(slot, c).has_value()) ++occupied;
    }
  }
  return static_cast<double>(occupied) /
         static_cast<double>(num_slots_ * table_period_);
}

}  // namespace coeff::sched
