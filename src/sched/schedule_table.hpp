// Static-segment schedule table construction.
//
// Maps each static message to a (slot, base_cycle, repetition) triple:
// the message transmits in static slot `slot` of every cycle
// base_cycle + k * repetition. Messages with periods larger than the
// communication cycle share one slot through cycle multiplexing
// (disjoint phases), as in the FlexRay spec and the static-segment
// scheduling literature the paper builds on ([14], [15]).
//
// Placement is greedy in (deadline, period) order and prefers slots
// whose fixed release-to-completion latency meets the deadline; when no
// deadline-meeting placement exists (e.g. deadline < cycle, which TDMA
// cannot honour) the minimum-latency placement is used and the message
// is listed in `deadline_risk`.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "flexray/config.hpp"
#include "net/message.hpp"
#include "sim/time.hpp"
#include "units/units.hpp"

namespace coeff::sched {

struct SlotAssignment {
  int message_id = 0;
  units::SlotId slot{0};        ///< 1-based static slot
  units::CycleIndex base_cycle{0};  ///< first transmitting cycle
  std::int64_t repetition = 1;  ///< transmit every `repetition` cycles
  sim::Time latency;  ///< fixed release-to-slot-end latency of this placement
};

struct TableBuildOptions {
  /// Placement-phase rank: messages with smaller rank are placed first
  /// (within a rank the (deadline, period) greedy order applies). Used
  /// e.g. to place primaries before pre-planned redundant copies.
  std::function<int(const net::Message&)> rank;
  /// Reserve a whole slot per message (repetition 1, owned every cycle)
  /// instead of cycle multiplexing — the plain FlexRay-spec behaviour
  /// the FSPEC baseline models. Wastes the occurrences between releases.
  bool exclusive_slots = false;
};

class StaticScheduleTable {
 public:
  /// Build the table. Throws std::invalid_argument if any message period
  /// is not a whole multiple of the communication cycle or any payload
  /// exceeds the static slot capacity.
  static StaticScheduleTable build(const net::MessageSet& statics,
                                   const flexray::ClusterConfig& cfg,
                                   const TableBuildOptions& options = {});

  /// Assemble a table from externally-authored assignments (a
  /// communication matrix maintained outside the builder). Performs NO
  /// legality checking — pair with analysis::lint_schedule, which is
  /// the checker for such tables.
  static StaticScheduleTable from_assignments(
      std::vector<SlotAssignment> assignments, std::int64_t num_slots);

  /// Message id occupying (slot, cycle), or nullopt if the slot is idle
  /// there.
  [[nodiscard]] std::optional<int> message_at(units::SlotId slot,
                                              units::CycleIndex cycle) const;

  [[nodiscard]] bool is_idle(units::SlotId slot, units::CycleIndex cycle) const {
    return !message_at(slot, cycle).has_value();
  }

  [[nodiscard]] const std::vector<SlotAssignment>& assignments() const {
    return assignments_;
  }
  [[nodiscard]] const SlotAssignment* assignment_of(int message_id) const;

  /// Messages that could not be placed at all (no free slot phase).
  [[nodiscard]] const std::vector<int>& unplaced() const { return unplaced_; }
  /// Messages placed with latency > deadline (TDMA cannot do better).
  [[nodiscard]] const std::vector<int>& deadline_risk() const {
    return deadline_risk_;
  }

  /// Number of distinct slots with at least one occupant.
  [[nodiscard]] std::int64_t slots_used() const;

  /// Fraction of (slot, cycle) pairs occupied over one table period.
  [[nodiscard]] double occupancy() const;

  /// LCM of all repetitions: the table repeats with this many cycles.
  [[nodiscard]] std::int64_t table_period_cycles() const {
    return table_period_;
  }

 private:
  struct Occupant {
    units::CycleIndex base;
    std::int64_t repetition;
    int message_id;
  };

  std::vector<SlotAssignment> assignments_;
  std::unordered_map<int, std::size_t> by_message_;
  std::vector<std::vector<Occupant>> slot_occupants_;  ///< index slot-1
  std::vector<int> unplaced_;
  std::vector<int> deadline_risk_;
  std::int64_t num_slots_ = 0;
  std::int64_t table_period_ = 1;
};

}  // namespace coeff::sched
