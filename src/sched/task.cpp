#include "sched/task.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>

namespace coeff::sched {

TaskSet::TaskSet(std::vector<PeriodicTask> tasks) : tasks_(std::move(tasks)) {
  sort_deadline_monotonic();
}

void TaskSet::add(PeriodicTask t) {
  tasks_.push_back(t);
  sort_deadline_monotonic();
}

void TaskSet::sort_deadline_monotonic() {
  std::stable_sort(tasks_.begin(), tasks_.end(),
                   [](const PeriodicTask& a, const PeriodicTask& b) {
                     if (a.deadline != b.deadline) return a.deadline < b.deadline;
                     return a.id < b.id;
                   });
}

double TaskSet::utilization() const {
  double u = 0.0;
  for (const auto& t : tasks_) {
    u += t.wcet.as_seconds() / t.period.as_seconds();
  }
  return u;
}

sim::Time TaskSet::hyperperiod() const {
  std::int64_t lcm_ns = 1;
  for (const auto& t : tasks_) {
    lcm_ns = std::lcm(lcm_ns, t.period.ns());
    if (lcm_ns > sim::seconds(3600).ns()) {
      throw std::domain_error("TaskSet::hyperperiod exceeds one hour");
    }
  }
  return sim::nanos(lcm_ns);
}

void TaskSet::validate() const {
  std::set<int> ids;
  for (const auto& t : tasks_) {
    const std::string tag = "task " + std::to_string(t.id) + ": ";
    if (!ids.insert(t.id).second) {
      throw std::invalid_argument("TaskSet: duplicate id " +
                                  std::to_string(t.id));
    }
    if (t.period <= sim::Time::zero()) {
      throw std::invalid_argument(tag + "period must be positive");
    }
    if (t.wcet <= sim::Time::zero()) {
      throw std::invalid_argument(tag + "wcet must be positive");
    }
    if (t.wcet > t.period) {
      throw std::invalid_argument(tag + "wcet exceeds period");
    }
    if (t.deadline <= sim::Time::zero() || t.deadline > t.period) {
      throw std::invalid_argument(tag + "deadline must be in (0, period]");
    }
    if (t.offset < sim::Time::zero() || t.offset > t.period) {
      throw std::invalid_argument(tag + "offset must be in [0, period]");
    }
  }
}

}  // namespace coeff::sched
