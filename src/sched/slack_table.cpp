#include "sched/slack_table.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <mutex>
#include <stdexcept>

namespace coeff::sched {

SlackTable::SlackTable(const TaskSet& set) {
  set.validate();
  hyperperiod_ = set.hyperperiod();
  window_ = hyperperiod_ * 3;
  const ScheduleResult schedule = simulate_periodic(set, window_);
  schedulable_ = !schedule.any_deadline_missed;

  const std::size_t n = set.size();
  idle_curves_.resize(n);
  idle_per_hyperperiod_.assign(n, sim::Time::zero());

  for (std::size_t level = 0; level < n; ++level) {
    LevelCurve& curve = idle_curves_[level];
    sim::Time cum = sim::Time::zero();
    for (const auto& seg : schedule.timeline) {
      const bool idle = seg.level != kInsertedLevel &&
                        seg.level > static_cast<int>(level);
      curve.seg_start.push_back(seg.start);
      curve.seg_end.push_back(seg.end);
      curve.cum_at_start.push_back(cum);
      curve.is_idle.push_back(idle);
      if (idle) cum += seg.end - seg.start;
    }
    // Idle accumulated across exactly one steady-state hyperperiod.
    // (Use [H, 2H); the first hyperperiod may carry offset transients.)
    sim::Time idle_h = sim::Time::zero();
    for (std::size_t k = 0; k < curve.seg_start.size(); ++k) {
      if (!curve.is_idle[k]) continue;
      const sim::Time lo = std::max(curve.seg_start[k], hyperperiod_);
      const sim::Time hi = std::min(curve.seg_end[k], hyperperiod_ * 2);
      if (hi > lo) idle_h += hi - lo;
    }
    idle_per_hyperperiod_[level] = idle_h;
  }

  // Per-level deadlines and suffix minima of Idle_level(deadline).
  for (const auto& job : schedule.jobs) {
    if (job.task_id < 0) continue;  // inserted pseudo-jobs
    idle_curves_[job.level].deadlines.push_back(job.abs_deadline);
  }
  for (std::size_t level = 0; level < n; ++level) {
    LevelCurve& curve = idle_curves_[level];
    std::sort(curve.deadlines.begin(), curve.deadlines.end());
    curve.suffix_min_idle_at_deadline.resize(curve.deadlines.size());
    sim::Time running_min = sim::Time::max();
    for (std::size_t k = curve.deadlines.size(); k-- > 0;) {
      const sim::Time v = cum_idle_folded(
          level, std::min(curve.deadlines[k], window_));
      running_min = std::min(running_min, v);
      curve.suffix_min_idle_at_deadline[k] = running_min;
    }
  }

  build_merged_curve();
}

void SlackTable::build_merged_curve() {
  if (idle_curves_.empty()) return;
  const LevelCurve& ref = idle_curves_.front();
  if (ref.seg_start.empty()) return;

  // Runtime queries fold into [0, 2H), so the grid only needs the
  // breakpoints there: every timeline segment boundary (shared by all
  // levels — the curves come from one schedule) plus every deadline.
  const sim::Time limit = hyperperiod_ * 2;
  std::vector<sim::Time> grid;
  grid.push_back(sim::Time::zero());
  for (const sim::Time s : ref.seg_start) {
    if (s > sim::Time::zero() && s < limit) grid.push_back(s);
  }
  for (const LevelCurve& curve : idle_curves_) {
    for (const sim::Time d : curve.deadlines) {
      if (d > sim::Time::zero() && d < limit) grid.push_back(d);
    }
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());

  const std::size_t n = idle_curves_.size();
  std::vector<std::size_t> next_deadline(n, 0);
  std::size_t seg = 0;
  merged_times_.reserve(grid.size());
  merged_c0_.reserve(grid.size());
  merged_c1_.reserve(grid.size());
  for (const sim::Time t0 : grid) {
    while (seg + 1 < ref.seg_start.size() && ref.seg_start[seg + 1] <= t0) {
      ++seg;
    }
    sim::Time c0 = sim::Time::max();
    sim::Time c1 = sim::Time::max();
    for (std::size_t level = 0; level < n; ++level) {
      const LevelCurve& curve = idle_curves_[level];
      std::size_t& k = next_deadline[level];
      while (k < curve.deadlines.size() && curve.deadlines[k] <= t0) ++k;
      if (k == curve.deadlines.size()) continue;  // level unconstrained
      sim::Time cum = curve.cum_at_start[seg];
      const bool idle = curve.is_idle[seg];
      if (idle) cum += t0 - curve.seg_start[seg];
      const sim::Time s = curve.suffix_min_idle_at_deadline[k] - cum;
      if (idle) {
        c1 = std::min(c1, s);
      } else {
        c0 = std::min(c0, s);
      }
    }
    merged_times_.push_back(t0);
    merged_c0_.push_back(c0);
    merged_c1_.push_back(c1);
  }
}

sim::Time SlackTable::fold(sim::Time t) const {
  if (t < sim::Time::zero()) {
    throw std::invalid_argument("SlackTable: negative time");
  }
  if (t < hyperperiod_ * 2) return t;
  // Fold into [H, 2H): the canonical steady-state window.
  return hyperperiod_ + ((t - hyperperiod_) % hyperperiod_);
}

sim::Time SlackTable::cum_idle_folded(std::size_t level, sim::Time t) const {
  const LevelCurve& curve = idle_curves_.at(level);
  if (curve.seg_start.empty() || t <= sim::Time::zero()) {
    return sim::Time::zero();
  }
  if (t >= window_) {
    // Cumulative idle at the very end of the table.
    const std::size_t last = curve.seg_start.size() - 1;
    sim::Time cum = curve.cum_at_start[last];
    if (curve.is_idle[last]) cum += curve.seg_end[last] - curve.seg_start[last];
    return cum;
  }
  // Binary search the segment containing t.
  const auto it = std::upper_bound(curve.seg_start.begin(),
                                   curve.seg_start.end(), t);
  const std::size_t k = static_cast<std::size_t>(
      std::distance(curve.seg_start.begin(), it)) - 1;
  sim::Time cum = curve.cum_at_start[k];
  if (curve.is_idle[k]) cum += t - curve.seg_start[k];
  return cum;
}

sim::Time SlackTable::cumulative_idle(std::size_t level, sim::Time t) const {
  if (t <= hyperperiod_ * 2) return cum_idle_folded(level, t);
  // Beyond the table: the folded point plus one steady-state
  // hyperperiod's idle per whole wrap (t - fold(t) is a multiple of H).
  const sim::Time folded = fold(t);
  const std::int64_t wraps = (t - folded) / hyperperiod_;
  return cum_idle_folded(level, folded) +
         idle_per_hyperperiod_.at(level) * wraps;
}

sim::Time SlackTable::idle_between(std::size_t level, sim::Time a,
                                   sim::Time b) const {
  if (b <= a) return sim::Time::zero();
  return cumulative_idle(level, b) - cumulative_idle(level, a);
}

sim::Time SlackTable::level_slack(std::size_t level, sim::Time t) const {
  const LevelCurve& curve = idle_curves_.at(level);
  const sim::Time tf = fold(t);
  // First future deadline strictly after tf.
  const auto it = std::upper_bound(curve.deadlines.begin(),
                                   curve.deadlines.end(), tf);
  if (it == curve.deadlines.end()) {
    return sim::Time::max();  // no job of this level constrains us anymore
  }
  const std::size_t k = static_cast<std::size_t>(
      std::distance(curve.deadlines.begin(), it));
  const sim::Time min_idle_at_deadline = curve.suffix_min_idle_at_deadline[k];
  const sim::Time idle_now = cum_idle_folded(level, tf);
  const sim::Time slack = min_idle_at_deadline - idle_now;
  return std::max(slack, sim::Time::zero());
}

sim::Time SlackTable::slack_at(sim::Time t, std::size_t from_level) const {
  if (from_level == 0 && !merged_times_.empty()) {
    // Per-level clamping commutes with the min (min_i max(s_i, 0) ==
    // max(min_i s_i, 0)), so the merged curve can clamp once at the end.
    const sim::Time tf = fold(t);
    const auto it = std::upper_bound(merged_times_.begin(),
                                     merged_times_.end(), tf);
    const std::size_t j = static_cast<std::size_t>(
        std::distance(merged_times_.begin(), it)) - 1;
    sim::Time s = merged_c0_[j];
    if (merged_c1_[j] != sim::Time::max()) {
      s = std::min(s, merged_c1_[j] - (tf - merged_times_[j]));
    }
    if (s == sim::Time::max()) return s;
    return std::max(s, sim::Time::zero());
  }
  sim::Time s = sim::Time::max();
  for (std::size_t level = from_level; level < idle_curves_.size(); ++level) {
    s = std::min(s, level_slack(level, t));
  }
  return s;
}

sim::Time SlackTable::min_slack() const {
  if (merged_times_.empty()) return sim::Time::max();
  const sim::Time lo = hyperperiod_;
  const sim::Time hi = hyperperiod_ * 2;
  sim::Time best = sim::Time::max();
  for (std::size_t j = 0; j < merged_times_.size(); ++j) {
    const sim::Time t0 = merged_times_[j];
    const sim::Time t1 =
        j + 1 < merged_times_.size() ? merged_times_[j + 1] : hi;
    if (t1 <= lo || t0 >= hi) continue;
    // Within the interval the curve is min(c0, c1 - (t - t0)): the
    // constant branch and the slope -1 branch, minimal at the interval
    // end. Clamping at zero commutes with the min (see slack_at).
    sim::Time v = merged_c0_[j];
    if (merged_c1_[j] != sim::Time::max()) {
      v = std::min(v, merged_c1_[j] - (std::min(t1, hi) - t0));
    }
    if (v == sim::Time::max()) continue;
    best = std::min(best, std::max(v, sim::Time::zero()));
  }
  return best;
}

sim::Time SlackTable::min_idle_in_window(sim::Time window) const {
  if (window <= sim::Time::zero()) return sim::Time::zero();
  // Full-schedule idle = idle of the lowest-priority level's curve
  // (segments where nothing at all runs).
  if (idle_curves_.empty()) return window;  // no tasks: all time is idle
  const std::size_t level = idle_curves_.size() - 1;
  const LevelCurve& curve = idle_curves_[level];
  if (curve.seg_start.empty()) return window;
  const sim::Time lo = hyperperiod_;
  const sim::Time hi = hyperperiod_ * 2;
  // g(a) = idle in [a, a+window) is piecewise linear in a with slopes
  // in {-1, 0, 1}; its minima sit where either end of the window meets a
  // segment boundary. g is H-periodic over the steady state, so folding
  // the trailing-edge candidates into [H, 2H) loses nothing.
  std::vector<sim::Time> candidates;
  auto push = [&](sim::Time a) {
    if (a < lo) a += hyperperiod_ * ((lo - a) / hyperperiod_ + 1);
    a = lo + ((a - lo) % hyperperiod_);
    candidates.push_back(a);
  };
  for (std::size_t k = 0; k < curve.seg_start.size(); ++k) {
    for (const sim::Time b : {curve.seg_start[k], curve.seg_end[k]}) {
      if (b < lo || b >= window_) continue;
      push(b);
      push(b - window);
    }
  }
  push(lo);
  sim::Time best = sim::Time::max();
  for (const sim::Time a : candidates) {
    if (a < lo || a >= hi) continue;
    best = std::min(best, idle_between(level, a, a + window));
  }
  return best == sim::Time::max() ? sim::Time::zero() : best;
}

std::shared_ptr<const SlackTable> SlackTable::shared(const TaskSet& set) {
  // Exact-parameter key (no hashing, so no collision risk): one packed
  // row per task in priority order.
  using Fingerprint = std::vector<std::array<std::int64_t, 5>>;
  static std::mutex mutex;
  static std::map<Fingerprint, std::shared_ptr<const SlackTable>> cache;

  Fingerprint fp;
  fp.reserve(set.size());
  for (const PeriodicTask& t : set.tasks()) {
    fp.push_back({t.id, t.wcet.ns(), t.period.ns(), t.offset.ns(),
                  t.deadline.ns()});
  }
  {
    const std::lock_guard<std::mutex> lock(mutex);
    const auto it = cache.find(fp);
    if (it != cache.end()) return it->second;
  }
  // Build outside the lock so concurrent sweep workers constructing
  // different suites don't serialize; a duplicate concurrent build of
  // the same suite is benign (the first insert wins).
  auto table = std::make_shared<const SlackTable>(set);
  const std::lock_guard<std::mutex> lock(mutex);
  return cache.emplace(std::move(fp), std::move(table)).first->second;
}

}  // namespace coeff::sched
