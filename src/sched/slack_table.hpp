// Static slack table (§III-B, §III-F).
//
// Built offline from the exact periodic schedule: for every priority
// level i it holds the cumulative level-i idle curve Idle_i(t) and, for
// every job, the idle accumulated by that job's deadline. The runtime
// query
//     S_i(t) = min over future jobs j at level i of Idle_i((t, d_j])
// is the largest amount of top-priority aperiodic processing that can
// start at t without pushing any level-i job past its deadline; the
// system-wide stealable slack is min_i S_i(t) (the paper's
// S*_k = min_{k<=i<=n} S_i).
//
// The table is built over three hyperperiods: [0, H) captures the
// offset-induced transient, [H, 3H) the repeating pattern; queries at
// arbitrary runtime instants fold into [H, 2H).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sched/periodic_schedule.hpp"
#include "sched/task.hpp"
#include "sim/time.hpp"

namespace coeff::sched {

class SlackTable {
 public:
  /// Builds the schedule and the per-level curves. The set must be
  /// validated; `schedulable()` reports whether the periodic schedule
  /// itself met every deadline (slack queries are meaningless if not).
  explicit SlackTable(const TaskSet& set);

  /// Memoized construction: task sets with identical parameters share
  /// one immutable table, so sweep cells that reuse a static suite
  /// (every BER point of a figure) pay the 3x-hyperperiod schedule
  /// simulation once per process. Thread-safe; the returned table is
  /// immutable and safe to share across sweep workers.
  [[nodiscard]] static std::shared_ptr<const SlackTable> shared(
      const TaskSet& set);

  [[nodiscard]] bool schedulable() const { return schedulable_; }
  [[nodiscard]] sim::Time hyperperiod() const { return hyperperiod_; }
  [[nodiscard]] std::size_t levels() const { return idle_curves_.size(); }

  /// S_i(t): slack available at level `level` at absolute time `t`
  /// against that level's own future deadlines. Time::max() when no
  /// future job of that level constrains it.
  [[nodiscard]] sim::Time level_slack(std::size_t level, sim::Time t) const;

  /// min_{i >= from_level} S_i(t): stealable processing at priority
  /// `from_level` (0 = above everything, the slot-stealer's setting).
  /// The from_level == 0 query is served from a precomputed min-folded
  /// curve in O(log breakpoints); other levels scan the suffix.
  [[nodiscard]] sim::Time slack_at(sim::Time t,
                                   std::size_t from_level = 0) const;

  /// Cumulative level-i idle of the unperturbed schedule in [0, t),
  /// extended periodically beyond the table window.
  [[nodiscard]] sim::Time cumulative_idle(std::size_t level,
                                          sim::Time t) const;

  /// Level-i idle in [a, b), periodic extension included.
  [[nodiscard]] sim::Time idle_between(std::size_t level, sim::Time a,
                                       sim::Time b) const;

  // --- Analytic queries (design-time consumers: analysis::ProbWcrt) ----

  /// Floor of the merged stealable-slack curve min_i S_i(t) over the
  /// steady-state window [H, 2H): the slack guaranteed to be grantable
  /// at *any* runtime instant. Time::max() when no level is constrained
  /// by a future deadline.
  [[nodiscard]] sim::Time min_slack() const;

  /// Guaranteed full-schedule idle (no level runs) inside ANY window of
  /// length `window`: min over start instants a of idle in [a, a+window)
  /// under periodic extension. The lower bound on the service a
  /// backlogged top-priority stealer receives per `window` of waiting.
  [[nodiscard]] sim::Time min_idle_in_window(sim::Time window) const;

 private:
  struct LevelCurve {
    // Breakpoints of the cumulative idle function over [0, 3H):
    // at times_[k], cumulative idle is cums_[k]; between breakpoints the
    // function is linear with slope 0 or 1 (idle segments).
    std::vector<sim::Time> seg_start;
    std::vector<sim::Time> seg_end;
    std::vector<sim::Time> cum_at_start;  ///< cumulative idle at seg_start
    std::vector<bool> is_idle;
    // Job deadlines at this level (sorted) and the suffix minimum of
    // cumulative idle evaluated at each deadline.
    std::vector<sim::Time> deadlines;
    std::vector<sim::Time> suffix_min_idle_at_deadline;
  };

  /// Fold an arbitrary runtime instant into the table window.
  [[nodiscard]] sim::Time fold(sim::Time t) const;
  /// Cumulative idle at a folded instant (t in [0, 3H)).
  [[nodiscard]] sim::Time cum_idle_folded(std::size_t level,
                                          sim::Time t) const;
  /// Precompute the min over all levels of S_i(t) as a piecewise-linear
  /// curve over [0, 2H) so the common from_level == 0 query needs one
  /// binary search instead of a scan of every level.
  void build_merged_curve();

  std::vector<LevelCurve> idle_curves_;
  // Merged curve: between merged_times_[j] and merged_times_[j+1] every
  // level's S_i(t) is linear with slope 0 or -1 (no deadline passes, no
  // segment boundary crosses), so min_i S_i(t) is
  //   min(merged_c0_[j], merged_c1_[j] - (t - merged_times_[j]))
  // where c0 folds the constant levels and c1 the decreasing ones
  // (Time::max() when a class is empty).
  std::vector<sim::Time> merged_times_;
  std::vector<sim::Time> merged_c0_;
  std::vector<sim::Time> merged_c1_;
  std::vector<sim::Time> idle_per_hyperperiod_;
  sim::Time hyperperiod_;
  sim::Time window_;  ///< 3H
  bool schedulable_ = false;
};

}  // namespace coeff::sched
