#include "sched/aperiodic_server.hpp"

#include <deque>
#include <memory>
#include <stdexcept>

namespace coeff::sched {

const char* to_string(ServerPolicy p) {
  switch (p) {
    case ServerPolicy::kBackground:
      return "background";
    case ServerPolicy::kPolling:
      return "polling";
    case ServerPolicy::kDeferrable:
      return "deferrable";
    case ServerPolicy::kSlackStealing:
      return "slack_stealing";
  }
  return "unknown";
}

sim::StreamingStats ServiceResult::response_stats_ms() const {
  sim::StreamingStats stats;
  for (const auto& o : outcomes) {
    if (o.finished()) stats.add(o.response().as_ms());
  }
  return stats;
}

namespace {

struct PendingPeriodic {
  std::size_t level;
  sim::Time remaining;
  sim::Time abs_deadline;
};

}  // namespace

ServiceResult serve_aperiodics(const TaskSet& set,
                               const std::vector<AperiodicJob>& jobs,
                               const ServerConfig& config, sim::Time horizon) {
  set.validate();
  if (config.quantum <= sim::Time::zero()) {
    throw std::invalid_argument("serve_aperiodics: non-positive quantum");
  }
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    if (jobs[i].arrival < jobs[i - 1].arrival) {
      throw std::invalid_argument(
          "serve_aperiodics: jobs must be sorted by arrival");
    }
  }

  ServiceResult result;
  result.outcomes.reserve(jobs.size());
  for (const auto& j : jobs) {
    AperiodicOutcome o;
    o.id = j.id;
    o.arrival = j.arrival;
    o.work = j.work;
    o.completion = sim::Time::max();
    result.outcomes.push_back(o);
  }

  const auto& tasks = set.tasks();
  const std::size_t n = tasks.size();
  std::vector<std::int64_t> next_release(n, 0);
  // Pending periodic jobs per level, FIFO.
  std::vector<std::deque<PendingPeriodic>> pending(n);

  std::deque<std::size_t> queue;  // indices into result.outcomes
  std::size_t next_job = 0;
  std::vector<sim::Time> job_remaining(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) job_remaining[i] = jobs[i].work;

  sim::Time server_budget = sim::Time::zero();
  std::int64_t next_replenish = 0;

  std::unique_ptr<SlackStealer> stealer;
  if (config.policy == ServerPolicy::kSlackStealing) {
    stealer = std::make_unique<SlackStealer>(set);
  }

  const sim::Time q = config.quantum;
  for (sim::Time now = sim::Time::zero(); now < horizon; now += q) {
    // --- releases --------------------------------------------------------
    for (std::size_t level = 0; level < n; ++level) {
      while (tasks[level].offset + tasks[level].period * next_release[level] <=
             now) {
        const sim::Time release =
            tasks[level].offset + tasks[level].period * next_release[level];
        pending[level].push_back(
            {level, tasks[level].wcet, release + tasks[level].deadline});
        ++next_release[level];
      }
    }
    while (next_job < jobs.size() && jobs[next_job].arrival <= now) {
      queue.push_back(next_job);
      ++next_job;
    }
    // --- server replenishment ---------------------------------------------
    if (config.policy == ServerPolicy::kPolling ||
        config.policy == ServerPolicy::kDeferrable) {
      while (config.period * next_replenish <= now) {
        server_budget = config.budget;
        ++next_replenish;
      }
      if (config.policy == ServerPolicy::kPolling && queue.empty()) {
        server_budget = sim::Time::zero();  // polling forfeits idle budget
      }
    }

    // --- pick who runs this quantum ---------------------------------------
    bool serve_aperiodic = false;
    if (!queue.empty()) {
      switch (config.policy) {
        case ServerPolicy::kBackground: {
          bool any_periodic = false;
          for (const auto& dq : pending) {
            if (!dq.empty()) {
              any_periodic = true;
              break;
            }
          }
          serve_aperiodic = !any_periodic;
          break;
        }
        case ServerPolicy::kPolling:
        case ServerPolicy::kDeferrable:
          serve_aperiodic = server_budget >= q;
          break;
        case ServerPolicy::kSlackStealing:
          serve_aperiodic = stealer->try_steal(now, q);
          break;
      }
    }

    if (serve_aperiodic) {
      const std::size_t job = queue.front();
      job_remaining[job] -= q;
      if (config.policy == ServerPolicy::kPolling ||
          config.policy == ServerPolicy::kDeferrable) {
        server_budget -= q;
      }
      if (job_remaining[job] <= sim::Time::zero()) {
        result.outcomes[job].completion = now + q;
        ++result.finished;
        queue.pop_front();
      }
      continue;
    }

    // Highest-priority pending periodic job runs.
    for (std::size_t level = 0; level < n; ++level) {
      if (pending[level].empty()) continue;
      PendingPeriodic& job = pending[level].front();
      job.remaining -= q;
      if (job.remaining <= sim::Time::zero()) {
        if (now + q > job.abs_deadline) result.periodic_deadline_missed = true;
        pending[level].pop_front();
      }
      break;
    }
  }

  // Jobs still pending at the horizon keep completion = Time::max();
  // unfinished periodic jobs past their deadline also count as misses.
  for (const auto& dq : pending) {
    for (const auto& job : dq) {
      if (job.abs_deadline < horizon) result.periodic_deadline_missed = true;
    }
  }
  return result;
}

}  // namespace coeff::sched
