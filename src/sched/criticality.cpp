#include "sched/criticality.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace coeff::sched {

namespace {

[[noreturn]] void invalid(const std::string& what) {
  throw std::invalid_argument("ModePolicy: " + what);
}

}  // namespace

void ModePolicy::validate() const {
  if (!(enter_l1_factor > 1.0)) invalid("enter_l1_factor must be > 1");
  if (!(enter_l2_factor >= enter_l1_factor)) {
    invalid("enter_l2_factor must be >= enter_l1_factor");
  }
  if (!(exit_factor >= 1.0)) invalid("exit_factor must be >= 1");
  if (!(exit_factor <= enter_l1_factor)) {
    invalid("exit_factor must be <= enter_l1_factor");
  }
  if (min_dwell_cycles < 0) invalid("min_dwell_cycles must be >= 0");
  if (recovery_cycles < 1) invalid("recovery_cycles must be >= 1");
  if (matchup_burst < 1) invalid("matchup_burst must be >= 1");
  if (matchup_window_cycles < 1) invalid("matchup_window_cycles must be >= 1");
  if (overload_backlog < 0) invalid("overload_backlog must be >= 0");
}

ModeManager::ModeManager(const ModePolicy& policy) : policy_(policy) {
  policy_.validate();
}

ModeDecision ModeManager::evaluate(double drift_ratio, bool overloaded) {
  ModeDecision decision;
  decision.from = mode_;

  // Escalation target from this cycle's inputs. Overload alone only
  // justifies L1; L2 is reserved for severe environment drift.
  CriticalityMode target = CriticalityMode::kNormal;
  if (drift_ratio >= policy_.enter_l2_factor) {
    target = CriticalityMode::kDegradedL2;
  } else if (drift_ratio >= policy_.enter_l1_factor || overloaded) {
    target = CriticalityMode::kDegradedL1;
  }

  const bool calm = drift_ratio < policy_.exit_factor && !overloaded;
  calm_streak_ = calm ? calm_streak_ + 1 : 0;

  CriticalityMode next = mode_;
  if (target > mode_) {
    // Escalate one level per cycle so every transition is traced and
    // the shed set grows monotonically (no slot-level races).
    next = static_cast<CriticalityMode>(static_cast<int>(mode_) + 1);
  } else if (mode_ != CriticalityMode::kNormal && target < mode_ &&
             calm_streak_ >= policy_.recovery_cycles &&
             dwell_cycles_ >= policy_.min_dwell_cycles) {
    next = static_cast<CriticalityMode>(static_cast<int>(mode_) - 1);
    // One recovery window per step down: L2 → L1 → NORMAL takes two
    // full calm windows, which damps oscillation near the threshold.
    calm_streak_ = 0;
  }

  if (next != mode_) {
    decision.changed = true;
    decision.to = next;
    mode_ = next;
    dwell_cycles_ = 0;
    ++mode_changes_;
  } else {
    decision.to = mode_;
  }

  ++dwell_cycles_;
  ++cycles_in_[static_cast<std::size_t>(mode_)];
  normal_streak_ =
      mode_ == CriticalityMode::kNormal ? normal_streak_ + 1 : 0;
  return decision;
}

namespace {

// strtod/strtol wrappers that reject trailing garbage and empty input.
bool parse_double(std::string_view s, double& out) {
  if (s.empty() || s.size() > 64) return false;
  char buf[65];
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + s.size()) return false;
  out = v;
  return true;
}

bool parse_int(std::string_view s, int& out) {
  if (s.empty() || s.size() > 20) return false;
  char buf[21];
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(buf, &end, 10);
  if (errno != 0 || end != buf + s.size()) return false;
  if (v < -1000000000L || v > 1000000000L) return false;
  out = static_cast<int>(v);
  return true;
}

std::optional<ModePolicy> preset_policy(std::string_view name) {
  ModePolicy p;
  if (name == "off") {
    p.enabled = false;
    return p;
  }
  if (name == "conservative") {
    p.enabled = true;
    return p;
  }
  if (name == "aggressive") {
    // Reacts faster and recovers faster: lower entry thresholds,
    // shorter dwell, bigger catch-up bursts.
    p.enabled = true;
    p.enter_l1_factor = 3.0;
    p.enter_l2_factor = 10.0;
    p.exit_factor = 1.5;
    p.min_dwell_cycles = 5;
    p.recovery_cycles = 5;
    p.matchup_burst = 8;
    return p;
  }
  return std::nullopt;
}

}  // namespace

std::optional<ModePolicy> parse_mode_policy(std::string_view spec) {
  if (spec.empty()) return std::nullopt;
  ModePolicy policy;
  policy.enabled = true;
  bool first = true;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (item.empty()) return std::nullopt;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      // Bare token: only valid as a leading preset name.
      if (!first) return std::nullopt;
      const auto preset = preset_policy(item);
      if (!preset.has_value()) return std::nullopt;
      policy = *preset;
      first = false;
      continue;
    }
    first = false;
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key == "enter-l1") {
      if (!parse_double(value, policy.enter_l1_factor)) return std::nullopt;
    } else if (key == "enter-l2") {
      if (!parse_double(value, policy.enter_l2_factor)) return std::nullopt;
    } else if (key == "exit") {
      if (!parse_double(value, policy.exit_factor)) return std::nullopt;
    } else if (key == "dwell") {
      if (!parse_int(value, policy.min_dwell_cycles)) return std::nullopt;
    } else if (key == "recovery") {
      if (!parse_int(value, policy.recovery_cycles)) return std::nullopt;
    } else if (key == "burst") {
      if (!parse_int(value, policy.matchup_burst)) return std::nullopt;
    } else if (key == "window") {
      if (!parse_int(value, policy.matchup_window_cycles)) return std::nullopt;
    } else if (key == "backlog") {
      if (!parse_int(value, policy.overload_backlog)) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  try {
    policy.validate();
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  return policy;
}

std::optional<net::Criticality> parse_criticality(std::string_view name) {
  if (name == "low") return net::Criticality::kLow;
  if (name == "medium") return net::Criticality::kMedium;
  if (name == "high") return net::Criticality::kHigh;
  return std::nullopt;
}

std::optional<CriticalitySpec> parse_criticality_spec(std::string_view spec) {
  CriticalitySpec out;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (item.empty()) return std::nullopt;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) return std::nullopt;
    const std::string_view key = item.substr(0, eq);
    const auto level = parse_criticality(item.substr(eq + 1));
    if (!level.has_value()) return std::nullopt;
    if (key == "static") {
      out.static_default = *level;
    } else if (key == "dyn" || key == "dynamic") {
      out.dynamic_default = *level;
    } else {
      int id = 0;
      if (!parse_int(key, id) || id < 0) return std::nullopt;
      out.overrides.emplace_back(id, *level);
    }
  }
  return out;
}

net::MessageSet with_criticality(const net::MessageSet& set,
                                 const CriticalitySpec& spec) {
  std::vector<net::Message> msgs = set.messages();
  for (auto& m : msgs) {
    if (m.kind == net::MessageKind::kStatic && spec.static_default) {
      m.criticality = *spec.static_default;
    }
    if (m.kind == net::MessageKind::kDynamic && spec.dynamic_default) {
      m.criticality = *spec.dynamic_default;
    }
  }
  for (const auto& [id, level] : spec.overrides) {
    for (auto& m : msgs) {
      if (m.id == id) m.criticality = level;
    }
  }
  return net::MessageSet(std::move(msgs));
}

net::Criticality effective_criticality(const net::Message& m,
                                       bool any_assigned) {
  if (any_assigned) return m.criticality;
  return m.kind == net::MessageKind::kStatic ? net::Criticality::kHigh
                                             : net::Criticality::kLow;
}

}  // namespace coeff::sched
