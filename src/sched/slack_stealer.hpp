// Runtime slack stealing (§III-B, §III-C).
//
// Wraps the static SlackTable with the runtime state the paper's
// dispatcher keeps: how much stolen (top-priority aperiodic) work is
// still displacing the periodic schedule, and how much previously
// admitted hard-aperiodic work is still queued (the theta accumulator).
//
// Invariant maintained: a steal of x at time t at level k is granted
// only if, for every level i >= k,
//     debt_i + x <= S_i(t)
// where S_i(t) comes from the static table and debt_i is the displaced
// work not yet re-absorbed by level-i idle time. Debt absorption follows
// the schedule's own idle curve: as wall-clock passes a level-i idle
// span of length delta, debt_i decreases by delta (the displaced work
// executes there). This keeps every periodic deadline safe (exactly the
// idle-absorption argument of static slack stealing).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sched/slack_table.hpp"
#include "sched/task.hpp"
#include "sim/time.hpp"

namespace coeff::sched {

class SlackStealer {
 public:
  explicit SlackStealer(const TaskSet& set);

  /// Largest steal grantable at `t` at priority `level` (0 = above all
  /// periodics). Advances internal time to `t`.
  [[nodiscard]] sim::Time available(sim::Time t, std::size_t level = 0);

  /// Attempt to steal `x` processing at time `t`, priority `level`.
  /// Returns false (and changes nothing) if any deadline would be put at
  /// risk. Time must be non-decreasing across calls.
  bool try_steal(sim::Time t, sim::Time x, std::size_t level = 0);

  // --- Hard-aperiodic admission (retransmitted segments, §III-C) -------

  /// Admission test for a hard aperiodic job arriving at `t` needing `p`
  /// processing by absolute deadline `d`. Accounts for the already
  /// admitted, not yet completed hard backlog (served FIFO at the top
  /// priority). On success the job is admitted: backlog grows by `p`
  /// and the slack debt is charged immediately.
  bool admit_hard(sim::Time t, sim::Time p, sim::Time d);

  /// Record that `x` of the admitted hard backlog has executed.
  void on_hard_executed(sim::Time x);

  [[nodiscard]] sim::Time hard_backlog() const { return hard_backlog_; }
  [[nodiscard]] const SlackTable& table() const { return *table_; }
  [[nodiscard]] sim::Time debt(std::size_t level) const {
    return debt_.at(level);
  }
  [[nodiscard]] sim::Time now() const { return now_; }

 private:
  void advance_to(sim::Time t);

  // Memoized and immutable; stealers built from the same task set (the
  // usual case across a sweep's BER points) share one table.
  std::shared_ptr<const SlackTable> table_;
  std::vector<sim::Time> debt_;
  // Count of levels with nonzero debt. While zero (the common steady
  // state), `available` is a single O(log) table query instead of a
  // per-level scan.
  std::size_t levels_in_debt_ = 0;
  sim::Time now_ = sim::Time::zero();
  sim::Time hard_backlog_ = sim::Time::zero();
};

}  // namespace coeff::sched
