// Exact fixed-priority preemptive schedule construction.
//
// Builds the timeline of a periodic task set (with offsets) over a
// finite horizon, optionally with "inserted blocks" — aperiodic work
// executed at a priority above every task, which is how slack stealing
// injects transmissions. The result carries per-job finish times and
// the execution timeline, from which SlackTable derives the level-i
// idle curves of §III-B/§III-F and tests obtain an exact oracle.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/task.hpp"
#include "sim/time.hpp"

namespace coeff::sched {

/// Priority level of an execution segment; tasks use their level index
/// (0 = highest), inserted blocks run above all tasks, idle below all.
inline constexpr int kInsertedLevel = -1;
inline constexpr int kIdleLevel = 1'000'000;

struct JobRecord {
  int task_id = 0;
  std::size_t level = 0;       ///< priority level of the task
  std::int64_t index = 0;      ///< k-th job (0-based)
  sim::Time release;
  sim::Time abs_deadline;
  sim::Time finish;            ///< Time::max() if unfinished at horizon
  [[nodiscard]] bool missed() const { return finish > abs_deadline; }
};

struct TimelineSegment {
  sim::Time start;
  sim::Time end;
  int level = kIdleLevel;  ///< kInsertedLevel, task level, or kIdleLevel
};

/// Top-priority aperiodic work injected into the schedule.
struct InsertedBlock {
  sim::Time at;
  sim::Time length;
};

struct ScheduleResult {
  std::vector<JobRecord> jobs;          ///< release order per task level
  std::vector<TimelineSegment> timeline;  ///< contiguous, covers [0, horizon)
  bool any_deadline_missed = false;

  /// Level-i idle time accumulated in [from, to): time where no task of
  /// level <= i (and no inserted block) executes.
  [[nodiscard]] sim::Time level_idle(std::size_t level, sim::Time from,
                                     sim::Time to) const;

  /// Finish time of a specific job, or Time::max() if absent/unfinished.
  [[nodiscard]] sim::Time finish_of(std::size_t level,
                                    std::int64_t index) const;
};

/// Simulate the set over [0, horizon). `inserted` must be sorted by
/// `at`; blocks queue FIFO at the top priority.
[[nodiscard]] ScheduleResult simulate_periodic(
    const TaskSet& set, sim::Time horizon,
    const std::vector<InsertedBlock>& inserted = {});

}  // namespace coeff::sched
