#include "sched/slack_stealer.hpp"

#include <algorithm>
#include <stdexcept>

namespace coeff::sched {

SlackStealer::SlackStealer(const TaskSet& set)
    : table_(SlackTable::shared(set)), debt_(set.size(), sim::Time::zero()) {
  if (!table_->schedulable()) {
    throw std::invalid_argument(
        "SlackStealer: the periodic set alone misses deadlines; there is no "
        "slack to steal");
  }
}

void SlackStealer::advance_to(sim::Time t) {
  if (t < now_) {
    throw std::invalid_argument("SlackStealer: time moved backwards");
  }
  if (t == now_ || levels_in_debt_ == 0) {
    now_ = t;
    return;
  }
  for (std::size_t level = 0; level < debt_.size(); ++level) {
    if (debt_[level] == sim::Time::zero()) continue;
    const sim::Time absorbed = table_->idle_between(level, now_, t);
    debt_[level] = std::max(debt_[level] - absorbed, sim::Time::zero());
    if (debt_[level] == sim::Time::zero()) --levels_in_debt_;
  }
  now_ = t;
}

sim::Time SlackStealer::available(sim::Time t, std::size_t level) {
  advance_to(t);
  if (levels_in_debt_ == 0) {
    // No outstanding displaced work: the answer is the static table's
    // min-folded suffix query (O(log) when level == 0).
    return table_->slack_at(t, level);
  }
  sim::Time avail = sim::Time::max();
  for (std::size_t i = level; i < debt_.size(); ++i) {
    const sim::Time s = table_->level_slack(i, t);
    if (s == sim::Time::max()) continue;
    avail = std::min(avail, std::max(s - debt_[i], sim::Time::zero()));
  }
  return avail;
}

bool SlackStealer::try_steal(sim::Time t, sim::Time x, std::size_t level) {
  if (x < sim::Time::zero()) {
    throw std::invalid_argument("SlackStealer: negative steal");
  }
  if (available(t, level) < x) return false;
  if (x == sim::Time::zero()) return true;
  for (std::size_t i = level; i < debt_.size(); ++i) {
    if (debt_[i] == sim::Time::zero()) ++levels_in_debt_;
    debt_[i] += x;
  }
  return true;
}

bool SlackStealer::admit_hard(sim::Time t, sim::Time p, sim::Time d) {
  if (p <= sim::Time::zero()) {
    throw std::invalid_argument("SlackStealer: non-positive hard work");
  }
  advance_to(t);
  // The job is served FIFO behind the existing hard backlog at the top
  // priority, so it completes at t + backlog + p.
  if (t + hard_backlog_ + p > d) return false;
  if (!try_steal(t, p, 0)) return false;
  hard_backlog_ += p;
  return true;
}

void SlackStealer::on_hard_executed(sim::Time x) {
  if (x < sim::Time::zero() || x > hard_backlog_) {
    throw std::invalid_argument(
        "SlackStealer: executed more hard work than was admitted");
  }
  hard_backlog_ -= x;
}

}  // namespace coeff::sched
