#include "sched/rta.hpp"

#include <cmath>

namespace coeff::sched {

std::optional<sim::Time> response_time_of_level(const TaskSet& set,
                                                std::size_t level) {
  const auto& tasks = set.tasks();
  const PeriodicTask& ti = tasks.at(level);
  sim::Time r = ti.wcet;
  // Iterate to the least fixed point; abort once past the deadline since
  // interference is monotone in r.
  for (int iter = 0; iter < 10'000; ++iter) {
    sim::Time demand = ti.wcet;
    for (std::size_t j = 0; j < level; ++j) {
      const auto& tj = tasks[j];
      const std::int64_t releases =
          (r.ns() + tj.period.ns() - 1) / tj.period.ns();
      demand += tj.wcet * releases;
    }
    if (demand == r) return r;
    r = demand;
    if (r > ti.deadline) return std::nullopt;
  }
  return std::nullopt;  // did not converge (pathological utilization ~ 1)
}

RtaResult response_time_analysis(const TaskSet& set) {
  RtaResult result;
  result.schedulable = true;
  result.response_times.reserve(set.size());
  for (std::size_t level = 0; level < set.size(); ++level) {
    auto r = response_time_of_level(set, level);
    if (r.has_value()) {
      result.response_times.push_back(*r);
    } else {
      result.schedulable = false;
      result.response_times.push_back(sim::Time::max());
    }
  }
  return result;
}

double liu_layland_bound(std::size_t n) {
  if (n == 0) return 1.0;
  const double nn = static_cast<double>(n);
  return nn * (std::pow(2.0, 1.0 / nn) - 1.0);
}

}  // namespace coeff::sched
