// Real-time task model (§III-A).
//
// Static-segment transmissions are hard-deadline periodic tasks;
// retransmission copies are hard-deadline aperiodic tasks; dynamic
// messages are soft-deadline aperiodic tasks. Priorities are
// deadline-monotonic ("tasks with smaller d_i are allocated higher
// priority"), with the task id as a deterministic tie-break.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace coeff::sched {

struct PeriodicTask {
  int id = 0;
  sim::Time wcet;      ///< worst-case computation/transmission time (C_i)
  sim::Time period;    ///< T_i
  sim::Time offset;    ///< phi_i, 0 <= phi_i <= T_i
  sim::Time deadline;  ///< d_i, relative, d_i <= T_i
};

/// An aperiodic arrival (hard if `hard`, else response-time-minimizing).
struct AperiodicJob {
  std::uint64_t id = 0;
  sim::Time arrival;   ///< alpha_k
  sim::Time work;      ///< p_k
  sim::Time deadline;  ///< D_k, relative; ignored when !hard
  bool hard = false;
};

/// A periodic task set held in deadline-monotonic priority order
/// (index 0 = highest priority).
class TaskSet {
 public:
  TaskSet() = default;
  explicit TaskSet(std::vector<PeriodicTask> tasks);

  void add(PeriodicTask t);

  [[nodiscard]] const std::vector<PeriodicTask>& tasks() const {
    return tasks_;
  }
  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  [[nodiscard]] bool empty() const { return tasks_.empty(); }
  /// Task at priority level `level` (0 = highest).
  [[nodiscard]] const PeriodicTask& at_level(std::size_t level) const {
    return tasks_.at(level);
  }

  [[nodiscard]] double utilization() const;
  [[nodiscard]] sim::Time hyperperiod() const;

  /// Throws std::invalid_argument on non-positive period/wcet, deadline
  /// outside (0, period], offset outside [0, period], or duplicate ids.
  void validate() const;

 private:
  void sort_deadline_monotonic();

  std::vector<PeriodicTask> tasks_;
};

}  // namespace coeff::sched
