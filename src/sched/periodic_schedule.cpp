#include "sched/periodic_schedule.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace coeff::sched {

sim::Time ScheduleResult::level_idle(std::size_t level, sim::Time from,
                                     sim::Time to) const {
  sim::Time idle = sim::Time::zero();
  for (const auto& seg : timeline) {
    if (seg.end <= from) continue;
    if (seg.start >= to) break;
    // Level-i idle: the running level is strictly lower priority (larger
    // index) than i, i.e. neither a task of level <= i nor an inserted
    // block occupies the processor.
    if (seg.level != kInsertedLevel &&
        seg.level > static_cast<int>(level)) {
      const sim::Time lo = std::max(seg.start, from);
      const sim::Time hi = std::min(seg.end, to);
      idle += hi - lo;
    }
  }
  return idle;
}

sim::Time ScheduleResult::finish_of(std::size_t level,
                                    std::int64_t index) const {
  for (const auto& job : jobs) {
    if (job.level == level && job.index == index) return job.finish;
  }
  return sim::Time::max();
}

ScheduleResult simulate_periodic(const TaskSet& set, sim::Time horizon,
                                 const std::vector<InsertedBlock>& inserted) {
  set.validate();
  for (std::size_t i = 1; i < inserted.size(); ++i) {
    if (inserted[i].at < inserted[i - 1].at) {
      throw std::invalid_argument("simulate_periodic: inserted blocks must be "
                                  "sorted by insertion time");
    }
  }

  const auto& tasks = set.tasks();
  const std::size_t n = tasks.size();

  struct PendingJob {
    std::size_t job_slot;  ///< index into result.jobs
    sim::Time remaining;
  };

  ScheduleResult result;
  std::vector<std::deque<PendingJob>> pending(n);  // per level, FIFO
  std::deque<PendingJob> inserted_pending;
  std::vector<std::int64_t> next_release_index(n, 0);
  std::size_t next_inserted = 0;

  auto task_next_release = [&](std::size_t level) {
    return tasks[level].offset + tasks[level].period * next_release_index[level];
  };

  auto release_due = [&](sim::Time now) {
    // Release every task job and inserted block with release time <= now.
    for (std::size_t level = 0; level < n; ++level) {
      while (task_next_release(level) <= now &&
             task_next_release(level) < horizon) {
        const sim::Time release = task_next_release(level);
        JobRecord job;
        job.task_id = tasks[level].id;
        job.level = level;
        job.index = next_release_index[level];
        job.release = release;
        job.abs_deadline = release + tasks[level].deadline;
        job.finish = sim::Time::max();
        result.jobs.push_back(job);
        pending[level].push_back({result.jobs.size() - 1, tasks[level].wcet});
        ++next_release_index[level];
      }
    }
    while (next_inserted < inserted.size() &&
           inserted[next_inserted].at <= now) {
      // Inserted blocks are bookkept as jobs of a pseudo task (id -1).
      JobRecord job;
      job.task_id = -1;
      job.level = static_cast<std::size_t>(-1);
      job.index = static_cast<std::int64_t>(next_inserted);
      job.release = inserted[next_inserted].at;
      job.abs_deadline = sim::Time::max();
      job.finish = sim::Time::max();
      result.jobs.push_back(job);
      inserted_pending.push_back(
          {result.jobs.size() - 1, inserted[next_inserted].length});
      ++next_inserted;
    }
  };

  auto next_release_time = [&]() {
    sim::Time next = sim::Time::max();
    for (std::size_t level = 0; level < n; ++level) {
      const sim::Time r = task_next_release(level);
      if (r < horizon) next = std::min(next, r);
    }
    if (next_inserted < inserted.size()) {
      next = std::min(next, inserted[next_inserted].at);
    }
    return next;
  };

  auto highest_pending = [&]() -> int {
    if (!inserted_pending.empty()) return kInsertedLevel;
    for (std::size_t level = 0; level < n; ++level) {
      if (!pending[level].empty()) return static_cast<int>(level);
    }
    return kIdleLevel;
  };

  auto emit_segment = [&](sim::Time start, sim::Time end, int level) {
    if (end <= start) return;
    if (!result.timeline.empty() && result.timeline.back().level == level &&
        result.timeline.back().end == start) {
      result.timeline.back().end = end;  // coalesce
    } else {
      result.timeline.push_back({start, end, level});
    }
  };

  sim::Time now = sim::Time::zero();
  release_due(now);
  while (now < horizon) {
    const int level = highest_pending();
    const sim::Time next_rel = next_release_time();
    if (level == kIdleLevel) {
      const sim::Time until = std::min(next_rel, horizon);
      emit_segment(now, until, kIdleLevel);
      now = until;
      release_due(now);
      continue;
    }
    PendingJob& job = (level == kInsertedLevel)
                          ? inserted_pending.front()
                          : pending[static_cast<std::size_t>(level)].front();
    const sim::Time completion = now + job.remaining;
    const sim::Time until = std::min({completion, next_rel, horizon});
    emit_segment(now, until, level);
    job.remaining -= until - now;
    now = until;
    if (job.remaining == sim::Time::zero()) {
      result.jobs[job.job_slot].finish = now;
      if (level == kInsertedLevel) {
        inserted_pending.pop_front();
      } else {
        pending[static_cast<std::size_t>(level)].pop_front();
      }
    }
    release_due(now);
  }

  for (const auto& job : result.jobs) {
    if (job.task_id >= 0 && job.missed()) {
      result.any_deadline_missed = true;
      break;
    }
  }
  return result;
}

}  // namespace coeff::sched
