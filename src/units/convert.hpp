// Named conversions between the strong unit types and sim::Time.
//
// Every conversion is explicit and total: exact conversions throw
// std::invalid_argument when the value is off the target grid, and the
// rounding conversions say their rounding mode in their name. The
// macrotick conversions are parameterized by the configured macrotick
// length; flexray/config.hpp layers ClusterConfig-aware overloads on
// top of these.
#pragma once

#include <stdexcept>

#include "sim/time.hpp"
#include "units/units.hpp"

namespace coeff::units {

// --- Microseconds <-> sim::Time ------------------------------------------

[[nodiscard]] constexpr sim::Time to_time(Microseconds us) {
  return sim::Time{detail::checked_mul(us.count(), 1'000, "us -> Time")};
}

[[nodiscard]] constexpr bool is_whole_microseconds(sim::Time t) {
  return t.ns() % 1'000 == 0;
}

/// Exact conversion; throws when `t` is not a whole number of us.
[[nodiscard]] constexpr Microseconds to_microseconds(sim::Time t) {
  if (!is_whole_microseconds(t)) {
    throw std::invalid_argument(
        "to_microseconds: time is not a whole number of microseconds");
  }
  return Microseconds{t.ns() / 1'000};
}

/// Truncation toward negative infinity for non-negative times.
[[nodiscard]] constexpr Microseconds floor_microseconds(sim::Time t) {
  return Microseconds{t.ns() / 1'000};
}

// --- Macroticks <-> sim::Time (explicit grid) ----------------------------

[[nodiscard]] constexpr sim::Time to_time(Macroticks mt,
                                          sim::Time gd_macrotick) {
  return sim::Time{
      detail::checked_mul(mt.count(), gd_macrotick.ns(), "MT -> Time")};
}

[[nodiscard]] constexpr bool is_on_macrotick_grid(sim::Time t,
                                                  sim::Time gd_macrotick) {
  return gd_macrotick.ns() > 0 && t.ns() % gd_macrotick.ns() == 0;
}

/// Exact conversion; throws when `t` is off the macrotick grid.
[[nodiscard]] constexpr Macroticks to_macroticks(sim::Time t,
                                                 sim::Time gd_macrotick) {
  if (!is_on_macrotick_grid(t, gd_macrotick)) {
    throw std::invalid_argument(
        "to_macroticks: time is not a whole number of macroticks");
  }
  return Macroticks{t.ns() / gd_macrotick.ns()};
}

/// Whole macroticks fully elapsed by `t` (truncating).
[[nodiscard]] constexpr Macroticks floor_macroticks(sim::Time t,
                                                    sim::Time gd_macrotick) {
  return Macroticks{t.ns() / gd_macrotick.ns()};
}

/// Macroticks needed to cover `t` (rounding up to the next grid line).
[[nodiscard]] constexpr Macroticks ceil_macroticks(sim::Time t,
                                                   sim::Time gd_macrotick) {
  const std::int64_t g = gd_macrotick.ns();
  return Macroticks{(t.ns() + g - 1) / g};
}

// --- CycleTime <-> sim::Time ---------------------------------------------

/// Tag a within-cycle offset. Throws on negative offsets (an offset is
/// always measured forward from its cycle start).
[[nodiscard]] constexpr CycleTime to_cycle_time(sim::Time offset) {
  if (offset < sim::Time::zero()) {
    throw std::invalid_argument("to_cycle_time: negative offset");
  }
  return CycleTime{offset.ns()};
}

[[nodiscard]] constexpr sim::Time to_time(CycleTime offset) {
  return sim::Time{offset.count()};
}

/// Fold an absolute instant onto the cycle it falls in:
/// `t mod cycle_duration` as a typed within-cycle offset.
[[nodiscard]] constexpr CycleTime wrap_cycle_time(sim::Time t,
                                                  sim::Time cycle_duration) {
  return CycleTime{(t % cycle_duration).ns()};
}

}  // namespace coeff::units
