// Compile-time units & identifier safety layer (DESIGN.md §10).
//
// The reproduction juggles several incompatible scalar domains —
// microsecond durations, macrotick counts, cycle indices, within-cycle
// offsets, slot/minislot numbers, frame and node identifiers — that
// were historically all spelled `std::int64_t`/`int`/`std::uint16_t`.
// The paper's correctness hinges on exact grid arithmetic (Theorem 1's
// per-u exponents, slack curves on the macrotick grid, FTDMA minislot
// accounting), so mixing those domains is always a bug. This header
// gives each domain a zero-overhead strong type with only the
// arithmetic that is dimensionally meaningful; every cross-domain
// conversion is an explicit named function (units/convert.hpp, or the
// ClusterConfig-aware overloads in flexray/config.hpp).
//
// Quantities (additive, scalable):
//   Microseconds  wall-clock duration counted in us
//   Macroticks    duration counted in macroticks (the FlexRay grid)
//   CycleTime     offset from the enclosing cycle start, in nanoseconds
// Ordinals (ordered, step/difference only):
//   CycleIndex    communication-cycle number (0-based)
//   SlotId        static slot / dynamic slot counter (1-based)
//   MinislotId    minislot number within the dynamic segment (0-based)
// Identifiers (ordered, hashable, no arithmetic):
//   FrameId       11-bit FlexRay frame identifier
//   NodeId        ECU node index
//
// Additive/multiplicative operations are overflow-checked: a sum of
// hyperperiod-scale Macroticks that would wrap std::int64_t throws
// std::overflow_error instead of silently wrapping.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <type_traits>

namespace coeff::units {

[[noreturn]] inline void overflow_trap(const char* what) {
  throw std::overflow_error(what);
}

namespace detail {

[[nodiscard]] constexpr std::int64_t checked_add(std::int64_t a,
                                                 std::int64_t b,
                                                 const char* what) {
  std::int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) overflow_trap(what);
  return r;
}

[[nodiscard]] constexpr std::int64_t checked_sub(std::int64_t a,
                                                 std::int64_t b,
                                                 const char* what) {
  std::int64_t r = 0;
  if (__builtin_sub_overflow(a, b, &r)) overflow_trap(what);
  return r;
}

[[nodiscard]] constexpr std::int64_t checked_mul(std::int64_t a,
                                                 std::int64_t b,
                                                 const char* what) {
  std::int64_t r = 0;
  if (__builtin_mul_overflow(a, b, &r)) overflow_trap(what);
  return r;
}

}  // namespace detail

/// A duration-like quantity counted in one fixed unit. Closed under
/// addition/subtraction and integer scaling; division by a quantity of
/// the same unit yields a dimensionless count. No implicit conversion
/// to or from the raw representation and no cross-unit arithmetic.
template <class Tag>
class Quantity {
 public:
  using rep = std::int64_t;

  constexpr Quantity() = default;
  constexpr explicit Quantity(rep count) : count_(count) {}

  [[nodiscard]] constexpr rep count() const { return count_; }

  constexpr auto operator<=>(const Quantity&) const = default;

  constexpr Quantity& operator+=(Quantity rhs) {
    count_ = detail::checked_add(count_, rhs.count_, "Quantity +");
    return *this;
  }
  constexpr Quantity& operator-=(Quantity rhs) {
    count_ = detail::checked_sub(count_, rhs.count_, "Quantity -");
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{detail::checked_add(a.count_, b.count_, "Quantity +")};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{detail::checked_sub(a.count_, b.count_, "Quantity -")};
  }
  friend constexpr Quantity operator-(Quantity a) {
    return Quantity{detail::checked_sub(0, a.count_, "Quantity negate")};
  }
  friend constexpr Quantity operator*(Quantity a, std::int64_t k) {
    return Quantity{detail::checked_mul(a.count_, k, "Quantity *")};
  }
  friend constexpr Quantity operator*(std::int64_t k, Quantity a) {
    return a * k;
  }
  /// Truncating split into `k` parts (grid arithmetic keeps exactness
  /// obligations at the call site).
  friend constexpr Quantity operator/(Quantity a, std::int64_t k) {
    return Quantity{a.count_ / k};
  }
  /// Dimensionless: how many whole `b` fit in `a`.
  friend constexpr std::int64_t operator/(Quantity a, Quantity b) {
    return a.count_ / b.count_;
  }
  /// Remainder of `a` modulo the span `b`; same unit as the operands.
  friend constexpr Quantity operator%(Quantity a, Quantity b) {
    return Quantity{a.count_ % b.count_};
  }

  [[nodiscard]] static constexpr Quantity zero() { return Quantity{0}; }

 private:
  rep count_ = 0;
};

/// An ordered position in a discrete sequence (cycle number, slot
/// number, minislot number). Supports stepping by a dimensionless count
/// and taking differences, but not scaling or cross-ordinal mixing.
template <class Tag>
class Ordinal {
 public:
  using rep = std::int64_t;

  constexpr Ordinal() = default;
  constexpr explicit Ordinal(rep value) : value_(value) {}

  [[nodiscard]] constexpr rep value() const { return value_; }

  constexpr auto operator<=>(const Ordinal&) const = default;

  constexpr Ordinal& operator++() {
    value_ = detail::checked_add(value_, 1, "Ordinal ++");
    return *this;
  }

  friend constexpr Ordinal operator+(Ordinal a, std::int64_t steps) {
    return Ordinal{detail::checked_add(a.value_, steps, "Ordinal +")};
  }
  friend constexpr Ordinal operator-(Ordinal a, std::int64_t steps) {
    return Ordinal{detail::checked_sub(a.value_, steps, "Ordinal -")};
  }
  /// Signed distance between two positions, in steps.
  friend constexpr std::int64_t operator-(Ordinal a, Ordinal b) {
    return detail::checked_sub(a.value_, b.value_, "Ordinal diff");
  }

 private:
  rep value_ = 0;
};

/// A pure identifier: ordered and hashable so it can key containers,
/// with no arithmetic at all.
template <class Tag, class Rep>
class Identifier {
 public:
  using rep = Rep;

  constexpr Identifier() = default;
  constexpr explicit Identifier(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  constexpr auto operator<=>(const Identifier&) const = default;

 private:
  Rep value_ = 0;
};

using Microseconds = Quantity<struct MicrosecondsTag>;
using Macroticks = Quantity<struct MacroticksTag>;
/// Offset from the start of the enclosing communication cycle, in
/// nanoseconds (sub-macrotick precision is needed for wire-time ends).
using CycleTime = Quantity<struct CycleTimeTag>;

using CycleIndex = Ordinal<struct CycleIndexTag>;
using SlotId = Ordinal<struct SlotIdTag>;
using MinislotId = Ordinal<struct MinislotIdTag>;

using FrameId = Identifier<struct FrameIdTag, std::uint16_t>;
using NodeId = Identifier<struct NodeIdTag, std::int32_t>;

/// The FrameId of a frame transmitted in a slot equals the slot number
/// (FlexRay spec §4.1); this is the one sanctioned SlotId -> FrameId
/// conversion. Throws when the slot number exceeds the 11-bit id space.
[[nodiscard]] constexpr FrameId to_frame_id(SlotId slot) {
  if (slot.value() < 0 || slot.value() > 2047) {
    overflow_trap("to_frame_id: slot outside the 11-bit frame-id space");
  }
  return FrameId{static_cast<std::uint16_t>(slot.value())};
}

/// Inverse of to_frame_id for frames sent in their owning slot.
[[nodiscard]] constexpr SlotId to_slot_id(FrameId id) {
  return SlotId{static_cast<std::int64_t>(id.value())};
}

// --- Zero-overhead guarantees -------------------------------------------
// A strong type must compile down to its representation: same size, no
// vtable, trivially copyable, usable in memcpy'd aggregates.
#define COEFF_UNITS_ASSERT_ZERO_OVERHEAD(T, Rep)          \
  static_assert(sizeof(T) == sizeof(Rep));                \
  static_assert(alignof(T) == alignof(Rep));              \
  static_assert(std::is_trivially_copyable_v<T>);         \
  static_assert(std::is_standard_layout_v<T>);            \
  static_assert(std::is_nothrow_default_constructible_v<T>)

COEFF_UNITS_ASSERT_ZERO_OVERHEAD(Microseconds, std::int64_t);
COEFF_UNITS_ASSERT_ZERO_OVERHEAD(Macroticks, std::int64_t);
COEFF_UNITS_ASSERT_ZERO_OVERHEAD(CycleTime, std::int64_t);
COEFF_UNITS_ASSERT_ZERO_OVERHEAD(CycleIndex, std::int64_t);
COEFF_UNITS_ASSERT_ZERO_OVERHEAD(SlotId, std::int64_t);
COEFF_UNITS_ASSERT_ZERO_OVERHEAD(MinislotId, std::int64_t);
COEFF_UNITS_ASSERT_ZERO_OVERHEAD(FrameId, std::uint16_t);
COEFF_UNITS_ASSERT_ZERO_OVERHEAD(NodeId, std::int32_t);

#undef COEFF_UNITS_ASSERT_ZERO_OVERHEAD

}  // namespace coeff::units

// Hash support so identifiers and ordinals can key unordered containers.
template <class Tag>
struct std::hash<coeff::units::Ordinal<Tag>> {
  std::size_t operator()(coeff::units::Ordinal<Tag> v) const noexcept {
    return std::hash<std::int64_t>{}(v.value());
  }
};

template <class Tag, class Rep>
struct std::hash<coeff::units::Identifier<Tag, Rep>> {
  std::size_t operator()(coeff::units::Identifier<Tag, Rep> v) const noexcept {
    return std::hash<Rep>{}(v.value());
  }
};
