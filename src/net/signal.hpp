// ECU signals and signal-to-frame packing.
//
// §II-A: an ECU produces signals with period, offset, deadline and
// length; FlexRay transmits *frames*, so signals sharing a producer and
// compatible timing are packed together. We use first-fit-decreasing
// bin packing within each (node, period) class — the classic frame
// packing approach the paper cites ([9], [31]).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "sim/time.hpp"

namespace coeff::net {

struct Signal {
  int id = 0;
  std::string name;
  int node = 0;        ///< producing ECU (E_i)
  sim::Time period;    ///< P_j^i
  sim::Time offset;    ///< O_j^i
  sim::Time deadline;  ///< D_j^i (relative)
  std::int64_t bits = 0;  ///< W_j^i
};

struct PackingOptions {
  /// Maximum payload of one packed frame, in bits.
  std::int64_t max_frame_bits = 254 * 8;
  /// First message id to assign to packed frames.
  int first_message_id = 1;
  MessageKind kind = MessageKind::kStatic;
};

/// Pack `signals` into messages. Signals are grouped by (node, period);
/// within a group they are placed first-fit in decreasing size order.
/// The packed message inherits the group's period, the earliest offset
/// and the tightest deadline of its members, so meeting the message
/// deadline meets every member's.
///
/// Throws std::invalid_argument if any single signal exceeds
/// max_frame_bits.
[[nodiscard]] MessageSet pack_signals(const std::vector<Signal>& signals,
                                      const PackingOptions& options = {});

/// Number of frames a naive one-signal-per-frame mapping would need,
/// for comparing packing efficiency in tests/benches.
[[nodiscard]] std::size_t unpacked_frame_count(
    const std::vector<Signal>& signals);

}  // namespace coeff::net
