#include "net/workloads.hpp"

#include <array>
#include <stdexcept>

namespace coeff::net {

namespace {

struct PaperRow {
  int offset_us;
  int period_ms;
  int deadline_ms;
  int size_bits;
};

// Table II, verbatim (offsets in ms converted to us).
constexpr std::array<PaperRow, 20> kBbwRows{{
    {280, 8, 8, 1292},  {760, 8, 8, 285},   {580, 1, 1, 1574},
    {720, 1, 1, 552},   {870, 1, 1, 348},   {920, 1, 1, 469},
    {340, 1, 1, 1184},  {280, 8, 8, 875},   {750, 8, 8, 759},
    {520, 8, 8, 932},   {950, 8, 8, 1261},  {620, 8, 8, 633},
    {720, 8, 8, 452},   {850, 8, 8, 342},   {910, 8, 8, 856},
    {470, 8, 8, 1578},  {560, 1, 1, 1742},  {580, 1, 1, 553},
    {920, 1, 1, 1172},  {680, 1, 1, 878},
}};

// Table III, verbatim.
constexpr std::array<PaperRow, 20> kAccRows{{
    {420, 16, 16, 1024}, {620, 16, 16, 1024}, {580, 16, 16, 1024},
    {250, 16, 16, 1024}, {390, 16, 16, 1024}, {480, 24, 24, 1024},
    {220, 24, 24, 1024}, {510, 24, 24, 1024}, {320, 24, 24, 1024},
    {470, 24, 24, 1024}, {650, 24, 24, 1024}, {420, 24, 24, 1024},
    {310, 32, 32, 1280}, {560, 32, 32, 1280}, {480, 32, 32, 1280},
    {320, 32, 32, 256},  {660, 32, 32, 256},  {420, 32, 32, 256},
    {260, 32, 32, 1280}, {350, 32, 32, 256},
}};

MessageSet from_rows(const std::array<PaperRow, 20>& rows, const char* prefix,
                     int first_id) {
  MessageSet out;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    Message m;
    m.id = first_id + static_cast<int>(i);
    m.name = std::string(prefix) + "_" + std::to_string(i + 1);
    m.node = static_cast<int>(i) % kPaperNodeCount;
    m.kind = MessageKind::kStatic;
    m.period = sim::millis(row.period_ms);
    m.offset = sim::micros(row.offset_us);
    m.deadline = sim::millis(row.deadline_ms);
    m.size_bits = row.size_bits;
    out.add(std::move(m));
  }
  out.validate();
  return out;
}

}  // namespace

MessageSet brake_by_wire() { return from_rows(kBbwRows, "bbw", 1); }

MessageSet adaptive_cruise() { return from_rows(kAccRows, "acc", 101); }

MessageSet synthetic_static(const SyntheticStaticOptions& opt, sim::Rng& rng) {
  if (opt.count == 0) return {};
  if (opt.min_period > opt.max_period || opt.min_deadline > opt.max_deadline ||
      opt.min_bits > opt.max_bits || opt.nodes <= 0) {
    throw std::invalid_argument("synthetic_static: inconsistent options");
  }
  MessageSet out;
  const sim::Time cycle = sim::millis(5);
  const std::int64_t min_mult =
      std::max<std::int64_t>(1, opt.min_period / cycle);
  const std::int64_t max_mult = std::max(min_mult, opt.max_period / cycle);
  for (std::size_t i = 0; i < opt.count; ++i) {
    Message m;
    m.id = opt.first_id + static_cast<int>(i);
    m.name = "syn_" + std::to_string(m.id);
    m.node = static_cast<int>(i) % opt.nodes;
    m.kind = MessageKind::kStatic;
    // Period: a whole number of communication cycles in [min, max].
    m.period = cycle * rng.uniform_int(min_mult, max_mult);
    // Deadline: within [min_deadline, min(max_deadline, period)].
    const sim::Time dmax = std::min(opt.max_deadline, m.period);
    const sim::Time dmin = std::min(opt.min_deadline, dmax);
    m.deadline = sim::micros(rng.uniform_int(dmin.ns() / 1000,
                                             dmax.ns() / 1000));
    m.offset = sim::micros(rng.uniform_int(0, 999));
    m.size_bits = rng.uniform_int(opt.min_bits, opt.max_bits);
    out.add(std::move(m));
  }
  out.validate();
  return out;
}

MessageSet sae_aperiodic(const SaeAperiodicOptions& opt, sim::Rng& rng) {
  MessageSet out;
  for (std::size_t i = 0; i < opt.count; ++i) {
    Message m;
    m.id = opt.first_id + static_cast<int>(i);
    m.name = "sae_" + std::to_string(i + 1);
    m.node = static_cast<int>(i) % opt.nodes;
    m.kind = MessageKind::kDynamic;
    m.period = opt.period;
    m.offset = sim::micros(rng.uniform_int(0, opt.period.ns() / 1000 - 1));
    m.deadline = opt.deadline;
    m.size_bits = rng.uniform_int(opt.min_bits, opt.max_bits);
    // Paper: "30 aperiodic messages with the IDs 81 to 110 or 121 to 150".
    m.frame_id = opt.static_slots + 1 + static_cast<int>(i);
    out.add(std::move(m));
  }
  out.validate();
  return out;
}

std::vector<sim::Time> arrivals(const Message& m, sim::Time horizon,
                                const ArrivalOptions& opt, sim::Rng& rng) {
  std::vector<sim::Time> out;
  switch (opt.process) {
    case ArrivalProcess::kPeriodic: {
      for (sim::Time t = m.offset; t < horizon; t += m.period) {
        out.push_back(t);
      }
      break;
    }
    case ArrivalProcess::kPoisson: {
      const double rate = 1.0 / m.period.as_seconds();
      double t = m.offset.as_seconds();
      while (true) {
        t += rng.exponential(rate);
        const auto at = sim::nanos(static_cast<std::int64_t>(t * 1e9));
        if (at >= horizon) break;
        out.push_back(at);
      }
      break;
    }
    case ArrivalProcess::kBursty: {
      for (sim::Time t = m.offset; t < horizon; t += m.period) {
        for (int i = 0; i < opt.burst; ++i) {
          // Back-to-back releases 100 us apart within the burst.
          const sim::Time at = t + sim::micros(100) * i;
          if (at < horizon) out.push_back(at);
        }
      }
      break;
    }
  }
  return out;
}

}  // namespace coeff::net
