// CSV import/export for message sets.
//
// A practical deployment maintains its communication matrix in tables
// (the paper's Tables II/III are exactly that); this loader makes the
// library usable with such data directly. Format, one message per line:
//
//   id,name,node,kind,period_us,offset_us,deadline_us,size_bits,frame_id
//
// `kind` is "static" or "dynamic"; header lines and '#' comments are
// skipped; whitespace around fields is ignored.
#pragma once

#include <string>

#include "net/message.hpp"

namespace coeff::net {

/// Serialize the set (with a header line).
[[nodiscard]] std::string to_csv(const MessageSet& set);

/// Parse a CSV document. Throws std::invalid_argument with the line
/// number on malformed input; the returned set is validated.
[[nodiscard]] MessageSet from_csv(const std::string& text);

/// Convenience file wrappers (throw std::runtime_error on I/O failure).
void save_csv(const MessageSet& set, const std::string& path);
[[nodiscard]] MessageSet load_csv(const std::string& path);

}  // namespace coeff::net
