#include "net/csv.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace coeff::net {

namespace {

constexpr const char* kHeader =
    "id,name,node,kind,period_us,offset_us,deadline_us,size_bits,frame_id";

std::string trim(const std::string& s) {
  std::size_t lo = 0;
  std::size_t hi = s.size();
  while (lo < hi && std::isspace(static_cast<unsigned char>(s[lo]))) ++lo;
  while (hi > lo && std::isspace(static_cast<unsigned char>(s[hi - 1]))) --hi;
  return s.substr(lo, hi - lo);
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(trim(current));
  return fields;
}

std::int64_t parse_int(const std::string& field, int line_no,
                       const char* what) {
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(field, &used);
    if (used != field.size()) throw std::invalid_argument(field);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("csv line " + std::to_string(line_no) +
                                ": bad " + what + " '" + field + "'");
  }
}

/// parse_int with an inclusive range check, so downstream casts and
/// unit conversions cannot truncate or overflow on hostile input.
std::int64_t parse_int_in(const std::string& field, int line_no,
                          const char* what, std::int64_t lo, std::int64_t hi) {
  const std::int64_t value = parse_int(field, line_no, what);
  if (value < lo || value > hi) {
    throw std::invalid_argument("csv line " + std::to_string(line_no) + ": " +
                                what + " out of range '" + field + "'");
  }
  return value;
}

/// Microsecond fields are multiplied by 1000 on the way into sim::Time;
/// cap them so that product stays inside int64 nanoseconds.
constexpr std::int64_t kMaxMicros =
    std::numeric_limits<std::int64_t>::max() / 1000;
constexpr std::int64_t kMinMicros =
    std::numeric_limits<std::int64_t>::min() / 1000;
constexpr std::int64_t kIntMax = std::numeric_limits<int>::max();
constexpr std::int64_t kIntMin = std::numeric_limits<int>::min();

}  // namespace

std::string to_csv(const MessageSet& set) {
  std::string out = std::string(kHeader) + "\n";
  char line[512];
  for (const auto& m : set.messages()) {
    std::snprintf(line, sizeof line,
                  "%d,%s,%d,%s,%lld,%lld,%lld,%lld,%d\n", m.id,
                  m.name.c_str(), m.node, to_string(m.kind),
                  static_cast<long long>(m.period.ns() / 1000),
                  static_cast<long long>(m.offset.ns() / 1000),
                  static_cast<long long>(m.deadline.ns() / 1000),
                  static_cast<long long>(m.size_bits), m.frame_id);
    out += line;
  }
  return out;
}

MessageSet from_csv(const std::string& text) {
  MessageSet set;
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (trimmed == kHeader) continue;
    const auto fields = split_fields(trimmed);
    if (fields.size() != 9) {
      throw std::invalid_argument("csv line " + std::to_string(line_no) +
                                  ": expected 9 fields, got " +
                                  std::to_string(fields.size()));
    }
    Message m;
    m.id = static_cast<int>(
        parse_int_in(fields[0], line_no, "id", kIntMin, kIntMax));
    m.name = fields[1];
    m.node = static_cast<int>(
        parse_int_in(fields[2], line_no, "node", kIntMin, kIntMax));
    if (fields[3] == "static") {
      m.kind = MessageKind::kStatic;
    } else if (fields[3] == "dynamic") {
      m.kind = MessageKind::kDynamic;
    } else {
      throw std::invalid_argument("csv line " + std::to_string(line_no) +
                                  ": bad kind '" + fields[3] + "'");
    }
    m.period = sim::micros(
        parse_int_in(fields[4], line_no, "period", kMinMicros, kMaxMicros));
    m.offset = sim::micros(
        parse_int_in(fields[5], line_no, "offset", kMinMicros, kMaxMicros));
    m.deadline = sim::micros(
        parse_int_in(fields[6], line_no, "deadline", kMinMicros, kMaxMicros));
    m.size_bits = parse_int(fields[7], line_no, "size");
    m.frame_id = static_cast<int>(
        parse_int_in(fields[8], line_no, "frame_id", kIntMin, kIntMax));
    set.add(std::move(m));
  }
  set.validate();
  return set;
}

void save_csv(const MessageSet& set, const std::string& path) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("save_csv: cannot open " + path);
  file << to_csv(set);
  if (!file) throw std::runtime_error("save_csv: write failed on " + path);
}

MessageSet load_csv(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("load_csv: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return from_csv(buffer.str());
}

}  // namespace coeff::net
