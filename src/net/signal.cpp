#include "net/signal.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace coeff::net {

MessageSet pack_signals(const std::vector<Signal>& signals,
                        const PackingOptions& options) {
  for (const auto& s : signals) {
    if (s.bits > options.max_frame_bits) {
      throw std::invalid_argument("pack_signals: signal " +
                                  std::to_string(s.id) +
                                  " exceeds the frame payload limit");
    }
    if (s.bits <= 0) {
      throw std::invalid_argument("pack_signals: signal " +
                                  std::to_string(s.id) +
                                  " has non-positive size");
    }
  }

  // Group by (node, period): only same-rate signals from the same
  // producer can share a frame without changing anyone's rate.
  std::map<std::pair<int, std::int64_t>, std::vector<const Signal*>> groups;
  for (const auto& s : signals) {
    groups[{s.node, s.period.ns()}].push_back(&s);
  }

  struct Bin {
    std::int64_t used = 0;
    sim::Time offset = sim::Time::max();
    sim::Time deadline = sim::Time::max();
    std::vector<int> members;
  };

  MessageSet out;
  int next_id = options.first_message_id;
  for (auto& [key, members] : groups) {
    std::sort(members.begin(), members.end(),
              [](const Signal* a, const Signal* b) {
                if (a->bits != b->bits) return a->bits > b->bits;
                return a->id < b->id;  // deterministic tie-break
              });
    std::vector<Bin> bins;
    for (const Signal* s : members) {
      Bin* placed = nullptr;
      for (auto& bin : bins) {
        if (bin.used + s->bits <= options.max_frame_bits) {
          placed = &bin;
          break;
        }
      }
      if (placed == nullptr) {
        bins.emplace_back();
        placed = &bins.back();
      }
      placed->used += s->bits;
      placed->offset = std::min(placed->offset, s->offset);
      placed->deadline = std::min(placed->deadline, s->deadline);
      placed->members.push_back(s->id);
    }

    for (const auto& bin : bins) {
      Message m;
      m.id = next_id++;
      m.name = "packed_n" + std::to_string(key.first) + "_p" +
               std::to_string(sim::Time{key.second}.as_ms()).substr(0, 6);
      m.node = key.first;
      m.kind = options.kind;
      m.period = sim::Time{key.second};
      m.offset = bin.offset;
      m.deadline = bin.deadline;
      m.size_bits = bin.used;
      out.add(std::move(m));
    }
  }
  return out;
}

std::size_t unpacked_frame_count(const std::vector<Signal>& signals) {
  return signals.size();
}

}  // namespace coeff::net
