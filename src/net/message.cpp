#include "net/message.hpp"

#include <numeric>
#include <set>
#include <stdexcept>

namespace coeff::net {

namespace {
void require(bool ok, const std::string& what) {
  if (!ok) throw std::invalid_argument("MessageSet: " + what);
}
}  // namespace

MessageSet::MessageSet(std::vector<Message> messages)
    : msgs_(std::move(messages)) {}

void MessageSet::add(Message m) { msgs_.push_back(std::move(m)); }

MessageSet MessageSet::of_kind(MessageKind kind) const {
  MessageSet out;
  for (const auto& m : msgs_) {
    if (m.kind == kind) out.add(m);
  }
  return out;
}

MessageSet MessageSet::prefix(std::size_t n) const {
  MessageSet out;
  for (std::size_t i = 0; i < std::min(n, msgs_.size()); ++i) {
    out.add(msgs_[i]);
  }
  return out;
}

MessageSet MessageSet::merged_with(const MessageSet& other) const {
  MessageSet out = *this;
  for (const auto& m : other.messages()) out.add(m);
  return out;
}

double MessageSet::demanded_bits_per_second() const {
  double total = 0.0;
  for (const auto& m : msgs_) {
    total += static_cast<double>(m.size_bits) / m.period.as_seconds();
  }
  return total;
}

sim::Time MessageSet::hyperperiod() const {
  std::int64_t lcm_ns = 1;
  for (const auto& m : msgs_) {
    lcm_ns = std::lcm(lcm_ns, m.period.ns());
    if (lcm_ns > sim::seconds(3600).ns()) {
      throw std::domain_error("MessageSet::hyperperiod exceeds one hour");
    }
  }
  return sim::nanos(lcm_ns);
}

void MessageSet::validate() const {
  std::set<int> ids;
  std::set<int> static_frame_ids;
  for (const auto& m : msgs_) {
    require(ids.insert(m.id).second,
            "duplicate message id " + std::to_string(m.id));
    require(m.period > sim::Time::zero(),
            "message " + std::to_string(m.id) + ": period must be positive");
    require(m.size_bits > 0,
            "message " + std::to_string(m.id) + ": size must be positive");
    require(m.deadline > sim::Time::zero(),
            "message " + std::to_string(m.id) + ": deadline must be positive");
    require(m.deadline <= m.period,
            "message " + std::to_string(m.id) +
                ": deadline exceeds period (constrained-deadline model)");
    require(m.offset >= sim::Time::zero(),
            "message " + std::to_string(m.id) + ": negative offset");
    require(m.offset <= m.period,
            "message " + std::to_string(m.id) + ": offset exceeds period");
    require(m.node >= 0,
            "message " + std::to_string(m.id) + ": negative node");
    if (m.kind == MessageKind::kStatic && m.frame_id != 0) {
      require(static_frame_ids.insert(m.frame_id).second,
              "message " + std::to_string(m.id) + ": static frame id " +
                  std::to_string(m.frame_id) + " already taken");
    }
  }
}

const Message* MessageSet::find(int id) const {
  for (const auto& m : msgs_) {
    if (m.id == id) return &m;
  }
  return nullptr;
}

}  // namespace coeff::net
