// Message model: the unit the schedulers reason about.
//
// A message is a (possibly packed) frame payload produced by one ECU
// with a period, an offset, a relative deadline and a size in bits —
// exactly the four signal attributes of §II-A, lifted to frame level.
// Static messages occupy a reserved static slot (frame_id = slot
// number); dynamic messages contend for the dynamic segment under
// FTDMA priority = frame id.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace coeff::net {

enum class MessageKind : std::uint8_t { kStatic, kDynamic };

[[nodiscard]] constexpr const char* to_string(MessageKind k) {
  return k == MessageKind::kStatic ? "static" : "dynamic";
}

/// ASIL-style message criticality (three levels). The mode-change
/// protocol sheds kLow dynamics in DEGRADED-L1 and everything below
/// kHigh in DEGRADED-L2; static traffic defaults to kHigh and dynamic
/// traffic to kLow, which reproduces the pre-criticality behaviour of
/// the binary degraded flag when no explicit levels are assigned.
enum class Criticality : std::uint8_t { kLow = 0, kMedium = 1, kHigh = 2 };

[[nodiscard]] constexpr const char* to_string(Criticality c) {
  return c == Criticality::kLow      ? "low"
         : c == Criticality::kMedium ? "medium"
                                     : "high";
}

struct Message {
  int id = 0;          ///< unique within its MessageSet
  std::string name;
  int node = 0;        ///< producing ECU index
  MessageKind kind = MessageKind::kStatic;
  sim::Time period;    ///< production period (P in §II-A)
  sim::Time offset;    ///< first release (O)
  sim::Time deadline;  ///< relative deadline (D)
  std::int64_t size_bits = 0;  ///< payload length (W), bits
  /// Assigned frame ID: static slot number, or dynamic frame id
  /// (doubles as FTDMA priority — lower is more urgent). 0 = unassigned.
  int frame_id = 0;
  /// ASIL-style level the mode-change protocol sheds/admits by. The
  /// schedulers apply the kind-dependent default (static → kHigh,
  /// dynamic → kLow) when a workload leaves every message at kLow and
  /// a criticality spec does not override it.
  Criticality criticality = Criticality::kLow;
};

class MessageSet {
 public:
  MessageSet() = default;
  explicit MessageSet(std::vector<Message> messages);

  void add(Message m);

  [[nodiscard]] const std::vector<Message>& messages() const { return msgs_; }
  [[nodiscard]] std::size_t size() const { return msgs_.size(); }
  [[nodiscard]] bool empty() const { return msgs_.empty(); }
  [[nodiscard]] const Message& operator[](std::size_t i) const {
    return msgs_.at(i);
  }

  /// Subset of one kind, preserving order.
  [[nodiscard]] MessageSet of_kind(MessageKind kind) const;

  /// First `n` messages (used for the running-time sweeps).
  [[nodiscard]] MessageSet prefix(std::size_t n) const;

  /// Concatenate two sets; message ids must stay unique.
  [[nodiscard]] MessageSet merged_with(const MessageSet& other) const;

  /// Bus utilization demanded by the set: sum of size/period in bits/s.
  [[nodiscard]] double demanded_bits_per_second() const;

  /// Hyperperiod (LCM of periods). Throws if it exceeds ~1 hour, which
  /// signals a misconfigured set rather than a schedulable one.
  [[nodiscard]] sim::Time hyperperiod() const;

  /// Throws std::invalid_argument on: duplicate ids, non-positive
  /// period/size, deadline > period (constrained-deadline model),
  /// negative offset, offset > period, duplicate static frame ids.
  void validate() const;

  [[nodiscard]] const Message* find(int id) const;

 private:
  std::vector<Message> msgs_;
};

}  // namespace coeff::net
