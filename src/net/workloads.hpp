// Workload generators: the paper's evaluation inputs (§IV-A).
//
//  * Brake-By-Wire (Table II) and Adaptive Cruise Controller (Table III)
//    message sets, verbatim.
//  * Synthetic static test cases: periods 5..50 ms, deadlines 1..20 ms.
//  * SAE-style aperiodic set: 30 messages, 50 ms period/deadline, frame
//    IDs 81..110 (80 static slots) or 121..150 (120 static slots).
//  * Arrival-process generators for aperiodic traffic (periodic,
//    Poisson, bursty) used by tests and ablations.
#pragma once

#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace coeff::net {

/// Number of ECU nodes the paper's testbed uses; messages are
/// distributed round-robin over them.
inline constexpr int kPaperNodeCount = 10;

/// Table II: 20 Brake-By-Wire static messages.
[[nodiscard]] MessageSet brake_by_wire();

/// Table III: 20 Adaptive Cruise Controller static messages.
[[nodiscard]] MessageSet adaptive_cruise();

struct SyntheticStaticOptions {
  std::size_t count = 100;
  sim::Time min_period = sim::millis(5);
  sim::Time max_period = sim::millis(50);
  sim::Time min_deadline = sim::millis(1);
  sim::Time max_deadline = sim::millis(20);
  std::int64_t min_bits = 256;
  std::int64_t max_bits = 1600;
  int nodes = kPaperNodeCount;
  int first_id = 1;
};

/// Randomized static message set per §IV-A ("randomly changing message
/// parameters, such as periods and deadlines"). Periods are drawn from
/// multiples of the 5 ms communication cycle so the set has a bounded
/// hyperperiod; deadlines never exceed the period.
[[nodiscard]] MessageSet synthetic_static(const SyntheticStaticOptions& opt,
                                          sim::Rng& rng);

struct SaeAperiodicOptions {
  std::size_t count = 30;
  /// First dynamic frame ID minus one; the paper uses the number of
  /// static slots (80 -> IDs 81..110, 120 -> IDs 121..150).
  int static_slots = 80;
  sim::Time period = sim::millis(50);
  sim::Time deadline = sim::millis(50);
  std::int64_t min_bits = 64;
  std::int64_t max_bits = 512;
  int nodes = kPaperNodeCount;
  int first_id = 1000;
};

/// SAE J2056/1-style aperiodic (dynamic-segment) message set.
[[nodiscard]] MessageSet sae_aperiodic(const SaeAperiodicOptions& opt,
                                       sim::Rng& rng);

/// How aperiodic message instances arrive.
enum class ArrivalProcess : std::uint8_t {
  kPeriodic,  ///< offset + k * period (the paper's setting)
  kPoisson,   ///< exponential interarrivals with mean = period
  kBursty,    ///< bursts of `burst` back-to-back instances each period
};

struct ArrivalOptions {
  ArrivalProcess process = ArrivalProcess::kPeriodic;
  int burst = 3;  ///< instances per burst (kBursty only)
};

/// Arrival times of `m` in [0, horizon).
[[nodiscard]] std::vector<sim::Time> arrivals(const Message& m,
                                              sim::Time horizon,
                                              const ArrivalOptions& opt,
                                              sim::Rng& rng);

}  // namespace coeff::net
