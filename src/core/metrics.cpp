#include "core/metrics.hpp"

#include <cstdio>

namespace coeff::core {

namespace {

double utilization(std::int64_t useful_bits, sim::Time capacity,
                   double bit_rate) {
  if (capacity <= sim::Time::zero() || bit_rate <= 0.0) return 0.0;
  const double capacity_bits = capacity.as_seconds() * bit_rate;
  if (capacity_bits <= 0.0) return 0.0;
  return static_cast<double>(useful_bits) / capacity_bits;
}

}  // namespace

double RunStats::static_bandwidth_utilization() const {
  return utilization(useful_bits_static_wire, static_wire_capacity,
                     bus_bit_rate);
}

double RunStats::dynamic_bandwidth_utilization() const {
  return utilization(useful_bits_dynamic_wire, dynamic_wire_capacity,
                     bus_bit_rate);
}

double RunStats::overall_bandwidth_utilization() const {
  return utilization(useful_bits_static_wire + useful_bits_dynamic_wire,
                     static_wire_capacity + dynamic_wire_capacity,
                     bus_bit_rate);
}

double RunStats::overall_miss_ratio() const {
  const std::int64_t settled =
      statics.delivered + statics.missed + dynamics.delivered + dynamics.missed;
  if (settled == 0) return 0.0;
  return static_cast<double>(statics.missed + dynamics.missed) /
         static_cast<double>(settled);
}

std::string RunStats::summary() const {
  char buf[2304];
  std::snprintf(
      buf, sizeof buf,
      "running_time=%s\n"
      "static : released=%lld delivered=%lld missed=%lld (%.2f%%) "
      "avg_latency=%.3fms copies=%lld\n"
      "dynamic: released=%lld delivered=%lld missed=%lld (%.2f%%) "
      "avg_latency=%.3fms copies=%lld\n"
      "bw_util: static=%.1f%% dynamic=%.1f%% overall=%.1f%%\n"
      "retx   : planned=%lld sent=%lld dropped=%lld | slack_slots=%lld "
      "dyn_in_static=%lld\n"
      "resil  : plan_swaps=%lld shed=%lld degraded=%d "
      "logR=%.6g target=%.6g\n"
      "struct : crashes=%lld restarts=%lld outages=%lld down_cycles=%lld "
      "lost=%lld src_lost=%lld\n"
      "recover: failovers=%lld fo_latency=%.3fms silent_detect=%lld "
      "member_replans=%lld votes=%lld/%lld\n"
      "mode   : changes=%lld shed=%lld matchup=%lld abandoned=%lld "
      "dwell=%lld/%lld/%lld final=%d\n"
      "energy : total=%.3fmJ per_cycle=%.3fuJ saved=%.3fmJ "
      "slept_slots=%lld\n",
      sim::to_string(running_time).c_str(),
      static_cast<long long>(statics.released),
      static_cast<long long>(statics.delivered),
      static_cast<long long>(statics.missed), statics.miss_ratio() * 100.0,
      statics.latency.mean_ms(),
      static_cast<long long>(statics.copies_sent),
      static_cast<long long>(dynamics.released),
      static_cast<long long>(dynamics.delivered),
      static_cast<long long>(dynamics.missed), dynamics.miss_ratio() * 100.0,
      dynamics.latency.mean_ms(),
      static_cast<long long>(dynamics.copies_sent),
      static_bandwidth_utilization() * 100.0,
      dynamic_bandwidth_utilization() * 100.0,
      overall_bandwidth_utilization() * 100.0,
      static_cast<long long>(retransmission_copies_planned),
      static_cast<long long>(retransmission_copies_sent),
      static_cast<long long>(retransmission_copies_dropped),
      static_cast<long long>(slack_slots_stolen),
      static_cast<long long>(dynamic_in_static_slots),
      static_cast<long long>(plan_swaps),
      static_cast<long long>(dynamic_frames_shed), plan_degraded ? 1 : 0,
      plan_achieved_log_r, plan_target_log_r,
      static_cast<long long>(node_crashes),
      static_cast<long long>(node_restarts),
      static_cast<long long>(channel_outages),
      static_cast<long long>(channel_down_cycles),
      static_cast<long long>(frames_lost),
      static_cast<long long>(statics.source_lost + dynamics.source_lost),
      static_cast<long long>(failovers),
      failover_latency.count() > 0 ? failover_latency.mean_ms() : 0.0,
      static_cast<long long>(silent_node_detections),
      static_cast<long long>(membership_replans),
      static_cast<long long>(votes_accepted),
      static_cast<long long>(votes_rejected),
      static_cast<long long>(mode_changes),
      static_cast<long long>(mode_sheds), static_cast<long long>(matchups),
      static_cast<long long>(matchup_abandoned),
      static_cast<long long>(mode_cycles_normal),
      static_cast<long long>(mode_cycles_l1),
      static_cast<long long>(mode_cycles_l2), final_mode,
      energy_total_uj * 1e-3, energy_per_cycle_uj(),
      energy_sleep_saved_uj * 1e-3, static_cast<long long>(slots_slept));
  return buf;
}

}  // namespace coeff::core
