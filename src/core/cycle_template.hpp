// Compiled cycle template: the static schedule flattened for the hot
// path (DESIGN.md §12).
//
// The StaticScheduleTable answers "who owns (slot, cycle)?" by scanning
// the slot's occupant list and testing cycle phases; the MessageSet
// answers "what is message id?" through a linear find; the active
// retransmission plan answers "how many copies?" through a hash lookup.
// The interpreted walk pays all three on every slot of every cycle.
// This template precomputes the composition once per (table, plan) pair
// into flat arrays over [cycle-in-period × slot] — SoA: message ref,
// owner node, payload bits, retransmission-budget class — so the
// steady-state walk is one index computation and contiguous loads.
//
// The template is a pure cache: it must be rebuilt (rebuild()) whenever
// any input changes — a plan swap, a membership change, or failover
// re-homing via channel topology events. SchedulerBase owns the
// rebuild triggers and emits a kTemplateRebuild trace record per
// rebuild; the analysis::TraceLint rule `engine.template-invalidation`
// checks at trace level that no transmission ever follows a staleness
// event before the rebuild marker.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/message.hpp"
#include "sched/schedule_table.hpp"
#include "units/units.hpp"

namespace coeff::core {

/// Why a template rebuild happened (trace field c of kTemplateRebuild).
enum class TemplateRebuildWhy : std::uint8_t {
  kInitial = 0,     ///< first build announced at the first cycle start
  kPlanSwap = 1,    ///< retransmission plan re-solved (budget changed)
  kMembership = 2,  ///< node crash/restart/silent-detection replan
  kChannel = 3,     ///< channel down/up (failover re-homing)
};

[[nodiscard]] constexpr const char* to_string(TemplateRebuildWhy why) {
  switch (why) {
    case TemplateRebuildWhy::kInitial:
      return "initial";
    case TemplateRebuildWhy::kPlanSwap:
      return "plan_swap";
    case TemplateRebuildWhy::kMembership:
      return "membership";
    case TemplateRebuildWhy::kChannel:
      return "channel";
  }
  return "?";
}

class CycleTemplate {
 public:
  /// Recompute every array from the current inputs. `budget` maps
  /// message id to its planned retransmission copies (k_z); nullptr or
  /// a missing id mean 0. Message pointers are borrowed from `statics`,
  /// which must stay alive and unmodified while the template is in use.
  void rebuild(const sched::StaticScheduleTable& table,
               const net::MessageSet& statics,
               const std::unordered_map<int, int>* budget,
               std::int64_t num_slots);

  /// Owner of (slot, cycle), or nullptr for an idle occurrence. The
  /// static segment's home channel is A; re-homing under failover is a
  /// runtime decision (channel availability), not baked in here.
  [[nodiscard]] const net::Message* message_at(units::SlotId slot,
                                               units::CycleIndex cycle) const {
    const std::size_t i = index(slot, cycle);
    return cycle.value() >= first_cycle_[i] ? message_[i] : nullptr;
  }
  /// Message id at (slot, cycle), or -1 when idle.
  [[nodiscard]] int message_id_at(units::SlotId slot,
                                  units::CycleIndex cycle) const {
    const std::size_t i = index(slot, cycle);
    return cycle.value() >= first_cycle_[i] ? message_id_[i] : -1;
  }
  /// Owning node at (slot, cycle), or -1 when idle.
  [[nodiscard]] std::int32_t node_at(units::SlotId slot,
                                     units::CycleIndex cycle) const {
    const std::size_t i = index(slot, cycle);
    return cycle.value() >= first_cycle_[i] ? node_[i] : -1;
  }
  /// Payload bits staged for (slot, cycle); 0 when idle.
  [[nodiscard]] std::int64_t payload_bits_at(units::SlotId slot,
                                             units::CycleIndex cycle) const {
    const std::size_t i = index(slot, cycle);
    return cycle.value() >= first_cycle_[i] ? payload_bits_[i] : 0;
  }
  /// Retransmission-budget class (planned copies k_z) of the occupant
  /// of (slot, cycle); 0 when idle or unbudgeted.
  [[nodiscard]] std::int32_t budget_at(units::SlotId slot,
                                       units::CycleIndex cycle) const {
    const std::size_t i = index(slot, cycle);
    return cycle.value() >= first_cycle_[i] ? budget_[i] : 0;
  }

  /// Monotonic rebuild counter (trace field b of kTemplateRebuild).
  [[nodiscard]] std::int64_t version() const { return version_; }
  /// Cycles until the compiled pattern repeats (the table period).
  [[nodiscard]] std::int64_t period_cycles() const { return period_; }
  [[nodiscard]] bool empty() const { return message_.empty(); }

 private:
  [[nodiscard]] std::size_t index(units::SlotId slot,
                                  units::CycleIndex cycle) const {
    const std::int64_t row = cycle.value() % period_;
    return static_cast<std::size_t>(row * num_slots_ + slot.value() - 1);
  }

  // SoA over [cycle-in-period × slot], row-major, slot 1 at column 0.
  // Occupancy is only eventually periodic: a placement's phase starts
  // at its base cycle (offset warm-up), so each cell carries the first
  // cycle at which its steady-state occupant is actually active.
  std::vector<const net::Message*> message_;
  std::vector<int> message_id_;
  std::vector<std::int32_t> node_;
  std::vector<std::int64_t> payload_bits_;
  std::vector<std::int32_t> budget_;
  std::vector<std::int64_t> first_cycle_;
  std::int64_t num_slots_ = 0;
  std::int64_t period_ = 1;
  std::int64_t version_ = 0;
};

}  // namespace coeff::core
