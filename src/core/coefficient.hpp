// CoEfficient: cooperative, reliability-aware dual-channel scheduling
// (the paper's contribution, §III).
//
// * Static messages (hard periodic): primary copy on channel A in the
//   slot the schedule table reserves.
// * Retransmitted segments (hard aperiodic): the differentiated plan
//   (fault::solve_differentiated) assigns each static message k_z extra
//   copies per instance to meet the reliability goal rho. Copies are
//   placed by *selective slack stealing*: any (slot, channel) pair that
//   the static table leaves idle — channel B's mirror of an occupied A
//   slot, or a fully idle slot on either channel — whose capacity fits
//   the copy and whose end lies before the instance deadline. Copies
//   are served earliest-deadline-first; a copy whose deadline passes
//   with no fitting slack is dropped and counted.
// * Dynamic messages (soft aperiodic): FTDMA over *both* channels with
//   independent slot counters (dual-channel cooperation), plus overflow
//   into stolen static slack once no retransmission copy wants it.
// * Optionally, every retransmission copy passes the fixed-priority
//   slack-stealing acceptance test of §III-B/§III-C before it may claim
//   wire slack (use_fp_admission).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>

#include "core/scheduler_base.hpp"
#include "fault/monitor.hpp"
#include "fault/reliability.hpp"
#include "fault/structural.hpp"
#include "flexray/power.hpp"
#include "sched/criticality.hpp"
#include "sched/slack_stealer.hpp"

namespace coeff::core {

struct CoEfficientOptions {
  double ber = 1e-7;
  /// Reliability goal over the time unit `u`; 0 disables retransmission
  /// planning entirely (pure cooperative scheduling).
  double rho = 0.0;
  sim::Time u = sim::seconds(3600);
  int max_copies_per_message = 8;
  /// Run the fixed-priority slack acceptance test (SlackStealer) on
  /// every retransmission copy in addition to slot-level placement.
  bool use_fp_admission = false;
  /// Throw instead of degrading when rho is unreachable at
  /// max_copies_per_message (forwarded to the solver).
  bool throw_on_infeasible = false;

  // --- Runtime reliability monitoring ----------------------------------
  /// Track the observed corruption rate and re-plan online when it
  /// drifts beyond the planned BER (requires rho > 0).
  bool enable_monitor = false;
  fault::ReliabilityMonitorOptions monitor;

  // --- Structural fault recovery (DESIGN.md §11) -----------------------
  /// NMR replica voting for static messages: every instance is staged
  /// with `vote_replicas` copies total (primary + replicas through the
  /// slack-stealing machinery) and is delivered only when a strict
  /// majority arrives uncorrupted. Must be odd and >= 3 when set;
  /// 0 = plain first-success acceptance.
  int vote_replicas = 0;
  /// Infer membership from wire silence (fault::SilentNodeDetector)
  /// instead of reacting to the crash event directly: a node expected on
  /// the wire but silent for `silent_cycle_threshold` consecutive cycles
  /// is flagged and its slots re-planned as stealable slack — the way a
  /// distributed membership service (bus guardian) would learn of the
  /// crash. When false, membership re-planning is immediate on the
  /// topology event.
  bool silent_node_detection = false;
  int silent_cycle_threshold = 2;

  // --- Mixed-criticality mode protocol (DESIGN.md §16) -----------------
  /// When enabled, a three-mode state machine (NORMAL → DEGRADED-L1 →
  /// DEGRADED-L2) driven by the monitor's hysteresis drift latch and
  /// dynamic-backlog overload sheds low-criticality dynamic traffic at
  /// release and matches it up (bounded re-admission bursts) once the
  /// drift clears. Orthogonal to the plan-infeasibility degraded flag,
  /// which keeps its legacy shed-everything semantics.
  sched::ModePolicy mode_policy;

  // --- Per-node DVFS/DPM power model (DESIGN.md §16) -------------------
  /// When power.enabled, an EnergyMeter accounts each cycle: DVFS level
  /// follows the criticality mode, and transceivers sleep through idle
  /// static slots whenever no retransmission copy is queued.
  flexray::PowerConfig power;

  // --- Ablation switches (DESIGN.md §6) --------------------------------
  /// Replace the differentiated plan with the uniform one (same k for
  /// every message) at the same reliability goal.
  bool use_uniform_plan = false;
  /// Disable selective slack stealing: retransmission copies may only
  /// ride channel B of their own message's slot, and dynamic overflow
  /// never enters the static segment.
  bool disable_slack_stealing = false;
  /// Serve the dynamic segment on channel A only (channel B idle there),
  /// as in schemes that pin one channel per role.
  bool single_channel_dynamics = false;
};

class CoEfficientScheduler : public SchedulerBase {
 public:
  CoEfficientScheduler(const flexray::ClusterConfig& cfg,
                       net::MessageSet statics, net::MessageSet dynamics,
                       sim::Time batch_window,
                       const CoEfficientOptions& options);

  [[nodiscard]] const fault::RetransmissionPlan& plan() const { return plan_; }
  /// Nullptr unless enable_monitor (and rho > 0).
  [[nodiscard]] const fault::ReliabilityMonitor* monitor() const {
    return monitor_.get();
  }
  /// True while the active plan cannot meet rho at its solve-time BER;
  /// dynamic-segment load is shed to keep slack free for hard copies.
  [[nodiscard]] bool degraded_mode() const { return degraded_mode_; }
  /// Current criticality mode (kNormal when the mode protocol is off).
  [[nodiscard]] sched::CriticalityMode mode() const {
    return mode_mgr_ != nullptr ? mode_mgr_->mode()
                                : sched::CriticalityMode::kNormal;
  }
  /// Nullptr unless mode_policy.enabled.
  [[nodiscard]] const sched::ModeManager* mode_manager() const {
    return mode_mgr_.get();
  }
  /// Nullptr unless power.enabled.
  [[nodiscard]] const flexray::EnergyMeter* energy_meter() const {
    return energy_.get();
  }
  /// Messages shed by mode still awaiting match-up.
  [[nodiscard]] std::size_t shed_backlog_size() const {
    return shed_backlog_.size();
  }
  /// Nullptr unless silent_node_detection.
  [[nodiscard]] const fault::SilentNodeDetector* detector() const {
    return detector_.get();
  }
  /// True while `node` is excluded from the retransmission plan (crashed,
  /// or flagged silent by the detector) and its slots are stealable.
  [[nodiscard]] bool member_dead(int node) const {
    const auto idx = static_cast<std::size_t>(node);
    return idx < member_dead_.size() && member_dead_[idx] != 0;
  }

  // --- TransmissionPolicy ----------------------------------------------
  std::optional<flexray::TxRequest> static_slot(flexray::ChannelId channel,
                                                units::CycleIndex cycle,
                                                units::SlotId slot) override;
  /// Compiled-walk batch decide: same decisions as per-slot static_slot
  /// calls, but the slack peek is served from a version-stamped cache
  /// (DESIGN.md §12). The interpreted walk keeps the naive per-slot
  /// scan — it is the differential-testing oracle.
  void decide_static_chunk(units::CycleIndex cycle, std::int64_t slot_begin,
                           std::int64_t slot_end,
                           flexray::TransmissionPolicy::StaticChunkSink& sink)
      override;
  std::optional<flexray::TxRequest> dynamic_slot(
      flexray::ChannelId channel, units::CycleIndex cycle,
      units::SlotId slot_counter, units::MinislotId minislot,
      std::int64_t minislots_remaining) override;
  [[nodiscard]] std::int64_t dynamic_next_frame(
      flexray::ChannelId channel, std::int64_t min_frame) const override;
  void on_tx_complete(const flexray::TxOutcome& outcome) override;
  void on_cycle_end(units::CycleIndex cycle, sim::Time at) override;

 protected:
  [[nodiscard]] const std::unordered_map<int, int>* retransmission_budget()
      const override {
    return &copies_by_message_;
  }
  void on_cycle_start_hook(units::CycleIndex cycle, sim::Time at) override;
  void on_static_release(Instance& inst, const net::Message& m) override;
  void on_dynamic_release(Instance& inst, const net::Message& m,
                          const flexray::PendingMessage& pending) override;
  void on_node_down(units::NodeId node, units::CycleIndex cycle,
                    sim::Time at) override;
  void on_node_up(units::NodeId node, units::CycleIndex cycle,
                  sim::Time at) override;

 private:
  /// A planned retransmission copy waiting for slack.
  struct RetxJob {
    std::uint64_t instance;
    int node;
    std::int64_t bits;
    sim::Time release;
    sim::Time deadline;
    units::SlotId home_slot{0};  ///< the message's own static slot
  };

  /// Earliest-deadline retransmission job that fits `capacity_bits` and
  /// whose deadline admits completion by `slot_end`; end() if none.
  /// `slot`/`channel` identify the offered wire for the
  /// disable_slack_stealing ablation filter.
  std::deque<RetxJob>::iterator find_retx(std::int64_t capacity_bits,
                                          sim::Time slot_start,
                                          sim::Time slot_end, units::SlotId slot,
                                          flexray::ChannelId channel);

  /// Earliest-deadline queued dynamic message (across all nodes) that
  /// fits `capacity_bits`, for transmission in stolen static slack.
  [[nodiscard]] std::optional<flexray::PendingMessage> peek_dynamic_for_slack(
      std::int64_t capacity_bits, sim::Time slot_start) const;

  /// Memoized peek_dynamic_for_slack for the compiled walk. Caches the
  /// best *fitting* entry (ignoring the waited-a-cycle filter) keyed by
  /// the sum of the per-queue version counters; the filter is applied at
  /// query time. Exact: the cached best has the minimum release among
  /// fitting entries, so if it has not waited a full cycle, none has.
  /// Assumes `capacity_bits` is invariant across calls (it is always
  /// static_slot_capacity_bits()).
  [[nodiscard]] std::optional<flexray::PendingMessage> peek_dynamic_cached(
      std::int64_t capacity_bits, sim::Time slot_start) const;

  /// Body of static_slot; `use_slack_cache` selects the memoized peek
  /// (compiled chunk walk) or the naive scan (interpreted oracle).
  std::optional<flexray::TxRequest> decide_static(flexray::ChannelId channel,
                                                  units::CycleIndex cycle,
                                                  units::SlotId slot,
                                                  bool use_slack_cache);

  /// One stolen slot in kSoftShare is reserved for soft traffic when
  /// both hard copies and soft messages are waiting.
  static constexpr std::int64_t kSoftShare = 4;

  /// (Re)solve the retransmission plan at `ber` and install it: future
  /// static releases use the new k_z (in-flight copies are untouched,
  /// so a swap takes effect at the calling cycle boundary). Messages of
  /// dead members are excluded from the solve. Updates the degraded
  /// flag and the resilience metrics.
  void rebuild_plan(double ber, bool throw_on_infeasible);

  /// Re-solve after a membership change (crash detected / reintegration)
  /// and record it (membership_replans counter, kPlanSwap trace).
  void replan_membership(units::CycleIndex cycle, sim::Time at);

  CoEfficientOptions options_;
  fault::RetransmissionPlan plan_;
  /// cfg_.static_slot_capacity_bits(), hoisted: the config is immutable
  /// after construction and the value is read on every slot decision.
  std::int64_t static_capacity_bits_ = 0;
  std::int64_t idle_slot_counter_ = 0;
  std::unordered_map<int, int> copies_by_message_;  ///< k_z by message id
  std::deque<RetxJob> retx_jobs_;                   ///< EDF-ordered
  std::unique_ptr<sched::SlackStealer> stealer_;    ///< when use_fp_admission
  std::unique_ptr<fault::ReliabilityMonitor> monitor_;
  std::unique_ptr<fault::SilentNodeDetector> detector_;
  std::vector<char> member_dead_;  ///< excluded from the plan, by node
  bool degraded_mode_ = false;

  // --- Mixed-criticality mode protocol (DESIGN.md §16) -----------------
  /// One shed dynamic message awaiting match-up. Keyed by message id
  /// with keep-latest dedupe, so the backlog is bounded by the dynamic
  /// set size and match-up re-admission walks ids in deterministic
  /// order.
  struct ShedEntry {
    int node = 0;
    net::Criticality level = net::Criticality::kLow;
    sim::Time shed_at;  ///< release time of the shed instance
  };
  std::unique_ptr<sched::ModeManager> mode_mgr_;  ///< when mode_policy.enabled
  std::map<int, ShedEntry> shed_backlog_;         ///< by message id
  /// True when any message carries an explicit (non-kLow) level; when
  /// false, effective_criticality applies the kind defaults.
  bool any_criticality_assigned_ = false;

  // --- Energy accounting (flexray::EnergyMeter) ------------------------
  std::unique_ptr<flexray::EnergyMeter> energy_;  ///< when power.enabled
  std::int64_t cycle_tx_bits_ = 0;     ///< wire bits this cycle (outcome side)
  std::int64_t last_idle_counter_ = 0; ///< idle_slot_counter_ at last cycle end

  // Slack-peek cache (compiled walk only; see peek_dynamic_cached).
  mutable std::uint64_t slack_peek_stamp_ = 0;
  mutable bool slack_peek_valid_ = false;
  mutable std::optional<flexray::PendingMessage> slack_peek_best_;
};

}  // namespace coeff::core
