#include "core/cycle_template.hpp"

namespace coeff::core {

void CycleTemplate::rebuild(const sched::StaticScheduleTable& table,
                            const net::MessageSet& statics,
                            const std::unordered_map<int, int>* budget,
                            std::int64_t num_slots) {
  num_slots_ = num_slots;
  period_ = table.table_period_cycles();
  if (period_ < 1) period_ = 1;
  const auto n = static_cast<std::size_t>(period_ * num_slots_);
  message_.assign(n, nullptr);
  message_id_.assign(n, -1);
  node_.assign(n, -1);
  payload_bits_.assign(n, 0);
  budget_.assign(n, 0);
  first_cycle_.assign(n, 0);

  // Occupancy only becomes periodic once every placement's phase has
  // started (cycle >= its base). Sample the table at a steady-state
  // horizon — the first period boundary past the largest base — and
  // remember each placement's base as the cell's first active cycle.
  std::int64_t max_base = 0;
  for (const auto& a : table.assignments()) {
    if (a.base_cycle.value() > max_base) max_base = a.base_cycle.value();
  }
  const std::int64_t horizon = (max_base + period_ - 1) / period_ * period_;

  for (std::int64_t row = 0; row < period_; ++row) {
    for (std::int64_t slot = 1; slot <= num_slots_; ++slot) {
      const auto occupant = table.message_at(units::SlotId{slot},
                                             units::CycleIndex{horizon + row});
      if (!occupant.has_value()) continue;
      // Table entries whose ids are outside the base set (e.g. a
      // subclass's pre-planned clones) stay idle here; the subclass
      // resolves them through its own mapping.
      const net::Message* m = statics.find(*occupant);
      if (m == nullptr) continue;
      const std::size_t i =
          index(units::SlotId{slot}, units::CycleIndex{row});
      message_[i] = m;
      message_id_[i] = m->id;
      node_[i] = m->node;
      payload_bits_[i] = m->size_bits;
      const sched::SlotAssignment* a = table.assignment_of(*occupant);
      first_cycle_[i] = a != nullptr ? a->base_cycle.value() : 0;
      if (budget != nullptr) {
        auto it = budget->find(m->id);
        if (it != budget->end()) budget_[i] = it->second;
      }
    }
  }
  ++version_;
}

}  // namespace coeff::core
