// Experiment harness: builds a cluster + scheduler + fault injector from
// a declarative config, runs the batch, and returns the metrics the
// paper's figures are drawn from.
#pragma once

#include <cstdint>
#include <memory>

#include "core/coefficient.hpp"
#include "core/fspec.hpp"
#include "core/metrics.hpp"
#include "fault/fault_model.hpp"
#include "fault/iec61508.hpp"
#include "fault/structural.hpp"
#include "flexray/cluster.hpp"
#include "flexray/config.hpp"
#include "flexray/power.hpp"
#include "net/workloads.hpp"
#include "sched/criticality.hpp"
#include "sim/trace.hpp"

namespace coeff::core {

enum class SchemeKind : std::uint8_t { kCoEfficient, kFspec, kHosa };

[[nodiscard]] constexpr const char* to_string(SchemeKind s) {
  switch (s) {
    case SchemeKind::kCoEfficient:
      return "CoEfficient";
    case SchemeKind::kFspec:
      return "FSPEC";
    case SchemeKind::kHosa:
      return "HOSA";
  }
  return "?";
}

struct ExperimentConfig {
  flexray::ClusterConfig cluster;
  net::MessageSet statics;
  net::MessageSet dynamics;

  double ber = 1e-7;
  /// Reliability goal over `u`; if 0, derived from `sil`.
  double rho = 0.0;
  fault::Sil sil = fault::Sil::kSil3;
  sim::Time u = sim::seconds(3600);
  int max_copies = 8;

  /// Instances are released during [0, batch_window).
  sim::Time batch_window = sim::seconds(1);
  /// Running-time mode: dynamic entries never expire and the run
  /// continues past the window until every owed copy has been sent.
  bool drain_batch = false;
  /// Enable the fixed-priority acceptance test inside CoEfficient.
  bool use_fp_admission = false;

  /// CoEfficient ablation switches (see CoEfficientOptions).
  bool ablation_uniform_plan = false;
  bool ablation_no_slack = false;
  bool ablation_single_channel = false;

  /// Cycle-walk engine (DESIGN.md §12). Compiled is the default fast
  /// path; interpreted is the slot-by-slot reference for differential
  /// testing. Results are byte-identical either way.
  flexray::EngineMode engine = flexray::EngineMode::kCompiled;

  net::ArrivalOptions arrivals;
  std::uint64_t seed = 42;
  /// Safety cap on post-window drain, in multiples of the window.
  int max_drain_factor = 64;

  // --- Fault-resilience layer ------------------------------------------
  /// Channel physics. `fault_model.ber` is overwritten with `ber` above
  /// (the planner and the i.i.d./common-mode wire share one knob); the
  /// Gilbert–Elliott model keeps its own per-state BERs.
  fault::FaultModelConfig fault_model;
  /// Environment drift: step the model to `ber_step` at `ber_step_at`
  /// (disabled while ber_step < 0 or ber_step_at <= 0).
  sim::Time ber_step_at;
  double ber_step = -1.0;
  /// Optional second step (same disable convention): a burst profile
  /// steps up at ber_step_at and back down at ber_step2_at.
  sim::Time ber_step2_at;
  double ber_step2 = -1.0;
  /// Runtime reliability monitoring + online re-planning (CoEfficient).
  bool enable_monitor = false;
  fault::ReliabilityMonitorOptions monitor;
  /// Throw instead of degrading when rho is unreachable.
  bool throw_on_infeasible = false;

  // --- Structural fault domain (node/channel failures) -----------------
  /// ECU crash/restart windows, channel blackouts, babbling-idiot slots
  /// and drift excursions — scheduled or stochastic (seeded off `seed`).
  /// Empty = structural injection disabled.
  fault::StructuralFaultConfig structural;
  /// CoEfficient recovery knobs (see CoEfficientOptions).
  int vote_replicas = 0;
  bool silent_node_detection = false;
  int silent_cycle_threshold = 2;

  // --- Mixed-criticality modes + energy (DESIGN.md §16) ----------------
  /// Mode-change protocol (CoEfficient only). Criticality levels are
  /// carried on the message sets themselves (sched::with_criticality).
  sched::ModePolicy mode_policy;
  /// Per-node DVFS/DPM power model (CoEfficient only).
  flexray::PowerConfig power;
  /// Optional structured-trace sink (single runs only: sweep cells
  /// sharing one Trace would interleave nondeterministically).
  sim::Trace* trace = nullptr;
};

struct ExperimentResult {
  RunStats run;
  SchemeKind scheme = SchemeKind::kCoEfficient;
  double rho_target = 0.0;
  /// Theoretical reliability of what the scheme actually scheduled
  /// (CoEfficient: the differentiated plan; FSPEC: placed clone rounds,
  /// accounting for clones that did not fit).
  double reliability_scheduled = 0.0;
  int fspec_rounds = 0;          ///< FSPEC only
  /// Bandwidth the retransmission plan adds (CoEfficient only).
  double plan_added_load_bits_per_second = 0.0;
  /// The plan active when the run ended (CoEfficient only) — differs
  /// from the initial plan when the monitor re-planned online.
  fault::RetransmissionPlan final_plan;
  std::int64_t cycles_run = 0;
  /// Cycles executed by the compiled engine (0 when interpreted; less
  /// than cycles_run when structural faults forced fallbacks).
  std::int64_t compiled_cycles = 0;
  /// Wall-clock seconds spent in the cycle walk (window + drain), i.e.
  /// excluding scheduler construction, plan solving and finalization.
  /// cycles_run / walk_seconds is the engine-throughput figure
  /// bench/micro_cycle reports.
  double walk_seconds = 0.0;
  bool drained = true;           ///< false if the drain cap was hit
};

[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config,
                                              SchemeKind scheme);

/// Paper §IV-A default cluster for the running-time / static experiments
/// (5 ms cycle, 80 or 120 static slots, remaining bandwidth dynamic).
/// The bus bit rate is raised to 50 Mb/s so one 40-macrotick static slot
/// carries the largest Table-II message (the paper's parameter set is
/// inconsistent on this point; see DESIGN.md).
[[nodiscard]] flexray::ClusterConfig paper_cluster_static_suite(
    std::int64_t static_slots);

/// Paper §IV-A cluster for the dynamic-segment experiments: 80 static
/// slots and the given number of minislots (25..100).
[[nodiscard]] flexray::ClusterConfig paper_cluster_dynamic_suite(
    std::int64_t minislots);

/// Paper §IV-A cluster for the BBW/ACC application suites: 1 ms cycle,
/// 0.75 ms static segment (the sets' fastest period is 1 ms).
[[nodiscard]] flexray::ClusterConfig paper_cluster_apps(
    std::int64_t minislots = 25);

}  // namespace coeff::core
