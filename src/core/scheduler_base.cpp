#include "core/scheduler_base.hpp"

#include <stdexcept>
#include <string>

namespace coeff::core {

SchedulerBase::SchedulerBase(const flexray::ClusterConfig& cfg,
                             net::MessageSet statics, net::MessageSet dynamics,
                             sim::Time batch_window,
                             std::optional<sched::StaticScheduleTable> table)
    : cfg_(cfg),
      statics_(std::move(statics)),
      dynamics_(std::move(dynamics)),
      table_(table.has_value()
                 ? std::move(*table)
                 : sched::StaticScheduleTable::build(statics_, cfg_)),
      batch_window_(batch_window),
      cycle_duration_(cfg.cycle_duration()) {
  statics_.validate();
  dynamics_.validate();
  if (batch_window_ <= sim::Time::zero()) {
    throw std::invalid_argument("SchedulerBase: non-positive batch window");
  }
  stats_.bus_bit_rate = static_cast<double>(cfg_.bus_bit_rate);

  nodes_.reserve(static_cast<std::size_t>(cfg_.num_nodes));
  for (int i = 0; i < cfg_.num_nodes; ++i) {
    nodes_.emplace_back(units::NodeId{i}, "ecu" + std::to_string(i));
  }
  for (const auto& a : table_.assignments()) {
    // Assignments for ids not in the base set (e.g. FSPEC's redundant
    // clones) are registered by the subclass, which knows the mapping.
    const net::Message* m = statics_.find(a.message_id);
    if (m == nullptr) continue;
    nodes_.at(static_cast<std::size_t>(m->node)).static_buffers().add_slot(
        a.slot);
  }
  for (const auto& m : dynamics_.messages()) {
    if (m.frame_id <= cfg_.g_number_of_static_slots) {
      throw std::invalid_argument(
          "SchedulerBase: dynamic message " + std::to_string(m.id) +
          " frame id must exceed the static slot count");
    }
    // Two or more messages may share a dynamic frame id (§II-B) as long
    // as one node owns the id: the node's priority queue decides which
    // goes out in the current cycle.
    auto [it, inserted] = dynamic_by_frame_id_.emplace(m.frame_id, &m);
    if (!inserted && it->second->node != m.node) {
      throw std::invalid_argument(
          "SchedulerBase: dynamic frame id " + std::to_string(m.frame_id) +
          " shared across different nodes");
    }
    if (inserted) {
      nodes_.at(static_cast<std::size_t>(m.node))
          .add_dynamic_frame_id(
              flexray::FrameId{static_cast<std::uint16_t>(m.frame_id)});
    }
  }
  for (const auto& m : statics_.messages()) next_static_index_[m.id] = 0;
  node_down_.assign(static_cast<std::size_t>(cfg_.num_nodes), 0);

  // Flatten the frame-id → message map for the FTDMA hot path.
  int max_frame_id = 0;
  for (const auto& [frame_id, _] : dynamic_by_frame_id_) {
    if (frame_id > max_frame_id) max_frame_id = frame_id;
  }
  dynamic_frame_lut_.assign(static_cast<std::size_t>(max_frame_id) + 1,
                            nullptr);
  for (const auto& [frame_id, m] : dynamic_by_frame_id_) {
    dynamic_frame_lut_[static_cast<std::size_t>(frame_id)] = m;
  }

  // First template build. Virtual dispatch is still the base's here, so
  // the budget column starts empty; a subclass that plans retransmission
  // copies rebuilds from its own constructor once the plan exists.
  tpl_.rebuild(table_, statics_, nullptr, cfg_.g_number_of_static_slots);
}

void SchedulerBase::rebuild_template(TemplateRebuildWhy why,
                                     units::CycleIndex cycle, sim::Time at) {
  tpl_.rebuild(table_, statics_, retransmission_budget(),
               cfg_.g_number_of_static_slots);
  if (trace_ != nullptr) {
    trace_->emit(at, sim::TraceKind::kTemplateRebuild, cycle.value(),
                 tpl_.version(), static_cast<std::int64_t>(why));
  }
}

std::int64_t SchedulerBase::queued_dynamic_next_frame(
    std::int64_t min_frame) const {
  std::int64_t best = flexray::kNoDynamicFrame;
  for (const auto& node : nodes_) {
    for (const auto& pending : node.dynamic_queue().contents()) {
      const std::int64_t frame = pending.frame_id.value();
      if (frame >= min_frame && frame < best) best = frame;
    }
  }
  return best;
}

bool SchedulerBase::node_alive(int node) const {
  const auto idx = static_cast<std::size_t>(node);
  return node >= 0 && (idx >= node_down_.size() || node_down_[idx] == 0);
}

int SchedulerBase::channels_available() const {
  int n = 0;
  for (const bool down : channel_down_) {
    if (!down) ++n;
  }
  return n;
}

void SchedulerBase::settle_source_loss(int node) {
  for (const std::uint64_t key : instances_.keys()) {
    Instance* inst = instances_.find(key);
    if (inst == nullptr || inst->node != node) continue;
    cancel_copies(*inst, inst->copies_required - inst->copies_sent);
    if (!inst->delivered && !inst->miss_recorded) {
      ++segment(inst->kind).source_lost;
    }
    instances_.erase(key);
  }
}

void SchedulerBase::on_topology_event(const flexray::TopologyEvent& event,
                                      units::CycleIndex cycle, sim::Time at) {
  switch (event.kind) {
    case flexray::TopologyEventKind::kNodeCrash: {
      const auto idx = static_cast<std::size_t>(event.node.value());
      if (idx < node_down_.size()) node_down_[idx] = 1;
      ++stats_.node_crashes;
      // Power the host off: its CHI contents are gone, and whatever it
      // had in flight can no longer be produced.
      if (idx < nodes_.size()) nodes_[idx].shutdown();
      settle_source_loss(static_cast<int>(event.node.value()));
      on_node_down(event.node, cycle, at);
      break;
    }
    case flexray::TopologyEventKind::kNodeRestart: {
      const auto idx = static_cast<std::size_t>(event.node.value());
      if (idx < node_down_.size()) node_down_[idx] = 0;
      ++stats_.node_restarts;
      if (idx < nodes_.size()) nodes_[idx].restart();
      on_node_up(event.node, cycle, at);
      break;
    }
    case flexray::TopologyEventKind::kChannelDown:
      channel_down_[static_cast<std::size_t>(event.channel)] = true;
      ++stats_.channel_outages;
      on_channel_down(event.channel, cycle, at);
      break;
    case flexray::TopologyEventKind::kChannelUp:
      channel_down_[static_cast<std::size_t>(event.channel)] = false;
      on_channel_up(event.channel, cycle, at);
      break;
  }
  // Every topology event can re-home traffic or change the budget a
  // subclass hook just re-planned; the template must never serve a
  // pre-event view to the upcoming segment walk.
  const bool channel_event =
      event.kind == flexray::TopologyEventKind::kChannelDown ||
      event.kind == flexray::TopologyEventKind::kChannelUp;
  rebuild_template(channel_event ? TemplateRebuildWhy::kChannel
                                 : TemplateRebuildWhy::kMembership,
                   cycle, at);
}

void SchedulerBase::settle_vote(Instance& inst, bool accepted, sim::Time at) {
  if (inst.vote_settled) return;
  inst.vote_settled = true;
  if (accepted) {
    ++stats_.votes_accepted;
  } else {
    ++stats_.votes_rejected;
  }
  if (trace_ != nullptr) {
    trace_->emit(at, sim::TraceKind::kVoteResolved, inst.message_id,
                 accepted ? 1 : 0, inst.vote_ok, inst.vote_k);
  }
}

void SchedulerBase::add_copies(Instance& inst, int copies) {
  inst.copies_required += copies;
  owed_copies_ += copies;
}

void SchedulerBase::cancel_copies(Instance& inst, int copies) {
  const int outstanding = inst.copies_required - inst.copies_sent;
  const int cancelled = std::min(copies, outstanding);
  inst.copies_required -= cancelled;
  owed_copies_ -= cancelled;
}

void SchedulerBase::release_statics_until(sim::Time until) {
  const sim::Time cap = std::min(until, batch_window_);
  // Nothing due: every message's next release is at or past the cap.
  // The cached minimum makes idle cycles one comparison instead of a
  // full scan over the static set.
  if (next_static_release_ >= cap) return;
  sim::Time next_min = sim::Time::max();
  for (const auto& m : statics_.messages()) {
    std::int64_t& next = next_static_index_[m.id];
    while (true) {
      const sim::Time release = m.offset + m.period * next;
      if (release >= cap) {
        if (release < next_min) next_min = release;
        break;
      }
      if (!node_alive(m.node)) {
        // The producing ECU is down: the instance is generated by the
        // application model but never reaches the CHI. Count it so
        // availability accounting stays complete, without creating an
        // instance nothing will ever transmit.
        ++segment(net::MessageKind::kStatic).released;
        ++segment(net::MessageKind::kStatic).source_lost;
        ++next;
        continue;
      }
      Instance& inst = instances_.create(m.id, next);
      inst.kind = net::MessageKind::kStatic;
      inst.node = m.node;
      inst.size_bits = m.size_bits;
      inst.release = release;
      inst.abs_deadline = release + m.deadline;
      inst.copies_required = 0;
      ++segment(net::MessageKind::kStatic).released;
      on_static_release(inst, m);
      ++next;
    }
  }
  next_static_release_ = next_min;
}

void SchedulerBase::add_dynamic_arrival(int message_id, sim::Time at) {
  const net::Message* m = dynamics_.find(message_id);
  if (m == nullptr) {
    throw std::invalid_argument("add_dynamic_arrival: unknown message " +
                                std::to_string(message_id));
  }
  std::int64_t& next = next_dynamic_index_[message_id];
  if (!node_alive(m->node)) {
    ++next;
    ++segment(net::MessageKind::kDynamic).released;
    ++segment(net::MessageKind::kDynamic).source_lost;
    return;
  }
  Instance& inst = instances_.create(message_id, next++);
  inst.kind = net::MessageKind::kDynamic;
  inst.node = m->node;
  inst.size_bits = m->size_bits;
  inst.release = at;
  inst.abs_deadline = at + m->deadline;
  inst.copies_required = 0;
  ++segment(net::MessageKind::kDynamic).released;

  flexray::PendingMessage pending;
  pending.instance = inst.key;
  pending.frame_id = flexray::FrameId{static_cast<std::uint16_t>(m->frame_id)};
  pending.payload_bits = m->size_bits;
  pending.release = at;
  pending.deadline = inst.abs_deadline;
  pending.priority = m->frame_id;  // FTDMA: lower frame id wins
  on_dynamic_release(inst, *m, pending);
}

void SchedulerBase::on_cycle_start(units::CycleIndex cycle, sim::Time at) {
  if (!tpl_announced_) {
    // Announce the constructor-time build once tracing can see it, so
    // every traced run carries a baseline marker the invalidation lint
    // rule is armed by.
    tpl_announced_ = true;
    if (trace_ != nullptr) {
      trace_->emit(at, sim::TraceKind::kTemplateRebuild, cycle.value(),
                   tpl_.version(),
                   static_cast<std::int64_t>(TemplateRebuildWhy::kInitial));
    }
  }
  if (channels_available() < flexray::kNumChannels) {
    ++stats_.channel_down_cycles;
  }
  release_statics_until(at + cycle_duration_);
  sweep(at);
  on_cycle_start_hook(cycle, at);
}

void SchedulerBase::on_cycle_end(units::CycleIndex /*cycle*/,
                                 sim::Time /*at*/) {}

void SchedulerBase::on_dynamic_declined(flexray::ChannelId /*channel*/,
                                        units::CycleIndex /*cycle*/,
                                        const flexray::TxRequest& request) {
  // Defensive: put the message back so it can retry in a later cycle.
  Instance* inst = instances_.find(request.instance);
  if (inst == nullptr) return;
  const net::Message* m = dynamics_.find(inst->message_id);
  if (m == nullptr) return;
  flexray::PendingMessage pending;
  pending.instance = inst->key;
  pending.frame_id = flexray::FrameId{static_cast<std::uint16_t>(m->frame_id)};
  pending.payload_bits = m->size_bits;
  pending.release = inst->release;
  pending.deadline = inst->abs_deadline;
  pending.priority = m->frame_id;
  nodes_.at(static_cast<std::size_t>(m->node)).dynamic_queue().push(pending);
}

void SchedulerBase::account_outcome(const flexray::TxOutcome& outcome) {
  Instance* inst = instances_.find(outcome.request.instance);
  if (inst == nullptr) {
    throw std::logic_error("account_outcome: unknown instance");
  }
  ++inst->copies_sent;
  --owed_copies_;
  last_activity_ = std::max(last_activity_, outcome.end);
  SegmentMetrics& seg = segment(inst->kind);
  ++seg.copies_sent;
  if (outcome.corrupted) ++seg.copies_corrupted;
  if (outcome.lost) ++stats_.frames_lost;
  if (outcome.request.failover && !outcome.lost) ++stats_.failovers;

  // Acceptance: plain schemes deliver on the first uncorrupted copy; a
  // voted instance delivers when a strict majority of its replicas
  // arrived clean (NMR majority accept).
  bool accepted_now = false;
  if (inst->vote_k > 0) {
    if (!outcome.corrupted) ++inst->vote_ok;
    const int majority = inst->vote_k / 2 + 1;
    if (!inst->delivered && inst->vote_ok >= majority) {
      accepted_now = true;
      settle_vote(*inst, true, outcome.end);
    } else if (!inst->vote_settled &&
               inst->copies_sent >= inst->copies_required) {
      // All replicas are on the wire and the majority is unreachable.
      settle_vote(*inst, false, outcome.end);
    }
  } else {
    accepted_now = !outcome.corrupted && !inst->delivered;
  }

  if (accepted_now) {
    inst->delivered = true;
    inst->delivered_at = outcome.end;
    seg.useful_payload_bits += inst->size_bits;
    if (outcome.segment == flexray::Segment::kStatic) {
      stats_.useful_bits_static_wire += inst->size_bits;
    } else {
      stats_.useful_bits_dynamic_wire += inst->size_bits;
    }
    seg.latency.add(outcome.end - inst->release);
    if (outcome.request.failover) {
      stats_.failover_latency.add(outcome.end - inst->release);
    }
    if (outcome.end <= inst->abs_deadline) {
      ++seg.delivered;
    } else if (!inst->miss_recorded) {
      // First success landed late: that is a deadline miss.
      inst->miss_recorded = true;
      ++seg.missed;
    }
  }
  if (inst->copies_sent >= inst->copies_required) {
    // The instance's full transmission (all copies) has left the wire.
    seg.completion.add(outcome.end - inst->release);
  }
}

void SchedulerBase::sweep(sim::Time now) {
  // Expired dynamic queue entries can never be delivered in time: unless
  // the run drains the whole batch, cancel all their outstanding copies
  // (the miss itself is recorded in the instance sweep below). Drain
  // runs keep expired entries (the batch must fully transmit) but still
  // abandon entries the scheme demonstrably cannot serve — 15 periods
  // past the deadline — so an unservable frame id cannot stall the run.
  for (auto& node : nodes_) {
    if (node.dynamic_queue().empty()) continue;
    const auto dropped =
        drop_expired_dynamics_
            ? node.dynamic_queue().drop_expired(now)
            : node.dynamic_queue().drop_if([now](
                  const flexray::PendingMessage& m) {
                const sim::Time patience = (m.deadline - m.release) * 15;
                return m.deadline + patience < now;
              });
    for (const auto& entry : dropped) {
      Instance* inst = instances_.find(entry.instance);
      if (inst != nullptr) {
        cancel_copies(*inst, inst->copies_required - inst->copies_sent);
      }
    }
  }
  // Direct iterate-and-erase: same traversal order as a keys() snapshot
  // (erase never rehashes), without the snapshot vector and the
  // per-key hash lookups.
  for (auto it = instances_.begin(); it != instances_.end();) {
    Instance& inst = it->second;
    if (!inst.delivered && !inst.miss_recorded && inst.abs_deadline < now) {
      inst.miss_recorded = true;
      ++segment(inst.kind).missed;
      if (inst.vote_k > 0) settle_vote(inst, false, now);
    }
    if (inst.copies_sent >= inst.copies_required &&
        (inst.delivered || inst.miss_recorded)) {
      it = instances_.erase(it);
    } else {
      ++it;
    }
  }
}

void SchedulerBase::finalize(sim::Time now) {
  sweep(now);
  for (const std::uint64_t key : instances_.keys()) {
    Instance* inst = instances_.find(key);
    if (inst == nullptr) continue;
    if (!inst->delivered && !inst->miss_recorded) {
      // Nothing more will be sent for the batch; an undelivered instance
      // is a miss even if its deadline is formally in the future.
      inst->miss_recorded = true;
      ++segment(inst->kind).missed;
      if (inst->vote_k > 0) settle_vote(*inst, false, now);
    }
    instances_.erase(key);
  }
}

}  // namespace coeff::core
