#include "core/scheduler_base.hpp"

#include <stdexcept>
#include <string>

namespace coeff::core {

SchedulerBase::SchedulerBase(const flexray::ClusterConfig& cfg,
                             net::MessageSet statics, net::MessageSet dynamics,
                             sim::Time batch_window,
                             std::optional<sched::StaticScheduleTable> table)
    : cfg_(cfg),
      statics_(std::move(statics)),
      dynamics_(std::move(dynamics)),
      table_(table.has_value()
                 ? std::move(*table)
                 : sched::StaticScheduleTable::build(statics_, cfg_)),
      batch_window_(batch_window),
      cycle_duration_(cfg.cycle_duration()) {
  statics_.validate();
  dynamics_.validate();
  if (batch_window_ <= sim::Time::zero()) {
    throw std::invalid_argument("SchedulerBase: non-positive batch window");
  }
  stats_.bus_bit_rate = static_cast<double>(cfg_.bus_bit_rate);

  nodes_.reserve(static_cast<std::size_t>(cfg_.num_nodes));
  for (int i = 0; i < cfg_.num_nodes; ++i) {
    nodes_.emplace_back(units::NodeId{i}, "ecu" + std::to_string(i));
  }
  for (const auto& a : table_.assignments()) {
    // Assignments for ids not in the base set (e.g. FSPEC's redundant
    // clones) are registered by the subclass, which knows the mapping.
    const net::Message* m = statics_.find(a.message_id);
    if (m == nullptr) continue;
    nodes_.at(static_cast<std::size_t>(m->node)).static_buffers().add_slot(
        a.slot);
  }
  for (const auto& m : dynamics_.messages()) {
    if (m.frame_id <= cfg_.g_number_of_static_slots) {
      throw std::invalid_argument(
          "SchedulerBase: dynamic message " + std::to_string(m.id) +
          " frame id must exceed the static slot count");
    }
    // Two or more messages may share a dynamic frame id (§II-B) as long
    // as one node owns the id: the node's priority queue decides which
    // goes out in the current cycle.
    auto [it, inserted] = dynamic_by_frame_id_.emplace(m.frame_id, &m);
    if (!inserted && it->second->node != m.node) {
      throw std::invalid_argument(
          "SchedulerBase: dynamic frame id " + std::to_string(m.frame_id) +
          " shared across different nodes");
    }
    if (inserted) {
      nodes_.at(static_cast<std::size_t>(m.node))
          .add_dynamic_frame_id(
              flexray::FrameId{static_cast<std::uint16_t>(m.frame_id)});
    }
  }
  for (const auto& m : statics_.messages()) next_static_index_[m.id] = 0;
}

const net::Message* SchedulerBase::dynamic_message_for_frame(
    int frame_id) const {
  auto it = dynamic_by_frame_id_.find(frame_id);
  return it == dynamic_by_frame_id_.end() ? nullptr : it->second;
}

void SchedulerBase::add_copies(Instance& inst, int copies) {
  inst.copies_required += copies;
  owed_copies_ += copies;
}

void SchedulerBase::cancel_copies(Instance& inst, int copies) {
  const int outstanding = inst.copies_required - inst.copies_sent;
  const int cancelled = std::min(copies, outstanding);
  inst.copies_required -= cancelled;
  owed_copies_ -= cancelled;
}

void SchedulerBase::release_statics_until(sim::Time until) {
  const sim::Time cap = std::min(until, batch_window_);
  for (const auto& m : statics_.messages()) {
    std::int64_t& next = next_static_index_[m.id];
    while (true) {
      const sim::Time release = m.offset + m.period * next;
      if (release >= cap) break;
      Instance& inst = instances_.create(m.id, next);
      inst.kind = net::MessageKind::kStatic;
      inst.node = m.node;
      inst.size_bits = m.size_bits;
      inst.release = release;
      inst.abs_deadline = release + m.deadline;
      inst.copies_required = 0;
      ++segment(net::MessageKind::kStatic).released;
      on_static_release(inst, m);
      ++next;
    }
  }
}

void SchedulerBase::add_dynamic_arrival(int message_id, sim::Time at) {
  const net::Message* m = dynamics_.find(message_id);
  if (m == nullptr) {
    throw std::invalid_argument("add_dynamic_arrival: unknown message " +
                                std::to_string(message_id));
  }
  std::int64_t& next = next_dynamic_index_[message_id];
  Instance& inst = instances_.create(message_id, next++);
  inst.kind = net::MessageKind::kDynamic;
  inst.node = m->node;
  inst.size_bits = m->size_bits;
  inst.release = at;
  inst.abs_deadline = at + m->deadline;
  inst.copies_required = 0;
  ++segment(net::MessageKind::kDynamic).released;

  flexray::PendingMessage pending;
  pending.instance = inst.key;
  pending.frame_id = flexray::FrameId{static_cast<std::uint16_t>(m->frame_id)};
  pending.payload_bits = m->size_bits;
  pending.release = at;
  pending.deadline = inst.abs_deadline;
  pending.priority = m->frame_id;  // FTDMA: lower frame id wins
  on_dynamic_release(inst, *m, pending);
}

void SchedulerBase::on_cycle_start(units::CycleIndex cycle, sim::Time at) {
  release_statics_until(at + cycle_duration_);
  sweep(at);
  on_cycle_start_hook(cycle, at);
}

void SchedulerBase::on_cycle_end(units::CycleIndex /*cycle*/,
                                 sim::Time /*at*/) {}

void SchedulerBase::on_dynamic_declined(flexray::ChannelId /*channel*/,
                                        units::CycleIndex /*cycle*/,
                                        const flexray::TxRequest& request) {
  // Defensive: put the message back so it can retry in a later cycle.
  Instance* inst = instances_.find(request.instance);
  if (inst == nullptr) return;
  const net::Message* m = dynamics_.find(inst->message_id);
  if (m == nullptr) return;
  flexray::PendingMessage pending;
  pending.instance = inst->key;
  pending.frame_id = flexray::FrameId{static_cast<std::uint16_t>(m->frame_id)};
  pending.payload_bits = m->size_bits;
  pending.release = inst->release;
  pending.deadline = inst->abs_deadline;
  pending.priority = m->frame_id;
  nodes_.at(static_cast<std::size_t>(m->node)).dynamic_queue().push(pending);
}

void SchedulerBase::account_outcome(const flexray::TxOutcome& outcome) {
  Instance* inst = instances_.find(outcome.request.instance);
  if (inst == nullptr) {
    throw std::logic_error("account_outcome: unknown instance");
  }
  ++inst->copies_sent;
  --owed_copies_;
  last_activity_ = std::max(last_activity_, outcome.end);
  SegmentMetrics& seg = segment(inst->kind);
  ++seg.copies_sent;
  if (outcome.corrupted) ++seg.copies_corrupted;
  if (!outcome.corrupted && !inst->delivered) {
    inst->delivered = true;
    inst->delivered_at = outcome.end;
    seg.useful_payload_bits += inst->size_bits;
    if (outcome.segment == flexray::Segment::kStatic) {
      stats_.useful_bits_static_wire += inst->size_bits;
    } else {
      stats_.useful_bits_dynamic_wire += inst->size_bits;
    }
    seg.latency.add(outcome.end - inst->release);
    if (outcome.end <= inst->abs_deadline) {
      ++seg.delivered;
    } else if (!inst->miss_recorded) {
      // First success landed late: that is a deadline miss.
      inst->miss_recorded = true;
      ++seg.missed;
    }
  }
  if (inst->copies_sent >= inst->copies_required) {
    // The instance's full transmission (all copies) has left the wire.
    seg.completion.add(outcome.end - inst->release);
  }
}

void SchedulerBase::sweep(sim::Time now) {
  // Expired dynamic queue entries can never be delivered in time: unless
  // the run drains the whole batch, cancel all their outstanding copies
  // (the miss itself is recorded in the instance sweep below). Drain
  // runs keep expired entries (the batch must fully transmit) but still
  // abandon entries the scheme demonstrably cannot serve — 15 periods
  // past the deadline — so an unservable frame id cannot stall the run.
  for (auto& node : nodes_) {
    const auto dropped =
        drop_expired_dynamics_
            ? node.dynamic_queue().drop_expired(now)
            : node.dynamic_queue().drop_if([now](
                  const flexray::PendingMessage& m) {
                const sim::Time patience = (m.deadline - m.release) * 15;
                return m.deadline + patience < now;
              });
    for (const auto& entry : dropped) {
      Instance* inst = instances_.find(entry.instance);
      if (inst != nullptr) {
        cancel_copies(*inst, inst->copies_required - inst->copies_sent);
      }
    }
  }
  for (const std::uint64_t key : instances_.keys()) {
    Instance* inst = instances_.find(key);
    if (inst == nullptr) continue;
    if (!inst->delivered && !inst->miss_recorded && inst->abs_deadline < now) {
      inst->miss_recorded = true;
      ++segment(inst->kind).missed;
    }
    if (inst->copies_sent >= inst->copies_required &&
        (inst->delivered || inst->miss_recorded)) {
      instances_.erase(key);
    }
  }
}

void SchedulerBase::finalize(sim::Time now) {
  sweep(now);
  for (const std::uint64_t key : instances_.keys()) {
    Instance* inst = instances_.find(key);
    if (inst == nullptr) continue;
    if (!inst->delivered && !inst->miss_recorded) {
      // Nothing more will be sent for the batch; an undelivered instance
      // is a miss even if its deadline is formally in the future.
      inst->miss_recorded = true;
      ++segment(inst->kind).missed;
    }
    instances_.erase(key);
  }
}

}  // namespace coeff::core
