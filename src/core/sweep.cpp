#include "core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace coeff::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

SweepRunner::SweepRunner(int jobs) : jobs_(resolve_jobs(jobs)) {}

int SweepRunner::resolve_jobs(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("COEFF_JOBS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return static_cast<int>(runtime::ThreadPool::hardware_threads());
}

SweepReport SweepRunner::run(const std::vector<SweepCell>& cells) const {
  SweepReport report;
  report.jobs = jobs_;
  report.cells.resize(cells.size());
  std::vector<std::exception_ptr> errors(cells.size());

  const auto run_cell = [&](std::size_t i) {
    SweepCellResult& out = report.cells[i];
    out.label = cells[i].label;
    const auto start = Clock::now();
    try {
      out.result = run_experiment(cells[i].config, cells[i].scheme);
    } catch (...) {
      errors[i] = std::current_exception();
    }
    out.wall_seconds = seconds_since(start);
  };

  const auto total_start = Clock::now();
  if (jobs_ <= 1 || cells.size() <= 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) run_cell(i);
  } else {
    // Dynamic assignment: workers pull the next unclaimed cell, so a
    // slow cell never blocks the rest of the grid. Each result lands in
    // its own pre-sized slot — no ordering races.
    runtime::ThreadPool pool(static_cast<std::size_t>(
        std::min<std::size_t>(static_cast<std::size_t>(jobs_),
                              cells.size())));
    std::atomic<std::size_t> next{0};
    for (std::size_t w = 0; w < pool.size(); ++w) {
      pool.submit([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= report.cells.size()) return;
          run_cell(i);
        }
      });
    }
    pool.wait_idle();
  }
  report.total_wall_seconds = seconds_since(total_start);
  for (const SweepCellResult& cell : report.cells) {
    report.serial_estimate_seconds += cell.wall_seconds;
  }
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return report;
}

std::string sweep_report_json(const SweepReport& report,
                              const std::string& suite) {
  std::ostringstream out;
  out.precision(9);
  const auto escape = [](const std::string& s) {
    std::string r;
    for (const char c : s) {
      if (c == '"' || c == '\\') r.push_back('\\');
      r.push_back(c);
    }
    return r;
  };
  out << "{\n"
      << "  \"suite\": \"" << escape(suite) << "\",\n"
      << "  \"jobs\": " << report.jobs << ",\n"
      << "  \"hardware_concurrency\": "
      << runtime::ThreadPool::hardware_threads() << ",\n"
      << "  \"total_wall_s\": " << report.total_wall_seconds << ",\n"
      << "  \"serial_estimate_s\": " << report.serial_estimate_seconds
      << ",\n"
      << "  \"speedup_vs_serial_estimate\": " << report.speedup_estimate()
      << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const SweepCellResult& cell = report.cells[i];
    out << "    {\"label\": \"" << escape(cell.label) << "\", "
        << "\"scheme\": \"" << to_string(cell.result.scheme) << "\", "
        << "\"wall_s\": " << cell.wall_seconds << ", "
        << "\"miss_ratio\": " << cell.result.run.overall_miss_ratio() << ", "
        << "\"running_time_s\": "
        << cell.result.run.running_time.as_seconds() << ", "
        << "\"cycles\": " << cell.result.cycles_run << "}"
        << (i + 1 < report.cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

void write_sweep_json(const SweepReport& report, const std::string& suite,
                      const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("sweep: cannot write " + path);
  }
  out << sweep_report_json(report, suite);
}

}  // namespace coeff::core
