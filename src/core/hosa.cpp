#include "core/hosa.hpp"

namespace coeff::core {

HosaScheduler::HosaScheduler(const flexray::ClusterConfig& cfg,
                             net::MessageSet statics,
                             net::MessageSet dynamics, sim::Time batch_window)
    : SchedulerBase(cfg, std::move(statics), std::move(dynamics),
                    batch_window) {}

void HosaScheduler::on_static_release(Instance& inst, const net::Message& m) {
  const sched::SlotAssignment* a = table_.assignment_of(m.id);
  if (a == nullptr) return;  // unplaced: miss at the deadline
  add_copies(inst, 2);       // one mirrored pair per instance
  auto& buffers = nodes_.at(static_cast<std::size_t>(m.node)).static_buffers();
  if (auto old = buffers.read(a->slot); old.has_value()) {
    if (Instance* prev = instances_.find(old->instance)) {
      cancel_copies(*prev, prev->copies_required - prev->copies_sent);
    }
  }
  flexray::PendingMessage pending;
  pending.instance = inst.key;
  pending.frame_id = units::to_frame_id(a->slot);
  pending.payload_bits = m.size_bits;
  pending.release = inst.release;
  pending.deadline = inst.abs_deadline;
  buffers.write(a->slot, pending);
}

void HosaScheduler::on_dynamic_release(Instance& inst, const net::Message& m,
                                       const flexray::PendingMessage& pending) {
  add_copies(inst, 2);  // channel A frame + its channel B mirror
  nodes_.at(static_cast<std::size_t>(m.node)).dynamic_queue().push(pending);
}

void HosaScheduler::on_cycle_start_hook(units::CycleIndex /*cycle*/,
                                        sim::Time /*at*/) {
  for (const auto& [_, req] : dynamic_mirror_) {
    if (Instance* inst = instances_.find(req.instance)) {
      cancel_copies(*inst, 1);
    }
  }
  dynamic_mirror_.clear();
}

std::optional<flexray::TxRequest> HosaScheduler::static_slot(
    flexray::ChannelId channel, units::CycleIndex cycle, units::SlotId slot) {
  const net::Message* m = tpl_.message_at(slot, cycle);
  if (m == nullptr) return std::nullopt;  // idle slacks stay idle
  auto& buffers = nodes_.at(static_cast<std::size_t>(m->node)).static_buffers();
  const sim::Time slot_start = cycle_duration_ * cycle.value() +
                               cfg_.static_slot_duration() * (slot.value() - 1);
  const auto pending = buffers.read(slot);
  if (!pending.has_value() || pending->release > slot_start) {
    return std::nullopt;
  }
  flexray::TxRequest req;
  req.instance = pending->instance;
  req.frame_id = units::to_frame_id(slot);
  req.sender = units::NodeId{m->node};
  req.payload_bits = pending->payload_bits;
  req.retransmission = channel == flexray::ChannelId::kB;
  if (channel == flexray::ChannelId::kB) {
    buffers.clear(slot);  // the mirrored pair is complete
  }
  return req;
}

void HosaScheduler::decide_static_chunk(
    units::CycleIndex cycle, std::int64_t slot_begin, std::int64_t slot_end,
    flexray::TransmissionPolicy::StaticChunkSink& sink) {
  // Equivalence with the default per-slot loop: static_slot is a pure
  // function of the template cell and the slot's buffer — the A call
  // reads the buffer, the B call reads the same (A does not clear) and
  // then clears it. Either both channels stage the identical request
  // (modulo the retransmission flag) or neither does, so one buffer
  // read per slot with the A/B pair staged together reproduces the
  // two-call sequence exactly.
  const sim::Time slot_duration = cfg_.static_slot_duration();
  sim::Time slot_start =
      cycle_duration_ * cycle.value() + slot_duration * (slot_begin - 1);
  for (std::int64_t s = slot_begin; s <= slot_end;
       ++s, slot_start = slot_start + slot_duration) {
    const units::SlotId slot{s};
    const net::Message* m = tpl_.message_at(slot, cycle);
    if (m == nullptr) continue;
    auto& buffers =
        nodes_[static_cast<std::size_t>(m->node)].static_buffers();
    const auto pending = buffers.read(slot);
    if (!pending.has_value() || pending->release > slot_start) continue;
    flexray::TxRequest req;
    req.instance = pending->instance;
    req.frame_id = units::to_frame_id(slot);
    req.sender = units::NodeId{m->node};
    req.payload_bits = pending->payload_bits;
    req.retransmission = false;
    sink.stage(slot, flexray::ChannelId::kA, req);
    req.retransmission = true;
    sink.stage(slot, flexray::ChannelId::kB, req);
    buffers.clear(slot);  // the mirrored pair is complete
  }
}

std::optional<flexray::TxRequest> HosaScheduler::dynamic_slot(
    flexray::ChannelId channel, units::CycleIndex cycle,
    units::SlotId slot_counter, units::MinislotId minislot,
    std::int64_t minislots_remaining) {
  if (channel == flexray::ChannelId::kB) {
    auto it = dynamic_mirror_.find(slot_counter);
    if (it == dynamic_mirror_.end()) return std::nullopt;
    flexray::TxRequest req = it->second;
    req.retransmission = true;
    dynamic_mirror_.erase(it);
    return req;
  }
  const net::Message* m =
      dynamic_message_for_frame(static_cast<int>(slot_counter.value()));
  if (m == nullptr) return std::nullopt;
  auto& queue = nodes_.at(static_cast<std::size_t>(m->node)).dynamic_queue();
  const auto pending = queue.peek(units::to_frame_id(slot_counter));
  if (!pending.has_value()) return std::nullopt;
  const sim::Time at = cycle_duration_ * cycle.value() +
                       cfg_.static_segment_duration() +
                       cfg_.minislot_duration() * minislot.value();
  if (pending->release > at) return std::nullopt;
  if (cfg_.minislots_for(pending->payload_bits) > minislots_remaining) {
    return std::nullopt;
  }
  if (minislot + 1 > cfg_.latest_tx_minislot()) return std::nullopt;
  queue.pop(pending->instance);
  flexray::TxRequest req;
  req.instance = pending->instance;
  req.frame_id = units::to_frame_id(slot_counter);
  req.sender = units::NodeId{m->node};
  req.payload_bits = pending->payload_bits;
  dynamic_mirror_[slot_counter] = req;
  return req;
}

std::int64_t HosaScheduler::dynamic_next_frame(flexray::ChannelId channel,
                                               std::int64_t min_frame) const {
  if (channel == flexray::ChannelId::kB) {
    std::int64_t best = flexray::kNoDynamicFrame;
    for (const auto& [slot_counter, _] : dynamic_mirror_) {
      const std::int64_t frame = slot_counter.value();
      if (frame >= min_frame && frame < best) best = frame;
    }
    return best;
  }
  return queued_dynamic_next_frame(min_frame);
}

void HosaScheduler::on_node_down(units::NodeId /*node*/,
                                 units::CycleIndex /*cycle*/,
                                 sim::Time /*at*/) {
  for (auto it = dynamic_mirror_.begin(); it != dynamic_mirror_.end();) {
    if (instances_.find(it->second.instance) == nullptr) {
      it = dynamic_mirror_.erase(it);
    } else {
      ++it;
    }
  }
}

void HosaScheduler::on_tx_complete(const flexray::TxOutcome& outcome) {
  account_outcome(outcome);
  if (outcome.request.retransmission) {
    ++stats_.retransmission_copies_sent;
  }
}

}  // namespace coeff::core
