// Shared machinery for the CoEfficient and FSPEC transmission policies:
// instance release, CHI plumbing, deadline bookkeeping, and metric
// accumulation. The derived classes implement only what differs — how
// slots are filled and how redundant copies are produced.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/cycle_template.hpp"
#include "core/instance.hpp"
#include "core/metrics.hpp"
#include "flexray/chi.hpp"
#include "flexray/policy.hpp"
#include "net/message.hpp"
#include "sched/schedule_table.hpp"
#include "sim/trace.hpp"

namespace coeff::core {

class SchedulerBase : public flexray::TransmissionPolicy {
 public:
  /// `batch_window`: static instances are released for all release times
  /// in [0, batch_window); dynamic arrivals are injected externally
  /// (add_dynamic_arrival) and should respect the same window.
  /// `table` lets a subclass install a table built from an expanded set
  /// (FSPEC's pre-planned redundancy); by default the table is built
  /// from `statics` directly.
  SchedulerBase(const flexray::ClusterConfig& cfg, net::MessageSet statics,
                net::MessageSet dynamics, sim::Time batch_window,
                std::optional<sched::StaticScheduleTable> table = std::nullopt);
  ~SchedulerBase() override = default;

  /// When false, dynamic queue entries survive their deadline and are
  /// still transmitted (running-time experiments drain the full batch);
  /// misses are recorded either way. Default: true (drop expired).
  void set_drop_expired_dynamics(bool drop) { drop_expired_dynamics_ = drop; }

  /// Inject one dynamic arrival (typically from a simulation-engine
  /// event): creates the instance and enqueues it in the producing
  /// node's CHI dynamic queue.
  void add_dynamic_arrival(int message_id, sim::Time at);

  /// True while the scheme still owes wire transmissions for the batch.
  [[nodiscard]] bool work_remaining() const { return owed_copies_ > 0; }

  /// Settle every instance still live at end of run (records misses for
  /// undelivered ones whose deadline passed or will pass unserved).
  void finalize(sim::Time now);

  /// End time of the last wire transmission (the batch makespan).
  [[nodiscard]] sim::Time last_activity() const { return last_activity_; }

  [[nodiscard]] const RunStats& stats() const { return stats_; }
  [[nodiscard]] RunStats& stats() { return stats_; }

  /// Optional structured-trace sink for scheduler-level events (plan
  /// swaps, load shedding). May be nullptr; the trace must outlive the
  /// scheduler. Typically the same Trace the Cluster records into.
  void set_trace(sim::Trace* trace) { trace_ = trace; }
  [[nodiscard]] const sched::StaticScheduleTable& table() const {
    return table_;
  }
  [[nodiscard]] const net::MessageSet& static_messages() const {
    return statics_;
  }
  [[nodiscard]] const net::MessageSet& dynamic_messages() const {
    return dynamics_;
  }

  /// The compiled (table × plan) lookup the hot paths read from.
  [[nodiscard]] const CycleTemplate& cycle_template() const { return tpl_; }

  // --- TransmissionPolicy (shared parts) -------------------------------
  /// All SchedulerBase schemes satisfy the compiled-walk contract: slot
  /// decisions read only decide-side state (CHI buffers, queues, plans)
  /// and never state written by same-cycle on_tx_complete calls, which
  /// do pure outcome accounting read at cycle boundaries.
  [[nodiscard]] bool compiled_capable() const override { return true; }
  void on_cycle_start(units::CycleIndex cycle, sim::Time at) override;
  void on_cycle_end(units::CycleIndex cycle, sim::Time at) override;
  void on_dynamic_declined(flexray::ChannelId channel, units::CycleIndex cycle,
                           const flexray::TxRequest& request) override;
  /// Shared topology-state bookkeeping for all schemes: a crash powers
  /// the node's CHI off and settles its undelivered instances as
  /// source-lost (a dead producer is a node failure, not a scheduling
  /// miss); a restart reintegrates the node with empty buffers; channel
  /// events track availability. Subclasses refine recovery through the
  /// on_node_down/on_node_up/on_channel_down/on_channel_up hooks.
  void on_topology_event(const flexray::TopologyEvent& event,
                         units::CycleIndex cycle, sim::Time at) override;

  // --- Topology state ---------------------------------------------------
  [[nodiscard]] bool node_alive(int node) const;
  [[nodiscard]] bool channel_available(flexray::ChannelId channel) const {
    return !channel_down_[static_cast<std::size_t>(channel)];
  }
  [[nodiscard]] int channels_available() const;

 protected:
  /// Scheme-level recovery hooks, called after the base bookkeeping for
  /// the corresponding topology event. Defaults: no reaction.
  virtual void on_node_down(units::NodeId /*node*/, units::CycleIndex /*cycle*/,
                            sim::Time /*at*/) {}
  virtual void on_node_up(units::NodeId /*node*/, units::CycleIndex /*cycle*/,
                          sim::Time /*at*/) {}
  virtual void on_channel_down(flexray::ChannelId /*channel*/,
                               units::CycleIndex /*cycle*/, sim::Time /*at*/) {}
  virtual void on_channel_up(flexray::ChannelId /*channel*/,
                             units::CycleIndex /*cycle*/, sim::Time /*at*/) {}
  /// Subclass hook invoked from on_cycle_start after releases/sweeps.
  virtual void on_cycle_start_hook(units::CycleIndex /*cycle*/,
                                   sim::Time /*at*/) {}

  /// Called for every newly released static instance. The subclass must
  /// register the copies it owes (add_copies) and stage the primary
  /// transmission (e.g. write the CHI static buffer).
  virtual void on_static_release(Instance& inst, const net::Message& m) = 0;

  /// Called for every dynamic arrival. The subclass must register owed
  /// copies and enqueue `pending` where its dispatch logic will find it.
  virtual void on_dynamic_release(Instance& inst, const net::Message& m,
                                  const flexray::PendingMessage& pending) = 0;

  /// Record a wire transmission outcome against its instance: updates
  /// copy counts, delivery state, latency, and owed-work accounting.
  void account_outcome(const flexray::TxOutcome& outcome);

  /// Reduce an instance's owed copies (cancelled retransmission or
  /// expired queue entry) keeping the global owed counter consistent.
  void cancel_copies(Instance& inst, int copies);

  /// Add owed copies to an instance (planned redundancy).
  void add_copies(Instance& inst, int copies);

  [[nodiscard]] SegmentMetrics& segment(net::MessageKind kind) {
    return kind == net::MessageKind::kStatic ? stats_.statics
                                             : stats_.dynamics;
  }

  /// The node that owns a dynamic frame id, or nullptr. Flat-array
  /// lookup (built once: the dynamic set never changes at runtime).
  [[nodiscard]] const net::Message* dynamic_message_for_frame(
      int frame_id) const {
    const auto idx = static_cast<std::size_t>(frame_id);
    return frame_id >= 0 && idx < dynamic_frame_lut_.size()
               ? dynamic_frame_lut_[idx]
               : nullptr;
  }

  /// Smallest frame id >= `min_frame` queued in any node's CHI dynamic
  /// queue, or flexray::kNoDynamicFrame. Shared building block for the
  /// schemes' dynamic_next_frame overrides (channel-A semantics).
  [[nodiscard]] std::int64_t queued_dynamic_next_frame(
      std::int64_t min_frame) const;

  /// The per-message retransmission budget baked into the template
  /// (k_z by message id), or nullptr when the scheme plans none.
  [[nodiscard]] virtual const std::unordered_map<int, int>*
  retransmission_budget() const {
    return nullptr;
  }

  /// Recompute the cycle template from (table_, statics_,
  /// retransmission_budget()) and emit the kTemplateRebuild marker
  /// (a=cycle, b=version, c=why) the trace linter checks invalidation
  /// against. Call after ANY input of the template changed.
  void rebuild_template(TemplateRebuildWhy why, units::CycleIndex cycle,
                        sim::Time at);

  flexray::ClusterConfig cfg_;
  net::MessageSet statics_;
  net::MessageSet dynamics_;
  sched::StaticScheduleTable table_;
  sim::Time batch_window_;
  sim::Time cycle_duration_;

  InstanceStore instances_;
  std::vector<flexray::Node> nodes_;
  CycleTemplate tpl_;
  std::vector<const net::Message*> dynamic_frame_lut_;  ///< by frame id
  std::unordered_map<int, const net::Message*> dynamic_by_frame_id_;
  std::unordered_map<int, std::int64_t> next_static_index_;
  std::unordered_map<int, std::int64_t> next_dynamic_index_;
  std::int64_t owed_copies_ = 0;
  sim::Time last_activity_;
  bool drop_expired_dynamics_ = true;
  RunStats stats_;
  sim::Trace* trace_ = nullptr;
  std::vector<char> node_down_;  ///< indexed by node, 1 = crashed
  std::array<bool, flexray::kNumChannels> channel_down_{};

 private:
  bool tpl_announced_ = false;  ///< initial kTemplateRebuild emitted
  /// Earliest not-yet-released static instance, maintained by
  /// release_statics_until so cycles with nothing due skip the full
  /// static scan. Starts at zero (= before any cap) so the first call
  /// always scans; exact thereafter because the static set and the
  /// per-message indices only change inside that function.
  sim::Time next_static_release_;
  void release_statics_until(sim::Time until);
  void sweep(sim::Time now);
  /// Settle every live instance of a crashed producer as source-lost and
  /// cancel its outstanding copies (its CHI is gone; nothing more will
  /// be sent). Queue entries referencing the erased instances are
  /// purged lazily by the subclasses' stale-entry checks.
  void settle_source_loss(int node);
  /// Resolve a replica vote (kVoteResolved trace + counters); idempotent
  /// per instance.
  void settle_vote(Instance& inst, bool accepted, sim::Time at);
};

}  // namespace coeff::core
