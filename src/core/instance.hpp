// Message-instance lifecycle tracking shared by both schedulers.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/message.hpp"
#include "sim/time.hpp"

namespace coeff::core {

/// One released instance (job) of a message and the transmissions the
/// active scheme still owes for it.
struct Instance {
  std::uint64_t key = 0;
  int message_id = 0;
  net::MessageKind kind = net::MessageKind::kStatic;
  std::int64_t index = 0;  ///< k-th release of its message
  int node = 0;
  std::int64_t size_bits = 0;
  sim::Time release;
  sim::Time abs_deadline;
  /// Total wire transmissions owed (scheme-specific: primaries, planned
  /// retransmission copies, mirror rounds). May be reduced if copies are
  /// cancelled (no slack before the deadline / queue expiry).
  int copies_required = 1;
  int copies_sent = 0;
  bool delivered = false;       ///< an uncorrupted copy landed in time
  sim::Time delivered_at;
  bool miss_recorded = false;   ///< deadline passed undelivered (counted)
  // --- NMR replica voting (0 = plain first-success acceptance) ---------
  /// Number of replicas in the vote; delivery requires a strict majority
  /// (vote_k / 2 + 1) of uncorrupted replicas instead of a single
  /// success.
  int vote_k = 0;
  int vote_ok = 0;              ///< uncorrupted replicas observed so far
  bool vote_settled = false;    ///< kVoteResolved emitted for this instance
};

class InstanceStore {
 public:
  [[nodiscard]] static std::uint64_t make_key(int message_id,
                                              std::int64_t index) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(message_id))
            << 32) |
           static_cast<std::uint32_t>(index);
  }

  Instance& create(int message_id, std::int64_t index) {
    const std::uint64_t key = make_key(message_id, index);
    Instance& inst = map_[key];
    inst.key = key;
    inst.message_id = message_id;
    inst.index = index;
    return inst;
  }

  [[nodiscard]] Instance* find(std::uint64_t key) {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const Instance* find(std::uint64_t key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  void erase(std::uint64_t key) { map_.erase(key); }

  /// Erase during iteration; returns the iterator past the erased
  /// element (same traversal order as keys(): erasing never rehashes).
  std::unordered_map<std::uint64_t, Instance>::iterator erase(
      std::unordered_map<std::uint64_t, Instance>::iterator it) {
    return map_.erase(it);
  }

  [[nodiscard]] std::size_t size() const { return map_.size(); }

  /// Stable snapshot of keys (iteration while mutating the store).
  [[nodiscard]] std::vector<std::uint64_t> keys() const {
    std::vector<std::uint64_t> out;
    out.reserve(map_.size());
    for (const auto& [k, _] : map_) out.push_back(k);
    return out;
  }

  auto begin() { return map_.begin(); }
  auto end() { return map_.end(); }
  [[nodiscard]] auto begin() const { return map_.begin(); }
  [[nodiscard]] auto end() const { return map_.end(); }

 private:
  std::unordered_map<std::uint64_t, Instance> map_;
};

}  // namespace coeff::core
