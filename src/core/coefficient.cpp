#include "core/coefficient.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "sched/task.hpp"

namespace coeff::core {

CoEfficientScheduler::CoEfficientScheduler(const flexray::ClusterConfig& cfg,
                                           net::MessageSet statics,
                                           net::MessageSet dynamics,
                                           sim::Time batch_window,
                                           const CoEfficientOptions& options)
    : SchedulerBase(cfg, std::move(statics), std::move(dynamics),
                    batch_window),
      options_(options) {
  static_capacity_bits_ = cfg_.static_slot_capacity_bits();
  if (options_.vote_replicas != 0 &&
      (options_.vote_replicas < 3 || options_.vote_replicas % 2 == 0)) {
    throw std::invalid_argument(
        "CoEfficientScheduler: vote_replicas must be odd and >= 3");
  }
  member_dead_.assign(static_cast<std::size_t>(cfg_.num_nodes), 0);
  if (options_.silent_node_detection) {
    detector_ = std::make_unique<fault::SilentNodeDetector>(
        cfg_.num_nodes, options_.silent_cycle_threshold);
  }
  if (options_.rho > 0.0) {
    rebuild_plan(options_.ber, options_.throw_on_infeasible);
    // Bake the fresh budget into the template (the base constructor
    // built it before the plan existed). No trace is attached yet, so
    // this stays silent; the first cycle start announces the result.
    rebuild_template(TemplateRebuildWhy::kInitial, units::CycleIndex{0},
                     sim::Time::zero());
    if (options_.enable_monitor) {
      monitor_ = std::make_unique<fault::ReliabilityMonitor>(
          options_.ber, options_.monitor);
    }
  }
  if (options_.mode_policy.enabled) {
    mode_mgr_ = std::make_unique<sched::ModeManager>(options_.mode_policy);
    for (const auto& m : statics_.messages()) {
      if (m.criticality != net::Criticality::kLow) {
        any_criticality_assigned_ = true;
      }
    }
    for (const auto& m : dynamics_.messages()) {
      if (m.criticality != net::Criticality::kLow) {
        any_criticality_assigned_ = true;
      }
    }
  }
  if (options_.power.enabled) {
    energy_ = std::make_unique<flexray::EnergyMeter>(
        options_.power, static_cast<int>(cfg_.num_nodes),
        static_cast<double>(cfg_.bus_bit_rate));
  }
  if (options_.use_fp_admission) {
    // Model the bus as a preemptive fixed-priority processor: each static
    // message is a periodic task whose cost is its wire time (§III-A).
    std::vector<sched::PeriodicTask> tasks;
    for (const auto& m : statics_.messages()) {
      sched::PeriodicTask t;
      t.id = m.id;
      t.wcet = cfg_.transmission_time(m.size_bits);
      t.period = m.period;
      t.offset = m.offset;
      t.deadline = m.deadline;
      tasks.push_back(t);
    }
    sched::TaskSet set{std::move(tasks)};
    if (!set.empty()) {
      stealer_ = std::make_unique<sched::SlackStealer>(set);
    }
  }
}

void CoEfficientScheduler::rebuild_plan(double ber, bool throw_on_infeasible) {
  fault::SolverOptions solver;
  solver.ber = ber;
  solver.rho = options_.rho;
  solver.u = options_.u;
  solver.max_copies_per_message = options_.max_copies_per_message;
  solver.throw_on_infeasible = throw_on_infeasible;
  // Dead members produce nothing: solving over their messages would
  // spend the copy budget on traffic that cannot exist. Their messages
  // simply get no copies_by_message_ entry (k_z = 0).
  const bool membership_reduced =
      std::any_of(member_dead_.begin(), member_dead_.end(),
                  [](char dead) { return dead != 0; });
  net::MessageSet alive;
  if (membership_reduced) {
    for (const auto& m : statics_.messages()) {
      if (member_dead_[static_cast<std::size_t>(m.node)] == 0) alive.add(m);
    }
  }
  const net::MessageSet& set = membership_reduced ? alive : statics_;
  plan_ = options_.use_uniform_plan ? fault::solve_uniform(set, solver)
                                    : fault::solve_differentiated(set, solver);
  copies_by_message_.clear();
  const auto& msgs = set.messages();
  for (std::size_t z = 0; z < msgs.size(); ++z) {
    copies_by_message_[msgs[z].id] = plan_.copies[z];
  }
  degraded_mode_ = plan_.degraded;
  stats_.plan_degraded = plan_.degraded;
  stats_.plan_target_log_r = plan_.target_log_reliability;
  stats_.plan_achieved_log_r = plan_.log_reliability;
}

void CoEfficientScheduler::on_static_release(Instance& inst,
                                             const net::Message& m) {
  add_copies(inst, 1);  // the primary
  const sched::SlotAssignment* a = table_.assignment_of(m.id);
  if (a != nullptr) {
    auto& buffers =
        nodes_.at(static_cast<std::size_t>(m.node)).static_buffers();
    // An unsent previous value would be silently overwritten (FlexRay
    // static buffers hold the latest value); release its owed copy.
    if (auto old = buffers.read(a->slot); old.has_value()) {
      if (Instance* prev = instances_.find(old->instance)) {
        cancel_copies(*prev, 1);
      }
    }
    flexray::PendingMessage pending;
    pending.instance = inst.key;
    pending.frame_id = units::to_frame_id(a->slot);
    pending.payload_bits = m.size_bits;
    pending.release = inst.release;
    pending.deadline = inst.abs_deadline;
    buffers.write(a->slot, pending);
  } else {
    // Unplaced message: the primary cannot be staged; it will be counted
    // as a miss at its deadline.
    cancel_copies(inst, 1);
  }

  // Budget class from the compiled template when the message is placed
  // (its entry at the home occurrence carries k_z); unplaced messages
  // fall back to the plan map.
  int kz;
  if (a != nullptr) {
    kz = tpl_.budget_at(a->slot, a->base_cycle);
  } else {
    auto it = copies_by_message_.find(m.id);
    kz = it == copies_by_message_.end() ? 0 : it->second;
  }
  if (options_.vote_replicas > 0) {
    // NMR voting: the instance needs vote_replicas replicas on the wire
    // (primary included); the extra copies ride the same slack-stealing
    // machinery as BER retransmission copies, so the larger of the two
    // budgets is staged.
    inst.vote_k = options_.vote_replicas;
    kz = std::max(kz, options_.vote_replicas - 1);
  }
  if (kz <= 0) return;

  int admitted = kz;
  if (stealer_ != nullptr) {
    // §III-C acceptance test: each copy is a hard aperiodic job; admit
    // only what the fixed-priority slack analysis can guarantee.
    const sim::Time p = cfg_.transmission_time(m.size_bits);
    const sim::Time t = std::max(stealer_->now(), sim::Time::zero());
    admitted = 0;
    for (int c = 0; c < kz; ++c) {
      if (stealer_->admit_hard(t, p, inst.abs_deadline)) {
        ++admitted;
      } else {
        ++stats_.admission_rejections;
      }
    }
  }
  stats_.retransmission_copies_planned += kz;
  stats_.retransmission_copies_dropped += kz - admitted;
  if (admitted <= 0) return;

  add_copies(inst, admitted);
  if (trace_ != nullptr) {
    // a=message, b=node, c=admitted copies: the budget the trace linter
    // charges retransmission transmissions against.
    trace_->emit(inst.release, sim::TraceKind::kRetransmissionScheduled, m.id,
                 m.node, admitted);
  }
  RetxJob job;
  job.instance = inst.key;
  job.node = m.node;
  job.bits = m.size_bits;
  job.release = inst.release;
  job.deadline = inst.abs_deadline;
  job.home_slot = a != nullptr ? a->slot : units::SlotId{0};
  // Keep the queue EDF-ordered.
  auto pos = std::upper_bound(
      retx_jobs_.begin(), retx_jobs_.end(), job,
      [](const RetxJob& a, const RetxJob& b) { return a.deadline < b.deadline; });
  retx_jobs_.insert(pos, static_cast<std::size_t>(admitted), job);
}

void CoEfficientScheduler::on_dynamic_release(
    Instance& inst, const net::Message& m,
    const flexray::PendingMessage& pending) {
  if (degraded_mode_) {
    // Graceful degradation: soft load is shed at release so every idle
    // slot (and the kSoftShare reservation) stays available to hard
    // retransmission copies. The instance settles as a miss.
    ++stats_.dynamic_frames_shed;
    if (trace_ != nullptr) {
      trace_->emit(inst.release, sim::TraceKind::kLoadShed, m.id, m.node);
    }
    return;
  }
  // Mixed-criticality admission: a degraded mode sheds dynamic releases
  // below its criticality floor at release time (queues stay untouched,
  // so the compiled fast path and the slack-peek cache are unaffected).
  // The shed message is remembered for match-up once NORMAL returns.
  if (mode_mgr_ != nullptr && mode_mgr_->degraded()) {
    const net::Criticality level =
        sched::effective_criticality(m, any_criticality_assigned_);
    if (level < sched::admission_floor(mode_mgr_->mode())) {
      ++stats_.mode_sheds;
      shed_backlog_[m.id] =
          ShedEntry{m.node, level, inst.release};  // keep-latest dedupe
      if (trace_ != nullptr) {
        trace_->emit(inst.release, sim::TraceKind::kShedByMode, m.id, m.node,
                     static_cast<std::int64_t>(mode_mgr_->mode()),
                     static_cast<std::int64_t>(level));
      }
      return;
    }
  }
  add_copies(inst, 1);
  nodes_.at(static_cast<std::size_t>(m.node)).dynamic_queue().push(pending);
}

void CoEfficientScheduler::on_cycle_start_hook(units::CycleIndex cycle,
                                               sim::Time at) {
  // Runtime reliability loop: roll the monitor window at the cycle
  // boundary; on drift, re-solve against the worst-channel estimate and
  // swap the plan (future releases pick up the new k_z).
  if (monitor_ != nullptr && monitor_->on_cycle_end()) {
    const double estimated = monitor_->worst_channel_estimate();
    if (trace_ != nullptr) {
      char note[64];
      std::snprintf(note, sizeof note, "ber_est=%g planned=%g", estimated,
                    monitor_->planned_ber());
      trace_->emit(at, sim::TraceKind::kBerDrift, cycle.value(), -1, -1, -1,
                   note);
    }
    rebuild_plan(estimated, /*throw_on_infeasible=*/false);
    monitor_->note_replanned(estimated);
    ++stats_.plan_swaps;
    if (trace_ != nullptr) {
      trace_->emit(at, sim::TraceKind::kPlanSwap, cycle.value(),
                   plan_.total_copies(),
                   plan_.degraded ? 1 : 0);
    }
    rebuild_template(TemplateRebuildWhy::kPlanSwap, cycle, at);
  }

  // Mixed-criticality mode machine: one evaluation per cycle, at the
  // boundary, from decide-side inputs only (the monitor's latched drift
  // ratio and the dynamic queue backlog) — so the mode trajectory is
  // identical across engines and job counts.
  if (mode_mgr_ != nullptr) {
    const double ratio = monitor_ != nullptr ? monitor_->drift_ratio() : 1.0;
    bool overloaded = false;
    if (options_.mode_policy.overload_backlog > 0) {
      std::int64_t backlog = 0;
      for (const auto& node : nodes_) {
        backlog +=
            static_cast<std::int64_t>(node.dynamic_queue().contents().size());
      }
      overloaded = backlog > options_.mode_policy.overload_backlog;
    }
    const sched::ModeDecision decision = mode_mgr_->evaluate(ratio, overloaded);
    if (decision.changed) {
      ++stats_.mode_changes;
      if (trace_ != nullptr) {
        char note[48];
        std::snprintf(note, sizeof note, "ratio=%g", ratio);
        trace_->emit(at, sim::TraceKind::kModeChange,
                     static_cast<std::int64_t>(decision.from),
                     static_cast<std::int64_t>(decision.to), cycle.value(),
                     options_.mode_policy.recovery_cycles, note);
      }
    }
    // Match-up: once NORMAL has held for a full recovery window, re-admit
    // shed messages in id order, at most matchup_burst per cycle, as
    // fresh releases. Entries older than the match-up window carry stale
    // data and are abandoned instead.
    if (mode_mgr_->matchup_open() && !shed_backlog_.empty()) {
      const sim::Time window =
          cycle_duration_ * options_.mode_policy.matchup_window_cycles;
      int burst = options_.mode_policy.matchup_burst;
      for (auto it = shed_backlog_.begin();
           it != shed_backlog_.end() && burst > 0;) {
        if (it->second.shed_at + window < at) {
          ++stats_.matchup_abandoned;
          it = shed_backlog_.erase(it);
          continue;
        }
        const int id = it->first;
        const ShedEntry entry = it->second;
        it = shed_backlog_.erase(it);
        --burst;
        ++stats_.matchups;
        if (trace_ != nullptr) {
          trace_->emit(at, sim::TraceKind::kMatchUp, id, entry.node,
                       cycle.value(), static_cast<std::int64_t>(entry.level));
        }
        add_dynamic_arrival(id, at);
      }
    }
  }

  // Silent-node detection: register who the schedule expects on the
  // wire this cycle. Skipped under a total blackout — silence proves
  // nothing when no channel can carry a frame.
  if (detector_ != nullptr && channels_available() > 0) {
    for (std::int64_t s = 1; s <= cfg_.g_number_of_static_slots; ++s) {
      const std::int32_t node = tpl_.node_at(units::SlotId{s}, cycle);
      if (node >= 0 && member_dead_[static_cast<std::size_t>(node)] == 0) {
        detector_->note_expected(units::NodeId{node});
      }
    }
  }

  // Copies whose deadline passed with no fitting slack are abandoned.
  for (auto it = retx_jobs_.begin(); it != retx_jobs_.end();) {
    if (it->deadline < at) {
      if (Instance* inst = instances_.find(it->instance)) {
        cancel_copies(*inst, 1);
      }
      ++stats_.retransmission_copies_dropped;
      if (stealer_ != nullptr && stealer_->hard_backlog() > sim::Time::zero()) {
        const sim::Time p = cfg_.transmission_time(it->bits);
        stealer_->on_hard_executed(std::min(p, stealer_->hard_backlog()));
      }
      it = retx_jobs_.erase(it);
    } else {
      ++it;
    }
  }
}

std::deque<CoEfficientScheduler::RetxJob>::iterator
CoEfficientScheduler::find_retx(std::int64_t capacity_bits,
                                sim::Time slot_start, sim::Time slot_end,
                                units::SlotId slot,
                                flexray::ChannelId channel) {
  for (auto it = retx_jobs_.begin(); it != retx_jobs_.end(); ++it) {
    if (it->bits > capacity_bits) continue;  // selective: slack must fit
    if (it->release > slot_start) continue;  // not yet produced
    if (it->deadline < slot_end) continue;   // would land too late
    if (options_.disable_slack_stealing &&
        (slot != it->home_slot || channel != flexray::ChannelId::kB)) {
      continue;  // ablation: copies may only mirror their own slot
    }
    return it;  // the deque is EDF-ordered; first eligible is earliest
  }
  return retx_jobs_.end();
}

std::optional<flexray::PendingMessage>
CoEfficientScheduler::peek_dynamic_for_slack(std::int64_t capacity_bits,
                                             sim::Time slot_start) const {
  // Soft aperiodics are served from stolen slack in FIFO (oldest
  // release first) order, the classic slack-stealing service discipline
  // ([26], [27]). Only messages that have already waited at least one
  // full cycle qualify — they demonstrably missed a dynamic-segment
  // opportunity (FTDMA congestion or an out-of-range frame id); fresh
  // arrivals go through the dynamic segment.
  std::optional<flexray::PendingMessage> best;
  for (const auto& node : nodes_) {
    for (const auto& pending : node.dynamic_queue().contents()) {
      if (pending.payload_bits > capacity_bits) continue;
      if (pending.release + cycle_duration_ > slot_start) continue;
      if (!best || pending.release < best->release ||
          (pending.release == best->release &&
           pending.priority < best->priority)) {
        best = pending;
      }
    }
  }
  return best;
}

std::optional<flexray::PendingMessage>
CoEfficientScheduler::peek_dynamic_cached(std::int64_t capacity_bits,
                                          sim::Time slot_start) const {
  std::uint64_t stamp = 0;
  for (const auto& node : nodes_) stamp += node.dynamic_queue().version();
  if (!slack_peek_valid_ || stamp != slack_peek_stamp_) {
    // Same iteration order and comparator as peek_dynamic_for_slack,
    // minus the waited-a-cycle filter (applied below at query time).
    slack_peek_best_.reset();
    for (const auto& node : nodes_) {
      for (const auto& pending : node.dynamic_queue().contents()) {
        if (pending.payload_bits > capacity_bits) continue;
        if (!slack_peek_best_ ||
            pending.release < slack_peek_best_->release ||
            (pending.release == slack_peek_best_->release &&
             pending.priority < slack_peek_best_->priority)) {
          slack_peek_best_ = pending;
        }
      }
    }
    slack_peek_stamp_ = stamp;
    slack_peek_valid_ = true;
  }
  if (!slack_peek_best_.has_value()) return std::nullopt;
  if (slack_peek_best_->release + cycle_duration_ > slot_start) {
    return std::nullopt;
  }
  return slack_peek_best_;
}

std::optional<flexray::TxRequest> CoEfficientScheduler::static_slot(
    flexray::ChannelId channel, units::CycleIndex cycle, units::SlotId slot) {
  return decide_static(channel, cycle, slot, /*use_slack_cache=*/false);
}

void CoEfficientScheduler::decide_static_chunk(
    units::CycleIndex cycle, std::int64_t slot_begin, std::int64_t slot_end,
    flexray::TransmissionPolicy::StaticChunkSink& sink) {
  // Bulk fast path: when no retransmission copy is queued and no queued
  // dynamic message can become slack-eligible anywhere in the chunk,
  // the per-slot decision collapses — only occupied template cells can
  // stage a request (the primary), and every idle-wire decision's sole
  // side effect is one idle_slot_counter_ bump, which batches exactly.
  // Eligibility grows with slot_start, so checking the cached best at
  // the chunk's LAST slot bounds the whole chunk.
  bool dyn_quiet = options_.disable_slack_stealing || degraded_mode_;
  if (!dyn_quiet) {
    const sim::Time last_start =
        cycle_duration_ * cycle.value() +
        cfg_.static_slot_duration() * (slot_end - 1);
    dyn_quiet = !peek_dynamic_cached(static_capacity_bits_,
                                     last_start)
                     .has_value();
  }
  if (retx_jobs_.empty() && dyn_quiet) {
    const bool a_up = channel_available(flexray::ChannelId::kA);
    const bool b_up = channel_available(flexray::ChannelId::kB);
    std::int64_t idle_bumps = 0;
    for (std::int64_t s = slot_begin; s <= slot_end; ++s) {
      const units::SlotId slot{s};
      const net::Message* m = tpl_.message_at(slot, cycle);
      if (m != nullptr && node_alive(m->node)) {
        // Primary on the home channel A, failing over to B when A is
        // dark; the mirror wire of a live occupied slot is idle slack.
        const flexray::ChannelId primary_ch = a_up ? flexray::ChannelId::kA
                                                   : flexray::ChannelId::kB;
        if (a_up || b_up) {
          const sim::Time slot_start =
              cycle_duration_ * cycle.value() +
              cfg_.static_slot_duration() * (s - 1);
          auto& buffers =
              nodes_.at(static_cast<std::size_t>(m->node)).static_buffers();
          const auto pending = buffers.read(slot);
          if (pending.has_value() && pending->release <= slot_start) {
            buffers.clear(slot);
            flexray::TxRequest req;
            req.instance = pending->instance;
            req.frame_id = units::to_frame_id(slot);
            req.sender = units::NodeId{m->node};
            req.payload_bits = pending->payload_bits;
            req.failover = primary_ch == flexray::ChannelId::kB;
            sink.stage(slot, primary_ch, req);
          }
        }
        if (a_up && b_up) ++idle_bumps;  // the B mirror
      } else {
        // Unoccupied (or dead-producer) cell: idle wire on every
        // available channel.
        if (a_up) ++idle_bumps;
        if (b_up) ++idle_bumps;
      }
    }
    idle_slot_counter_ += idle_bumps;
    return;
  }

  for (std::int64_t s = slot_begin; s <= slot_end; ++s) {
    for (const flexray::ChannelId channel :
         {flexray::ChannelId::kA, flexray::ChannelId::kB}) {
      if (auto req = decide_static(channel, cycle, units::SlotId{s},
                                   /*use_slack_cache=*/true)) {
        sink.stage(units::SlotId{s}, channel, *req);
      }
    }
  }
}

std::optional<flexray::TxRequest> CoEfficientScheduler::decide_static(
    flexray::ChannelId channel, units::CycleIndex cycle, units::SlotId slot,
    bool use_slack_cache) {
  const sim::Time slot_start = cycle_duration_ * cycle.value() +
                               cfg_.static_slot_duration() * (slot.value() - 1);
  const sim::Time slot_end = slot_start + cfg_.static_slot_duration();

  if (const net::Message* m = tpl_.message_at(slot, cycle); m != nullptr) {
    if (node_alive(m->node)) {
      // Primary transmission from the owning node's CHI buffer. Its
      // home is channel A; when A is dark the primary fails over to the
      // same slot on channel B — the mirror wire slack stealing would
      // otherwise use.
      const bool home_up = channel_available(flexray::ChannelId::kA);
      const bool primary_here =
          (channel == flexray::ChannelId::kA && home_up) ||
          (channel == flexray::ChannelId::kB && !home_up &&
           channel_available(flexray::ChannelId::kB));
      if (primary_here) {
        auto& buffers =
            nodes_.at(static_cast<std::size_t>(m->node)).static_buffers();
        const auto pending = buffers.read(slot);
        if (!pending.has_value() || pending->release > slot_start) {
          return std::nullopt;
        }
        buffers.clear(slot);
        flexray::TxRequest req;
        req.instance = pending->instance;
        req.frame_id = units::to_frame_id(slot);
        req.sender = units::NodeId{m->node};
        req.payload_bits = pending->payload_bits;
        req.failover = channel == flexray::ChannelId::kB;
        return req;
      }
      if (channel == flexray::ChannelId::kA) {
        return std::nullopt;  // dark home wire: the occurrence is mute
      }
      // Channel B mirror of a live occupied slot: idle wire, fall
      // through to slack stealing.
    }
    // Dead producer: its reserved occurrences are free capacity on both
    // channels (membership re-planning turned them into stealable
    // slack).
  }

  if (!channel_available(channel)) {
    // Anything clocked into a dark wire is lost; hold hard copies and
    // soft overflow for live slack instead of burning them.
    return std::nullopt;
  }

  // Idle wire (channel B mirror of an occupied slot, or a fully idle
  // slot): selective slack stealing, earliest deadline first across the
  // hard retransmission copies and the soft dynamic overflow; a hard
  // copy wins a tie.
  const std::int64_t capacity = static_capacity_bits_;
  const auto retx_it = find_retx(capacity, slot_start, slot_end, slot, channel);
  // Degraded mode sheds soft traffic from the static segment entirely:
  // stolen slack is reserved for hard retransmission copies.
  const auto dyn =
      options_.disable_slack_stealing || degraded_mode_
          ? std::optional<flexray::PendingMessage>{}
          : (use_slack_cache ? peek_dynamic_cached(capacity, slot_start)
                             : peek_dynamic_for_slack(capacity, slot_start));
  ++idle_slot_counter_;
  // Hard copies normally win the stolen slot, with two exceptions that
  // keep soft response times low (§III-B: soft aperiodics are serviced
  // in slack at the highest priority):
  //  * laxity deference — a hard copy with at least a full cycle of
  //    laxity can use a later slot just as well;
  //  * a deferrable-server share — every kSoftShare-th idle slot is
  //    reserved for waiting soft traffic so sustained retransmission
  //    pressure cannot starve it.
  const bool retx_can_wait =
      retx_it != retx_jobs_.end() &&
      retx_it->deadline >= slot_end + cycle_duration_;
  const bool soft_reserved = idle_slot_counter_ % kSoftShare == 0;
  const bool retx_wins =
      retx_it != retx_jobs_.end() &&
      !(dyn.has_value() && (retx_can_wait || soft_reserved));
  if (retx_wins) {
    const RetxJob job = *retx_it;
    retx_jobs_.erase(retx_it);
    ++stats_.slack_slots_stolen;
    if (stealer_ != nullptr && stealer_->hard_backlog() > sim::Time::zero()) {
      const sim::Time p = cfg_.transmission_time(job.bits);
      stealer_->on_hard_executed(std::min(p, stealer_->hard_backlog()));
    }
    flexray::TxRequest req;
    req.instance = job.instance;
    req.frame_id = units::to_frame_id(slot);
    req.sender = units::NodeId{job.node};
    req.payload_bits = job.bits;
    req.retransmission = true;
    return req;
  }
  if (dyn.has_value()) {
    const net::Message* m = dynamic_message_for_frame(dyn->frame_id.value());
    nodes_.at(static_cast<std::size_t>(m->node))
        .dynamic_queue()
        .pop(dyn->instance);
    ++stats_.slack_slots_stolen;
    ++stats_.dynamic_in_static_slots;
    flexray::TxRequest req;
    req.instance = dyn->instance;
    req.frame_id = units::to_frame_id(slot);
    req.sender = units::NodeId{m->node};
    req.payload_bits = dyn->payload_bits;
    return req;
  }
  return std::nullopt;
}

std::optional<flexray::TxRequest> CoEfficientScheduler::dynamic_slot(
    flexray::ChannelId channel, units::CycleIndex cycle,
    units::SlotId slot_counter, units::MinislotId minislot,
    std::int64_t minislots_remaining) {
  if (options_.single_channel_dynamics &&
      channel == flexray::ChannelId::kB) {
    return std::nullopt;  // ablation: channel B carries no dynamic frames
  }
  if (!channel_available(channel)) {
    return std::nullopt;  // dark wire: keep the queue for live capacity
  }
  const net::Message* m =
      dynamic_message_for_frame(static_cast<int>(slot_counter.value()));
  if (m == nullptr) return std::nullopt;
  auto& queue = nodes_.at(static_cast<std::size_t>(m->node)).dynamic_queue();
  const auto pending = queue.peek(units::to_frame_id(slot_counter));
  if (!pending.has_value()) return std::nullopt;
  const sim::Time at = cycle_duration_ * cycle.value() +
                       cfg_.static_segment_duration() +
                       cfg_.minislot_duration() * minislot.value();
  if (pending->release > at) return std::nullopt;
  // FTDMA feasibility: fits the remaining minislots and starts in time.
  if (cfg_.minislots_for(pending->payload_bits) > minislots_remaining) {
    return std::nullopt;
  }
  if (minislot + 1 > cfg_.latest_tx_minislot()) return std::nullopt;
  queue.pop(pending->instance);
  flexray::TxRequest req;
  req.instance = pending->instance;
  req.frame_id = units::to_frame_id(slot_counter);
  req.sender = units::NodeId{m->node};
  req.payload_bits = pending->payload_bits;
  return req;
}

std::int64_t CoEfficientScheduler::dynamic_next_frame(
    flexray::ChannelId channel, std::int64_t min_frame) const {
  // Mirror of dynamic_slot's early-outs: a channel that answers nullopt
  // unconditionally is idle for the rest of the segment.
  if (options_.single_channel_dynamics &&
      channel == flexray::ChannelId::kB) {
    return flexray::kNoDynamicFrame;
  }
  if (!channel_available(channel)) return flexray::kNoDynamicFrame;
  return queued_dynamic_next_frame(min_frame);
}

void CoEfficientScheduler::on_tx_complete(const flexray::TxOutcome& outcome) {
  account_outcome(outcome);
  // Energy: the driver paid for every bit it clocked out — corrupted
  // and dark-channel copies included. Outcome-side accumulator, read
  // only at the cycle boundary (compiled-walk contract).
  cycle_tx_bits_ += outcome.request.payload_bits;
  if (outcome.request.retransmission) {
    ++stats_.retransmission_copies_sent;
  }
  if (outcome.lost) {
    // Dark-channel loss: no receiver saw the frame, so neither the BER
    // monitor (no verdict exists) nor the silent-node detector (no
    // observable activity) may learn from it.
    return;
  }
  if (monitor_ != nullptr) {
    monitor_->record_tx(outcome.channel, outcome.request.payload_bits,
                        outcome.corrupted);
  }
  if (detector_ != nullptr) {
    detector_->note_activity(outcome.request.sender);
  }
}

void CoEfficientScheduler::on_cycle_end(units::CycleIndex cycle, sim::Time at) {
  SchedulerBase::on_cycle_end(cycle, at);
  if (energy_ != nullptr) {
    const std::int64_t idle_slots = idle_slot_counter_ - last_idle_counter_;
    // Transceivers may gate off through idle slack only when no queued
    // retransmission copy could claim it next cycle (decide-side state,
    // identical across engines).
    const bool may_sleep = retx_jobs_.empty();
    const int dvfs_level =
        mode_mgr_ != nullptr ? static_cast<int>(mode_mgr_->mode()) : 0;
    energy_->on_cycle(cycle_duration_, cycle_tx_bits_, idle_slots,
                      cfg_.static_slot_duration(), may_sleep, dvfs_level);
    stats_.energy_total_uj = energy_->total_uj();
    stats_.energy_sleep_saved_uj = energy_->sleep_saved_uj();
    stats_.energy_cycles = energy_->cycles();
    stats_.slots_slept = energy_->slots_slept();
  }
  last_idle_counter_ = idle_slot_counter_;
  cycle_tx_bits_ = 0;
  if (mode_mgr_ != nullptr) {
    stats_.mode_cycles_normal =
        mode_mgr_->cycles_in(sched::CriticalityMode::kNormal);
    stats_.mode_cycles_l1 =
        mode_mgr_->cycles_in(sched::CriticalityMode::kDegradedL1);
    stats_.mode_cycles_l2 =
        mode_mgr_->cycles_in(sched::CriticalityMode::kDegradedL2);
    stats_.final_mode = static_cast<int>(mode_mgr_->mode());
  }
  if (detector_ == nullptr) return;
  for (const units::NodeId node : detector_->on_cycle_end()) {
    ++stats_.silent_node_detections;
    member_dead_[static_cast<std::size_t>(node.value())] = 1;
    replan_membership(cycle, at);
  }
}

void CoEfficientScheduler::replan_membership(units::CycleIndex cycle,
                                             sim::Time at) {
  ++stats_.membership_replans;
  if (options_.rho <= 0.0) return;  // no retransmission plan to rebuild
  const double ber =
      monitor_ != nullptr ? monitor_->planned_ber() : options_.ber;
  rebuild_plan(ber, /*throw_on_infeasible=*/false);
  if (trace_ != nullptr) {
    trace_->emit(at, sim::TraceKind::kPlanSwap, cycle.value(),
                 plan_.total_copies(), plan_.degraded ? 1 : 0);
  }
  // Membership replans reach here from the silent-node detector too
  // (no topology event, so the base's rebuild does not fire).
  rebuild_template(TemplateRebuildWhy::kMembership, cycle, at);
}

void CoEfficientScheduler::on_node_down(units::NodeId node,
                                        units::CycleIndex cycle, sim::Time at) {
  // The crash settled the node's instances as source-lost and erased
  // them; drop the dangling retransmission copies still queued for
  // slack (their owed counts were already cancelled).
  for (auto it = retx_jobs_.begin(); it != retx_jobs_.end();) {
    if (instances_.find(it->instance) == nullptr) {
      ++stats_.retransmission_copies_dropped;
      if (stealer_ != nullptr && stealer_->hard_backlog() > sim::Time::zero()) {
        const sim::Time p = cfg_.transmission_time(it->bits);
        stealer_->on_hard_executed(std::min(p, stealer_->hard_backlog()));
      }
      it = retx_jobs_.erase(it);
    } else {
      ++it;
    }
  }
  if (detector_ == nullptr) {
    // Immediate membership change; with detection enabled the change is
    // instead inferred from wire silence (on_cycle_end).
    member_dead_[static_cast<std::size_t>(node.value())] = 1;
    replan_membership(cycle, at);
  }
}

void CoEfficientScheduler::on_node_up(units::NodeId node,
                                      units::CycleIndex cycle, sim::Time at) {
  char& dead = member_dead_[static_cast<std::size_t>(node.value())];
  if (dead != 0) {
    dead = 0;
    replan_membership(cycle, at);  // reintegration at the cycle boundary
  }
}

}  // namespace coeff::core
