#include "core/experiment.hpp"

#include <chrono>
#include <stdexcept>

#include "core/hosa.hpp"
#include "fault/fault_model.hpp"
#include "fault/reliability.hpp"
#include "flexray/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace coeff::core {

flexray::ClusterConfig paper_cluster_static_suite(std::int64_t static_slots) {
  auto cfg = flexray::ClusterConfig::static_suite(static_slots);
  cfg.bus_bit_rate = 50'000'000;
  cfg.validate();
  return cfg;
}

flexray::ClusterConfig paper_cluster_dynamic_suite(std::int64_t minislots) {
  auto cfg = flexray::ClusterConfig::dynamic_suite(minislots);
  cfg.bus_bit_rate = 50'000'000;
  cfg.validate();
  return cfg;
}

flexray::ClusterConfig paper_cluster_apps(std::int64_t minislots) {
  auto cfg = flexray::ClusterConfig::app_suite(minislots);
  cfg.bus_bit_rate = 50'000'000;
  cfg.validate();
  return cfg;
}

ExperimentResult run_experiment(const ExperimentConfig& config,
                                SchemeKind scheme) {
  config.cluster.validate();
  const double rho = config.rho > 0.0
                         ? config.rho
                         : fault::reliability_goal(config.sil, config.u);

  fault::SolverOptions solver;
  solver.ber = config.ber;
  solver.rho = rho;
  solver.u = config.u;
  solver.max_copies_per_message = config.max_copies;

  ExperimentResult result;
  result.scheme = scheme;
  result.rho_target = rho;

  std::unique_ptr<SchedulerBase> sched;
  CoEfficientScheduler* coeff_ptr = nullptr;
  if (scheme == SchemeKind::kCoEfficient) {
    CoEfficientOptions opt;
    opt.ber = config.ber;
    opt.rho = rho;
    opt.u = config.u;
    opt.max_copies_per_message = config.max_copies;
    opt.use_fp_admission = config.use_fp_admission;
    opt.throw_on_infeasible = config.throw_on_infeasible;
    opt.enable_monitor = config.enable_monitor;
    opt.monitor = config.monitor;
    opt.use_uniform_plan = config.ablation_uniform_plan;
    opt.disable_slack_stealing = config.ablation_no_slack;
    opt.single_channel_dynamics = config.ablation_single_channel;
    opt.vote_replicas = config.vote_replicas;
    opt.silent_node_detection = config.silent_node_detection;
    opt.silent_cycle_threshold = config.silent_cycle_threshold;
    opt.mode_policy = config.mode_policy;
    opt.power = config.power;
    auto coeff = std::make_unique<CoEfficientScheduler>(
        config.cluster, config.statics, config.dynamics, config.batch_window,
        opt);
    result.reliability_scheduled = rho > 0.0 ? coeff->plan().reliability() : 1.0;
    result.plan_added_load_bits_per_second =
        coeff->plan().added_load_bits_per_second;
    coeff_ptr = coeff.get();
    sched = std::move(coeff);
  } else if (scheme == SchemeKind::kHosa) {
    // HOSA's mirrored pair gives (1 - p^2)^{u/T} per message by design;
    // no tunable redundancy knob exists.
    std::vector<int> copies(config.statics.size(), 1);
    result.reliability_scheduled =
        fault::set_reliability(config.statics, copies, config.ber, config.u);
    sched = std::make_unique<HosaScheduler>(config.cluster, config.statics,
                                            config.dynamics,
                                            config.batch_window);
  } else {
    FspecOptions opt;
    opt.rounds = rho > 0.0 ? fault::solve_uniform_rounds(config.statics,
                                                         solver, 2)
                           : 1;
    auto fspec = std::make_unique<FspecScheduler>(
        config.cluster, config.statics, config.dynamics, config.batch_window,
        opt);
    result.fspec_rounds = opt.rounds;
    // Theoretical reliability of FSPEC's *intent*: `rounds` mirrored
    // pairs per instance. Instances the serial round train drops under
    // load show up as misses, not here.
    std::vector<int> copies(config.statics.size(), 2 * opt.rounds - 1);
    result.reliability_scheduled =
        fault::set_reliability(config.statics, copies, config.ber, config.u);
    sched = std::move(fspec);
  }

  if (config.drain_batch) sched->set_drop_expired_dynamics(false);
  sched->set_trace(config.trace);

  sim::Engine engine;
  fault::FaultModelConfig fm = config.fault_model;
  fm.ber = config.ber;  // one knob for the planner and the iid/common wire
  const auto fault_model = fault::make_fault_model(fm, config.seed);
  if (config.ber_step >= 0.0 && config.ber_step_at > sim::Time::zero()) {
    fault_model->schedule_ber_step(config.ber_step_at, config.ber_step);
  }
  if (config.ber_step2 >= 0.0 && config.ber_step2_at > sim::Time::zero()) {
    fault_model->schedule_ber_step(config.ber_step2_at, config.ber_step2);
  }
  flexray::Cluster cluster(engine, config.cluster, *sched,
                           fault_model->as_corruption_fn(), config.trace);
  cluster.set_engine_mode(config.engine);
  // Batched verdicts draw from the same model in wire order, so the
  // verdict stream matches per-frame draws bit for bit.
  cluster.set_batch_corruption(fault_model->as_batch_fn());

  // Structural fault domain: the injector must outlive the cluster run.
  std::unique_ptr<fault::NodeFaultModel> structural;
  if (!config.structural.empty()) {
    config.structural.validate();
    structural = std::make_unique<fault::NodeFaultModel>(config.structural,
                                                         config.seed);
    cluster.set_fault_provider(structural.get());
  }

  // Pre-compute dynamic arrivals over the batch window and inject them
  // as engine events so they surface mid-cycle like real interrupts.
  sim::Rng arrival_rng(config.seed ^ 0x9E3779B97F4A7C15ULL);
  SchedulerBase* sched_ptr = sched.get();
  for (const auto& m : config.dynamics.messages()) {
    for (const sim::Time at :
         net::arrivals(m, config.batch_window, config.arrivals, arrival_rng)) {
      engine.schedule_at(at, [sched_ptr, id = m.id, at] {
        sched_ptr->add_dynamic_arrival(id, at);
      });
    }
  }

  // Run the batch window, then drain whatever the scheme still owes.
  const auto walk_begin = std::chrono::steady_clock::now();
  cluster.run_until(config.batch_window);
  const std::int64_t window_cycles = cluster.cycles_run();
  const std::int64_t cap = window_cycles * config.max_drain_factor + 64;
  while (sched->work_remaining() && cluster.cycles_run() < cap) {
    cluster.run_cycles(1);
  }
  result.walk_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    walk_begin)
          .count();
  result.drained = !sched->work_remaining();
  sched->finalize(engine.now());

  RunStats& stats = sched->stats();
  stats.running_time = sched->last_activity();
  const auto& cfg = config.cluster;
  const std::int64_t cycles = cluster.cycles_run();
  stats.static_wire_capacity =
      cfg.static_slot_duration() * cfg.g_number_of_static_slots * cycles *
      flexray::kNumChannels;
  stats.dynamic_wire_capacity = cfg.minislot_duration() *
                                cfg.g_number_of_minislots * cycles *
                                flexray::kNumChannels;
  for (auto id : {flexray::ChannelId::kA, flexray::ChannelId::kB}) {
    const auto& ch = cluster.channel(id).stats();
    stats.static_wire_busy += ch.busy_static;
    stats.dynamic_wire_busy += ch.busy_dynamic;
  }
  result.cycles_run = cycles;
  result.compiled_cycles = cluster.compiled_cycles();
  if (coeff_ptr != nullptr) result.final_plan = coeff_ptr->plan();
  result.run = stats;
  return result;
}

}  // namespace coeff::core
