// Run metrics: everything the paper's evaluation section reports.
//
// Definitions (used consistently by both schedulers):
//  * running time (Fig 1/2): simulated time until every transmission the
//    scheme owes for the batch has been clocked onto the wire.
//  * bandwidth utilization (Fig 3): useful payload bits (each delivered
//    instance counted once) divided by wire capacity elapsed; reported
//    per segment. Redundant/duplicate copies are overhead, not useful.
//  * transmission latency (Fig 4): first successful delivery time minus
//    release, for instances delivered within their deadline.
//  * deadline miss ratio (Fig 5): instances not delivered by their
//    deadline divided by instances released.
#pragma once

#include <cstdint>
#include <string>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace coeff::core {

struct SegmentMetrics {
  std::int64_t released = 0;
  std::int64_t delivered = 0;   ///< first success within deadline
  std::int64_t missed = 0;      ///< no success by the deadline (late or never)
  /// Instances whose producing ECU was down at release, or crashed
  /// before delivery. A dead source is a node failure, not a scheduling
  /// failure, so these are excluded from miss_ratio (IEC 61508 treats
  /// them under the availability budget instead).
  std::int64_t source_lost = 0;
  std::int64_t copies_sent = 0; ///< all wire transmissions (incl. mirrors)
  std::int64_t copies_corrupted = 0;
  std::int64_t useful_payload_bits = 0;  ///< first-success instances, once each
  /// Generation-to-first-success time of every transmitted instance,
  /// late ones included (the paper measures latency separately from
  /// deadline misses).
  sim::LatencyStats latency;
  /// Generation-to-last-copy time ("from the generation time to the
  /// ending time", §IV-B3): when the instance's whole transmission —
  /// primary, retransmission copies, mirrors — left the wire. Instances
  /// whose copies were cancelled (best-effort drops) are excluded.
  sim::LatencyStats completion;

  [[nodiscard]] double miss_ratio() const {
    const std::int64_t settled = delivered + missed;
    return settled == 0 ? 0.0
                        : static_cast<double>(missed) /
                              static_cast<double>(settled);
  }
};

struct RunStats {
  SegmentMetrics statics;
  SegmentMetrics dynamics;

  /// Simulated makespan of the batch (see header comment).
  sim::Time running_time;

  /// Wire-level accounting.
  sim::Time static_wire_capacity;   ///< both channels
  sim::Time dynamic_wire_capacity;  ///< both channels
  sim::Time static_wire_busy;
  sim::Time dynamic_wire_busy;

  double bus_bit_rate = 0.0;

  /// Useful payload bits by the wire segment that delivered them (the
  /// first uncorrupted copy): the basis for per-segment utilization.
  /// Note: dynamic messages rescued through stolen static slots count
  /// toward the static wire here.
  std::int64_t useful_bits_static_wire = 0;
  std::int64_t useful_bits_dynamic_wire = 0;

  /// Scheduler-specific counters.
  std::int64_t retransmission_copies_planned = 0;
  std::int64_t retransmission_copies_sent = 0;
  std::int64_t retransmission_copies_dropped = 0;  ///< no slack before deadline
  std::int64_t slack_slots_stolen = 0;  ///< static idle slots reused
  std::int64_t dynamic_in_static_slots = 0;  ///< dynamic frames via stolen slots
  std::int64_t admission_rejections = 0;     ///< FP acceptance-test rejections

  /// Resilience counters (monitor / degraded-mode layer).
  std::int64_t plan_swaps = 0;          ///< online re-plans after BER drift
  std::int64_t dynamic_frames_shed = 0; ///< soft arrivals shed in degraded mode
  bool plan_degraded = false;           ///< current plan misses rho at its BER
  double plan_target_log_r = 0.0;       ///< log rho the current plan aimed at
  double plan_achieved_log_r = 0.0;     ///< log R the current plan achieves

  /// Mixed-criticality mode-change protocol (DESIGN.md §16).
  std::int64_t mode_changes = 0;        ///< cycle-boundary mode swaps
  std::int64_t mode_sheds = 0;          ///< dynamic releases shed by criticality
  std::int64_t matchups = 0;            ///< shed releases re-admitted
  std::int64_t matchup_abandoned = 0;   ///< shed releases expired un-admitted
  std::int64_t mode_cycles_normal = 0;  ///< cycles dwelt in NORMAL
  std::int64_t mode_cycles_l1 = 0;      ///< cycles dwelt in DEGRADED-L1
  std::int64_t mode_cycles_l2 = 0;      ///< cycles dwelt in DEGRADED-L2
  int final_mode = 0;                   ///< mode when the run ended (0/1/2)

  /// Energy accounting (flexray::EnergyMeter; 0 when power disabled).
  double energy_total_uj = 0.0;
  double energy_sleep_saved_uj = 0.0;
  std::int64_t energy_cycles = 0;       ///< cycles the meter accounted
  std::int64_t slots_slept = 0;         ///< idle slots spent sleeping

  [[nodiscard]] double energy_per_cycle_uj() const {
    return energy_cycles == 0
               ? 0.0
               : energy_total_uj / static_cast<double>(energy_cycles);
  }

  /// Structural fault domain: availability / failover / voting.
  std::int64_t node_crashes = 0;
  std::int64_t node_restarts = 0;       ///< reintegrations at cycle boundaries
  std::int64_t channel_outages = 0;     ///< kChannelDown events observed
  std::int64_t channel_down_cycles = 0; ///< cycles begun with >=1 dark channel
  std::int64_t frames_lost = 0;         ///< clocked into a dark channel
  std::int64_t failovers = 0;           ///< static frames re-homed cross-channel
  /// Release-to-delivery latency of instances rescued by a failover copy.
  sim::LatencyStats failover_latency;
  std::int64_t silent_node_detections = 0;
  std::int64_t membership_replans = 0;  ///< plan swaps from membership changes
  std::int64_t votes_accepted = 0;      ///< replica votes reaching majority
  std::int64_t votes_rejected = 0;      ///< replica votes failing majority

  /// Useful-bits utilization per segment (see header comment).
  [[nodiscard]] double static_bandwidth_utilization() const;
  [[nodiscard]] double dynamic_bandwidth_utilization() const;
  [[nodiscard]] double overall_bandwidth_utilization() const;

  /// Fraction of delivered instances among all settled (both segments).
  [[nodiscard]] double overall_miss_ratio() const;

  [[nodiscard]] std::string summary() const;
};

}  // namespace coeff::core
