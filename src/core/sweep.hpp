// Parallel experiment sweep runner.
//
// The paper's evaluation (§IV) is a grid of independent simulations —
// scheme x BER x segment size x seed. Each cell is share-nothing by
// construction: run_experiment builds its own Engine, scheduler, Rng,
// and FaultInjector per call, so cells can run on as many OS threads as
// the host offers while producing results identical to a serial run.
// The only cross-cell state is the memoized SlackTable cache, which
// hands out immutable tables behind a mutex (see SlackTable::shared).
//
// Output ordering is deterministic: results land in the same order as
// the input cells regardless of which worker finished first, so figure
// binaries print byte-identical tables at any --jobs value.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace coeff::core {

/// One grid point of a sweep.
struct SweepCell {
  ExperimentConfig config;
  SchemeKind scheme = SchemeKind::kCoEfficient;
  /// Stable identifier recorded in the sweep report (e.g.
  /// "fig5/minislots=25/ber=1e-7/CoEfficient").
  std::string label;
};

struct SweepCellResult {
  ExperimentResult result;
  double wall_seconds = 0.0;  ///< host wall-clock spent simulating the cell
  std::string label;
};

struct SweepReport {
  /// Same order as the input cells.
  std::vector<SweepCellResult> cells;
  double total_wall_seconds = 0.0;
  /// Sum of per-cell wall times: what a serial run would have cost.
  double serial_estimate_seconds = 0.0;
  int jobs = 1;

  [[nodiscard]] double speedup_estimate() const {
    return total_wall_seconds <= 0.0
               ? 1.0
               : serial_estimate_seconds / total_wall_seconds;
  }
};

class SweepRunner {
 public:
  /// jobs <= 0 resolves through the COEFF_JOBS environment variable,
  /// then std::thread::hardware_concurrency().
  explicit SweepRunner(int jobs = 0);

  [[nodiscard]] int jobs() const { return jobs_; }

  /// Run every cell and return per-cell results in input order.
  /// jobs() == 1 runs inline on the calling thread (the serial
  /// reference); otherwise cells are distributed over a thread pool.
  /// The first cell exception (in input order) is rethrown after all
  /// workers finish.
  [[nodiscard]] SweepReport run(const std::vector<SweepCell>& cells) const;

  /// Worker-count resolution: explicit request > COEFF_JOBS > hardware.
  [[nodiscard]] static int resolve_jobs(int requested);

 private:
  int jobs_;
};

/// Render a report as a JSON document (suite name, jobs, per-cell and
/// total wall clock, estimated speedup vs serial, headline metrics).
[[nodiscard]] std::string sweep_report_json(const SweepReport& report,
                                            const std::string& suite);

/// Write sweep_report_json to `path` (default used by the bench
/// binaries: BENCH_sweep.json in the working directory).
void write_sweep_json(const SweepReport& report, const std::string& suite,
                      const std::string& path);

}  // namespace coeff::core
