// HOSA-style baseline ([7]: holistic dual-channel scheduling with
// best-effort redundancy).
//
// Sits between FSPEC and CoEfficient: like CoEfficient it uses the
// optimized (cycle-multiplexed) static schedule table, so no exclusive
// slots are wasted; like FSPEC it relies on plain dual-channel
// mirroring for fault tolerance — every frame, static and dynamic, is
// duplicated on channel B, "consum[ing] substantial bandwidth to
// support fault tolerance" (§V-B), and idle slacks stay idle.
#pragma once

#include <optional>
#include <unordered_map>

#include "core/scheduler_base.hpp"

namespace coeff::core {

class HosaScheduler : public SchedulerBase {
 public:
  HosaScheduler(const flexray::ClusterConfig& cfg, net::MessageSet statics,
                net::MessageSet dynamics, sim::Time batch_window);

  // --- TransmissionPolicy ----------------------------------------------
  std::optional<flexray::TxRequest> static_slot(flexray::ChannelId channel,
                                                units::CycleIndex cycle,
                                                units::SlotId slot) override;
  /// Batched decision path for the compiled walk: one template-row scan
  /// staging the A/B mirror pair per ready occupant. Stages exactly what
  /// the default per-slot loop would (see the equivalence note in the
  /// implementation).
  void decide_static_chunk(units::CycleIndex cycle, std::int64_t slot_begin,
                           std::int64_t slot_end,
                           StaticChunkSink& sink) override;
  std::optional<flexray::TxRequest> dynamic_slot(
      flexray::ChannelId channel, units::CycleIndex cycle,
      units::SlotId slot_counter, units::MinislotId minislot,
      std::int64_t minislots_remaining) override;
  [[nodiscard]] std::int64_t dynamic_next_frame(
      flexray::ChannelId channel, std::int64_t min_frame) const override;
  void on_tx_complete(const flexray::TxOutcome& outcome) override;

 protected:
  void on_cycle_start_hook(units::CycleIndex cycle, sim::Time at) override;
  void on_static_release(Instance& inst, const net::Message& m) override;
  void on_dynamic_release(Instance& inst, const net::Message& m,
                          const flexray::PendingMessage& pending) override;
  /// Drop mirror-staging entries whose instances the crash erased.
  void on_node_down(units::NodeId node, units::CycleIndex cycle,
                    sim::Time at) override;

 private:
  /// Channel-B mirror staging for the dynamic segment.
  std::unordered_map<units::SlotId, flexray::TxRequest> dynamic_mirror_;
};

}  // namespace coeff::core
