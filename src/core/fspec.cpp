#include "core/fspec.hpp"

#include <stdexcept>

namespace coeff::core {

sched::StaticScheduleTable FspecScheduler::build_exclusive_table(
    const flexray::ClusterConfig& cfg, const net::MessageSet& statics) {
  sched::TableBuildOptions options;
  options.exclusive_slots = true;
  return sched::StaticScheduleTable::build(statics, cfg, options);
}

FspecScheduler::FspecScheduler(const flexray::ClusterConfig& cfg,
                               net::MessageSet statics,
                               net::MessageSet dynamics,
                               sim::Time batch_window,
                               const FspecOptions& options)
    // `statics` is deliberately copied (not moved) into the base: the
    // exclusive table is built from the same still-valid argument, and
    // argument evaluation order is unspecified.
    : SchedulerBase(cfg, statics, std::move(dynamics), batch_window,
                    build_exclusive_table(cfg, statics)),
      options_(options) {
  if (options_.rounds < 1) {
    throw std::invalid_argument("FspecScheduler: rounds must be >= 1");
  }
}

void FspecScheduler::on_static_release(Instance& inst, const net::Message& m) {
  if (table_.assignment_of(m.id) == nullptr) {
    return;  // no exclusive slot left: counted as a miss at the deadline
  }
  add_copies(inst, 2 * options_.rounds);
  stats_.retransmission_copies_planned += 2 * (options_.rounds - 1);
  RoundState& st = round_state_[m.id];
  if (st.current == 0) {
    st.current = inst.key;
    st.rounds_done = 0;
    return;
  }
  // The single staged buffer holds the latest value; a staged instance
  // that never got on the wire is overwritten and forfeits its copies.
  if (st.staged != 0) {
    if (Instance* prev = instances_.find(st.staged)) {
      cancel_copies(*prev, prev->copies_required - prev->copies_sent);
    }
  }
  st.staged = inst.key;
}

void FspecScheduler::on_dynamic_release(Instance& inst,
                                        const net::Message& m,
                                        const flexray::PendingMessage& pending) {
  add_copies(inst, 2);  // channel A frame + its channel B mirror
  nodes_.at(static_cast<std::size_t>(m.node)).dynamic_queue().push(pending);
}

void FspecScheduler::on_cycle_start_hook(units::CycleIndex /*cycle*/,
                                         sim::Time /*at*/) {
  // The mirror staging map must drain within its cycle; anything left
  // means channel B never carried the copy (should not happen — both
  // channels see identical arbitration). Forfeit such copies.
  for (const auto& [_, req] : dynamic_mirror_) {
    if (Instance* inst = instances_.find(req.instance)) {
      cancel_copies(*inst, 1);
    }
  }
  dynamic_mirror_.clear();
}

std::optional<flexray::TxRequest> FspecScheduler::static_slot(
    flexray::ChannelId channel, units::CycleIndex cycle, units::SlotId slot) {
  const int occupant = tpl_.message_id_at(slot, cycle);
  if (occupant < 0) return std::nullopt;  // unreserved slots idle
  auto it = round_state_.find(occupant);
  if (it == round_state_.end() || it->second.current == 0) {
    return std::nullopt;  // reserved but no fresh data: wasted occurrence
  }
  RoundState& st = it->second;
  if (channel == flexray::ChannelId::kA && st.staged != 0 &&
      st.rounds_done >= 1) {
    // Best effort: once the old instance has had a shot, fresh data
    // preempts its remaining retransmission rounds.
    if (Instance* prev = instances_.find(st.current)) {
      cancel_copies(*prev, prev->copies_required - prev->copies_sent);
    }
    st.current = st.staged;
    st.staged = 0;
    st.rounds_done = 0;
  }
  Instance* inst = instances_.find(st.current);
  if (inst == nullptr) {
    throw std::logic_error("FspecScheduler: round train lost its instance");
  }
  const sim::Time slot_start = cycle_duration_ * cycle.value() +
                               cfg_.static_slot_duration() * (slot.value() - 1);
  if (inst->release > slot_start) return std::nullopt;
  flexray::TxRequest req;
  req.instance = inst->key;
  req.frame_id = units::to_frame_id(slot);
  req.sender = units::NodeId{inst->node};
  req.payload_bits = inst->size_bits;
  req.retransmission = st.rounds_done > 0;
  // Round bookkeeping advances in on_tx_complete on the channel-B copy.
  return req;
}

void FspecScheduler::decide_static_chunk(
    units::CycleIndex cycle, std::int64_t slot_begin, std::int64_t slot_end,
    flexray::TransmissionPolicy::StaticChunkSink& sink) {
  // Equivalence with the default per-slot loop: the only mutation in
  // static_slot is the channel-A preemption rotation, which runs before
  // the release check; the B call then reads the post-rotation train and
  // builds the identical request (round bookkeeping advances in
  // on_tx_complete, which the chunk walk defers past the decide phase,
  // so rounds_done cannot change between the A and B calls). One pass
  // doing rotation + release check once and staging the A/B pair
  // reproduces the two-call sequence exactly.
  const sim::Time slot_duration = cfg_.static_slot_duration();
  sim::Time slot_start =
      cycle_duration_ * cycle.value() + slot_duration * (slot_begin - 1);
  for (std::int64_t s = slot_begin; s <= slot_end;
       ++s, slot_start = slot_start + slot_duration) {
    const units::SlotId slot{s};
    const int occupant = tpl_.message_id_at(slot, cycle);
    if (occupant < 0) continue;  // unreserved slots idle
    auto it = round_state_.find(occupant);
    if (it == round_state_.end() || it->second.current == 0) {
      continue;  // reserved but no fresh data: wasted occurrence
    }
    RoundState& st = it->second;
    if (st.staged != 0 && st.rounds_done >= 1) {
      // Best effort: once the old instance has had a shot, fresh data
      // preempts its remaining retransmission rounds.
      if (Instance* prev = instances_.find(st.current)) {
        cancel_copies(*prev, prev->copies_required - prev->copies_sent);
      }
      st.current = st.staged;
      st.staged = 0;
      st.rounds_done = 0;
    }
    Instance* inst = instances_.find(st.current);
    if (inst == nullptr) {
      throw std::logic_error("FspecScheduler: round train lost its instance");
    }
    if (inst->release > slot_start) continue;
    flexray::TxRequest req;
    req.instance = inst->key;
    req.frame_id = units::to_frame_id(slot);
    req.sender = units::NodeId{inst->node};
    req.payload_bits = inst->size_bits;
    req.retransmission = st.rounds_done > 0;
    sink.stage(slot, flexray::ChannelId::kA, req);
    sink.stage(slot, flexray::ChannelId::kB, req);
  }
}

std::optional<flexray::TxRequest> FspecScheduler::dynamic_slot(
    flexray::ChannelId channel, units::CycleIndex cycle,
    units::SlotId slot_counter, units::MinislotId minislot,
    std::int64_t minislots_remaining) {
  if (channel == flexray::ChannelId::kB) {
    // Replay exactly what channel A carried in this dynamic slot.
    auto it = dynamic_mirror_.find(slot_counter);
    if (it == dynamic_mirror_.end()) return std::nullopt;
    flexray::TxRequest req = it->second;
    dynamic_mirror_.erase(it);
    return req;
  }

  const net::Message* m =
      dynamic_message_for_frame(static_cast<int>(slot_counter.value()));
  if (m == nullptr) return std::nullopt;
  auto& queue = nodes_.at(static_cast<std::size_t>(m->node)).dynamic_queue();
  const auto pending = queue.peek(units::to_frame_id(slot_counter));
  if (!pending.has_value()) return std::nullopt;
  const sim::Time at = cycle_duration_ * cycle.value() +
                       cfg_.static_segment_duration() +
                       cfg_.minislot_duration() * minislot.value();
  if (pending->release > at) return std::nullopt;
  if (cfg_.minislots_for(pending->payload_bits) > minislots_remaining) {
    return std::nullopt;
  }
  if (minislot + 1 > cfg_.latest_tx_minislot()) return std::nullopt;
  queue.pop(pending->instance);
  flexray::TxRequest req;
  req.instance = pending->instance;
  req.frame_id = units::to_frame_id(slot_counter);
  req.sender = units::NodeId{m->node};
  req.payload_bits = pending->payload_bits;
  dynamic_mirror_[slot_counter] = req;  // channel B will replay it
  return req;
}

std::int64_t FspecScheduler::dynamic_next_frame(flexray::ChannelId channel,
                                                std::int64_t min_frame) const {
  if (channel == flexray::ChannelId::kB) {
    // Channel B only replays what A staged: the mirror map's keys are
    // the complete set of slot counters B can transmit in.
    std::int64_t best = flexray::kNoDynamicFrame;
    for (const auto& [slot_counter, _] : dynamic_mirror_) {
      const std::int64_t frame = slot_counter.value();
      if (frame >= min_frame && frame < best) best = frame;
    }
    return best;
  }
  return queued_dynamic_next_frame(min_frame);
}

void FspecScheduler::on_node_down(units::NodeId /*node*/,
                                  units::CycleIndex /*cycle*/,
                                  sim::Time /*at*/) {
  for (auto& [_, st] : round_state_) {
    if (st.staged != 0 && instances_.find(st.staged) == nullptr) {
      st.staged = 0;
    }
    if (st.current != 0 && instances_.find(st.current) == nullptr) {
      st.current = st.staged;
      st.staged = 0;
      st.rounds_done = 0;
    }
  }
  for (auto it = dynamic_mirror_.begin(); it != dynamic_mirror_.end();) {
    if (instances_.find(it->second.instance) == nullptr) {
      it = dynamic_mirror_.erase(it);
    } else {
      ++it;
    }
  }
}

void FspecScheduler::on_tx_complete(const flexray::TxOutcome& outcome) {
  account_outcome(outcome);
  if (outcome.request.retransmission) {
    ++stats_.retransmission_copies_sent;
  }
  if (outcome.segment != flexray::Segment::kStatic ||
      outcome.channel != flexray::ChannelId::kB) {
    return;
  }
  // A mirrored static pair completed: one round done for this message.
  Instance* inst = instances_.find(outcome.request.instance);
  if (inst == nullptr) return;
  RoundState& st = round_state_[inst->message_id];
  if (st.current != inst->key) return;
  if (++st.rounds_done >= options_.rounds) {
    st.current = st.staged;
    st.staged = 0;
    st.rounds_done = 0;
  }
}

}  // namespace coeff::core
