// FSPEC: the standard FlexRay-specification baseline the paper compares
// against (§IV-B), i.e. the state of practice before CoEfficient:
//
// * Segments are scheduled separately; idle static slots stay idle — no
//   slack stealing, no cooperation between segments.
// * Dual-channel operation is the spec's plain mirroring: channel B
//   carries an identical copy of every channel A frame, static and
//   dynamic. Mirroring doubles copies but halves the distinct-frame
//   capacity of the dynamic segment.
// * The static schedule reserves an *exclusive slot per message* in
//   every cycle (the plain-spec behaviour; cycle multiplexing is the
//   optimization CoEfficient's table uses). Occurrences between releases
//   go idle and cannot be reused — the paper's "idle slacks that
//   unfortunately can not [be] used by dynamic segments". When messages
//   outnumber slots, the loosest-deadline messages get no slot at all
//   (data loss under separate scheduling).
// * Best-effort retransmission for all segments: every static instance
//   is (re)transmitted for `rounds` mirrored rounds, serially, in the
//   consecutive occurrences of its exclusive slot. Fresh data preempts
//   the train once the old instance has had at least one round, so under
//   load the extra rounds are silently dropped — best effort "fails to
//   achieve high reliability" exactly as §I-Challenge 2 describes.
// * Dynamic messages are served purely priority-based (FTDMA); no
//   overflow path exists, so low-priority frames starve under load.
#pragma once

#include <optional>
#include <unordered_map>

#include "core/scheduler_base.hpp"

namespace coeff::core {

struct FspecOptions {
  /// Pre-planned transmission rounds per static instance (each round is
  /// mirrored on both channels). 1 = no redundancy. Use
  /// fault::solve_uniform_rounds(set, opt, 2) to match a reliability
  /// goal the way FSPEC would (uniformly, for all segments).
  int rounds = 1;
};

class FspecScheduler : public SchedulerBase {
 public:
  FspecScheduler(const flexray::ClusterConfig& cfg, net::MessageSet statics,
                 net::MessageSet dynamics, sim::Time batch_window,
                 const FspecOptions& options);

  [[nodiscard]] int rounds() const { return options_.rounds; }

  // --- TransmissionPolicy ----------------------------------------------
  std::optional<flexray::TxRequest> static_slot(flexray::ChannelId channel,
                                                units::CycleIndex cycle,
                                                units::SlotId slot) override;
  /// Batched decision path for the compiled walk: one pass over the
  /// chunk staging the A/B round pair per armed exclusive slot. Stages
  /// exactly what the default per-slot loop would (equivalence note in
  /// the implementation).
  void decide_static_chunk(units::CycleIndex cycle, std::int64_t slot_begin,
                           std::int64_t slot_end,
                           StaticChunkSink& sink) override;
  std::optional<flexray::TxRequest> dynamic_slot(
      flexray::ChannelId channel, units::CycleIndex cycle,
      units::SlotId slot_counter, units::MinislotId minislot,
      std::int64_t minislots_remaining) override;
  [[nodiscard]] std::int64_t dynamic_next_frame(
      flexray::ChannelId channel, std::int64_t min_frame) const override;
  void on_tx_complete(const flexray::TxOutcome& outcome) override;

 protected:
  void on_cycle_start_hook(units::CycleIndex cycle, sim::Time at) override;
  void on_static_release(Instance& inst, const net::Message& m) override;
  void on_dynamic_release(Instance& inst, const net::Message& m,
                          const flexray::PendingMessage& pending) override;
  /// A crash erased the node's instances; the round trains and mirror
  /// staging referencing them must be reset or they would dereference
  /// (and resubmit) dead keys. FSPEC has no further recovery: the
  /// exclusive slots simply go idle until the node returns.
  void on_node_down(units::NodeId node, units::CycleIndex cycle,
                    sim::Time at) override;

 private:
  /// Build the exclusive-slot (repetition-1) schedule table.
  static sched::StaticScheduleTable build_exclusive_table(
      const flexray::ClusterConfig& cfg, const net::MessageSet& statics);

  /// Per-message serial round train: the transmitting instance and the
  /// staged next one (0 = empty).
  struct RoundState {
    std::uint64_t current = 0;
    int rounds_done = 0;
    std::uint64_t staged = 0;
  };

  FspecOptions options_;
  std::unordered_map<int, RoundState> round_state_;  ///< by message id
  /// Channel-B mirror staging for the dynamic segment: what channel A
  /// sent this cycle per dynamic slot counter.
  std::unordered_map<units::SlotId, flexray::TxRequest> dynamic_mirror_;
};

}  // namespace coeff::core
