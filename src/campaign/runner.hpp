// Crash-safe sharded campaign runner (DESIGN.md §13).
//
// Cells are assigned to shards by `cell % shards`. Under process
// isolation (the default) each shard is a forked worker that replays
// its checkpoint, skips finished/quarantined cells, and brackets every
// cell with fsync'd intent/done records; the parent is a
// single-threaded supervisor that watches checkpoint progress, kills a
// shard whose in-flight cell exceeds the watchdog budget, retries with
// exponential backoff, and quarantines a cell that exhausts its
// attempt budget (the failed row records the repro seed). Workers die
// with the supervisor (PR_SET_PDEATHSIG), so a `kill -9` of the whole
// campaign leaves only fsync'd state behind — `resume` picks up from
// the manifest + checkpoints alone and the final aggregate is
// byte-identical to an uninterrupted run.
//
// Thread isolation runs the same worker loop on a runtime::ThreadPool
// inside one process: cheaper, still checkpointed and resumable after
// a kill, but with no kill-based watchdog (a hung cell hangs its
// worker thread); poison handling degrades to quarantining cells that
// throw. Use it for fast trusted sweeps, process isolation for
// overnight campaigns.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/manifest.hpp"

namespace coeff::campaign {

struct CampaignOptions {
  std::string dir;
  CampaignManifest manifest;
  /// fsync every record/row append (disable only in tests that don't
  /// care about durability).
  bool durable = true;
  /// Supervisor poll interval.
  std::int64_t poll_ms = 20;
  /// Progress sink (nullptr = silent). Called from the supervisor.
  std::function<void(const std::string&)> log;

  // --- Deterministic failure injection (tests + CI smoke only) ---------
  /// Cells whose worker blocks forever after writing the intent record
  /// (exercises the watchdog). Also read from COEFF_CAMPAIGN_HANG_CELLS
  /// ("3,17") by coeffctl.
  std::vector<std::int64_t> hang_cells;
  /// Cells whose worker _exit(42)s after writing the intent record
  /// (exercises crash retry + poison quarantine). Env:
  /// COEFF_CAMPAIGN_CRASH_CELLS.
  std::vector<std::int64_t> crash_cells;
};

struct CampaignOutcome {
  bool ok = false;
  std::string error;
  std::int64_t total_cells = 0;
  std::int64_t completed = 0;    ///< cells with a done record
  std::int64_t quarantined = 0;  ///< poison cells recorded as failed
  std::int64_t respawns = 0;     ///< worker restarts (watchdog + crash)
  bool degraded = false;         ///< some result detail was shed
};

class CampaignRunner {
 public:
  /// Start a fresh campaign: create `dir` if needed (refusing a dir
  /// that already holds a manifest), write the write-ahead manifest,
  /// run every shard to completion.
  [[nodiscard]] static CampaignOutcome run(const CampaignOptions& options);

  /// Resume a campaign from its directory. Finished cells are skipped
  /// via the checkpoints; a campaign already marked complete returns
  /// immediately. `overrides.manifest` is ignored — identity comes
  /// from disk.
  [[nodiscard]] static CampaignOutcome resume(const std::string& dir,
                                              CampaignOptions overrides = {});

  /// Parse "3,17,99" (the env-hook format); invalid entries dropped.
  [[nodiscard]] static std::vector<std::int64_t> parse_cell_list(
      const char* text);
};

}  // namespace coeff::campaign
