#include "campaign/runner.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <thread>

#include "campaign/checkpoint.hpp"
#include "campaign/report.hpp"
#include "runtime/thread_pool.hpp"

namespace coeff::campaign {

namespace {

using Clock = std::chrono::steady_clock;

void log_line(const CampaignOptions& options, const std::string& line) {
  if (options.log) options.log(line);
}

/// What a shard's checkpoint says has happened so far.
struct ShardProgress {
  std::set<std::int64_t> done;
  std::set<std::int64_t> quarantined;
  std::map<std::int64_t, int> intents;  ///< cell -> attempts recorded
  std::int64_t inflight_cell = -1;      ///< last intent without done/Q
  int inflight_attempt = 0;
  bool degraded = false;
  bool ok = false;
  std::string error;
};

ShardProgress digest_checkpoint(const CheckpointLoad& load) {
  ShardProgress progress;
  progress.ok = load.ok;
  progress.error = load.error;
  if (!load.ok) return progress;
  for (const CheckpointRecord& record : load.records) {
    switch (record.kind) {
      case CheckpointRecordKind::kIntent: {
        int& attempts = progress.intents[record.cell];
        attempts = std::max(attempts, record.attempt);
        progress.inflight_cell = record.cell;
        progress.inflight_attempt = attempts;
        break;
      }
      case CheckpointRecordKind::kDone:
        progress.done.insert(record.cell);
        if (record.cell == progress.inflight_cell) {
          progress.inflight_cell = -1;
        }
        break;
      case CheckpointRecordKind::kQuarantine:
        progress.quarantined.insert(record.cell);
        if (record.cell == progress.inflight_cell) {
          progress.inflight_cell = -1;
        }
        break;
      case CheckpointRecordKind::kDegrade:
        progress.degraded = true;
        break;
    }
  }
  return progress;
}

ShardProgress load_progress(const std::string& dir, int shard) {
  return digest_checkpoint(load_checkpoint(shard_checkpoint_path(dir, shard)));
}

/// Open a result file for append, first truncating the torn
/// (newline-less or half-written) tail a kill may have left — classic
/// WAL recovery: a record either fully committed or never happened.
int open_results_append(const std::string& path, bool create) {
  // Only regular files get tail recovery (the disk-full tests point the
  // results path at a character device, which must not be read back).
  struct stat st{};
  const bool regular =
      ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
  const auto bytes =
      regular ? read_file(path) : std::optional<std::string>();
  if (bytes.has_value() && !bytes->empty() && bytes->back() != '\n') {
    const auto keep = bytes->find_last_of('\n');
    const off_t new_size =
        keep == std::string::npos ? 0 : static_cast<off_t>(keep) + 1;
    (void)::truncate(path.c_str(), new_size);
  }
  const int flags = O_WRONLY | O_APPEND | O_CLOEXEC | (create ? O_CREAT : 0);
  return ::open(path.c_str(), flags, 0644);
}

bool write_all(int fd, std::string_view data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written,
                              data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// Truncate a checkpoint's torn tail (if any) so appended records
/// never splice into a half-written one. Mid-file corruption is NOT
/// repaired here — that is an error the caller must surface.
bool recover_checkpoint_tail(const std::string& path, std::string* error) {
  const auto bytes = read_file(path);
  if (!bytes.has_value()) return true;  // fresh shard, nothing to recover
  const CheckpointLoad load = parse_checkpoint(*bytes);
  if (!load.ok) {
    if (error != nullptr) *error = path + ": " + load.error;
    return false;
  }
  if (load.recovered_torn_tail && load.torn_bytes > 0) {
    const auto new_size =
        static_cast<off_t>(bytes->size() - load.torn_bytes);
    if (::truncate(path.c_str(), new_size) != 0) {
      if (error != nullptr) {
        *error = "truncate " + path + ": " + std::strerror(errno);
      }
      return false;
    }
  }
  return true;
}

CheckpointHeader make_header(const CampaignManifest& manifest, int shard) {
  CheckpointHeader header;
  header.shard = shard;
  header.shards = manifest.shards;
  header.campaign_seed = manifest.seed;
  header.cells = manifest.cells;
  return header;
}

bool cell_in_list(const std::vector<std::int64_t>& list, std::int64_t cell) {
  return std::find(list.begin(), list.end(), cell) != list.end();
}

/// Append a quarantine verdict: Q record in the checkpoint, failed row
/// (with the repro seed) in the result file. Called either by the
/// supervisor while the shard's worker is dead, or by a thread-mode
/// worker itself — never concurrently with the worker's own appends.
bool quarantine_cell(const std::string& dir, const CampaignManifest& manifest,
                     int shard, std::int64_t cell, int attempts,
                     const std::string& reason, bool durable) {
  CheckpointWriter writer;
  std::string error;
  if (!recover_checkpoint_tail(shard_checkpoint_path(dir, shard), &error) ||
      !writer.open(shard_checkpoint_path(dir, shard),
                   make_header(manifest, shard), durable, &error)) {
    return false;
  }
  const ScenarioGenerator generator(manifest.seed, manifest.distribution);
  const ResultRow row =
      make_failed_row(generator.spec(cell), attempts, reason);
  const int fd = open_results_append(shard_results_path(dir, shard), true);
  if (fd < 0) return false;
  const bool row_ok = write_all(fd, render_row(row) + "\n") &&
                      (!durable || ::fsync(fd) == 0);
  (void)::close(fd);
  if (!row_ok) return false;
  CheckpointRecord record;
  record.kind = CheckpointRecordKind::kQuarantine;
  record.cell = cell;
  record.attempt = attempts;
  record.reason = reason;
  return writer.append(record);
}

/// Pre-spawn reconciliation: a cell whose attempt budget was already
/// burned (e.g. the supervisor itself was kill -9'd mid-quarantine)
/// gets its Q record + failed row now, so workers can simply skip it.
bool reconcile_shard(const std::string& dir, const CampaignManifest& manifest,
                     int shard, bool durable) {
  std::string error;
  if (!recover_checkpoint_tail(shard_checkpoint_path(dir, shard), &error)) {
    return false;
  }
  const ShardProgress progress = load_progress(dir, shard);
  if (!progress.ok) {
    // No checkpoint yet (fresh shard) is fine; corruption is not.
    struct stat st{};
    return ::stat(shard_checkpoint_path(dir, shard).c_str(), &st) != 0;
  }
  for (const auto& [cell, attempts] : progress.intents) {
    if (attempts >= manifest.max_attempts &&
        progress.done.count(cell) == 0 &&
        progress.quarantined.count(cell) == 0) {
      if (!quarantine_cell(dir, manifest, shard, cell, attempts,
                           "crash", durable)) {
        return false;
      }
    }
  }
  return true;
}

/// The shard worker loop, shared by forked processes and pool threads.
/// Exit codes: 0 done, 2 unrecoverable checkpoint IO error, 3 cell
/// threw (process mode lets the supervisor retry/quarantine).
int run_shard_worker(const CampaignOptions& options, int shard) {
  const CampaignManifest& manifest = options.manifest;
  const std::string ckpt_path =
      shard_checkpoint_path(options.dir, shard);
  std::string error;
  if (!recover_checkpoint_tail(ckpt_path, &error)) return 2;
  CheckpointWriter writer;
  if (!writer.open(ckpt_path, make_header(manifest, shard), options.durable,
                   &error)) {
    return 2;
  }
  ShardProgress progress = load_progress(options.dir, shard);
  if (!progress.ok) return 2;

  const int results_fd = open_results_append(
      shard_results_path(options.dir, shard), /*create=*/true);
  if (results_fd < 0) return 2;

  const ScenarioGenerator generator(manifest.seed, manifest.distribution);
  bool degraded = progress.degraded;
  int exit_code = 0;
  for (std::int64_t cell = shard; cell < manifest.cells;
       cell += manifest.shards) {
    if (progress.done.count(cell) != 0 ||
        progress.quarantined.count(cell) != 0) {
      continue;
    }
    const auto intent_it = progress.intents.find(cell);
    const int attempt =
        (intent_it == progress.intents.end() ? 0 : intent_it->second) + 1;
    if (attempt > manifest.max_attempts) continue;  // supervisor's call

    CheckpointRecord intent;
    intent.kind = CheckpointRecordKind::kIntent;
    intent.cell = cell;
    intent.attempt = attempt;
    if (!writer.append(intent)) {
      exit_code = 2;
      break;
    }

    // Deterministic failure injection (tests / CI smoke).
    if (cell_in_list(options.crash_cells, cell)) {
      if (manifest.isolation == Isolation::kProcess) _exit(42);
      // Thread mode cannot crash a worker; quarantine directly.
      (void)::close(results_fd);
      writer.close();
      if (!quarantine_cell(options.dir, manifest, shard, cell, attempt,
                           "crash", options.durable)) {
        return 2;
      }
      return run_shard_worker(options, shard);  // reopen and continue
    }
    if (cell_in_list(options.hang_cells, cell)) {
      while (true) std::this_thread::sleep_for(std::chrono::seconds(3600));
    }

    ResultRow row;
    ScenarioSpec spec = generator.spec(cell);
    try {
      const core::ExperimentConfig config = generator.config(spec);
      row = make_row(spec, core::run_experiment(config, spec.scheme));
    } catch (const std::exception&) {
      if (manifest.isolation == Isolation::kProcess) {
        // Let the supervisor account the attempt and retry/quarantine.
        _exit(3);
      }
      (void)::close(results_fd);
      writer.close();
      if (!quarantine_cell(options.dir, manifest, shard, cell, attempt,
                           "exception", options.durable)) {
        return 2;
      }
      return run_shard_worker(options, shard);
    }

    // Result row first (fsync'd), done record second: a cell only ever
    // counts as done once its row is durable.
    bool row_ok = write_all(results_fd, render_row(row) + "\n") &&
                  (!options.durable || ::fsync(results_fd) == 0);
    if (!row_ok) {
      // Disk trouble: shed detail, keep the campaign accounting exact.
      row_ok = write_all(results_fd, render_row(make_shed_row(spec)) + "\n") &&
               (!options.durable || ::fsync(results_fd) == 0);
      if (!degraded) {
        CheckpointRecord shed;
        shed.kind = CheckpointRecordKind::kDegrade;
        shed.reason = row_ok ? "result-detail-shed" : "result-write-failed";
        if (!writer.append(shed)) {
          exit_code = 2;
          break;
        }
        degraded = true;
      }
    }

    CheckpointRecord done;
    done.kind = CheckpointRecordKind::kDone;
    done.cell = cell;
    if (!writer.append(done)) {
      exit_code = 2;
      break;
    }
  }
  (void)::close(results_fd);
  writer.close();
  return exit_code;
}

// --- Process-isolation supervisor --------------------------------------

struct ShardState {
  enum class Phase : std::uint8_t { kBackoff, kRunning, kDone, kBroken };
  Phase phase = Phase::kBackoff;
  pid_t pid = -1;
  Clock::time_point respawn_at = Clock::now();
  std::int64_t watch_cell = -1;
  int watch_attempt = 0;
  Clock::time_point inflight_since;
  std::size_t progress_marker = 0;  ///< done+quarantined count last seen
  Clock::time_point last_progress = Clock::now();
  int consecutive_failures = 0;
};

/// Hard cap on fruitless restarts of one shard: enough for every retry
/// the policy allows plus slack, far below "forever".
constexpr int kMaxConsecutiveFailures = 8;

pid_t spawn_worker(const CampaignOptions& options, int shard, int lock_fd) {
  const pid_t parent = ::getpid();
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Worker: die with the supervisor so a kill -9 of the campaign never
  // leaves orphans appending to the shard files a resume will reopen.
  if (lock_fd >= 0) (void)::close(lock_fd);
#ifdef __linux__
  (void)::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  if (::getppid() != parent) _exit(0);  // supervisor already gone
  _exit(run_shard_worker(options, shard));
}

struct FailureVerdict {
  std::int64_t quarantined_cell = -1;
  bool broken = false;
};

FailureVerdict handle_worker_failure(const CampaignOptions& options,
                                     ShardState& state, int shard,
                                     const std::string& reason) {
  FailureVerdict verdict;
  state.pid = -1;
  ++state.consecutive_failures;
  const ShardProgress progress = load_progress(options.dir, shard);
  if (progress.ok && progress.inflight_cell >= 0 &&
      progress.inflight_attempt >= options.manifest.max_attempts) {
    if (quarantine_cell(options.dir, options.manifest, shard,
                        progress.inflight_cell, progress.inflight_attempt,
                        reason, options.durable)) {
      verdict.quarantined_cell = progress.inflight_cell;
      state.consecutive_failures = 0;  // quarantine is forward progress
    }
  }
  if (state.consecutive_failures >= kMaxConsecutiveFailures) {
    state.phase = ShardState::Phase::kBroken;
    verdict.broken = true;
    return verdict;
  }
  const int shift = std::min(state.consecutive_failures > 0
                                 ? state.consecutive_failures - 1
                                 : 0,
                             6);
  const std::int64_t delay_ms = options.manifest.backoff_base_ms << shift;
  state.phase = ShardState::Phase::kBackoff;
  state.respawn_at = Clock::now() + std::chrono::milliseconds(delay_ms);
  state.watch_cell = -1;
  return verdict;
}

CampaignOutcome supervise_processes(const CampaignOptions& options,
                                    int lock_fd) {
  const CampaignManifest& manifest = options.manifest;
  CampaignOutcome outcome;
  outcome.total_cells = manifest.cells;

  std::vector<ShardState> shards(
      static_cast<std::size_t>(manifest.shards));
  for (int shard = 0; shard < manifest.shards; ++shard) {
    if (!reconcile_shard(options.dir, manifest, shard, options.durable)) {
      outcome.error = "shard " + std::to_string(shard) +
                      ": checkpoint unrecoverable (see campaign lint)";
      return outcome;
    }
  }

  const auto watchdog = std::chrono::milliseconds(manifest.watchdog_ms);
  // Startup/shutdown phases have no in-flight intent to time; give the
  // whole-file stall detector more headroom than the per-cell budget.
  const auto stall_budget = watchdog * 2 + std::chrono::milliseconds(1000);

  auto all_settled = [&shards] {
    return std::all_of(shards.begin(), shards.end(), [](const ShardState& s) {
      return s.phase == ShardState::Phase::kDone ||
             s.phase == ShardState::Phase::kBroken;
    });
  };

  while (!all_settled()) {
    for (int shard = 0; shard < manifest.shards; ++shard) {
      ShardState& state = shards[static_cast<std::size_t>(shard)];
      if (state.phase == ShardState::Phase::kBackoff &&
          Clock::now() >= state.respawn_at) {
        state.pid = spawn_worker(options, shard, lock_fd);
        if (state.pid < 0) {
          outcome.error = "fork failed: " + std::string(std::strerror(errno));
          state.phase = ShardState::Phase::kBroken;
          continue;
        }
        state.phase = ShardState::Phase::kRunning;
        state.last_progress = Clock::now();
        state.watch_cell = -1;
        continue;
      }
      if (state.phase != ShardState::Phase::kRunning) continue;

      int status = 0;
      const pid_t waited = ::waitpid(state.pid, &status, WNOHANG);
      if (waited == state.pid) {
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
          state.phase = ShardState::Phase::kDone;
          continue;
        }
        const std::string reason =
            WIFEXITED(status) && WEXITSTATUS(status) == 3 ? "exception"
                                                          : "crash";
        log_line(options, "campaign: shard " + std::to_string(shard) +
                              " died (" + reason + "), retrying");
        ++outcome.respawns;
        const FailureVerdict verdict =
            handle_worker_failure(options, state, shard, reason);
        if (verdict.quarantined_cell >= 0) {
          log_line(options,
                   "campaign: quarantined poison cell " +
                       std::to_string(verdict.quarantined_cell));
        }
        continue;
      }

      // Watchdog: time the in-flight (cell, attempt) from its intent
      // record; kill and account the shard when the budget is blown.
      const ShardProgress progress = load_progress(options.dir, shard);
      if (!progress.ok) continue;  // mid-append read; retry next poll
      const std::size_t marker =
          progress.done.size() + progress.quarantined.size();
      if (marker > state.progress_marker) {
        state.progress_marker = marker;
        state.last_progress = Clock::now();
        state.consecutive_failures = 0;
      }
      if (progress.inflight_cell != state.watch_cell ||
          progress.inflight_attempt != state.watch_attempt) {
        state.watch_cell = progress.inflight_cell;
        state.watch_attempt = progress.inflight_attempt;
        state.inflight_since = Clock::now();
      }
      const bool cell_timeout =
          state.watch_cell >= 0 &&
          Clock::now() - state.inflight_since > watchdog;
      const bool stalled =
          Clock::now() - state.last_progress > stall_budget;
      if (cell_timeout || stalled) {
        log_line(options, "campaign: shard " + std::to_string(shard) +
                              " watchdog timeout" +
                              (state.watch_cell >= 0
                                   ? " on cell " +
                                         std::to_string(state.watch_cell)
                                   : ""));
        (void)::kill(state.pid, SIGKILL);
        (void)::waitpid(state.pid, &status, 0);
        ++outcome.respawns;
        const FailureVerdict verdict = handle_worker_failure(
            options, state, shard, "watchdog-timeout");
        if (verdict.quarantined_cell >= 0) {
          log_line(options,
                   "campaign: quarantined poison cell " +
                       std::to_string(verdict.quarantined_cell));
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
  }

  for (const ShardState& state : shards) {
    if (state.phase == ShardState::Phase::kBroken && outcome.error.empty()) {
      outcome.error = "a shard kept failing without progress; campaign left "
                      "resumable (try `campaign resume`)";
    }
  }
  return outcome;
}

CampaignOutcome run_threads(const CampaignOptions& options) {
  const CampaignManifest& manifest = options.manifest;
  CampaignOutcome outcome;
  outcome.total_cells = manifest.cells;
  for (int shard = 0; shard < manifest.shards; ++shard) {
    if (!reconcile_shard(options.dir, manifest, shard, options.durable)) {
      outcome.error = "shard " + std::to_string(shard) +
                      ": checkpoint unrecoverable (see campaign lint)";
      return outcome;
    }
  }
  const std::size_t pool_size = std::min<std::size_t>(
      static_cast<std::size_t>(manifest.shards),
      runtime::ThreadPool::hardware_threads());
  runtime::ThreadPool pool(pool_size);
  std::vector<int> codes(static_cast<std::size_t>(manifest.shards), 0);
  for (int shard = 0; shard < manifest.shards; ++shard) {
    pool.submit([&options, &codes, shard] {
      codes[static_cast<std::size_t>(shard)] =
          run_shard_worker(options, shard);
    });
  }
  pool.wait_idle();
  for (int shard = 0; shard < manifest.shards; ++shard) {
    if (codes[static_cast<std::size_t>(shard)] != 0) {
      outcome.error = "shard " + std::to_string(shard) +
                      " failed with checkpoint IO errors";
    }
  }
  return outcome;
}

/// Final accounting over the checkpoints; fills completed/quarantined/
/// degraded and decides ok.
void finalize(const std::string& dir, CampaignManifest manifest,
              CampaignOutcome& outcome) {
  std::set<std::int64_t> done;
  std::set<std::int64_t> quarantined;
  bool degraded = false;
  for (int shard = 0; shard < manifest.shards; ++shard) {
    const ShardProgress progress = load_progress(dir, shard);
    if (!progress.ok) continue;
    done.insert(progress.done.begin(), progress.done.end());
    quarantined.insert(progress.quarantined.begin(),
                       progress.quarantined.end());
    degraded = degraded || progress.degraded;
  }
  outcome.completed = static_cast<std::int64_t>(done.size());
  outcome.quarantined = static_cast<std::int64_t>(quarantined.size());
  outcome.degraded = degraded;
  const bool accounted =
      outcome.completed + outcome.quarantined >= manifest.cells;
  if (!outcome.error.empty()) return;  // stays resumable, manifest "running"
  if (!accounted) {
    outcome.error = "campaign finished with unaccounted cells";
    return;
  }
  manifest.status = degraded ? "degraded" : "complete";
  std::string error;
  if (!write_manifest(dir, manifest, &error)) {
    // Disk too sick to even rewrite the manifest: the old (valid,
    // status=running) manifest stays in place — degraded, not corrupt.
    outcome.degraded = true;
    outcome.ok = true;
    return;
  }
  outcome.ok = true;
}

CampaignOutcome execute(const CampaignOptions& options) {
  CampaignOutcome outcome;
  outcome.total_cells = options.manifest.cells;

  // One runner per campaign directory: the lock dies with the process
  // (and its workers), so a kill -9 never wedges a later resume.
  const int lock_fd = ::open(lock_path(options.dir).c_str(),
                             O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (lock_fd < 0) {
    outcome.error = "cannot open campaign lock: " +
                    std::string(std::strerror(errno));
    return outcome;
  }
  if (::flock(lock_fd, LOCK_EX | LOCK_NB) != 0) {
    (void)::close(lock_fd);
    outcome.error = "another campaign runner holds " +
                    lock_path(options.dir);
    return outcome;
  }

  outcome = options.manifest.isolation == Isolation::kProcess
                ? supervise_processes(options, lock_fd)
                : run_threads(options);
  finalize(options.dir, options.manifest, outcome);
  (void)::flock(lock_fd, LOCK_UN);
  (void)::close(lock_fd);
  return outcome;
}

}  // namespace

CampaignOutcome CampaignRunner::run(const CampaignOptions& options) {
  CampaignOutcome outcome;
  try {
    options.manifest.validate();
  } catch (const std::exception& e) {
    outcome.error = e.what();
    return outcome;
  }
  if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    outcome.error = "mkdir " + options.dir + ": " +
                    std::string(std::strerror(errno));
    return outcome;
  }
  struct stat st{};
  if (::stat(manifest_path(options.dir).c_str(), &st) == 0) {
    outcome.error = options.dir +
                    " already holds a campaign (use `campaign resume`)";
    return outcome;
  }
  // Write-ahead: the manifest (naming every shard file that may ever
  // exist) is durable before any worker starts.
  std::string error;
  CampaignOptions fresh = options;
  fresh.manifest.status = "running";
  if (!write_manifest(fresh.dir, fresh.manifest, &error)) {
    outcome.error = error;
    return outcome;
  }
  return execute(fresh);
}

CampaignOutcome CampaignRunner::resume(const std::string& dir,
                                       CampaignOptions overrides) {
  CampaignOutcome outcome;
  const ManifestLoad load = load_manifest(manifest_path(dir));
  if (!load.ok) {
    outcome.error = load.error;
    return outcome;
  }
  overrides.dir = dir;
  overrides.manifest = load.manifest;
  if (load.manifest.status == "complete" ||
      load.manifest.status == "degraded") {
    overrides.manifest.status = "running";  // recount, then re-finalize
  }
  return execute(overrides);
}

std::vector<std::int64_t> CampaignRunner::parse_cell_list(const char* text) {
  std::vector<std::int64_t> cells;
  if (text == nullptr) return cells;
  const char* p = text;
  while (*p != '\0') {
    char* end = nullptr;
    errno = 0;
    const long long value = std::strtoll(p, &end, 10);
    if (end == p || errno != 0) break;
    if (value >= 0) cells.push_back(value);
    p = end;
    if (*p == ',') ++p;
  }
  return cells;
}

}  // namespace coeff::campaign
