// Campaign directory consistency lint (rule campaign.manifest-consistency).
//
// Cross-checks the three durable artifacts a campaign leaves behind —
// manifest, per-shard checkpoints, per-shard result files — against
// each other. Expected kill -9 residue (torn tails, rows without a
// done record yet) lints as warnings; anything that should be
// impossible under the write ordering (done without a durable row,
// checkpoint identity disagreeing with the manifest, a "complete"
// campaign with unaccounted cells, mid-file corruption) is an error.
#pragma once

#include <string>

#include "analysis/diagnostic.hpp"

namespace coeff::campaign {

/// Lint the campaign directory `dir`. All diagnostics use the
/// `campaign.manifest-consistency` rule; `Location::record` carries the
/// cell number where one is implicated.
[[nodiscard]] analysis::Report lint_campaign(const std::string& dir);

}  // namespace coeff::campaign
