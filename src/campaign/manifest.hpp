// Write-ahead campaign manifest (DESIGN.md §13).
//
// The manifest is the campaign's identity record: seed, cell count,
// shard layout, isolation mode, retry policy and the full scenario
// distribution — everything `resume` needs to regenerate the identical
// population with zero CLI arguments. It is written *before* any shard
// starts (write-ahead: the manifest names every checkpoint/result file
// that may ever exist) and rewritten only through the atomic
// tmp+fsync+rename path, so no crash at any instant can leave a
// half-written manifest. The final line carries a CRC32 of everything
// above it; parsing is fuzz-hardened and never throws.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "campaign/scenario.hpp"

namespace coeff::campaign {

enum class Isolation : std::uint8_t {
  kProcess,  ///< one forked worker per shard; watchdog + retry active
  kThread,   ///< in-process runtime::ThreadPool; no kill-based watchdog
};

[[nodiscard]] const char* to_string(Isolation isolation);

struct CampaignManifest {
  int version = 1;
  std::string name = "campaign";
  std::uint64_t seed = 42;
  std::int64_t cells = 0;
  int shards = 1;
  Isolation isolation = Isolation::kProcess;
  /// Per-cell watchdog budget; a cell exceeding it gets its shard
  /// killed and the cell retried (process isolation only).
  std::int64_t watchdog_ms = 30'000;
  /// Attempts before a cell is quarantined as poison (>= 1).
  int max_attempts = 2;
  /// Base of the exponential retry backoff (doubles per attempt).
  std::int64_t backoff_base_ms = 200;
  ScenarioDistribution distribution;
  /// "running" | "complete" | "degraded" (completed but some result
  /// detail was shed on write failure).
  std::string status = "running";

  /// Throws std::invalid_argument on inconsistent settings.
  void validate() const;
};

[[nodiscard]] std::string render_manifest(const CampaignManifest& manifest);

struct ManifestLoad {
  bool ok = false;
  std::string error;
  CampaignManifest manifest;
};

/// Parse manifest bytes. Never throws, rejects bad CRC/version/fields.
[[nodiscard]] ManifestLoad parse_manifest(std::string_view bytes);
[[nodiscard]] ManifestLoad load_manifest(const std::string& path);

// --- Campaign directory layout ----------------------------------------
[[nodiscard]] std::string manifest_path(const std::string& dir);
[[nodiscard]] std::string lock_path(const std::string& dir);
[[nodiscard]] std::string shard_checkpoint_path(const std::string& dir,
                                                int shard);
[[nodiscard]] std::string shard_results_path(const std::string& dir,
                                             int shard);

/// Durably (re)write dir/manifest.coeffcamp via the atomic path.
bool write_manifest(const std::string& dir, const CampaignManifest& manifest,
                    std::string* error = nullptr);

}  // namespace coeff::campaign
