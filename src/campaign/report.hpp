// Streaming columnar campaign output + deterministic aggregation.
//
// Each completed cell appends exactly one JSON line to its shard's
// `shard-NNNN.jsonl` (append-only, fsync'd before the checkpoint DONE
// record, so a row on disk is the *precondition* of a cell counting as
// done). The aggregator reads every shard file, tolerates the torn
// tail a kill can leave, dedups by cell (re-run cells after a resume
// produce byte-identical rows), and folds rows in cell order — so the
// final report of a killed-and-resumed campaign is byte-identical to
// an uninterrupted one.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/manifest.hpp"
#include "campaign/scenario.hpp"

namespace coeff::campaign {

/// One result line. `status` is "ok" (full detail), "failed"
/// (quarantined poison cell: repro seed + reason, no metrics) or
/// "shed" (cell ran but result detail was dropped on write failure).
struct ResultRow {
  std::int64_t cell = -1;
  std::uint64_t seed = 0;
  std::string status = "ok";
  std::string scheme;
  std::string fault;       ///< channel fault model tag
  std::string structural;  ///< structural fault tag
  int nodes = 0;
  int statics = 0;
  int dynamics = 0;
  double util = 0.0;
  double ber = 0.0;
  int attempts = 1;
  std::string reason;  ///< failed rows: watchdog-timeout | crash | ...
  std::int64_t released = 0;
  std::int64_t delivered = 0;
  std::int64_t missed = 0;
  std::int64_t source_lost = 0;
  std::int64_t copies_sent = 0;
  std::int64_t cycles = 0;
  double miss_ratio = 0.0;
  bool degraded = false;
  std::int64_t plan_swaps = 0;
  std::int64_t failovers = 0;
  std::int64_t frames_lost = 0;
  /// Static-segment-only instance counts (the population the analytic
  /// ProbWcrt envelope speaks about). 0 on rows from older campaigns.
  std::int64_t s_released = 0;
  std::int64_t s_missed = 0;
  /// Dynamic-segment instance counts (the population the analytic
  /// DynWcrt envelope speaks about). 0 on rows from older campaigns,
  /// which the dynamic cross-check therefore skips.
  std::int64_t d_released = 0;
  std::int64_t d_missed = 0;
  /// Mixed-criticality mode protocol counters (DESIGN.md §16). 0 on
  /// rows from older campaigns and on cells with the protocol off.
  std::int64_t m_changes = 0;
  std::int64_t m_shed = 0;
  std::int64_t m_matchup = 0;
  std::int64_t m_dwell_l1 = 0;  ///< cycles dwelt in DEGRADED-L1
  std::int64_t m_dwell_l2 = 0;  ///< cycles dwelt in DEGRADED-L2
  /// Energy axis (flexray::EnergyMeter totals, microjoules). 0 on rows
  /// from older campaigns and on cells with the power model off.
  double e_total_uj = 0.0;
  double e_sleep_uj = 0.0;  ///< energy saved by transceiver sleep
};

[[nodiscard]] ResultRow make_row(const ScenarioSpec& spec,
                                 const core::ExperimentResult& result);
[[nodiscard]] ResultRow make_failed_row(const ScenarioSpec& spec,
                                        int attempts,
                                        const std::string& reason);
[[nodiscard]] ResultRow make_shed_row(const ScenarioSpec& spec);

/// One JSON object, fixed key order, no trailing newline.
[[nodiscard]] std::string render_row(const ResultRow& row);
/// Tolerant flat-JSON parse; nullopt on anything unusable. Never
/// throws (fuzzed).
[[nodiscard]] std::optional<ResultRow> parse_row(std::string_view line);

/// Everything read back from the shard result files.
struct ResultScan {
  std::vector<ResultRow> rows;        ///< deduped by cell, cell-sorted
  std::int64_t duplicate_rows = 0;    ///< same-cell re-records (resume)
  std::int64_t torn_tail_lines = 0;   ///< unterminated final lines
  std::int64_t unparsed_lines = 0;    ///< mid-file garbage
  std::vector<std::string> errors;    ///< unreadable shard files
};

[[nodiscard]] ResultScan scan_results(const std::string& dir,
                                      const CampaignManifest& manifest);

struct GroupStat {
  std::int64_t cells = 0;
  std::int64_t released = 0;
  std::int64_t missed = 0;
  double miss_ratio_sum = 0.0;
};

struct CampaignAggregate {
  std::int64_t expected = 0;
  std::int64_t ok = 0;
  std::int64_t failed = 0;
  std::int64_t shed = 0;
  std::int64_t missing = 0;
  std::int64_t released = 0;
  std::int64_t delivered = 0;
  std::int64_t missed = 0;
  std::int64_t source_lost = 0;
  std::int64_t copies_sent = 0;
  std::int64_t cycles = 0;
  std::int64_t degraded_plans = 0;
  std::int64_t plan_swaps = 0;
  std::int64_t failovers = 0;
  /// Dynamic-segment instance totals (0 on campaigns from older row
  /// schemas, whose rows carry no d_* counters).
  std::int64_t d_released = 0;
  std::int64_t d_missed = 0;
  /// Mode/energy totals (0 on campaigns from older row schemas).
  std::int64_t m_changes = 0;
  std::int64_t m_shed = 0;
  std::int64_t m_matchup = 0;
  std::int64_t m_dwell_l1 = 0;
  std::int64_t m_dwell_l2 = 0;
  double e_total_uj = 0.0;
  double e_sleep_uj = 0.0;
  double miss_ratio_mean = 0.0;  ///< mean of per-cell ratios (ok cells)
  double miss_ratio_max = 0.0;
  std::map<std::string, GroupStat> by_scheme;
  std::map<std::string, GroupStat> by_fault;
  std::map<std::string, GroupStat> by_structural;
  std::vector<ResultRow> quarantined;       ///< failed rows, cell order
  std::vector<std::int64_t> missing_cells;  ///< capped sample
};

[[nodiscard]] CampaignAggregate aggregate_rows(
    const std::vector<ResultRow>& rows, std::int64_t expected_cells);

/// Deterministic renderings: depend only on the deduped row set.
[[nodiscard]] std::string render_report_text(
    const CampaignAggregate& aggregate, const CampaignManifest& manifest);
[[nodiscard]] std::string render_report_json(
    const CampaignAggregate& aggregate, const CampaignManifest& manifest);

}  // namespace coeff::campaign
