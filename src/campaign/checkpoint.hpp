// Crash-safe per-shard checkpoint files (DESIGN.md §13).
//
// A checkpoint is the shard's write-ahead log: one CRC32-guarded text
// record per state transition, appended and fsync'd before the
// transition is acted on. The file is created atomically (tmp + fsync +
// rename + directory fsync) with a versioned header record, then only
// ever appended to — so the sole failure mode a `kill -9` can leave
// behind is a torn *tail* record, which the loader detects by CRC and
// drops cleanly. A bad CRC anywhere before the tail is real corruption
// and is reported as such, never silently skipped.
//
// Record grammar (one line each, `payload#crc32hex\n`):
//   coeffcamp-ckpt v1 shard=S shards=N seed=U cells=C   header
//   I <cell> <attempt>    intent: about to run <cell> (attempt is 1-based)
//   D <cell>              done: result row for <cell> is on disk
//   Q <cell> <attempts> <reason>   quarantined poison cell
//   G <reason>            degraded: result detail shed (e.g. disk full)
//
// The intent/done pair brackets the unit of work: a cell with a
// dangling intent is exactly the cell that was in flight when the
// worker died, and the count of its intents is the attempt budget
// already spent — both facts the watchdog/retry machinery needs, both
// reconstructible from the file alone after any crash.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace coeff::campaign {

/// IEEE CRC-32 (the zlib polynomial) over `data`.
[[nodiscard]] std::uint32_t crc32(std::string_view data);

/// Append `#crc32hex` to a record payload (no trailing newline).
[[nodiscard]] std::string seal_record(std::string_view payload);

/// Verify + strip the `#crc32hex` suffix; nullopt on any mismatch.
[[nodiscard]] std::optional<std::string_view> unseal_record(
    std::string_view line);

/// Durably replace `path` with `contents`: write `path.tmp`, fsync,
/// rename over `path`, fsync the parent directory. Returns false (with
/// `error` set when non-null) instead of throwing — callers on the
/// degradation path must be able to keep going.
bool atomic_write_file(const std::string& path, std::string_view contents,
                       std::string* error = nullptr);

/// Read a whole file; nullopt if it cannot be opened.
[[nodiscard]] std::optional<std::string> read_file(const std::string& path);

enum class CheckpointRecordKind : std::uint8_t {
  kIntent,
  kDone,
  kQuarantine,
  kDegrade,
};

struct CheckpointRecord {
  CheckpointRecordKind kind = CheckpointRecordKind::kIntent;
  std::int64_t cell = -1;   ///< kIntent/kDone/kQuarantine
  int attempt = 0;          ///< kIntent: 1-based; kQuarantine: attempts spent
  std::string reason;       ///< kQuarantine/kDegrade detail (no spaces)
};

struct CheckpointHeader {
  int version = 1;
  int shard = 0;
  int shards = 1;
  std::uint64_t campaign_seed = 0;
  std::int64_t cells = 0;
};

[[nodiscard]] std::string render_record(const CheckpointRecord& record);
[[nodiscard]] std::string render_header(const CheckpointHeader& header);

/// Everything load/parse learned about one checkpoint file. `ok` means
/// the header parsed and no record before the tail was corrupt; a torn
/// tail alone (the expected kill -9 residue) keeps ok == true and sets
/// `recovered_torn_tail`.
struct CheckpointLoad {
  bool ok = false;
  std::string error;
  CheckpointHeader header;
  std::vector<CheckpointRecord> records;
  bool recovered_torn_tail = false;
  std::size_t torn_bytes = 0;        ///< bytes dropped from the tail
  std::int64_t bad_record_line = -1; ///< 1-based line of mid-file corruption
};

/// Parse checkpoint bytes (fuzz-hardened: never throws on any input).
[[nodiscard]] CheckpointLoad parse_checkpoint(std::string_view bytes);

/// Load + parse `path`. A missing file is ok == false with an error.
[[nodiscard]] CheckpointLoad load_checkpoint(const std::string& path);

/// Append-only checkpoint writer. Creation goes through the atomic
/// write path (header-only file appears fully formed or not at all);
/// appends are fsync'd per record when `durable` is set. All write
/// failures are reported through the return value, never thrown: the
/// runner's disk-full degradation depends on surviving them.
class CheckpointWriter {
 public:
  CheckpointWriter() = default;
  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Create the file (atomic, header record) if absent, else open it
  /// for append after verifying the existing header matches.
  bool open(const std::string& path, const CheckpointHeader& header,
            bool durable, std::string* error = nullptr);

  /// Append one sealed record (+fsync when durable). False = IO error.
  bool append(const CheckpointRecord& record);

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
  bool durable_ = true;
};

}  // namespace coeff::campaign
