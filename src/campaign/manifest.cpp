#include "campaign/manifest.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "campaign/checkpoint.hpp"

namespace coeff::campaign {

namespace {

std::string format_double(double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.10g", value);
  return buf;
}

/// Strict double parse (whole field must be consumed, finite result).
bool parse_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || !std::isfinite(value)) return false;
  out = value;
  return true;
}

bool parse_u64_field(const std::string& text, std::uint64_t& out) {
  if (text.empty() || text.size() > 20) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

bool parse_i64_field(const std::string& text, std::int64_t& out) {
  std::uint64_t wide = 0;
  if (!parse_u64_field(text, wide) || wide > INT64_MAX) return false;
  out = static_cast<std::int64_t>(wide);
  return true;
}

bool parse_int_field(const std::string& text, int& out) {
  std::int64_t wide = 0;
  if (!parse_i64_field(text, wide) || wide > INT32_MAX) return false;
  out = static_cast<int>(wide);
  return true;
}

}  // namespace

const char* to_string(Isolation isolation) {
  return isolation == Isolation::kProcess ? "process" : "thread";
}

void CampaignManifest::validate() const {
  auto require = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string("campaign: ") + what);
  };
  require(cells > 0, "campaign needs at least one cell");
  require(shards >= 1 && shards <= 4096, "shards must be in [1, 4096]");
  require(watchdog_ms > 0, "watchdog must be positive");
  require(max_attempts >= 1 && max_attempts <= 16,
          "max attempts must be in [1, 16]");
  require(backoff_base_ms >= 0, "backoff base must be non-negative");
  require(status == "running" || status == "complete" || status == "degraded",
          "unknown campaign status");
  distribution.validate();
}

std::string render_manifest(const CampaignManifest& manifest) {
  std::string body = "coeffcamp-manifest v1\n";
  auto kv = [&body](const char* key, const std::string& value) {
    body += key;
    body += '=';
    body += value;
    body += '\n';
  };
  kv("name", manifest.name);
  kv("seed", std::to_string(manifest.seed));
  kv("cells", std::to_string(manifest.cells));
  kv("shards", std::to_string(manifest.shards));
  kv("isolation", to_string(manifest.isolation));
  kv("watchdog_ms", std::to_string(manifest.watchdog_ms));
  kv("max_attempts", std::to_string(manifest.max_attempts));
  kv("backoff_base_ms", std::to_string(manifest.backoff_base_ms));
  const ScenarioDistribution& d = manifest.distribution;
  kv("min_nodes", std::to_string(d.min_nodes));
  kv("max_nodes", std::to_string(d.max_nodes));
  kv("min_statics", std::to_string(d.min_statics));
  kv("max_statics", std::to_string(d.max_statics));
  kv("max_dynamics", std::to_string(d.max_dynamics));
  kv("min_util", format_double(d.min_util));
  kv("max_util", format_double(d.max_util));
  kv("min_log10_ber", format_double(d.min_log10_ber));
  kv("max_log10_ber", format_double(d.max_log10_ber));
  std::string schemes;
  for (const core::SchemeKind scheme : d.schemes) {
    if (!schemes.empty()) schemes += ',';
    schemes += scheme_tag(scheme);
  }
  kv("schemes", schemes);
  kv("window_ms", std::to_string(d.window_ms));
  // Written only when enabled: manifests of campaigns without the
  // mixed-criticality axis stay byte-identical to older builds.
  if (d.criticality) kv("criticality", "on");
  kv("status", manifest.status);
  char crc_line[24];
  std::snprintf(crc_line, sizeof crc_line, "#crc32=%08" PRIX32, crc32(body));
  return body + crc_line + "\n";
}

ManifestLoad parse_manifest(std::string_view bytes) {
  ManifestLoad load;
  // Split off the CRC trailer first: the last non-empty line must be
  // "#crc32=XXXXXXXX" and must match everything before it.
  const auto trailer_at = bytes.rfind("#crc32=");
  if (trailer_at == std::string_view::npos) {
    load.error = "manifest: missing crc trailer";
    return load;
  }
  const std::string_view body = bytes.substr(0, trailer_at);
  std::string_view trailer = bytes.substr(trailer_at);
  if (!trailer.empty() && trailer.back() == '\n') trailer.remove_suffix(1);
  if (trailer.size() != 15) {
    load.error = "manifest: malformed crc trailer";
    return load;
  }
  std::uint32_t stored = 0;
  for (std::size_t i = 7; i < trailer.size(); ++i) {
    const char c = trailer[i];
    std::uint32_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint32_t>(c - 'A') + 10;
    } else {
      load.error = "manifest: malformed crc trailer";
      return load;
    }
    stored = (stored << 4) | digit;
  }
  if (crc32(body) != stored) {
    load.error = "manifest: crc mismatch (torn or corrupt)";
    return load;
  }

  CampaignManifest& m = load.manifest;
  bool saw_magic = false;
  std::size_t start = 0;
  while (start < body.size()) {
    auto newline = body.find('\n', start);
    if (newline == std::string_view::npos) newline = body.size();
    const std::string line(body.substr(start, newline - start));
    start = newline + 1;
    if (line.empty()) continue;
    if (!saw_magic) {
      if (line != "coeffcamp-manifest v1") {
        load.error = "manifest: unsupported version or bad magic";
        return load;
      }
      saw_magic = true;
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      load.error = "manifest: malformed line '" + line + "'";
      return load;
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    ScenarioDistribution& d = m.distribution;
    bool ok = true;
    if (key == "name") {
      m.name = value;
    } else if (key == "seed") {
      ok = parse_u64_field(value, m.seed);
    } else if (key == "cells") {
      ok = parse_i64_field(value, m.cells);
    } else if (key == "shards") {
      ok = parse_int_field(value, m.shards);
    } else if (key == "isolation") {
      if (value == "process") {
        m.isolation = Isolation::kProcess;
      } else if (value == "thread") {
        m.isolation = Isolation::kThread;
      } else {
        ok = false;
      }
    } else if (key == "watchdog_ms") {
      ok = parse_i64_field(value, m.watchdog_ms);
    } else if (key == "max_attempts") {
      ok = parse_int_field(value, m.max_attempts);
    } else if (key == "backoff_base_ms") {
      ok = parse_i64_field(value, m.backoff_base_ms);
    } else if (key == "min_nodes") {
      ok = parse_int_field(value, d.min_nodes);
    } else if (key == "max_nodes") {
      ok = parse_int_field(value, d.max_nodes);
    } else if (key == "min_statics") {
      ok = parse_int_field(value, d.min_statics);
    } else if (key == "max_statics") {
      ok = parse_int_field(value, d.max_statics);
    } else if (key == "max_dynamics") {
      ok = parse_int_field(value, d.max_dynamics);
    } else if (key == "min_util") {
      ok = parse_double(value, d.min_util);
    } else if (key == "max_util") {
      ok = parse_double(value, d.max_util);
    } else if (key == "min_log10_ber") {
      ok = parse_double(value, d.min_log10_ber);
    } else if (key == "max_log10_ber") {
      ok = parse_double(value, d.max_log10_ber);
    } else if (key == "schemes") {
      d.schemes.clear();
      std::size_t at = 0;
      while (at <= value.size()) {
        auto comma = value.find(',', at);
        if (comma == std::string::npos) comma = value.size();
        const auto scheme = parse_scheme_tag(
            std::string_view(value).substr(at, comma - at));
        if (!scheme.has_value()) {
          ok = false;
          break;
        }
        d.schemes.push_back(*scheme);
        if (comma == value.size()) break;
        at = comma + 1;
      }
      ok = ok && !d.schemes.empty();
    } else if (key == "window_ms") {
      ok = parse_i64_field(value, d.window_ms);
    } else if (key == "criticality") {
      if (value == "on") {
        d.criticality = true;
      } else if (value == "off") {
        d.criticality = false;
      } else {
        ok = false;
      }
    } else if (key == "status") {
      m.status = value;
    } else {
      // Unknown keys are an error: a manifest is not a place for
      // silent drift between writer and reader versions.
      ok = false;
    }
    if (!ok) {
      load.error = "manifest: bad field '" + key + "'";
      return load;
    }
  }
  if (!saw_magic) {
    load.error = "manifest: empty";
    return load;
  }
  try {
    m.validate();
  } catch (const std::exception& e) {
    load.error = std::string("manifest: ") + e.what();
    return load;
  }
  load.ok = true;
  return load;
}

ManifestLoad load_manifest(const std::string& path) {
  const auto bytes = read_file(path);
  if (!bytes.has_value()) {
    ManifestLoad load;
    load.error = "cannot read " + path;
    return load;
  }
  return parse_manifest(*bytes);
}

std::string manifest_path(const std::string& dir) {
  return dir + "/manifest.coeffcamp";
}

std::string lock_path(const std::string& dir) { return dir + "/.lock"; }

std::string shard_checkpoint_path(const std::string& dir, int shard) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "/shard-%04d.ckpt", shard);
  return dir + buf;
}

std::string shard_results_path(const std::string& dir, int shard) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "/shard-%04d.jsonl", shard);
  return dir + buf;
}

bool write_manifest(const std::string& dir, const CampaignManifest& manifest,
                    std::string* error) {
  return atomic_write_file(manifest_path(dir), render_manifest(manifest),
                           error);
}

}  // namespace coeff::campaign
