// Scenario factory: thousands of randomized campaign cells (DESIGN.md §13).
//
// A campaign cell is a fully specified experiment: a synthetic message
// set (UUniFast utilization split across messages, SAE-style dynamic
// mix), a cluster sized 2..64 nodes, a channel fault model drawn from
// the i.i.d. / Gilbert–Elliott / common-mode space, and a structural
// fault drawn from {none, crash, blackout, babble, drift} — the full
// cross of ROADMAP item 1. Every cell is derived *statelessly* from
// (campaign_seed, cell index): shard workers can materialize any cell
// in any order, and a resumed campaign regenerates byte-identical
// scenarios from the manifest alone.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.hpp"
#include "fault/fault_model.hpp"
#include "sim/random.hpp"

namespace coeff::campaign {

/// Structural-fault axis of the scenario cross product.
enum class StructuralKind : std::uint8_t {
  kNone,
  kCrash,
  kBlackout,
  kBabble,
  kDrift,
};

[[nodiscard]] const char* to_string(StructuralKind k);

/// The knobs a campaign draws scenarios from. Serialized verbatim into
/// the manifest so `resume` regenerates the identical population.
struct ScenarioDistribution {
  int min_nodes = 2;
  int max_nodes = 64;
  int min_statics = 8;
  int max_statics = 60;
  int max_dynamics = 24;
  /// Target static-segment utilization for the UUniFast draw.
  double min_util = 0.15;
  double max_util = 0.70;
  /// log10 of the wire BER range (i.i.d. base / common-mode base).
  double min_log10_ber = -8.0;
  double max_log10_ber = -5.0;
  /// Schemes crossed into the population (round-robin by cell draw).
  std::vector<core::SchemeKind> schemes = {core::SchemeKind::kCoEfficient};
  /// Simulated batch window per cell.
  std::int64_t window_ms = 1000;
  /// Mixed-criticality axis (DESIGN.md §16): when set, every cell runs
  /// the mode-change protocol + power model with a per-cell drawn
  /// policy preset and criticality assignment. Drawn from its own salt
  /// stream, so enabling it never perturbs the other cell draws.
  bool criticality = false;

  /// Throws std::invalid_argument naming the first violated constraint.
  void validate() const;
};

/// One fully drawn cell. Everything run_cell needs, plus the repro
/// seed the quarantine report records.
struct ScenarioSpec {
  std::int64_t cell = 0;
  std::uint64_t seed = 0;  ///< derived per-cell seed (the repro handle)
  core::SchemeKind scheme = core::SchemeKind::kCoEfficient;
  int nodes = 2;
  int num_statics = 8;
  int num_dynamics = 0;
  std::int64_t minislots = 50;
  double utilization = 0.0;  ///< UUniFast target actually drawn
  fault::FaultModelConfig fault_model;
  StructuralKind structural = StructuralKind::kNone;
  std::int64_t window_ms = 1000;
};

/// UUniFast (Bini & Buttazzo): split `total` utilization over `n`
/// tasks, uniformly over the simplex. Deterministic per rng state.
[[nodiscard]] std::vector<double> uunifast(int n, double total,
                                           sim::Rng& rng);

class ScenarioGenerator {
 public:
  ScenarioGenerator(std::uint64_t campaign_seed, ScenarioDistribution dist);

  /// The spec of cell `cell` — stateless and order-independent.
  [[nodiscard]] ScenarioSpec spec(std::int64_t cell) const;

  /// Materialize the full experiment config (message sets, cluster,
  /// fault models, structural windows) for a spec.
  [[nodiscard]] core::ExperimentConfig config(const ScenarioSpec& spec) const;

  [[nodiscard]] const ScenarioDistribution& distribution() const {
    return dist_;
  }
  [[nodiscard]] std::uint64_t campaign_seed() const { return campaign_seed_; }

 private:
  std::uint64_t campaign_seed_ = 0;
  ScenarioDistribution dist_;
};

/// Short human/report tag for a spec's fault axes, e.g.
/// "gilbert-elliott+crash".
[[nodiscard]] std::string fault_tag(const ScenarioSpec& spec);

/// CLI/manifest spellings of a scheme ("coefficient", "fspec", "hosa").
[[nodiscard]] const char* scheme_tag(core::SchemeKind scheme);
[[nodiscard]] std::optional<core::SchemeKind> parse_scheme_tag(
    std::string_view name);
[[nodiscard]] std::optional<StructuralKind> parse_structural_tag(
    std::string_view name);

}  // namespace coeff::campaign
