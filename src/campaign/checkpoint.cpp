#include "campaign/checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace coeff::campaign {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
}

std::string errno_string() { return std::strerror(errno); }

/// fsync the directory containing `path` so a just-renamed entry is
/// durable. Best-effort: some filesystems reject directory fsync.
void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    (void)::fsync(fd);
    (void)::close(fd);
  }
}

/// Parse a non-negative integer; false on overflow/garbage/empty.
bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty() || text.size() > 20) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

bool parse_i64(std::string_view text, std::int64_t& out) {
  std::uint64_t value = 0;
  if (!parse_u64(text, value) || value > INT64_MAX) return false;
  out = static_cast<std::int64_t>(value);
  return true;
}

/// Split on single spaces, no empty fields tolerated.
std::vector<std::string_view> split_fields(std::string_view payload) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= payload.size()) {
    const auto space = payload.find(' ', start);
    const auto end = space == std::string_view::npos ? payload.size() : space;
    out.push_back(payload.substr(start, end - start));
    if (space == std::string_view::npos) break;
    start = space + 1;
  }
  return out;
}

/// "key=value" field accessor; false if the prefix does not match.
bool field_value(std::string_view field, std::string_view key,
                 std::string_view& value) {
  if (field.size() <= key.size() + 1 || field.substr(0, key.size()) != key ||
      field[key.size()] != '=') {
    return false;
  }
  value = field.substr(key.size() + 1);
  return true;
}

bool parse_header_payload(std::string_view payload, CheckpointHeader& header) {
  const auto fields = split_fields(payload);
  if (fields.size() != 6 || fields[0] != "coeffcamp-ckpt" || fields[1] != "v1")
    return false;
  std::string_view value;
  std::uint64_t u = 0;
  std::int64_t n = 0;
  if (!field_value(fields[2], "shard", value) || !parse_i64(value, n) ||
      n < 0 || n > INT32_MAX)
    return false;
  header.shard = static_cast<int>(n);
  if (!field_value(fields[3], "shards", value) || !parse_i64(value, n) ||
      n <= 0 || n > INT32_MAX)
    return false;
  header.shards = static_cast<int>(n);
  if (!field_value(fields[4], "seed", value) || !parse_u64(value, u))
    return false;
  header.campaign_seed = u;
  if (!field_value(fields[5], "cells", value) || !parse_i64(value, n) || n < 0)
    return false;
  header.cells = n;
  header.version = 1;
  return header.shard < header.shards;
}

bool parse_record_payload(std::string_view payload, CheckpointRecord& record) {
  const auto fields = split_fields(payload);
  if (fields.empty()) return false;
  if (fields[0] == "I" && fields.size() == 3) {
    record.kind = CheckpointRecordKind::kIntent;
    std::int64_t attempt = 0;
    if (!parse_i64(fields[1], record.cell) ||
        !parse_i64(fields[2], attempt) || attempt <= 0 || attempt > INT32_MAX)
      return false;
    record.attempt = static_cast<int>(attempt);
    return true;
  }
  if (fields[0] == "D" && fields.size() == 2) {
    record.kind = CheckpointRecordKind::kDone;
    return parse_i64(fields[1], record.cell);
  }
  if (fields[0] == "Q" && fields.size() == 4) {
    record.kind = CheckpointRecordKind::kQuarantine;
    std::int64_t attempts = 0;
    if (!parse_i64(fields[1], record.cell) ||
        !parse_i64(fields[2], attempts) || attempts <= 0 ||
        attempts > INT32_MAX)
      return false;
    record.attempt = static_cast<int>(attempts);
    record.reason = std::string(fields[3]);
    return true;
  }
  if (fields[0] == "G" && fields.size() == 2) {
    record.kind = CheckpointRecordKind::kDegrade;
    record.cell = -1;
    record.reason = std::string(fields[1]);
    return true;
  }
  return false;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> kTable = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (const char ch : data) {
    crc = kTable[(crc ^ static_cast<unsigned char>(ch)) & 0xFFU] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

std::string seal_record(std::string_view payload) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "#%08" PRIX32, crc32(payload));
  return std::string(payload) + buf;
}

std::optional<std::string_view> unseal_record(std::string_view line) {
  // "#XXXXXXXX" suffix: 9 chars, uppercase hex.
  if (line.size() < 10) return std::nullopt;
  const std::size_t hash = line.size() - 9;
  if (line[hash] != '#') return std::nullopt;
  std::uint32_t stored = 0;
  for (std::size_t i = hash + 1; i < line.size(); ++i) {
    const char c = line[i];
    std::uint32_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint32_t>(c - 'A') + 10;
    } else {
      return std::nullopt;
    }
    stored = (stored << 4) | digit;
  }
  const std::string_view payload = line.substr(0, hash);
  if (crc32(payload) != stored) return std::nullopt;
  return payload;
}

bool atomic_write_file(const std::string& path, std::string_view contents,
                       std::string* error) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    set_error(error, "open " + tmp + ": " + errno_string());
    return false;
  }
  std::size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      set_error(error, "write " + tmp + ": " + errno_string());
      (void)::close(fd);
      (void)::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    set_error(error, "fsync " + tmp + ": " + errno_string());
    (void)::close(fd);
    (void)::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    set_error(error, "close " + tmp + ": " + errno_string());
    (void)::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "rename " + tmp + ": " + errno_string());
    (void)::unlink(tmp.c_str());
    return false;
  }
  fsync_parent_dir(path);
  return true;
}

std::optional<std::string> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return std::nullopt;
  std::string out;
  char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      (void)::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  (void)::close(fd);
  return out;
}

std::string render_record(const CheckpointRecord& record) {
  char buf[160];
  switch (record.kind) {
    case CheckpointRecordKind::kIntent:
      std::snprintf(buf, sizeof buf, "I %" PRId64 " %d", record.cell,
                    record.attempt);
      break;
    case CheckpointRecordKind::kDone:
      std::snprintf(buf, sizeof buf, "D %" PRId64, record.cell);
      break;
    case CheckpointRecordKind::kQuarantine:
      std::snprintf(buf, sizeof buf, "Q %" PRId64 " %d %s", record.cell,
                    record.attempt,
                    record.reason.empty() ? "crash" : record.reason.c_str());
      break;
    case CheckpointRecordKind::kDegrade:
      std::snprintf(buf, sizeof buf, "G %s",
                    record.reason.empty() ? "io-error" : record.reason.c_str());
      break;
  }
  return seal_record(buf);
}

std::string render_header(const CheckpointHeader& header) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "coeffcamp-ckpt v1 shard=%d shards=%d seed=%" PRIu64
                " cells=%" PRId64,
                header.shard, header.shards, header.campaign_seed,
                header.cells);
  return seal_record(buf);
}

CheckpointLoad parse_checkpoint(std::string_view bytes) {
  CheckpointLoad load;
  bool saw_header = false;
  std::int64_t line_no = 0;
  std::size_t start = 0;
  while (start < bytes.size()) {
    const auto newline = bytes.find('\n', start);
    if (newline == std::string_view::npos) {
      // No terminating newline: the classic torn tail.
      load.recovered_torn_tail = true;
      load.torn_bytes = bytes.size() - start;
      break;
    }
    const std::string_view line = bytes.substr(start, newline - start);
    const bool is_last_line = bytes.find('\n', newline + 1) ==
                                  std::string_view::npos &&
                              newline + 1 == bytes.size();
    ++line_no;
    const auto payload = unseal_record(line);
    bool parsed = false;
    if (payload.has_value()) {
      if (!saw_header) {
        parsed = parse_header_payload(*payload, load.header);
        saw_header = parsed;
        if (!parsed) {
          load.error = "bad checkpoint header";
          return load;
        }
      } else {
        CheckpointRecord record;
        parsed = parse_record_payload(*payload, record);
        if (parsed) load.records.push_back(std::move(record));
      }
    }
    if (!parsed && saw_header) {
      if (is_last_line) {
        // A complete-looking but CRC-broken or unparseable final line:
        // still only the tail, still recoverable.
        load.recovered_torn_tail = true;
        load.torn_bytes = line.size() + 1;
        break;
      }
      load.bad_record_line = line_no;
      load.error = "corrupt checkpoint record before the tail (line " +
                   std::to_string(line_no) + ")";
      return load;
    }
    if (!parsed && !saw_header) {
      load.error = "bad checkpoint header";
      return load;
    }
    start = newline + 1;
  }
  if (!saw_header) {
    load.error = "empty or headerless checkpoint";
    return load;
  }
  load.ok = true;
  return load;
}

CheckpointLoad load_checkpoint(const std::string& path) {
  const auto bytes = read_file(path);
  if (!bytes.has_value()) {
    CheckpointLoad load;
    load.error = "cannot read " + path;
    return load;
  }
  return parse_checkpoint(*bytes);
}

CheckpointWriter::~CheckpointWriter() { close(); }

void CheckpointWriter::close() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

bool CheckpointWriter::open(const std::string& path,
                            const CheckpointHeader& header, bool durable,
                            std::string* error) {
  close();
  durable_ = durable;
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    // Fresh shard: the header-only file appears atomically or not at
    // all, so a crash here can never leave a headerless file behind.
    if (!atomic_write_file(path, render_header(header) + "\n", error)) {
      return false;
    }
  } else {
    const auto existing = load_checkpoint(path);
    if (!existing.ok) {
      set_error(error, path + ": " + existing.error);
      return false;
    }
    if (existing.header.shard != header.shard ||
        existing.header.shards != header.shards ||
        existing.header.campaign_seed != header.campaign_seed ||
        existing.header.cells != header.cells) {
      set_error(error, path + ": header does not match this campaign");
      return false;
    }
  }
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    set_error(error, "open " + path + ": " + errno_string());
    return false;
  }
  return true;
}

bool CheckpointWriter::append(const CheckpointRecord& record) {
  if (fd_ < 0) return false;
  const std::string line = render_record(record) + "\n";
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + written,
                              line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  if (durable_ && ::fsync(fd_) != 0) return false;
  return true;
}

}  // namespace coeff::campaign
