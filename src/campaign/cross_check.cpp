#include "campaign/cross_check.hpp"

#include <algorithm>
#include <cinttypes>

#include "analysis/diagnostic.hpp"
#include "campaign/scenario.hpp"
#include "fault/iec61508.hpp"
#include "fault/reliability.hpp"

namespace coeff::campaign {

std::unique_ptr<ProbSetup> make_prob_setup(
    const core::ExperimentConfig& config, core::SchemeKind scheme,
    const analysis::ProbWcrtOptions& options) {
  auto setup = std::make_unique<ProbSetup>();
  setup->config = config;
  setup->config.trace = nullptr;  // the analytic pass never records

  const double rho = setup->config.rho > 0.0
                         ? setup->config.rho
                         : fault::reliability_goal(setup->config.sil,
                                                   setup->config.u);
  fault::SolverOptions solver;
  solver.ber = setup->config.ber;
  solver.rho = rho;
  solver.u = setup->config.u;
  solver.max_copies_per_message = setup->config.max_copies;

  analysis::ProbWcrtInput& in = setup->input;
  in.cluster = &setup->config.cluster;
  in.statics = &setup->config.statics;
  in.fault_model = setup->config.fault_model;
  in.fault_model.ber = setup->config.ber;  // single-knob rule (experiment.cpp)
  in.rho = rho;
  in.u = setup->config.u;
  in.options = options;

  sched::TableBuildOptions table_options;
  switch (scheme) {
    case core::SchemeKind::kCoEfficient:
      setup->plan = fault::solve_differentiated(setup->config.statics, solver);
      in.plan = &setup->plan;
      in.discipline = analysis::ProbRetxModel::kPlannedSerial;
      break;
    case core::SchemeKind::kFspec:
      setup->rounds =
          fault::solve_uniform_rounds(setup->config.statics, solver, 2);
      in.rounds = setup->rounds;
      in.discipline = analysis::ProbRetxModel::kMirroredRounds;
      table_options.exclusive_slots = true;
      break;
    case core::SchemeKind::kHosa:
      in.discipline = analysis::ProbRetxModel::kMirroredSingle;
      break;
  }
  try {
    setup->table = sched::StaticScheduleTable::build(
        setup->config.statics, setup->config.cluster, table_options);
    in.table = &*setup->table;
  } catch (const std::exception&) {
    // Unschedulable under these options: keep the one-cycle r0 bound.
    // lint_schedule owns reporting that failure; here it only costs the
    // envelope some tightness.
    in.table = nullptr;
  }
  if (!setup->config.dynamics.messages().empty()) {
    setup->has_dynamics = true;
    analysis::DynWcrtInput& dyn = setup->dyn_input;
    dyn.cluster = &setup->config.cluster;
    dyn.dynamics = &setup->config.dynamics;
    dyn.discipline = in.discipline;
    dyn.plan = in.plan;
    dyn.fault_model = in.fault_model;
    dyn.rho = rho;
    dyn.u = setup->config.u;
    dyn.options = options;
  }
  return setup;
}

std::pair<double, double> envelope_miss_ratio(
    const analysis::ProbWcrtResult& result) {
  double weight = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  for (const analysis::MessageProb& mp : result.messages) {
    if (mp.period <= sim::Time::zero()) continue;
    const double w = 1.0 / static_cast<double>(mp.period.ns());
    weight += w;
    lower += w * mp.p_miss_lower;
    upper += w * mp.p_miss_upper;
  }
  if (weight <= 0.0) return {0.0, 0.0};
  return {lower / weight, upper / weight};
}

std::pair<double, double> dyn_envelope_miss_ratio(
    const analysis::DynWcrtResult& result) {
  double weight = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  for (const analysis::DynMessageProb& mp : result.messages) {
    if (mp.period <= sim::Time::zero()) continue;
    const double w = 1.0 / static_cast<double>(mp.period.ns());
    weight += w;
    lower += w * mp.p_miss_lower;
    upper += w * mp.p_miss_upper;
  }
  if (weight <= 0.0) return {0.0, 0.0};
  return {lower / weight, upper / weight};
}

CrossCheckSummary cross_check_prob(const CampaignManifest& manifest,
                                   const std::vector<ResultRow>& rows,
                                   const CrossCheckOptions& options,
                                   analysis::Report& report) {
  CrossCheckSummary summary;
  const ScenarioGenerator generator(manifest.seed, manifest.distribution);
  std::vector<analysis::DivergenceSample> samples;
  std::vector<analysis::DivergenceSample> dyn_samples;
  for (const ResultRow& row : rows) {
    // The analytic model speaks about channel loss on a healthy
    // cluster: structural-fault cells and pre-schema rows (s_released /
    // d_released missing, parsed as 0) are out of scope.
    if (row.status != "ok" || row.structural != "none") continue;
    const bool want_static = row.s_released > 0;
    const bool want_dyn = row.d_released > 0;
    if (want_static) ++summary.eligible;
    if (want_dyn) ++summary.dyn_eligible;
    const bool take_static =
        want_static && samples.size() < options.max_cells;
    const bool take_dyn =
        want_dyn && dyn_samples.size() < options.max_cells;
    if (!take_static && !take_dyn) continue;
    const ScenarioSpec spec = generator.spec(row.cell);
    const auto setup =
        make_prob_setup(generator.config(spec), spec.scheme, options.prob);
    const std::string label = analysis::strformat(
        "cell %" PRId64 " (%s, %s, seed=%" PRIu64 ")", row.cell,
        row.scheme.c_str(), row.fault.c_str(), row.seed);
    if (take_static) {
      const analysis::ProbWcrtResult result =
          analysis::analyze_prob_wcrt(setup->input);
      const auto [lower, upper] = envelope_miss_ratio(result);
      analysis::DivergenceSample sample;
      sample.label = label;
      sample.released = row.s_released;
      sample.missed = row.s_missed;
      sample.p_lower = lower;
      sample.p_upper = upper;
      samples.push_back(std::move(sample));
    }
    if (take_dyn && setup->has_dynamics) {
      const analysis::DynWcrtResult result =
          analysis::analyze_dyn_wcrt(setup->dyn_input);
      const auto [lower, upper] = dyn_envelope_miss_ratio(result);
      analysis::DivergenceSample sample;
      sample.label = label;
      sample.released = row.d_released;
      sample.missed = row.d_missed;
      sample.p_lower = lower;
      sample.p_upper = upper;
      dyn_samples.push_back(std::move(sample));
    }
  }
  summary.checked = samples.size();
  const std::size_t before =
      report.count_rule("analysis.prob-vs-campaign-divergence");
  analysis::check_divergence(samples, report);
  summary.diverged =
      report.count_rule("analysis.prob-vs-campaign-divergence") - before;
  summary.dyn_checked = dyn_samples.size();
  const std::size_t dyn_before =
      report.count_rule("analysis.dyn-vs-campaign-divergence");
  analysis::check_divergence(dyn_samples, report,
                             "analysis.dyn-vs-campaign-divergence");
  summary.dyn_diverged =
      report.count_rule("analysis.dyn-vs-campaign-divergence") - dyn_before;
  return summary;
}

}  // namespace coeff::campaign
