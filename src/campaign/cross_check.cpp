#include "campaign/cross_check.hpp"

#include <algorithm>
#include <cinttypes>

#include "analysis/diagnostic.hpp"
#include "campaign/scenario.hpp"
#include "fault/iec61508.hpp"
#include "fault/reliability.hpp"

namespace coeff::campaign {

std::unique_ptr<ProbSetup> make_prob_setup(
    const core::ExperimentConfig& config, core::SchemeKind scheme,
    const analysis::ProbWcrtOptions& options) {
  auto setup = std::make_unique<ProbSetup>();
  setup->config = config;
  setup->config.trace = nullptr;  // the analytic pass never records

  const double rho = setup->config.rho > 0.0
                         ? setup->config.rho
                         : fault::reliability_goal(setup->config.sil,
                                                   setup->config.u);
  fault::SolverOptions solver;
  solver.ber = setup->config.ber;
  solver.rho = rho;
  solver.u = setup->config.u;
  solver.max_copies_per_message = setup->config.max_copies;

  analysis::ProbWcrtInput& in = setup->input;
  in.cluster = &setup->config.cluster;
  in.statics = &setup->config.statics;
  in.fault_model = setup->config.fault_model;
  in.fault_model.ber = setup->config.ber;  // single-knob rule (experiment.cpp)
  in.rho = rho;
  in.u = setup->config.u;
  in.options = options;

  sched::TableBuildOptions table_options;
  switch (scheme) {
    case core::SchemeKind::kCoEfficient:
      setup->plan = fault::solve_differentiated(setup->config.statics, solver);
      in.plan = &setup->plan;
      in.discipline = analysis::ProbRetxModel::kPlannedSerial;
      break;
    case core::SchemeKind::kFspec:
      setup->rounds =
          fault::solve_uniform_rounds(setup->config.statics, solver, 2);
      in.rounds = setup->rounds;
      in.discipline = analysis::ProbRetxModel::kMirroredRounds;
      table_options.exclusive_slots = true;
      break;
    case core::SchemeKind::kHosa:
      in.discipline = analysis::ProbRetxModel::kMirroredSingle;
      break;
  }
  try {
    setup->table = sched::StaticScheduleTable::build(
        setup->config.statics, setup->config.cluster, table_options);
    in.table = &*setup->table;
  } catch (const std::exception&) {
    // Unschedulable under these options: keep the one-cycle r0 bound.
    // lint_schedule owns reporting that failure; here it only costs the
    // envelope some tightness.
    in.table = nullptr;
  }
  return setup;
}

std::pair<double, double> envelope_miss_ratio(
    const analysis::ProbWcrtResult& result) {
  double weight = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  for (const analysis::MessageProb& mp : result.messages) {
    if (mp.period <= sim::Time::zero()) continue;
    const double w = 1.0 / static_cast<double>(mp.period.ns());
    weight += w;
    lower += w * mp.p_miss_lower;
    upper += w * mp.p_miss_upper;
  }
  if (weight <= 0.0) return {0.0, 0.0};
  return {lower / weight, upper / weight};
}

CrossCheckSummary cross_check_prob(const CampaignManifest& manifest,
                                   const std::vector<ResultRow>& rows,
                                   const CrossCheckOptions& options,
                                   analysis::Report& report) {
  CrossCheckSummary summary;
  const ScenarioGenerator generator(manifest.seed, manifest.distribution);
  std::vector<analysis::DivergenceSample> samples;
  for (const ResultRow& row : rows) {
    // The analytic model speaks about channel loss on a healthy
    // cluster: structural-fault cells and pre-schema rows (s_released
    // missing, parsed as 0) are out of scope.
    if (row.status != "ok" || row.structural != "none" ||
        row.s_released <= 0) {
      continue;
    }
    ++summary.eligible;
    if (samples.size() >= options.max_cells) continue;
    const ScenarioSpec spec = generator.spec(row.cell);
    const auto setup =
        make_prob_setup(generator.config(spec), spec.scheme, options.prob);
    const analysis::ProbWcrtResult result =
        analysis::analyze_prob_wcrt(setup->input);
    const auto [lower, upper] = envelope_miss_ratio(result);
    analysis::DivergenceSample sample;
    sample.label = analysis::strformat(
        "cell %" PRId64 " (%s, %s, seed=%" PRIu64 ")", row.cell,
        row.scheme.c_str(), row.fault.c_str(), row.seed);
    sample.released = row.s_released;
    sample.missed = row.s_missed;
    sample.p_lower = lower;
    sample.p_upper = upper;
    samples.push_back(std::move(sample));
  }
  summary.checked = samples.size();
  const std::size_t before =
      report.count_rule("analysis.prob-vs-campaign-divergence");
  analysis::check_divergence(samples, report);
  summary.diverged =
      report.count_rule("analysis.prob-vs-campaign-divergence") - before;
  return summary;
}

}  // namespace coeff::campaign
