#include "campaign/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/message.hpp"

namespace coeff::campaign {

namespace {

// Per-component salts: each aspect of a cell draws from its own stream,
// so adding draws to one component never perturbs another.
constexpr std::uint64_t kStaticsSalt = 0xC0FFEE0000000001ULL;
constexpr std::uint64_t kDynamicsSalt = 0xC0FFEE0000000002ULL;
constexpr std::uint64_t kStructuralSalt = 0xC0FFEE0000000003ULL;
constexpr std::uint64_t kCriticalitySalt = 0xC0FFEE0000000004ULL;

/// The cell's repro seed: stateless in (campaign_seed, cell) so any
/// shard can materialize any cell in any order.
std::uint64_t derive_cell_seed(std::uint64_t campaign_seed,
                               std::int64_t cell) {
  sim::SplitMix64 mix(campaign_seed ^
                      (0x9E3779B97F4A7C15ULL *
                       (static_cast<std::uint64_t>(cell) + 1)));
  return mix.next();
}

sim::Time draw_window_time(sim::Rng& rng, std::int64_t window_ms,
                           double lo_frac, double hi_frac) {
  const double frac = rng.uniform(lo_frac, hi_frac);
  const auto ms = static_cast<std::int64_t>(
      frac * static_cast<double>(window_ms));
  return sim::millis(std::max<std::int64_t>(1, ms));
}

}  // namespace

const char* to_string(StructuralKind k) {
  switch (k) {
    case StructuralKind::kNone:
      return "none";
    case StructuralKind::kCrash:
      return "crash";
    case StructuralKind::kBlackout:
      return "blackout";
    case StructuralKind::kBabble:
      return "babble";
    case StructuralKind::kDrift:
      return "drift";
  }
  return "?";
}

std::optional<StructuralKind> parse_structural_tag(std::string_view name) {
  if (name == "none") return StructuralKind::kNone;
  if (name == "crash") return StructuralKind::kCrash;
  if (name == "blackout") return StructuralKind::kBlackout;
  if (name == "babble") return StructuralKind::kBabble;
  if (name == "drift") return StructuralKind::kDrift;
  return std::nullopt;
}

const char* scheme_tag(core::SchemeKind scheme) {
  switch (scheme) {
    case core::SchemeKind::kCoEfficient:
      return "coefficient";
    case core::SchemeKind::kFspec:
      return "fspec";
    case core::SchemeKind::kHosa:
      return "hosa";
  }
  return "?";
}

std::optional<core::SchemeKind> parse_scheme_tag(std::string_view name) {
  if (name == "coefficient") return core::SchemeKind::kCoEfficient;
  if (name == "fspec") return core::SchemeKind::kFspec;
  if (name == "hosa") return core::SchemeKind::kHosa;
  return std::nullopt;
}

void ScenarioDistribution::validate() const {
  auto require = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string("campaign: ") + what);
  };
  require(min_nodes >= 1 && min_nodes <= max_nodes && max_nodes <= 1024,
          "node range must satisfy 1 <= min <= max <= 1024");
  require(min_statics >= 1 && min_statics <= max_statics,
          "static-count range must satisfy 1 <= min <= max");
  require(max_statics <= 80, "static count cannot exceed the 80 static slots");
  require(max_dynamics >= 0 && max_dynamics <= 60,
          "dynamic count must be in [0, 60]");
  require(min_util > 0.0 && min_util <= max_util && max_util <= 1.0,
          "utilization range must satisfy 0 < min <= max <= 1");
  require(min_log10_ber <= max_log10_ber && max_log10_ber <= -2.0,
          "log10 BER range must be ordered and <= -2");
  require(!schemes.empty(), "scheme mix must name at least one scheme");
  require(window_ms > 0, "window must be positive");
}

std::vector<double> uunifast(int n, double total, sim::Rng& rng) {
  std::vector<double> utils;
  if (n <= 0) return utils;
  utils.reserve(static_cast<std::size_t>(n));
  double sum = total;
  for (int i = 1; i < n; ++i) {
    const double next =
        sum * std::pow(rng.uniform01(), 1.0 / static_cast<double>(n - i));
    utils.push_back(sum - next);
    sum = next;
  }
  utils.push_back(sum);
  return utils;
}

ScenarioGenerator::ScenarioGenerator(std::uint64_t campaign_seed,
                                     ScenarioDistribution dist)
    : campaign_seed_(campaign_seed), dist_(std::move(dist)) {
  dist_.validate();
}

ScenarioSpec ScenarioGenerator::spec(std::int64_t cell) const {
  ScenarioSpec spec;
  spec.cell = cell;
  spec.seed = derive_cell_seed(campaign_seed_, cell);
  spec.window_ms = dist_.window_ms;
  sim::Rng rng(spec.seed);

  spec.scheme = dist_.schemes[static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(dist_.schemes.size()) - 1))];
  spec.nodes =
      static_cast<int>(rng.uniform_int(dist_.min_nodes, dist_.max_nodes));
  spec.num_statics =
      static_cast<int>(rng.uniform_int(dist_.min_statics, dist_.max_statics));
  spec.num_dynamics =
      static_cast<int>(rng.uniform_int(0, dist_.max_dynamics));
  static constexpr std::int64_t kMinislotChoices[] = {25, 50, 75, 100};
  spec.minislots = kMinislotChoices[rng.uniform_int(0, 3)];
  spec.utilization = rng.uniform(dist_.min_util, dist_.max_util);

  const double ber =
      std::pow(10.0, rng.uniform(dist_.min_log10_ber, dist_.max_log10_ber));
  static constexpr fault::FaultModelKind kFaultKinds[] = {
      fault::FaultModelKind::kIid, fault::FaultModelKind::kGilbertElliott,
      fault::FaultModelKind::kCommonMode};
  spec.fault_model.kind = kFaultKinds[rng.uniform_int(0, 2)];
  spec.fault_model.ber = ber;
  spec.fault_model.gilbert_elliott.p_good_to_bad =
      std::pow(10.0, rng.uniform(-4.0, -2.0));
  spec.fault_model.gilbert_elliott.p_bad_to_good = rng.uniform(0.05, 0.3);
  spec.fault_model.gilbert_elliott.ber_good = ber;
  spec.fault_model.gilbert_elliott.ber_bad = std::min(1e-2, ber * 1e3);
  spec.fault_model.common_fraction = rng.uniform(0.1, 0.5);

  static constexpr StructuralKind kStructKinds[] = {
      StructuralKind::kNone, StructuralKind::kCrash, StructuralKind::kBlackout,
      StructuralKind::kBabble, StructuralKind::kDrift};
  spec.structural = kStructKinds[rng.uniform_int(0, 4)];
  return spec;
}

core::ExperimentConfig ScenarioGenerator::config(
    const ScenarioSpec& spec) const {
  core::ExperimentConfig config;
  config.cluster = core::paper_cluster_dynamic_suite(spec.minislots);
  config.cluster.num_nodes = spec.nodes;
  config.cluster.validate();

  const sim::Time cycle = config.cluster.cycle_duration();  // 5 ms
  const std::int64_t slot_bits = config.cluster.static_slot_capacity_bits();
  const std::int64_t max_bits =
      std::min(slot_bits, config.cluster.max_payload_bits);
  // Utilization target is relative to one channel's static-segment
  // share of the wire.
  const double segment_bps =
      static_cast<double>(config.cluster.bus_bit_rate) *
      config.cluster.static_segment_duration().as_seconds() /
      cycle.as_seconds();

  // --- Static message set (UUniFast split) -----------------------------
  {
    sim::Rng rng(spec.seed ^ kStaticsSalt);
    const std::vector<double> utils =
        uunifast(spec.num_statics, spec.utilization, rng);
    net::MessageSet statics;
    for (int i = 0; i < spec.num_statics; ++i) {
      net::Message m;
      m.id = 1 + i;
      m.name = "camp_s" + std::to_string(m.id);
      m.node = i % spec.nodes;
      m.kind = net::MessageKind::kStatic;
      m.period = cycle * rng.uniform_int(1, 10);  // 5..50 ms
      const std::int64_t period_ms = m.period.ns() / 1'000'000;
      m.deadline = sim::millis(rng.uniform_int(5, period_ms));
      m.offset = sim::micros(rng.uniform_int(0, 999));
      const double want_bits = utils[static_cast<std::size_t>(i)] *
                               m.period.as_seconds() * segment_bps;
      m.size_bits = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(want_bits), 64, max_bits);
      statics.add(std::move(m));
    }
    statics.validate();
    config.statics = std::move(statics);
  }

  // --- Dynamic message set (SAE-style class mix) -----------------------
  if (spec.num_dynamics > 0) {
    sim::Rng rng(spec.seed ^ kDynamicsSalt);
    struct SaeClass {
      std::int64_t period_ms;
      std::int64_t max_bits;
    };
    static constexpr SaeClass kClasses[] = {
        {10, 128}, {20, 256}, {50, 512}, {100, 512}};
    net::MessageSet dynamics;
    for (int i = 0; i < spec.num_dynamics; ++i) {
      const SaeClass& cls = kClasses[rng.uniform_int(0, 3)];
      net::Message m;
      m.id = 1000 + i;
      m.name = "camp_d" + std::to_string(i + 1);
      m.node = i % spec.nodes;
      m.kind = net::MessageKind::kDynamic;
      m.period = sim::millis(cls.period_ms);
      m.deadline = m.period;
      m.offset = sim::micros(rng.uniform_int(0, cls.period_ms * 1000 - 1));
      m.size_bits = rng.uniform_int(64, cls.max_bits);
      m.frame_id =
          static_cast<int>(config.cluster.g_number_of_static_slots) + 1 + i;
      dynamics.add(std::move(m));
    }
    dynamics.validate();
    config.dynamics = std::move(dynamics);
  }

  // --- Channel fault physics -------------------------------------------
  config.ber = spec.fault_model.ber;
  config.fault_model = spec.fault_model;

  // --- Structural fault axis -------------------------------------------
  if (spec.structural != StructuralKind::kNone) {
    sim::Rng rng(spec.seed ^ kStructuralSalt);
    const std::int64_t w = spec.window_ms;
    const sim::Time at = draw_window_time(rng, w, 0.2, 0.5);
    switch (spec.structural) {
      case StructuralKind::kCrash: {
        fault::NodeCrashWindow crash;
        crash.node = units::NodeId{
            static_cast<int>(rng.uniform_int(0, spec.nodes - 1))};
        crash.at = at;
        crash.restart = at + draw_window_time(rng, w, 0.05, 0.30);
        config.structural.crashes.push_back(crash);
        break;
      }
      case StructuralKind::kBlackout: {
        fault::ChannelBlackoutWindow out;
        out.channel = rng.bernoulli(0.5) ? flexray::ChannelId::kA
                                         : flexray::ChannelId::kB;
        out.at = at;
        out.until = at + draw_window_time(rng, w, 0.02, 0.15);
        config.structural.blackouts.push_back(out);
        break;
      }
      case StructuralKind::kBabble: {
        fault::BabbleWindow babble;
        babble.babbler = units::NodeId{
            static_cast<int>(rng.uniform_int(0, spec.nodes - 1))};
        babble.slot = units::SlotId{
            static_cast<int>(rng.uniform_int(1, spec.num_statics))};
        babble.at = at;
        babble.until = at + draw_window_time(rng, w, 0.10, 0.40);
        if (rng.bernoulli(0.5)) {
          babble.channel = rng.bernoulli(0.5) ? flexray::ChannelId::kA
                                              : flexray::ChannelId::kB;
        }
        config.structural.babbles.push_back(babble);
        break;
      }
      case StructuralKind::kDrift: {
        fault::DriftWindow drift;
        drift.node = units::NodeId{
            static_cast<int>(rng.uniform_int(0, spec.nodes - 1))};
        drift.at = at;
        drift.until = at + draw_window_time(rng, w, 0.05, 0.30);
        drift.excess_ppm = rng.uniform(200.0, 2000.0);
        config.structural.drifts.push_back(drift);
        break;
      }
      case StructuralKind::kNone:
        break;
    }
    config.structural.validate();
  }

  // --- Mixed-criticality / energy axis (DESIGN.md §16) -----------------
  if (dist_.criticality) {
    sim::Rng rng(spec.seed ^ kCriticalitySalt);
    config.mode_policy = *sched::parse_mode_policy(
        rng.bernoulli(0.5) ? "aggressive" : "conservative");
    sched::CriticalitySpec crit;
    crit.static_default = net::Criticality::kHigh;
    crit.dynamic_default = net::Criticality::kLow;
    // A quarter of the dynamics are promoted to medium so DEGRADED-L1
    // sheds a strict subset of what DEGRADED-L2 sheds.
    for (const auto& m : config.dynamics.messages()) {
      if (rng.bernoulli(0.25)) {
        crit.overrides.emplace_back(m.id, net::Criticality::kMedium);
      }
    }
    config.statics = sched::with_criticality(config.statics, crit);
    config.dynamics = sched::with_criticality(config.dynamics, crit);
    config.power.enabled = true;
    // The mode machine feeds on the monitor's drift ratio; half the
    // cells get a BER burst (step up, step back down) so the campaign
    // exercises the degrade -> match-up trajectory, not just NORMAL.
    config.enable_monitor = true;
    config.monitor.window_cycles = 50;
    config.monitor.min_window_frames = 200;
    config.monitor.cooldown_cycles = 1000000;  // mode machine, not re-plan
    if (rng.bernoulli(0.5)) {
      const std::int64_t w = spec.window_ms;
      config.ber_step_at = draw_window_time(rng, w, 0.2, 0.4);
      config.ber_step = config.ber * rng.uniform(20.0, 200.0);
      config.ber_step2_at =
          config.ber_step_at + draw_window_time(rng, w, 0.2, 0.35);
      config.ber_step2 = config.ber;
    }
  }

  config.seed = spec.seed;
  config.batch_window = sim::millis(spec.window_ms);
  config.engine = flexray::EngineMode::kCompiled;
  return config;
}

std::string fault_tag(const ScenarioSpec& spec) {
  std::string tag = fault::to_string(spec.fault_model.kind);
  tag += '+';
  tag += to_string(spec.structural);
  return tag;
}

}  // namespace coeff::campaign
