#include "campaign/lint.hpp"

#include <sys/stat.h>

#include <map>
#include <set>

#include "campaign/checkpoint.hpp"
#include "campaign/manifest.hpp"
#include "campaign/report.hpp"

namespace coeff::campaign {

namespace {

constexpr const char* kRule = "campaign.manifest-consistency";

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

analysis::Location cell_loc(std::int64_t cell) {
  analysis::Location loc;
  loc.record = cell;
  return loc;
}

}  // namespace

analysis::Report lint_campaign(const std::string& dir) {
  analysis::Report report;
  const ManifestLoad manifest_load = load_manifest(manifest_path(dir));
  if (!manifest_load.ok) {
    report.add(kRule, "manifest unusable: " + manifest_load.error);
    return report;  // nothing else can be cross-checked
  }
  const CampaignManifest& manifest = manifest_load.manifest;
  const bool finished =
      manifest.status == "complete" || manifest.status == "degraded";

  std::set<std::int64_t> done;
  std::set<std::int64_t> quarantined;
  for (int shard = 0; shard < manifest.shards; ++shard) {
    const std::string path = shard_checkpoint_path(dir, shard);
    if (!file_exists(path)) {
      if (finished && manifest.cells > shard) {
        report.add(kRule, analysis::strformat(
                              "campaign is %s but shard %d has no checkpoint",
                              manifest.status.c_str(), shard));
      }
      continue;
    }
    const CheckpointLoad load = load_checkpoint(path);
    if (!load.ok) {
      report.add(kRule, path + ": " + load.error);
      continue;
    }
    if (load.header.shard != shard || load.header.shards != manifest.shards ||
        load.header.campaign_seed != manifest.seed ||
        load.header.cells != manifest.cells) {
      report.add(kRule,
                 path + ": checkpoint identity disagrees with the manifest");
      continue;
    }
    if (load.recovered_torn_tail) {
      analysis::Diagnostic diag;
      diag.rule = kRule;
      diag.severity = analysis::Severity::kWarning;
      diag.message = analysis::strformat(
          "%s: torn tail record (%zu bytes) — expected kill residue, "
          "recovered",
          path.c_str(), load.torn_bytes);
      report.add(diag);
    }
    std::set<std::int64_t> shard_done;
    for (const CheckpointRecord& record : load.records) {
      if (record.kind == CheckpointRecordKind::kDegrade) continue;
      if (record.cell < 0 || record.cell >= manifest.cells ||
          record.cell % manifest.shards != shard) {
        report.add(kRule,
                   analysis::strformat(
                       "%s: record names cell %lld outside this shard",
                       path.c_str(),
                       static_cast<long long>(record.cell)),
                   cell_loc(record.cell));
        continue;
      }
      if (record.kind == CheckpointRecordKind::kDone) {
        if (!shard_done.insert(record.cell).second) {
          analysis::Diagnostic diag;
          diag.rule = kRule;
          diag.severity = analysis::Severity::kWarning;
          diag.message = analysis::strformat(
              "%s: duplicate done record for cell %lld", path.c_str(),
              static_cast<long long>(record.cell));
          diag.loc = cell_loc(record.cell);
          report.add(diag);
        }
        done.insert(record.cell);
      } else if (record.kind == CheckpointRecordKind::kQuarantine) {
        quarantined.insert(record.cell);
      }
    }
  }

  // Cross-check result rows against the checkpoints.
  const ResultScan scan = scan_results(dir, manifest);
  for (const std::string& error : scan.errors) {
    report.add(kRule, error);
  }
  if (scan.torn_tail_lines > 0 || scan.unparsed_lines > 0) {
    analysis::Diagnostic diag;
    diag.rule = kRule;
    diag.severity = analysis::Severity::kWarning;
    diag.message = analysis::strformat(
        "result files carry %lld torn and %lld unparsable lines "
        "(recovered; rerun of those cells will re-append)",
        static_cast<long long>(scan.torn_tail_lines),
        static_cast<long long>(scan.unparsed_lines));
    report.add(diag);
  }
  std::set<std::int64_t> rows_present;
  for (const ResultRow& row : scan.rows) {
    rows_present.insert(row.cell);
    if (row.cell < 0 || row.cell >= manifest.cells) {
      report.add(kRule,
                 analysis::strformat("result row names cell %lld outside the "
                                     "campaign",
                                     static_cast<long long>(row.cell)),
                 cell_loc(row.cell));
      continue;
    }
    if (row.status == "failed" && quarantined.count(row.cell) == 0) {
      report.add(kRule,
                 analysis::strformat("cell %lld has a failed row but no "
                                     "quarantine record",
                                     static_cast<long long>(row.cell)),
                 cell_loc(row.cell));
    }
  }
  for (const std::int64_t cell : done) {
    // The write ordering makes the row durable *before* the done
    // record; a done cell without a row breaks that invariant.
    if (rows_present.count(cell) == 0) {
      report.add(kRule,
                 analysis::strformat(
                     "cell %lld is checkpointed done but has no result row",
                     static_cast<long long>(cell)),
                 cell_loc(cell));
    }
  }
  for (const std::int64_t cell : quarantined) {
    if (rows_present.count(cell) == 0) {
      report.add(kRule,
                 analysis::strformat(
                     "cell %lld is quarantined but has no failed row",
                     static_cast<long long>(cell)),
                 cell_loc(cell));
    }
  }

  if (finished) {
    std::int64_t unaccounted = 0;
    for (std::int64_t cell = 0; cell < manifest.cells; ++cell) {
      if (done.count(cell) == 0 && quarantined.count(cell) == 0) {
        ++unaccounted;
      }
    }
    if (unaccounted > 0) {
      report.add(kRule,
                 analysis::strformat(
                     "campaign is %s but %lld cells are unaccounted for",
                     manifest.status.c_str(),
                     static_cast<long long>(unaccounted)));
    }
  }
  return report;
}

}  // namespace coeff::campaign
