#include "campaign/report.hpp"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "campaign/checkpoint.hpp"

namespace coeff::campaign {

namespace {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }  // control characters are dropped: tags never contain them
  }
  return out;
}

std::string format_double(double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.10g", value);
  return buf;
}

/// Extract the raw value text of `"key":` in a flat JSON object.
/// Handles string values (returns unescaped content) and bare scalar
/// tokens; nullopt when absent or malformed.
std::optional<std::string> json_field(std::string_view line,
                                      std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto at = line.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  std::size_t i = at + needle.size();
  while (i < line.size() && line[i] == ' ') ++i;
  if (i >= line.size()) return std::nullopt;
  if (line[i] == '"') {
    std::string out;
    for (++i; i < line.size(); ++i) {
      if (line[i] == '\\') {
        if (i + 1 >= line.size()) return std::nullopt;
        out += line[++i];
      } else if (line[i] == '"') {
        return out;
      } else {
        out += line[i];
      }
    }
    return std::nullopt;  // unterminated string
  }
  std::size_t end = i;
  while (end < line.size() && line[end] != ',' && line[end] != '}' &&
         line[end] != ' ') {
    ++end;
  }
  if (end == i) return std::nullopt;
  return std::string(line.substr(i, end - i));
}

bool to_i64(const std::optional<std::string>& text, std::int64_t& out) {
  if (!text.has_value() || text->empty() || text->size() > 20) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text->c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  out = value;
  return true;
}

bool to_u64(const std::optional<std::string>& text, std::uint64_t& out) {
  if (!text.has_value() || text->empty() || text->size() > 20 ||
      (*text)[0] == '-') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text->c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  out = value;
  return true;
}

bool to_double(const std::optional<std::string>& text, double& out) {
  if (!text.has_value() || text->empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text->c_str(), &end);
  if (end == nullptr || *end != '\0' || !std::isfinite(value)) return false;
  out = value;
  return true;
}

bool to_int(const std::optional<std::string>& text, int& out) {
  std::int64_t wide = 0;
  if (!to_i64(text, wide) || wide < INT32_MIN || wide > INT32_MAX) {
    return false;
  }
  out = static_cast<int>(wide);
  return true;
}

void fold_group(std::map<std::string, GroupStat>& groups,
                const std::string& key, const ResultRow& row) {
  GroupStat& stat = groups[key];
  ++stat.cells;
  stat.released += row.released;
  stat.missed += row.missed;
  stat.miss_ratio_sum += row.miss_ratio;
}

void render_groups(std::string& out, const char* title,
                   const std::map<std::string, GroupStat>& groups) {
  if (groups.empty()) return;
  out += title;
  out += ":\n";
  for (const auto& [key, stat] : groups) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "  %-24s cells=%-6" PRId64 " released=%-9" PRId64
                  " missed=%-7" PRId64 " mean_miss=%s\n",
                  key.c_str(), stat.cells, stat.released, stat.missed,
                  format_double(stat.cells > 0
                                    ? stat.miss_ratio_sum /
                                          static_cast<double>(stat.cells)
                                    : 0.0)
                      .c_str());
    out += buf;
  }
}

void render_groups_json(std::string& out, const char* key,
                        const std::map<std::string, GroupStat>& groups) {
  out += "\"";
  out += key;
  out += "\":{";
  bool first = true;
  for (const auto& [name, stat] : groups) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":{\"cells\":" + std::to_string(stat.cells);
    out += ",\"released\":" + std::to_string(stat.released);
    out += ",\"missed\":" + std::to_string(stat.missed);
    out += ",\"mean_miss\":" +
           format_double(stat.cells > 0 ? stat.miss_ratio_sum /
                                              static_cast<double>(stat.cells)
                                        : 0.0);
    out += '}';
  }
  out += '}';
}

}  // namespace

ResultRow make_row(const ScenarioSpec& spec,
                   const core::ExperimentResult& result) {
  ResultRow row;
  row.cell = spec.cell;
  row.seed = spec.seed;
  row.status = "ok";
  row.scheme = scheme_tag(spec.scheme);
  row.fault = fault::to_string(spec.fault_model.kind);
  row.structural = to_string(spec.structural);
  row.nodes = spec.nodes;
  row.statics = spec.num_statics;
  row.dynamics = spec.num_dynamics;
  row.util = spec.utilization;
  row.ber = spec.fault_model.ber;
  const core::RunStats& run = result.run;
  row.released = run.statics.released + run.dynamics.released;
  row.delivered = run.statics.delivered + run.dynamics.delivered;
  row.missed = run.statics.missed + run.dynamics.missed;
  row.source_lost = run.statics.source_lost + run.dynamics.source_lost;
  row.copies_sent = run.statics.copies_sent + run.dynamics.copies_sent;
  row.cycles = result.cycles_run;
  row.miss_ratio = run.overall_miss_ratio();
  row.degraded = run.plan_degraded;
  row.plan_swaps = run.plan_swaps;
  row.failovers = run.failovers;
  row.frames_lost = run.frames_lost;
  row.s_released = run.statics.released;
  row.s_missed = run.statics.missed;
  row.d_released = run.dynamics.released;
  row.d_missed = run.dynamics.missed;
  row.m_changes = run.mode_changes;
  row.m_shed = run.mode_sheds;
  row.m_matchup = run.matchups;
  row.m_dwell_l1 = run.mode_cycles_l1;
  row.m_dwell_l2 = run.mode_cycles_l2;
  row.e_total_uj = run.energy_total_uj;
  row.e_sleep_uj = run.energy_sleep_saved_uj;
  return row;
}

ResultRow make_failed_row(const ScenarioSpec& spec, int attempts,
                          const std::string& reason) {
  ResultRow row;
  row.cell = spec.cell;
  row.seed = spec.seed;
  row.status = "failed";
  row.scheme = scheme_tag(spec.scheme);
  row.fault = fault::to_string(spec.fault_model.kind);
  row.structural = to_string(spec.structural);
  row.nodes = spec.nodes;
  row.statics = spec.num_statics;
  row.dynamics = spec.num_dynamics;
  row.util = spec.utilization;
  row.ber = spec.fault_model.ber;
  row.attempts = attempts;
  row.reason = reason;
  return row;
}

ResultRow make_shed_row(const ScenarioSpec& spec) {
  ResultRow row;
  row.cell = spec.cell;
  row.seed = spec.seed;
  row.status = "shed";
  return row;
}

std::string render_row(const ResultRow& row) {
  std::string out = "{\"cell\":" + std::to_string(row.cell);
  out += ",\"seed\":" + std::to_string(row.seed);
  out += ",\"status\":\"" + json_escape(row.status) + "\"";
  if (row.status == "shed") {
    // Degraded-path minimal row: identity only, never lies about detail.
    out += '}';
    return out;
  }
  out += ",\"scheme\":\"" + json_escape(row.scheme) + "\"";
  out += ",\"fault\":\"" + json_escape(row.fault) + "\"";
  out += ",\"structural\":\"" + json_escape(row.structural) + "\"";
  out += ",\"nodes\":" + std::to_string(row.nodes);
  out += ",\"statics\":" + std::to_string(row.statics);
  out += ",\"dynamics\":" + std::to_string(row.dynamics);
  out += ",\"util\":" + format_double(row.util);
  out += ",\"ber\":" + format_double(row.ber);
  if (row.status == "failed") {
    out += ",\"attempts\":" + std::to_string(row.attempts);
    out += ",\"reason\":\"" + json_escape(row.reason) + "\"";
    out += '}';
    return out;
  }
  out += ",\"released\":" + std::to_string(row.released);
  out += ",\"delivered\":" + std::to_string(row.delivered);
  out += ",\"missed\":" + std::to_string(row.missed);
  out += ",\"source_lost\":" + std::to_string(row.source_lost);
  out += ",\"copies_sent\":" + std::to_string(row.copies_sent);
  out += ",\"cycles\":" + std::to_string(row.cycles);
  out += ",\"miss_ratio\":" + format_double(row.miss_ratio);
  out += ",\"degraded\":" + std::string(row.degraded ? "true" : "false");
  out += ",\"plan_swaps\":" + std::to_string(row.plan_swaps);
  out += ",\"failovers\":" + std::to_string(row.failovers);
  out += ",\"frames_lost\":" + std::to_string(row.frames_lost);
  out += ",\"s_released\":" + std::to_string(row.s_released);
  out += ",\"s_missed\":" + std::to_string(row.s_missed);
  out += ",\"d_released\":" + std::to_string(row.d_released);
  out += ",\"d_missed\":" + std::to_string(row.d_missed);
  out += ",\"m_changes\":" + std::to_string(row.m_changes);
  out += ",\"m_shed\":" + std::to_string(row.m_shed);
  out += ",\"m_matchup\":" + std::to_string(row.m_matchup);
  out += ",\"m_dwell_l1\":" + std::to_string(row.m_dwell_l1);
  out += ",\"m_dwell_l2\":" + std::to_string(row.m_dwell_l2);
  out += ",\"e_total_uj\":" + format_double(row.e_total_uj);
  out += ",\"e_sleep_uj\":" + format_double(row.e_sleep_uj);
  out += '}';
  return out;
}

std::optional<ResultRow> parse_row(std::string_view line) {
  if (line.size() < 2 || line.front() != '{' || line.back() != '}') {
    return std::nullopt;
  }
  ResultRow row;
  if (!to_i64(json_field(line, "cell"), row.cell) || row.cell < 0) {
    return std::nullopt;
  }
  if (!to_u64(json_field(line, "seed"), row.seed)) return std::nullopt;
  const auto status = json_field(line, "status");
  if (!status.has_value() ||
      (*status != "ok" && *status != "failed" && *status != "shed")) {
    return std::nullopt;
  }
  row.status = *status;
  if (row.status == "shed") return row;

  const auto scheme = json_field(line, "scheme");
  const auto fault = json_field(line, "fault");
  const auto structural = json_field(line, "structural");
  if (!scheme.has_value() || !fault.has_value() || !structural.has_value()) {
    return std::nullopt;
  }
  row.scheme = *scheme;
  row.fault = *fault;
  row.structural = *structural;
  if (!to_int(json_field(line, "nodes"), row.nodes) ||
      !to_int(json_field(line, "statics"), row.statics) ||
      !to_int(json_field(line, "dynamics"), row.dynamics) ||
      !to_double(json_field(line, "util"), row.util) ||
      !to_double(json_field(line, "ber"), row.ber)) {
    return std::nullopt;
  }
  if (row.status == "failed") {
    const auto reason = json_field(line, "reason");
    if (!to_int(json_field(line, "attempts"), row.attempts) ||
        !reason.has_value()) {
      return std::nullopt;
    }
    row.reason = *reason;
    return row;
  }
  const auto degraded = json_field(line, "degraded");
  if (!to_i64(json_field(line, "released"), row.released) ||
      !to_i64(json_field(line, "delivered"), row.delivered) ||
      !to_i64(json_field(line, "missed"), row.missed) ||
      !to_i64(json_field(line, "source_lost"), row.source_lost) ||
      !to_i64(json_field(line, "copies_sent"), row.copies_sent) ||
      !to_i64(json_field(line, "cycles"), row.cycles) ||
      !to_double(json_field(line, "miss_ratio"), row.miss_ratio) ||
      !degraded.has_value() ||
      (*degraded != "true" && *degraded != "false") ||
      !to_i64(json_field(line, "plan_swaps"), row.plan_swaps) ||
      !to_i64(json_field(line, "failovers"), row.failovers) ||
      !to_i64(json_field(line, "frames_lost"), row.frames_lost)) {
    return std::nullopt;
  }
  row.degraded = *degraded == "true";
  // Static-segment counts arrived in a later schema revision: absent on
  // old rows (default 0), rejected only when present-but-garbled.
  const auto s_released = json_field(line, "s_released");
  if (s_released.has_value() && !to_i64(s_released, row.s_released)) {
    return std::nullopt;
  }
  const auto s_missed = json_field(line, "s_missed");
  if (s_missed.has_value() && !to_i64(s_missed, row.s_missed)) {
    return std::nullopt;
  }
  // Dynamic-segment counts arrived with the DynWcrt cross-check: same
  // tolerant treatment (absent = 0, the dynamic cross-check skips rows
  // with d_released == 0 rather than miscounting them).
  const auto d_released = json_field(line, "d_released");
  if (d_released.has_value() && !to_i64(d_released, row.d_released)) {
    return std::nullopt;
  }
  const auto d_missed = json_field(line, "d_missed");
  if (d_missed.has_value() && !to_i64(d_missed, row.d_missed)) {
    return std::nullopt;
  }
  // Mode/energy counters arrived with the mixed-criticality protocol
  // (DESIGN.md §16): absent = 0, rejected only when present-but-garbled.
  const auto m_changes = json_field(line, "m_changes");
  if (m_changes.has_value() && !to_i64(m_changes, row.m_changes)) {
    return std::nullopt;
  }
  const auto m_shed = json_field(line, "m_shed");
  if (m_shed.has_value() && !to_i64(m_shed, row.m_shed)) {
    return std::nullopt;
  }
  const auto m_matchup = json_field(line, "m_matchup");
  if (m_matchup.has_value() && !to_i64(m_matchup, row.m_matchup)) {
    return std::nullopt;
  }
  const auto m_dwell_l1 = json_field(line, "m_dwell_l1");
  if (m_dwell_l1.has_value() && !to_i64(m_dwell_l1, row.m_dwell_l1)) {
    return std::nullopt;
  }
  const auto m_dwell_l2 = json_field(line, "m_dwell_l2");
  if (m_dwell_l2.has_value() && !to_i64(m_dwell_l2, row.m_dwell_l2)) {
    return std::nullopt;
  }
  const auto e_total_uj = json_field(line, "e_total_uj");
  if (e_total_uj.has_value() && !to_double(e_total_uj, row.e_total_uj)) {
    return std::nullopt;
  }
  const auto e_sleep_uj = json_field(line, "e_sleep_uj");
  if (e_sleep_uj.has_value() && !to_double(e_sleep_uj, row.e_sleep_uj)) {
    return std::nullopt;
  }
  return row;
}

ResultScan scan_results(const std::string& dir,
                        const CampaignManifest& manifest) {
  ResultScan scan;
  std::unordered_map<std::int64_t, std::size_t> by_cell;
  for (int shard = 0; shard < manifest.shards; ++shard) {
    const std::string path = shard_results_path(dir, shard);
    const auto bytes = read_file(path);
    if (!bytes.has_value()) continue;  // shard not started yet
    std::size_t start = 0;
    while (start < bytes->size()) {
      const auto newline = bytes->find('\n', start);
      if (newline == std::string::npos) {
        ++scan.torn_tail_lines;
        break;
      }
      const std::string_view line =
          std::string_view(*bytes).substr(start, newline - start);
      start = newline + 1;
      if (line.empty()) continue;
      auto row = parse_row(line);
      if (!row.has_value()) {
        // A complete-but-unparseable line mid-file is garbage worth
        // counting; the lint rule turns it into a diagnostic.
        ++scan.unparsed_lines;
        continue;
      }
      const auto it = by_cell.find(row->cell);
      if (it != by_cell.end()) {
        ++scan.duplicate_rows;
        scan.rows[it->second] = std::move(*row);  // keep-last
      } else {
        by_cell.emplace(row->cell, scan.rows.size());
        scan.rows.push_back(std::move(*row));
      }
    }
  }
  std::sort(scan.rows.begin(), scan.rows.end(),
            [](const ResultRow& a, const ResultRow& b) {
              return a.cell < b.cell;
            });
  return scan;
}

CampaignAggregate aggregate_rows(const std::vector<ResultRow>& rows,
                                 std::int64_t expected_cells) {
  CampaignAggregate agg;
  agg.expected = expected_cells;
  std::vector<bool> seen(
      expected_cells > 0 ? static_cast<std::size_t>(expected_cells) : 0,
      false);
  for (const ResultRow& row : rows) {
    if (row.cell >= 0 && row.cell < expected_cells) {
      seen[static_cast<std::size_t>(row.cell)] = true;
    }
    if (row.status == "failed") {
      ++agg.failed;
      agg.quarantined.push_back(row);
      continue;
    }
    if (row.status == "shed") {
      ++agg.shed;
      continue;
    }
    ++agg.ok;
    agg.released += row.released;
    agg.delivered += row.delivered;
    agg.missed += row.missed;
    agg.source_lost += row.source_lost;
    agg.copies_sent += row.copies_sent;
    agg.cycles += row.cycles;
    agg.plan_swaps += row.plan_swaps;
    agg.failovers += row.failovers;
    agg.d_released += row.d_released;
    agg.d_missed += row.d_missed;
    agg.m_changes += row.m_changes;
    agg.m_shed += row.m_shed;
    agg.m_matchup += row.m_matchup;
    agg.m_dwell_l1 += row.m_dwell_l1;
    agg.m_dwell_l2 += row.m_dwell_l2;
    agg.e_total_uj += row.e_total_uj;
    agg.e_sleep_uj += row.e_sleep_uj;
    if (row.degraded) ++agg.degraded_plans;
    agg.miss_ratio_mean += row.miss_ratio;
    agg.miss_ratio_max = std::max(agg.miss_ratio_max, row.miss_ratio);
    fold_group(agg.by_scheme, row.scheme, row);
    fold_group(agg.by_fault, row.fault, row);
    fold_group(agg.by_structural, row.structural, row);
  }
  if (agg.ok > 0) agg.miss_ratio_mean /= static_cast<double>(agg.ok);
  for (std::int64_t cell = 0; cell < expected_cells; ++cell) {
    if (!seen[static_cast<std::size_t>(cell)]) {
      ++agg.missing;
      if (agg.missing_cells.size() < 16) agg.missing_cells.push_back(cell);
    }
  }
  return agg;
}

std::string render_report_text(const CampaignAggregate& agg,
                               const CampaignManifest& manifest) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "campaign  : %s seed=%" PRIu64 " cells=%" PRId64
                " shards=%d isolation=%s\n",
                manifest.name.c_str(), manifest.seed, manifest.cells,
                manifest.shards, to_string(manifest.isolation));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "cells     : ok=%" PRId64 " failed=%" PRId64 " shed=%" PRId64
                " missing=%" PRId64 " / %" PRId64 "\n",
                agg.ok, agg.failed, agg.shed, agg.missing, agg.expected);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "instances : released=%" PRId64 " delivered=%" PRId64
                " missed=%" PRId64 " source_lost=%" PRId64 "\n",
                agg.released, agg.delivered, agg.missed, agg.source_lost);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "dynamic   : released=%" PRId64 " missed=%" PRId64 "\n",
                agg.d_released, agg.d_missed);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "miss      : mean=%s max=%s | degraded_plans=%" PRId64
                " plan_swaps=%" PRId64 " failovers=%" PRId64 "\n",
                format_double(agg.miss_ratio_mean).c_str(),
                format_double(agg.miss_ratio_max).c_str(), agg.degraded_plans,
                agg.plan_swaps, agg.failovers);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "wire      : copies_sent=%" PRId64 " cycles=%" PRId64 "\n",
                agg.copies_sent, agg.cycles);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "mode      : changes=%" PRId64 " shed=%" PRId64
                " matchup=%" PRId64 " dwell_l1=%" PRId64 " dwell_l2=%" PRId64
                "\n",
                agg.m_changes, agg.m_shed, agg.m_matchup, agg.m_dwell_l1,
                agg.m_dwell_l2);
  out += buf;
  std::snprintf(buf, sizeof buf, "energy    : total_uj=%s sleep_saved_uj=%s\n",
                format_double(agg.e_total_uj).c_str(),
                format_double(agg.e_sleep_uj).c_str());
  out += buf;
  render_groups(out, "by scheme", agg.by_scheme);
  render_groups(out, "by fault model", agg.by_fault);
  render_groups(out, "by structural fault", agg.by_structural);
  if (!agg.quarantined.empty()) {
    out += "quarantined cells (rerun with the repro seed):\n";
    for (const ResultRow& row : agg.quarantined) {
      std::snprintf(buf, sizeof buf,
                    "  cell=%" PRId64 " seed=%" PRIu64
                    " attempts=%d reason=%s scheme=%s fault=%s+%s\n",
                    row.cell, row.seed, row.attempts, row.reason.c_str(),
                    row.scheme.c_str(), row.fault.c_str(),
                    row.structural.c_str());
      out += buf;
    }
  }
  if (!agg.missing_cells.empty()) {
    out += "missing cells:";
    for (const std::int64_t cell : agg.missing_cells) {
      out += ' ';
      out += std::to_string(cell);
    }
    if (agg.missing > static_cast<std::int64_t>(agg.missing_cells.size())) {
      out += " ...";
    }
    out += '\n';
  }
  return out;
}

std::string render_report_json(const CampaignAggregate& agg,
                               const CampaignManifest& manifest) {
  std::string out = "{\"campaign\":\"" + json_escape(manifest.name) + "\"";
  out += ",\"seed\":" + std::to_string(manifest.seed);
  out += ",\"cells\":" + std::to_string(manifest.cells);
  out += ",\"ok\":" + std::to_string(agg.ok);
  out += ",\"failed\":" + std::to_string(agg.failed);
  out += ",\"shed\":" + std::to_string(agg.shed);
  out += ",\"missing\":" + std::to_string(agg.missing);
  out += ",\"released\":" + std::to_string(agg.released);
  out += ",\"delivered\":" + std::to_string(agg.delivered);
  out += ",\"missed\":" + std::to_string(agg.missed);
  out += ",\"source_lost\":" + std::to_string(agg.source_lost);
  out += ",\"copies_sent\":" + std::to_string(agg.copies_sent);
  out += ",\"cycles\":" + std::to_string(agg.cycles);
  out += ",\"degraded_plans\":" + std::to_string(agg.degraded_plans);
  out += ",\"plan_swaps\":" + std::to_string(agg.plan_swaps);
  out += ",\"failovers\":" + std::to_string(agg.failovers);
  out += ",\"d_released\":" + std::to_string(agg.d_released);
  out += ",\"d_missed\":" + std::to_string(agg.d_missed);
  out += ",\"m_changes\":" + std::to_string(agg.m_changes);
  out += ",\"m_shed\":" + std::to_string(agg.m_shed);
  out += ",\"m_matchup\":" + std::to_string(agg.m_matchup);
  out += ",\"m_dwell_l1\":" + std::to_string(agg.m_dwell_l1);
  out += ",\"m_dwell_l2\":" + std::to_string(agg.m_dwell_l2);
  out += ",\"e_total_uj\":" + format_double(agg.e_total_uj);
  out += ",\"e_sleep_uj\":" + format_double(agg.e_sleep_uj);
  out += ",\"miss_ratio_mean\":" + format_double(agg.miss_ratio_mean);
  out += ",\"miss_ratio_max\":" + format_double(agg.miss_ratio_max);
  out += ',';
  render_groups_json(out, "by_scheme", agg.by_scheme);
  out += ',';
  render_groups_json(out, "by_fault", agg.by_fault);
  out += ',';
  render_groups_json(out, "by_structural", agg.by_structural);
  out += ",\"quarantined\":[";
  bool first = true;
  for (const ResultRow& row : agg.quarantined) {
    if (!first) out += ',';
    first = false;
    out += render_row(row);
  }
  out += "]}";
  return out;
}

}  // namespace coeff::campaign
