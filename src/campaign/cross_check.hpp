// Analytic-vs-simulated cross-validation (`coeffctl campaign report
// --analyze` and `coeffctl analyze --campaign DIR`).
//
// A finished campaign is a population of measured miss ratios; the
// probabilistic WCRT verifier (analysis::ProbWcrt) predicts an envelope
// for each of those cells from the manifest alone — the scenarios are
// regenerated statelessly from (seed, cell), exactly like a resume. A
// measured static-segment miss ratio outside its cell's analytic
// envelope (plus sampling slack) is rule
// analysis.prob-vs-campaign-divergence: either the model or the
// simulator is wrong, and both claims carry the cell's repro seed.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "analysis/dyn_wcrt.hpp"
#include "analysis/prob_wcrt.hpp"
#include "campaign/manifest.hpp"
#include "campaign/report.hpp"
#include "core/experiment.hpp"
#include "sched/schedule_table.hpp"

namespace coeff::campaign {

/// Everything analysis::ProbWcrtInput points at, owned in one place so
/// the pointers stay valid for the caller's lifetime of the setup.
/// Heap-allocate (make_prob_setup does) — the input wires into members.
struct ProbSetup {
  core::ExperimentConfig config;  ///< owns cluster + message sets
  std::optional<sched::StaticScheduleTable> table;
  fault::RetransmissionPlan plan;
  int rounds = 1;
  analysis::ProbWcrtInput input;
  /// Dynamic-segment counterpart, wired whenever config.dynamics is
  /// non-empty (has_dynamics); shares plan/fault model with `input`.
  bool has_dynamics = false;
  analysis::DynWcrtInput dyn_input;
};

/// Wire an analytic input for `config` under `scheme`: CoEfficient gets
/// its differentiated plan + slack-stolen serial copies, FSPEC its
/// exclusive-slot mirrored rounds, HOSA a single mirrored shot. Never
/// throws on an unschedulable table — the input just loses its r0
/// refinement (table = nullptr, one-cycle bound).
[[nodiscard]] std::unique_ptr<ProbSetup> make_prob_setup(
    const core::ExperimentConfig& config, core::SchemeKind scheme,
    const analysis::ProbWcrtOptions& options);

/// Set-level expected static miss ratio envelope [lower, upper]:
/// per-message P(miss) edges weighted by release rate (1/T_z), i.e. the
/// expected fraction of static-segment instances that miss.
[[nodiscard]] std::pair<double, double> envelope_miss_ratio(
    const analysis::ProbWcrtResult& result);

/// Dynamic-segment analogue: expected fraction of dynamic releases that
/// miss, rate-weighted over the analyzed dynamic messages.
[[nodiscard]] std::pair<double, double> dyn_envelope_miss_ratio(
    const analysis::DynWcrtResult& result);

struct CrossCheckOptions {
  std::size_t max_cells = 16;  ///< analytic runs are per-cell; cap them
  analysis::ProbWcrtOptions prob;
};

struct CrossCheckSummary {
  std::size_t eligible = 0;  ///< ok, structural=none, s_released > 0
  std::size_t checked = 0;   ///< analytic envelope actually computed
  std::size_t diverged = 0;  ///< cells outside their envelope
  /// Dynamic-segment pass (rows with d_released > 0; legacy rows parse
  /// those counters as 0 and are skipped, never miscounted as clean).
  std::size_t dyn_eligible = 0;
  std::size_t dyn_checked = 0;
  std::size_t dyn_diverged = 0;  ///< analysis.dyn-vs-campaign-divergence
};

/// Re-derive the analytic envelope for up to `max_cells` eligible rows
/// (ok status, no structural fault — the analytic model speaks only
/// about channel loss — and a recorded static-segment population) and
/// append analysis.prob-vs-campaign-divergence findings to `report`.
[[nodiscard]] CrossCheckSummary cross_check_prob(
    const CampaignManifest& manifest, const std::vector<ResultRow>& rows,
    const CrossCheckOptions& options, analysis::Report& report);

}  // namespace coeff::campaign
