// Runtime reliability monitor: BER drift detection over a sliding
// window of communication cycles.
//
// The offline retransmission plan (§III-E) is only as good as the BER
// it was solved for. The monitor watches every wire verdict, keeps
// per-channel frame/corruption/bit counts over the last `window_cycles`
// cycles, and estimates the channel BER by inverting the frame-failure
// law p = 1 - (1 - ber)^bits at the window's mean frame size. When the
// estimate exceeds the planned BER by `trigger_factor` (with at least
// `min_window_frames` samples and the re-plan cooldown elapsed), the
// owner is told to re-plan; CoEfficientScheduler then re-runs the
// differentiated solver against the estimate and swaps the plan at the
// cycle boundary.
//
// Purely observational and allocation-light: deterministic given the
// verdict stream, so monitored runs stay reproducible under a fixed
// seed and safe to fan out across sweep workers.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>

#include "flexray/bus.hpp"
#include "sim/time.hpp"

namespace coeff::fault {

struct ReliabilityMonitorOptions {
  /// Sliding-window length in communication cycles.
  int window_cycles = 200;
  /// Drift threshold: estimated BER > planned BER * trigger_factor.
  double trigger_factor = 5.0;
  /// Minimum frames in the window before the estimate is trusted.
  std::int64_t min_window_frames = 100;
  /// Cycles after a re-plan during which detection is suppressed (the
  /// new plan needs a window of its own evidence).
  int cooldown_cycles = 100;
  /// Hysteresis exit threshold for the latched drift signal: once
  /// drift is latched (estimate > planned * trigger_factor), it stays
  /// latched until the estimate has been below planned * exit_factor
  /// for `min_dwell_cycles` consecutive cycles. Must satisfy
  /// 1.0 <= exit_factor <= trigger_factor, so the latch cannot flap on
  /// estimates that straddle a single threshold.
  double exit_factor = 2.0;
  /// Consecutive calm cycles (below exit_factor) required before the
  /// drift latch releases. 0 = release on the first calm cycle.
  int min_dwell_cycles = 0;
};

class ReliabilityMonitor {
 public:
  ReliabilityMonitor(double planned_ber, const ReliabilityMonitorOptions& opt);

  /// Feed one wire verdict (every transmission, both segments).
  void record_tx(flexray::ChannelId channel, std::int64_t payload_bits,
                 bool corrupted);

  /// Roll the window at a cycle boundary. True when drift is detected
  /// (see class comment); the caller is expected to re-plan and then
  /// call note_replanned.
  [[nodiscard]] bool on_cycle_end();

  /// Accept the swapped plan: `new_planned_ber` becomes the baseline
  /// and the cooldown restarts.
  void note_replanned(double new_planned_ber);

  [[nodiscard]] double planned_ber() const { return planned_ber_; }
  /// Window BER estimate pooled over both channels (0 when no samples).
  [[nodiscard]] double estimated_ber() const;
  /// Per-channel window estimate, or nullopt when the channel produced
  /// zero verdicts in the window (starved — the immediate symptom of a
  /// blackout). A starved channel has *no evidence*, which is not the
  /// same as evidence of ber = 0.
  [[nodiscard]] std::optional<double> channel_estimate(
      flexray::ChannelId channel) const;
  /// True when `channel` has zero verdicts in the window.
  [[nodiscard]] bool starved(flexray::ChannelId channel) const;
  /// Per-channel estimate with the defined no-estimate fallback: a
  /// starved channel reports the planned BER (no evidence => no drift),
  /// never a 0/0-derived zero that would mask the outage.
  [[nodiscard]] double estimated_ber(flexray::ChannelId channel) const;
  /// Max over the channels that *have* estimates: a burst confined to
  /// one channel is not diluted by the healthy one, and a starved
  /// channel neither drags the estimate down nor fakes perfection.
  /// Detection and re-planning use this (the plan must cover the worse
  /// observable channel). planned_ber() when every channel is starved.
  [[nodiscard]] double worst_channel_estimate() const;
  /// Raw corrupted/frames ratio over the window, pooled.
  [[nodiscard]] double observed_frame_error_rate() const;
  [[nodiscard]] std::int64_t window_frames() const;
  [[nodiscard]] std::int64_t drift_detections() const {
    return drift_detections_;
  }

  // --- Latched hysteresis signal (mode-change protocol) ----------------
  // Updated by on_cycle_end without affecting its return value: the
  // re-plan trigger keeps its original threshold/cooldown semantics,
  // while the mode machine consumes this flap-damped latch instead.

  /// True while drift is latched: entered when the worst-channel
  /// estimate exceeds planned * trigger_factor (with enough window
  /// frames), released only after `min_dwell_cycles` consecutive
  /// cycles below planned * exit_factor.
  [[nodiscard]] bool drift_active() const { return drift_active_; }
  /// Last cycle's worst-channel estimate / planned BER (1.0 until the
  /// window holds min_window_frames samples). The mode machine's
  /// escalation input.
  [[nodiscard]] double drift_ratio() const { return drift_ratio_; }

 private:
  struct Bucket {
    std::array<std::int64_t, flexray::kNumChannels> frames{};
    std::array<std::int64_t, flexray::kNumChannels> corrupted{};
    std::array<std::int64_t, flexray::kNumChannels> bits{};
  };

  /// Invert p = 1 - (1 - ber)^bits at the window's mean frame size.
  [[nodiscard]] static double invert_frame_error_rate(double rate,
                                                      double mean_bits);
  [[nodiscard]] double estimate(std::int64_t frames, std::int64_t corrupted,
                                std::int64_t bits) const;

  double planned_ber_;
  ReliabilityMonitorOptions opt_;
  Bucket current_;               ///< the cycle in progress
  std::deque<Bucket> window_;    ///< closed cycles, newest at the back
  Bucket totals_;                ///< running sums over window_ + current_
  std::int64_t cooldown_remaining_ = 0;
  std::int64_t drift_detections_ = 0;
  // Latched hysteresis state (see drift_active()).
  bool drift_active_ = false;
  double drift_ratio_ = 1.0;
  int calm_cycles_ = 0;  ///< consecutive cycles below exit_factor
};

}  // namespace coeff::fault
