// IEC 61508 safety integrity levels (§III-E).
//
// For continuous/high-demand operation the standard bounds the
// probability of a dangerous failure per hour (PFH). We map each SIL to
// the upper bound of its PFH band and derive the reliability goal
// rho = 1 - gamma over the time unit u.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace coeff::fault {

enum class Sil : std::uint8_t { kSil1 = 1, kSil2 = 2, kSil3 = 3, kSil4 = 4 };

/// Maximum tolerated probability of system failure per hour (the upper
/// bound of the SIL's PFH band): SIL1 1e-5 .. SIL4 1e-9.
[[nodiscard]] double max_failure_probability_per_hour(Sil sil);

/// The reliability goal rho = 1 - gamma for a time unit `u`, scaling the
/// hourly budget linearly (gamma << 1, so linear scaling is exact to
/// first order and conservative).
[[nodiscard]] double reliability_goal(Sil sil, sim::Time u);

/// Lowest SIL whose budget a measured failure probability per hour
/// satisfies; returns 0 if even SIL1 is violated.
[[nodiscard]] int achieved_sil(double failures_per_hour);

}  // namespace coeff::fault
