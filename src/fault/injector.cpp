#include "fault/injector.hpp"

#include <cstdio>
#include <stdexcept>

namespace coeff::fault {

FaultInjector::FaultInjector(double ber, std::uint64_t seed)
    : ber_(ber), rngs_{sim::Rng{seed ^ 0x414141ULL}, sim::Rng{seed ^ 0x424242ULL}} {
  if (!(ber >= 0.0 && ber <= 1.0)) {
    char msg[96];
    std::snprintf(msg, sizeof msg, "FaultInjector: ber = %g out of [0, 1]",
                  ber);
    throw std::invalid_argument(msg);
  }
}

bool FaultInjector::draw_verdict(const flexray::TxRequest& req,
                                 flexray::ChannelId channel,
                                 sim::Time /*start*/) {
  return rngs_[static_cast<std::size_t>(channel)].bernoulli(
      ber_.p(req.payload_bits));
}

void FaultInjector::apply_ber_step(double ber) { ber_.set_ber(ber); }

std::string FaultInjector::describe() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "iid(ber=%g)", ber_.ber());
  return buf;
}

}  // namespace coeff::fault
