#include "fault/injector.hpp"

#include <stdexcept>

namespace coeff::fault {

FaultInjector::FaultInjector(double ber, std::uint64_t seed)
    : ber_(ber), rngs_{sim::Rng{seed ^ 0x414141ULL}, sim::Rng{seed ^ 0x424242ULL}} {
  if (ber < 0.0 || ber > 1.0) {
    throw std::invalid_argument("FaultInjector: ber out of [0,1]");
  }
}

bool FaultInjector::corrupted(const flexray::TxRequest& req,
                              flexray::ChannelId channel, sim::Time /*start*/) {
  const double p = frame_failure_probability(req.payload_bits, ber_);
  auto& rng = rngs_[static_cast<std::size_t>(channel)];
  const bool fault = rng.bernoulli(p);
  ++verdicts_;
  if (fault) ++faults_;
  return fault;
}

flexray::CorruptionFn FaultInjector::as_corruption_fn() {
  return [this](const flexray::TxRequest& req, flexray::ChannelId channel,
                sim::Time start) { return corrupted(req, channel, start); };
}

}  // namespace coeff::fault
