#include "fault/iec61508.hpp"

#include <stdexcept>

namespace coeff::fault {

double max_failure_probability_per_hour(Sil sil) {
  switch (sil) {
    case Sil::kSil1:
      return 1e-5;
    case Sil::kSil2:
      return 1e-6;
    case Sil::kSil3:
      return 1e-7;
    case Sil::kSil4:
      return 1e-9;
  }
  throw std::invalid_argument("max_failure_probability_per_hour: bad SIL");
}

double reliability_goal(Sil sil, sim::Time u) {
  if (u <= sim::Time::zero()) {
    throw std::invalid_argument("reliability_goal: non-positive time unit");
  }
  const double hours = u.as_seconds() / 3600.0;
  const double gamma = max_failure_probability_per_hour(sil) * hours;
  return gamma >= 1.0 ? 0.0 : 1.0 - gamma;
}

int achieved_sil(double failures_per_hour) {
  if (failures_per_hour < 0.0) {
    throw std::invalid_argument("achieved_sil: negative failure rate");
  }
  if (failures_per_hour <= 1e-9) return 4;
  if (failures_per_hour <= 1e-7) return 3;
  if (failures_per_hour <= 1e-6) return 2;
  if (failures_per_hour <= 1e-5) return 1;
  return 0;
}

}  // namespace coeff::fault
