#include "fault/fault_model.hpp"

#include <cstdio>
#include <stdexcept>

#include "fault/ber.hpp"
#include "fault/injector.hpp"

namespace coeff::fault {

namespace {

/// Map a 64-bit draw to [0, 1) with 53 bits of entropy (same convention
/// as sim::Rng::uniform01, but usable on stateless SplitMix64 output).
double to_unit01(std::uint64_t x) { return (x >> 11) * 0x1.0p-53; }

void check_probability(const char* option, double value) {
  if (!(value >= 0.0 && value <= 1.0)) {  // negated: also rejects NaN
    char msg[128];
    std::snprintf(msg, sizeof msg, "fault model: %s = %g out of [0, 1]",
                  option, value);
    throw std::invalid_argument(msg);
  }
}

}  // namespace

const char* to_string(FaultModelKind k) {
  switch (k) {
    case FaultModelKind::kIid:
      return "iid";
    case FaultModelKind::kGilbertElliott:
      return "gilbert-elliott";
    case FaultModelKind::kCommonMode:
      return "common-mode";
    case FaultModelKind::kIidCounter:
      return "iid-counter";
  }
  return "?";
}

std::optional<FaultModelKind> parse_fault_model_kind(std::string_view name) {
  if (name == "iid") return FaultModelKind::kIid;
  if (name == "gilbert-elliott" || name == "ge") {
    return FaultModelKind::kGilbertElliott;
  }
  if (name == "common-mode") return FaultModelKind::kCommonMode;
  if (name == "iid-counter") return FaultModelKind::kIidCounter;
  return std::nullopt;
}

bool FaultModel::corrupted(const flexray::TxRequest& req,
                           flexray::ChannelId channel, sim::Time start) {
  while (!pending_steps_.empty() && start >= pending_steps_.back().at) {
    apply_ber_step(pending_steps_.back().ber);
    pending_steps_.pop_back();
  }
  const bool fault = draw_verdict(req, channel, start);
  ++verdicts_;
  ++ch_verdicts_[static_cast<std::size_t>(channel)];
  if (fault) {
    ++faults_;
    ++ch_faults_[static_cast<std::size_t>(channel)];
  }
  return fault;
}

flexray::CorruptionFn FaultModel::as_corruption_fn() {
  return [this](const flexray::TxRequest& req, flexray::ChannelId channel,
                sim::Time start) { return corrupted(req, channel, start); };
}

void FaultModel::draw_batch(const flexray::VerdictQuery* queries,
                            std::size_t n, bool* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = corrupted(*queries[i].request, queries[i].channel,
                       queries[i].start);
  }
}

flexray::BatchCorruptionFn FaultModel::as_batch_fn() {
  return [this](const flexray::VerdictQuery* queries, std::size_t n,
                bool* out) { draw_batch(queries, n, out); };
}

void FaultModel::schedule_ber_step(sim::Time at, double ber) {
  check_probability("ber_step", ber);
  // Keep the earliest step at the back (applied first). Insertion sort
  // is fine: drift profiles hold a handful of steps at most.
  BerStep step{at, ber};
  auto it = pending_steps_.begin();
  while (it != pending_steps_.end() && it->at > step.at) ++it;
  pending_steps_.insert(it, step);
}

// --- Gilbert–Elliott ----------------------------------------------------

GilbertElliottModel::GilbertElliottModel(const GilbertElliottParams& params,
                                         std::uint64_t seed)
    : params_(params),
      good_p_(params.ber_good),
      bad_p_(params.ber_bad),
      chains_{Chain{sim::Rng{seed ^ 0x414141ULL}},
              Chain{sim::Rng{seed ^ 0x424242ULL}}} {
  check_probability("gilbert_elliott.p_good_to_bad", params.p_good_to_bad);
  check_probability("gilbert_elliott.p_bad_to_good", params.p_bad_to_good);
  check_probability("gilbert_elliott.ber_good", params.ber_good);
  check_probability("gilbert_elliott.ber_bad", params.ber_bad);
}

bool GilbertElliottModel::draw_verdict(const flexray::TxRequest& req,
                                       flexray::ChannelId channel,
                                       sim::Time /*start*/) {
  Chain& chain = chains_[static_cast<std::size_t>(channel)];
  // One Markov transition per verdict, then the fault draw at the
  // resulting state's BER. Each verdict costs exactly two draws, so the
  // per-channel stream stays aligned whatever path the chain takes.
  const double p_move =
      chain.bad ? params_.p_bad_to_good : params_.p_good_to_bad;
  if (chain.rng.bernoulli(p_move)) chain.bad = !chain.bad;
  BerCache& memo = chain.bad ? bad_p_ : good_p_;
  return chain.rng.bernoulli(memo.p(req.payload_bits));
}

void GilbertElliottModel::apply_ber_step(double ber) {
  params_.ber_good = ber;
  if (params_.ber_bad < ber) params_.ber_bad = ber;
  good_p_.set_ber(params_.ber_good);
  bad_p_.set_ber(params_.ber_bad);
}

std::string GilbertElliottModel::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "gilbert-elliott(p_gb=%g, p_bg=%g, ber_good=%g, ber_bad=%g)",
                params_.p_good_to_bad, params_.p_bad_to_good, params_.ber_good,
                params_.ber_bad);
  return buf;
}

// --- Common mode --------------------------------------------------------

CommonModeModel::CommonModeModel(double ber, double common_fraction,
                                 std::uint64_t seed)
    : ber_(ber),
      common_fraction_(common_fraction),
      seed_(seed),
      rngs_{sim::Rng{seed ^ 0x434343ULL}, sim::Rng{seed ^ 0x444444ULL}} {
  check_probability("ber", ber);
  check_probability("common_fraction", common_fraction);
}

bool CommonModeModel::draw_verdict(const flexray::TxRequest& req,
                                   flexray::ChannelId channel,
                                   sim::Time start) {
  const double p = ber_.p(req.payload_bits);
  // Slot-keyed stateless stream: both channels of the same slot (same
  // start time and frame id) derive identical draws, so a common-mode
  // event corrupts both copies together; the independent branch falls
  // back to the per-channel streams.
  sim::SplitMix64 mix(seed_ ^
                      static_cast<std::uint64_t>(start.ns()) *
                          0x9E3779B97F4A7C15ULL ^
                      (static_cast<std::uint64_t>(req.frame_id.value()) << 17));
  const bool common_event = to_unit01(mix.next()) < common_fraction_;
  const double common_draw = to_unit01(mix.next());
  if (common_event) return common_draw < p;
  return rngs_[static_cast<std::size_t>(channel)].bernoulli(p);
}

void CommonModeModel::apply_ber_step(double ber) { ber_.set_ber(ber); }

std::string CommonModeModel::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "common-mode(ber=%g, common_fraction=%g)",
                ber_.ber(), common_fraction_);
  return buf;
}

// --- Counter-based iid --------------------------------------------------

CounterIidModel::CounterIidModel(double ber, std::uint64_t seed)
    : ber_(ber), philox_(seed) {
  check_probability("ber", ber);
}

bool CounterIidModel::draw_verdict(const flexray::TxRequest& req,
                                   flexray::ChannelId channel,
                                   sim::Time start) {
  const double p = ber_.p(req.payload_bits);
  // Counter layout: c0 = transmission start (unique per slot/minislot,
  // encodes cycle and slot), c1 = frame id and channel. At most one
  // frame occupies a (start, frame, channel) triple, so every verdict
  // has its own counter and the draw order is immaterial.
  const std::uint64_t c1 =
      (static_cast<std::uint64_t>(req.frame_id.value()) << 1) |
      static_cast<std::uint64_t>(channel);
  return philox_.bernoulli(p, static_cast<std::uint64_t>(start.ns()), c1);
}

void CounterIidModel::apply_ber_step(double ber) { ber_.set_ber(ber); }

std::string CounterIidModel::describe() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "iid-counter(ber=%g)", ber_.ber());
  return buf;
}

// --- Factory ------------------------------------------------------------

std::string describe(const FaultModelConfig& config) {
  switch (config.kind) {
    case FaultModelKind::kIid: {
      char buf[64];
      std::snprintf(buf, sizeof buf, "iid(ber=%g)", config.ber);
      return buf;
    }
    case FaultModelKind::kGilbertElliott:
      return GilbertElliottModel(config.gilbert_elliott, 0).describe();
    case FaultModelKind::kCommonMode:
      return CommonModeModel(config.ber, config.common_fraction, 0).describe();
    case FaultModelKind::kIidCounter:
      return CounterIidModel(config.ber, 0).describe();
  }
  return "?";
}

std::unique_ptr<FaultModel> make_fault_model(const FaultModelConfig& config,
                                             std::uint64_t seed) {
  switch (config.kind) {
    case FaultModelKind::kIid:
      return std::make_unique<FaultInjector>(config.ber, seed);
    case FaultModelKind::kGilbertElliott:
      return std::make_unique<GilbertElliottModel>(config.gilbert_elliott,
                                                   seed);
    case FaultModelKind::kCommonMode:
      return std::make_unique<CommonModeModel>(config.ber,
                                               config.common_fraction, seed);
    case FaultModelKind::kIidCounter:
      return std::make_unique<CounterIidModel>(config.ber, seed);
  }
  throw std::invalid_argument("make_fault_model: unknown kind");
}

// --- Analytic failure queries -------------------------------------------

AnalyticFailure::AnalyticFailure(const FaultModelConfig& config)
    : config_(config),
      base_(config.ber),
      good_(config.gilbert_elliott.ber_good),
      bad_(config.gilbert_elliott.ber_bad) {
  check_probability("ber", config.ber);
  if (config.kind == FaultModelKind::kGilbertElliott) {
    const GilbertElliottParams& ge = config.gilbert_elliott;
    check_probability("gilbert_elliott.p_good_to_bad", ge.p_good_to_bad);
    check_probability("gilbert_elliott.p_bad_to_good", ge.p_bad_to_good);
    check_probability("gilbert_elliott.ber_good", ge.ber_good);
    check_probability("gilbert_elliott.ber_bad", ge.ber_bad);
    const double denom = ge.p_good_to_bad + ge.p_bad_to_good;
    // A frozen chain (both transition probabilities 0) never leaves its
    // start state, and every chain starts good.
    pi_bad_ = denom > 0.0 ? ge.p_good_to_bad / denom : 0.0;
  } else if (config.kind == FaultModelKind::kCommonMode) {
    check_probability("common_fraction", config.common_fraction);
  }
}

double AnalyticFailure::attempt(std::int64_t bits) {
  if (config_.kind == FaultModelKind::kGilbertElliott) {
    return (1.0 - pi_bad_) * good_.p(bits) + pi_bad_ * bad_.p(bits);
  }
  // The common-mode marginal is p on either branch: the common stream
  // draws at the same per-frame failure probability as the independent
  // one, it only correlates the two channels.
  return base_.p(bits);
}

double AnalyticFailure::mirrored_pair(std::int64_t bits) {
  if (config_.kind == FaultModelKind::kCommonMode) {
    const double p = base_.p(bits);
    const double f = config_.common_fraction;
    return f * p + (1.0 - f) * p * p;
  }
  // iid / iid-counter: independent channel streams. Gilbert–Elliott:
  // independent per-channel chains, each at its stationary marginal.
  const double p = attempt(bits);
  return p * p;
}

double AnalyticFailure::consecutive_failures(std::int64_t bits, int n) {
  if (n <= 0) return 1.0;
  if (config_.kind != FaultModelKind::kGilbertElliott) {
    return independent_failures(bits, n);
  }
  const GilbertElliottParams& ge = config_.gilbert_elliott;
  const double fg = good_.p(bits);
  const double fb = bad_.p(bits);
  // v_s = P(first k attempts failed, chain in state s after attempt k).
  // Per verdict the chain transitions first, then draws at the new
  // state (draw_verdict order). Adjacent attempts maximize burst
  // correlation, so this is the pessimistic chaining.
  double v_good = 1.0 - pi_bad_;
  double v_bad = pi_bad_;
  for (int k = 0; k < n; ++k) {
    const double to_good =
        v_good * (1.0 - ge.p_good_to_bad) + v_bad * ge.p_bad_to_good;
    const double to_bad =
        v_good * ge.p_good_to_bad + v_bad * (1.0 - ge.p_bad_to_good);
    v_good = to_good * fg;
    v_bad = to_bad * fb;
  }
  return v_good + v_bad;
}

double AnalyticFailure::consecutive_pair_failures(std::int64_t bits, int n) {
  if (n <= 0) return 1.0;
  if (config_.kind == FaultModelKind::kGilbertElliott) {
    // The two channels run independent chains; each must fail all n.
    const double one = consecutive_failures(bits, n);
    return one * one;
  }
  return independent_pair_failures(bits, n);
}

double AnalyticFailure::independent_failures(std::int64_t bits, int n) {
  if (n <= 0) return 1.0;
  double out = 1.0;
  const double p = attempt(bits);
  for (int k = 0; k < n; ++k) out *= p;
  return out;
}

double AnalyticFailure::independent_pair_failures(std::int64_t bits, int n) {
  if (n <= 0) return 1.0;
  double out = 1.0;
  const double p = mirrored_pair(bits);
  for (int k = 0; k < n; ++k) out *= p;
  return out;
}

}  // namespace coeff::fault
