// Theorem-1 reliability analysis and the differentiated-retransmission
// solver (§III-E).
//
// Given a message set, a BER and a time unit u, the probability that
// every deadline-relevant instance gets through is
//     R = prod_z (1 - p_z^{k_z+1})^{u / T_z}.
// CoEfficient's "differentiated retransmission" picks the smallest (in
// total added bus load) vector k that achieves R >= rho, instead of
// retransmitting everything (FSPEC's best effort).
#pragma once

#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "sim/time.hpp"

namespace coeff::fault {

/// Retransmission plan: k_z per message, aligned with the set's order.
struct RetransmissionPlan {
  std::vector<int> copies;  ///< k_z (extra copies beyond the first TX)
  double log_reliability = 0.0;  ///< achieved log R
  double added_load_bits_per_second = 0.0;  ///< sum k_z * W_z / T_z
  /// log of the rho the solver aimed at (0 when rho was disabled).
  double target_log_reliability = 0.0;
  /// True when rho was unreachable within max_copies_per_message and
  /// this is the best achievable plan instead (graceful degradation).
  bool degraded = false;

  [[nodiscard]] double reliability() const;
  [[nodiscard]] int total_copies() const;
  [[nodiscard]] int max_copies() const;
};

/// log R for the plan `copies` (may be shorter than the set; missing
/// entries count as 0 retransmissions).
[[nodiscard]] double log_set_reliability(const net::MessageSet& set,
                                         const std::vector<int>& copies,
                                         double ber, sim::Time u);

/// Convenience: R itself (may underflow to 0 for hopeless plans).
[[nodiscard]] double set_reliability(const net::MessageSet& set,
                                     const std::vector<int>& copies,
                                     double ber, sim::Time u);

struct SolverOptions {
  double ber = 1e-7;
  double rho = 0.0;          ///< target reliability over `u`
  sim::Time u = sim::seconds(3600);
  int max_copies_per_message = 8;  ///< per-message copy bound
  /// When true, an unreachable rho throws std::runtime_error (the
  /// pre-degradation behaviour); by default the solvers return the best
  /// achievable plan flagged `degraded` instead.
  bool throw_on_infeasible = false;
};

/// Differentiated solver: greedy marginal-gain-per-added-load ascent.
/// Starts at k = 0 and, while log R < log rho, increments the k_z with
/// the best (delta log R) / (added load) ratio. If the goal is
/// unreachable within max_copies_per_message, returns the best
/// achievable plan flagged `degraded` (or throws std::runtime_error
/// under throw_on_infeasible). Invalid options (ber outside [0,1],
/// rho >= 1, non-positive u, negative copy bound) always throw
/// std::invalid_argument naming the offending option and value.
[[nodiscard]] RetransmissionPlan solve_differentiated(
    const net::MessageSet& set, const SolverOptions& opt);

/// Uniform baseline (ablation): the smallest single k applied to every
/// message that achieves rho; degrades to k = max_copies_per_message
/// when rho is unreachable (same throw_on_infeasible contract).
[[nodiscard]] RetransmissionPlan solve_uniform(const net::MessageSet& set,
                                               const SolverOptions& opt);

/// Rounds solver for schemes that transmit every instance in rounds of
/// `copies_per_round` simultaneous copies (e.g. FSPEC's dual-channel
/// mirror: 2 copies per round): smallest R >= 1 such that
///   prod_z (1 - p_z^{R * copies_per_round})^{u/T_z} >= rho.
/// Degrades to the largest round count within the copy bound when rho
/// is unreachable (same throw_on_infeasible contract).
[[nodiscard]] int solve_uniform_rounds(const net::MessageSet& set,
                                       const SolverOptions& opt,
                                       int copies_per_round);

}  // namespace coeff::fault
