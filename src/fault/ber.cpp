#include "fault/ber.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace coeff::fault {

double frame_failure_probability(std::int64_t bits, double ber) {
  if (bits < 0) {
    throw std::invalid_argument("frame_failure_probability: negative bits");
  }
  if (ber < 0.0 || ber > 1.0) {
    throw std::invalid_argument("frame_failure_probability: ber out of [0,1]");
  }
  if (bits == 0 || ber == 0.0) return 0.0;
  if (ber == 1.0) return 1.0;
  // 1 - (1-ber)^W = -expm1(W * log1p(-ber)), stable for ber << 1.
  return -std::expm1(static_cast<double>(bits) * std::log1p(-ber));
}

double instance_loss_probability(double p, int retransmissions) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("instance_loss_probability: p out of [0,1]");
  }
  if (retransmissions < 0) {
    throw std::invalid_argument(
        "instance_loss_probability: negative retransmission count");
  }
  return std::pow(p, retransmissions + 1);
}

double log_message_reliability(double p, int retransmissions,
                               double occurrences) {
  if (occurrences < 0.0) {
    throw std::invalid_argument("log_message_reliability: occurrences < 0");
  }
  const double loss = instance_loss_probability(p, retransmissions);
  if (loss >= 1.0) {
    return -std::numeric_limits<double>::infinity();
  }
  return occurrences * std::log1p(-loss);
}

}  // namespace coeff::fault
