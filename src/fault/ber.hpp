// Bit-error-rate fault arithmetic (§III-E).
//
// A transient fault corrupts independent bits with probability BER; a
// frame of W bits is lost iff any bit flips, so its failure probability
// is p = 1 - (1 - BER)^W. Computed via expm1/log1p so tiny BERs do not
// cancel to zero in double precision.
#pragma once

#include <cstdint>
#include <vector>

namespace coeff::fault {

/// Failure probability of one transmission of `bits` bits at `ber`.
/// Preconditions: bits >= 0, 0 <= ber <= 1.
[[nodiscard]] double frame_failure_probability(std::int64_t bits, double ber);

/// Memo of frame_failure_probability for a fixed BER, keyed by frame
/// size. The verdict hot path calls it once per transmission with one
/// of a handful of message sizes, so the expm1/log1p pair is paid once
/// per size instead of once per frame. Returns the exact same double
/// as the direct call (it IS the direct call, cached), so RNG verdict
/// streams are unchanged.
class BerCache {
 public:
  BerCache() = default;
  explicit BerCache(double ber) : ber_(ber) {}

  /// Change the BER; drops every memoized entry.
  void set_ber(double ber) {
    ber_ = ber;
    memo_.clear();
  }
  [[nodiscard]] double ber() const { return ber_; }

  [[nodiscard]] double p(std::int64_t bits) {
    // Frame sizes are bounded by segment capacities (a few kbit);
    // anything unexpected falls through to the direct computation.
    if (bits < 0 || bits > kMaxMemoBits) {
      return frame_failure_probability(bits, ber_);
    }
    const auto idx = static_cast<std::size_t>(bits);
    if (idx >= memo_.size()) memo_.resize(idx + 1, -1.0);
    double& slot = memo_[idx];
    if (slot < 0.0) slot = frame_failure_probability(bits, ber_);
    return slot;
  }

 private:
  static constexpr std::int64_t kMaxMemoBits = 1 << 20;
  double ber_ = 0.0;
  std::vector<double> memo_;  ///< -1 = not yet computed
};

/// Probability that an instance fails its initial transmission *and*
/// all `retransmissions` scheduled copies: p^(k+1).
[[nodiscard]] double instance_loss_probability(double p, int retransmissions);

/// log of the per-message reliability term of Theorem 1:
/// (u / T) * log(1 - p^(k+1)), with `occurrences` = u / T.
[[nodiscard]] double log_message_reliability(double p, int retransmissions,
                                             double occurrences);

}  // namespace coeff::fault
