// Bit-error-rate fault arithmetic (§III-E).
//
// A transient fault corrupts independent bits with probability BER; a
// frame of W bits is lost iff any bit flips, so its failure probability
// is p = 1 - (1 - BER)^W. Computed via expm1/log1p so tiny BERs do not
// cancel to zero in double precision.
#pragma once

#include <cstdint>

namespace coeff::fault {

/// Failure probability of one transmission of `bits` bits at `ber`.
/// Preconditions: bits >= 0, 0 <= ber <= 1.
[[nodiscard]] double frame_failure_probability(std::int64_t bits, double ber);

/// Probability that an instance fails its initial transmission *and*
/// all `retransmissions` scheduled copies: p^(k+1).
[[nodiscard]] double instance_loss_probability(double p, int retransmissions);

/// log of the per-message reliability term of Theorem 1:
/// (u / T) * log(1 - p^(k+1)), with `occurrences` = u / T.
[[nodiscard]] double log_message_reliability(double p, int retransmissions,
                                             double occurrences);

}  // namespace coeff::fault
