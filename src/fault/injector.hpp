// Per-transmission transient-fault injector.
//
// Plays the role of the Vector/Elektrobit fault-injection tooling in the
// paper's testbed: every transmission is independently corrupted with
// probability 1 - (1 - BER)^bits. Deterministic under a fixed seed; the
// verdict stream is independent per channel so dual-channel redundancy
// behaves correctly (both copies can, but rarely do, fail together).
#pragma once

#include <array>
#include <cstdint>

#include "fault/ber.hpp"
#include "flexray/bus.hpp"
#include "sim/random.hpp"

namespace coeff::fault {

class FaultInjector {
 public:
  FaultInjector(double ber, std::uint64_t seed);

  /// Verdict for one transmission (the flexray::CorruptionFn contract).
  bool corrupted(const flexray::TxRequest& req, flexray::ChannelId channel,
                 sim::Time start);

  /// Adapter usable directly as a Cluster corruption hook. The injector
  /// must outlive the returned callable.
  [[nodiscard]] flexray::CorruptionFn as_corruption_fn();

  [[nodiscard]] double ber() const { return ber_; }
  [[nodiscard]] std::int64_t verdicts() const { return verdicts_; }
  [[nodiscard]] std::int64_t faults() const { return faults_; }

 private:
  double ber_;
  std::array<sim::Rng, flexray::kNumChannels> rngs_;
  std::int64_t verdicts_ = 0;
  std::int64_t faults_ = 0;
};

}  // namespace coeff::fault
