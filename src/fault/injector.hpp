// Per-transmission transient-fault injector: the i.i.d. reference
// implementation of the FaultModel hierarchy (fault_model.hpp).
//
// Plays the role of the Vector/Elektrobit fault-injection tooling in the
// paper's testbed: every transmission is independently corrupted with
// probability 1 - (1 - BER)^bits. Deterministic under a fixed seed; the
// verdict stream is independent per channel so dual-channel redundancy
// behaves correctly (both copies can, but rarely do, fail together).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "fault/ber.hpp"
#include "fault/fault_model.hpp"
#include "flexray/bus.hpp"
#include "sim/random.hpp"

namespace coeff::fault {

class FaultInjector : public FaultModel {
 public:
  FaultInjector(double ber, std::uint64_t seed);

  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] double ber() const { return ber_.ber(); }

 protected:
  bool draw_verdict(const flexray::TxRequest& req, flexray::ChannelId channel,
                    sim::Time start) override;
  void apply_ber_step(double ber) override;

 private:
  BerCache ber_;  ///< per-size failure probability memo
  std::array<sim::Rng, flexray::kNumChannels> rngs_;
};

}  // namespace coeff::fault
