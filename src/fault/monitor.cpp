#include "fault/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace coeff::fault {

namespace {

void require(bool ok, const char* option, double value) {
  if (ok) return;
  char msg[128];
  std::snprintf(msg, sizeof msg, "ReliabilityMonitor: %s = %g invalid", option,
                value);
  throw std::invalid_argument(msg);
}

}  // namespace

ReliabilityMonitor::ReliabilityMonitor(double planned_ber,
                                       const ReliabilityMonitorOptions& opt)
    : planned_ber_(planned_ber), opt_(opt) {
  require(planned_ber >= 0.0 && planned_ber <= 1.0, "planned_ber",
          planned_ber);
  require(opt.window_cycles > 0, "window_cycles", opt.window_cycles);
  require(opt.trigger_factor > 1.0, "trigger_factor", opt.trigger_factor);
  require(opt.min_window_frames > 0, "min_window_frames",
          static_cast<double>(opt.min_window_frames));
  require(opt.cooldown_cycles >= 0, "cooldown_cycles", opt.cooldown_cycles);
  require(opt.exit_factor >= 1.0 && opt.exit_factor <= opt.trigger_factor,
          "exit_factor", opt.exit_factor);
  require(opt.min_dwell_cycles >= 0, "min_dwell_cycles",
          opt.min_dwell_cycles);
}

void ReliabilityMonitor::record_tx(flexray::ChannelId channel,
                                   std::int64_t payload_bits, bool corrupted) {
  const auto ch = static_cast<std::size_t>(channel);
  ++current_.frames[ch];
  ++totals_.frames[ch];
  current_.bits[ch] += payload_bits;
  totals_.bits[ch] += payload_bits;
  if (corrupted) {
    ++current_.corrupted[ch];
    ++totals_.corrupted[ch];
  }
}

bool ReliabilityMonitor::on_cycle_end() {
  window_.push_back(current_);
  current_ = Bucket{};
  if (window_.size() > static_cast<std::size_t>(opt_.window_cycles)) {
    const Bucket& old = window_.front();
    for (std::size_t ch = 0; ch < flexray::kNumChannels; ++ch) {
      totals_.frames[ch] -= old.frames[ch];
      totals_.corrupted[ch] -= old.corrupted[ch];
      totals_.bits[ch] -= old.bits[ch];
    }
    window_.pop_front();
  }
  // Latched hysteresis signal for the mode machine. Deliberately
  // ignores the re-plan cooldown: the mode protocol has its own dwell
  // damping, and hiding a live burst from it for cooldown_cycles would
  // delay shedding exactly when it is needed.
  if (window_frames() >= opt_.min_window_frames && planned_ber_ > 0.0) {
    drift_ratio_ = worst_channel_estimate() / planned_ber_;
  } else {
    drift_ratio_ = 1.0;
  }
  if (drift_ratio_ >= opt_.trigger_factor) {
    drift_active_ = true;
    calm_cycles_ = 0;
  } else if (drift_active_) {
    calm_cycles_ = drift_ratio_ < opt_.exit_factor ? calm_cycles_ + 1 : 0;
    if (calm_cycles_ > opt_.min_dwell_cycles) {
      drift_active_ = false;
      calm_cycles_ = 0;
    }
  }

  if (cooldown_remaining_ > 0) {
    --cooldown_remaining_;
    return false;
  }
  if (window_frames() < opt_.min_window_frames) return false;
  if (worst_channel_estimate() <= planned_ber_ * opt_.trigger_factor) {
    return false;
  }
  ++drift_detections_;
  return true;
}

void ReliabilityMonitor::note_replanned(double new_planned_ber) {
  require(new_planned_ber >= 0.0 && new_planned_ber <= 1.0, "new_planned_ber",
          new_planned_ber);
  planned_ber_ = new_planned_ber;
  cooldown_remaining_ = opt_.cooldown_cycles;
}

double ReliabilityMonitor::invert_frame_error_rate(double rate,
                                                   double mean_bits) {
  if (rate <= 0.0 || mean_bits <= 0.0) return 0.0;
  if (rate >= 1.0) return 1.0;
  // p = 1 - (1 - ber)^W  =>  ber = 1 - (1 - p)^(1/W), via log1p/expm1
  // so estimates from rare corruption events keep their precision.
  return -std::expm1(std::log1p(-rate) / mean_bits);
}

double ReliabilityMonitor::estimate(std::int64_t frames,
                                    std::int64_t corrupted,
                                    std::int64_t bits) const {
  if (frames <= 0) return 0.0;
  const double rate =
      static_cast<double>(corrupted) / static_cast<double>(frames);
  const double mean_bits =
      static_cast<double>(bits) / static_cast<double>(frames);
  return invert_frame_error_rate(rate, mean_bits);
}

double ReliabilityMonitor::estimated_ber() const {
  std::int64_t frames = 0, corrupted = 0, bits = 0;
  for (std::size_t ch = 0; ch < flexray::kNumChannels; ++ch) {
    frames += totals_.frames[ch];
    corrupted += totals_.corrupted[ch];
    bits += totals_.bits[ch];
  }
  return estimate(frames, corrupted, bits);
}

std::optional<double> ReliabilityMonitor::channel_estimate(
    flexray::ChannelId channel) const {
  const auto ch = static_cast<std::size_t>(channel);
  if (totals_.frames[ch] <= 0) return std::nullopt;
  return estimate(totals_.frames[ch], totals_.corrupted[ch], totals_.bits[ch]);
}

bool ReliabilityMonitor::starved(flexray::ChannelId channel) const {
  return totals_.frames[static_cast<std::size_t>(channel)] <= 0;
}

double ReliabilityMonitor::estimated_ber(flexray::ChannelId channel) const {
  return channel_estimate(channel).value_or(planned_ber_);
}

double ReliabilityMonitor::worst_channel_estimate() const {
  std::optional<double> worst;
  for (std::size_t ch = 0; ch < flexray::kNumChannels; ++ch) {
    const auto est = channel_estimate(static_cast<flexray::ChannelId>(ch));
    if (est && (!worst || *est > *worst)) worst = est;
  }
  return worst.value_or(planned_ber_);
}

double ReliabilityMonitor::observed_frame_error_rate() const {
  std::int64_t frames = 0, corrupted = 0;
  for (std::size_t ch = 0; ch < flexray::kNumChannels; ++ch) {
    frames += totals_.frames[ch];
    corrupted += totals_.corrupted[ch];
  }
  return frames == 0 ? 0.0
                     : static_cast<double>(corrupted) /
                           static_cast<double>(frames);
}

std::int64_t ReliabilityMonitor::window_frames() const {
  std::int64_t frames = 0;
  for (std::size_t ch = 0; ch < flexray::kNumChannels; ++ch) {
    frames += totals_.frames[ch];
  }
  return frames;
}

}  // namespace coeff::fault
