// Fault-model hierarchy: pluggable channel-corruption processes.
//
// The paper's Theorem-1 analysis (§III-E) assumes independent bit
// errors at a known, stationary BER. Real automotive EMI is neither:
// errors arrive in bursts and can couple into both channels of a
// dual-channel bus at once. Every model here implements the same
// verdict contract as the original i.i.d. injector (deterministic
// under a fixed seed, independent verdict stream per channel unless
// the model explicitly correlates them), so schedulers and experiments
// can swap the channel physics without touching planning code:
//
//  * FaultInjector (injector.hpp) — the i.i.d. reference model.
//  * GilbertElliottModel — per-channel two-state Markov chain
//    (good/bad) with a BER per state; bursts are visits to the bad
//    state.
//  * CommonModeModel — i.i.d. base BER, but a configurable fraction of
//    fault events is drawn from a slot-keyed common stream shared by
//    both channels, breaking the dual-channel independence assumption.
//
// All models support a scheduled BER step (environment drift at a known
// simulated time) so step-response experiments can measure how fast the
// ReliabilityMonitor reacts.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fault/ber.hpp"
#include "flexray/bus.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace coeff::fault {

enum class FaultModelKind : std::uint8_t {
  kIid,
  kGilbertElliott,
  kCommonMode,
  kIidCounter,
};

[[nodiscard]] const char* to_string(FaultModelKind k);
/// Accepts the CLI spellings "iid", "gilbert-elliott", "common-mode"
/// and "iid-counter".
[[nodiscard]] std::optional<FaultModelKind> parse_fault_model_kind(
    std::string_view name);

/// Base class: verdict accounting, the CorruptionFn adapter, and the
/// scheduled BER step. Subclasses implement draw_verdict (the physics)
/// and apply_ber_step (what "the environment got worse" means to them).
class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// Verdict for one transmission (the flexray::CorruptionFn contract).
  bool corrupted(const flexray::TxRequest& req, flexray::ChannelId channel,
                 sim::Time start);

  /// Adapter usable directly as a Cluster corruption hook. The model
  /// must outlive the returned callable.
  [[nodiscard]] flexray::CorruptionFn as_corruption_fn();

  /// Batched verdicts for the compiled cycle engine: one verdict per
  /// query, written to `out`. Implemented as a sequential walk over
  /// corrupted() in query order, so as long as the caller passes the
  /// queries in exact wire order the resulting verdict stream is
  /// *identical* to per-frame corrupted() calls — for every model,
  /// including the stateful Gilbert–Elliott chains. Counters and the
  /// scheduled BER step advance exactly as in the sequential path.
  void draw_batch(const flexray::VerdictQuery* queries, std::size_t n,
                  bool* out);

  /// Adapter usable as a Cluster batch-corruption hook. The model must
  /// outlive the returned callable.
  [[nodiscard]] flexray::BatchCorruptionFn as_batch_fn();

  /// One-line human-readable description (printed in run headers).
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Schedule an environment drift: every verdict with start >= `at`
  /// sees the model re-targeted to `ber` (interpretation is per model).
  /// May be called more than once to build a piecewise-constant drift
  /// profile (e.g. a burst: up at t0, back down at t1); steps are
  /// applied in time order regardless of scheduling order.
  void schedule_ber_step(sim::Time at, double ber);

  [[nodiscard]] std::int64_t verdicts() const { return verdicts_; }
  [[nodiscard]] std::int64_t faults() const { return faults_; }
  [[nodiscard]] std::int64_t channel_verdicts(flexray::ChannelId ch) const {
    return ch_verdicts_[static_cast<std::size_t>(ch)];
  }
  [[nodiscard]] std::int64_t channel_faults(flexray::ChannelId ch) const {
    return ch_faults_[static_cast<std::size_t>(ch)];
  }

 protected:
  [[nodiscard]] virtual bool draw_verdict(const flexray::TxRequest& req,
                                          flexray::ChannelId channel,
                                          sim::Time start) = 0;
  virtual void apply_ber_step(double ber) = 0;

 private:
  struct BerStep {
    sim::Time at;
    double ber;
  };
  /// Pending steps sorted by `at`, earliest at the back (applied and
  /// popped as simulated time passes them).
  std::vector<BerStep> pending_steps_;
  std::int64_t verdicts_ = 0;
  std::int64_t faults_ = 0;
  std::array<std::int64_t, flexray::kNumChannels> ch_verdicts_{};
  std::array<std::int64_t, flexray::kNumChannels> ch_faults_{};
};

/// Gilbert–Elliott channel parameters. Each channel runs its own chain
/// (independent streams); the chain advances one transition per verdict
/// on that channel, then draws the fault at the current state's BER.
struct GilbertElliottParams {
  double p_good_to_bad = 1e-3;  ///< burst-entry probability per verdict
  double p_bad_to_good = 0.1;   ///< burst-exit probability per verdict
  double ber_good = 1e-7;
  double ber_bad = 1e-4;
};

class GilbertElliottModel : public FaultModel {
 public:
  GilbertElliottModel(const GilbertElliottParams& params, std::uint64_t seed);

  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] const GilbertElliottParams& params() const { return params_; }
  [[nodiscard]] bool in_bad_state(flexray::ChannelId ch) const {
    return chains_[static_cast<std::size_t>(ch)].bad;
  }

 protected:
  bool draw_verdict(const flexray::TxRequest& req, flexray::ChannelId channel,
                    sim::Time start) override;
  /// A step raises the good-state BER to `ber` (and the bad-state BER
  /// too if it would otherwise fall below the good one).
  void apply_ber_step(double ber) override;

 private:
  GilbertElliottParams params_;
  BerCache good_p_;  ///< failure-probability memo at ber_good
  BerCache bad_p_;   ///< failure-probability memo at ber_bad
  struct Chain {
    sim::Rng rng;
    bool bad = false;
  };
  std::array<Chain, flexray::kNumChannels> chains_;
};

/// Common-mode model: fault events are i.i.d. at `ber`, but a fraction
/// `common_fraction` of them is decided by a slot-keyed stream shared
/// across channels — when such an event fires, it corrupts the copies
/// on *both* channels of that slot.
class CommonModeModel : public FaultModel {
 public:
  CommonModeModel(double ber, double common_fraction, std::uint64_t seed);

  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] double ber() const { return ber_.ber(); }
  [[nodiscard]] double common_fraction() const { return common_fraction_; }

 protected:
  bool draw_verdict(const flexray::TxRequest& req, flexray::ChannelId channel,
                    sim::Time start) override;
  void apply_ber_step(double ber) override;

 private:
  BerCache ber_;  ///< per-size failure probability memo
  double common_fraction_;
  std::uint64_t seed_;
  std::array<sim::Rng, flexray::kNumChannels> rngs_;
};

/// Counter-based i.i.d. model: same physics as FaultInjector, but every
/// verdict is a pure function of (seed, transmission start, frame id,
/// channel) through Philox4x32 — no sequential stream to replay. The
/// start time encodes cycle and slot, so the key space matches the
/// "seed/cycle/slot/channel" contract of the compiled engine and any
/// subset of verdicts can be drawn in any order (or in parallel)
/// without perturbing the rest. Statistically equivalent to the iid
/// model, not stream-identical to it (different generator).
class CounterIidModel : public FaultModel {
 public:
  CounterIidModel(double ber, std::uint64_t seed);

  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] double ber() const { return ber_.ber(); }

 protected:
  bool draw_verdict(const flexray::TxRequest& req, flexray::ChannelId channel,
                    sim::Time start) override;
  void apply_ber_step(double ber) override;

 private:
  BerCache ber_;  ///< per-size failure probability memo
  sim::Philox4x32 philox_;
};

/// Declarative model selection (experiment configs, CLI flags).
struct FaultModelConfig {
  FaultModelKind kind = FaultModelKind::kIid;
  /// BER of the iid model / base BER of the common-mode model. The
  /// Gilbert–Elliott model uses its own per-state BERs instead.
  double ber = 1e-7;
  GilbertElliottParams gilbert_elliott;
  double common_fraction = 0.2;  ///< common-mode only
};

[[nodiscard]] std::string describe(const FaultModelConfig& config);
[[nodiscard]] std::unique_ptr<FaultModel> make_fault_model(
    const FaultModelConfig& config, std::uint64_t seed);

/// Analytic (stationary, seed-free) failure-probability queries for a
/// fault-model configuration — the design-time mirror of the sampled
/// verdict streams above, consumed by analysis::ProbWcrt. Every query
/// is a closed form over the model parameters, memoized per frame size
/// through BerCache:
///
///  * iid / iid-counter: attempts are independent at p = 1-(1-BER)^W.
///  * gilbert-elliott: the per-channel chain is treated at its
///    stationary distribution pi = (p_bg, p_gb) / (p_gb + p_bg);
///    consecutive_* chains attempts through the exact two-state Markov
///    recursion (adjacent transitions — the maximally-bursty, i.e.
///    pessimistic, spacing of a message's retransmissions).
///  * common-mode: the marginal per-copy failure is p regardless of the
///    branch taken; a mirrored pair fails with f*p + (1-f)*p^2.
///
/// Methods are non-const only because BerCache memoizes lazily.
class AnalyticFailure {
 public:
  explicit AnalyticFailure(const FaultModelConfig& config);

  /// Marginal failure probability of a single attempt of `bits` bits.
  [[nodiscard]] double attempt(std::int64_t bits);

  /// Both channels of one mirrored slot occurrence fail.
  [[nodiscard]] double mirrored_pair(std::int64_t bits);

  /// `n` consecutive single-channel attempts all fail (exact Markov
  /// chaining for Gilbert–Elliott; p^n for the memoryless models).
  [[nodiscard]] double consecutive_failures(std::int64_t bits, int n);

  /// `n` consecutive mirrored rounds all fail (per-channel chains are
  /// independent under Gilbert–Elliott, correlated under common-mode).
  [[nodiscard]] double consecutive_pair_failures(std::int64_t bits, int n);

  /// Optimistic (independence) counterparts: attempt()^n and
  /// mirrored_pair()^n — the lower edge of the analytic envelope.
  [[nodiscard]] double independent_failures(std::int64_t bits, int n);
  [[nodiscard]] double independent_pair_failures(std::int64_t bits, int n);

  /// Stationary probability of the Gilbert–Elliott bad state (0 for the
  /// memoryless models).
  [[nodiscard]] double stationary_bad() const { return pi_bad_; }

  [[nodiscard]] const FaultModelConfig& config() const { return config_; }

 private:
  FaultModelConfig config_;
  BerCache base_;  ///< iid / iid-counter / common-mode at config.ber
  BerCache good_;  ///< Gilbert–Elliott good-state memo
  BerCache bad_;   ///< Gilbert–Elliott bad-state memo
  double pi_bad_ = 0.0;
};

}  // namespace coeff::fault
