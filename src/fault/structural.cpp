#include "fault/structural.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "sim/random.hpp"

namespace coeff::fault {

namespace {

void require(bool ok, const char* what) {
  if (!ok) {
    throw std::invalid_argument(std::string("StructuralFaultConfig: ") + what);
  }
}

/// Merge overlapping/adjacent [at, until) windows per key so the event
/// schedule never emits a crash for an already-crashed node (the trace
/// linter treats double-down as a causality violation).
template <typename Window>
std::vector<Window> merge_windows(std::vector<Window> windows,
                                  sim::Time Window::* start,
                                  sim::Time Window::* end) {
  std::sort(windows.begin(), windows.end(),
            [&](const Window& a, const Window& b) {
              return a.*start < b.*start;
            });
  std::vector<Window> merged;
  for (const Window& w : windows) {
    if (!merged.empty() && w.*start <= merged.back().*end) {
      merged.back().*end = std::max(merged.back().*end, w.*end);
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

}  // namespace

bool StructuralFaultConfig::empty() const {
  return crashes.empty() && blackouts.empty() && babbles.empty() &&
         drifts.empty() && stochastic_crashes.crashes_per_second <= 0.0 &&
         stochastic_blackouts.outages_per_second <= 0.0;
}

void StructuralFaultConfig::validate() const {
  for (const NodeCrashWindow& w : crashes) {
    require(w.node.value() >= 0, "crash node must be >= 0");
    require(w.restart > w.at, "crash window must end after it starts");
  }
  for (const ChannelBlackoutWindow& w : blackouts) {
    require(w.until > w.at, "blackout window must end after it starts");
  }
  for (const BabbleWindow& w : babbles) {
    require(w.babbler.value() >= 0, "babbler node must be >= 0");
    require(w.slot.value() >= 1, "babble slot must be >= 1");
    require(w.until > w.at, "babble window must end after it starts");
  }
  for (const DriftWindow& w : drifts) {
    require(w.node.value() >= 0, "drift node must be >= 0");
    require(w.until > w.at, "drift window must end after it starts");
    require(w.excess_ppm > 0.0, "drift excess_ppm must be > 0");
  }
  if (stochastic_crashes.crashes_per_second > 0.0) {
    require(stochastic_crashes.num_nodes > 0,
            "stochastic crashes need num_nodes > 0");
    require(stochastic_crashes.horizon > sim::Time::zero(),
            "stochastic crashes need a horizon");
    require(stochastic_crashes.mean_time_to_repair > sim::Time::zero(),
            "stochastic mean_time_to_repair must be > 0");
  }
  if (stochastic_blackouts.outages_per_second > 0.0) {
    require(stochastic_blackouts.horizon > sim::Time::zero(),
            "stochastic blackouts need a horizon");
    require(stochastic_blackouts.mean_outage > sim::Time::zero(),
            "stochastic mean_outage must be > 0");
  }
}

std::string describe(const StructuralFaultConfig& config) {
  if (config.empty()) return "structural: none";
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "structural: %zu crash, %zu blackout, %zu babble, %zu drift "
                "window(s)%s%s",
                config.crashes.size(), config.blackouts.size(),
                config.babbles.size(), config.drifts.size(),
                config.stochastic_crashes.crashes_per_second > 0.0
                    ? " + stochastic crashes"
                    : "",
                config.stochastic_blackouts.outages_per_second > 0.0
                    ? " + stochastic blackouts"
                    : "");
  return buf;
}

NodeFaultModel::NodeFaultModel(const StructuralFaultConfig& config,
                               std::uint64_t seed)
    : config_(config) {
  config_.validate();

  // Expand stochastic generators into explicit windows. Child streams
  // per node/channel keep components independent of each other's draw
  // counts (same discipline as the bit-fault models).
  sim::Rng root(seed ^ 0x5741554C54ULL);  // "FAULT"
  const StochasticCrashParams& sc = config_.stochastic_crashes;
  if (sc.crashes_per_second > 0.0) {
    for (int n = 0; n < sc.num_nodes; ++n) {
      sim::Rng rng = root.split();
      double t_s = 0.0;
      const double horizon_s = static_cast<double>(sc.horizon.ns()) * 1e-9;
      while (true) {
        t_s += rng.exponential(sc.crashes_per_second);
        if (t_s >= horizon_s) break;
        const double repair_s =
            rng.exponential(1e9 / static_cast<double>(
                                      sc.mean_time_to_repair.ns()));
        NodeCrashWindow w;
        w.node = units::NodeId{n};
        w.at = sim::nanos(static_cast<std::int64_t>(t_s * 1e9));
        w.restart =
            sim::nanos(static_cast<std::int64_t>((t_s + repair_s) * 1e9));
        config_.crashes.push_back(w);
        t_s += repair_s;
      }
    }
  }
  const StochasticBlackoutParams& sb = config_.stochastic_blackouts;
  if (sb.outages_per_second > 0.0) {
    for (int c = 0; c < flexray::kNumChannels; ++c) {
      sim::Rng rng = root.split();
      double t_s = 0.0;
      const double horizon_s = static_cast<double>(sb.horizon.ns()) * 1e-9;
      while (true) {
        t_s += rng.exponential(sb.outages_per_second);
        if (t_s >= horizon_s) break;
        const double outage_s = rng.exponential(
            1e9 / static_cast<double>(sb.mean_outage.ns()));
        ChannelBlackoutWindow w;
        w.channel = static_cast<flexray::ChannelId>(c);
        w.at = sim::nanos(static_cast<std::int64_t>(t_s * 1e9));
        w.until =
            sim::nanos(static_cast<std::int64_t>((t_s + outage_s) * 1e9));
        config_.blackouts.push_back(w);
        t_s += outage_s;
      }
    }
  }

  // Coalesce overlapping windows per node/channel, then flatten into
  // the transition schedule.
  int max_node = -1;
  for (const NodeCrashWindow& w : config_.crashes) {
    max_node = std::max(max_node, static_cast<int>(w.node.value()));
  }
  node_down_.assign(static_cast<std::size_t>(max_node + 1), 0);

  std::vector<NodeCrashWindow> merged_crashes;
  for (int n = 0; n <= max_node; ++n) {
    std::vector<NodeCrashWindow> per_node;
    for (const NodeCrashWindow& w : config_.crashes) {
      if (w.node.value() == n) per_node.push_back(w);
    }
    per_node = merge_windows(std::move(per_node), &NodeCrashWindow::at,
                             &NodeCrashWindow::restart);
    merged_crashes.insert(merged_crashes.end(), per_node.begin(),
                          per_node.end());
  }
  config_.crashes = std::move(merged_crashes);

  std::vector<ChannelBlackoutWindow> merged_blackouts;
  for (int c = 0; c < flexray::kNumChannels; ++c) {
    std::vector<ChannelBlackoutWindow> per_channel;
    for (const ChannelBlackoutWindow& w : config_.blackouts) {
      if (static_cast<int>(w.channel) == c) per_channel.push_back(w);
    }
    per_channel = merge_windows(std::move(per_channel),
                                &ChannelBlackoutWindow::at,
                                &ChannelBlackoutWindow::until);
    merged_blackouts.insert(merged_blackouts.end(), per_channel.begin(),
                            per_channel.end());
  }
  config_.blackouts = std::move(merged_blackouts);

  for (const NodeCrashWindow& w : config_.crashes) {
    flexray::TopologyEvent down;
    down.kind = flexray::TopologyEventKind::kNodeCrash;
    down.node = w.node;
    down.at = w.at;
    events_.push_back(down);
    if (w.restart < sim::Time::max()) {
      flexray::TopologyEvent up;
      up.kind = flexray::TopologyEventKind::kNodeRestart;
      up.node = w.node;
      up.at = w.restart;
      events_.push_back(up);
    }
  }
  for (const ChannelBlackoutWindow& w : config_.blackouts) {
    flexray::TopologyEvent down;
    down.kind = flexray::TopologyEventKind::kChannelDown;
    down.channel = w.channel;
    down.at = w.at;
    events_.push_back(down);
    if (w.until < sim::Time::max()) {
      flexray::TopologyEvent up;
      up.kind = flexray::TopologyEventKind::kChannelUp;
      up.channel = w.channel;
      up.at = w.until;
      events_.push_back(up);
    }
  }
  // Fire order: time, then channels before nodes (the contract in
  // fault_domain.hpp), then ascending index; ups before downs at the
  // same instant so back-to-back windows stay well-formed.
  auto rank = [](const flexray::TopologyEvent& e) {
    switch (e.kind) {
      case flexray::TopologyEventKind::kChannelUp:
        return 0;
      case flexray::TopologyEventKind::kChannelDown:
        return 1;
      case flexray::TopologyEventKind::kNodeRestart:
        return 2;
      case flexray::TopologyEventKind::kNodeCrash:
        return 3;
    }
    return 4;
  };
  std::stable_sort(events_.begin(), events_.end(),
                   [&](const flexray::TopologyEvent& a,
                       const flexray::TopologyEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     if (rank(a) != rank(b)) return rank(a) < rank(b);
                     const std::int64_t ia = a.node.value() >= 0
                                                 ? a.node.value()
                                                 : static_cast<std::int64_t>(
                                                       a.channel);
                     const std::int64_t ib = b.node.value() >= 0
                                                 ? b.node.value()
                                                 : static_cast<std::int64_t>(
                                                       b.channel);
                     return ia < ib;
                   });
}

std::vector<flexray::TopologyEvent> NodeFaultModel::poll(sim::Time at) {
  std::vector<flexray::TopologyEvent> fired;
  while (next_ < events_.size() && events_[next_].at <= at) {
    const flexray::TopologyEvent& ev = events_[next_];
    switch (ev.kind) {
      case flexray::TopologyEventKind::kNodeCrash:
        node_down_[static_cast<std::size_t>(ev.node.value())] = 1;
        break;
      case flexray::TopologyEventKind::kNodeRestart:
        node_down_[static_cast<std::size_t>(ev.node.value())] = 0;
        break;
      case flexray::TopologyEventKind::kChannelDown:
        channel_down_[static_cast<std::size_t>(ev.channel)] = true;
        break;
      case flexray::TopologyEventKind::kChannelUp:
        channel_down_[static_cast<std::size_t>(ev.channel)] = false;
        break;
    }
    fired.push_back(ev);
    ++next_;
  }
  return fired;
}

bool NodeFaultModel::node_down(units::NodeId node) const {
  const auto idx = static_cast<std::size_t>(node.value());
  return node.value() >= 0 && idx < node_down_.size() &&
         node_down_[idx] != 0;
}

bool NodeFaultModel::channel_down(flexray::ChannelId channel) const {
  return channel_down_[static_cast<std::size_t>(channel)];
}

bool NodeFaultModel::slot_jammed(units::SlotId slot, flexray::ChannelId channel,
                                 sim::Time at) const {
  for (const BabbleWindow& w : config_.babbles) {
    if (w.slot != slot) continue;
    if (w.channel && *w.channel != channel) continue;
    if (at >= w.at && at < w.until) return true;
  }
  return false;
}

bool NodeFaultModel::node_out_of_sync(units::NodeId node, sim::Time at) const {
  for (const DriftWindow& w : config_.drifts) {
    if (w.node == node && at >= w.at && at < w.until) return true;
  }
  return false;
}

bool NodeFaultModel::wire_faults_possible(sim::Time begin, sim::Time end) const {
  for (const BabbleWindow& w : config_.babbles) {
    if (w.at < end && begin < w.until) return true;
  }
  for (const DriftWindow& w : config_.drifts) {
    if (w.at < end && begin < w.until) return true;
  }
  return false;
}

std::string NodeFaultModel::describe() const {
  return fault::describe(config_) + " (" + std::to_string(events_.size()) +
         " transitions)";
}

SilentNodeDetector::SilentNodeDetector(int num_nodes,
                                       int silent_cycle_threshold)
    : entries_(static_cast<std::size_t>(std::max(num_nodes, 0))),
      threshold_(silent_cycle_threshold) {
  if (num_nodes <= 0) {
    throw std::invalid_argument("SilentNodeDetector: num_nodes must be > 0");
  }
  if (silent_cycle_threshold <= 0) {
    throw std::invalid_argument("SilentNodeDetector: threshold must be > 0");
  }
}

void SilentNodeDetector::note_expected(units::NodeId node) {
  const auto idx = static_cast<std::size_t>(node.value());
  if (idx < entries_.size()) entries_[idx].expected = true;
}

void SilentNodeDetector::note_activity(units::NodeId node) {
  const auto idx = static_cast<std::size_t>(node.value());
  if (idx < entries_.size()) entries_[idx].seen = true;
}

std::vector<units::NodeId> SilentNodeDetector::on_cycle_end() {
  std::vector<units::NodeId> newly_silent;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    if (e.seen) {
      e.silent_cycles = 0;
      e.flagged = false;  // recovered: transmitting again
    } else if (e.expected) {
      ++e.silent_cycles;
      if (e.silent_cycles >= threshold_ && !e.flagged) {
        e.flagged = true;
        ++detections_;
        newly_silent.push_back(units::NodeId{static_cast<std::int32_t>(i)});
      }
    }
    e.expected = false;
    e.seen = false;
  }
  return newly_silent;
}

bool SilentNodeDetector::silent(units::NodeId node) const {
  const auto idx = static_cast<std::size_t>(node.value());
  return idx < entries_.size() && entries_[idx].flagged;
}

}  // namespace coeff::fault
