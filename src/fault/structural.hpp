// Structural fault models: node- and channel-level fault injection.
//
// PR 2's FaultModel hierarchy corrupts individual frames; this layer
// injects the fault classes FlexRay's dual-channel redundancy and the
// paper's IEC 61508 target actually exist to survive:
//
//  * ECU crash/restart intervals — the node stops producing, loses its
//    CHI contents, and reintegrates at a cycle boundary after repair.
//  * Channel blackout windows — one channel goes dark (harness short,
//    star-coupler failure); frames clocked into it are lost, not
//    corrupted: receivers observe silence.
//  * Babbling-idiot slots — a faulty controller jams a static slot, so
//    every frame sent there collides and arrives corrupted.
//  * Clock-drift excursions — a node's oscillator runs far beyond the
//    sync budget; its frames miss the action point and are unreceivable
//    (see flexray::DriftExcursion for the sync-algorithm view).
//
// fault::NodeFaultModel implements flexray::StructuralFaultProvider
// (the interface lives in flexray/ because coeff_fault links against
// coeff_flexray, not vice versa). Windows can be scheduled explicitly
// or generated stochastically (seeded, exponential interarrivals), and
// the whole transition schedule is precomputed at construction — the
// model is deterministic per seed and share-nothing across sweep
// workers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "flexray/config.hpp"
#include "flexray/fault_domain.hpp"
#include "sim/time.hpp"
#include "units/units.hpp"

namespace coeff::fault {

/// ECU down from `at` until `restart` (Time::max() = never repaired).
struct NodeCrashWindow {
  units::NodeId node{0};
  sim::Time at;
  sim::Time restart = sim::Time::max();
};

/// Channel dark over [at, until).
struct ChannelBlackoutWindow {
  flexray::ChannelId channel = flexray::ChannelId::kA;
  sim::Time at;
  sim::Time until = sim::Time::max();
};

/// Babbling idiot `babbler` jams static slot `slot` over [at, until).
/// `channel` empty = both channels (the babbler drives both branches).
struct BabbleWindow {
  units::NodeId babbler{0};
  units::SlotId slot{0};
  std::optional<flexray::ChannelId> channel;
  sim::Time at;
  sim::Time until = sim::Time::max();
};

/// Node `node` drifted beyond the sync bound over [at, until); its
/// transmissions are unreceivable. `excess_ppm` documents the severity
/// (and feeds flexray::DriftExcursion when the sync layer is co-run).
struct DriftWindow {
  units::NodeId node{0};
  sim::Time at;
  sim::Time until = sim::Time::max();
  double excess_ppm = 1000.0;
};

/// Seeded random crash/outage generation over a horizon (exponential
/// interarrivals, exponential repair times). rate <= 0 disables.
struct StochasticCrashParams {
  double crashes_per_second = 0.0;  ///< per node
  sim::Time mean_time_to_repair = sim::millis(50);
  sim::Time horizon;
  int num_nodes = 0;
};

struct StochasticBlackoutParams {
  double outages_per_second = 0.0;  ///< per channel
  sim::Time mean_outage = sim::millis(20);
  sim::Time horizon;
};

struct StructuralFaultConfig {
  std::vector<NodeCrashWindow> crashes;
  std::vector<ChannelBlackoutWindow> blackouts;
  std::vector<BabbleWindow> babbles;
  std::vector<DriftWindow> drifts;
  StochasticCrashParams stochastic_crashes;
  StochasticBlackoutParams stochastic_blackouts;

  /// True when no fault source is configured at all.
  [[nodiscard]] bool empty() const;
  /// Throws std::invalid_argument naming the first violated constraint
  /// (negative ids, empty/backwards windows, bad stochastic params).
  void validate() const;
};

[[nodiscard]] std::string describe(const StructuralFaultConfig& config);

/// The seeded, deterministic structural fault injector. All state
/// transitions are precomputed at construction; poll() replays them.
class NodeFaultModel : public flexray::StructuralFaultProvider {
 public:
  NodeFaultModel(const StructuralFaultConfig& config, std::uint64_t seed);

  std::vector<flexray::TopologyEvent> poll(sim::Time at) override;
  [[nodiscard]] bool node_down(units::NodeId node) const override;
  [[nodiscard]] bool channel_down(flexray::ChannelId channel) const override;
  [[nodiscard]] bool slot_jammed(units::SlotId slot, flexray::ChannelId channel,
                                 sim::Time at) const override;
  [[nodiscard]] bool node_out_of_sync(units::NodeId node,
                                      sim::Time at) const override;
  /// Overlap test over the precomputed babble/drift windows: exact, so
  /// the compiled cycle walk only pays the interpreted fallback in
  /// cycles a wire-level fault can actually touch.
  [[nodiscard]] bool wire_faults_possible(sim::Time begin,
                                          sim::Time end) const override;

  /// The full precomputed transition schedule, sorted by fire time
  /// (introspection: tests, run headers).
  [[nodiscard]] const std::vector<flexray::TopologyEvent>& schedule() const {
    return events_;
  }
  [[nodiscard]] const StructuralFaultConfig& config() const { return config_; }
  [[nodiscard]] std::string describe() const;

 private:
  StructuralFaultConfig config_;  ///< with stochastic windows expanded
  std::vector<flexray::TopologyEvent> events_;
  std::size_t next_ = 0;
  std::vector<char> node_down_;  ///< indexed by node id
  std::array<bool, flexray::kNumChannels> channel_down_{};
};

/// Silent-node detection: the ReliabilityMonitor extension for fail-
/// silent faults. A BER monitor learns from verdicts, but a crashed
/// node produces *no* verdicts — its failure signature is scheduled
/// wire time passing unused. The detector compares, per cycle, which
/// nodes were expected on the wire against which were observed; a node
/// expected but unseen for `threshold` consecutive cycles is flagged
/// (once) so the scheduler can re-plan its slots as stealable slack.
/// Deterministic and purely observational, like the BER monitor.
class SilentNodeDetector {
 public:
  explicit SilentNodeDetector(int num_nodes, int silent_cycle_threshold = 2);

  /// This cycle's schedule gives `node` wire time.
  void note_expected(units::NodeId node);
  /// A frame from `node` was observed on some channel this cycle.
  void note_activity(units::NodeId node);

  /// Roll the cycle. Returns the nodes that just crossed the silence
  /// threshold (flagged exactly once until they recover).
  [[nodiscard]] std::vector<units::NodeId> on_cycle_end();

  /// A previously-flagged node transmitted again (note_activity clears
  /// the flag); query current state.
  [[nodiscard]] bool silent(units::NodeId node) const;
  [[nodiscard]] std::int64_t detections() const { return detections_; }

 private:
  struct Entry {
    bool expected = false;
    bool seen = false;
    int silent_cycles = 0;
    bool flagged = false;
  };
  std::vector<Entry> entries_;
  int threshold_;
  std::int64_t detections_ = 0;
};

}  // namespace coeff::fault
