#include "fault/reliability.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "fault/ber.hpp"

namespace coeff::fault {

double RetransmissionPlan::reliability() const {
  return std::exp(log_reliability);
}

int RetransmissionPlan::total_copies() const {
  int n = 0;
  for (int k : copies) n += k;
  return n;
}

int RetransmissionPlan::max_copies() const {
  int n = 0;
  for (int k : copies) n = std::max(n, k);
  return n;
}

double log_set_reliability(const net::MessageSet& set,
                           const std::vector<int>& copies, double ber,
                           sim::Time u) {
  double log_r = 0.0;
  const auto& msgs = set.messages();
  for (std::size_t z = 0; z < msgs.size(); ++z) {
    const double p = frame_failure_probability(msgs[z].size_bits, ber);
    const int k = z < copies.size() ? copies[z] : 0;
    const double occurrences = u.as_seconds() / msgs[z].period.as_seconds();
    log_r += log_message_reliability(p, k, occurrences);
  }
  return log_r;
}

double set_reliability(const net::MessageSet& set,
                       const std::vector<int>& copies, double ber,
                       sim::Time u) {
  return std::exp(log_set_reliability(set, copies, ber, u));
}

namespace {

[[noreturn]] void bad_option(const char* option, double value,
                             const char* constraint) {
  char msg[160];
  std::snprintf(msg, sizeof msg, "solver: SolverOptions.%s = %g %s", option,
                value, constraint);
  throw std::invalid_argument(msg);
}

void check_options(const SolverOptions& opt) {
  // Negated comparisons so NaN is rejected too; each message names the
  // offending option and echoes its value.
  if (!(opt.ber >= 0.0 && opt.ber <= 1.0)) {
    bad_option("ber", opt.ber, "must be in [0, 1]");
  }
  if (!(opt.rho >= 0.0 && opt.rho < 1.0)) {
    bad_option("rho", opt.rho, "must be in [0, 1)");
  }
  if (opt.u <= sim::Time::zero()) {
    bad_option("u", opt.u.as_seconds(), "seconds: must be positive");
  }
  if (opt.max_copies_per_message < 0) {
    bad_option("max_copies_per_message", opt.max_copies_per_message,
               "must be >= 0");
  }
}

}  // namespace

RetransmissionPlan solve_differentiated(const net::MessageSet& set,
                                        const SolverOptions& opt) {
  check_options(opt);
  const auto& msgs = set.messages();
  const std::size_t n = msgs.size();

  std::vector<double> p(n);         // per-message failure probability
  std::vector<double> occ(n);       // u / T_z
  std::vector<double> load(n);      // W_z / T_z, bits per second
  for (std::size_t z = 0; z < n; ++z) {
    p[z] = frame_failure_probability(msgs[z].size_bits, opt.ber);
    occ[z] = opt.u.as_seconds() / msgs[z].period.as_seconds();
    load[z] = static_cast<double>(msgs[z].size_bits) /
              msgs[z].period.as_seconds();
  }

  RetransmissionPlan plan;
  plan.copies.assign(n, 0);
  const double target = opt.rho > 0.0 ? std::log(opt.rho) : -1e300;
  plan.target_log_reliability = opt.rho > 0.0 ? target : 0.0;

  std::vector<double> term(n);  // current log term per message
  double log_r = 0.0;
  for (std::size_t z = 0; z < n; ++z) {
    term[z] = log_message_reliability(p[z], 0, occ[z]);
    log_r += term[z];
  }

  while (log_r < target) {
    // Pick the increment with the best reliability gain per added load.
    double best_ratio = -1.0;
    std::size_t best = n;
    double best_new_term = 0.0;
    for (std::size_t z = 0; z < n; ++z) {
      if (plan.copies[z] >= opt.max_copies_per_message) continue;
      if (p[z] <= 0.0) continue;  // already perfect, no gain possible
      const double new_term =
          log_message_reliability(p[z], plan.copies[z] + 1, occ[z]);
      const double gain = new_term - term[z];
      if (gain <= 0.0) continue;
      const double ratio = gain / load[z];
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = z;
        best_new_term = new_term;
      }
    }
    if (best == n) {
      if (opt.throw_on_infeasible) {
        throw std::runtime_error(
            "solve_differentiated: reliability goal unreachable within the "
            "per-message copy bound");
      }
      // Graceful degradation: every message is at its bound (or gains
      // nothing); hand back the best achievable plan, flagged.
      plan.degraded = true;
      break;
    }
    log_r += best_new_term - term[best];
    term[best] = best_new_term;
    ++plan.copies[best];
    plan.added_load_bits_per_second += load[best];
  }

  plan.log_reliability = log_r;
  return plan;
}

RetransmissionPlan solve_uniform(const net::MessageSet& set,
                                 const SolverOptions& opt) {
  check_options(opt);
  const std::size_t n = set.size();
  const double target = opt.rho > 0.0 ? std::log(opt.rho) : -1e300;
  for (int k = 0; k <= opt.max_copies_per_message; ++k) {
    std::vector<int> copies(n, k);
    const double log_r = log_set_reliability(set, copies, opt.ber, opt.u);
    const bool last = k == opt.max_copies_per_message;
    if (log_r >= target || (last && !opt.throw_on_infeasible)) {
      RetransmissionPlan plan;
      plan.copies = std::move(copies);
      plan.log_reliability = log_r;
      plan.target_log_reliability = opt.rho > 0.0 ? target : 0.0;
      plan.degraded = log_r < target;
      for (const auto& m : set.messages()) {
        plan.added_load_bits_per_second +=
            k * static_cast<double>(m.size_bits) / m.period.as_seconds();
      }
      return plan;
    }
  }
  throw std::runtime_error(
      "solve_uniform: reliability goal unreachable within the copy bound");
}

int solve_uniform_rounds(const net::MessageSet& set, const SolverOptions& opt,
                         int copies_per_round) {
  check_options(opt);
  if (copies_per_round < 1) {
    throw std::invalid_argument("solve_uniform_rounds: need >= 1 copy/round");
  }
  const double target = opt.rho > 0.0 ? std::log(opt.rho) : -1e300;
  int last_rounds = 1;
  for (int rounds = 1;
       (rounds - 1) * copies_per_round <= opt.max_copies_per_message;
       ++rounds) {
    // k = total copies minus the first transmission.
    std::vector<int> copies(set.size(), rounds * copies_per_round - 1);
    if (log_set_reliability(set, copies, opt.ber, opt.u) >= target) {
      return rounds;
    }
    last_rounds = rounds;
  }
  if (!opt.throw_on_infeasible) return last_rounds;  // best within the bound
  throw std::runtime_error(
      "solve_uniform_rounds: reliability goal unreachable within the copy "
      "bound");
}

}  // namespace coeff::fault
