#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace coeff::runtime {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(threads, 1);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return jobs_.empty() && active_ == 0; });
}

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(jobs_.front());
      jobs_.pop_front();
      ++active_;
    }
    job();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace coeff::runtime
