// A minimal fixed-size worker pool for share-nothing job batches.
//
// Deliberately small: jobs are opaque closures, scheduling is FIFO, and
// the only synchronization points are submit() and wait_idle(). Callers
// that need deterministic output must make jobs write to disjoint,
// pre-allocated slots (see core::SweepRunner) — the pool itself makes no
// ordering promise beyond "every submitted job runs exactly once".
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace coeff::runtime {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains outstanding jobs, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job. Safe from any thread, including pool workers.
  void submit(std::function<void()> job);

  /// Block until the queue is empty and every worker is idle. Jobs
  /// submitted while waiting extend the wait.
  void wait_idle();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// The pool size the host reports, never less than 1.
  [[nodiscard]] static std::size_t hardware_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // signals workers: job or stop
  std::condition_variable idle_cv_;  // signals wait_idle: progress made
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace coeff::runtime
