// The seam between the protocol engine and a scheduler.
//
// The Cluster walks the cycle/slot/minislot structure and asks the
// installed TransmissionPolicy what to put in each slot; the policy
// learns what happened through the on_* callbacks. Both CoEfficient and
// the FSPEC baseline are implementations of this interface (src/core).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "flexray/bus.hpp"
#include "flexray/fault_domain.hpp"
#include "units/units.hpp"

namespace coeff::flexray {

/// Sentinel for dynamic_next_frame: the rest of the dynamic segment is
/// certainly idle on the queried channel.
inline constexpr std::int64_t kNoDynamicFrame =
    std::numeric_limits<std::int64_t>::max();

class TransmissionPolicy {
 public:
  virtual ~TransmissionPolicy() = default;

  /// Receives the honoured static-slot requests of decide_static_chunk,
  /// in the interpreted call order (slot-major, channel A before B).
  class StaticChunkSink {
   public:
    virtual ~StaticChunkSink() = default;
    virtual void stage(units::SlotId slot, ChannelId channel,
                       const TxRequest& request) = 0;
  };

  /// Decide every static slot in [slot_begin, slot_end] (both channels)
  /// and stage the honoured requests into `sink`. The compiled cycle
  /// walk calls this once per event-free run of slots; an override may
  /// batch or memoize its internal lookups, but MUST stage exactly the
  /// requests the equivalent per-slot static_slot calls would, in the
  /// same order, with the same side effects. Default: that per-slot
  /// loop itself.
  virtual void decide_static_chunk(units::CycleIndex cycle,
                                   std::int64_t slot_begin,
                                   std::int64_t slot_end,
                                   StaticChunkSink& sink) {
    for (std::int64_t s = slot_begin; s <= slot_end; ++s) {
      for (const ChannelId channel : {ChannelId::kA, ChannelId::kB}) {
        if (auto req = static_slot(channel, cycle, units::SlotId{s})) {
          sink.stage(units::SlotId{s}, channel, *req);
        }
      }
    }
  }

  /// Opt-in to the Cluster's compiled cycle walk. A policy may return
  /// true only when its slot decisions never read state written by
  /// same-cycle on_tx_complete calls (DESIGN.md §12): the compiled walk
  /// phases a run of static-slot decisions ahead of their outcome
  /// commits and batches the fault verdicts in between. Default: false
  /// (the Cluster then uses the interpreted slot-by-slot walk whatever
  /// the engine mode).
  [[nodiscard]] virtual bool compiled_capable() const { return false; }

  /// Smallest dynamic frame id >= `min_frame` for which dynamic_slot
  /// might return a transmission on `channel` this cycle, assuming no
  /// further arrivals; kNoDynamicFrame when the rest of the segment is
  /// certainly idle. The compiled walk uses this to skip idle minislots
  /// in one jump; every skipped call must be side-effect-free and would
  /// have returned nullopt. The conservative default (min_frame itself)
  /// disables skipping.
  [[nodiscard]] virtual std::int64_t dynamic_next_frame(
      ChannelId channel, std::int64_t min_frame) const {
    (void)channel;
    return min_frame;
  }

  /// A topology state change (node crash/restart, channel down/up) was
  /// applied at the boundary of `cycle`. Delivered after on_cycle_start
  /// for that cycle. Default: ignore (policies predating the structural
  /// fault domain keep compiling and simply ride out the fault).
  virtual void on_topology_event(const TopologyEvent& event,
                                 units::CycleIndex cycle, sim::Time at) {
    (void)event;
    (void)cycle;
    (void)at;
  }

  /// Called once at the start of every communication cycle, before any
  /// slot of that cycle is processed.
  virtual void on_cycle_start(units::CycleIndex cycle, sim::Time at) = 0;

  /// Content for static slot `slot` (1-based) of `cycle` on `channel`.
  /// Return std::nullopt to leave the slot idle on that channel. The
  /// returned frame_id must equal `slot` and the payload must fit the
  /// slot; the cluster enforces both.
  virtual std::optional<TxRequest> static_slot(ChannelId channel,
                                               units::CycleIndex cycle,
                                               units::SlotId slot) = 0;

  /// Content for the dynamic slot with counter value `slot_counter` on
  /// `channel`. `minislot` is the 0-based minislot the slot starts at and
  /// `minislots_remaining` how many minislots are left in the segment
  /// (including this one). Return std::nullopt to let one minislot pass.
  /// A transmission is honoured only if it fits the remaining minislots
  /// and starts no later than pLatestTx; otherwise the cluster treats the
  /// slot as declined and reports on_dynamic_declined.
  virtual std::optional<TxRequest> dynamic_slot(
      ChannelId channel, units::CycleIndex cycle, units::SlotId slot_counter,
      units::MinislotId minislot, std::int64_t minislots_remaining) = 0;

  /// Result of every honoured transmission (static and dynamic).
  virtual void on_tx_complete(const TxOutcome& outcome) = 0;

  /// A dynamic TxRequest could not be honoured (too large for the
  /// remaining minislots or past pLatestTx). The request stays with the
  /// policy, which may retry in a later cycle.
  virtual void on_dynamic_declined(ChannelId channel, units::CycleIndex cycle,
                                   const TxRequest& request) = 0;

  /// Called at the end of every communication cycle.
  virtual void on_cycle_end(units::CycleIndex cycle, sim::Time at) = 0;
};

}  // namespace coeff::flexray
