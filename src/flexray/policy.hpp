// The seam between the protocol engine and a scheduler.
//
// The Cluster walks the cycle/slot/minislot structure and asks the
// installed TransmissionPolicy what to put in each slot; the policy
// learns what happened through the on_* callbacks. Both CoEfficient and
// the FSPEC baseline are implementations of this interface (src/core).
#pragma once

#include <optional>

#include "flexray/bus.hpp"
#include "flexray/fault_domain.hpp"
#include "units/units.hpp"

namespace coeff::flexray {

class TransmissionPolicy {
 public:
  virtual ~TransmissionPolicy() = default;

  /// A topology state change (node crash/restart, channel down/up) was
  /// applied at the boundary of `cycle`. Delivered after on_cycle_start
  /// for that cycle. Default: ignore (policies predating the structural
  /// fault domain keep compiling and simply ride out the fault).
  virtual void on_topology_event(const TopologyEvent& event,
                                 units::CycleIndex cycle, sim::Time at) {
    (void)event;
    (void)cycle;
    (void)at;
  }

  /// Called once at the start of every communication cycle, before any
  /// slot of that cycle is processed.
  virtual void on_cycle_start(units::CycleIndex cycle, sim::Time at) = 0;

  /// Content for static slot `slot` (1-based) of `cycle` on `channel`.
  /// Return std::nullopt to leave the slot idle on that channel. The
  /// returned frame_id must equal `slot` and the payload must fit the
  /// slot; the cluster enforces both.
  virtual std::optional<TxRequest> static_slot(ChannelId channel,
                                               units::CycleIndex cycle,
                                               units::SlotId slot) = 0;

  /// Content for the dynamic slot with counter value `slot_counter` on
  /// `channel`. `minislot` is the 0-based minislot the slot starts at and
  /// `minislots_remaining` how many minislots are left in the segment
  /// (including this one). Return std::nullopt to let one minislot pass.
  /// A transmission is honoured only if it fits the remaining minislots
  /// and starts no later than pLatestTx; otherwise the cluster treats the
  /// slot as declined and reports on_dynamic_declined.
  virtual std::optional<TxRequest> dynamic_slot(
      ChannelId channel, units::CycleIndex cycle, units::SlotId slot_counter,
      units::MinislotId minislot, std::int64_t minislots_remaining) = 0;

  /// Result of every honoured transmission (static and dynamic).
  virtual void on_tx_complete(const TxOutcome& outcome) = 0;

  /// A dynamic TxRequest could not be honoured (too large for the
  /// remaining minislots or past pLatestTx). The request stays with the
  /// policy, which may retry in a later cycle.
  virtual void on_dynamic_declined(ChannelId channel, units::CycleIndex cycle,
                                   const TxRequest& request) = 0;

  /// Called at the end of every communication cycle.
  virtual void on_cycle_end(units::CycleIndex cycle, sim::Time at) = 0;
};

}  // namespace coeff::flexray
