// Cluster topology and propagation-delay budgeting (§II-B).
//
// A FlexRay cluster may be wired as a passive bus, an active star, or a
// hybrid. Topology does not change the scheduling logic, but it sets
// the worst-case propagation delay between any two nodes — and the
// protocol only works if that delay fits inside the action-point
// offsets the configuration reserves at the start of each slot. This
// module computes per-pair delays and validates a configuration's
// delay budget, the check a real integrator runs before signing off a
// harness design.
#pragma once

#include <cstdint>
#include <vector>

#include "flexray/config.hpp"
#include "sim/time.hpp"

namespace coeff::flexray {

enum class TopologyKind : std::uint8_t { kBus, kStar, kHybrid };

[[nodiscard]] const char* to_string(TopologyKind k);

/// Signal propagation speed in a twisted-pair harness, ~0.2 m/ns.
inline constexpr double kMetersPerNanosecond = 0.2;

/// An active star coupler re-times the signal and adds a fixed delay
/// (FlexRay EPL: at most 0.25 us per star, at most 2 stars per path).
inline constexpr sim::Time kStarCouplerDelay = sim::nanos(250);

class Topology {
 public:
  /// Passive bus: nodes at the given positions (meters) along one cable.
  static Topology bus(std::vector<double> positions_m);

  /// Active star: every node connects to one coupler by a stub of the
  /// given length (meters).
  static Topology star(std::vector<double> stub_lengths_m);

  /// Hybrid: two stars joined by a trunk; `star_of[i]` (0 or 1) says
  /// which coupler node i hangs off, `stub_lengths_m[i]` its stub.
  static Topology hybrid(std::vector<int> star_of,
                         std::vector<double> stub_lengths_m,
                         double trunk_length_m);

  [[nodiscard]] TopologyKind kind() const { return kind_; }
  [[nodiscard]] std::size_t node_count() const { return stub_or_pos_.size(); }

  /// One-way propagation delay from node `a` to node `b` (0 for a==b).
  [[nodiscard]] sim::Time propagation_delay(std::size_t a,
                                            std::size_t b) const;

  /// Worst-case delay over all ordered pairs.
  [[nodiscard]] sim::Time worst_case_delay() const;

  /// The configuration's delay budget: the minislot action-point offset
  /// must cover the worst-case propagation delay, or receivers sample
  /// the wire before the frame arrives. Returns true when the budget
  /// holds.
  [[nodiscard]] bool fits_budget(const ClusterConfig& cfg) const;

 private:
  Topology() = default;

  TopologyKind kind_ = TopologyKind::kBus;
  std::vector<double> stub_or_pos_;  ///< per-node position or stub length
  std::vector<int> star_of_;         ///< hybrid only
  double trunk_length_m_ = 0.0;      ///< hybrid only
};

}  // namespace coeff::flexray
