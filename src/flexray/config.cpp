#include "flexray/config.hpp"

#include <cstdio>
#include <stdexcept>

namespace coeff::flexray {

namespace {
void require(bool ok, const char* what) {
  if (!ok) {
    throw std::invalid_argument(std::string("ClusterConfig: ") + what);
  }
}
}  // namespace

sim::Time ClusterConfig::transmission_time(std::int64_t bits) const {
  // ceil(bits / rate) in nanoseconds: bits * 1e9 / rate, rounded up.
  const std::int64_t ns =
      (bits * 1'000'000'000 + bus_bit_rate - 1) / bus_bit_rate;
  return sim::nanos(ns);
}

std::int64_t ClusterConfig::static_slot_capacity_bits() const {
  return static_slot_duration().ns() * bus_bit_rate / 1'000'000'000;
}

std::int64_t ClusterConfig::minislots_for(std::int64_t bits) const {
  const sim::Time tx = transmission_time(bits);
  const units::Macroticks used_mt = units::ceil_macroticks(tx, gd_macrotick);
  // Whole minislots covering the wire time, rounded up to the grid.
  const std::int64_t used =
      (used_mt.count() + gd_minislot.count() - 1) / gd_minislot.count();
  return used + gd_dynamic_slot_idle_phase;
}

void ClusterConfig::validate() const {
  require(gd_macrotick > sim::Time::zero(), "gdMacrotick must be positive");
  require(g_macro_per_cycle > units::Macroticks::zero(),
          "gMacroPerCycle must be positive");
  require(g_number_of_static_slots > 0,
          "gNumberOfStaticSlots must be positive");
  require(gd_static_slot > units::Macroticks::zero(),
          "gdStaticSlot must be positive");
  require(g_number_of_minislots >= 0,
          "gNumberOfMinislots must be non-negative");
  require(gd_minislot > units::Macroticks::zero(),
          "gdMinislot must be positive");
  require(gd_dynamic_slot_idle_phase >= 0,
          "gdDynamicSlotIdlePhase must be non-negative");
  require(gd_minislot_action_point_offset >= units::Macroticks::zero(),
          "gdMinislotActionPointOffset must be non-negative");
  require(gd_minislot_action_point_offset < gd_minislot,
          "gdMinislotActionPointOffset must fit inside one minislot");
  require(gd_symbol_window >= units::Macroticks::zero(),
          "gdSymbolWindow must be non-negative");
  require(bus_bit_rate > 0, "bus bit rate must be positive");
  require(max_payload_bits > 0, "max payload must be positive");
  require(num_nodes > 0, "cluster needs at least one node");
  require(p_latest_tx.value() >= 0, "pLatestTx must be non-negative");
  require(latest_tx_minislot() <= units::MinislotId{g_number_of_minislots},
          "pLatestTx must not exceed gNumberOfMinislots");
  require(network_idle_time() >= sim::Time::zero(),
          "segments exceed the communication cycle");
  // A static slot must be able to carry a maximum-size frame; otherwise
  // the schedule table cannot be populated safely.
  require(static_slot_capacity_bits() > 0, "static slot carries zero bits");
}

ClusterConfig ClusterConfig::static_suite(std::int64_t num_static_slots) {
  ClusterConfig cfg;
  cfg.g_macro_per_cycle = units::Macroticks{5000};  // 5 ms at 1 us macroticks
  cfg.g_number_of_static_slots = num_static_slots;
  cfg.gd_static_slot = units::Macroticks{40};
  cfg.gd_minislot = units::Macroticks{8};
  // Give the dynamic segment all macroticks the static segment leaves.
  const units::Macroticks remaining =
      cfg.g_macro_per_cycle - num_static_slots * cfg.gd_static_slot;
  if (remaining < units::Macroticks::zero()) {
    throw std::invalid_argument(
        "ClusterConfig::static_suite: static segment exceeds the cycle");
  }
  cfg.g_number_of_minislots = remaining / cfg.gd_minislot;
  cfg.validate();
  return cfg;
}

ClusterConfig ClusterConfig::dynamic_suite(std::int64_t minislots) {
  ClusterConfig cfg;
  cfg.g_macro_per_cycle = units::Macroticks{5000};
  cfg.g_number_of_static_slots = 80;
  cfg.gd_static_slot = units::Macroticks{40};
  cfg.gd_minislot = units::Macroticks{8};
  cfg.g_number_of_minislots = minislots;
  cfg.validate();
  return cfg;
}

ClusterConfig ClusterConfig::app_suite(std::int64_t minislots) {
  ClusterConfig cfg;
  cfg.g_macro_per_cycle = units::Macroticks{1000};  // 1 ms cycle
  cfg.g_number_of_static_slots = 15;
  cfg.gd_static_slot = units::Macroticks{50};  // 0.75 ms static segment
  cfg.gd_minislot = units::Macroticks{8};
  cfg.g_number_of_minislots = minislots;
  cfg.validate();
  return cfg;
}

std::string describe(const ClusterConfig& cfg) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "cycle=%s static=%lldx%lldMT dynamic=%lld minislots x %lldMT "
      "symbol=%lldMT NIT=%s rate=%lldbps nodes=%d",
      sim::to_string(cfg.cycle_duration()).c_str(),
      static_cast<long long>(cfg.g_number_of_static_slots),
      static_cast<long long>(cfg.gd_static_slot.count()),
      static_cast<long long>(cfg.g_number_of_minislots),
      static_cast<long long>(cfg.gd_minislot.count()),
      static_cast<long long>(cfg.gd_symbol_window.count()),
      sim::to_string(cfg.network_idle_time()).c_str(),
      static_cast<long long>(cfg.bus_bit_rate), cfg.num_nodes);
  return buf;
}

}  // namespace coeff::flexray
