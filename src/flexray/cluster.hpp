// The cluster: drives the FlexRay cycle structure over both channels.
//
// The Cluster owns the two channels and the cycle walk; scheduling
// decisions are delegated to the installed TransmissionPolicy and fault
// verdicts to the CorruptionFn. Slot-level timing is computed
// arithmetically (CycleTiming); the simulation engine is advanced to
// each slot boundary so that policy- or workload-scheduled events (e.g.
// aperiodic arrivals) are delivered in order.
#pragma once

#include <array>
#include <cstdint>

#include "flexray/bus.hpp"
#include "flexray/fault_domain.hpp"
#include "flexray/policy.hpp"
#include "flexray/timing.hpp"
#include "sim/arena.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace coeff::flexray {

/// How the Cluster walks a cycle. Both engines produce byte-identical
/// traces, outcomes, and fault-verdict streams (DESIGN.md §12); the
/// compiled engine is the default and the interpreted one is kept as
/// the reference for differential testing.
enum class EngineMode : std::uint8_t {
  /// Slot-by-slot reference walk: one engine run_until and one policy
  /// callback round-trip per slot/minislot.
  kInterpreted,
  /// Phased walk: static-slot decisions are batched into event-free
  /// chunks, fault verdicts drawn per chunk (BatchCorruptionFn), idle
  /// dynamic minislots skipped in one jump, and engine run_until calls
  /// elided while no event is pending. Requires the policy to report
  /// compiled_capable(); falls back to the interpreted walk per cycle
  /// when it does not, or when the structural fault provider reports
  /// possible wire-level faults in the cycle's window.
  kCompiled,
};

[[nodiscard]] constexpr const char* to_string(EngineMode m) {
  switch (m) {
    case EngineMode::kInterpreted:
      return "interpreted";
    case EngineMode::kCompiled:
      return "compiled";
  }
  return "unknown";
}

class Cluster {
 public:
  /// `trace` may be nullptr to disable tracing.
  Cluster(sim::Engine& engine, const ClusterConfig& cfg,
          TransmissionPolicy& policy, CorruptionFn corruption,
          sim::Trace* trace = nullptr);

  /// Install a structural fault provider (node/channel topology faults).
  /// Must outlive the cluster; nullptr detaches. Transitions are drained
  /// at every cycle boundary, traced (kNodeCrash/kNodeRestart/
  /// kChannelDown/kChannelUp) and forwarded to the policy.
  void set_fault_provider(StructuralFaultProvider* provider) {
    faults_ = provider;
  }
  [[nodiscard]] const StructuralFaultProvider* fault_provider() const {
    return faults_;
  }

  /// Select the cycle walk (default: compiled). The interpreted walk is
  /// the differential-testing reference; both produce identical results.
  void set_engine_mode(EngineMode mode) { mode_ = mode; }
  [[nodiscard]] EngineMode engine_mode() const { return mode_; }

  /// Install the batched-verdict hook used by the compiled walk's
  /// static segment. Must draw from the same underlying model as the
  /// per-frame CorruptionFn (fault::FaultModel::as_batch_fn does), or
  /// the two verdict streams desynchronise. Optional: without it the
  /// compiled walk draws per frame through the CorruptionFn.
  void set_batch_corruption(BatchCorruptionFn fn) {
    batch_corruption_ = std::move(fn);
  }

  /// Cycles executed by the compiled fast path vs. interpreted (either
  /// by mode, by policy capability, or by structural-fault fallback).
  [[nodiscard]] std::int64_t compiled_cycles() const {
    return compiled_cycles_;
  }
  [[nodiscard]] std::int64_t interpreted_cycles() const {
    return next_cycle_.value() - compiled_cycles_;
  }

  /// Execute the next `n` communication cycles.
  void run_cycles(std::int64_t n);

  /// Execute whole cycles until the cycle containing `t` has completed.
  void run_until(sim::Time t);

  [[nodiscard]] std::int64_t cycles_run() const { return next_cycle_.value(); }
  [[nodiscard]] const Channel& channel(ChannelId id) const {
    return channels_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const CycleTiming& timing() const { return timing_; }
  [[nodiscard]] const ClusterConfig& config() const {
    return timing_.config();
  }
  [[nodiscard]] sim::Engine& engine() { return engine_; }

  /// Total wire capacity of the dynamic segment so far (minislots
  /// elapsed across both channels), for utilization metrics.
  [[nodiscard]] std::int64_t dynamic_minislots_elapsed() const {
    return next_cycle_.value() * config().g_number_of_minislots * kNumChannels;
  }
  /// Total static slots elapsed across both channels.
  [[nodiscard]] std::int64_t static_slots_elapsed() const {
    return next_cycle_.value() * config().g_number_of_static_slots *
           kNumChannels;
  }

 private:
  void execute_cycle(units::CycleIndex cycle);
  void apply_topology_events(units::CycleIndex cycle, sim::Time at);
  void execute_static_segment(units::CycleIndex cycle);
  void execute_dynamic_segment(units::CycleIndex cycle, ChannelId channel);
  /// Phased static walk: decide → batched verdicts → commit, chunked at
  /// pending engine events so arrivals land between the same slots as
  /// in the interpreted walk.
  void execute_static_segment_compiled(units::CycleIndex cycle);
  /// Dynamic walk with run_until elision and idle-minislot skipping.
  void execute_dynamic_segment_compiled(units::CycleIndex cycle,
                                        ChannelId channel);
  /// True when this cycle may run the compiled walk (mode, policy
  /// capability, structural-fault quiescence over [start, end)).
  [[nodiscard]] bool compiled_cycle_allowed(sim::Time start,
                                            sim::Time end) const;

  /// Forced-corruption verdict for a frame that did reach the wire:
  /// babbling-idiot collision in its slot or an out-of-sync sender.
  [[nodiscard]] bool structural_corruption(const TxRequest& req,
                                           units::SlotId slot,
                                           ChannelId channel,
                                           sim::Time at) const;

  sim::Engine& engine_;
  CycleTiming timing_;
  TransmissionPolicy& policy_;
  std::array<Channel, kNumChannels> channels_;
  sim::Trace* trace_;
  StructuralFaultProvider* faults_ = nullptr;
  units::CycleIndex next_cycle_{0};
  EngineMode mode_ = EngineMode::kCompiled;
  BatchCorruptionFn batch_corruption_;
  sim::Arena arena_;  ///< per-cycle transients (decisions, verdicts)
  std::int64_t compiled_cycles_ = 0;
};

}  // namespace coeff::flexray
