// The cluster: drives the FlexRay cycle structure over both channels.
//
// The Cluster owns the two channels and the cycle walk; scheduling
// decisions are delegated to the installed TransmissionPolicy and fault
// verdicts to the CorruptionFn. Slot-level timing is computed
// arithmetically (CycleTiming); the simulation engine is advanced to
// each slot boundary so that policy- or workload-scheduled events (e.g.
// aperiodic arrivals) are delivered in order.
#pragma once

#include <array>
#include <cstdint>

#include "flexray/bus.hpp"
#include "flexray/fault_domain.hpp"
#include "flexray/policy.hpp"
#include "flexray/timing.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace coeff::flexray {

class Cluster {
 public:
  /// `trace` may be nullptr to disable tracing.
  Cluster(sim::Engine& engine, const ClusterConfig& cfg,
          TransmissionPolicy& policy, CorruptionFn corruption,
          sim::Trace* trace = nullptr);

  /// Install a structural fault provider (node/channel topology faults).
  /// Must outlive the cluster; nullptr detaches. Transitions are drained
  /// at every cycle boundary, traced (kNodeCrash/kNodeRestart/
  /// kChannelDown/kChannelUp) and forwarded to the policy.
  void set_fault_provider(StructuralFaultProvider* provider) {
    faults_ = provider;
  }
  [[nodiscard]] const StructuralFaultProvider* fault_provider() const {
    return faults_;
  }

  /// Execute the next `n` communication cycles.
  void run_cycles(std::int64_t n);

  /// Execute whole cycles until the cycle containing `t` has completed.
  void run_until(sim::Time t);

  [[nodiscard]] std::int64_t cycles_run() const { return next_cycle_.value(); }
  [[nodiscard]] const Channel& channel(ChannelId id) const {
    return channels_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const CycleTiming& timing() const { return timing_; }
  [[nodiscard]] const ClusterConfig& config() const {
    return timing_.config();
  }
  [[nodiscard]] sim::Engine& engine() { return engine_; }

  /// Total wire capacity of the dynamic segment so far (minislots
  /// elapsed across both channels), for utilization metrics.
  [[nodiscard]] std::int64_t dynamic_minislots_elapsed() const {
    return next_cycle_.value() * config().g_number_of_minislots * kNumChannels;
  }
  /// Total static slots elapsed across both channels.
  [[nodiscard]] std::int64_t static_slots_elapsed() const {
    return next_cycle_.value() * config().g_number_of_static_slots *
           kNumChannels;
  }

 private:
  void execute_cycle(units::CycleIndex cycle);
  void apply_topology_events(units::CycleIndex cycle, sim::Time at);
  void execute_static_segment(units::CycleIndex cycle);
  void execute_dynamic_segment(units::CycleIndex cycle, ChannelId channel);

  /// Forced-corruption verdict for a frame that did reach the wire:
  /// babbling-idiot collision in its slot or an out-of-sync sender.
  [[nodiscard]] bool structural_corruption(const TxRequest& req,
                                           units::SlotId slot,
                                           ChannelId channel,
                                           sim::Time at) const;

  sim::Engine& engine_;
  CycleTiming timing_;
  TransmissionPolicy& policy_;
  std::array<Channel, kNumChannels> channels_;
  sim::Trace* trace_;
  StructuralFaultProvider* faults_ = nullptr;
  units::CycleIndex next_cycle_{0};
};

}  // namespace coeff::flexray
