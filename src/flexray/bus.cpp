#include "flexray/bus.hpp"

namespace coeff::flexray {

TxOutcome Channel::transmit(const TxRequest& req, sim::Time start,
                            sim::Time duration, units::CycleIndex cycle,
                            units::SlotId slot, Segment segment,
                            bool force_corrupt) {
  TxOutcome out;
  out.request = req;
  out.channel = id_;
  out.start = start;
  out.end = start + duration;
  out.cycle = cycle;
  out.slot = slot;
  out.segment = segment;
  // The hook runs first so its per-channel verdict stream advances even
  // when the result is overridden (keeps the surviving channel's stream
  // independent of jamming on this one).
  out.corrupted = corruption_ ? corruption_(req, id_, start) : false;
  if (force_corrupt) out.corrupted = true;

  ++stats_.frames;
  if (out.corrupted) ++stats_.corrupted_frames;
  if (req.retransmission) ++stats_.retransmission_frames;
  stats_.payload_bits += req.payload_bits;
  if (segment == Segment::kStatic) {
    stats_.busy_static += duration;
  } else {
    stats_.busy_dynamic += duration;
  }
  return out;
}

TxOutcome Channel::transmit_with_verdict(const TxRequest& req, sim::Time start,
                                         sim::Time duration,
                                         units::CycleIndex cycle,
                                         units::SlotId slot, Segment segment,
                                         bool corrupted, bool force_corrupt) {
  TxOutcome out;
  out.request = req;
  out.channel = id_;
  out.start = start;
  out.end = start + duration;
  out.cycle = cycle;
  out.slot = slot;
  out.segment = segment;
  out.corrupted = corrupted || force_corrupt;

  ++stats_.frames;
  if (out.corrupted) ++stats_.corrupted_frames;
  if (req.retransmission) ++stats_.retransmission_frames;
  stats_.payload_bits += req.payload_bits;
  if (segment == Segment::kStatic) {
    stats_.busy_static += duration;
  } else {
    stats_.busy_dynamic += duration;
  }
  return out;
}

TxOutcome Channel::lose(const TxRequest& req, sim::Time start,
                        sim::Time duration, units::CycleIndex cycle,
                        units::SlotId slot, Segment segment) const {
  TxOutcome out;
  out.request = req;
  out.channel = id_;
  out.start = start;
  out.end = start + duration;
  out.cycle = cycle;
  out.slot = slot;
  out.segment = segment;
  out.corrupted = true;
  out.lost = true;
  return out;
}

}  // namespace coeff::flexray
