// Wire codec: serialize a frame to its on-the-bus byte stream and parse
// it back, verifying both CRCs. This is what a communication controller
// does at the ends of every slot; the simulator's fast path models
// corruption statistically, but the codec backs the fault-injection
// tests and any future pcap-style trace export.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "flexray/frame.hpp"

namespace coeff::flexray {

enum class DecodeError : std::uint8_t {
  kTruncated,        ///< fewer bytes than the header + trailer need
  kLengthMismatch,   ///< header payload length disagrees with the buffer
  kHeaderCrc,        ///< 11-bit header CRC check failed
  kFrameCrc,         ///< 24-bit frame CRC check failed
  kBadFrameId,       ///< frame id 0 (invalid on the wire)
};

[[nodiscard]] const char* to_string(DecodeError e);

/// Result of decode_frame: a frame or the first error found.
struct DecodeResult {
  std::optional<Frame> frame;
  std::optional<DecodeError> error;

  [[nodiscard]] bool ok() const { return frame.has_value(); }
};

/// Serialize the complete wire image: 5 header bytes, payload, 3
/// trailer-CRC bytes.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Parse a wire image received on `channel`. All integrity checks run;
/// the first failure is reported.
[[nodiscard]] DecodeResult decode_frame(ChannelId channel,
                                        const std::vector<std::uint8_t>& wire);

}  // namespace coeff::flexray
