// Cycle/slot/minislot timing arithmetic.
//
// All positions are derived from the ClusterConfig; this class keeps the
// conversions (absolute time <-> cycle index <-> slot/minislot offsets)
// in one tested place.
#pragma once

#include <cstdint>

#include "flexray/config.hpp"
#include "sim/time.hpp"

namespace coeff::flexray {

/// Which part of the communication cycle an instant falls in.
enum class Segment : std::uint8_t {
  kStatic,
  kDynamic,
  kSymbolWindow,
  kNetworkIdle,
};

[[nodiscard]] constexpr const char* to_string(Segment s) {
  switch (s) {
    case Segment::kStatic:
      return "static";
    case Segment::kDynamic:
      return "dynamic";
    case Segment::kSymbolWindow:
      return "symbol";
    case Segment::kNetworkIdle:
      return "idle";
  }
  return "?";
}

class CycleTiming {
 public:
  explicit CycleTiming(const ClusterConfig& cfg);

  /// Communication-cycle index containing absolute time `t` (t >= 0).
  [[nodiscard]] std::int64_t cycle_index(sim::Time t) const;

  /// Absolute start time of cycle `c`.
  [[nodiscard]] sim::Time cycle_start(std::int64_t c) const;

  /// Offset of `t` inside its cycle.
  [[nodiscard]] sim::Time offset_in_cycle(sim::Time t) const;

  /// Segment that offset `off` (within one cycle) falls in.
  [[nodiscard]] Segment segment_at(sim::Time off) const;

  /// Absolute start time of static slot `slot` (1-based) in cycle `c`.
  [[nodiscard]] sim::Time static_slot_start(std::int64_t c,
                                            std::int64_t slot) const;

  /// Static slot (1-based) covering offset `off`; 0 when `off` is not in
  /// the static segment.
  [[nodiscard]] std::int64_t static_slot_at(sim::Time off) const;

  /// Absolute start time of minislot `m` (0-based) in cycle `c`.
  [[nodiscard]] sim::Time minislot_start(std::int64_t c, std::int64_t m) const;

  /// Start of the dynamic segment in cycle `c`.
  [[nodiscard]] sim::Time dynamic_segment_start(std::int64_t c) const;

  /// First cycle whose start is >= `t`.
  [[nodiscard]] std::int64_t next_cycle_at_or_after(sim::Time t) const;

  [[nodiscard]] const ClusterConfig& config() const { return cfg_; }

 private:
  ClusterConfig cfg_;
};

}  // namespace coeff::flexray
