// Cycle/slot/minislot timing arithmetic.
//
// All positions are derived from the ClusterConfig; this class keeps the
// conversions (absolute time <-> cycle index <-> slot/minislot offsets)
// in one tested place. Positions carry the units:: strong types: a
// cycle index cannot be passed where a slot number is expected, and a
// within-cycle offset (units::CycleTime) cannot be confused with an
// absolute instant (sim::Time).
#pragma once

#include <cstdint>
#include <optional>

#include "flexray/config.hpp"
#include "sim/time.hpp"
#include "units/units.hpp"

namespace coeff::flexray {

/// Which part of the communication cycle an instant falls in.
enum class Segment : std::uint8_t {
  kStatic,
  kDynamic,
  kSymbolWindow,
  kNetworkIdle,
};

[[nodiscard]] constexpr const char* to_string(Segment s) {
  switch (s) {
    case Segment::kStatic:
      return "static";
    case Segment::kDynamic:
      return "dynamic";
    case Segment::kSymbolWindow:
      return "symbol";
    case Segment::kNetworkIdle:
      return "idle";
  }
  return "?";
}

class CycleTiming {
 public:
  explicit CycleTiming(const ClusterConfig& cfg);

  /// Communication-cycle index containing absolute time `t` (t >= 0).
  [[nodiscard]] units::CycleIndex cycle_index(sim::Time t) const;

  /// Absolute start time of cycle `c`.
  [[nodiscard]] sim::Time cycle_start(units::CycleIndex c) const;

  /// Offset of `t` inside its cycle.
  [[nodiscard]] units::CycleTime offset_in_cycle(sim::Time t) const;

  /// Segment that offset `off` (within one cycle) falls in.
  [[nodiscard]] Segment segment_at(units::CycleTime off) const;

  /// Absolute start time of static slot `slot` (1-based) in cycle `c`.
  [[nodiscard]] sim::Time static_slot_start(units::CycleIndex c,
                                            units::SlotId slot) const;

  /// Static slot (1-based) covering offset `off`; nullopt when `off` is
  /// not in the static segment.
  [[nodiscard]] std::optional<units::SlotId> static_slot_at(
      units::CycleTime off) const;

  /// Absolute start time of minislot `m` (0-based) in cycle `c`.
  [[nodiscard]] sim::Time minislot_start(units::CycleIndex c,
                                         units::MinislotId m) const;

  /// Start of the dynamic segment in cycle `c`.
  [[nodiscard]] sim::Time dynamic_segment_start(units::CycleIndex c) const;

  /// First cycle whose start is >= `t`.
  [[nodiscard]] units::CycleIndex next_cycle_at_or_after(sim::Time t) const;

  [[nodiscard]] const ClusterConfig& config() const { return cfg_; }

 private:
  ClusterConfig cfg_;
};

}  // namespace coeff::flexray
