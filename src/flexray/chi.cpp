#include "flexray/chi.hpp"

#include <algorithm>
#include <stdexcept>

namespace coeff::flexray {

void StaticBufferSet::add_slot(units::SlotId slot) {
  buffers_.emplace(slot, std::nullopt);
}

bool StaticBufferSet::owns(units::SlotId slot) const {
  return buffers_.contains(slot);
}

bool StaticBufferSet::write(units::SlotId slot, PendingMessage msg) {
  auto it = buffers_.find(slot);
  if (it == buffers_.end()) {
    throw std::invalid_argument("StaticBufferSet::write: slot not owned");
  }
  const bool overwritten = it->second.has_value();
  it->second = std::move(msg);
  return overwritten;
}

std::optional<PendingMessage> StaticBufferSet::read(units::SlotId slot) const {
  auto it = buffers_.find(slot);
  if (it == buffers_.end()) return std::nullopt;
  return it->second;
}

void StaticBufferSet::clear(units::SlotId slot) {
  auto it = buffers_.find(slot);
  if (it != buffers_.end()) it->second.reset();
}

std::vector<units::SlotId> StaticBufferSet::owned_slots() const {
  std::vector<units::SlotId> slots;
  slots.reserve(buffers_.size());
  for (const auto& [slot, _] : buffers_) slots.push_back(slot);
  std::sort(slots.begin(), slots.end());
  return slots;
}

std::vector<PendingMessage> StaticBufferSet::clear_all() {
  std::vector<PendingMessage> dropped;
  // Deterministic order: walk slots sorted, not hash order.
  for (const units::SlotId slot : owned_slots()) {
    auto& buf = buffers_.at(slot);
    if (buf.has_value()) {
      dropped.push_back(*buf);
      buf.reset();
    }
  }
  return dropped;
}

std::size_t StaticBufferSet::pending_count() const {
  std::size_t n = 0;
  for (const auto& [_, msg] : buffers_) {
    if (msg.has_value()) ++n;
  }
  return n;
}

void DynamicQueue::push(PendingMessage msg) {
  const std::uint64_t seq = arrival_seq_++;
  // Insert before the first strictly-lower-urgency entry; equal
  // priorities stay FIFO.
  std::size_t pos = queue_.size();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].priority > msg.priority) {
      pos = i;
      break;
    }
  }
  queue_.insert(queue_.begin() + static_cast<std::ptrdiff_t>(pos),
                std::move(msg));
  ++version_;
  seqs_.insert(seqs_.begin() + static_cast<std::ptrdiff_t>(pos), seq);
}

std::optional<PendingMessage> DynamicQueue::peek(FrameId id) const {
  for (const auto& msg : queue_) {
    if (msg.frame_id == id) return msg;
  }
  return std::nullopt;
}

std::optional<PendingMessage> DynamicQueue::peek_head() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.front();
}

bool DynamicQueue::pop(std::uint64_t instance) {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].instance == instance) {
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      seqs_.erase(seqs_.begin() + static_cast<std::ptrdiff_t>(i));
      ++version_;
      return true;
    }
  }
  return false;
}

std::vector<PendingMessage> DynamicQueue::drop_expired(sim::Time now) {
  return drop_if(
      [now](const PendingMessage& m) { return m.deadline < now; });
}

std::vector<PendingMessage> DynamicQueue::drop_if(
    const std::function<bool(const PendingMessage&)>& pred) {
  std::vector<PendingMessage> dropped;
  for (std::size_t i = 0; i < queue_.size();) {
    if (pred(queue_[i])) {
      dropped.push_back(queue_[i]);
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      seqs_.erase(seqs_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  if (!dropped.empty()) ++version_;
  return dropped;
}

std::vector<PendingMessage> Node::shutdown() {
  up_ = false;
  std::vector<PendingMessage> dropped = static_buffers_.clear_all();
  std::vector<PendingMessage> dyn =
      dynamic_queue_.drop_if([](const PendingMessage&) { return true; });
  dropped.insert(dropped.end(), dyn.begin(), dyn.end());
  return dropped;
}

}  // namespace coeff::flexray
