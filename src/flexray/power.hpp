// Per-node DVFS/DPM power model (ROADMAP item 4 ride-along).
//
// Models the communication-side energy of a FlexRay node: the host
// controller draws a DVFS-scaled baseline all cycle, the bus driver
// pays a transmit premium for every bit on the wire, and transceivers
// either *listen* through idle static slots (ready to steal slack) or
// *sleep* through them when the scheduler knows no retransmission can
// want the slack. Slack not stolen for retransmissions is thereby
// spent sleeping transceivers — the energy counterpart of selective
// slack stealing.
//
// Deliberately below the sched/ layer: DVFS operating points are plain
// integers (0 = full speed), so the mixed-criticality mode machine can
// map modes onto them without a dependency cycle. All arithmetic is a
// pure function of per-cycle inputs that are identical across engines
// and job counts, so energy figures are deterministic.
#pragma once

#include <array>
#include <cstdint>

#include "sim/time.hpp"

namespace coeff::flexray {

/// Number of DVFS operating points (0 = full speed, deeper = slower
/// and cheaper). The mode machine maps NORMAL/L1/L2 onto 0/1/2.
inline constexpr int kDvfsLevels = 3;

struct PowerConfig {
  bool enabled = false;
  /// Host controller + CC baseline per node at DVFS level 0, mW.
  double controller_mw = 45.0;
  /// Extra power while driving bits onto one channel, mW.
  double tx_mw = 120.0;
  /// Transceiver listening through an idle static slot, mW.
  double idle_listen_mw = 25.0;
  /// Transceiver sleeping through an idle static slot, mW.
  double sleep_mw = 1.5;
  /// Controller-power scale factor per DVFS level.
  std::array<double, kDvfsLevels> dvfs_scale = {1.0, 0.72, 0.55};

  /// Throws std::invalid_argument on negative powers, non-positive or
  /// non-increasing-savings scale factors, or sleep >= idle power.
  void validate() const;
};

/// Per-run energy accumulator. The scheduler feeds it once per cycle
/// from its cycle-end hook with decide-side aggregates (wire bits,
/// idle-slot count, sleep eligibility, DVFS level).
class EnergyMeter {
 public:
  EnergyMeter(const PowerConfig& config, int num_nodes, double bus_bit_rate);

  /// Account one communication cycle; returns this cycle's energy (uJ).
  ///  * `tx_bits`     — payload bits clocked onto the wire this cycle
  ///                    (all channels, corrupted copies included — the
  ///                    driver paid for them either way);
  ///  * `idle_slots`  — static slot decisions that left the wire idle;
  ///  * `may_sleep`   — true when the scheduler proves no pending
  ///                    retransmission could claim the idle slack, so
  ///                    transceivers gate off instead of listening;
  ///  * `dvfs_level`  — operating point in [0, kDvfsLevels).
  double on_cycle(sim::Time cycle_duration, std::int64_t tx_bits,
                  std::int64_t idle_slots, sim::Time slot_duration,
                  bool may_sleep, int dvfs_level);

  [[nodiscard]] double total_uj() const { return total_uj_; }
  /// Energy the sleep decisions saved vs. always-listen (uJ).
  [[nodiscard]] double sleep_saved_uj() const { return sleep_saved_uj_; }
  [[nodiscard]] std::int64_t cycles() const { return cycles_; }
  [[nodiscard]] std::int64_t slots_slept() const { return slots_slept_; }
  [[nodiscard]] double per_cycle_uj() const {
    return cycles_ == 0 ? 0.0 : total_uj_ / static_cast<double>(cycles_);
  }

 private:
  PowerConfig config_;
  int num_nodes_;
  double bus_bit_rate_;
  double total_uj_ = 0.0;
  double sleep_saved_uj_ = 0.0;
  std::int64_t cycles_ = 0;
  std::int64_t slots_slept_ = 0;
};

}  // namespace coeff::flexray
