// FlexRay cluster configuration.
//
// Parameter names follow the FlexRay Protocol Specification v2.1
// conventions: `gd*` are global duration parameters, `g*` global counts,
// `p*` per-node parameters. The paper's evaluation (§IV-A) uses
// gdMacrotick = 1 us, gdMinislot = 8 MT, gdStaticSlot = 40 MT,
// gNumberOfStaticSlots in {80, 120}, gNumberOfMinislots in {25..100},
// and cycles of 5 ms (static suite) or 1 ms (dynamic suite).
//
// Macrotick-denominated durations carry the units::Macroticks strong
// type (DESIGN.md §10): a gd* parameter can no longer be mixed with a
// slot count or a raw nanosecond value without an explicit conversion.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"
#include "units/convert.hpp"
#include "units/units.hpp"

namespace coeff::flexray {

/// The two redundant FlexRay channels.
enum class ChannelId : std::uint8_t { kA = 0, kB = 1 };
inline constexpr int kNumChannels = 2;

[[nodiscard]] constexpr const char* to_string(ChannelId c) {
  return c == ChannelId::kA ? "A" : "B";
}

struct ClusterConfig {
  // --- Global timing -----------------------------------------------------
  /// Duration of one macrotick. All other durations are multiples of it.
  sim::Time gd_macrotick = sim::micros(1);
  /// Macroticks per communication cycle (gMacroPerCycle).
  units::Macroticks g_macro_per_cycle{5000};

  // --- Static segment ----------------------------------------------------
  /// Number of static slots per cycle (gNumberOfStaticSlots).
  std::int64_t g_number_of_static_slots = 80;
  /// Macroticks per static slot (gdStaticSlot).
  units::Macroticks gd_static_slot{40};

  // --- Dynamic segment ---------------------------------------------------
  /// Number of minislots in the dynamic segment (gNumberOfMinislots).
  std::int64_t g_number_of_minislots = 50;
  /// Macroticks per minislot (gdMinislot).
  units::Macroticks gd_minislot{8};
  /// Idle phase appended to every used dynamic slot, in minislots
  /// (gdDynamicSlotIdlePhase).
  std::int64_t gd_dynamic_slot_idle_phase = 1;
  /// Action-point offset inside a minislot (gdMinislotActionPointOffset).
  /// Purely a latency offset here.
  units::Macroticks gd_minislot_action_point_offset{2};
  /// Last minislot in which a transmission may *start*
  /// (pLatestTx; per-node in the spec, cluster-wide here as in the paper).
  units::MinislotId p_latest_tx{0};  ///< 0 = derive as g_number_of_minislots

  // --- Symbol window / NIT -----------------------------------------------
  /// Macroticks of symbol window (gdSymbolWindow; 0 in the paper).
  units::Macroticks gd_symbol_window{0};

  // --- Payload / bus -----------------------------------------------------
  /// Bus bit rate in bits per second (10 Mbit/s per the FlexRay spec).
  std::int64_t bus_bit_rate = 10'000'000;
  /// Maximum payload of one frame, in bits (254 bytes per the spec).
  std::int64_t max_payload_bits = 254 * 8;

  /// Number of ECU nodes in the cluster.
  int num_nodes = 10;

  // --- Derived quantities --------------------------------------------------
  [[nodiscard]] sim::Time cycle_duration() const {
    return units::to_time(g_macro_per_cycle, gd_macrotick);
  }
  [[nodiscard]] sim::Time static_slot_duration() const {
    return units::to_time(gd_static_slot, gd_macrotick);
  }
  [[nodiscard]] sim::Time static_segment_duration() const {
    return static_slot_duration() * g_number_of_static_slots;
  }
  [[nodiscard]] sim::Time minislot_duration() const {
    return units::to_time(gd_minislot, gd_macrotick);
  }
  [[nodiscard]] sim::Time dynamic_segment_duration() const {
    return minislot_duration() * g_number_of_minislots;
  }
  [[nodiscard]] sim::Time symbol_window_duration() const {
    return units::to_time(gd_symbol_window, gd_macrotick);
  }
  /// Network idle time: whatever remains of the cycle after the
  /// static segment, dynamic segment and symbol window.
  [[nodiscard]] sim::Time network_idle_time() const {
    return cycle_duration() - static_segment_duration() -
           dynamic_segment_duration() - symbol_window_duration();
  }
  /// Effective pLatestTx (derives the default).
  [[nodiscard]] units::MinislotId latest_tx_minislot() const {
    return p_latest_tx.value() > 0 ? p_latest_tx
                                   : units::MinislotId{g_number_of_minislots};
  }
  /// Time to clock `bits` onto the bus.
  [[nodiscard]] sim::Time transmission_time(std::int64_t bits) const;
  /// Bits that fit in one static slot (slot duration * bit rate).
  [[nodiscard]] std::int64_t static_slot_capacity_bits() const;
  /// Minislots consumed by a dynamic transmission of `bits`, including
  /// the dynamic-slot idle phase.
  [[nodiscard]] std::int64_t minislots_for(std::int64_t bits) const;

  /// Throws std::invalid_argument naming the first violated constraint.
  void validate() const;

  /// Paper §IV-A static-suite configuration: 5 ms cycle, 3 ms static
  /// segment (75 slots of 40 MT), remaining budget dynamic.
  [[nodiscard]] static ClusterConfig static_suite(
      std::int64_t num_static_slots = 80);

  /// Paper §IV-A dynamic-suite configuration: 1 ms cycle, 0.75 ms static
  /// segment, `minislots` dynamic minislots.
  [[nodiscard]] static ClusterConfig dynamic_suite(std::int64_t minislots = 50);

  /// Paper §IV-A application-suite configuration for BBW/ACC (whose
  /// fastest period is 1 ms): 1 ms cycle, 0.75 ms static segment of 15
  /// slots x 50 MT, remaining bandwidth dynamic.
  [[nodiscard]] static ClusterConfig app_suite(std::int64_t minislots = 25);
};

// --- ClusterConfig-aware unit conversions ---------------------------------

/// Exact conversion onto this cluster's macrotick grid; throws when `t`
/// is not a whole number of macroticks.
[[nodiscard]] inline units::Macroticks to_macroticks(
    sim::Time t, const ClusterConfig& cfg) {
  return units::to_macroticks(t, cfg.gd_macrotick);
}

[[nodiscard]] inline units::Macroticks to_macroticks(
    units::Microseconds us, const ClusterConfig& cfg) {
  return units::to_macroticks(units::to_time(us), cfg.gd_macrotick);
}

[[nodiscard]] inline sim::Time to_time(units::Macroticks mt,
                                       const ClusterConfig& cfg) {
  return units::to_time(mt, cfg.gd_macrotick);
}

[[nodiscard]] std::string describe(const ClusterConfig& cfg);

}  // namespace coeff::flexray
