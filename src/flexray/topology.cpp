#include "flexray/topology.hpp"

#include <cmath>
#include <stdexcept>

namespace coeff::flexray {

namespace {

sim::Time wire_delay(double meters) {
  return sim::nanos(
      static_cast<std::int64_t>(std::ceil(meters / kMetersPerNanosecond)));
}

void require_positive_lengths(const std::vector<double>& lengths,
                              const char* what) {
  for (double v : lengths) {
    if (v < 0.0) {
      throw std::invalid_argument(std::string("Topology: negative ") + what);
    }
  }
}

}  // namespace

const char* to_string(TopologyKind k) {
  switch (k) {
    case TopologyKind::kBus:
      return "bus";
    case TopologyKind::kStar:
      return "star";
    case TopologyKind::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

Topology Topology::bus(std::vector<double> positions_m) {
  if (positions_m.size() < 2) {
    throw std::invalid_argument("Topology::bus: need at least two nodes");
  }
  require_positive_lengths(positions_m, "position");
  Topology t;
  t.kind_ = TopologyKind::kBus;
  t.stub_or_pos_ = std::move(positions_m);
  return t;
}

Topology Topology::star(std::vector<double> stub_lengths_m) {
  if (stub_lengths_m.size() < 2) {
    throw std::invalid_argument("Topology::star: need at least two nodes");
  }
  require_positive_lengths(stub_lengths_m, "stub length");
  Topology t;
  t.kind_ = TopologyKind::kStar;
  t.stub_or_pos_ = std::move(stub_lengths_m);
  return t;
}

Topology Topology::hybrid(std::vector<int> star_of,
                          std::vector<double> stub_lengths_m,
                          double trunk_length_m) {
  if (star_of.size() != stub_lengths_m.size() || star_of.size() < 2) {
    throw std::invalid_argument("Topology::hybrid: inconsistent node lists");
  }
  require_positive_lengths(stub_lengths_m, "stub length");
  if (trunk_length_m < 0.0) {
    throw std::invalid_argument("Topology::hybrid: negative trunk length");
  }
  for (int s : star_of) {
    if (s != 0 && s != 1) {
      throw std::invalid_argument("Topology::hybrid: star index must be 0/1");
    }
  }
  Topology t;
  t.kind_ = TopologyKind::kHybrid;
  t.stub_or_pos_ = std::move(stub_lengths_m);
  t.star_of_ = std::move(star_of);
  t.trunk_length_m_ = trunk_length_m;
  return t;
}

sim::Time Topology::propagation_delay(std::size_t a, std::size_t b) const {
  if (a >= node_count() || b >= node_count()) {
    throw std::invalid_argument("Topology: node index out of range");
  }
  if (a == b) return sim::Time::zero();
  switch (kind_) {
    case TopologyKind::kBus:
      return wire_delay(std::fabs(stub_or_pos_[a] - stub_or_pos_[b]));
    case TopologyKind::kStar:
      return wire_delay(stub_or_pos_[a] + stub_or_pos_[b]) +
             kStarCouplerDelay;
    case TopologyKind::kHybrid: {
      const bool same_star = star_of_[a] == star_of_[b];
      sim::Time d = wire_delay(stub_or_pos_[a] + stub_or_pos_[b]);
      d += kStarCouplerDelay;  // the first coupler
      if (!same_star) {
        d += wire_delay(trunk_length_m_) + kStarCouplerDelay;
      }
      return d;
    }
  }
  return sim::Time::zero();
}

sim::Time Topology::worst_case_delay() const {
  sim::Time worst;
  for (std::size_t a = 0; a < node_count(); ++a) {
    for (std::size_t b = 0; b < node_count(); ++b) {
      worst = std::max(worst, propagation_delay(a, b));
    }
  }
  return worst;
}

bool Topology::fits_budget(const ClusterConfig& cfg) const {
  // The action-point offset inside each minislot is the time reserved
  // for the farthest receiver to see the transmission start.
  const sim::Time budget =
      units::to_time(cfg.gd_minislot_action_point_offset, cfg.gd_macrotick);
  return worst_case_delay() <= budget;
}

}  // namespace coeff::flexray
