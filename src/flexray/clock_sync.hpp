// Distributed clock synchronization (FlexRay spec ch. 8).
//
// Every node runs on a local oscillator with a bounded rate error; the
// TDMA schedule only works if all nodes agree on slot boundaries, so
// each node measures its deviation against the sync frames it receives
// and corrects both its offset (every double cycle) and its rate. The
// combination function is the fault-tolerant midpoint (FTM): with n
// measurements, discard the k largest and k smallest (k = 0 for n < 3,
// 1 for n < 8, else 2) and take the midpoint of the remaining extremes,
// which tolerates k arbitrarily faulty clocks.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace coeff::flexray {

/// Spec discard count for the fault-tolerant midpoint.
[[nodiscard]] int ftm_discard_count(std::size_t n);

/// Fault-tolerant midpoint of deviation measurements (ns values).
/// Precondition: !values.empty().
[[nodiscard]] sim::Time fault_tolerant_midpoint(std::vector<sim::Time> values);

/// A drifting local clock: from its base point, local time advances at
/// (1 + rate error + trim) of global time. Corrections act from the
/// base point onwards — call rebase() at the correction instant so a
/// rate trim never rewrites the past.
class LocalClock {
 public:
  explicit LocalClock(double rate_error_ppm)
      : rate_error_(rate_error_ppm * 1e-6) {}

  /// Local reading at global instant `t` (>= the base point).
  [[nodiscard]] sim::Time local_time(sim::Time global) const;

  /// Move the base point to `global`, freezing the reading there, so
  /// subsequent corrections apply from this instant on.
  void rebase(sim::Time global);

  /// Step the local reading back by `delta` (offset correction).
  void correct_offset(sim::Time delta) { base_local_ -= delta; }

  /// Trim the rate by `delta_ppm` from the base point onwards.
  void correct_rate(double delta_ppm) { rate_trim_ -= delta_ppm * 1e-6; }

  [[nodiscard]] double effective_rate_error() const {
    return rate_error_ + rate_trim_;
  }

  /// Shift the physical oscillator error by `delta_ppm` (a thermal/aging
  /// drift excursion). rebase() first so the fault acts from now on.
  void add_rate_fault(double delta_ppm) { rate_error_ += delta_ppm * 1e-6; }

 private:
  double rate_error_;       ///< physical oscillator error (fixed)
  double rate_trim_ = 0.0;  ///< correction applied by sync
  sim::Time base_global_;
  sim::Time base_local_;
};

/// A per-node clock-drift fault: from double cycle `start_round`
/// (inclusive) to `end_round` (exclusive) the node's oscillator runs
/// `excess_ppm` beyond its nominal error — far outside the
/// max_rate_error_ppm budget the sync algorithm was sized for. The node
/// reports honest measurements (it is not byzantine); the damped
/// correction simply cannot keep up, which is exactly the out-of-sync
/// excursion the structural fault domain models.
struct DriftExcursion {
  int node = 0;
  int start_round = 0;
  int end_round = 0;
  double excess_ppm = 0.0;
};

struct ClockSyncOptions {
  int num_nodes = 10;
  /// Number of sync-frame-sending nodes (>= 2 per the spec).
  int sync_nodes = 4;
  /// Max oscillator error, ppm; node errors are uniform in [-max, max].
  double max_rate_error_ppm = 150.0;
  /// Measurement noise bound (uniform, +-), models digitization.
  sim::Time measurement_noise = sim::micros(1) - sim::micros(1);  // 0
  sim::Time double_cycle = sim::millis(10);  ///< correction period
  /// Indices of nodes whose sync measurements are arbitrarily wrong.
  std::vector<int> byzantine_nodes;
  /// Scheduled oscillator-drift excursions (structural clock faults).
  std::vector<DriftExcursion> drift_excursions;
  std::uint64_t seed = 1;
};

struct ClockSyncResult {
  /// Max pairwise deviation among correct nodes after each double cycle.
  /// Nodes inside an active drift excursion are excluded here and
  /// reported in faulty_deviation_history instead.
  std::vector<sim::Time> max_deviation_history;
  /// Max deviation of any actively-drifting node from any correct node,
  /// per double cycle (zero when no excursion is active).
  std::vector<sim::Time> faulty_deviation_history;
  [[nodiscard]] sim::Time final_deviation() const {
    return max_deviation_history.empty() ? sim::Time::zero()
                                         : max_deviation_history.back();
  }
};

/// Simulate `rounds` double cycles of offset+rate correction across a
/// cluster of drifting clocks. Byzantine sync nodes report random
/// deviations; FTM must keep the correct nodes converged regardless.
[[nodiscard]] ClockSyncResult simulate_clock_sync(const ClockSyncOptions& opt,
                                                  int rounds);

}  // namespace coeff::flexray
