// Controller-Host Interface (CHI) buffers.
//
// Each node's host deposits outgoing messages in the CHI; the
// communication controller consumes them when the owning slot comes
// around. Static messages live in per-slot single buffers (a newer write
// overwrites — FlexRay static buffers hold the latest value); dynamic
// messages queue in a fixed-priority queue drained in (priority, FIFO)
// order, as §II-B of the paper describes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "flexray/frame.hpp"
#include "sim/time.hpp"
#include "units/units.hpp"

namespace coeff::flexray {

/// A message instance waiting in a CHI buffer.
struct PendingMessage {
  std::uint64_t instance = 0;  ///< scheduler-opaque instance id
  FrameId frame_id{0};
  std::int64_t payload_bits = 0;
  sim::Time release;                   ///< when the host produced it
  sim::Time deadline = sim::Time::max();  ///< absolute; max() = soft
  int priority = 0;                    ///< lower value = more urgent
  bool retransmission = false;
};

/// Single-message buffers, one per static slot owned by the node.
class StaticBufferSet {
 public:
  /// Declare ownership of `slot`. Writing to an undeclared slot throws.
  void add_slot(units::SlotId slot);

  [[nodiscard]] bool owns(units::SlotId slot) const;

  /// Host side: deposit (or overwrite) the message for `slot`. Returns
  /// true if a previous, never-transmitted message was overwritten.
  bool write(units::SlotId slot, PendingMessage msg);

  /// Controller side: peek the message for `slot`, if any.
  [[nodiscard]] std::optional<PendingMessage> read(units::SlotId slot) const;

  /// Controller side: consume the message for `slot` after transmission.
  void clear(units::SlotId slot);

  /// Drop every buffered message (host power-off); slot ownership is
  /// retained. Returns the dropped messages for upstream accounting.
  std::vector<PendingMessage> clear_all();

  [[nodiscard]] std::vector<units::SlotId> owned_slots() const;
  [[nodiscard]] std::size_t pending_count() const;

 private:
  std::unordered_map<units::SlotId, std::optional<PendingMessage>> buffers_;
};

/// Fixed-priority queue for dynamic-segment messages.
///
/// Order: ascending priority, FIFO within a priority (stable). Per
/// FlexRay, two messages can share a dynamic frame ID; the head of the
/// queue for that ID is sent in the current cycle (§II-B).
class DynamicQueue {
 public:
  void push(PendingMessage msg);

  /// Head message with the given frame id, if any (does not remove).
  [[nodiscard]] std::optional<PendingMessage> peek(FrameId id) const;

  /// Highest-priority message overall, if any.
  [[nodiscard]] std::optional<PendingMessage> peek_head() const;

  /// Remove the specific instance (after a successful transmission).
  /// Returns false if it is no longer queued.
  bool pop(std::uint64_t instance);

  /// Drop all messages whose deadline is earlier than `now`; returns the
  /// dropped instances (reported as deadline misses upstream).
  std::vector<PendingMessage> drop_expired(sim::Time now);

  /// Drop all messages matching `pred`; returns the dropped instances.
  std::vector<PendingMessage> drop_if(
      const std::function<bool(const PendingMessage&)>& pred);

  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  [[nodiscard]] bool empty() const { return queue_.empty(); }

  /// Queued messages in dispatch order (for inspection/tests).
  [[nodiscard]] const std::deque<PendingMessage>& contents() const {
    return queue_;
  }

  /// Monotonic mutation counter: bumped whenever the queued contents
  /// change. Lets scan results over contents() be memoized exactly (the
  /// compiled cycle walk's slack peek) — equal versions guarantee equal
  /// contents.
  [[nodiscard]] std::uint64_t version() const { return version_; }

 private:
  // Kept sorted by (priority, arrival order). A deque keeps push/pop
  // cheap at the sizes this project uses (tens of messages per node).
  std::deque<PendingMessage> queue_;
  std::uint64_t arrival_seq_ = 0;
  std::deque<std::uint64_t> seqs_;  ///< parallel to queue_
  std::uint64_t version_ = 0;
};

/// One ECU node: identity, slot/frame-ID ownership, and its CHI buffers.
class Node {
 public:
  Node(units::NodeId id, std::string name)
      : id_(id), name_(std::move(name)) {}

  [[nodiscard]] units::NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  StaticBufferSet& static_buffers() { return static_buffers_; }
  [[nodiscard]] const StaticBufferSet& static_buffers() const {
    return static_buffers_;
  }
  DynamicQueue& dynamic_queue() { return dynamic_queue_; }
  [[nodiscard]] const DynamicQueue& dynamic_queue() const {
    return dynamic_queue_;
  }

  /// Dynamic frame IDs this node may transmit in.
  void add_dynamic_frame_id(FrameId id) { dynamic_ids_.push_back(id); }
  [[nodiscard]] const std::vector<FrameId>& dynamic_frame_ids() const {
    return dynamic_ids_;
  }

  // --- Lifecycle (structural fault domain) -------------------------------
  // A crashed ECU stops producing and loses its volatile CHI contents;
  // on restart it rejoins with empty buffers at a cycle boundary.

  [[nodiscard]] bool is_up() const { return up_; }

  /// Power the host off: drop all buffered messages (returned for
  /// upstream accounting) and refuse writes until restart().
  std::vector<PendingMessage> shutdown();

  /// Power the host back on with empty buffers.
  void restart() { up_ = true; }

 private:
  units::NodeId id_;
  std::string name_;
  StaticBufferSet static_buffers_;
  DynamicQueue dynamic_queue_;
  std::vector<FrameId> dynamic_ids_;
  bool up_ = true;
};

}  // namespace coeff::flexray
