// FlexRay frame format: header, payload, trailer CRC.
//
// Layout (FlexRay spec v2.1 §4.1):
//   header  : 5 indicator bits, 11-bit frame ID, 7-bit payload length
//             (in 2-byte words), 11-bit header CRC, 6-bit cycle count
//   payload : 0..254 bytes
//   trailer : 24-bit frame CRC
//
// The header CRC covers the sync/startup indicators, frame ID and payload
// length (20 bits, polynomial 0x385, init 0x1A). The frame CRC covers the
// whole frame (polynomial 0x5D6DCB; init 0xFEDCBA on channel A, 0xABCDEF
// on channel B so that cross-channel misrouting is detectable).
#pragma once

#include <cstdint>
#include <vector>

#include "flexray/config.hpp"
#include "units/units.hpp"

namespace coeff::flexray {

/// 11-bit frame identifier; equals the slot number it is sent in.
/// A strong type (units::FrameId): constructing one from a slot number
/// goes through units::to_frame_id, and the raw wire value is `.value()`.
using FrameId = units::FrameId;
inline constexpr FrameId kMaxFrameId{2047};

/// CRC over an MSB-first bit stream. Exposed for tests.
[[nodiscard]] std::uint32_t crc_bits(const std::vector<bool>& bits,
                                     std::uint32_t poly, int width,
                                     std::uint32_t init);

/// 11-bit FlexRay header CRC over (sync, startup, frame id, length).
[[nodiscard]] std::uint16_t header_crc(bool sync, bool startup, FrameId id,
                                       std::uint8_t payload_words);

/// 24-bit FlexRay frame CRC over header + payload bytes.
[[nodiscard]] std::uint32_t frame_crc(ChannelId channel,
                                      const std::vector<std::uint8_t>& bytes);

struct FrameHeader {
  bool reserved = false;
  bool payload_preamble = false;
  bool null_frame = false;  ///< true when the slot carries no new data
  bool sync = false;
  bool startup = false;
  FrameId id{0};
  std::uint8_t payload_words = 0;  ///< payload length in 16-bit words
  std::uint16_t crc = 0;           ///< 11-bit header CRC
  std::uint8_t cycle_count = 0;    ///< 6-bit cycle counter
};

/// A fully assembled frame as it appears on one channel.
class Frame {
 public:
  /// Build a data frame; computes both CRCs. Throws on invalid id or
  /// payload size.
  static Frame make(ChannelId channel, FrameId id, std::uint8_t cycle_count,
                    std::vector<std::uint8_t> payload, bool sync = false,
                    bool startup = false);

  /// Build a null frame (slot owned but nothing to send).
  static Frame make_null(ChannelId channel, FrameId id,
                         std::uint8_t cycle_count);

  /// Assemble a frame from already-parsed wire parts without
  /// recomputing anything (codec use; `verify()` tells whether the
  /// parts are internally consistent).
  static Frame assemble(ChannelId channel, const FrameHeader& header,
                        std::vector<std::uint8_t> payload,
                        std::uint32_t trailer_crc);

  [[nodiscard]] const FrameHeader& header() const { return header_; }
  [[nodiscard]] const std::vector<std::uint8_t>& payload() const {
    return payload_;
  }
  [[nodiscard]] std::uint32_t trailer_crc() const { return trailer_crc_; }
  [[nodiscard]] ChannelId channel() const { return channel_; }

  /// Total on-the-wire size in bits: 40 header + payload + 24 trailer.
  [[nodiscard]] std::int64_t size_bits() const;

  /// Recompute both CRCs and compare against the stored ones. A frame
  /// tampered with via `corrupt_*` fails this check.
  [[nodiscard]] bool verify() const;

  /// Flip one payload bit (fault-injection hook). `bit` wraps modulo the
  /// payload size; corrupting a zero-payload frame flips a header bit
  /// (the frame id LSB) instead.
  void corrupt_payload_bit(std::size_t bit);

  /// Flip a header bit: the frame-id bit `bit % 11`.
  void corrupt_header_bit(std::size_t bit);

 private:
  Frame() = default;

  FrameHeader header_;
  std::vector<std::uint8_t> payload_;
  std::uint32_t trailer_crc_ = 0;
  ChannelId channel_ = ChannelId::kA;
};

/// Serialize header+payload into the byte stream the frame CRC covers.
[[nodiscard]] std::vector<std::uint8_t> frame_bytes(const FrameHeader& h,
                                                    const std::vector<std::uint8_t>& payload);

}  // namespace coeff::flexray
