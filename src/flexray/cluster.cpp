#include "flexray/cluster.hpp"

#include <stdexcept>
#include <string>

namespace coeff::flexray {

Cluster::Cluster(sim::Engine& engine, const ClusterConfig& cfg,
                 TransmissionPolicy& policy, CorruptionFn corruption,
                 sim::Trace* trace)
    : engine_(engine),
      timing_(cfg),
      policy_(policy),
      channels_{Channel{ChannelId::kA, corruption},
                Channel{ChannelId::kB, corruption}},
      trace_(trace) {}

void Cluster::run_cycles(std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    execute_cycle(next_cycle_);
    ++next_cycle_;
  }
}

void Cluster::run_until(sim::Time t) {
  while (timing_.cycle_start(next_cycle_) < t) {
    execute_cycle(next_cycle_);
    ++next_cycle_;
  }
}

bool Cluster::compiled_cycle_allowed(sim::Time start, sim::Time end) const {
  if (mode_ != EngineMode::kCompiled) return false;
  if (!policy_.compiled_capable()) return false;
  // The phased walk never computes per-slot structural corruption, so
  // it only runs through cycles where no babble/drift window can touch
  // the wire; availability (dark channels) changes only at cycle
  // boundaries and is handled by both walks identically.
  if (faults_ != nullptr && faults_->wire_faults_possible(start, end)) {
    return false;
  }
  return true;
}

void Cluster::execute_cycle(units::CycleIndex cycle) {
  const sim::Time start = timing_.cycle_start(cycle);
  engine_.run_until(start);  // deliver arrivals due before this cycle
  if (trace_) trace_->emit(start, sim::TraceKind::kCycleStart, cycle.value());
  policy_.on_cycle_start(cycle, start);
  apply_topology_events(cycle, start);

  const sim::Time end = timing_.cycle_start(cycle + 1);
  if (compiled_cycle_allowed(start, end)) {
    ++compiled_cycles_;
    arena_.reset();
    execute_static_segment_compiled(cycle);
    execute_dynamic_segment_compiled(cycle, ChannelId::kA);
    execute_dynamic_segment_compiled(cycle, ChannelId::kB);
  } else {
    execute_static_segment(cycle);
    execute_dynamic_segment(cycle, ChannelId::kA);
    execute_dynamic_segment(cycle, ChannelId::kB);
  }

  engine_.run_until(end);
  policy_.on_cycle_end(cycle, end);
}

void Cluster::apply_topology_events(units::CycleIndex cycle, sim::Time at) {
  if (faults_ == nullptr) return;
  for (const TopologyEvent& ev : faults_->poll(at)) {
    switch (ev.kind) {
      case TopologyEventKind::kChannelDown:
        channels_[static_cast<std::size_t>(ev.channel)].set_available(false);
        if (trace_) {
          trace_->emit(at, sim::TraceKind::kChannelDown,
                       static_cast<std::int64_t>(ev.channel), cycle.value());
        }
        break;
      case TopologyEventKind::kChannelUp:
        channels_[static_cast<std::size_t>(ev.channel)].set_available(true);
        if (trace_) {
          trace_->emit(at, sim::TraceKind::kChannelUp,
                       static_cast<std::int64_t>(ev.channel), cycle.value());
        }
        break;
      case TopologyEventKind::kNodeCrash:
        if (trace_) {
          trace_->emit(at, sim::TraceKind::kNodeCrash, ev.node.value(),
                       cycle.value());
        }
        break;
      case TopologyEventKind::kNodeRestart:
        if (trace_) {
          trace_->emit(at, sim::TraceKind::kNodeRestart, ev.node.value(),
                       cycle.value());
        }
        break;
    }
    policy_.on_topology_event(ev, cycle, at);
  }
}

bool Cluster::structural_corruption(const TxRequest& req, units::SlotId slot,
                                    ChannelId channel, sim::Time at) const {
  if (faults_ == nullptr) return false;
  return faults_->slot_jammed(slot, channel, at) ||
         faults_->node_out_of_sync(req.sender, at);
}

void Cluster::execute_static_segment(units::CycleIndex cycle) {
  const ClusterConfig& cfg = config();
  for (units::SlotId slot{1};
       slot.value() <= cfg.g_number_of_static_slots; ++slot) {
    const sim::Time slot_start = timing_.static_slot_start(cycle, slot);
    engine_.run_until(slot_start);
    for (auto& channel : channels_) {
      auto req = policy_.static_slot(channel.id(), cycle, slot);
      if (!req) continue;
      if (req->frame_id != units::to_frame_id(slot)) {
        throw std::logic_error(
            "Cluster: static frame id " +
            std::to_string(req->frame_id.value()) + " does not match slot " +
            std::to_string(slot.value()));
      }
      if (req->payload_bits > cfg.static_slot_capacity_bits()) {
        throw std::logic_error("Cluster: static payload exceeds slot capacity");
      }
      if (!channel.available()) {
        // Blackout: the frame never reaches the wire. The outcome is
        // still reported so the scheduler settles the copy instead of
        // waiting forever for a channel that cannot answer; nothing is
        // traced (receivers observe silence, not a corrupted frame).
        policy_.on_tx_complete(channel.lose(*req, slot_start,
                                            cfg.static_slot_duration(), cycle,
                                            slot, Segment::kStatic));
        continue;
      }
      // A static slot always occupies its full fixed duration on the wire.
      const TxOutcome out =
          channel.transmit(*req, slot_start, cfg.static_slot_duration(), cycle,
                           slot, Segment::kStatic,
                           structural_corruption(*req, slot, channel.id(),
                                                 slot_start));
      if (trace_) {
        trace_->emit(slot_start,
                     out.corrupted ? sim::TraceKind::kTxCorrupted
                                   : sim::TraceKind::kTxSuccess,
                     req->sender.value(), req->frame_id.value(),
                     static_cast<std::int64_t>(channel.id()),
                     req->payload_bits, req->retransmission ? "retx" : "");
        if (req->failover) {
          trace_->emit(slot_start, sim::TraceKind::kFailover,
                       req->sender.value(), slot.value(),
                       static_cast<std::int64_t>(channel.id()),
                       req->payload_bits);
        }
      }
      policy_.on_tx_complete(out);
    }
  }
}

void Cluster::execute_dynamic_segment(units::CycleIndex cycle, ChannelId cid) {
  const ClusterConfig& cfg = config();
  Channel& channel = channels_[static_cast<std::size_t>(cid)];
  units::MinislotId minislot{0};
  units::SlotId slot_counter{cfg.g_number_of_static_slots + 1};

  while (minislot.value() < cfg.g_number_of_minislots) {
    const sim::Time at = timing_.minislot_start(cycle, minislot);
    engine_.run_until(at);
    const std::int64_t remaining =
        cfg.g_number_of_minislots - minislot.value();
    auto req =
        policy_.dynamic_slot(cid, cycle, slot_counter, minislot, remaining);
    bool sent = false;
    if (req) {
      const std::int64_t need = cfg.minislots_for(req->payload_bits);
      // FTDMA rule: a transmission may start only at or before pLatestTx
      // and must complete within the dynamic segment.
      const bool starts_in_time = minislot + 1 <= cfg.latest_tx_minislot();
      if (starts_in_time && need <= remaining) {
        const sim::Time tx_start =
            at + units::to_time(cfg.gd_minislot_action_point_offset,
                                cfg.gd_macrotick);
        if (!channel.available()) {
          // Blackout: the sender clocks its frame into a dark wire —
          // FTDMA timing advances exactly as for a real send, but the
          // frame is lost and nothing is traced or charged to stats.
          policy_.on_tx_complete(
              channel.lose(*req, tx_start,
                           cfg.transmission_time(req->payload_bits), cycle,
                           slot_counter, Segment::kDynamic));
          minislot = minislot + need;
          sent = true;
          ++slot_counter;
          continue;
        }
        const TxOutcome out =
            channel.transmit(*req, tx_start,
                             cfg.transmission_time(req->payload_bits), cycle,
                             slot_counter, Segment::kDynamic,
                             structural_corruption(*req, slot_counter,
                                                   channel.id(), tx_start));
        channel.account_minislots(need);
        if (trace_) {
          trace_->emit(tx_start,
                       out.corrupted ? sim::TraceKind::kTxCorrupted
                                     : sim::TraceKind::kTxSuccess,
                       req->sender.value(), req->frame_id.value(),
                       static_cast<std::int64_t>(cid), req->payload_bits,
                       req->retransmission ? "retx" : "");
        }
        policy_.on_tx_complete(out);
        minislot = minislot + need;
        sent = true;
      } else {
        policy_.on_dynamic_declined(cid, cycle, *req);
      }
    }
    if (!sent) {
      ++minislot;  // empty dynamic slot consumes exactly one minislot
    }
    ++slot_counter;
  }
}

// --- Compiled cycle walk (DESIGN.md §12) --------------------------------
//
// Equivalence argument, in brief: a compiled_capable() policy promises
// its slot decisions never read state written by same-cycle
// on_tx_complete calls, so a run of static-slot decisions can be taken
// before any of their outcomes commit as long as (a) decisions keep the
// interpreted call order (slot-major, channel A before B), (b) commits
// keep that same order, and (c) no engine event fires inside the run —
// events (dynamic arrivals) do mutate decision state, so a pending
// event bounds the chunk and fires at exactly the sequence point the
// interpreted walk would fire it (between the previous slot's commit
// and the next slot's decision). Verdicts are drawn per chunk in wire
// order through the batch hook, which walks the same model the
// CorruptionFn wraps — an identical verdict stream.

void Cluster::execute_static_segment_compiled(units::CycleIndex cycle) {
  const ClusterConfig& cfg = config();
  const std::int64_t nslots = cfg.g_number_of_static_slots;
  const sim::Time slot_duration = cfg.static_slot_duration();

  /// One honoured static-slot request, staged between decision and
  /// commit. Trivially destructible: lives in the per-cycle arena.
  struct Decision {
    TxRequest req;
    sim::Time slot_start;
    std::int64_t slot;
    std::uint8_t channel;
    bool lost;  ///< channel dark: lose() instead of transmit()
  };
  Decision* decisions =
      arena_.allocate<Decision>(static_cast<std::size_t>(2 * nslots));

  std::int64_t slot = 1;
  // Slot starts form an arithmetic sequence; one anchor lookup replaces
  // a per-slot timing call (same value: static_slot_start(c, s) =
  // anchor + duration * (s - 1)).
  const sim::Time seg_base = timing_.static_slot_start(cycle, units::SlotId{1});
  // The queue head only moves inside run_until (events are scheduled by
  // event callbacks, never by decide/commit code), so it is re-read only
  // after running the engine instead of once per slot.
  sim::Time next_event = engine_.next_event_time();
  while (slot <= nslots) {
    // Chunk = maximal run of slots strictly before the next engine
    // event; an event due at or before this slot's start fires first,
    // exactly as the interpreted walk's per-slot run_until would.
    const sim::Time slot_start = seg_base + slot_duration * (slot - 1);
    if (next_event <= slot_start) {
      engine_.run_until(slot_start);
      next_event = engine_.next_event_time();
      continue;  // re-read: callbacks may schedule more events
    }
    // Largest s with seg_base + duration * (s - 1) < next_event; the
    // subtraction cannot underflow because slot_start < next_event.
    std::int64_t chunk_end =
        1 + ((next_event - seg_base).ns() - 1) / slot_duration.ns();
    if (chunk_end > nslots) chunk_end = nslots;

    // Decide phase: interpreted call order, no commits yet. The policy
    // may serve the whole chunk from its batched fast path; the sink
    // re-applies the per-request validation the interpreted walk does.
    struct DecisionSink final : TransmissionPolicy::StaticChunkSink {
      Cluster* cluster;
      units::CycleIndex cycle;
      sim::Time seg_base;
      sim::Time slot_duration;
      std::int64_t capacity_bits;
      Decision* decisions;
      std::size_t n_decisions = 0;
      std::size_t n_wire = 0;
      void stage(units::SlotId slot, ChannelId channel,
                 const TxRequest& req) override {
        if (req.frame_id != units::to_frame_id(slot)) {
          throw std::logic_error(
              "Cluster: static frame id " +
              std::to_string(req.frame_id.value()) +
              " does not match slot " + std::to_string(slot.value()));
        }
        if (req.payload_bits > capacity_bits) {
          throw std::logic_error(
              "Cluster: static payload exceeds slot capacity");
        }
        Decision& d = decisions[n_decisions++];
        d.req = req;
        d.slot_start = seg_base + slot_duration * (slot.value() - 1);
        d.slot = slot.value();
        d.channel = static_cast<std::uint8_t>(channel);
        d.lost = !cluster->channels_[static_cast<std::size_t>(channel)]
                      .available();
        if (!d.lost) ++n_wire;
      }
    };
    DecisionSink sink;
    sink.cluster = this;
    sink.cycle = cycle;
    sink.seg_base = seg_base;
    sink.slot_duration = slot_duration;
    sink.capacity_bits = cfg.static_slot_capacity_bits();
    sink.decisions = decisions;
    policy_.decide_static_chunk(cycle, slot, chunk_end, sink);
    const std::size_t n_decisions = sink.n_decisions;
    const std::size_t n_wire = sink.n_wire;

    // Verdict phase: one batched draw over the chunk's wire frames, in
    // wire order. Falls back to per-frame draws at commit when no batch
    // hook is installed.
    bool* verdicts = nullptr;
    if (batch_corruption_ && n_wire > 0) {
      VerdictQuery* queries = arena_.allocate<VerdictQuery>(n_wire);
      verdicts = arena_.allocate<bool>(n_wire);
      std::size_t qi = 0;
      for (std::size_t i = 0; i < n_decisions; ++i) {
        if (decisions[i].lost) continue;
        queries[qi].request = &decisions[i].req;
        queries[qi].channel = static_cast<ChannelId>(decisions[i].channel);
        queries[qi].start = decisions[i].slot_start;
        ++qi;
      }
      batch_corruption_(queries, n_wire, verdicts);
    }

    // Commit phase: same order as the decisions; traces and policy
    // callbacks land exactly where the interpreted walk puts them.
    std::size_t vi = 0;
    for (std::size_t i = 0; i < n_decisions; ++i) {
      const Decision& d = decisions[i];
      Channel& channel = channels_[d.channel];
      if (d.lost) {
        policy_.on_tx_complete(channel.lose(d.req, d.slot_start, slot_duration,
                                            cycle, units::SlotId{d.slot},
                                            Segment::kStatic));
        continue;
      }
      // No structural corruption here: the compiled walk only runs
      // through wire-fault-quiescent cycles (compiled_cycle_allowed).
      const TxOutcome out =
          verdicts != nullptr
              ? channel.transmit_with_verdict(
                    d.req, d.slot_start, slot_duration, cycle,
                    units::SlotId{d.slot}, Segment::kStatic, verdicts[vi++])
              : channel.transmit(d.req, d.slot_start, slot_duration, cycle,
                                 units::SlotId{d.slot}, Segment::kStatic);
      if (trace_) {
        trace_->emit(d.slot_start,
                     out.corrupted ? sim::TraceKind::kTxCorrupted
                                   : sim::TraceKind::kTxSuccess,
                     d.req.sender.value(), d.req.frame_id.value(),
                     static_cast<std::int64_t>(d.channel), d.req.payload_bits,
                     d.req.retransmission ? "retx" : "");
        if (d.req.failover) {
          trace_->emit(d.slot_start, sim::TraceKind::kFailover,
                       d.req.sender.value(), d.slot,
                       static_cast<std::int64_t>(d.channel),
                       d.req.payload_bits);
        }
      }
      policy_.on_tx_complete(out);
    }

    slot = chunk_end + 1;
  }
}

void Cluster::execute_dynamic_segment_compiled(units::CycleIndex cycle,
                                               ChannelId cid) {
  const ClusterConfig& cfg = config();
  Channel& channel = channels_[static_cast<std::size_t>(cid)];
  const std::int64_t nminislots = cfg.g_number_of_minislots;
  const sim::Time minislot_duration = cfg.minislot_duration();
  units::MinislotId minislot{0};
  units::SlotId slot_counter{cfg.g_number_of_static_slots + 1};

  // Same caching as the static walk: the queue head only moves inside
  // run_until, so one re-read per engine run replaces one per minislot.
  sim::Time next_event = engine_.next_event_time();
  while (minislot.value() < nminislots) {
    const sim::Time at = timing_.minislot_start(cycle, minislot);
    if (next_event <= at) {
      engine_.run_until(at);
      next_event = engine_.next_event_time();
    }
    const std::int64_t remaining = nminislots - minislot.value();
    auto req =
        policy_.dynamic_slot(cid, cycle, slot_counter, minislot, remaining);
    bool sent = false;
    if (req) {
      const std::int64_t need = cfg.minislots_for(req->payload_bits);
      const bool starts_in_time = minislot + 1 <= cfg.latest_tx_minislot();
      if (starts_in_time && need <= remaining) {
        const sim::Time tx_start =
            at + units::to_time(cfg.gd_minislot_action_point_offset,
                                cfg.gd_macrotick);
        if (!channel.available()) {
          policy_.on_tx_complete(
              channel.lose(*req, tx_start,
                           cfg.transmission_time(req->payload_bits), cycle,
                           slot_counter, Segment::kDynamic));
          minislot = minislot + need;
          sent = true;
          ++slot_counter;
          continue;
        }
        const TxOutcome out = channel.transmit(
            *req, tx_start, cfg.transmission_time(req->payload_bits), cycle,
            slot_counter, Segment::kDynamic);
        channel.account_minislots(need);
        if (trace_) {
          trace_->emit(tx_start,
                       out.corrupted ? sim::TraceKind::kTxCorrupted
                                     : sim::TraceKind::kTxSuccess,
                       req->sender.value(), req->frame_id.value(),
                       static_cast<std::int64_t>(cid), req->payload_bits,
                       req->retransmission ? "retx" : "");
        }
        policy_.on_tx_complete(out);
        minislot = minislot + need;
        sent = true;
      } else {
        policy_.on_dynamic_declined(cid, cycle, *req);
      }
    }
    if (!sent) {
      // Idle (or declined) minislot. When the policy can prove the next
      // possible transmission sits at a higher slot counter, skip the
      // idle minislots in one jump — each skipped decision would have
      // been a side-effect-free nullopt. Events bound the jump: a
      // pending arrival may enqueue a frame for any counter, so no
      // minislot at or past its timestamp is skipped.
      std::int64_t extra = 0;
      if (!req) {
        const std::int64_t next_frame =
            policy_.dynamic_next_frame(cid, slot_counter.value() + 1);
        std::int64_t by_frame =
            next_frame == kNoDynamicFrame
                ? nminislots - 1 - minislot.value()
                : next_frame - slot_counter.value() - 1;
        if (next_event < sim::Time::max()) {
          // Largest i with minislot_start(minislot + i) < next_event.
          const std::int64_t gap_ns = (next_event - at).ns() - 1;
          const std::int64_t by_event =
              gap_ns < 0 ? 0 : gap_ns / minislot_duration.ns();
          if (by_event < by_frame) by_frame = by_event;
        }
        if (by_frame > 0) extra = by_frame;
      }
      minislot = minislot + (1 + extra);
      slot_counter = slot_counter + extra;
    }
    ++slot_counter;
  }
}

}  // namespace coeff::flexray
