#include "flexray/cluster.hpp"

#include <stdexcept>
#include <string>

namespace coeff::flexray {

Cluster::Cluster(sim::Engine& engine, const ClusterConfig& cfg,
                 TransmissionPolicy& policy, CorruptionFn corruption,
                 sim::Trace* trace)
    : engine_(engine),
      timing_(cfg),
      policy_(policy),
      channels_{Channel{ChannelId::kA, corruption},
                Channel{ChannelId::kB, corruption}},
      trace_(trace) {}

void Cluster::run_cycles(std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    execute_cycle(next_cycle_);
    ++next_cycle_;
  }
}

void Cluster::run_until(sim::Time t) {
  while (timing_.cycle_start(next_cycle_) < t) {
    execute_cycle(next_cycle_);
    ++next_cycle_;
  }
}

void Cluster::execute_cycle(units::CycleIndex cycle) {
  const sim::Time start = timing_.cycle_start(cycle);
  engine_.run_until(start);  // deliver arrivals due before this cycle
  if (trace_) trace_->emit(start, sim::TraceKind::kCycleStart, cycle.value());
  policy_.on_cycle_start(cycle, start);
  apply_topology_events(cycle, start);

  execute_static_segment(cycle);
  execute_dynamic_segment(cycle, ChannelId::kA);
  execute_dynamic_segment(cycle, ChannelId::kB);

  const sim::Time end = timing_.cycle_start(cycle + 1);
  engine_.run_until(end);
  policy_.on_cycle_end(cycle, end);
}

void Cluster::apply_topology_events(units::CycleIndex cycle, sim::Time at) {
  if (faults_ == nullptr) return;
  for (const TopologyEvent& ev : faults_->poll(at)) {
    switch (ev.kind) {
      case TopologyEventKind::kChannelDown:
        channels_[static_cast<std::size_t>(ev.channel)].set_available(false);
        if (trace_) {
          trace_->emit(at, sim::TraceKind::kChannelDown,
                       static_cast<std::int64_t>(ev.channel), cycle.value());
        }
        break;
      case TopologyEventKind::kChannelUp:
        channels_[static_cast<std::size_t>(ev.channel)].set_available(true);
        if (trace_) {
          trace_->emit(at, sim::TraceKind::kChannelUp,
                       static_cast<std::int64_t>(ev.channel), cycle.value());
        }
        break;
      case TopologyEventKind::kNodeCrash:
        if (trace_) {
          trace_->emit(at, sim::TraceKind::kNodeCrash, ev.node.value(),
                       cycle.value());
        }
        break;
      case TopologyEventKind::kNodeRestart:
        if (trace_) {
          trace_->emit(at, sim::TraceKind::kNodeRestart, ev.node.value(),
                       cycle.value());
        }
        break;
    }
    policy_.on_topology_event(ev, cycle, at);
  }
}

bool Cluster::structural_corruption(const TxRequest& req, units::SlotId slot,
                                    ChannelId channel, sim::Time at) const {
  if (faults_ == nullptr) return false;
  return faults_->slot_jammed(slot, channel, at) ||
         faults_->node_out_of_sync(req.sender, at);
}

void Cluster::execute_static_segment(units::CycleIndex cycle) {
  const ClusterConfig& cfg = config();
  for (units::SlotId slot{1};
       slot.value() <= cfg.g_number_of_static_slots; ++slot) {
    const sim::Time slot_start = timing_.static_slot_start(cycle, slot);
    engine_.run_until(slot_start);
    for (auto& channel : channels_) {
      auto req = policy_.static_slot(channel.id(), cycle, slot);
      if (!req) continue;
      if (req->frame_id != units::to_frame_id(slot)) {
        throw std::logic_error(
            "Cluster: static frame id " +
            std::to_string(req->frame_id.value()) + " does not match slot " +
            std::to_string(slot.value()));
      }
      if (req->payload_bits > cfg.static_slot_capacity_bits()) {
        throw std::logic_error("Cluster: static payload exceeds slot capacity");
      }
      if (!channel.available()) {
        // Blackout: the frame never reaches the wire. The outcome is
        // still reported so the scheduler settles the copy instead of
        // waiting forever for a channel that cannot answer; nothing is
        // traced (receivers observe silence, not a corrupted frame).
        policy_.on_tx_complete(channel.lose(*req, slot_start,
                                            cfg.static_slot_duration(), cycle,
                                            slot, Segment::kStatic));
        continue;
      }
      // A static slot always occupies its full fixed duration on the wire.
      const TxOutcome out =
          channel.transmit(*req, slot_start, cfg.static_slot_duration(), cycle,
                           slot, Segment::kStatic,
                           structural_corruption(*req, slot, channel.id(),
                                                 slot_start));
      if (trace_) {
        trace_->emit(slot_start,
                     out.corrupted ? sim::TraceKind::kTxCorrupted
                                   : sim::TraceKind::kTxSuccess,
                     req->sender.value(), req->frame_id.value(),
                     static_cast<std::int64_t>(channel.id()),
                     req->payload_bits, req->retransmission ? "retx" : "");
        if (req->failover) {
          trace_->emit(slot_start, sim::TraceKind::kFailover,
                       req->sender.value(), slot.value(),
                       static_cast<std::int64_t>(channel.id()),
                       req->payload_bits);
        }
      }
      policy_.on_tx_complete(out);
    }
  }
}

void Cluster::execute_dynamic_segment(units::CycleIndex cycle, ChannelId cid) {
  const ClusterConfig& cfg = config();
  Channel& channel = channels_[static_cast<std::size_t>(cid)];
  units::MinislotId minislot{0};
  units::SlotId slot_counter{cfg.g_number_of_static_slots + 1};

  while (minislot.value() < cfg.g_number_of_minislots) {
    const sim::Time at = timing_.minislot_start(cycle, minislot);
    engine_.run_until(at);
    const std::int64_t remaining =
        cfg.g_number_of_minislots - minislot.value();
    auto req =
        policy_.dynamic_slot(cid, cycle, slot_counter, minislot, remaining);
    bool sent = false;
    if (req) {
      const std::int64_t need = cfg.minislots_for(req->payload_bits);
      // FTDMA rule: a transmission may start only at or before pLatestTx
      // and must complete within the dynamic segment.
      const bool starts_in_time = minislot + 1 <= cfg.latest_tx_minislot();
      if (starts_in_time && need <= remaining) {
        const sim::Time tx_start =
            at + units::to_time(cfg.gd_minislot_action_point_offset,
                                cfg.gd_macrotick);
        if (!channel.available()) {
          // Blackout: the sender clocks its frame into a dark wire —
          // FTDMA timing advances exactly as for a real send, but the
          // frame is lost and nothing is traced or charged to stats.
          policy_.on_tx_complete(
              channel.lose(*req, tx_start,
                           cfg.transmission_time(req->payload_bits), cycle,
                           slot_counter, Segment::kDynamic));
          minislot = minislot + need;
          sent = true;
          ++slot_counter;
          continue;
        }
        const TxOutcome out =
            channel.transmit(*req, tx_start,
                             cfg.transmission_time(req->payload_bits), cycle,
                             slot_counter, Segment::kDynamic,
                             structural_corruption(*req, slot_counter,
                                                   channel.id(), tx_start));
        channel.account_minislots(need);
        if (trace_) {
          trace_->emit(tx_start,
                       out.corrupted ? sim::TraceKind::kTxCorrupted
                                     : sim::TraceKind::kTxSuccess,
                       req->sender.value(), req->frame_id.value(),
                       static_cast<std::int64_t>(cid), req->payload_bits,
                       req->retransmission ? "retx" : "");
        }
        policy_.on_tx_complete(out);
        minislot = minislot + need;
        sent = true;
      } else {
        policy_.on_dynamic_declined(cid, cycle, *req);
      }
    }
    if (!sent) {
      ++minislot;  // empty dynamic slot consumes exactly one minislot
    }
    ++slot_counter;
  }
}

}  // namespace coeff::flexray
