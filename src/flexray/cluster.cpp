#include "flexray/cluster.hpp"

#include <stdexcept>
#include <string>

namespace coeff::flexray {

Cluster::Cluster(sim::Engine& engine, const ClusterConfig& cfg,
                 TransmissionPolicy& policy, CorruptionFn corruption,
                 sim::Trace* trace)
    : engine_(engine),
      timing_(cfg),
      policy_(policy),
      channels_{Channel{ChannelId::kA, corruption},
                Channel{ChannelId::kB, corruption}},
      trace_(trace) {}

void Cluster::run_cycles(std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    execute_cycle(next_cycle_);
    ++next_cycle_;
  }
}

void Cluster::run_until(sim::Time t) {
  while (timing_.cycle_start(next_cycle_) < t) {
    execute_cycle(next_cycle_);
    ++next_cycle_;
  }
}

void Cluster::execute_cycle(units::CycleIndex cycle) {
  const sim::Time start = timing_.cycle_start(cycle);
  engine_.run_until(start);  // deliver arrivals due before this cycle
  if (trace_) trace_->emit(start, sim::TraceKind::kCycleStart, cycle.value());
  policy_.on_cycle_start(cycle, start);

  execute_static_segment(cycle);
  execute_dynamic_segment(cycle, ChannelId::kA);
  execute_dynamic_segment(cycle, ChannelId::kB);

  const sim::Time end = timing_.cycle_start(cycle + 1);
  engine_.run_until(end);
  policy_.on_cycle_end(cycle, end);
}

void Cluster::execute_static_segment(units::CycleIndex cycle) {
  const ClusterConfig& cfg = config();
  for (units::SlotId slot{1};
       slot.value() <= cfg.g_number_of_static_slots; ++slot) {
    const sim::Time slot_start = timing_.static_slot_start(cycle, slot);
    engine_.run_until(slot_start);
    for (auto& channel : channels_) {
      auto req = policy_.static_slot(channel.id(), cycle, slot);
      if (!req) continue;
      if (req->frame_id != units::to_frame_id(slot)) {
        throw std::logic_error(
            "Cluster: static frame id " +
            std::to_string(req->frame_id.value()) + " does not match slot " +
            std::to_string(slot.value()));
      }
      if (req->payload_bits > cfg.static_slot_capacity_bits()) {
        throw std::logic_error("Cluster: static payload exceeds slot capacity");
      }
      // A static slot always occupies its full fixed duration on the wire.
      const TxOutcome out =
          channel.transmit(*req, slot_start, cfg.static_slot_duration(), cycle,
                           slot, Segment::kStatic);
      if (trace_) {
        trace_->emit(slot_start,
                     out.corrupted ? sim::TraceKind::kTxCorrupted
                                   : sim::TraceKind::kTxSuccess,
                     req->sender.value(), req->frame_id.value(),
                     static_cast<std::int64_t>(channel.id()),
                     req->payload_bits, req->retransmission ? "retx" : "");
      }
      policy_.on_tx_complete(out);
    }
  }
}

void Cluster::execute_dynamic_segment(units::CycleIndex cycle, ChannelId cid) {
  const ClusterConfig& cfg = config();
  Channel& channel = channels_[static_cast<std::size_t>(cid)];
  units::MinislotId minislot{0};
  units::SlotId slot_counter{cfg.g_number_of_static_slots + 1};

  while (minislot.value() < cfg.g_number_of_minislots) {
    const sim::Time at = timing_.minislot_start(cycle, minislot);
    engine_.run_until(at);
    const std::int64_t remaining =
        cfg.g_number_of_minislots - minislot.value();
    auto req =
        policy_.dynamic_slot(cid, cycle, slot_counter, minislot, remaining);
    bool sent = false;
    if (req) {
      const std::int64_t need = cfg.minislots_for(req->payload_bits);
      // FTDMA rule: a transmission may start only at or before pLatestTx
      // and must complete within the dynamic segment.
      const bool starts_in_time = minislot + 1 <= cfg.latest_tx_minislot();
      if (starts_in_time && need <= remaining) {
        const sim::Time tx_start =
            at + units::to_time(cfg.gd_minislot_action_point_offset,
                                cfg.gd_macrotick);
        const TxOutcome out =
            channel.transmit(*req, tx_start,
                             cfg.transmission_time(req->payload_bits), cycle,
                             slot_counter, Segment::kDynamic);
        channel.account_minislots(need);
        if (trace_) {
          trace_->emit(tx_start,
                       out.corrupted ? sim::TraceKind::kTxCorrupted
                                     : sim::TraceKind::kTxSuccess,
                       req->sender.value(), req->frame_id.value(),
                       static_cast<std::int64_t>(cid), req->payload_bits,
                       req->retransmission ? "retx" : "");
        }
        policy_.on_tx_complete(out);
        minislot = minislot + need;
        sent = true;
      } else {
        policy_.on_dynamic_declined(cid, cycle, *req);
      }
    }
    if (!sent) {
      ++minislot;  // empty dynamic slot consumes exactly one minislot
    }
    ++slot_counter;
  }
}

}  // namespace coeff::flexray
