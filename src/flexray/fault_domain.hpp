// Structural (topology-level) fault seam.
//
// PR 2's fault layer models *bit* faults: every injected fault is a
// corrupted frame. This header lifts the fault domain one level up, to
// the structures FlexRay's redundancy exists to survive — an ECU
// crashing and later restarting, a whole channel going dark, a babbling
// node jamming a slot, a node drifting out of clock sync.
//
// Layering: coeff_fault links against coeff_flexray, never the other
// way around, so the *interface* the Cluster polls lives here while the
// seeded implementation (fault::NodeFaultModel) lives in src/fault/.
// The Cluster drains topology transitions at each cycle boundary (state
// changes are cycle-aligned, like plan swaps) and consults the current
// state when clocking slots.
#pragma once

#include <vector>

#include "flexray/config.hpp"
#include "sim/time.hpp"
#include "units/units.hpp"

namespace coeff::flexray {

enum class TopologyEventKind : std::uint8_t {
  kNodeCrash,
  kNodeRestart,
  kChannelDown,
  kChannelUp,
};

[[nodiscard]] constexpr const char* to_string(TopologyEventKind k) {
  switch (k) {
    case TopologyEventKind::kNodeCrash:
      return "node_crash";
    case TopologyEventKind::kNodeRestart:
      return "node_restart";
    case TopologyEventKind::kChannelDown:
      return "channel_down";
    case TopologyEventKind::kChannelUp:
      return "channel_up";
  }
  return "unknown";
}

/// One topology state transition, applied at a cycle boundary.
struct TopologyEvent {
  TopologyEventKind kind = TopologyEventKind::kNodeCrash;
  /// Valid for kNodeCrash/kNodeRestart.
  units::NodeId node{-1};
  /// Valid for kChannelDown/kChannelUp.
  ChannelId channel = ChannelId::kA;
  /// When the underlying fault fired (<= the cycle boundary at which the
  /// event is applied).
  sim::Time at;
};

/// What the Cluster polls. Implementations must be deterministic given
/// their seed: the same poll()/query sequence yields the same answers.
class StructuralFaultProvider {
 public:
  virtual ~StructuralFaultProvider() = default;

  /// Drain every transition that fires at or before `at`, ordered by
  /// fire time (ties: channels before nodes, ascending index). The
  /// provider's node_down()/channel_down() state advances accordingly.
  /// Called once per cycle boundary by the Cluster.
  virtual std::vector<TopologyEvent> poll(sim::Time at) = 0;

  /// Current state, as of the last poll().
  [[nodiscard]] virtual bool node_down(units::NodeId node) const = 0;
  [[nodiscard]] virtual bool channel_down(ChannelId channel) const = 0;

  /// A babbling idiot owns the wire in `slot` at `at`: any frame sent
  /// there collides and arrives corrupted.
  [[nodiscard]] virtual bool slot_jammed(units::SlotId slot, ChannelId channel,
                                         sim::Time at) const = 0;

  /// The node's local clock has drifted beyond the sync bound at `at`;
  /// its transmissions miss the action point and are unreceivable.
  [[nodiscard]] virtual bool node_out_of_sync(units::NodeId node,
                                              sim::Time at) const = 0;

  /// May any slot_jammed()/node_out_of_sync() query answer true inside
  /// [begin, end)? The Cluster's compiled cycle walk runs only through
  /// cycles where the answer is false (wire-level structural faults are
  /// per-slot state the phased walk does not model) and falls back to
  /// the interpreted walk otherwise. The conservative default keeps
  /// every provider correct; implementations with precomputed windows
  /// override it with an overlap test.
  [[nodiscard]] virtual bool wire_faults_possible(sim::Time begin,
                                                  sim::Time end) const {
    (void)begin;
    (void)end;
    return true;
  }
};

}  // namespace coeff::flexray
