#include "flexray/timing.hpp"

#include <stdexcept>

namespace coeff::flexray {

CycleTiming::CycleTiming(const ClusterConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
}

std::int64_t CycleTiming::cycle_index(sim::Time t) const {
  if (t < sim::Time::zero()) {
    throw std::invalid_argument("cycle_index: negative time");
  }
  return t / cfg_.cycle_duration();
}

sim::Time CycleTiming::cycle_start(std::int64_t c) const {
  return cfg_.cycle_duration() * c;
}

sim::Time CycleTiming::offset_in_cycle(sim::Time t) const {
  return t % cfg_.cycle_duration();
}

Segment CycleTiming::segment_at(sim::Time off) const {
  if (off < cfg_.static_segment_duration()) return Segment::kStatic;
  off -= cfg_.static_segment_duration();
  if (off < cfg_.dynamic_segment_duration()) return Segment::kDynamic;
  off -= cfg_.dynamic_segment_duration();
  if (off < cfg_.symbol_window_duration()) return Segment::kSymbolWindow;
  return Segment::kNetworkIdle;
}

sim::Time CycleTiming::static_slot_start(std::int64_t c,
                                         std::int64_t slot) const {
  if (slot < 1 || slot > cfg_.g_number_of_static_slots) {
    throw std::invalid_argument("static_slot_start: slot out of range");
  }
  return cycle_start(c) + cfg_.static_slot_duration() * (slot - 1);
}

std::int64_t CycleTiming::static_slot_at(sim::Time off) const {
  if (off < sim::Time::zero() || off >= cfg_.static_segment_duration()) {
    return 0;
  }
  return off / cfg_.static_slot_duration() + 1;
}

sim::Time CycleTiming::dynamic_segment_start(std::int64_t c) const {
  return cycle_start(c) + cfg_.static_segment_duration();
}

sim::Time CycleTiming::minislot_start(std::int64_t c, std::int64_t m) const {
  if (m < 0 || m >= cfg_.g_number_of_minislots) {
    throw std::invalid_argument("minislot_start: minislot out of range");
  }
  return dynamic_segment_start(c) + cfg_.minislot_duration() * m;
}

std::int64_t CycleTiming::next_cycle_at_or_after(sim::Time t) const {
  if (t <= sim::Time::zero()) return 0;
  const auto d = cfg_.cycle_duration();
  return (t.ns() + d.ns() - 1) / d.ns();
}

}  // namespace coeff::flexray
