#include "flexray/timing.hpp"

#include <stdexcept>

#include "units/convert.hpp"

namespace coeff::flexray {

CycleTiming::CycleTiming(const ClusterConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
}

units::CycleIndex CycleTiming::cycle_index(sim::Time t) const {
  if (t < sim::Time::zero()) {
    throw std::invalid_argument("cycle_index: negative time");
  }
  return units::CycleIndex{t / cfg_.cycle_duration()};
}

sim::Time CycleTiming::cycle_start(units::CycleIndex c) const {
  return cfg_.cycle_duration() * c.value();
}

units::CycleTime CycleTiming::offset_in_cycle(sim::Time t) const {
  return units::wrap_cycle_time(t, cfg_.cycle_duration());
}

Segment CycleTiming::segment_at(units::CycleTime off) const {
  sim::Time rest = units::to_time(off);
  if (rest < cfg_.static_segment_duration()) return Segment::kStatic;
  rest -= cfg_.static_segment_duration();
  if (rest < cfg_.dynamic_segment_duration()) return Segment::kDynamic;
  rest -= cfg_.dynamic_segment_duration();
  if (rest < cfg_.symbol_window_duration()) return Segment::kSymbolWindow;
  return Segment::kNetworkIdle;
}

sim::Time CycleTiming::static_slot_start(units::CycleIndex c,
                                         units::SlotId slot) const {
  if (slot.value() < 1 || slot.value() > cfg_.g_number_of_static_slots) {
    throw std::invalid_argument("static_slot_start: slot out of range");
  }
  return cycle_start(c) + cfg_.static_slot_duration() * (slot.value() - 1);
}

std::optional<units::SlotId> CycleTiming::static_slot_at(
    units::CycleTime off) const {
  const sim::Time t = units::to_time(off);
  if (t < sim::Time::zero() || t >= cfg_.static_segment_duration()) {
    return std::nullopt;
  }
  return units::SlotId{t / cfg_.static_slot_duration() + 1};
}

sim::Time CycleTiming::dynamic_segment_start(units::CycleIndex c) const {
  return cycle_start(c) + cfg_.static_segment_duration();
}

sim::Time CycleTiming::minislot_start(units::CycleIndex c,
                                      units::MinislotId m) const {
  if (m.value() < 0 || m.value() >= cfg_.g_number_of_minislots) {
    throw std::invalid_argument("minislot_start: minislot out of range");
  }
  return dynamic_segment_start(c) + cfg_.minislot_duration() * m.value();
}

units::CycleIndex CycleTiming::next_cycle_at_or_after(sim::Time t) const {
  if (t <= sim::Time::zero()) return units::CycleIndex{0};
  const auto d = cfg_.cycle_duration();
  return units::CycleIndex{(t.ns() + d.ns() - 1) / d.ns()};
}

}  // namespace coeff::flexray
