#include "flexray/codec.hpp"

namespace coeff::flexray {

namespace {

/// Read `width` bits MSB-first starting at absolute bit `pos`.
std::uint32_t read_bits(const std::vector<std::uint8_t>& bytes,
                        std::size_t pos, int width) {
  std::uint32_t value = 0;
  for (int i = 0; i < width; ++i) {
    const std::size_t bit = pos + static_cast<std::size_t>(i);
    const bool set =
        (bytes[bit / 8] & static_cast<std::uint8_t>(0x80u >> (bit % 8))) != 0;
    value = (value << 1) | (set ? 1u : 0u);
  }
  return value;
}

}  // namespace

const char* to_string(DecodeError e) {
  switch (e) {
    case DecodeError::kTruncated:
      return "truncated";
    case DecodeError::kLengthMismatch:
      return "length_mismatch";
    case DecodeError::kHeaderCrc:
      return "header_crc";
    case DecodeError::kFrameCrc:
      return "frame_crc";
    case DecodeError::kBadFrameId:
      return "bad_frame_id";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> wire =
      frame_bytes(frame.header(), frame.payload());
  const std::uint32_t crc = frame.trailer_crc();
  wire.push_back(static_cast<std::uint8_t>((crc >> 16) & 0xFF));
  wire.push_back(static_cast<std::uint8_t>((crc >> 8) & 0xFF));
  wire.push_back(static_cast<std::uint8_t>(crc & 0xFF));
  return wire;
}

DecodeResult decode_frame(ChannelId channel,
                          const std::vector<std::uint8_t>& wire) {
  DecodeResult result;
  // Minimum frame: 5 header bytes + 3 trailer bytes.
  if (wire.size() < 8) {
    result.error = DecodeError::kTruncated;
    return result;
  }

  FrameHeader header;
  header.reserved = read_bits(wire, 0, 1) != 0;
  header.payload_preamble = read_bits(wire, 1, 1) != 0;
  header.null_frame = read_bits(wire, 2, 1) != 0;
  header.sync = read_bits(wire, 3, 1) != 0;
  header.startup = read_bits(wire, 4, 1) != 0;
  header.id = FrameId{static_cast<std::uint16_t>(read_bits(wire, 5, 11))};
  header.payload_words = static_cast<std::uint8_t>(read_bits(wire, 16, 7));
  header.crc = static_cast<std::uint16_t>(read_bits(wire, 23, 11));
  header.cycle_count = static_cast<std::uint8_t>(read_bits(wire, 34, 6));

  if (header.id.value() == 0) {
    result.error = DecodeError::kBadFrameId;
    return result;
  }
  const std::size_t payload_bytes =
      static_cast<std::size_t>(header.payload_words) * 2;
  if (wire.size() != 5 + payload_bytes + 3) {
    result.error = DecodeError::kLengthMismatch;
    return result;
  }
  if (header_crc(header.sync, header.startup, header.id,
                 header.payload_words) != header.crc) {
    result.error = DecodeError::kHeaderCrc;
    return result;
  }

  std::vector<std::uint8_t> payload(wire.begin() + 5,
                                    wire.begin() + 5 +
                                        static_cast<std::ptrdiff_t>(
                                            payload_bytes));
  const std::uint32_t wire_crc =
      (static_cast<std::uint32_t>(wire[wire.size() - 3]) << 16) |
      (static_cast<std::uint32_t>(wire[wire.size() - 2]) << 8) |
      static_cast<std::uint32_t>(wire[wire.size() - 1]);
  if (frame_crc(channel, frame_bytes(header, payload)) != wire_crc) {
    result.error = DecodeError::kFrameCrc;
    return result;
  }

  result.frame = Frame::assemble(channel, header, std::move(payload),
                                 wire_crc);
  return result;
}

}  // namespace coeff::flexray
