// Bus channel model: transmission requests, outcomes, and per-channel
// accounting.
//
// A Channel does not decide *what* to send (that is the scheduler
// policy's job) nor *whether a fault occurs* (that is the fault
// injector's); it clocks a requested frame onto the wire, asks the
// corruption hook for a verdict, and keeps utilization statistics that
// the metrics layer reads (busy time per segment, frame/corruption
// counts).
#pragma once

#include <cstdint>
#include <functional>

#include "flexray/config.hpp"
#include "flexray/frame.hpp"
#include "flexray/timing.hpp"
#include "sim/time.hpp"
#include "units/units.hpp"

namespace coeff::flexray {

/// What a scheduler asks the bus to carry in one slot.
struct TxRequest {
  /// Scheduler-opaque message-instance identifier, echoed in the outcome.
  std::uint64_t instance = 0;
  /// Frame ID; must equal the slot (static) / slot counter (dynamic).
  FrameId frame_id{0};
  /// Sending node.
  units::NodeId sender{-1};
  /// Payload size in bits (excluding frame header/trailer overhead).
  std::int64_t payload_bits = 0;
  /// True when this transmission is a scheduled retransmission copy.
  bool retransmission = false;
  /// True when a static primary was re-homed from a dead channel to the
  /// surviving one (dual-channel failover). Lets the accounting layer
  /// attribute failover latency without guessing.
  bool failover = false;
};

/// What actually happened on the wire.
struct TxOutcome {
  TxRequest request;
  ChannelId channel = ChannelId::kA;
  sim::Time start;
  sim::Time end;
  units::CycleIndex cycle{0};
  /// Static slot number or dynamic slot counter.
  units::SlotId slot{0};
  Segment segment = Segment::kStatic;
  bool corrupted = false;
  /// The frame never reached the wire: the channel was dark (blackout)
  /// when its slot came around. Lost outcomes are always corrupted, are
  /// not counted in ChannelStats, and produce no receiver-side verdict
  /// (the reliability monitor must not learn from them).
  bool lost = false;
};

/// Decides whether a given transmission is corrupted by a transient
/// fault. Deterministic given the injector's seed.
using CorruptionFn =
    std::function<bool(const TxRequest&, ChannelId, sim::Time start)>;

/// One pending fault verdict in a batched draw (compiled cycle engine).
/// `request` stays owned by the caller for the duration of the call.
struct VerdictQuery {
  const TxRequest* request = nullptr;
  ChannelId channel = ChannelId::kA;
  sim::Time start;
};

/// Draws `n` verdicts at once, writing one bool per query to `out`.
/// Queries arrive in exact wire order, so an implementation that walks
/// them sequentially produces a verdict stream identical to per-frame
/// CorruptionFn calls (fault::FaultModel::draw_batch does exactly that).
using BatchCorruptionFn =
    std::function<void(const VerdictQuery*, std::size_t, bool* out)>;

struct ChannelStats {
  std::int64_t frames = 0;
  std::int64_t corrupted_frames = 0;
  std::int64_t retransmission_frames = 0;
  sim::Time busy_static;   ///< wire time spent in static slots
  sim::Time busy_dynamic;  ///< wire time spent in dynamic slots
  std::int64_t payload_bits = 0;
  std::int64_t minislots_used = 0;  ///< minislots consumed by dynamic TX
};

class Channel {
 public:
  Channel(ChannelId id, CorruptionFn corruption)
      : id_(id), corruption_(std::move(corruption)) {}

  /// Clock a frame onto the wire. `duration` is the wire occupancy
  /// (already bounded by the slot by the caller). `force_corrupt` marks
  /// the frame corrupted regardless of the corruption hook's verdict
  /// (babbling-idiot collision, out-of-sync sender); the hook is still
  /// consulted so per-channel verdict streams advance deterministically.
  TxOutcome transmit(const TxRequest& req, sim::Time start, sim::Time duration,
                     units::CycleIndex cycle, units::SlotId slot,
                     Segment segment, bool force_corrupt = false);

  /// Clock a frame whose fault verdict was already drawn (batched
  /// verdicts, compiled cycle engine). Identical accounting to
  /// transmit(), but the corruption hook is NOT consulted — the caller
  /// drew this frame's verdict from the same model via a
  /// BatchCorruptionFn, and drawing twice would desynchronise the
  /// verdict stream.
  TxOutcome transmit_with_verdict(const TxRequest& req, sim::Time start,
                                  sim::Time duration, units::CycleIndex cycle,
                                  units::SlotId slot, Segment segment,
                                  bool corrupted, bool force_corrupt = false);

  /// Synthesize the outcome of a transmission attempted while the
  /// channel is dark: the frame is lost, nothing touches the wire, no
  /// stats are charged and the corruption hook is NOT consulted (a dark
  /// channel yields no receiver verdicts).
  [[nodiscard]] TxOutcome lose(const TxRequest& req, sim::Time start,
                               sim::Time duration, units::CycleIndex cycle,
                               units::SlotId slot, Segment segment) const;

  /// Dynamic-segment bookkeeping: record minislots consumed.
  void account_minislots(std::int64_t n) { stats_.minislots_used += n; }

  /// Availability state (blackout windows): a dark channel carries
  /// nothing. Flipped by the Cluster at cycle boundaries from the
  /// structural fault provider.
  void set_available(bool available) { available_ = available; }
  [[nodiscard]] bool available() const { return available_; }

  [[nodiscard]] ChannelId id() const { return id_; }
  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  void reset_stats() { stats_ = ChannelStats{}; }

 private:
  ChannelId id_;
  CorruptionFn corruption_;
  ChannelStats stats_;
  bool available_ = true;
};

}  // namespace coeff::flexray
