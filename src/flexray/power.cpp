#include "flexray/power.hpp"

#include <cstdio>
#include <stdexcept>

namespace coeff::flexray {

namespace {

[[noreturn]] void invalid(const char* option, double value) {
  char msg[128];
  std::snprintf(msg, sizeof msg, "PowerConfig: %s = %g invalid", option,
                value);
  throw std::invalid_argument(msg);
}

/// mW * simulated time -> microjoules.
double mw_times(double mw, sim::Time t) { return mw * t.as_seconds() * 1e3; }

}  // namespace

void PowerConfig::validate() const {
  if (controller_mw < 0.0) invalid("controller_mw", controller_mw);
  if (tx_mw < 0.0) invalid("tx_mw", tx_mw);
  if (idle_listen_mw < 0.0) invalid("idle_listen_mw", idle_listen_mw);
  if (sleep_mw < 0.0) invalid("sleep_mw", sleep_mw);
  if (sleep_mw >= idle_listen_mw && idle_listen_mw > 0.0) {
    invalid("sleep_mw (must be < idle_listen_mw)", sleep_mw);
  }
  double prev = 2.0;
  for (const double s : dvfs_scale) {
    if (!(s > 0.0 && s <= 1.0)) invalid("dvfs_scale entry", s);
    if (s > prev) invalid("dvfs_scale (must be non-increasing)", s);
    prev = s;
  }
}

EnergyMeter::EnergyMeter(const PowerConfig& config, int num_nodes,
                         double bus_bit_rate)
    : config_(config), num_nodes_(num_nodes), bus_bit_rate_(bus_bit_rate) {
  config_.validate();
  if (num_nodes < 1) invalid("num_nodes", num_nodes);
  if (bus_bit_rate <= 0.0) invalid("bus_bit_rate", bus_bit_rate);
}

double EnergyMeter::on_cycle(sim::Time cycle_duration, std::int64_t tx_bits,
                             std::int64_t idle_slots, sim::Time slot_duration,
                             bool may_sleep, int dvfs_level) {
  if (dvfs_level < 0) dvfs_level = 0;
  if (dvfs_level >= kDvfsLevels) dvfs_level = kDvfsLevels - 1;

  // Host controllers: DVFS-scaled baseline, every node, all cycle.
  const double scale = config_.dvfs_scale[static_cast<std::size_t>(dvfs_level)];
  double uj = mw_times(config_.controller_mw * scale, cycle_duration) *
              static_cast<double>(num_nodes_);

  // Bus drivers: the transmit premium for the time the wire was busy.
  const double tx_seconds = static_cast<double>(tx_bits) / bus_bit_rate_;
  uj += config_.tx_mw * tx_seconds * 1e3;

  // Idle static slots: listen (slack could be claimed) or sleep (the
  // scheduler proved nothing can want it).
  const double idle_uj_listen =
      mw_times(config_.idle_listen_mw, slot_duration) *
      static_cast<double>(idle_slots);
  if (may_sleep && idle_slots > 0) {
    const double idle_uj_sleep = mw_times(config_.sleep_mw, slot_duration) *
                                 static_cast<double>(idle_slots);
    uj += idle_uj_sleep;
    sleep_saved_uj_ += idle_uj_listen - idle_uj_sleep;
    slots_slept_ += idle_slots;
  } else {
    uj += idle_uj_listen;
  }

  total_uj_ += uj;
  ++cycles_;
  return uj;
}

}  // namespace coeff::flexray
