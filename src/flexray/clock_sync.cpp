#include "flexray/clock_sync.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace coeff::flexray {

int ftm_discard_count(std::size_t n) {
  if (n < 3) return 0;
  if (n < 8) return 1;
  return 2;
}

sim::Time fault_tolerant_midpoint(std::vector<sim::Time> values) {
  if (values.empty()) {
    throw std::invalid_argument("fault_tolerant_midpoint: no measurements");
  }
  std::sort(values.begin(), values.end());
  const int k = ftm_discard_count(values.size());
  const sim::Time lo = values[static_cast<std::size_t>(k)];
  const sim::Time hi = values[values.size() - 1 - static_cast<std::size_t>(k)];
  return sim::nanos((lo.ns() + hi.ns()) / 2);
}

sim::Time LocalClock::local_time(sim::Time global) const {
  const double elapsed = static_cast<double>((global - base_global_).ns());
  return base_local_ +
         sim::nanos(static_cast<std::int64_t>(
             elapsed * (1.0 + rate_error_ + rate_trim_)));
}

void LocalClock::rebase(sim::Time global) {
  base_local_ = local_time(global);
  base_global_ = global;
}

ClockSyncResult simulate_clock_sync(const ClockSyncOptions& opt, int rounds) {
  if (opt.num_nodes < 2 || opt.sync_nodes < 2 ||
      opt.sync_nodes > opt.num_nodes) {
    throw std::invalid_argument("simulate_clock_sync: bad node counts");
  }
  sim::Rng rng(opt.seed);
  std::vector<LocalClock> clocks;
  clocks.reserve(static_cast<std::size_t>(opt.num_nodes));
  for (int i = 0; i < opt.num_nodes; ++i) {
    clocks.emplace_back(
        rng.uniform(-opt.max_rate_error_ppm, opt.max_rate_error_ppm));
  }
  auto is_byzantine = [&](int node) {
    return std::find(opt.byzantine_nodes.begin(), opt.byzantine_nodes.end(),
                     node) != opt.byzantine_nodes.end();
  };

  ClockSyncResult result;
  sim::Time global;
  const sim::Time cycle_half = sim::nanos(opt.double_cycle.ns() / 2);
  std::vector<sim::Time> prev_offset_correction(
      static_cast<std::size_t>(opt.num_nodes));

  auto drifting_now = [&](int node, int round) {
    for (const DriftExcursion& e : opt.drift_excursions) {
      if (e.node == node && round >= e.start_round && round < e.end_round) {
        return true;
      }
    }
    return false;
  };

  for (int round = 0; round < rounds; ++round) {
    // Apply scheduled oscillator excursions at the round boundary:
    // rebase first so the rate fault never rewrites past readings.
    for (const DriftExcursion& e : opt.drift_excursions) {
      if (e.node < 0 || e.node >= opt.num_nodes) {
        throw std::invalid_argument(
            "simulate_clock_sync: drift excursion node out of range");
      }
      auto& clock = clocks[static_cast<std::size_t>(e.node)];
      if (round == e.start_round) {
        clock.rebase(global);
        clock.add_rate_fault(e.excess_ppm);
      }
      if (round == e.end_round) {
        clock.rebase(global);
        clock.add_rate_fault(-e.excess_ppm);
      }
    }
    // Two measurement instants per double cycle (the even and the odd
    // cycle), with no corrections in between: the deviation at the
    // second instant drives the offset correction, and the *difference*
    // between the two deviations of the same pair isolates the pure
    // rate error, exactly as the spec's rate-measurement phase does.
    const sim::Time mid = global + opt.double_cycle - cycle_half;
    global += opt.double_cycle;
    const auto take_snapshot = [&](sim::Time at) {
      std::vector<sim::Time> snap(static_cast<std::size_t>(opt.num_nodes));
      for (int i = 0; i < opt.num_nodes; ++i) {
        snap[static_cast<std::size_t>(i)] =
            clocks[static_cast<std::size_t>(i)].local_time(at);
      }
      return snap;
    };
    const auto snap1 = take_snapshot(mid);
    const auto snap2 = take_snapshot(global);

    for (int i = 0; i < opt.num_nodes; ++i) {
      std::vector<sim::Time> offset_devs;
      std::vector<sim::Time> rate_devs;
      for (int j = 0; j < opt.sync_nodes; ++j) {
        if (j == i) continue;
        if (is_byzantine(j)) {
          offset_devs.push_back(sim::micros(rng.uniform_int(-5000, 5000)));
          rate_devs.push_back(sim::micros(rng.uniform_int(-5000, 5000)));
          continue;
        }
        auto pair_dev = [&](const std::vector<sim::Time>& snap) {
          sim::Time d = snap[static_cast<std::size_t>(j)] -
                        snap[static_cast<std::size_t>(i)];
          if (opt.measurement_noise > sim::Time::zero()) {
            d += sim::nanos(rng.uniform_int(-opt.measurement_noise.ns(),
                                            opt.measurement_noise.ns()));
          }
          return d;
        };
        const sim::Time d1 = pair_dev(snap1);
        const sim::Time d2 = pair_dev(snap2);
        offset_devs.push_back(d2);
        rate_devs.push_back(d2 - d1);  // rate error over cycle_half
      }
      const sim::Time offset_corr = fault_tolerant_midpoint(offset_devs);
      const sim::Time rate_corr = fault_tolerant_midpoint(rate_devs);
      // Corrections act from this instant on.
      clocks[static_cast<std::size_t>(i)].rebase(global);
      // Positive correction = this clock is behind: advance it.
      clocks[static_cast<std::size_t>(i)].correct_offset(
          sim::nanos(-offset_corr.ns()));
      const double ppm = static_cast<double>(rate_corr.ns()) /
                         static_cast<double>(cycle_half.ns()) * 1e6;
      // Damped (pClusterDriftDamping-style) for robustness to byzantine
      // measurements surviving the midpoint.
      clocks[static_cast<std::size_t>(i)].correct_rate(-ppm * 0.5);
      prev_offset_correction[static_cast<std::size_t>(i)] = offset_corr;
    }

    // Record the max pairwise deviation among correct nodes; drifting
    // nodes are tracked separately (their excursion is the fault under
    // study, not a convergence failure).
    sim::Time worst;
    sim::Time worst_faulty;
    for (int i = 0; i < opt.num_nodes; ++i) {
      if (is_byzantine(i)) continue;
      for (int j = i + 1; j < opt.num_nodes; ++j) {
        if (is_byzantine(j)) continue;
        const sim::Time d =
            clocks[static_cast<std::size_t>(i)].local_time(global) -
            clocks[static_cast<std::size_t>(j)].local_time(global);
        const sim::Time mag = sim::nanos(std::llabs(d.ns()));
        if (drifting_now(i, round) || drifting_now(j, round)) {
          worst_faulty = std::max(worst_faulty, mag);
        } else {
          worst = std::max(worst, mag);
        }
      }
    }
    result.max_deviation_history.push_back(worst);
    result.faulty_deviation_history.push_back(worst_faulty);
  }
  return result;
}

}  // namespace coeff::flexray
