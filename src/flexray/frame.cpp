#include "flexray/frame.hpp"

#include <stdexcept>

namespace coeff::flexray {

namespace {

constexpr std::uint32_t kHeaderPoly = 0x385;   // x^11+x^9+x^8+x^7+x^2+1
constexpr std::uint32_t kHeaderInit = 0x1A;
constexpr std::uint32_t kFramePoly = 0x5D6DCB;  // FlexRay 24-bit polynomial
constexpr std::uint32_t kFrameInitA = 0xFEDCBA;
constexpr std::uint32_t kFrameInitB = 0xABCDEF;

void append_bits(std::vector<bool>& bits, std::uint32_t value, int width) {
  for (int i = width - 1; i >= 0; --i) {
    bits.push_back(((value >> i) & 1u) != 0);
  }
}

}  // namespace

std::uint32_t crc_bits(const std::vector<bool>& bits, std::uint32_t poly,
                       int width, std::uint32_t init) {
  const std::uint32_t top = 1u << (width - 1);
  const std::uint32_t mask = (width == 32) ? 0xFFFFFFFFu : ((1u << width) - 1);
  std::uint32_t crc = init;
  for (bool bit : bits) {
    const bool msb = (crc & top) != 0;
    crc = (crc << 1) & mask;
    if (msb != bit) crc ^= poly;
  }
  return crc & mask;
}

std::uint16_t header_crc(bool sync, bool startup, FrameId id,
                         std::uint8_t payload_words) {
  std::vector<bool> bits;
  bits.reserve(20);
  bits.push_back(sync);
  bits.push_back(startup);
  append_bits(bits, id.value(), 11);
  append_bits(bits, payload_words, 7);
  return static_cast<std::uint16_t>(
      crc_bits(bits, kHeaderPoly, 11, kHeaderInit));
}

std::vector<std::uint8_t> frame_bytes(const FrameHeader& h,
                                      const std::vector<std::uint8_t>& payload) {
  // 5 header bytes: indicators(5) id(11) | length(7) crc(11) cycle(6)
  std::vector<bool> bits;
  bits.reserve(40 + payload.size() * 8);
  bits.push_back(h.reserved);
  bits.push_back(h.payload_preamble);
  bits.push_back(h.null_frame);
  bits.push_back(h.sync);
  bits.push_back(h.startup);
  append_bits(bits, h.id.value(), 11);
  append_bits(bits, h.payload_words, 7);
  append_bits(bits, h.crc, 11);
  append_bits(bits, h.cycle_count, 6);
  for (std::uint8_t byte : payload) append_bits(bits, byte, 8);

  std::vector<std::uint8_t> out((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) out[i / 8] |= static_cast<std::uint8_t>(0x80u >> (i % 8));
  }
  return out;
}

std::uint32_t frame_crc(ChannelId channel,
                        const std::vector<std::uint8_t>& bytes) {
  std::vector<bool> bits;
  bits.reserve(bytes.size() * 8);
  for (std::uint8_t byte : bytes) {
    for (int i = 7; i >= 0; --i) bits.push_back(((byte >> i) & 1u) != 0);
  }
  return crc_bits(bits, kFramePoly, 24,
                  channel == ChannelId::kA ? kFrameInitA : kFrameInitB);
}

Frame Frame::make(ChannelId channel, FrameId id, std::uint8_t cycle_count,
                  std::vector<std::uint8_t> payload, bool sync, bool startup) {
  if (id.value() == 0 || id > kMaxFrameId) {
    throw std::invalid_argument("Frame::make: frame id out of [1, 2047]");
  }
  if (payload.size() > 254) {
    throw std::invalid_argument("Frame::make: payload exceeds 254 bytes");
  }
  if (payload.size() % 2 != 0) {
    payload.push_back(0);  // pad to a whole 16-bit word
  }
  Frame f;
  f.channel_ = channel;
  f.header_.sync = sync;
  f.header_.startup = startup;
  f.header_.id = id;
  f.header_.payload_words = static_cast<std::uint8_t>(payload.size() / 2);
  f.header_.cycle_count = cycle_count & 0x3F;
  f.header_.crc = header_crc(sync, startup, id, f.header_.payload_words);
  f.payload_ = std::move(payload);
  f.trailer_crc_ = frame_crc(channel, frame_bytes(f.header_, f.payload_));
  return f;
}

Frame Frame::make_null(ChannelId channel, FrameId id,
                       std::uint8_t cycle_count) {
  Frame f = make(channel, id, cycle_count, {});
  f.header_.null_frame = true;
  f.trailer_crc_ = frame_crc(channel, frame_bytes(f.header_, f.payload_));
  return f;
}

Frame Frame::assemble(ChannelId channel, const FrameHeader& header,
                      std::vector<std::uint8_t> payload,
                      std::uint32_t trailer_crc) {
  Frame f;
  f.channel_ = channel;
  f.header_ = header;
  f.payload_ = std::move(payload);
  f.trailer_crc_ = trailer_crc;
  return f;
}

std::int64_t Frame::size_bits() const {
  return 40 + static_cast<std::int64_t>(payload_.size()) * 8 + 24;
}

bool Frame::verify() const {
  const std::uint16_t hcrc =
      header_crc(header_.sync, header_.startup, header_.id,
                 header_.payload_words);
  if (hcrc != header_.crc) return false;
  return frame_crc(channel_, frame_bytes(header_, payload_)) == trailer_crc_;
}

void Frame::corrupt_payload_bit(std::size_t bit) {
  if (payload_.empty()) {
    corrupt_header_bit(bit);
    return;
  }
  const std::size_t total = payload_.size() * 8;
  const std::size_t i = bit % total;
  payload_[i / 8] ^= static_cast<std::uint8_t>(0x80u >> (i % 8));
}

void Frame::corrupt_header_bit(std::size_t bit) {
  header_.id = FrameId{
      static_cast<std::uint16_t>(header_.id.value() ^ (1u << (bit % 11)))};
}

}  // namespace coeff::flexray
