// Dynamic-segment probabilistic response-time verifier (DESIGN.md §15).
//
// Analytic P(deadline miss) per *dynamic* message under FlexRay FTDMA
// minislot arbitration: the minislot counter walks the dynamic segment,
// every lower FrameID consumes at least one minislot (its idle walk) and
// `need_g` minislots when it transmits, and a frame may only start while
//
//   minislot + 1 <= pLatestTx   and   need_z <= N - minislot,
//
// otherwise the whole instance slips a communication cycle. From that
// geometry the verifier derives, per message z:
//
//  * a deterministic-starvation predicate (the frame can *never* start:
//    its baseline walk position already violates the cutoff),
//  * a correlation-free upper bound on the per-instance blocked
//    probability (Markov bound on the higher-priority extra-minislot
//    load, amortized over the instance's timely opportunity cycles — no
//    independence assumption, so adversarial arrival phasing is covered),
//  * a nominal (independence-model) blocked probability from the
//    higher-priority interference distribution convolved on an exact
//    minislot-quantum analysis::Pmf grid, composed into a nominal
//    response distribution through the geometric cycle-slip operator
//    `with_cycle_slips`.
//
// Both edges then compose with the per-attempt failure probability from
// fault::AnalyticFailure exactly as §14 does for the static segment:
// CoEfficient spends one single-channel attempt per dynamic instance
// (kPlannedSerial; a degraded plan sheds every dynamic release, envelope
// [1, 1]), FSPEC and HOSA spend one mirrored dual-channel pair
// (kMirroredRounds / kMirroredSingle). The result is a sound envelope
// [p_miss_lower, p_miss_upper]; a measured campaign rate outside it
// (plus sampling slack) is rule analysis.dyn-vs-campaign-divergence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "analysis/pmf.hpp"
#include "analysis/prob_wcrt.hpp"
#include "fault/fault_model.hpp"
#include "fault/reliability.hpp"
#include "flexray/config.hpp"
#include "net/message.hpp"

namespace coeff::analysis {

struct DynWcrtInput {
  const flexray::ClusterConfig* cluster = nullptr;
  /// Dynamic messages (kind kDynamic, frame_id > gNumberOfStaticSlots).
  const net::MessageSet* dynamics = nullptr;
  /// Redundancy discipline of the scheme under analysis. kPlannedSerial
  /// (CoEfficient) spends one single-channel attempt per instance and may
  /// rescue a starved frame through stolen static slack; the mirrored
  /// disciplines spend one dual-channel pair and have no rescue path.
  ProbRetxModel discipline = ProbRetxModel::kPlannedSerial;
  /// kPlannedSerial only: a degraded plan load-sheds every dynamic
  /// release at its source, making the miss envelope [1, 1].
  const fault::RetransmissionPlan* plan = nullptr;
  fault::FaultModelConfig fault_model;
  /// Reliability goal over `u` (0 disables the target rule).
  double rho = 0.0;
  sim::Time u = sim::seconds(3600);
  /// Cycle-slip cap of the nominal response model (>= 1).
  int max_slips = 64;
  ProbWcrtOptions options;
};

struct DynMessageProb {
  int message_id = 0;
  std::string name;
  int frame_id = 0;
  char sae_class = 'E';
  /// Minislots one transmission consumes (incl. the dynamic-slot idle
  /// phase) and the walk geometry it faces.
  std::int64_t need_minislots = 0;
  std::int64_t baseline_offset = 0;   ///< minislots walked before its turn
  std::int64_t slack_minislots = 0;   ///< latest feasible start - baseline
  /// Degraded-plan load shed: the scheme drops the release at its source.
  bool shed = false;
  /// Deterministic starvation: even an empty segment never reaches a
  /// feasible start position (baseline beyond the pLatestTx/fit cutoff).
  bool starved = false;
  /// Upper-envelope per-instance blocked probability (correlation-free).
  double p_blocked_upper = 0.0;
  /// Independence-model blocked probability from the convolved
  /// interference grid (diagnostic, not an envelope edge).
  double p_blocked_nominal = 0.0;
  double p_attempt = 0.0;  ///< marginal wire-attempt failure (pair if mirrored)
  double p_miss_upper = 0.0;
  double p_miss_lower = 0.0;
  sim::Time deadline;
  sim::Time period;
  sim::Time response_p999;   ///< 99.9% quantile of the upper envelope
  sim::Time nominal_p999;    ///< 99.9% quantile of the nominal model
  Pmf response{sim::micros(50), 1};  ///< upper-envelope response distribution
};

struct DynWcrtResult {
  std::vector<DynMessageProb> messages;
  std::vector<ClassProb> classes;  ///< only classes with messages, A..E order
  /// Theorem-1 style aggregates over the dynamic set (see §14).
  double log_reliability_upper = 0.0;
  double log_reliability_lower = 0.0;
  /// Full-set higher-priority extra-minislot distribution, convolved on
  /// the minislot-quantum grid (independence model, diagnostic).
  Pmf interference{sim::micros(50), 1};
};

/// Run the analysis. Throws std::invalid_argument on malformed input
/// (null cluster/dynamics, max_slips < 1, a message without a dynamic
/// frame id).
[[nodiscard]] DynWcrtResult analyze_dyn_wcrt(const DynWcrtInput& input);

/// Rules analysis.dyn-starvation and analysis.dyn-miss-exceeds-target
/// over an analysis result (per-rule diagnostic cap applied).
[[nodiscard]] Report lint_dyn(const DynWcrtInput& input,
                              const DynWcrtResult& result);

/// Merge static and dynamic per-SAE-class envelopes into one end-to-end
/// per-class envelope (worst edge of either segment per class). Either
/// vector may be empty.
[[nodiscard]] std::vector<ClassProb> merge_class_envelopes(
    const std::vector<ClassProb>& statics, const std::vector<ClassProb>& dyns);

/// Human-readable rendering for `coeffctl analyze` (dynamic section).
[[nodiscard]] std::string render_dyn_text(const DynWcrtInput& input,
                                          const DynWcrtResult& result);
/// JSON object (not a full document) describing the dynamic section.
[[nodiscard]] std::string render_dyn_json(const DynWcrtInput& input,
                                          const DynWcrtResult& result);
/// JSON array of merged end-to-end class envelopes.
[[nodiscard]] std::string render_end_to_end_json(
    const std::vector<ClassProb>& classes);
/// Text block for the merged end-to-end class envelopes.
[[nodiscard]] std::string render_end_to_end_text(
    const std::vector<ClassProb>& classes);

}  // namespace coeff::analysis
