// Probabilistic WCRT verifier (DESIGN.md §14).
//
// Design-time analytic P(deadline miss) per static message: each
// message's response time is a discrete distribution (analysis::Pmf)
// over "which retransmission attempt succeeded, and how late did
// slack-stealing contention push it", built by convolving
//
//   * the retransmission-count distribution derived from the per-attempt
//     failure probability p_z under the configured fault model
//     (fault::AnalyticFailure — i.i.d., Gilbert–Elliott at its
//     stationary distribution with exact Markov chaining, common-mode),
//   * the per-cycle competing-backlog distribution (a convolution of
//     Bernoulli(q_y) work terms over the other planned messages),
//     discharged through the schedule's guaranteed idle service per
//     cycle (sched::SlackTable::min_idle_in_window).
//
// The result is an *envelope*, not a point estimate: `p_miss_upper`
// chains attempts at their worst-case (adjacent, maximally bursty)
// correlation and worst-case timing; `p_miss_lower` assumes independent
// attempts that all land before the deadline. A simulated miss ratio
// outside [lower, upper] (plus sampling slack) is evidence of a modeling
// or implementation bug — that is rule analysis.prob-vs-campaign-
// divergence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "analysis/pmf.hpp"
#include "fault/fault_model.hpp"
#include "fault/reliability.hpp"
#include "flexray/config.hpp"
#include "net/message.hpp"
#include "sched/schedule_table.hpp"

namespace coeff::analysis {

/// How the scheme under analysis spends its redundancy.
enum class ProbRetxModel : std::uint8_t {
  /// CoEfficient: k_z planned serial copies per instance, placed by
  /// slack stealing (contention-delayed, one per cycle at worst).
  kPlannedSerial,
  /// FSPEC: `rounds` mirrored dual-channel rounds in consecutive
  /// exclusive-slot occurrences (no contention).
  kMirroredRounds,
  /// HOSA: one mirrored dual-channel transmission, no retransmission.
  kMirroredSingle,
};

[[nodiscard]] const char* to_string(ProbRetxModel d);

struct ProbWcrtOptions {
  /// Quantization step of every Pmf. Rounding is upward, so a coarser
  /// quantum only makes the upper envelope more pessimistic.
  sim::Time quantum = sim::micros(50);
  std::size_t max_bins = 4096;
};

struct ProbWcrtInput {
  const flexray::ClusterConfig* cluster = nullptr;
  const net::MessageSet* statics = nullptr;
  /// Optional: placement latencies (r0). Unplaced/absent messages are
  /// bounded by one communication cycle.
  const sched::StaticScheduleTable* table = nullptr;
  /// kPlannedSerial: the plan's k_z vector (aligned with `statics`).
  const fault::RetransmissionPlan* plan = nullptr;
  /// kMirroredRounds: dual-channel rounds per instance.
  int rounds = 1;
  ProbRetxModel discipline = ProbRetxModel::kPlannedSerial;
  fault::FaultModelConfig fault_model;
  /// Reliability goal over `u` (0 disables the target rules).
  double rho = 0.0;
  sim::Time u = sim::seconds(3600);
  ProbWcrtOptions options;
};

struct MessageProb {
  int message_id = 0;
  std::string name;
  char sae_class = 'E';  ///< deadline bucket A(<=5ms) .. E(>50ms)
  int planned_attempts = 1;  ///< attempts the scheme pays for
  int timely_attempts = 1;   ///< credited attempts that fit before D
  /// False when the placement's release-to-slot path crosses into the
  /// next release's staging cycle: the primary is overwritten before it
  /// can transmit (a deterministic miss the schedule table's latency
  /// check does not see).
  bool primary_live = true;
  double p_attempt = 0.0;    ///< marginal per-attempt failure
  double p_miss_upper = 0.0;
  double p_miss_lower = 0.0;
  sim::Time deadline;
  sim::Time period;
  sim::Time response_p999;  ///< 99.9% quantile of the upper-envelope Pmf
  Pmf response{sim::micros(50), 1};  ///< upper-envelope response distribution
};

struct ClassProb {
  char sae_class = 'E';
  int messages = 0;
  double worst_p_miss_upper = 0.0;
  double worst_p_miss_lower = 0.0;
};

struct ProbWcrtResult {
  std::vector<MessageProb> messages;
  std::vector<ClassProb> classes;  ///< only classes with messages, A..E order
  /// Set-level Theorem-1 style aggregates: sum over z of
  /// (u/T_z) * log(1 - p_miss), at each envelope edge. -inf when any
  /// message's upper P(miss) reaches 1.
  double log_reliability_upper = 0.0;  ///< from p_miss_upper (pessimistic)
  double log_reliability_lower = 0.0;  ///< from p_miss_lower (optimistic)
  /// Guaranteed stealable service per communication cycle the
  /// contention model used (0 when the wire schedule has no slack).
  sim::Time guaranteed_service_per_cycle;
  /// Amortized per-cycle wire demand of the plan's k_z copies (each
  /// stolen (slot,channel) pair costs a whole static slot).
  sim::Time copy_demand_per_cycle;
  /// True when the copy demand fits inside the guaranteed service and
  /// the plan is not degraded — only then does the upper envelope
  /// credit retransmission copies (otherwise the admission test may
  /// drop them and no analytic guarantee exists).
  bool copies_credited = true;
  /// Per-cycle competing-backlog distribution (kPlannedSerial only).
  Pmf interference{sim::micros(50), 1};
};

/// Run the analysis. Throws std::invalid_argument on a malformed input
/// (null cluster/statics, plan shorter than the set, rounds < 1).
[[nodiscard]] ProbWcrtResult analyze_prob_wcrt(const ProbWcrtInput& input);

/// SAE deadline bucket of a message ('A'..'E').
[[nodiscard]] char sae_class_of(sim::Time deadline);

/// Rules analysis.prob-miss-exceeds-target and analysis.kz-contradiction
/// over an analysis result (per-rule diagnostic cap applied).
[[nodiscard]] Report lint_prob(const ProbWcrtInput& input,
                               const ProbWcrtResult& result);

/// One campaign cell (or any measured run) to cross-check against the
/// analytic envelope. `released`/`missed` count deadline-relevant
/// static-segment instances.
struct DivergenceSample {
  std::string label;
  std::int64_t released = 0;
  std::int64_t missed = 0;
  double p_upper = 0.0;
  double p_lower = 0.0;
};

/// Rule analysis.prob-vs-campaign-divergence (or `rule`, e.g. the
/// dynamic-segment variant): flags samples whose measured miss ratio
/// falls outside [p_lower - slack, p_upper + slack], slack = 5 binomial
/// sigma at the nearer envelope edge + 2/n (finite-sample guard).
/// Appends to `report` under the per-rule cap.
void check_divergence(const std::vector<DivergenceSample>& samples,
                      Report& report,
                      const char* rule = "analysis.prob-vs-campaign-divergence");

/// Human-readable and machine-readable renderings for `coeffctl analyze`.
[[nodiscard]] std::string render_prob_text(const ProbWcrtInput& input,
                                           const ProbWcrtResult& result);
[[nodiscard]] std::string render_prob_json(const ProbWcrtInput& input,
                                           const ProbWcrtResult& result);

}  // namespace coeff::analysis
