#include "analysis/prob_wcrt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "sched/slack_table.hpp"
#include "sched/task.hpp"

namespace coeff::analysis {

namespace {

constexpr std::size_t kMaxPerRule = 8;

/// Same per-rule flood guard as trace_lint: a systemically broken
/// config yields a bounded, readable report.
class CappedReport {
 public:
  explicit CappedReport(Report& report) : report_(report) {}

  void add(const char* rule, std::string message, Location loc = {}) {
    std::size_t& n = per_rule_[rule];
    ++n;
    if (n < kMaxPerRule) {
      report_.add(rule, std::move(message), loc);
    } else if (n == kMaxPerRule) {
      report_.add(rule, std::move(message), loc);
      Diagnostic note;
      note.rule = rule;
      note.severity = Severity::kNote;
      note.message = "further diagnostics for this rule suppressed";
      report_.add(std::move(note));
    }
  }

 private:
  Report& report_;
  std::map<std::string, std::size_t> per_rule_;
};

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      out += strformat("\\u%04x", ch);
    } else {
      out += ch;
    }
  }
  return out;
}

/// log(1 - p) with the p >= 1 ("certain miss") edge pinned to -inf.
double log1m(double p) {
  if (p >= 1.0) return -HUGE_VAL;
  if (p <= 0.0) return 0.0;
  return std::log1p(-p);
}

/// Probability that the first `n` attempts of `bits` all fail, at the
/// pessimistic (worst-case burst correlation) edge of the envelope.
double chain_fail(fault::AnalyticFailure& af, ProbRetxModel d,
                  std::int64_t bits, int n) {
  switch (d) {
    case ProbRetxModel::kPlannedSerial:
      return af.consecutive_failures(bits, n);
    case ProbRetxModel::kMirroredRounds:
    case ProbRetxModel::kMirroredSingle:
      return af.consecutive_pair_failures(bits, n);
  }
  return 1.0;
}

/// Independence (optimistic) counterpart of chain_fail.
double indep_fail(fault::AnalyticFailure& af, ProbRetxModel d,
                  std::int64_t bits, int n) {
  switch (d) {
    case ProbRetxModel::kPlannedSerial:
      return af.independent_failures(bits, n);
    case ProbRetxModel::kMirroredRounds:
    case ProbRetxModel::kMirroredSingle:
      return af.independent_pair_failures(bits, n);
  }
  return 1.0;
}

/// Guaranteed stealable wire service per communication cycle: the
/// static set as a wire-speed fixed-priority processor (the same model
/// CoEfficient's admission test runs), queried through the slack
/// table's analytic floor. 0 when the schedule leaves no guaranteed
/// idle (or the set defeats table construction, e.g. hyperperiod
/// overflow — pessimistic fallback).
sim::Time guaranteed_service(const ProbWcrtInput& input) {
  std::vector<sched::PeriodicTask> tasks;
  for (const auto& m : input.statics->messages()) {
    sched::PeriodicTask t;
    t.id = m.id;
    t.wcet = input.cluster->transmission_time(m.size_bits);
    t.period = m.period;
    t.offset = m.offset;
    t.deadline = m.deadline;
    tasks.push_back(t);
  }
  if (tasks.empty()) return input.cluster->cycle_duration();
  try {
    const auto table = sched::SlackTable::shared(sched::TaskSet{std::move(tasks)});
    return table->min_idle_in_window(input.cluster->cycle_duration());
  } catch (const std::exception&) {
    return sim::Time::zero();
  }
}

}  // namespace

const char* to_string(ProbRetxModel d) {
  switch (d) {
    case ProbRetxModel::kPlannedSerial:
      return "planned-serial";
    case ProbRetxModel::kMirroredRounds:
      return "mirrored-rounds";
    case ProbRetxModel::kMirroredSingle:
      return "mirrored-single";
  }
  return "?";
}

char sae_class_of(sim::Time deadline) {
  if (deadline <= sim::millis(5)) return 'A';
  if (deadline <= sim::millis(10)) return 'B';
  if (deadline <= sim::millis(20)) return 'C';
  if (deadline <= sim::millis(50)) return 'D';
  return 'E';
}

ProbWcrtResult analyze_prob_wcrt(const ProbWcrtInput& input) {
  if (input.cluster == nullptr || input.statics == nullptr) {
    throw std::invalid_argument("analyze_prob_wcrt: null cluster or statics");
  }
  if (input.discipline == ProbRetxModel::kMirroredRounds && input.rounds < 1) {
    throw std::invalid_argument("analyze_prob_wcrt: rounds must be >= 1");
  }
  const ProbWcrtOptions& opt = input.options;
  const sim::Time cycle = input.cluster->cycle_duration();
  fault::AnalyticFailure af(input.fault_model);

  ProbWcrtResult result;
  result.interference = Pmf(opt.quantum, opt.max_bins);
  result.interference.add_mass(sim::Time::zero(), 1.0);

  // Contention model (planned-serial only): per cycle, each *other*
  // planned message independently queues one slot of retransmission
  // work with probability q_y = p_y * min(1, cycle / T_y); the queue
  // drains at the schedule's guaranteed idle service per cycle.
  Pmf delay(opt.quantum, opt.max_bins);
  delay.add_mass(sim::Time::zero(), 1.0);
  if (input.discipline == ProbRetxModel::kPlannedSerial) {
    result.guaranteed_service_per_cycle = guaranteed_service(input);
    const sim::Time slot = input.cluster->static_slot_duration();
    for (std::size_t z = 0; z < input.statics->size(); ++z) {
      const net::Message& m = (*input.statics)[z];
      const int copies = input.plan != nullptr && z < input.plan->copies.size()
                             ? input.plan->copies[z]
                             : 0;
      if (copies <= 0) continue;
      const double rate = std::min(
          1.0, static_cast<double>(cycle.ns()) / static_cast<double>(m.period.ns()));
      const double q = af.attempt(m.size_bits) * rate;
      if (q <= 0.0) continue;
      Pmf bern(opt.quantum, opt.max_bins);
      bern.add_mass(sim::Time::zero(), 1.0 - q);
      bern.add_mass(slot, q);
      result.interference = result.interference.convolve(bern);
    }
    // Backlog b waits ceil(b / service) whole cycles before our copy is
    // guaranteed a slot; no guaranteed service pushes any backlog to
    // "may never land" (overflow).
    const sim::Time service = result.guaranteed_service_per_cycle;
    Pmf mapped(opt.quantum, opt.max_bins);
    const std::vector<double>& bins = result.interference.bins();
    for (std::size_t i = 0; i < bins.size(); ++i) {
      if (bins[i] == 0.0) continue;
      if (i == 0) {
        mapped.add_mass(sim::Time::zero(), bins[i]);
        continue;
      }
      if (service <= sim::Time::zero()) {
        mapped.add_overflow(bins[i]);
        continue;
      }
      const sim::Time backlog = opt.quantum * static_cast<std::int64_t>(i);
      const std::int64_t cycles = (backlog + service - sim::nanos(1)) / service;
      mapped.add_mass(cycle * cycles, bins[i]);
    }
    mapped.add_overflow(result.interference.overflow());
    delay = std::move(mapped);

    // Copy crediting gate: each stolen (slot,channel) pair costs one
    // whole static slot of the guaranteed idle, and an instance's k_z
    // copies must all land inside its min(T, D) window. When the
    // amortized demand exceeds the guaranteed service floor, the
    // admission test may legitimately drop copies — no analytic
    // delivery guarantee exists, so the upper envelope credits only the
    // owned primary slot.
    double demand_ns = 0.0;
    for (std::size_t z = 0; z < input.statics->size(); ++z) {
      const net::Message& m = (*input.statics)[z];
      const int copies = input.plan != nullptr && z < input.plan->copies.size()
                             ? std::max(0, input.plan->copies[z])
                             : 0;
      if (copies <= 0) continue;
      const std::int64_t window_cycles =
          std::max<std::int64_t>(1, std::min(m.period, m.deadline) / cycle);
      demand_ns += static_cast<double>(slot.ns()) * copies /
                   static_cast<double>(window_cycles);
    }
    result.copy_demand_per_cycle =
        sim::nanos(static_cast<std::int64_t>(std::ceil(demand_ns)));
    result.copies_credited =
        (input.plan == nullptr || !input.plan->degraded) &&
        result.copy_demand_per_cycle <= result.guaranteed_service_per_cycle;
  } else {
    result.guaranteed_service_per_cycle = sim::Time::zero();
    result.copy_demand_per_cycle = sim::Time::zero();
    result.copies_credited = true;
  }

  double log_upper = 0.0;
  double log_lower = 0.0;
  std::map<char, ClassProb> classes;
  for (std::size_t z = 0; z < input.statics->size(); ++z) {
    const net::Message& m = (*input.statics)[z];
    MessageProb mp;
    mp.message_id = m.id;
    mp.name = m.name;
    mp.deadline = m.deadline;
    mp.period = m.period;
    mp.sae_class = sae_class_of(m.deadline);
    mp.p_attempt = af.attempt(m.size_bits);
    switch (input.discipline) {
      case ProbRetxModel::kPlannedSerial:
        mp.planned_attempts =
            1 + (input.plan != nullptr && z < input.plan->copies.size()
                     ? std::max(0, input.plan->copies[z])
                     : 0);
        break;
      case ProbRetxModel::kMirroredRounds:
        mp.planned_attempts = std::max(1, input.rounds);
        break;
      case ProbRetxModel::kMirroredSingle:
        mp.planned_attempts = 1;
        break;
    }

    // r0 + primary liveness from the placement. Releases are staged at
    // cycle start, so a placement whose transmitting occurrence falls in
    // (or past) the cycle that stages the *next* release is overwritten
    // before its slot fires: the primary deterministically never
    // transmits, even though the table's latency check passed. The
    // condition is base_cycle - floor(offset/cycle) >= period/cycle —
    // in practice period == cycle with a boundary-crossing placement.
    sim::Time r0 = cycle;
    const sched::SlotAssignment* assign =
        input.table != nullptr ? input.table->assignment_of(m.id) : nullptr;
    mp.primary_live = true;
    if (assign != nullptr) {
      r0 = assign->latency;
      const std::int64_t period_cycles =
          std::max<std::int64_t>(1, m.period / cycle);
      const std::int64_t release_cycle = m.offset / cycle;
      mp.primary_live =
          assign->base_cycle.value() - release_cycle < period_cycles;
    }

    // Response distribution at the pessimistic envelope edge: the
    // primary (when live) lands deterministically at r0 in its owned
    // slot; credited slack-stolen copy j lands by the end of the j-th
    // cycle after release, pushed further by the contention delay;
    // attempts chain at worst-case correlation. Mass with no credited
    // attempt left goes to overflow ("may never land").
    Pmf response(opt.quantum, opt.max_bins);
    mp.timely_attempts = 0;
    double f_prev = 1.0;  // P(first w wire attempts all failed), w = 0
    int wire = 0;
    const auto attempt = [&](sim::Time base, bool contended) {
      ++wire;
      const double f_next = chain_fail(af, input.discipline, m.size_bits, wire);
      const double mass = std::max(0.0, f_prev - f_next);
      if (contended) {
        response.accumulate(delay.shifted(base), mass);
      } else {
        response.add_mass(base, mass);
      }
      if (base <= m.deadline) ++mp.timely_attempts;
      f_prev = f_next;
    };
    if (input.discipline == ProbRetxModel::kPlannedSerial) {
      if (mp.primary_live) attempt(r0, /*contended=*/false);
      if (result.copies_credited) {
        for (int j = 1; j < mp.planned_attempts; ++j) {
          attempt(cycle * j, /*contended=*/true);
        }
      }
    } else if (mp.primary_live) {
      // Mirrored rounds ride the placement's consecutive occurrences —
      // a dead primary placement kills every round with it.
      for (int i = 0; i < mp.planned_attempts; ++i) {
        attempt(r0 + cycle * i, /*contended=*/false);
      }
    }
    response.add_overflow(f_prev);  // every credited attempt failed

    mp.p_miss_upper = std::min(1.0, response.tail_above(m.deadline));
    const double indep =
        indep_fail(af, input.discipline, m.size_bits, mp.planned_attempts);
    // The optimistic edge assumes independent attempts that all land in
    // time; clamp in case an oscillating channel makes the chained
    // probability the smaller one.
    mp.p_miss_lower = std::min(indep, mp.p_miss_upper);
    mp.response_p999 = response.quantile(0.999);
    mp.response = std::move(response);

    const double occ = static_cast<double>(input.u.ns()) /
                       static_cast<double>(m.period.ns());
    log_upper += occ * log1m(mp.p_miss_upper);
    log_lower += occ * log1m(mp.p_miss_lower);

    ClassProb& c = classes[mp.sae_class];
    c.sae_class = mp.sae_class;
    ++c.messages;
    c.worst_p_miss_upper = std::max(c.worst_p_miss_upper, mp.p_miss_upper);
    c.worst_p_miss_lower = std::max(c.worst_p_miss_lower, mp.p_miss_lower);

    result.messages.push_back(std::move(mp));
  }
  result.log_reliability_upper = log_upper;
  result.log_reliability_lower = log_lower;
  for (auto& [cls, cp] : classes) result.classes.push_back(cp);
  return result;
}

Report lint_prob(const ProbWcrtInput& input, const ProbWcrtResult& result) {
  Report report;
  CappedReport out(report);
  const sim::Time cycle =
      input.cluster != nullptr ? input.cluster->cycle_duration() : sim::Time::zero();
  const sim::Time slot = input.cluster != nullptr
                             ? input.cluster->static_slot_duration()
                             : sim::Time::zero();

  const double log_target =
      input.plan != nullptr && input.plan->target_log_reliability != 0.0
          ? input.plan->target_log_reliability
          : (input.rho > 0.0 ? std::log(input.rho) : 0.0);
  const bool has_target = log_target != 0.0 || input.rho > 0.0;
  const double tol = 1e-9 * std::max(1.0, std::fabs(log_target));
  const bool plan_claims_met = input.plan == nullptr || !input.plan->degraded;

  // --- analysis.prob-miss-exceeds-target --------------------------------
  // The analytic (timing + correlated-loss) reliability misses the
  // configured target while the plan claims the target is met.
  if (has_target && plan_claims_met &&
      result.log_reliability_upper < log_target - tol) {
    const double share =
        log_target / std::max<std::size_t>(1, result.messages.size());
    out.add("analysis.prob-miss-exceeds-target",
            strformat("analytic reliability %.6g misses the target %.6g "
                      "(log %.4g < %.4g)",
                      std::exp(result.log_reliability_upper),
                      std::exp(log_target), result.log_reliability_upper,
                      log_target));
    for (const MessageProb& mp : result.messages) {
      const double occ = static_cast<double>(input.u.ns()) /
                         static_cast<double>(mp.period.ns());
      const double term = occ * log1m(mp.p_miss_upper);
      if (term < share - tol) {
        Location loc;
        loc.message_id = mp.message_id;
        out.add("analysis.prob-miss-exceeds-target",
                strformat("message %s: analytic P(miss) %.4g exceeds its "
                          "equal-share budget (class %c, %d/%d timely "
                          "attempts)",
                          mp.name.c_str(), mp.p_miss_upper, mp.sae_class,
                          mp.timely_attempts, mp.planned_attempts),
                loc);
      }
    }
  }

  // --- analysis.kz-contradiction ----------------------------------------
  // (0a) The placement's transmitting occurrence falls in the cycle
  // that stages the next release: the schedule table claims the
  // deadline is met, but the primary is overwritten before its slot
  // fires and can never transmit. Every attempt the reliability
  // accounting pays for rides a transmission that does not happen.
  for (const MessageProb& mp : result.messages) {
    if (mp.primary_live) continue;
    Location loc;
    loc.message_id = mp.message_id;
    out.add("analysis.kz-contradiction",
            strformat("message %s: placement crosses into the next "
                      "release's staging cycle — the primary is "
                      "overwritten before its slot and never transmits "
                      "(deterministic miss, T=%.0fus)",
                      mp.name.c_str(), mp.period.as_us()),
            loc);
  }
  // (0b) The plan's k_z copies demand more stolen wire than the
  // schedule guarantees: the Theorem-1 sizing counts copies the
  // admission test may drop.
  if (input.discipline == ProbRetxModel::kPlannedSerial && plan_claims_met &&
      !result.copies_credited &&
      result.copy_demand_per_cycle > sim::Time::zero()) {
    out.add("analysis.kz-contradiction",
            strformat("k_z plan demands %.1fus/cycle of stolen slack but "
                      "the schedule only guarantees %.1fus/cycle — planned "
                      "copies are not schedulable and may be dropped",
                      result.copy_demand_per_cycle.as_us(),
                      result.guaranteed_service_per_cycle.as_us()));
  }
  // (a) A planned copy cannot land before the deadline even at the
  // best-case spacing (two channels, consecutive slots), so the
  // Theorem-1 accounting counts redundancy that can never arrive.
  for (const MessageProb& mp : result.messages) {
    if (mp.planned_attempts <= 1) continue;
    sim::Time r0 = cycle;
    if (input.table != nullptr) {
      if (const sched::SlotAssignment* a =
              input.table->assignment_of(mp.message_id)) {
        r0 = a->latency;
      }
    }
    const int last = mp.planned_attempts - 1;
    const sim::Time earliest_last =
        input.discipline == ProbRetxModel::kPlannedSerial
            ? r0 + slot * (last / 2)  // 2 channels: 2 copies per slot time
            : r0 + cycle * last;      // mirrored rounds: one per occurrence
    if (earliest_last > mp.deadline) {
      Location loc;
      loc.message_id = mp.message_id;
      out.add("analysis.kz-contradiction",
              strformat("message %s: planned attempt %d cannot complete "
                        "before the deadline even best-case (earliest %.0fus "
                        "> D=%.0fus)",
                        mp.name.c_str(), last, earliest_last.as_us(),
                        mp.deadline.as_us()),
              loc);
    }
  }
  // (b) The memoryless (Theorem-1) accounting meets the target but the
  // correlated chaining of the configured fault model does not: the k_z
  // sizing is contradicted by the channel's burst structure.
  if (has_target && plan_claims_met && input.cluster != nullptr &&
      input.statics != nullptr) {
    fault::AnalyticFailure af(input.fault_model);
    double chain_log = 0.0;
    double iid_log = 0.0;
    std::vector<std::pair<const MessageProb*, double>> gaps;
    for (const MessageProb& mp : result.messages) {
      const net::Message* m = input.statics->find(mp.message_id);
      if (m == nullptr) continue;
      const double occ = static_cast<double>(input.u.ns()) /
                         static_cast<double>(mp.period.ns());
      const double chained = chain_fail(af, input.discipline, m->size_bits,
                                        mp.planned_attempts);
      const double indep = indep_fail(af, input.discipline, m->size_bits,
                                      mp.planned_attempts);
      const double chain_term = occ * log1m(chained);
      const double iid_term = occ * log1m(indep);
      chain_log += chain_term;
      iid_log += iid_term;
      if (iid_term - chain_term > tol) {
        gaps.emplace_back(&mp, chained);
      }
    }
    if (iid_log >= log_target - tol && chain_log < log_target - tol) {
      out.add("analysis.kz-contradiction",
              strformat("k_z plan meets the target only under the "
                        "memoryless model: correlated-loss reliability "
                        "%.6g < target %.6g (memoryless %.6g)",
                        std::exp(chain_log), std::exp(log_target),
                        std::exp(iid_log)));
      for (const auto& [mp, chained] : gaps) {
        Location loc;
        loc.message_id = mp->message_id;
        out.add("analysis.kz-contradiction",
                strformat("message %s: burst-correlated loss %.4g per "
                          "instance exceeds the k_z=%d sizing's memoryless "
                          "assumption",
                          mp->name.c_str(), chained,
                          mp->planned_attempts - 1),
                loc);
      }
    }
  }
  return report;
}

void check_divergence(const std::vector<DivergenceSample>& samples,
                      Report& report, const char* rule) {
  CappedReport out(report);
  for (const DivergenceSample& s : samples) {
    if (s.released <= 0) continue;
    const double n = static_cast<double>(s.released);
    const double measured = static_cast<double>(s.missed) / n;
    const auto slack = [n](double edge) {
      const double var = std::max(edge * (1.0 - edge), 0.0);
      return 5.0 * std::sqrt(var / n) + 2.0 / n;
    };
    if (measured > s.p_upper + slack(s.p_upper)) {
      out.add(rule,
              strformat("%s: measured miss ratio %.4g (%lld/%lld) exceeds "
                        "the analytic upper envelope %.4g",
                        s.label.c_str(), measured,
                        static_cast<long long>(s.missed),
                        static_cast<long long>(s.released), s.p_upper));
    } else if (measured < s.p_lower - slack(s.p_lower)) {
      out.add(rule,
              strformat("%s: measured miss ratio %.4g (%lld/%lld) falls "
                        "below the analytic lower envelope %.4g",
                        s.label.c_str(), measured,
                        static_cast<long long>(s.missed),
                        static_cast<long long>(s.released), s.p_lower));
    }
  }
}

std::string render_prob_text(const ProbWcrtInput& input,
                             const ProbWcrtResult& result) {
  std::string out;
  out += strformat("probabilistic WCRT analysis (%s, %s)\n",
                   to_string(input.discipline),
                   fault::describe(input.fault_model).c_str());
  out += strformat(
      "  reliability envelope over u=%.0fs: [%.9g, %.9g]  (target %s)\n",
      input.u.as_seconds(), std::exp(result.log_reliability_upper),
      std::exp(result.log_reliability_lower),
      input.rho > 0.0 ? strformat("%.9g", input.rho).c_str() : "none");
  out += strformat("  guaranteed stealable service per cycle: %.1fus\n",
                   result.guaranteed_service_per_cycle.as_us());
  if (input.discipline == ProbRetxModel::kPlannedSerial) {
    out += strformat("  plan copy demand per cycle: %.1fus (%s)\n",
                     result.copy_demand_per_cycle.as_us(),
                     result.copies_credited
                         ? "credited"
                         : "NOT credited: exceeds guaranteed service");
  }
  out += strformat("  %-16s %-3s %-8s %-8s %-12s %-12s %-10s\n", "message",
                   "cls", "attempts", "timely", "P(miss) up", "P(miss) lo",
                   "p999");
  for (const MessageProb& mp : result.messages) {
    const std::string p999 =
        mp.response_p999 == sim::Time::max()
            ? std::string("inf")
            : strformat("%.0fus", mp.response_p999.as_us());
    out += strformat("  %-16s %-3c %-8d %-8d %-12.4g %-12.4g %-10s%s\n",
                     mp.name.c_str(), mp.sae_class, mp.planned_attempts,
                     mp.timely_attempts, mp.p_miss_upper, mp.p_miss_lower,
                     p999.c_str(), mp.primary_live ? "" : " [primary-dead]");
  }
  for (const ClassProb& c : result.classes) {
    out += strformat(
        "  class %c: %d message(s), worst P(miss) in [%.4g, %.4g]\n",
        c.sae_class, c.messages, c.worst_p_miss_lower, c.worst_p_miss_upper);
  }
  return out;
}

std::string render_prob_json(const ProbWcrtInput& input,
                             const ProbWcrtResult& result) {
  std::string out = "{";
  out += strformat("\"discipline\":\"%s\",", to_string(input.discipline));
  out += strformat("\"fault_model\":\"%s\",",
                   json_escape(fault::describe(input.fault_model)).c_str());
  out += strformat("\"rho\":%.17g,\"u_seconds\":%.9g,", input.rho,
                   input.u.as_seconds());
  out += strformat("\"quantum_us\":%.3f,", input.options.quantum.as_us());
  out += strformat("\"guaranteed_service_us\":%.3f,",
                   result.guaranteed_service_per_cycle.as_us());
  out += strformat("\"copy_demand_us\":%.3f,\"copies_credited\":%s,",
                   result.copy_demand_per_cycle.as_us(),
                   result.copies_credited ? "true" : "false");
  // JSON has no -inf: pin "certain miss" to the most negative finite
  // double (exp() of it is still 0).
  const auto finite_log = [](double v) {
    return std::isfinite(v) ? v : -std::numeric_limits<double>::max();
  };
  out += strformat("\"log_reliability_upper\":%.17g,",
                   finite_log(result.log_reliability_upper));
  out += strformat("\"log_reliability_lower\":%.17g,",
                   finite_log(result.log_reliability_lower));
  out += "\"messages\":[";
  bool first = true;
  for (const MessageProb& mp : result.messages) {
    if (!first) out += ',';
    first = false;
    out += strformat(
        "{\"id\":%d,\"name\":\"%s\",\"class\":\"%c\","
        "\"planned_attempts\":%d,\"timely_attempts\":%d,"
        "\"primary_live\":%s,"
        "\"p_attempt\":%.17g,\"p_miss_upper\":%.17g,\"p_miss_lower\":%.17g,"
        "\"deadline_us\":%.3f,\"period_us\":%.3f,\"response_p999_us\":%.3f}",
        mp.message_id, json_escape(mp.name).c_str(), mp.sae_class,
        mp.planned_attempts, mp.timely_attempts,
        mp.primary_live ? "true" : "false", mp.p_attempt, mp.p_miss_upper,
        mp.p_miss_lower, mp.deadline.as_us(), mp.period.as_us(),
        mp.response_p999 == sim::Time::max() ? -1.0 : mp.response_p999.as_us());
  }
  out += "],\"classes\":[";
  first = true;
  for (const ClassProb& c : result.classes) {
    if (!first) out += ',';
    first = false;
    out += strformat(
        "{\"class\":\"%c\",\"messages\":%d,\"worst_p_miss_upper\":%.17g,"
        "\"worst_p_miss_lower\":%.17g}",
        c.sae_class, c.messages, c.worst_p_miss_upper, c.worst_p_miss_lower);
  }
  out += "]}";
  return out;
}

}  // namespace coeff::analysis
