// ScheduleLint: offline legality + guarantee recheck (DESIGN.md §9).
//
// Statically verifies, before any simulation runs, that a cluster
// configuration, message set, schedule table and retransmission plan
// together uphold the invariants the runtime relies on:
//
//  * FlexRay legality — parameter constraints, slot bounds, FrameID
//    uniqueness per channel over the whole multiplexing period, static
//    payloads vs slot capacity, minislot accounting for the dynamic
//    segment;
//  * task-model sanity — deadline in (0, period], bounded hyperperiod;
//  * the paper's guarantees — a closed-form Theorem-1 recheck of the
//    solved k_z plan against rho, non-negativity/monotonicity of the
//    level-i slack curves, and a (sufficient) RTA cross-check that every
//    static frame's worst-case response fits its deadline.
//
// Structural rules run first; the semantic rules (slack, RTA,
// Theorem 1) are skipped when a structural error already fired, exactly
// like a compiler skips later phases on a parse error.
#pragma once

#include "analysis/diagnostic.hpp"
#include "fault/reliability.hpp"
#include "flexray/config.hpp"
#include "net/message.hpp"
#include "sched/schedule_table.hpp"
#include "sim/time.hpp"

namespace coeff::analysis {

struct ScheduleLintInput {
  const flexray::ClusterConfig* cluster = nullptr;  ///< required
  const net::MessageSet* statics = nullptr;         ///< optional
  const net::MessageSet* dynamics = nullptr;        ///< optional
  const sched::StaticScheduleTable* table = nullptr;   ///< optional
  const fault::RetransmissionPlan* plan = nullptr;     ///< optional
  /// Theorem-1 recheck parameters (match what the plan was solved with).
  double ber = 1e-7;
  double rho = 0.0;  ///< 0 disables the recheck
  sim::Time u = sim::seconds(3600);
  /// Sample count per hyperperiod for the slack curve checks.
  int slack_samples = 256;
};

[[nodiscard]] Report lint_schedule(const ScheduleLintInput& input);

}  // namespace coeff::analysis
