// Discrete probability mass functions over quantized delays — the
// convolution core of the probabilistic WCRT verifier (DESIGN.md §14).
//
// A Pmf holds mass on the grid {0, q, 2q, ...} up to max_bins bins plus
// one explicit overflow bucket ("later than the grid covers, possibly
// never"). Two deliberate asymmetries make every downstream bound safe:
//
//  * Quantization rounds UP (a delay t lands in bin ceil(t/q)), so a
//    quantized distribution is stochastically >= the real one and any
//    deadline-miss tail computed from it is an upper bound.
//  * Truncation moves mass to the overflow bucket — it is never
//    dropped, so total_mass() is exact (up to floating point) and the
//    overflow bucket counts toward every tail query.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace coeff::analysis {

class Pmf {
 public:
  /// Empty (all-zero) Pmf on the grid {0, q, ...} with `max_bins` bins.
  /// Throws std::invalid_argument on a non-positive quantum or zero
  /// bins.
  Pmf(sim::Time quantum, std::size_t max_bins);

  /// Point mass `mass` at delay `t` (rounded up to the grid).
  [[nodiscard]] static Pmf delta(sim::Time t, sim::Time quantum,
                                 std::size_t max_bins, double mass = 1.0);

  /// Add `mass` at delay `t`; negative t throws, t beyond the grid goes
  /// to the overflow bucket.
  void add_mass(sim::Time t, double mass);

  /// Add mass directly to the overflow bucket (events that never
  /// complete, e.g. all retransmissions exhausted).
  void add_overflow(double mass) { overflow_ += mass; }

  /// Sum of independent delays: discrete convolution. Quanta must
  /// match. Overflow composes absorbingly: any term with an overflowed
  /// operand, and any in-range product landing beyond the grid, lands
  /// in the result's overflow bucket.
  [[nodiscard]] Pmf convolve(const Pmf& other) const;

  /// Mixture accumulation: this += weight * other (same quantum).
  void accumulate(const Pmf& other, double weight);

  /// The distribution of X + dt (dt >= 0, rounded up to the grid).
  [[nodiscard]] Pmf shifted(sim::Time dt) const;

  /// P(X > t): mass in bins whose grid value exceeds `t`, plus the
  /// overflow bucket. Because quantization rounded up, this upper-bounds
  /// the true exceedance probability at any real t >= 0.
  [[nodiscard]] double tail_above(sim::Time t) const;

  /// Smallest grid value v with P(X <= v) >= p, or Time::max() if the
  /// quantile sits in the overflow bucket.
  [[nodiscard]] sim::Time quantile(double p) const;

  /// Scale all mass so total_mass() == 1. No-op on a zero Pmf. Returns
  /// the factor applied (1/previous total).
  double normalize();

  [[nodiscard]] double total_mass() const;
  [[nodiscard]] double overflow() const { return overflow_; }
  [[nodiscard]] sim::Time quantum() const { return quantum_; }
  [[nodiscard]] std::size_t max_bins() const { return bins_.size(); }
  [[nodiscard]] const std::vector<double>& bins() const { return bins_; }

 private:
  [[nodiscard]] std::size_t bin_of(sim::Time t) const;

  sim::Time quantum_;
  std::vector<double> bins_;
  double overflow_ = 0.0;
};

/// Geometric cycle-slip composition (DESIGN.md §15): a transmission that
/// misses its dynamic-segment opportunity slips a whole communication
/// cycle and retries. Given the first-opportunity delay distribution and
/// a per-cycle slip probability, returns
///
///   sum_{j=0..max_slips} (1-p_slip) * p_slip^j * first.shifted(j*cycle)
///   + p_slip^(max_slips+1) * total_mass(first)  -> overflow bucket
///
/// The truncated geometric tail goes to the overflow bucket, never
/// dropped, so total mass is conserved and every tail query stays an
/// upper bound. Throws std::invalid_argument when p_slip is outside
/// [0, 1], max_slips is negative, or cycle is negative.
[[nodiscard]] Pmf with_cycle_slips(const Pmf& first_opportunity, double p_slip,
                                   sim::Time cycle, int max_slips);

}  // namespace coeff::analysis
