// Flag parsing for `coeffctl analyze` — factored out of the tool so the
// parser is a pure function over argv tokens: it never exits, prints,
// or throws, which is exactly the contract the libFuzzer harness
// (fuzz/analyze_cli_fuzz.cpp) drives millions of mutated inputs
// through. coeffctl consumes the same entry point, so the fuzzed code
// IS the shipped code.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace coeff::analysis {

struct ProbCliOptions {
  bool prob = false;   ///< --prob: run the probabilistic WCRT analysis
  bool json = false;   ///< --json: machine-readable result
  bool help = false;   ///< --help/-h
  bool no_dyn = false;  ///< --no-dyn: skip the dynamic-segment analysis
  std::string sarif_path;    ///< --sarif PATH ('-' = stdout), empty = none
  std::string campaign_dir;  ///< --campaign DIR: cross-check a report
  std::int64_t quantum_us = 50;   ///< --quantum-us (1..1000000)
  std::int64_t max_bins = 4096;   ///< --max-bins (16..1048576)
  std::int64_t dyn_max_slips = 64;  ///< --dyn-max-slips (1..1024)
};

struct ProbCliParse {
  ProbCliOptions options;
  /// Tokens the analyze layer does not own (workload/cluster/fault
  /// flags), forwarded verbatim to the base experiment parser.
  std::vector<std::string> passthrough;
  std::string error;  ///< non-empty = usage error (the message to print)

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Parse analyze-subcommand tokens (argv[1..] of `coeffctl analyze`).
/// Total function: any input yields either ok() with validated options
/// or a one-line error; never exits, throws, or touches global state.
[[nodiscard]] ProbCliParse parse_prob_cli(const std::vector<std::string>& args);

}  // namespace coeff::analysis
