#include "analysis/prob_cli.hpp"

#include <cerrno>
#include <cstdlib>

namespace coeff::analysis {

namespace {

/// Strict integer parse: the whole token must be a decimal number that
/// fits an int64 (atoll's silent truncation is exactly what a fuzzer
/// would exploit into an out-of-range bin count).
bool parse_int(const std::string& text, std::int64_t& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE || end == text.c_str() || *end != '\0') return false;
  out = v;
  return true;
}

}  // namespace

ProbCliParse parse_prob_cli(const std::vector<std::string>& args) {
  ProbCliParse parse;
  ProbCliOptions& opt = parse.options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&](const char* what) -> const std::string* {
      if (i + 1 >= args.size()) {
        parse.error = std::string(what) + " needs a value";
        return nullptr;
      }
      return &args[++i];
    };
    if (arg == "--prob") {
      opt.prob = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--help" || arg == "-h") {
      opt.help = true;
    } else if (arg == "--sarif") {
      const std::string* v = next("--sarif");
      if (v == nullptr) return parse;
      if (v->empty()) {
        parse.error = "--sarif path must not be empty";
        return parse;
      }
      opt.sarif_path = *v;
    } else if (arg == "--campaign") {
      const std::string* v = next("--campaign");
      if (v == nullptr) return parse;
      if (v->empty()) {
        parse.error = "--campaign directory must not be empty";
        return parse;
      }
      opt.campaign_dir = *v;
    } else if (arg == "--quantum-us") {
      const std::string* v = next("--quantum-us");
      if (v == nullptr) return parse;
      if (!parse_int(*v, opt.quantum_us) || opt.quantum_us < 1 ||
          opt.quantum_us > 1'000'000) {
        parse.error = "--quantum-us must be an integer in [1, 1000000]";
        return parse;
      }
    } else if (arg == "--max-bins") {
      const std::string* v = next("--max-bins");
      if (v == nullptr) return parse;
      if (!parse_int(*v, opt.max_bins) || opt.max_bins < 16 ||
          opt.max_bins > 1'048'576) {
        parse.error = "--max-bins must be an integer in [16, 1048576]";
        return parse;
      }
    } else if (arg == "--no-dyn") {
      opt.no_dyn = true;
    } else if (arg == "--dyn-max-slips") {
      const std::string* v = next("--dyn-max-slips");
      if (v == nullptr) return parse;
      if (!parse_int(*v, opt.dyn_max_slips) || opt.dyn_max_slips < 1 ||
          opt.dyn_max_slips > 1'024) {
        parse.error = "--dyn-max-slips must be an integer in [1, 1024]";
        return parse;
      }
    } else {
      // Not ours: forward to the base experiment parser. Value-taking
      // base flags keep their value adjacent because both tokens pass
      // through in order.
      parse.passthrough.push_back(arg);
    }
  }
  if (!opt.prob && !opt.help) {
    parse.error = "analyze requires --prob (the probabilistic WCRT pass)";
  }
  return parse;
}

}  // namespace coeff::analysis
