// TraceLint: protocol-conformance checking of recorded traces
// (DESIGN.md §9).
//
// Replays a `sim::Trace` against the cluster configuration and checks
// the runtime invariants the simulator is supposed to uphold:
//
//  * timestamps are monotone and every record kind is in range;
//  * cycle starts sit exactly on the cycle grid;
//  * no two transmissions overlap on one channel (static slots occupy
//    their fixed duration, dynamic frames their wire time);
//  * every retransmission has a cause, per the scheme's discipline —
//    planned copies are charged against prior kRetransmissionScheduled
//    budget, round-train copies must repeat an earlier transmission of
//    the same (sender, frame), mirrored copies must ride channel B;
//  * plan swaps land only on cycle boundaries;
//  * load shedding happens only while the scheduler is degraded.
//
// A trace that survives TraceLint is internally consistent; a rule
// firing means either a corrupted trace or a scheduler regression.
#pragma once

#include "analysis/diagnostic.hpp"
#include "flexray/config.hpp"
#include "sim/trace.hpp"

namespace coeff::analysis {

/// How the recorded scheme justifies retransmission copies.
enum class RetxDiscipline : std::uint8_t {
  kPlanned,  ///< CoEfficient: copies budgeted by kRetransmissionScheduled
  kRounds,   ///< FSPEC: rounds repeat an earlier tx of the same frame
  kMirrored, ///< HOSA: every channel-B copy is a legal mirror
};

struct TraceLintInput {
  const sim::Trace* trace = nullptr;              ///< required
  const flexray::ClusterConfig* cluster = nullptr;  ///< required
  RetxDiscipline discipline = RetxDiscipline::kPlanned;
  /// Whether the scheduler started the run already degraded (a plan
  /// solved below rho); load shedding before the first plan swap is
  /// legal only in that case.
  bool initial_degraded = false;
};

[[nodiscard]] Report lint_trace(const TraceLintInput& input);

}  // namespace coeff::analysis
