#include "analysis/trace_lint.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace coeff::analysis {

namespace {

constexpr std::size_t kMaxPerRule = 8;

/// Report wrapper that caps the diagnostics emitted per rule so a
/// systematically broken trace does not flood CI with thousands of
/// identical findings.
class CappedReport {
 public:
  explicit CappedReport(Report& report) : report_(report) {}

  void add(const char* rule, std::string message, Location loc = {}) {
    std::size_t& n = per_rule_[rule];
    ++n;
    if (n < kMaxPerRule) {
      report_.add(rule, std::move(message), loc);
    } else if (n == kMaxPerRule) {
      report_.add(rule, std::move(message), loc);
      Diagnostic note;
      note.rule = rule;
      note.severity = Severity::kNote;
      note.message = "further diagnostics for this rule suppressed";
      report_.add(std::move(note));
    }
  }

 private:
  Report& report_;
  std::map<std::string, std::size_t> per_rule_;
};

Location record_loc(std::int64_t index) {
  Location loc;
  loc.record = index;
  return loc;
}

bool is_tx(sim::TraceKind k) {
  return k == sim::TraceKind::kTxStart || k == sim::TraceKind::kTxSuccess ||
         k == sim::TraceKind::kTxCorrupted;
}

}  // namespace

Report lint_trace(const TraceLintInput& input) {
  Report report;
  if (input.trace == nullptr || input.cluster == nullptr) {
    report.add("trace.kind-valid", "no trace or cluster configuration given");
    return report;
  }
  CappedReport out(report);

  const flexray::ClusterConfig& cfg = *input.cluster;
  const sim::Time cycle = cfg.cycle_duration();
  const sim::Time static_segment = cfg.static_segment_duration();

  // Valid traces are not globally time-sorted: the cluster walks channel
  // A's dynamic segment before channel B's, so B's records rewind within
  // the cycle. The cycle-start stream, however, must be strictly
  // increasing.
  sim::Time prev_cycle_start = sim::Time::zero();
  bool saw_cycle_start = false;
  // Per-channel end of the latest transmission (for overlap detection).
  sim::Time busy_until[flexray::kNumChannels] = {};
  // Planned-discipline budget: admitted copies per node not yet sent.
  std::map<std::int64_t, std::int64_t> retx_budget;
  // Rounds discipline: (sender, frame id) pairs already transmitted.
  std::set<std::pair<std::int64_t, std::int64_t>> seen_frames;
  bool degraded = input.initial_degraded;
  // Mixed-criticality mode state replayed from kModeChange records:
  // current mode (0 = NORMAL), and the earliest time match-up may
  // legally re-admit (the last return-to-NORMAL plus its recovery
  // window — the machine opens once NORMAL has held for the window's
  // d cycles, i.e. d-1 cycles after the change record).
  int mc_mode = 0;
  bool saw_normal_return = false;
  sim::Time matchup_ready_at;
  // Structural fault state replayed from the trace.
  std::set<std::int64_t> nodes_down;
  bool chan_down[flexray::kNumChannels] = {};

  const auto& records = input.trace->records();

  // engine.template-invalidation is gated on the trace actually carrying
  // rebuild markers: interpreted-only policies (or pre-template traces)
  // never emit kTemplateRebuild and are exempt.
  bool has_rebuild_markers = false;
  for (const auto& r : records) {
    if (r.kind == sim::TraceKind::kTemplateRebuild) {
      has_rebuild_markers = true;
      break;
    }
  }
  // Index of the staleness event awaiting a rebuild marker, or -1.
  std::int64_t stale_since = -1;
  sim::TraceKind stale_kind = sim::TraceKind::kInfo;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const sim::TraceRecord& r = records[i];
    const auto idx = static_cast<std::int64_t>(i);

    const int kind_value = static_cast<int>(r.kind);
    if (kind_value < 0 || kind_value >= sim::kTraceKindCount) {
      out.add("trace.kind-valid",
              strformat("record %lld: TraceKind %d out of range",
                        static_cast<long long>(idx), kind_value),
              record_loc(idx));
      continue;  // the tags of an unknown kind mean nothing
    }

    switch (r.kind) {
      case sim::TraceKind::kCycleStart: {
        if (saw_cycle_start && r.at <= prev_cycle_start) {
          out.add("trace.monotonic-time",
                  strformat("cycle-start record %lld at %s does not advance "
                            "past the previous cycle start %s",
                            static_cast<long long>(idx),
                            sim::to_string(r.at).c_str(),
                            sim::to_string(prev_cycle_start).c_str()),
                  record_loc(idx));
        }
        prev_cycle_start = r.at;
        saw_cycle_start = true;
        if (r.at % cycle != sim::Time::zero() ||
            (r.a >= 0 && r.a != r.at / cycle)) {
          out.add("trace.cycle-boundary",
                  strformat("cycle-start record %lld at %s does not match "
                            "cycle %lld of the %s grid",
                            static_cast<long long>(idx),
                            sim::to_string(r.at).c_str(),
                            static_cast<long long>(r.a),
                            sim::to_string(cycle).c_str()),
                  record_loc(idx));
        }
        break;
      }
      case sim::TraceKind::kRetransmissionScheduled: {
        if (r.b >= 0 && r.c > 0) retx_budget[r.b] += r.c;
        break;
      }
      case sim::TraceKind::kPlanSwap: {
        if (r.at % cycle != sim::Time::zero()) {
          out.add("trace.plan-swap-boundary",
                  strformat("plan swap at %s is not on a cycle boundary",
                            sim::to_string(r.at).c_str()),
                  record_loc(idx));
        }
        degraded = r.c == 1;
        break;
      }
      case sim::TraceKind::kLoadShed: {
        if (!degraded) {
          out.add("trace.load-shed-degraded",
                  strformat("message %lld shed at %s while the scheduler "
                            "was not degraded",
                            static_cast<long long>(r.a),
                            sim::to_string(r.at).c_str()),
                  record_loc(idx));
        }
        break;
      }
      case sim::TraceKind::kModeChange: {
        // a=from, b=to, c=cycle, d=recovery window. Mode swaps are
        // decided exactly once per cycle, at the boundary.
        if (r.at % cycle != sim::Time::zero() ||
            (r.c >= 0 && r.c != r.at / cycle)) {
          out.add("trace.mode-change-boundary",
                  strformat("record %lld: mode change at %s is not aligned "
                            "to cycle %lld of the %s grid",
                            static_cast<long long>(idx),
                            sim::to_string(r.at).c_str(),
                            static_cast<long long>(r.c),
                            sim::to_string(cycle).c_str()),
                  record_loc(idx));
        }
        if (r.a < 0 || r.a >= 3 || r.b < 0 || r.b >= 3 || r.a == r.b) {
          out.add("trace.kind-valid",
                  strformat("record %lld: mode-change tags %lld -> %lld out "
                            "of range",
                            static_cast<long long>(idx),
                            static_cast<long long>(r.a),
                            static_cast<long long>(r.b)),
                  record_loc(idx));
          break;
        }
        mc_mode = static_cast<int>(r.b);
        if (mc_mode == 0) {
          saw_normal_return = true;
          const std::int64_t window = r.d > 0 ? r.d : 1;
          matchup_ready_at = r.at + cycle * (window - 1);
        }
        break;
      }
      case sim::TraceKind::kShedByMode: {
        // a=message, b=node, c=mode, d=criticality. Criticality-based
        // shedding exists only while a degraded mode is active.
        if (mc_mode == 0) {
          out.add("trace.shed-outside-degraded",
                  strformat("record %lld: message %lld shed by mode at %s "
                            "while the replayed mode was NORMAL",
                            static_cast<long long>(idx),
                            static_cast<long long>(r.a),
                            sim::to_string(r.at).c_str()),
                  record_loc(idx));
        } else if (r.c >= 0 && r.c != mc_mode) {
          out.add("trace.shed-outside-degraded",
                  strformat("record %lld: shed tagged mode %lld disagrees "
                            "with the replayed mode %d",
                            static_cast<long long>(idx),
                            static_cast<long long>(r.c), mc_mode),
                  record_loc(idx));
        }
        break;
      }
      case sim::TraceKind::kMatchUp: {
        // a=message, b=node, c=cycle, d=criticality. Re-admission is
        // legal only back in NORMAL, after the recovery window the
        // change-to-NORMAL record announced has elapsed.
        if (mc_mode != 0) {
          out.add("trace.matchup-before-recovery",
                  strformat("record %lld: message %lld matched up at %s "
                            "while still in degraded mode %d",
                            static_cast<long long>(idx),
                            static_cast<long long>(r.a),
                            sim::to_string(r.at).c_str(), mc_mode),
                  record_loc(idx));
        } else if (!saw_normal_return) {
          out.add("trace.matchup-before-recovery",
                  strformat("record %lld: message %lld matched up at %s "
                            "with no prior mode change back to NORMAL",
                            static_cast<long long>(idx),
                            static_cast<long long>(r.a),
                            sim::to_string(r.at).c_str()),
                  record_loc(idx));
        } else if (r.at < matchup_ready_at) {
          out.add("trace.matchup-before-recovery",
                  strformat("record %lld: message %lld matched up at %s "
                            "before the recovery window elapsed (%s)",
                            static_cast<long long>(idx),
                            static_cast<long long>(r.a),
                            sim::to_string(r.at).c_str(),
                            sim::to_string(matchup_ready_at).c_str()),
                  record_loc(idx));
        }
        break;
      }
      case sim::TraceKind::kNodeCrash:
      case sim::TraceKind::kNodeRestart:
      case sim::TraceKind::kChannelDown:
      case sim::TraceKind::kChannelUp: {
        // Structural transitions are applied at cycle starts only; both
        // the timestamp and the recorded cycle tag must sit on the grid.
        if (r.at % cycle != sim::Time::zero() ||
            (r.b >= 0 && r.b != r.at / cycle)) {
          out.add("trace.structural-boundary",
                  strformat("record %lld: %s at %s is not aligned to cycle "
                            "%lld of the %s grid",
                            static_cast<long long>(idx), sim::to_string(r.kind),
                            sim::to_string(r.at).c_str(),
                            static_cast<long long>(r.b),
                            sim::to_string(cycle).c_str()),
                  record_loc(idx));
        }
        if (r.kind == sim::TraceKind::kNodeCrash) {
          if (!nodes_down.insert(r.a).second) {
            out.add("trace.structural-causality",
                    strformat("record %lld: node %lld crashed while already "
                              "down",
                              static_cast<long long>(idx),
                              static_cast<long long>(r.a)),
                    record_loc(idx));
          }
        } else if (r.kind == sim::TraceKind::kNodeRestart) {
          if (nodes_down.erase(r.a) == 0) {
            out.add("trace.structural-causality",
                    strformat("record %lld: node %lld restarted without a "
                              "prior crash",
                              static_cast<long long>(idx),
                              static_cast<long long>(r.a)),
                    record_loc(idx));
          }
        } else if (r.a < 0 || r.a >= flexray::kNumChannels) {
          out.add("trace.kind-valid",
                  strformat("record %lld: channel tag %lld out of range",
                            static_cast<long long>(idx),
                            static_cast<long long>(r.a)),
                  record_loc(idx));
        } else {
          bool& down = chan_down[static_cast<std::size_t>(r.a)];
          const bool going_down = r.kind == sim::TraceKind::kChannelDown;
          if (down == going_down) {
            out.add("trace.structural-causality",
                    strformat("record %lld: channel %s reported %s twice",
                              static_cast<long long>(idx),
                              flexray::to_string(
                                  static_cast<flexray::ChannelId>(r.a)),
                              going_down ? "down" : "up"),
                    record_loc(idx));
          }
          down = going_down;
        }
        break;
      }
      case sim::TraceKind::kFailover: {
        // A failover copy exists only because the primary's home channel
        // (A) is dark — and it must ride a live wire itself.
        if (!chan_down[static_cast<std::size_t>(flexray::ChannelId::kA)]) {
          out.add("trace.failover-causality",
                  strformat("record %lld: node %lld failed slot %lld over "
                            "while its home channel A was up",
                            static_cast<long long>(idx),
                            static_cast<long long>(r.a),
                            static_cast<long long>(r.b)),
                  record_loc(idx));
        }
        if (r.c >= 0 && r.c < flexray::kNumChannels &&
            chan_down[static_cast<std::size_t>(r.c)]) {
          out.add("trace.failover-causality",
                  strformat("record %lld: failover copy of node %lld rode "
                            "dark channel %s",
                            static_cast<long long>(idx),
                            static_cast<long long>(r.a),
                            flexray::to_string(
                                static_cast<flexray::ChannelId>(r.c))),
                  record_loc(idx));
        }
        break;
      }
      case sim::TraceKind::kVoteResolved: {
        // a=message, b=accepted, c=clean replicas, d=vote size k.
        if (r.d < 3 || r.d % 2 == 0) {
          out.add("trace.vote-consistency",
                  strformat("record %lld: vote over k=%lld replicas (k must "
                            "be odd and >= 3)",
                            static_cast<long long>(idx),
                            static_cast<long long>(r.d)),
                  record_loc(idx));
          break;
        }
        const std::int64_t majority = r.d / 2 + 1;
        if ((r.b == 1) != (r.c >= majority)) {
          out.add("trace.vote-consistency",
                  strformat("record %lld: message %lld vote %s with %lld of "
                            "%lld clean replicas (majority is %lld)",
                            static_cast<long long>(idx),
                            static_cast<long long>(r.a),
                            r.b == 1 ? "accepted" : "rejected",
                            static_cast<long long>(r.c),
                            static_cast<long long>(r.d),
                            static_cast<long long>(majority)),
                  record_loc(idx));
        }
        break;
      }
      default:
        break;
    }

    // --- engine.template-invalidation ---------------------------------
    // Plan swaps, membership changes and channel topology flips all
    // invalidate the compiled cycle template; a transmission before the
    // rebuild marker means the engine drove a stale schedule.
    if (has_rebuild_markers) {
      switch (r.kind) {
        case sim::TraceKind::kPlanSwap:
        case sim::TraceKind::kNodeCrash:
        case sim::TraceKind::kNodeRestart:
        case sim::TraceKind::kChannelDown:
        case sim::TraceKind::kChannelUp:
          stale_since = idx;
          stale_kind = r.kind;
          break;
        case sim::TraceKind::kTemplateRebuild:
          stale_since = -1;
          break;
        default:
          break;
      }
      if (is_tx(r.kind) && stale_since >= 0) {
        out.add("engine.template-invalidation",
                strformat("record %lld: transmission at %s while the cycle "
                          "template was stale (%s at record %lld was never "
                          "followed by a rebuild marker)",
                          static_cast<long long>(idx),
                          sim::to_string(r.at).c_str(),
                          sim::to_string(stale_kind),
                          static_cast<long long>(stale_since)),
                record_loc(idx));
        stale_since = -1;  // report each stale window once
      }
    }

    if (!is_tx(r.kind)) continue;

    // --- Transmission records: a=sender, b=frame id, c=channel,
    // d=payload bits, note "retx" for retransmission copies. -----------
    if (r.c < 0 || r.c >= flexray::kNumChannels) {
      out.add("trace.kind-valid",
              strformat("record %lld: channel tag %lld out of range",
                        static_cast<long long>(idx),
                        static_cast<long long>(r.c)),
              record_loc(idx));
      continue;
    }
    const auto channel = static_cast<std::size_t>(r.c);
    if (chan_down[channel]) {
      // Frames clocked into a dark channel are lost silently and never
      // traced; a transmission record here means the cluster drove a
      // wire it knew was down.
      out.add("trace.dead-channel-tx",
              strformat("record %lld: transmission on channel %s while it "
                        "was blacked out",
                        static_cast<long long>(idx),
                        flexray::to_string(
                            static_cast<flexray::ChannelId>(channel))),
              record_loc(idx));
    }
    // Static transmissions occupy their full fixed slot; dynamic ones
    // their wire time. Position within the cycle tells the segment.
    const bool in_static_segment = r.at % cycle < static_segment;
    const sim::Time duration = in_static_segment
                                   ? cfg.static_slot_duration()
                                   : (r.d >= 0 ? cfg.transmission_time(r.d)
                                               : sim::Time::zero());
    if (r.at < busy_until[channel]) {
      out.add("trace.tx-overlap",
              strformat("record %lld: transmission on channel %s at %s "
                        "starts before the previous one ends (%s)",
                        static_cast<long long>(idx),
                        flexray::to_string(
                            static_cast<flexray::ChannelId>(channel)),
                        sim::to_string(r.at).c_str(),
                        sim::to_string(busy_until[channel]).c_str()),
              record_loc(idx));
    }
    busy_until[channel] = std::max(busy_until[channel], r.at + duration);

    const bool is_retx = r.note == "retx";
    if (!is_retx) {
      seen_frames.insert({r.a, r.b});
      continue;
    }
    switch (input.discipline) {
      case RetxDiscipline::kPlanned: {
        if (--retx_budget[r.a] < 0) {
          out.add("trace.retx-causality",
                  strformat("record %lld: node %lld sent a retransmission "
                            "with no scheduled copies outstanding",
                            static_cast<long long>(idx),
                            static_cast<long long>(r.a)),
                  record_loc(idx));
          retx_budget[r.a] = 0;  // report each excess copy exactly once
        }
        break;
      }
      case RetxDiscipline::kRounds: {
        // A round-train copy must repeat a frame this sender already put
        // on the wire (the round-1 original, whatever its outcome).
        if (seen_frames.find({r.a, r.b}) == seen_frames.end()) {
          out.add("trace.retx-causality",
                  strformat("record %lld: node %lld retransmitted frame "
                            "%lld it never originally transmitted",
                            static_cast<long long>(idx),
                            static_cast<long long>(r.a),
                            static_cast<long long>(r.b)),
                  record_loc(idx));
        }
        break;
      }
      case RetxDiscipline::kMirrored: {
        if (channel != static_cast<std::size_t>(flexray::ChannelId::kB)) {
          out.add("trace.retx-causality",
                  strformat("record %lld: mirror copy of node %lld rode "
                            "channel A; mirrors belong on channel B",
                            static_cast<long long>(idx),
                            static_cast<long long>(r.a)),
                  record_loc(idx));
        }
        break;
      }
    }
  }
  return report;
}

}  // namespace coeff::analysis
