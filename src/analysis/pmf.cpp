#include "analysis/pmf.hpp"

#include <algorithm>
#include <stdexcept>

namespace coeff::analysis {

Pmf::Pmf(sim::Time quantum, std::size_t max_bins) : quantum_(quantum) {
  if (quantum <= sim::Time::zero()) {
    throw std::invalid_argument("Pmf: quantum must be positive");
  }
  if (max_bins == 0) {
    throw std::invalid_argument("Pmf: max_bins must be positive");
  }
  bins_.assign(max_bins, 0.0);
}

std::size_t Pmf::bin_of(sim::Time t) const {
  if (t < sim::Time::zero()) {
    throw std::invalid_argument("Pmf: negative delay");
  }
  // Round up: bin i carries "completes within i quanta", so pushing
  // mass later keeps every tail an upper bound.
  const std::int64_t q = quantum_.ns();
  const std::int64_t idx = (t.ns() + q - 1) / q;
  return static_cast<std::size_t>(idx);
}

Pmf Pmf::delta(sim::Time t, sim::Time quantum, std::size_t max_bins,
               double mass) {
  Pmf out(quantum, max_bins);
  out.add_mass(t, mass);
  return out;
}

void Pmf::add_mass(sim::Time t, double mass) {
  const std::size_t idx = bin_of(t);
  if (idx >= bins_.size()) {
    overflow_ += mass;
  } else {
    bins_[idx] += mass;
  }
}

Pmf Pmf::convolve(const Pmf& other) const {
  if (quantum_ != other.quantum_) {
    throw std::invalid_argument("Pmf: convolve quantum mismatch");
  }
  const std::size_t n = std::max(bins_.size(), other.bins_.size());
  Pmf out(quantum_, n);
  double in_a = 0.0;
  double in_b = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double a = bins_[i];
    if (a == 0.0) continue;
    in_a += a;
    for (std::size_t j = 0; j < other.bins_.size(); ++j) {
      const double b = other.bins_[j];
      if (b == 0.0) continue;
      const std::size_t k = i + j;
      if (k >= n) {
        out.overflow_ += a * b;
      } else {
        out.bins_[k] += a * b;
      }
    }
  }
  for (const double b : other.bins_) in_b += b;
  // Overflow is absorbing: an overflowed operand overflows the sum no
  // matter what the other contributes.
  out.overflow_ += overflow_ * (in_b + other.overflow_) + other.overflow_ * in_a;
  return out;
}

void Pmf::accumulate(const Pmf& other, double weight) {
  if (quantum_ != other.quantum_) {
    throw std::invalid_argument("Pmf: accumulate quantum mismatch");
  }
  const std::size_t n = std::min(bins_.size(), other.bins_.size());
  for (std::size_t i = 0; i < n; ++i) bins_[i] += weight * other.bins_[i];
  for (std::size_t i = n; i < other.bins_.size(); ++i) {
    overflow_ += weight * other.bins_[i];
  }
  overflow_ += weight * other.overflow_;
}

Pmf Pmf::shifted(sim::Time dt) const {
  const std::size_t shift = bin_of(dt);
  Pmf out(quantum_, bins_.size());
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0.0) continue;
    const std::size_t k = i + shift;
    if (k >= out.bins_.size()) {
      out.overflow_ += bins_[i];
    } else {
      out.bins_[k] = bins_[i];
    }
  }
  out.overflow_ += overflow_;
  return out;
}

double Pmf::tail_above(sim::Time t) const {
  double tail = overflow_;
  if (t < sim::Time::zero()) t = sim::Time::zero();
  // Bin i sits at grid value i*q; strictly-greater comparison.
  const std::int64_t q = quantum_.ns();
  const std::size_t first =
      static_cast<std::size_t>(t.ns() / q) + 1;  // first bin with i*q > t
  for (std::size_t i = first; i < bins_.size(); ++i) tail += bins_[i];
  return tail;
}

sim::Time Pmf::quantile(double p) const {
  double cum = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    cum += bins_[i];
    if (cum >= p) return quantum_ * static_cast<std::int64_t>(i);
  }
  return sim::Time::max();
}

double Pmf::normalize() {
  const double total = total_mass();
  if (total <= 0.0) return 1.0;
  const double inv = 1.0 / total;
  for (double& b : bins_) b *= inv;
  overflow_ *= inv;
  return inv;
}

double Pmf::total_mass() const {
  double total = overflow_;
  for (const double b : bins_) total += b;
  return total;
}

Pmf with_cycle_slips(const Pmf& first_opportunity, double p_slip,
                     sim::Time cycle, int max_slips) {
  if (!(p_slip >= 0.0) || p_slip > 1.0) {
    throw std::invalid_argument("with_cycle_slips: p_slip outside [0, 1]");
  }
  if (max_slips < 0) {
    throw std::invalid_argument("with_cycle_slips: negative max_slips");
  }
  if (cycle < sim::Time::zero()) {
    throw std::invalid_argument("with_cycle_slips: negative cycle");
  }
  Pmf out(first_opportunity.quantum(), first_opportunity.max_bins());
  // p_pow tracks p_slip^j; the leftover after the truncated geometric sum
  // is exactly p_slip^(max_slips+1), routed to the overflow bucket so the
  // composition conserves mass.
  double p_pow = 1.0;
  for (int j = 0; j <= max_slips; ++j) {
    const double weight = (1.0 - p_slip) * p_pow;
    if (weight > 0.0) {
      out.accumulate(first_opportunity.shifted(cycle * j), weight);
    }
    p_pow *= p_slip;
    if (p_pow == 0.0 && j < max_slips) break;
  }
  out.add_overflow(p_pow * first_opportunity.total_mass());
  return out;
}

}  // namespace coeff::analysis
