#include "analysis/schedule_lint.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sched/rta.hpp"
#include "sched/slack_table.hpp"
#include "sched/task.hpp"

namespace coeff::analysis {

namespace {

Location msg_loc(int id) {
  Location loc;
  loc.message_id = id;
  return loc;
}

Location slot_loc(std::int64_t slot, std::int64_t cycle = -1) {
  Location loc;
  loc.slot = slot;
  loc.cycle = cycle;
  return loc;
}

// --- Structural rules ----------------------------------------------------

void check_config(const flexray::ClusterConfig& cfg, Report& report) {
  try {
    cfg.validate();
  } catch (const std::invalid_argument& e) {
    report.add("schedule.config-valid", e.what());
  }
}

void check_macrotick_roundtrip(const flexray::ClusterConfig& cfg,
                               Report& report) {
  if (cfg.gd_macrotick <= sim::Time::zero()) return;  // config-valid fired
  // The units layer models wall-clock durations as whole microseconds;
  // a fractional-us macrotick cannot be expressed on that grid, so any
  // Microseconds-typed configuration input would silently truncate.
  if (!units::is_whole_microseconds(cfg.gd_macrotick)) {
    report.add("schedule.macrotick-roundtrip",
               strformat("gdMacrotick %s is not a whole number of "
                      "microseconds; units::Microseconds cannot express "
                      "the macrotick grid exactly",
                      sim::to_string(cfg.gd_macrotick).c_str()));
  }
  // Every configured macrotick length must survive the units-layer
  // round trip Macroticks -> sim::Time -> Macroticks on this grid.
  struct Field {
    const char* name;
    units::Macroticks mt;
  };
  const Field fields[] = {
      {"gMacroPerCycle", cfg.g_macro_per_cycle},
      {"gdStaticSlot", cfg.gd_static_slot},
      {"gdMinislot", cfg.gd_minislot},
      {"gdActionPointOffset", cfg.gd_minislot_action_point_offset},
      {"gdSymbolWindow", cfg.gd_symbol_window},
  };
  for (const auto& f : fields) {
    try {
      const sim::Time t = units::to_time(f.mt, cfg.gd_macrotick);
      if (units::to_macroticks(t, cfg.gd_macrotick) != f.mt) {
        report.add("schedule.macrotick-roundtrip",
                   strformat("%s: %lld MT does not round-trip through "
                          "sim::Time on a %s macrotick grid",
                          f.name, static_cast<long long>(f.mt.count()),
                          sim::to_string(cfg.gd_macrotick).c_str()));
      }
    } catch (const std::exception& e) {
      report.add("schedule.macrotick-roundtrip",
                 strformat("%s: units round trip failed: %s", f.name,
                        e.what()));
    }
  }
}

void check_message_set(const net::MessageSet& set, const char* which,
                       Report& report) {
  try {
    set.validate();
  } catch (const std::invalid_argument& e) {
    report.add("schedule.message-set-valid",
               strformat("%s set: %s", which, e.what()));
  }
  for (const auto& m : set.messages()) {
    if (m.period <= sim::Time::zero()) continue;  // message-set-valid fired
    if (m.deadline <= sim::Time::zero() || m.deadline > m.period) {
      report.add("schedule.deadline-period",
                 strformat("%s message %d '%s': deadline %s outside (0, period "
                        "%s]",
                        which, m.id, m.name.c_str(),
                        sim::to_string(m.deadline).c_str(),
                        sim::to_string(m.period).c_str()),
                 msg_loc(m.id));
    }
  }
}

void check_hyperperiod(const net::MessageSet& statics, Report& report) {
  try {
    (void)statics.hyperperiod();
  } catch (const std::domain_error& e) {
    report.add("schedule.hyperperiod-overflow", e.what());
  }
}

void check_static_capacity(const flexray::ClusterConfig& cfg,
                           const net::MessageSet& statics, Report& report) {
  const std::int64_t capacity = cfg.static_slot_capacity_bits();
  const sim::Time cycle = cfg.cycle_duration();
  for (const auto& m : statics.messages()) {
    if (m.period > sim::Time::zero() && cycle > sim::Time::zero() &&
        m.period % cycle != sim::Time::zero()) {
      report.add("schedule.period-cycle",
                 strformat("static message %d '%s': period %s is not a "
                           "multiple of the %s cycle",
                           m.id, m.name.c_str(),
                           sim::to_string(m.period).c_str(),
                           sim::to_string(cycle).c_str()),
                 msg_loc(m.id));
    }
    if (m.size_bits > capacity) {
      report.add("schedule.slot-capacity",
                 strformat("static message %d '%s' is %lld bits; a %lld-MT "
                        "static slot carries %lld bits",
                        m.id, m.name.c_str(),
                        static_cast<long long>(m.size_bits),
                        static_cast<long long>(cfg.gd_static_slot.count()),
                        static_cast<long long>(capacity)),
                 msg_loc(m.id));
    }
  }
}

void check_minislot_budget(const flexray::ClusterConfig& cfg,
                           const net::MessageSet& dynamics, Report& report) {
  if (dynamics.empty()) return;
  if (cfg.latest_tx_minislot() < units::MinislotId{1}) {
    report.add("schedule.minislot-budget",
               "pLatestTx < 1: no dynamic transmission can ever start");
    return;
  }
  double demand_minislots_per_cycle = 0.0;
  const double cycle_s = cfg.cycle_duration().as_seconds();
  for (const auto& m : dynamics.messages()) {
    const std::int64_t need = cfg.minislots_for(m.size_bits);
    if (need > cfg.g_number_of_minislots) {
      report.add("schedule.minislot-budget",
                 strformat("dynamic message %d '%s' needs %lld minislots; the "
                        "segment has %lld",
                        m.id, m.name.c_str(), static_cast<long long>(need),
                        static_cast<long long>(cfg.g_number_of_minislots)),
                 msg_loc(m.id));
      continue;
    }
    if (m.period > sim::Time::zero()) {
      demand_minislots_per_cycle +=
          static_cast<double>(need) * cycle_s / m.period.as_seconds();
    }
  }
  if (demand_minislots_per_cycle >
      static_cast<double>(cfg.g_number_of_minislots)) {
    report.add("schedule.minislot-load",
               strformat("expected dynamic demand is %.1f minislots per cycle "
                      "against a single-channel budget of %lld",
                      demand_minislots_per_cycle,
                      static_cast<long long>(cfg.g_number_of_minislots)));
  }
}

void check_table(const flexray::ClusterConfig& cfg,
                 const sched::StaticScheduleTable& table, Report& report) {
  // Slot bounds and multiplexing-phase legality per assignment.
  for (const auto& a : table.assignments()) {
    if (a.slot.value() < 1 || a.slot.value() > cfg.g_number_of_static_slots) {
      report.add("schedule.slot-bounds",
                 strformat("message %d assigned to slot %lld outside [1, %lld]",
                        a.message_id, static_cast<long long>(a.slot.value()),
                        static_cast<long long>(cfg.g_number_of_static_slots)),
                 slot_loc(a.slot.value()));
    }
    // base_cycle is the first transmitting cycle, not a residue: the
    // builder shifts it past the message offset, so it may exceed the
    // repetition. Only negative bases and non-positive repetitions are
    // structurally illegal.
    if (a.repetition < 1 || a.base_cycle.value() < 0) {
      report.add("schedule.slot-bounds",
                 strformat("message %d: base cycle %lld / repetition %lld is "
                        "not a valid multiplexing phase",
                        a.message_id,
                        static_cast<long long>(a.base_cycle.value()),
                        static_cast<long long>(a.repetition)),
                 slot_loc(a.slot.value(), a.base_cycle.value()));
    }
  }

  // FrameID uniqueness per channel: within one static slot, two
  // occupants collide iff their phases ever coincide, i.e. iff
  // base_1 = base_2 (mod gcd(rep_1, rep_2)).
  std::map<std::int64_t, std::vector<const sched::SlotAssignment*>> by_slot;
  for (const auto& a : table.assignments()) {
    by_slot[a.slot.value()].push_back(&a);
  }
  for (const auto& [slot, occupants] : by_slot) {
    for (std::size_t i = 0; i < occupants.size(); ++i) {
      for (std::size_t j = i + 1; j < occupants.size(); ++j) {
        const auto& x = *occupants[i];
        const auto& y = *occupants[j];
        if (x.repetition < 1 || y.repetition < 1) continue;  // already flagged
        const std::int64_t g = std::gcd(x.repetition, y.repetition);
        if ((x.base_cycle - y.base_cycle) % g == 0) {
          report.add("schedule.frame-id-unique",
                     strformat("messages %d and %d share slot %lld with "
                            "coinciding phases (%lld/%lld and %lld/%lld)",
                            x.message_id, y.message_id,
                            static_cast<long long>(slot),
                            static_cast<long long>(x.base_cycle.value()),
                            static_cast<long long>(x.repetition),
                            static_cast<long long>(y.base_cycle.value()),
                            static_cast<long long>(y.repetition)),
                     slot_loc(slot));
        }
      }
    }
  }

  for (const int id : table.unplaced()) {
    report.add("schedule.unplaced",
               strformat("static message %d has no feasible slot phase", id),
               msg_loc(id));
  }
  for (const int id : table.deadline_risk()) {
    report.add("schedule.deadline-risk",
               strformat("static message %d: fixed placement latency exceeds "
                      "its deadline",
                      id),
               msg_loc(id));
  }
}

// --- Semantic rules ------------------------------------------------------

void check_theorem1(const ScheduleLintInput& input, Report& report) {
  const auto& statics = *input.statics;
  const auto& plan = *input.plan;
  if (plan.copies.size() != statics.size()) {
    report.add("schedule.theorem1-recheck",
               strformat("plan covers %zu messages but the static set has %zu",
                      plan.copies.size(), statics.size()));
    return;
  }
  for (std::size_t z = 0; z < plan.copies.size(); ++z) {
    if (plan.copies[z] < 0) {
      report.add("schedule.theorem1-recheck",
                 strformat("negative copy count k_%zu = %d", z, plan.copies[z]),
                 msg_loc(statics[z].id));
      return;
    }
  }
  const double recomputed =
      fault::log_set_reliability(statics, plan.copies, input.ber, input.u);
  // The solver accumulates log R incrementally across greedy steps, so
  // it drifts O(steps * ulp) from a fresh summation; a genuinely wrong
  // plan (any k_z off by one) moves log R by a frame-error-probability
  // scale, many orders of magnitude above this floor.
  const double tol = std::max(1e-9, 1e-6 * std::fabs(recomputed));
  if (std::fabs(recomputed - plan.log_reliability) > tol) {
    report.add("schedule.theorem1-recheck",
               strformat("plan reports log R = %.12g but Theorem 1 recomputes "
                      "%.12g at ber=%g",
                      plan.log_reliability, recomputed, input.ber));
  }
  if (input.rho > 0.0) {
    const double target = std::log(input.rho);
    if (plan.degraded) {
      report.add("schedule.plan-degraded",
                 strformat("rho=%.10g unreachable within the copy bound; plan "
                        "achieves R=%.10g",
                        input.rho, std::exp(recomputed)));
    } else if (recomputed < target - tol) {
      report.add("schedule.theorem1-recheck",
                 strformat("plan claims rho met but recomputed R=%.10g < "
                        "rho=%.10g",
                        std::exp(recomputed), input.rho));
    }
  }
}

void check_slack_and_rta(const ScheduleLintInput& input, Report& report) {
  const auto& cfg = *input.cluster;
  std::vector<sched::PeriodicTask> tasks;
  for (const auto& m : input.statics->messages()) {
    sched::PeriodicTask t;
    t.id = m.id;
    t.wcet = cfg.transmission_time(m.size_bits);
    t.period = m.period;
    t.offset = m.offset;
    t.deadline = m.deadline;
    tasks.push_back(t);
  }
  sched::TaskSet set{std::move(tasks)};
  try {
    set.validate();
  } catch (const std::invalid_argument& e) {
    // Structural message rules should have caught this; surface it
    // rather than crashing on a malformed semantic model.
    report.add("schedule.message-set-valid",
               strformat("static task model: %s", e.what()));
    return;
  }

  // RTA cross-check (sufficient test: a pass proves schedulability for
  // any offsets; a miss is only a risk, hence warning severity).
  const sched::RtaResult rta = sched::response_time_analysis(set);
  if (!rta.schedulable) {
    for (std::size_t level = 0; level < rta.response_times.size(); ++level) {
      const auto& task = set.at_level(level);
      if (rta.response_times[level] > task.deadline) {
        report.add(
            "schedule.rta-deadline",
            strformat("static message %d: worst-case response %s exceeds "
                   "deadline %s",
                   task.id,
                   rta.response_times[level] == sim::Time::max()
                       ? "(divergent)"
                       : sim::to_string(rta.response_times[level]).c_str(),
                   sim::to_string(task.deadline).c_str()),
            msg_loc(task.id));
      }
    }
  }

  // Slack-table recheck: the curves the runtime slack stealer consults
  // must be non-negative and cumulatively non-decreasing.
  const auto table = sched::SlackTable::shared(set);
  if (!table->schedulable()) {
    report.add("schedule.slack-infeasible",
               "offline periodic schedule of the static set misses a "
               "deadline; slack queries are not meaningful");
    return;
  }
  const sim::Time h = table->hyperperiod();
  const int samples = std::max(2, input.slack_samples);
  for (int k = 0; k < samples; ++k) {
    const sim::Time t = sim::Time{2 * h.ns() * k / samples};
    const sim::Time s = table->slack_at(t);
    if (s < sim::Time::zero()) {
      report.add("schedule.slack-nonnegative",
                 strformat("stealable slack at t=%s is %s",
                        sim::to_string(t).c_str(),
                        sim::to_string(s).c_str()));
      break;  // one witness suffices; the curve is systematically wrong
    }
  }
  for (std::size_t level = 0; level < table->levels(); ++level) {
    sim::Time prev = sim::Time::zero();
    for (int k = 0; k < samples; ++k) {
      const sim::Time t = sim::Time{2 * h.ns() * k / samples};
      const sim::Time cum = table->cumulative_idle(level, t);
      if (cum < prev) {
        report.add("schedule.slack-monotone",
                   strformat("level-%zu cumulative idle decreases at t=%s",
                          level, sim::to_string(t).c_str()));
        return;
      }
      prev = cum;
    }
  }
}

}  // namespace

Report lint_schedule(const ScheduleLintInput& input) {
  Report report;
  if (input.cluster == nullptr) {
    report.add("schedule.config-valid", "no cluster configuration provided");
    return report;
  }

  check_config(*input.cluster, report);
  check_macrotick_roundtrip(*input.cluster, report);
  if (input.statics != nullptr) {
    check_message_set(*input.statics, "static", report);
    check_hyperperiod(*input.statics, report);
    check_static_capacity(*input.cluster, *input.statics, report);
  }
  if (input.dynamics != nullptr) {
    check_message_set(*input.dynamics, "dynamic", report);
    check_minislot_budget(*input.cluster, *input.dynamics, report);
  }
  if (input.table != nullptr) {
    check_table(*input.cluster, *input.table, report);
  }

  // Semantic phase: meaningless over a structurally broken input, like
  // type checking after a parse error.
  if (report.has_errors()) return report;

  if (input.plan != nullptr && input.statics != nullptr) {
    check_theorem1(input, report);
  }
  if (input.statics != nullptr && !input.statics->empty()) {
    check_slack_and_rta(input, report);
  }
  return report;
}

}  // namespace coeff::analysis
