// coeff-lint diagnostics (DESIGN.md §9).
//
// Every static-analysis rule reports through a `Diagnostic`: a stable
// rule id ("schedule.slot-bounds"), a severity, a human-readable
// message and an optional location into the artifact being linted (a
// message id, a slot/cycle coordinate, or a trace record index). A
// `Report` collects diagnostics across linters; `render_text` is the
// terminal form, `render_sarif` a SARIF 2.1.0 document for CI
// annotation. Unlike the `validate()` methods scattered through the
// model types — which throw on the *first* violation — a lint pass
// keeps going and reports everything it finds.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace coeff::analysis {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

[[nodiscard]] constexpr const char* to_string(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

/// Where a diagnostic points. All fields optional (-1 = unset); linters
/// fill whichever coordinates exist in their artifact.
struct Location {
  int message_id = -1;       ///< offending message, if any
  std::int64_t slot = -1;    ///< static slot / dynamic slot counter
  std::int64_t cycle = -1;   ///< communication cycle
  std::int64_t record = -1;  ///< index into the linted trace

  [[nodiscard]] bool empty() const {
    return message_id < 0 && slot < 0 && cycle < 0 && record < 0;
  }
  /// "msg 7 slot 3 cycle 2" (empty string when nothing is set).
  [[nodiscard]] std::string describe() const;
};

struct Diagnostic {
  std::string rule;  ///< stable id, e.g. "schedule.slot-bounds"
  Severity severity = Severity::kError;
  std::string message;
  Location loc;
};

/// One rule's catalog entry: id, default severity, one-line summary and
/// a help URI (the design-doc section that defines the rule). The
/// catalog backs `coeffctl lint --list-rules` and the SARIF rule
/// metadata; every rule a linter can emit must be registered here, with
/// a non-empty summary and help URI (enforced by the catalog-integrity
/// unit test).
struct RuleInfo {
  const char* id;
  Severity severity;
  const char* summary;
  const char* help_uri;
};

[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();
[[nodiscard]] const RuleInfo* find_rule(std::string_view id);

/// The `coeffctl lint --list-rules` listing: one line per catalog rule
/// (id, severity, summary, help URI). Unit-tested to cover every
/// registered rule, so the CLI listing can never silently drop one.
[[nodiscard]] std::string render_rule_list();

/// printf-style std::string builder for diagnostic messages.
[[nodiscard, gnu::format(printf, 1, 2)]] std::string strformat(
    const char* fmt, ...);

class Report {
 public:
  void add(Diagnostic d);
  /// Convenience: add with the rule's catalog severity.
  void add(std::string_view rule, std::string message, Location loc = {});
  void merge(Report other);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }
  [[nodiscard]] bool empty() const { return diags_.empty(); }
  [[nodiscard]] std::size_t count(Severity s) const;
  [[nodiscard]] std::size_t count_rule(std::string_view rule) const;
  [[nodiscard]] bool has_rule(std::string_view rule) const {
    return count_rule(rule) > 0;
  }
  [[nodiscard]] bool has_errors() const { return count(Severity::kError) > 0; }

  /// One line per diagnostic: "error: schedule.slot-bounds: ... [slot 99]".
  [[nodiscard]] std::string render_text() const;
  /// SARIF 2.1.0 document (tool = coeff-lint) suitable for CI upload.
  [[nodiscard]] std::string render_sarif() const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace coeff::analysis
