#include "analysis/dyn_wcrt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <string_view>

#include "units/convert.hpp"

namespace coeff::analysis {

namespace {

constexpr std::size_t kMaxPerRule = 8;

/// Same per-rule flood guard as prob_wcrt/trace_lint: a systemically
/// broken config yields a bounded, readable report.
class CappedReport {
 public:
  explicit CappedReport(Report& report) : report_(report) {}

  void add(const char* rule, std::string message, Location loc = {}) {
    Diagnostic d;
    d.rule = rule;
    if (const RuleInfo* info = find_rule(rule)) d.severity = info->severity;
    d.message = std::move(message);
    d.loc = loc;
    add(std::move(d));
  }

  void add(Diagnostic d) {
    std::size_t& n = per_rule_[d.rule];
    ++n;
    if (n < kMaxPerRule) {
      report_.add(std::move(d));
    } else if (n == kMaxPerRule) {
      const std::string rule = d.rule;
      report_.add(std::move(d));
      Diagnostic note;
      note.rule = rule;
      note.severity = Severity::kNote;
      note.message = "further diagnostics for this rule suppressed";
      report_.add(std::move(note));
    }
  }

 private:
  Report& report_;
  std::map<std::string, std::size_t> per_rule_;
};

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      out += strformat("\\u%04x", ch);
    } else {
      out += ch;
    }
  }
  return out;
}

/// log(1 - p) with the p >= 1 ("certain miss") edge pinned to -inf.
double log1m(double p) {
  if (p >= 1.0) return -HUGE_VAL;
  if (p <= 0.0) return 0.0;
  return std::log1p(-p);
}

/// One dynamic instance spends exactly one wire attempt: a single
/// channel-A transmission under CoEfficient (a popped-and-corrupted
/// instance settles; `add_copies(inst, 1)`), a mirrored dual-channel
/// pair under FSPEC/HOSA (channel B replays the dynamic mirror). The
/// pessimistic edge evaluates that attempt at the fault model's
/// worst-case burst correlation.
double chain_fail(fault::AnalyticFailure& af, ProbRetxModel d,
                  std::int64_t bits) {
  switch (d) {
    case ProbRetxModel::kPlannedSerial:
      return af.consecutive_failures(bits, 1);
    case ProbRetxModel::kMirroredRounds:
    case ProbRetxModel::kMirroredSingle:
      return af.consecutive_pair_failures(bits, 1);
  }
  return 1.0;
}

/// Independence (optimistic) counterpart of chain_fail.
double indep_fail(fault::AnalyticFailure& af, ProbRetxModel d,
                  std::int64_t bits) {
  switch (d) {
    case ProbRetxModel::kPlannedSerial:
      return af.independent_failures(bits, 1);
    case ProbRetxModel::kMirroredRounds:
    case ProbRetxModel::kMirroredSingle:
      return af.independent_pair_failures(bits, 1);
  }
  return 1.0;
}

}  // namespace

DynWcrtResult analyze_dyn_wcrt(const DynWcrtInput& input) {
  if (input.cluster == nullptr || input.dynamics == nullptr) {
    throw std::invalid_argument("analyze_dyn_wcrt: null cluster/dynamics");
  }
  if (input.max_slips < 1) {
    throw std::invalid_argument("analyze_dyn_wcrt: max_slips < 1");
  }
  const flexray::ClusterConfig& cfg = *input.cluster;
  const sim::Time cycle = cfg.cycle_duration();
  const sim::Time ms_dur = cfg.minislot_duration();
  const sim::Time static_seg = cfg.static_segment_duration();
  const sim::Time aoff =
      units::to_time(cfg.gd_minislot_action_point_offset, cfg.gd_macrotick);
  const std::int64_t n_ms = cfg.g_number_of_minislots;
  const std::int64_t latest = cfg.latest_tx_minislot().value();
  const std::int64_t first_dyn_slot = cfg.g_number_of_static_slots + 1;

  // A degraded CoEfficient plan load-sheds every dynamic release at its
  // source (on_dynamic_release): no queue entry, no rescue, envelope [1,1].
  const bool shed_all = input.discipline == ProbRetxModel::kPlannedSerial &&
                        input.plan != nullptr && input.plan->degraded;

  // FTDMA priority = frame id: walk in ascending order so each message
  // sees exactly the strictly-higher-priority interference accumulated
  // so far.
  std::vector<const net::Message*> order;
  for (const net::Message& m : input.dynamics->messages()) {
    if (m.frame_id < first_dyn_slot) {
      throw std::invalid_argument(strformat(
          "analyze_dyn_wcrt: message %d (frame %d) has no dynamic frame id "
          "(first dynamic slot is %lld)",
          m.id, m.frame_id, static_cast<long long>(first_dyn_slot)));
    }
    order.push_back(&m);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const net::Message* a, const net::Message* b) {
                     return a->frame_id < b->frame_id;
                   });

  DynWcrtResult result;
  fault::AnalyticFailure af(input.fault_model);

  // Higher-priority extra-minislot load, three ways: the exact maximum
  // (deterministic-fit test), the mean (Markov bound of the upper edge),
  // and the full independence-model distribution convolved on an exact
  // minislot-quantum grid (nominal model + diagnostic output).
  const std::size_t grid_bins =
      static_cast<std::size_t>(std::max<std::int64_t>(64, n_ms + 2));
  Pmf intf = Pmf::delta(sim::Time::zero(), ms_dur, grid_bins);
  double e_mean = 0.0;
  std::int64_t e_max = 0;

  double log_upper = 0.0;
  double log_lower = 0.0;
  std::map<char, ClassProb> classes;

  for (const net::Message* mp_msg : order) {
    const net::Message& m = *mp_msg;
    DynMessageProb mp;
    mp.message_id = m.id;
    mp.name = m.name;
    mp.frame_id = m.frame_id;
    mp.sae_class = sae_class_of(m.deadline);
    mp.deadline = m.deadline;
    mp.period = m.period;
    mp.need_minislots = cfg.minislots_for(m.size_bits);
    mp.baseline_offset = m.frame_id - first_dyn_slot;
    // A transmission starting at 0-based walk position p needs
    // p + 1 <= pLatestTx and need <= N - p; t_pos is the last feasible
    // start, slack the room left after the guaranteed baseline walk.
    const std::int64_t t_pos = std::min(latest - 1, n_ms - mp.need_minislots);
    mp.slack_minislots = t_pos - mp.baseline_offset;
    const sim::Time tx = cfg.transmission_time(m.size_bits);

    mp.p_attempt = chain_fail(af, input.discipline, m.size_bits);
    const double fail_up = mp.p_attempt;
    const double fail_lo = indep_fail(af, input.discipline, m.size_bits);

    Pmf response(input.options.quantum, input.options.max_bins);
    mp.nominal_p999 = sim::Time::max();

    if (shed_all) {
      mp.shed = true;
      mp.p_blocked_upper = 1.0;
      mp.p_blocked_nominal = 1.0;
      response.add_overflow(1.0);
      mp.p_miss_upper = 1.0;
      mp.p_miss_lower = 1.0;
    } else if (mp.slack_minislots < 0) {
      // Deterministic starvation: even an empty segment walks the
      // counter past the last feasible start before this frame's turn.
      mp.starved = true;
      mp.p_blocked_upper = 1.0;
      mp.p_blocked_nominal = 1.0;
      response.add_overflow(1.0);
      mp.p_miss_upper = 1.0;
      // CoEfficient's slack stealer can rescue a queued dynamic entry
      // through a stolen static slot (one single-channel attempt), so
      // the optimistic edge keeps the attempt failure; the mirrored
      // disciplines have no rescue path and the envelope collapses.
      mp.p_miss_lower = input.discipline == ProbRetxModel::kPlannedSerial
                            ? std::min(fail_lo, 1.0)
                            : 1.0;
    } else {
      // --- Upper edge: correlation-free blocking bound ------------------
      // Sound worst-case response when serving at the j-th opportunity:
      //   R_u(j) = (j+1)*cycle + static segment + t_pos*minislot
      //            + action point + transmission,
      // (release just missed its own cycle's walk, start at the last
      // feasible minislot). k_timely counts opportunities with
      // R_u(j) <= D.
      const sim::Time r1 = cycle + static_seg + ms_dur * t_pos + aoff + tx;
      std::int64_t k_timely = 0;
      if (r1 <= m.deadline) {
        k_timely = (m.deadline - r1).ns() / cycle.ns() + 1;
      }
      // Markov bound on the per-cycle blocked fraction: each
      // higher-priority instance transmits at most once, so the long-run
      // extra-minislot load per cycle is at most e_mean regardless of
      // arrival correlation; P(E > slack) <= e_mean/(slack+1).
      double p_blk_bar = 0.0;
      if (e_max > mp.slack_minislots) {
        p_blk_bar = std::min(
            1.0, e_mean / static_cast<double>(mp.slack_minislots + 1));
      }
      // Adversarial arrival phasing: a burst of blocked cycles kills an
      // instance only by covering its k_timely consecutive opportunity
      // cycles; instances are spaced T/cycle apart, so the killed
      // fraction is at most p_blk_bar * spacing/k_timely.
      const double spacing =
          std::max(1.0, static_cast<double>(m.period.ns()) /
                            static_cast<double>(cycle.ns()));
      double p_blk_u = 1.0;
      if (k_timely > 0) {
        p_blk_u = std::min(
            1.0,
            p_blk_bar * std::max(1.0, spacing / static_cast<double>(k_timely)));
      }
      // Rate stability: CoEfficient's two channels can pop two queued
      // instances per cycle, the mirrored disciplines serve one pair.
      const double rate = static_cast<double>(cycle.ns()) /
                          static_cast<double>(m.period.ns());
      const double capacity =
          input.discipline == ProbRetxModel::kPlannedSerial ? 2.0 : 1.0;
      if (rate > capacity) p_blk_u = 1.0;
      mp.p_blocked_upper = p_blk_u;

      // Served mass lands no later than the last timely opportunity.
      const double serve = (1.0 - p_blk_u) * (1.0 - fail_up);
      if (serve > 0.0 && k_timely > 0) {
        response.add_mass(r1 + cycle * (k_timely - 1), serve);
      }
      response.add_overflow(1.0 - serve);
      mp.p_miss_upper = std::min(1.0, response.tail_above(m.deadline));

      // --- Lower edge: uncontended, ideally phased service --------------
      const sim::Time r_lo = aoff + tx;
      mp.p_miss_lower = std::min(r_lo > m.deadline ? 1.0 : fail_lo,
                                 mp.p_miss_upper);

      // --- Nominal model: convolved interference + geometric slips ------
      mp.p_blocked_nominal =
          std::min(1.0, intf.tail_above(ms_dur * mp.slack_minislots));
      Pmf first(input.options.quantum, input.options.max_bins);
      const std::vector<double>& ibins = intf.bins();
      for (std::size_t e = 0; e < ibins.size(); ++e) {
        const auto extra = static_cast<std::int64_t>(e);
        if (extra > mp.slack_minislots) break;
        if (ibins[e] <= 0.0) continue;
        first.add_mass(cycle + static_seg +
                           ms_dur * (mp.baseline_offset + extra) + aoff + tx,
                       ibins[e]);
      }
      if (first.total_mass() > 0.0) {
        first.normalize();
        Pmf nominal = with_cycle_slips(first, mp.p_blocked_nominal, cycle,
                                       input.max_slips);
        Pmf composed(input.options.quantum, input.options.max_bins);
        composed.accumulate(nominal, 1.0 - fail_lo);
        composed.add_overflow(fail_lo);
        mp.nominal_p999 = composed.quantile(0.999);
      }
    }

    mp.response_p999 = response.quantile(0.999);
    mp.response = std::move(response);

    const double occ = static_cast<double>(input.u.ns()) /
                       static_cast<double>(m.period.ns());
    log_upper += occ * log1m(mp.p_miss_upper);
    log_lower += occ * log1m(mp.p_miss_lower);

    ClassProb& c = classes[mp.sae_class];
    c.sae_class = mp.sae_class;
    ++c.messages;
    c.worst_p_miss_upper = std::max(c.worst_p_miss_upper, mp.p_miss_upper);
    c.worst_p_miss_lower = std::max(c.worst_p_miss_lower, mp.p_miss_lower);

    // Fold this frame into the interference seen by lower priorities.
    // A shed or deterministically starved frame never transmits, so it
    // contributes no extra minislots (its idle walk is already in every
    // lower frame's baseline offset).
    const std::int64_t extra = mp.need_minislots - 1;
    if (!mp.shed && !mp.starved && extra > 0) {
      const double q =
          std::min(1.0, static_cast<double>(cycle.ns()) /
                            static_cast<double>(m.period.ns()));
      e_mean += q * static_cast<double>(extra);
      e_max += extra;
      Pmf bern(ms_dur, grid_bins);
      bern.add_mass(sim::Time::zero(), 1.0 - q);
      bern.add_mass(ms_dur * extra, q);
      intf = intf.convolve(bern);
    }

    result.messages.push_back(std::move(mp));
  }

  result.log_reliability_upper = log_upper;
  result.log_reliability_lower = log_lower;
  for (auto& [cls, cp] : classes) result.classes.push_back(cp);
  result.interference = std::move(intf);
  return result;
}

Report lint_dyn(const DynWcrtInput& input, const DynWcrtResult& result) {
  Report report;
  CappedReport out(report);

  // --- analysis.dyn-starvation ------------------------------------------
  for (const DynMessageProb& mp : result.messages) {
    Location loc;
    loc.message_id = mp.message_id;
    if (mp.shed) {
      out.add("analysis.dyn-starvation",
              strformat("message %s (frame %d): degraded plan sheds every "
                        "dynamic release at its source — miss envelope is "
                        "[1, 1]",
                        mp.name.c_str(), mp.frame_id),
              loc);
    } else if (mp.starved) {
      out.add("analysis.dyn-starvation",
              strformat("message %s (frame %d): can never start — baseline "
                        "walk position %lld is past the last feasible start "
                        "%lld (needs %lld of %lld minislots, pLatestTx %lld)",
                        mp.name.c_str(), mp.frame_id,
                        static_cast<long long>(mp.baseline_offset),
                        static_cast<long long>(mp.baseline_offset +
                                               mp.slack_minislots),
                        static_cast<long long>(mp.need_minislots),
                        static_cast<long long>(
                            input.cluster->g_number_of_minislots),
                        static_cast<long long>(
                            input.cluster->latest_tx_minislot().value())),
              loc);
    } else if (mp.p_miss_upper >= 1.0) {
      // Saturated by worst-case contention, not by geometry: the frame
      // may starve under adversarial phasing but is not provably dead.
      Diagnostic d;
      d.rule = "analysis.dyn-starvation";
      d.severity = Severity::kWarning;
      d.message = strformat(
          "message %s (frame %d): upper envelope saturates at 1 under "
          "worst-case contention (blocked bound %.4g over %lld slack "
          "minislots)",
          mp.name.c_str(), mp.frame_id, mp.p_blocked_upper,
          static_cast<long long>(mp.slack_minislots));
      d.loc = loc;
      out.add(std::move(d));
    }
  }

  // --- analysis.dyn-miss-exceeds-target ---------------------------------
  const double log_target =
      input.plan != nullptr && input.plan->target_log_reliability != 0.0
          ? input.plan->target_log_reliability
          : (input.rho > 0.0 ? std::log(input.rho) : 0.0);
  const bool has_target = log_target != 0.0 || input.rho > 0.0;
  const double tol = 1e-9 * std::max(1.0, std::fabs(log_target));
  const bool plan_claims_met = input.plan == nullptr || !input.plan->degraded;
  if (has_target && plan_claims_met &&
      result.log_reliability_upper < log_target - tol) {
    const double share =
        log_target / std::max<std::size_t>(1, result.messages.size());
    out.add("analysis.dyn-miss-exceeds-target",
            strformat("analytic dynamic-segment reliability %.6g misses the "
                      "target %.6g (log %.4g < %.4g)",
                      std::exp(result.log_reliability_upper),
                      std::exp(log_target), result.log_reliability_upper,
                      log_target));
    for (const DynMessageProb& mp : result.messages) {
      const double occ = static_cast<double>(input.u.ns()) /
                         static_cast<double>(mp.period.ns());
      const double term = occ * log1m(mp.p_miss_upper);
      if (term < share - tol) {
        Location loc;
        loc.message_id = mp.message_id;
        out.add("analysis.dyn-miss-exceeds-target",
                strformat("message %s (frame %d): analytic P(miss) %.4g "
                          "exceeds its equal-share budget (class %c, blocked "
                          "bound %.4g)",
                          mp.name.c_str(), mp.frame_id, mp.p_miss_upper,
                          mp.sae_class, mp.p_blocked_upper),
                loc);
      }
    }
  }
  return report;
}

std::vector<ClassProb> merge_class_envelopes(
    const std::vector<ClassProb>& statics,
    const std::vector<ClassProb>& dyns) {
  std::map<char, ClassProb> merged;
  const auto fold = [&merged](const ClassProb& c) {
    ClassProb& t = merged[c.sae_class];
    t.sae_class = c.sae_class;
    t.messages += c.messages;
    t.worst_p_miss_upper = std::max(t.worst_p_miss_upper, c.worst_p_miss_upper);
    t.worst_p_miss_lower = std::max(t.worst_p_miss_lower, c.worst_p_miss_lower);
  };
  for (const ClassProb& c : statics) fold(c);
  for (const ClassProb& c : dyns) fold(c);
  std::vector<ClassProb> out;
  out.reserve(merged.size());
  for (auto& [cls, cp] : merged) out.push_back(cp);
  return out;
}

std::string render_dyn_text(const DynWcrtInput& input,
                            const DynWcrtResult& result) {
  std::string out;
  out += strformat("dynamic-segment probabilistic analysis (%s, %s)\n",
                   to_string(input.discipline),
                   fault::describe(input.fault_model).c_str());
  out += strformat(
      "  reliability envelope over u=%.0fs: [%.9g, %.9g]  (target %s)\n",
      input.u.as_seconds(), std::exp(result.log_reliability_upper),
      std::exp(result.log_reliability_lower),
      input.rho > 0.0 ? strformat("%.9g", input.rho).c_str() : "none");
  out += strformat("  %-16s %-3s %-6s %-5s %-6s %-12s %-12s %-10s\n",
                   "message", "cls", "frame", "need", "slack", "P(miss) up",
                   "P(miss) lo", "p999");
  for (const DynMessageProb& mp : result.messages) {
    const std::string p999 =
        mp.response_p999 == sim::Time::max()
            ? std::string("inf")
            : strformat("%.0fus", mp.response_p999.as_us());
    const char* marker = mp.shed ? " [shed]" : (mp.starved ? " [starved]" : "");
    out += strformat(
        "  %-16s %-3c %-6d %-5lld %-6lld %-12.4g %-12.4g %-10s%s\n",
        mp.name.c_str(), mp.sae_class, mp.frame_id,
        static_cast<long long>(mp.need_minislots),
        static_cast<long long>(mp.slack_minislots), mp.p_miss_upper,
        mp.p_miss_lower, p999.c_str(), marker);
  }
  for (const ClassProb& c : result.classes) {
    out += strformat(
        "  class %c: %d message(s), worst P(miss) in [%.4g, %.4g]\n",
        c.sae_class, c.messages, c.worst_p_miss_lower, c.worst_p_miss_upper);
  }
  return out;
}

std::string render_dyn_json(const DynWcrtInput& input,
                            const DynWcrtResult& result) {
  std::string out = "{";
  out += strformat("\"discipline\":\"%s\",", to_string(input.discipline));
  out += strformat("\"fault_model\":\"%s\",",
                   json_escape(fault::describe(input.fault_model)).c_str());
  out += strformat("\"rho\":%.17g,\"u_seconds\":%.9g,\"max_slips\":%d,",
                   input.rho, input.u.as_seconds(), input.max_slips);
  const auto finite_log = [](double v) {
    return std::isfinite(v) ? v : -std::numeric_limits<double>::max();
  };
  out += strformat("\"log_reliability_upper\":%.17g,",
                   finite_log(result.log_reliability_upper));
  out += strformat("\"log_reliability_lower\":%.17g,",
                   finite_log(result.log_reliability_lower));
  out += "\"messages\":[";
  bool first = true;
  for (const DynMessageProb& mp : result.messages) {
    if (!first) out += ',';
    first = false;
    out += strformat(
        "{\"id\":%d,\"name\":\"%s\",\"frame_id\":%d,\"class\":\"%c\","
        "\"need_minislots\":%lld,\"baseline_offset\":%lld,"
        "\"slack_minislots\":%lld,\"shed\":%s,\"starved\":%s,"
        "\"p_blocked_upper\":%.17g,\"p_blocked_nominal\":%.17g,"
        "\"p_attempt\":%.17g,\"p_miss_upper\":%.17g,\"p_miss_lower\":%.17g,"
        "\"deadline_us\":%.3f,\"period_us\":%.3f,"
        "\"response_p999_us\":%.3f,\"nominal_p999_us\":%.3f}",
        mp.message_id, json_escape(mp.name).c_str(), mp.frame_id,
        mp.sae_class, static_cast<long long>(mp.need_minislots),
        static_cast<long long>(mp.baseline_offset),
        static_cast<long long>(mp.slack_minislots),
        mp.shed ? "true" : "false", mp.starved ? "true" : "false",
        mp.p_blocked_upper, mp.p_blocked_nominal, mp.p_attempt,
        mp.p_miss_upper, mp.p_miss_lower, mp.deadline.as_us(),
        mp.period.as_us(),
        mp.response_p999 == sim::Time::max() ? -1.0 : mp.response_p999.as_us(),
        mp.nominal_p999 == sim::Time::max() ? -1.0 : mp.nominal_p999.as_us());
  }
  out += "],\"classes\":[";
  first = true;
  for (const ClassProb& c : result.classes) {
    if (!first) out += ',';
    first = false;
    out += strformat(
        "{\"class\":\"%c\",\"messages\":%d,\"worst_p_miss_upper\":%.17g,"
        "\"worst_p_miss_lower\":%.17g}",
        c.sae_class, c.messages, c.worst_p_miss_upper, c.worst_p_miss_lower);
  }
  out += "]}";
  return out;
}

std::string render_end_to_end_json(const std::vector<ClassProb>& classes) {
  std::string out = "[";
  bool first = true;
  for (const ClassProb& c : classes) {
    if (!first) out += ',';
    first = false;
    out += strformat(
        "{\"class\":\"%c\",\"messages\":%d,\"worst_p_miss_upper\":%.17g,"
        "\"worst_p_miss_lower\":%.17g}",
        c.sae_class, c.messages, c.worst_p_miss_upper, c.worst_p_miss_lower);
  }
  out += "]";
  return out;
}

std::string render_end_to_end_text(const std::vector<ClassProb>& classes) {
  std::string out;
  for (const ClassProb& c : classes) {
    out += strformat(
        "  end-to-end class %c: %d message(s), worst P(miss) in [%.4g, "
        "%.4g]\n",
        c.sae_class, c.messages, c.worst_p_miss_lower, c.worst_p_miss_upper);
  }
  return out;
}

}  // namespace coeff::analysis
