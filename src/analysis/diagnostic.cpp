#include "analysis/diagnostic.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace coeff::analysis {

namespace {

/// Escape a string for embedding in a JSON string literal.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// SARIF "level" for a severity ("note" | "warning" | "error").
const char* sarif_level(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "none";
}

}  // namespace

namespace {

// Help URIs: the design-doc section that defines each rule family
// (GitHub-style heading anchors; surfaced in --list-rules and as the
// SARIF rule helpUri).
constexpr const char* kHelpSchedule = "DESIGN.md#9-static-analysis-srcanalysis";
constexpr const char* kHelpTrace = "DESIGN.md#9-static-analysis-srcanalysis";
constexpr const char* kHelpEngine =
    "DESIGN.md#12-compiled-cycle-engine-flexraycluster-corecycle_template";
constexpr const char* kHelpCampaign =
    "DESIGN.md#13-crash-safe-campaign-engine-srccampaign";
constexpr const char* kHelpProb =
    "DESIGN.md#14-analytic-probabilistic-wcrt-verifier-analysisprob_wcrt-"
    "analysispmf";
constexpr const char* kHelpDyn =
    "DESIGN.md#15-dynamic-segment-probabilistic-verifier-analysisdyn_wcrt";
constexpr const char* kHelpMode =
    "DESIGN.md#16-mixed-criticality-mode-change-protocol-schedcriticality";

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      // --- ScheduleLint ---------------------------------------------------
      {"schedule.config-valid", Severity::kError,
       "cluster configuration violates a FlexRay parameter constraint",
       kHelpSchedule},
      {"schedule.message-set-valid", Severity::kError,
       "message set fails structural validation", kHelpSchedule},
      {"schedule.deadline-period", Severity::kError,
       "message deadline must lie in (0, period]", kHelpSchedule},
      {"schedule.frame-id-unique", Severity::kError,
       "two frames claim the same (slot, cycle) on one channel",
       kHelpSchedule},
      {"schedule.slot-bounds", Severity::kError,
       "slot assignment outside [1, gNumberOfStaticSlots] or an illegal "
       "base-cycle/repetition",
       kHelpSchedule},
      {"schedule.slot-capacity", Severity::kError,
       "static payload exceeds what one static slot carries", kHelpSchedule},
      {"schedule.period-cycle", Severity::kError,
       "static message period is not a whole multiple of the communication "
       "cycle",
       kHelpSchedule},
      {"schedule.minislot-budget", Severity::kError,
       "dynamic frame can never fit the dynamic segment (minislots or "
       "pLatestTx)",
       kHelpSchedule},
      {"schedule.minislot-load", Severity::kWarning,
       "expected dynamic-segment demand exceeds the per-cycle minislot "
       "budget",
       kHelpSchedule},
      {"schedule.unplaced", Severity::kError,
       "static message could not be placed in any slot phase", kHelpSchedule},
      {"schedule.deadline-risk", Severity::kWarning,
       "placement latency exceeds the message deadline (TDMA cannot do "
       "better)",
       kHelpSchedule},
      {"schedule.hyperperiod-overflow", Severity::kError,
       "hyperperiod of the set overflows the supported horizon",
       kHelpSchedule},
      {"schedule.macrotick-roundtrip", Severity::kWarning,
       "configured macrotick lengths do not round-trip through the units "
       "layer's time conversions",
       kHelpSchedule},
      {"schedule.theorem1-recheck", Severity::kError,
       "closed-form Theorem-1 recheck of the retransmission plan failed",
       kHelpSchedule},
      {"schedule.plan-degraded", Severity::kWarning,
       "retransmission plan is degraded: rho unreachable within the copy "
       "bound",
       kHelpSchedule},
      {"schedule.slack-nonnegative", Severity::kError,
       "slack table reports negative stealable slack", kHelpSchedule},
      {"schedule.slack-monotone", Severity::kError,
       "cumulative idle curve is not non-decreasing", kHelpSchedule},
      {"schedule.slack-infeasible", Severity::kWarning,
       "offline periodic schedule of the static set misses a deadline",
       kHelpSchedule},
      {"schedule.rta-deadline", Severity::kWarning,
       "worst-case response time exceeds the deadline (sufficient RTA "
       "test)",
       kHelpSchedule},
      // --- TraceLint ------------------------------------------------------
      {"trace.kind-valid", Severity::kError,
       "trace record carries an out-of-range enum tag", kHelpTrace},
      {"trace.monotonic-time", Severity::kError,
       "cycle-start timestamps do not advance", kHelpTrace},
      {"trace.cycle-boundary", Severity::kError,
       "cycle-start record off the cycle grid", kHelpTrace},
      {"trace.tx-overlap", Severity::kError,
       "two transmissions overlap on one channel", kHelpTrace},
      {"trace.retx-causality", Severity::kError,
       "retransmission transmitted without a justifying cause", kHelpTrace},
      {"trace.plan-swap-boundary", Severity::kError,
       "plan swap not aligned to a cycle boundary", kHelpTrace},
      {"trace.load-shed-degraded", Severity::kError,
       "load shed while the scheduler was not degraded", kHelpTrace},
      {"trace.structural-boundary", Severity::kError,
       "structural transition (crash/restart/blackout) off the cycle grid",
       kHelpTrace},
      {"trace.structural-causality", Severity::kError,
       "structural transition without a matching prior state (restart "
       "without crash, channel-up without channel-down, double-down)",
       kHelpTrace},
      {"trace.failover-causality", Severity::kError,
       "failover copy without a dark home channel, or on a dark wire",
       kHelpTrace},
      {"trace.dead-channel-tx", Severity::kError,
       "transmission recorded on a channel currently blacked out",
       kHelpTrace},
      {"trace.vote-consistency", Severity::kError,
       "replica-vote verdict inconsistent with its clean-copy count",
       kHelpTrace},
      {"engine.template-invalidation", Severity::kError,
       "transmission while the compiled cycle template was stale (plan "
       "swap / membership / channel event without a rebuild marker)",
       kHelpEngine},
      // --- CampaignLint ---------------------------------------------------
      {"campaign.manifest-consistency", Severity::kError,
       "campaign manifest, shard checkpoints and result rows disagree "
       "(corruption, identity mismatch, or unaccounted cells)",
       kHelpCampaign},
      // --- ProbWcrt (analysis::analyze_prob_wcrt, DESIGN.md §14) ----------
      {"analysis.prob-miss-exceeds-target", Severity::kError,
       "analytic P(deadline miss) puts the set's reliability below the "
       "configured target while the plan claims the target is met",
       kHelpProb},
      {"analysis.kz-contradiction", Severity::kError,
       "analytic response-time distribution contradicts the Theorem-1 k_z "
       "choice (a planned copy cannot land in time, or burst-correlated "
       "loss defeats the memoryless sizing)",
       kHelpProb},
      {"analysis.prob-vs-campaign-divergence", Severity::kError,
       "measured campaign miss ratio falls outside the analytic P(miss) "
       "confidence envelope (modeling or implementation bug)",
       kHelpProb},
      // --- DynWcrt (analysis::analyze_dyn_wcrt, DESIGN.md §15) ------------
      {"analysis.dyn-miss-exceeds-target", Severity::kError,
       "analytic dynamic-segment P(deadline miss) puts the set's "
       "reliability below the configured target while the plan claims the "
       "target is met",
       kHelpDyn},
      {"analysis.dyn-starvation", Severity::kError,
       "dynamic frame's miss-envelope upper edge is 1: load-shed by a "
       "degraded plan, geometrically unable to start (minislot walk past "
       "the pLatestTx cutoff), or saturated by worst-case contention",
       kHelpDyn},
      {"analysis.dyn-vs-campaign-divergence", Severity::kError,
       "measured dynamic-segment campaign miss ratio falls outside the "
       "analytic P(miss) confidence envelope (modeling or implementation "
       "bug)",
       kHelpDyn},
      // --- Mixed-criticality mode protocol (DESIGN.md §16) ----------------
      {"trace.mode-change-boundary", Severity::kError,
       "criticality mode change not aligned to a cycle boundary",
       kHelpMode},
      {"trace.shed-outside-degraded", Severity::kError,
       "dynamic frame shed by criticality while the replayed mode was "
       "NORMAL (or with a mode tag disagreeing with the replay)",
       kHelpMode},
      {"trace.matchup-before-recovery", Severity::kError,
       "shed traffic re-admitted while degraded, or before the recovery "
       "window after the return to NORMAL elapsed",
       kHelpMode},
  };
  return kCatalog;
}

const RuleInfo* find_rule(std::string_view id) {
  for (const RuleInfo& r : rule_catalog()) {
    if (id == r.id) return &r;
  }
  return nullptr;
}

std::string render_rule_list() {
  std::string out;
  for (const RuleInfo& rule : rule_catalog()) {
    out += strformat("%-40s %-8s %s [%s]\n", rule.id, to_string(rule.severity),
                     rule.summary, rule.help_uri);
  }
  return out;
}

std::string strformat(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

std::string Location::describe() const {
  std::string out;
  auto append = [&out](const char* tag, std::int64_t v) {
    if (v < 0) return;
    if (!out.empty()) out += ' ';
    out += tag;
    out += ' ';
    out += std::to_string(v);
  };
  append("msg", message_id);
  append("slot", slot);
  append("cycle", cycle);
  append("record", record);
  return out;
}

void Report::add(Diagnostic d) { diags_.push_back(std::move(d)); }

void Report::add(std::string_view rule, std::string message, Location loc) {
  const RuleInfo* info = find_rule(rule);
  Diagnostic d;
  d.rule = std::string(rule);
  d.severity = info != nullptr ? info->severity : Severity::kError;
  d.message = std::move(message);
  d.loc = loc;
  diags_.push_back(std::move(d));
}

void Report::merge(Report other) {
  diags_.insert(diags_.end(), std::make_move_iterator(other.diags_.begin()),
                std::make_move_iterator(other.diags_.end()));
}

std::size_t Report::count(Severity s) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

std::size_t Report::count_rule(std::string_view rule) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(),
                    [rule](const Diagnostic& d) { return d.rule == rule; }));
}

std::string Report::render_text() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += to_string(d.severity);
    out += ": ";
    out += d.rule;
    out += ": ";
    out += d.message;
    if (!d.loc.empty()) {
      out += " [";
      out += d.loc.describe();
      out += ']';
    }
    out += '\n';
  }
  return out;
}

std::string Report::render_sarif() const {
  std::string out;
  out +=
      "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
      "\"name\":\"coeff-lint\",\"rules\":[";
  bool first = true;
  for (const RuleInfo& r : rule_catalog()) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":\"";
    out += json_escape(r.id);
    out += "\",\"shortDescription\":{\"text\":\"";
    out += json_escape(r.summary);
    out += "\"},\"helpUri\":\"";
    out += json_escape(r.help_uri);
    out += "\"}";
  }
  out += "]}},\"results\":[";
  first = true;
  for (const Diagnostic& d : diags_) {
    if (!first) out += ',';
    first = false;
    out += "{\"ruleId\":\"";
    out += json_escape(d.rule);
    out += "\",\"level\":\"";
    out += sarif_level(d.severity);
    out += "\",\"message\":{\"text\":\"";
    out += json_escape(d.message);
    out += "\"}";
    if (!d.loc.empty()) {
      out +=
          ",\"locations\":[{\"logicalLocations\":[{"
          "\"fullyQualifiedName\":\"";
      out += json_escape(d.loc.describe());
      out += "\"}]}]";
    }
    out += '}';
  }
  out += "]}]}";
  return out;
}

}  // namespace coeff::analysis
