#include "fault/ber.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace coeff::fault {
namespace {

TEST(BerTest, ZeroBitsNeverFail) {
  EXPECT_DOUBLE_EQ(frame_failure_probability(0, 0.5), 0.0);
}

TEST(BerTest, ZeroBerNeverFails) {
  EXPECT_DOUBLE_EQ(frame_failure_probability(10'000, 0.0), 0.0);
}

TEST(BerTest, BerOneAlwaysFails) {
  EXPECT_DOUBLE_EQ(frame_failure_probability(1, 1.0), 1.0);
}

TEST(BerTest, SingleBitEqualsBer) {
  EXPECT_DOUBLE_EQ(frame_failure_probability(1, 1e-7), 1e-7);
}

TEST(BerTest, MatchesClosedForm) {
  // p = 1 - (1 - ber)^W for a case where naive evaluation still works.
  const double p = frame_failure_probability(1000, 1e-4);
  EXPECT_NEAR(p, 1.0 - std::pow(1.0 - 1e-4, 1000), 1e-12);
}

TEST(BerTest, TinyBerDoesNotCancelToZero) {
  // 1e-12 BER over 1000 bits ~ 1e-9; double subtraction of
  // (1-ber)^W from 1 would lose precision without expm1/log1p.
  const double p = frame_failure_probability(1000, 1e-12);
  EXPECT_NEAR(p, 1e-9, 1e-12);
  EXPECT_GT(p, 0.0);
}

TEST(BerTest, MonotoneInBits) {
  double prev = 0.0;
  for (std::int64_t bits : {1, 10, 100, 1000, 10'000}) {
    const double p = frame_failure_probability(bits, 1e-7);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(BerTest, MonotoneInBer) {
  double prev = 0.0;
  for (double ber : {1e-9, 1e-8, 1e-7, 1e-6}) {
    const double p = frame_failure_probability(1000, ber);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(BerTest, InvalidInputsThrow) {
  EXPECT_THROW((void)frame_failure_probability(-1, 0.5),
               std::invalid_argument);
  EXPECT_THROW((void)frame_failure_probability(1, -0.1),
               std::invalid_argument);
  EXPECT_THROW((void)frame_failure_probability(1, 1.1), std::invalid_argument);
}

TEST(InstanceLossTest, PowersOfP) {
  EXPECT_DOUBLE_EQ(instance_loss_probability(0.1, 0), 0.1);
  EXPECT_DOUBLE_EQ(instance_loss_probability(0.1, 1), 0.01);
  EXPECT_DOUBLE_EQ(instance_loss_probability(0.1, 3), 1e-4);
}

TEST(InstanceLossTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(instance_loss_probability(0.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(instance_loss_probability(1.0, 5), 1.0);
  EXPECT_THROW((void)instance_loss_probability(-0.1, 0),
               std::invalid_argument);
  EXPECT_THROW((void)instance_loss_probability(0.5, -1),
               std::invalid_argument);
}

TEST(LogReliabilityTest, MatchesDirectFormula) {
  // (1 - p^{k+1})^occ in logs.
  const double lr = log_message_reliability(1e-3, 1, 1000.0);
  EXPECT_NEAR(lr, 1000.0 * std::log(1.0 - 1e-6), 1e-12);
}

TEST(LogReliabilityTest, PerfectMessageContributesZero) {
  EXPECT_DOUBLE_EQ(log_message_reliability(0.0, 0, 1e6), 0.0);
}

TEST(LogReliabilityTest, CertainLossIsMinusInfinity) {
  EXPECT_TRUE(std::isinf(log_message_reliability(1.0, 2, 10.0)));
}

TEST(LogReliabilityTest, MoreRetransmissionsImproveReliability) {
  double prev = log_message_reliability(1e-3, 0, 1e5);
  for (int k = 1; k <= 4; ++k) {
    const double lr = log_message_reliability(1e-3, k, 1e5);
    EXPECT_GT(lr, prev);
    prev = lr;
  }
}

}  // namespace
}  // namespace coeff::fault
