#include "fault/injector.hpp"

#include <gtest/gtest.h>

namespace coeff::fault {
namespace {

flexray::TxRequest req(std::int64_t bits) {
  flexray::TxRequest r;
  r.payload_bits = bits;
  return r;
}

TEST(InjectorTest, ZeroBerNeverCorrupts) {
  FaultInjector inj(0.0, 1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(inj.corrupted(req(1500), flexray::ChannelId::kA, {}));
  }
  EXPECT_EQ(inj.faults(), 0);
  EXPECT_EQ(inj.verdicts(), 1000);
}

TEST(InjectorTest, BerOneAlwaysCorrupts) {
  FaultInjector inj(1.0, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(inj.corrupted(req(1), flexray::ChannelId::kA, {}));
  }
}

TEST(InjectorTest, FrequencyMatchesFrameFailureProbability) {
  const double ber = 1e-4;
  const std::int64_t bits = 1000;
  const double p = frame_failure_probability(bits, ber);  // ~0.095
  FaultInjector inj(ber, 7);
  const int n = 200'000;
  int faults = 0;
  for (int i = 0; i < n; ++i) {
    if (inj.corrupted(req(bits), flexray::ChannelId::kA, {})) ++faults;
  }
  EXPECT_NEAR(static_cast<double>(faults) / n, p, 0.005);
}

TEST(InjectorTest, DeterministicUnderSeed) {
  FaultInjector a(1e-2, 99), b(1e-2, 99);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_EQ(a.corrupted(req(1000), flexray::ChannelId::kA, {}),
              b.corrupted(req(1000), flexray::ChannelId::kA, {}));
  }
}

TEST(InjectorTest, ChannelsAreIndependentStreams) {
  // Drawing on channel A must not change channel B's verdict sequence.
  FaultInjector with_a(1e-2, 5);
  FaultInjector without_a(1e-2, 5);
  std::vector<bool> seq1, seq2;
  for (int i = 0; i < 1000; ++i) {
    with_a.corrupted(req(1000), flexray::ChannelId::kA, {});
    seq1.push_back(with_a.corrupted(req(1000), flexray::ChannelId::kB, {}));
  }
  for (int i = 0; i < 1000; ++i) {
    seq2.push_back(without_a.corrupted(req(1000), flexray::ChannelId::kB, {}));
  }
  EXPECT_EQ(seq1, seq2);
}

TEST(InjectorTest, DualChannelPairsRarelyBothFail) {
  const double ber = 1e-3;
  const std::int64_t bits = 1000;  // p ~ 0.63
  FaultInjector inj(ber, 11);
  int both = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const bool a = inj.corrupted(req(bits), flexray::ChannelId::kA, {});
    const bool b = inj.corrupted(req(bits), flexray::ChannelId::kB, {});
    if (a && b) ++both;
  }
  const double p = frame_failure_probability(bits, ber);
  EXPECT_NEAR(static_cast<double>(both) / n, p * p, 0.01);
}

TEST(InjectorTest, InvalidBerThrows) {
  EXPECT_THROW(FaultInjector(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(FaultInjector(1.1, 1), std::invalid_argument);
}

TEST(InjectorTest, CorruptionFnAdapterForwards) {
  FaultInjector inj(1.0, 1);
  auto fn = inj.as_corruption_fn();
  EXPECT_TRUE(fn(req(1), flexray::ChannelId::kA, {}));
  EXPECT_EQ(inj.verdicts(), 1);
}

}  // namespace
}  // namespace coeff::fault
