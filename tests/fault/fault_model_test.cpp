#include "fault/fault_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/ber.hpp"
#include "fault/injector.hpp"

namespace coeff::fault {
namespace {

using flexray::ChannelId;

flexray::TxRequest request(std::int64_t bits = 1000,
                           flexray::FrameId frame_id = flexray::FrameId{7}) {
  flexray::TxRequest req;
  req.frame_id = frame_id;
  req.payload_bits = bits;
  return req;
}

/// Drive `n` verdicts on one channel, slots 1 microsecond apart.
std::vector<bool> verdict_stream(FaultModel& model, ChannelId ch, int n,
                                 std::int64_t bits = 1000) {
  std::vector<bool> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(model.corrupted(request(bits), ch, sim::micros(i + 1)));
  }
  return out;
}

double fault_rate(const std::vector<bool>& verdicts) {
  std::int64_t faults = 0;
  for (const bool v : verdicts) faults += v ? 1 : 0;
  return static_cast<double>(faults) /
         static_cast<double>(verdicts.empty() ? 1 : verdicts.size());
}

TEST(FaultModelKindTest, ParseAndToStringRoundTrip) {
  for (const auto kind :
       {FaultModelKind::kIid, FaultModelKind::kGilbertElliott,
        FaultModelKind::kCommonMode}) {
    const auto parsed = parse_fault_model_kind(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(parse_fault_model_kind("ge"), FaultModelKind::kGilbertElliott);
  EXPECT_FALSE(parse_fault_model_kind("markov").has_value());
  EXPECT_FALSE(parse_fault_model_kind("").has_value());
}

TEST(FaultModelTest, SameSeedGivesByteIdenticalVerdicts) {
  // Acceptance criterion: every model is deterministic per seed. The
  // verdict streams of two same-seeded instances must match exactly.
  FaultModelConfig configs[3];
  configs[0].kind = FaultModelKind::kIid;
  configs[0].ber = 1e-4;
  configs[1].kind = FaultModelKind::kGilbertElliott;
  configs[1].gilbert_elliott.p_good_to_bad = 0.05;
  configs[1].gilbert_elliott.ber_bad = 1e-3;
  configs[2].kind = FaultModelKind::kCommonMode;
  configs[2].ber = 1e-4;
  configs[2].common_fraction = 0.5;
  for (const auto& config : configs) {
    const auto a = make_fault_model(config, 1234);
    const auto b = make_fault_model(config, 1234);
    EXPECT_EQ(verdict_stream(*a, ChannelId::kA, 4000),
              verdict_stream(*b, ChannelId::kA, 4000))
        << describe(config);
    EXPECT_EQ(a->faults(), b->faults()) << describe(config);
  }
}

TEST(FaultModelTest, DifferentSeedsDecorrelate) {
  FaultModelConfig config;
  config.ber = 1e-3;  // p ~ 0.63 per 1000-bit frame: streams must differ
  const auto a = make_fault_model(config, 1);
  const auto b = make_fault_model(config, 2);
  EXPECT_NE(verdict_stream(*a, ChannelId::kA, 2000),
            verdict_stream(*b, ChannelId::kA, 2000));
}

TEST(FaultModelTest, ChannelsDrawFromIndependentStreams) {
  // Interleaving channel-A verdicts must not perturb channel B's stream
  // (each channel owns its RNG). Compare B's stream with and without A
  // traffic in between.
  FaultInjector interleaved(1e-3, 99);
  FaultInjector b_only(1e-3, 99);
  std::vector<bool> b_interleaved, b_alone;
  for (int i = 0; i < 3000; ++i) {
    (void)interleaved.corrupted(request(), ChannelId::kA, sim::micros(i + 1));
    b_interleaved.push_back(
        interleaved.corrupted(request(), ChannelId::kB, sim::micros(i + 1)));
    b_alone.push_back(
        b_only.corrupted(request(), ChannelId::kB, sim::micros(i + 1)));
  }
  EXPECT_EQ(b_interleaved, b_alone);
  EXPECT_EQ(interleaved.channel_verdicts(ChannelId::kA), 3000);
  EXPECT_EQ(interleaved.channel_verdicts(ChannelId::kB), 3000);
}

TEST(FaultModelTest, GilbertElliottWithoutBurstsMatchesIidRate) {
  // Satellite criterion: with burst entry disabled the chain never
  // leaves the good state, so the corruption rate must agree with the
  // iid model at ber_good within binomial confidence bounds. (The two
  // models consume RNG draws differently, so the comparison is
  // statistical, not stream-exact.)
  const double ber = 1e-4;
  const std::int64_t bits = 1000;
  const int n = 40000;
  GilbertElliottParams params;
  params.p_good_to_bad = 0.0;
  params.ber_good = ber;
  params.ber_bad = 0.5;  // poison: any bad-state visit would show up
  GilbertElliottModel ge(params, 7);
  FaultInjector iid(ber, 7);
  const double rate_ge = fault_rate(verdict_stream(ge, ChannelId::kA, n, bits));
  const double rate_iid =
      fault_rate(verdict_stream(iid, ChannelId::kA, n, bits));
  EXPECT_FALSE(ge.in_bad_state(ChannelId::kA));
  const double p = frame_failure_probability(bits, ber);  // ~0.095
  // Each empirical rate sits within ~5 sigma of p; their difference
  // within ~7 sigma of 0 (sigma_diff = sqrt(2 p (1-p) / n)).
  const double sigma = std::sqrt(p * (1.0 - p) / n);
  EXPECT_NEAR(rate_ge, p, 5.0 * sigma);
  EXPECT_NEAR(rate_iid, p, 5.0 * sigma);
  EXPECT_NEAR(rate_ge, rate_iid, 7.0 * std::sqrt(2.0) * sigma);
}

TEST(FaultModelTest, GilbertElliottBadStateUsesBadBer) {
  // Force the chain into the bad state on the first verdict and keep it
  // there: the rate must track ber_bad, not ber_good.
  GilbertElliottParams params;
  params.p_good_to_bad = 1.0;
  params.p_bad_to_good = 0.0;
  params.ber_good = 0.0;
  params.ber_bad = 1e-3;
  GilbertElliottModel ge(params, 11);
  const int n = 20000;
  const double rate = fault_rate(verdict_stream(ge, ChannelId::kA, n));
  EXPECT_TRUE(ge.in_bad_state(ChannelId::kA));
  const double p = frame_failure_probability(1000, params.ber_bad);  // ~0.63
  const double sigma = std::sqrt(p * (1.0 - p) / n);
  EXPECT_NEAR(rate, p, 5.0 * sigma);
}

TEST(FaultModelTest, CommonModeFractionOneCouplesChannels) {
  // With common_fraction = 1 every fault event is decided by the shared
  // slot-keyed stream: both channels of a slot must agree, always.
  CommonModeModel model(7e-4, 1.0, 21);  // p ~ 0.5 per 1000-bit frame
  int faults = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto req = request(1000, flexray::FrameId{static_cast<std::uint16_t>(i % 50 + 1)});
    const auto at = sim::micros(i + 1);
    const bool a = model.corrupted(req, ChannelId::kA, at);
    const bool b = model.corrupted(req, ChannelId::kB, at);
    EXPECT_EQ(a, b) << "slot " << i;
    faults += a ? 1 : 0;
  }
  EXPECT_GT(faults, 0);  // the coupling is not vacuous
  EXPECT_LT(faults, 2000);
}

TEST(FaultModelTest, CommonModeFractionZeroIsIndependent) {
  // With common_fraction = 0 the channels fall back to independent
  // per-channel streams: both-fail events occur at ~p^2, not ~p.
  const double ber = 7e-4;
  const double p = frame_failure_probability(1000, ber);  // ~0.5
  CommonModeModel model(ber, 0.0, 21);
  const int n = 20000;
  int both = 0, disagreements = 0;
  for (int i = 0; i < n; ++i) {
    const auto req = request(1000, flexray::FrameId{static_cast<std::uint16_t>(i % 50 + 1)});
    const auto at = sim::micros(i + 1);
    const bool a = model.corrupted(req, ChannelId::kA, at);
    const bool b = model.corrupted(req, ChannelId::kB, at);
    both += (a && b) ? 1 : 0;
    disagreements += (a != b) ? 1 : 0;
  }
  EXPECT_GT(disagreements, 0);
  const double both_rate = static_cast<double>(both) / n;
  const double expected = p * p;
  const double sigma = std::sqrt(expected * (1.0 - expected) / n);
  EXPECT_NEAR(both_rate, expected, 5.0 * sigma);
}

TEST(FaultModelTest, BerStepAppliesAtScheduledTime) {
  FaultInjector injector(0.0, 5);
  injector.schedule_ber_step(sim::millis(1), 1.0);
  // Before the step: ber = 0, nothing corrupts.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.corrupted(request(), ChannelId::kA,
                                    sim::micros(i + 1)));
  }
  // At/after the step: ber = 1, every frame corrupts.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(injector.corrupted(request(), ChannelId::kA,
                                   sim::millis(1) + sim::micros(i)));
  }
  EXPECT_EQ(injector.faults(), 100);
  EXPECT_EQ(injector.verdicts(), 200);
}

TEST(FaultModelTest, GilbertElliottBerStepRaisesBothStates) {
  GilbertElliottParams params;
  params.ber_good = 1e-7;
  params.ber_bad = 1e-4;
  GilbertElliottModel ge(params, 3);
  ge.schedule_ber_step(sim::millis(1), 1e-3);
  (void)ge.corrupted(request(), ChannelId::kA, sim::millis(2));
  EXPECT_DOUBLE_EQ(ge.params().ber_good, 1e-3);
  EXPECT_DOUBLE_EQ(ge.params().ber_bad, 1e-3);  // lifted to the new floor
}

TEST(FaultModelTest, ValidationNamesTheBadOption) {
  EXPECT_THROW(FaultInjector(1.5, 1), std::invalid_argument);
  try {
    CommonModeModel model(1e-7, -0.5, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("common_fraction"),
              std::string::npos)
        << e.what();
  }
  GilbertElliottParams params;
  params.p_bad_to_good = 2.0;
  try {
    GilbertElliottModel model(params, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("p_bad_to_good"), std::string::npos)
        << e.what();
  }
  FaultInjector ok(1e-7, 1);
  EXPECT_THROW(ok.schedule_ber_step(sim::millis(1), 2.0),
               std::invalid_argument);
}

TEST(FaultModelTest, DescribeMentionsTheModel) {
  FaultModelConfig config;
  config.kind = FaultModelKind::kGilbertElliott;
  EXPECT_NE(describe(config).find("gilbert-elliott"), std::string::npos);
  config.kind = FaultModelKind::kCommonMode;
  EXPECT_NE(describe(config).find("common-mode"), std::string::npos);
  config.kind = FaultModelKind::kIid;
  EXPECT_NE(describe(config).find("iid"), std::string::npos);
}

// --- Batched verdicts (compiled cycle engine) ---------------------------

namespace {

/// A deterministic pseudo-wire-order stream of queries: mixed frames,
/// channels, payload sizes and monotone start times.
std::vector<flexray::TxRequest> make_requests(int n) {
  std::vector<flexray::TxRequest> reqs;
  reqs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    flexray::TxRequest req;
    req.frame_id = flexray::FrameId{static_cast<std::uint16_t>(1 + (i % 40))};
    req.sender = units::NodeId{i % 4};
    req.payload_bits = 200 + 16 * (i % 50);
    req.retransmission = (i % 3) == 0;
    reqs.push_back(req);
  }
  return reqs;
}

}  // namespace

// draw_batch must replay corrupted() in query order, so for every model
// — including the stateful Gilbert–Elliott chains and a scheduled BER
// step landing mid-batch — the verdict stream matches per-frame draws
// bit for bit. This is the determinism contract the compiled engine's
// differential tests lean on.
TEST(FaultModelTest, DrawBatchMatchesSequentialDrawsForEveryModel) {
  for (const auto kind :
       {FaultModelKind::kIid, FaultModelKind::kGilbertElliott,
        FaultModelKind::kCommonMode, FaultModelKind::kIidCounter}) {
    SCOPED_TRACE(to_string(kind));
    FaultModelConfig config;
    config.kind = kind;
    config.ber = 1e-4;  // high enough that faults actually appear
    config.gilbert_elliott.p_good_to_bad = 0.05;
    config.common_fraction = 0.5;

    const auto sequential = make_fault_model(config, 99);
    const auto batched = make_fault_model(config, 99);
    sequential->schedule_ber_step(sim::micros(500), 1e-3);
    batched->schedule_ber_step(sim::micros(500), 1e-3);

    const auto reqs = make_requests(1000);
    std::vector<flexray::VerdictQuery> queries;
    std::vector<bool> expected;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const auto channel =
          (i % 2) == 0 ? flexray::ChannelId::kA : flexray::ChannelId::kB;
      const sim::Time start = sim::micros(static_cast<std::int64_t>(i));
      queries.push_back({&reqs[i], channel, start});
      expected.push_back(sequential->corrupted(reqs[i], channel, start));
    }
    std::vector<std::uint8_t> out(queries.size(), 0);
    // draw in cycle-sized batches, as the cluster does
    const std::size_t kBatch = 37;
    for (std::size_t i = 0; i < queries.size(); i += kBatch) {
      const std::size_t n = std::min(kBatch, queries.size() - i);
      static_assert(sizeof(bool) == sizeof(std::uint8_t));
      batched->draw_batch(&queries[i], n,
                          reinterpret_cast<bool*>(&out[i]));
    }
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(static_cast<bool>(out[i]), expected[i]) << "query " << i;
    }
    EXPECT_EQ(batched->verdicts(), sequential->verdicts());
    EXPECT_EQ(batched->faults(), sequential->faults());
  }
}

TEST(CounterIidModelTest, VerdictIsPureFunctionOfKey) {
  CounterIidModel model(1e-3, 7);
  CounterIidModel replay(1e-3, 7);
  const auto reqs = make_requests(500);
  // Replay the same (start, frame, channel) keys in reverse order: a
  // counter-based model must not care about draw order.
  std::vector<bool> forward;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    forward.push_back(model.corrupted(reqs[i], flexray::ChannelId::kA,
                                      sim::micros(static_cast<std::int64_t>(i))));
  }
  for (std::size_t i = reqs.size(); i-- > 0;) {
    EXPECT_EQ(replay.corrupted(reqs[i], flexray::ChannelId::kA,
                               sim::micros(static_cast<std::int64_t>(i))),
              forward[i]);
  }
}

TEST(CounterIidModelTest, FaultRateTracksFrameCorruptionOdds) {
  // 1000-bit frames at BER 1e-4: P(corrupt) = 1-(1-1e-4)^1000 ~ 9.5%.
  CounterIidModel model(1e-4, 21);
  flexray::TxRequest req;
  req.frame_id = flexray::FrameId{5};
  req.payload_bits = 1000;
  const int kDraws = 20000;
  int faults = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (model.corrupted(req, flexray::ChannelId::kA, sim::micros(i))) {
      ++faults;
    }
  }
  const double rate = static_cast<double>(faults) / kDraws;
  EXPECT_NEAR(rate, 1.0 - std::pow(1.0 - 1e-4, 1000.0), 0.01);
  // Channels draw from distinct counter lanes: same key except the
  // channel bit must give a decorrelated stream, not a mirror.
  int differ = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto at = sim::micros(i);
    if (model.corrupted(req, flexray::ChannelId::kA, at) !=
        model.corrupted(req, flexray::ChannelId::kB, at)) {
      ++differ;
    }
  }
  EXPECT_GT(differ, 0);
}

TEST(FaultModelTest, ParsesIidCounterSpelling) {
  const auto kind = parse_fault_model_kind("iid-counter");
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, FaultModelKind::kIidCounter);
  FaultModelConfig config;
  config.kind = FaultModelKind::kIidCounter;
  EXPECT_NE(describe(config).find("iid-counter"), std::string::npos);
  EXPECT_NE(make_fault_model(config, 1), nullptr);
}

}  // namespace
}  // namespace coeff::fault
