#include "fault/monitor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace coeff::fault {
namespace {

using flexray::ChannelId;

ReliabilityMonitorOptions small_window() {
  ReliabilityMonitorOptions opt;
  opt.window_cycles = 4;
  opt.trigger_factor = 5.0;
  opt.min_window_frames = 8;
  opt.cooldown_cycles = 2;
  return opt;
}

/// One cycle of traffic: `frames` per channel, `bad` of them corrupted.
void feed_cycle(ReliabilityMonitor& mon, int frames, int bad,
                std::int64_t bits = 1000) {
  for (const auto ch : {ChannelId::kA, ChannelId::kB}) {
    for (int i = 0; i < frames; ++i) mon.record_tx(ch, bits, i < bad);
  }
}

TEST(MonitorTest, EstimateInvertsFrameErrorLaw) {
  // 1 corrupted frame in 100 at 1000 bits: rate 0.01, so
  // ber = 1 - (1 - 0.01)^(1/1000) ~ 1.005e-5.
  ReliabilityMonitor mon(1e-7, small_window());
  feed_cycle(mon, 50, 1);  // 100 frames pooled, 2 corrupted -> rate 0.02
  EXPECT_DOUBLE_EQ(mon.observed_frame_error_rate(), 0.02);
  const double expected = -std::expm1(std::log1p(-0.02) / 1000.0);
  EXPECT_NEAR(mon.estimated_ber(), expected, 1e-12);
  EXPECT_EQ(mon.window_frames(), 100);
}

TEST(MonitorTest, WorstChannelEstimateIgnoresHealthyChannel) {
  // A burst confined to channel A must not be halved by pooling with a
  // clean channel B.
  ReliabilityMonitor mon(1e-7, small_window());
  for (int i = 0; i < 100; ++i) mon.record_tx(ChannelId::kA, 1000, i < 10);
  for (int i = 0; i < 100; ++i) mon.record_tx(ChannelId::kB, 1000, false);
  EXPECT_DOUBLE_EQ(mon.estimated_ber(ChannelId::kB), 0.0);
  EXPECT_GT(mon.estimated_ber(ChannelId::kA), 0.0);
  EXPECT_DOUBLE_EQ(mon.worst_channel_estimate(),
                   mon.estimated_ber(ChannelId::kA));
  EXPECT_LT(mon.estimated_ber(), mon.worst_channel_estimate());
}

TEST(MonitorTest, DetectsDriftAboveTriggerFactor) {
  // Planned 1e-7, trigger at 5e-7; a 2% frame error rate at 1000 bits
  // estimates ~2e-5 — far past the threshold.
  ReliabilityMonitor mon(1e-7, small_window());
  feed_cycle(mon, 50, 1);
  EXPECT_TRUE(mon.on_cycle_end());
  EXPECT_EQ(mon.drift_detections(), 1);
}

TEST(MonitorTest, CleanTrafficNeverTriggers) {
  ReliabilityMonitor mon(1e-7, small_window());
  for (int c = 0; c < 20; ++c) {
    feed_cycle(mon, 50, 0);
    EXPECT_FALSE(mon.on_cycle_end()) << "cycle " << c;
  }
  EXPECT_EQ(mon.drift_detections(), 0);
  EXPECT_DOUBLE_EQ(mon.estimated_ber(), 0.0);
}

TEST(MonitorTest, MinWindowFramesGatesDetection) {
  // Corruption rate is huge but only 4 frames (< min 8) are in the
  // window: the estimate is not trusted yet.
  ReliabilityMonitor mon(1e-7, small_window());
  feed_cycle(mon, 2, 2);
  EXPECT_FALSE(mon.on_cycle_end());
  // Another cycle reaches 8 frames; now it fires.
  feed_cycle(mon, 2, 2);
  EXPECT_TRUE(mon.on_cycle_end());
}

TEST(MonitorTest, CooldownSuppressesRedetection) {
  ReliabilityMonitor mon(1e-7, small_window());
  feed_cycle(mon, 50, 1);
  ASSERT_TRUE(mon.on_cycle_end());
  mon.note_replanned(2e-5);
  // Same corruption level keeps flowing; the first cooldown_cycles=2
  // boundaries must stay quiet even though the estimate is unchanged.
  feed_cycle(mon, 50, 1);
  EXPECT_FALSE(mon.on_cycle_end());
  feed_cycle(mon, 50, 1);
  EXPECT_FALSE(mon.on_cycle_end());
  // After the cooldown the baseline is the re-planned 2e-5, and the
  // observed ~2e-5 is below 5 * 2e-5: still quiet, by threshold now.
  feed_cycle(mon, 50, 1);
  EXPECT_FALSE(mon.on_cycle_end());
  EXPECT_EQ(mon.drift_detections(), 1);
  EXPECT_DOUBLE_EQ(mon.planned_ber(), 2e-5);
}

TEST(MonitorTest, WindowEvictsOldCycles) {
  // A corrupted burst ages out after window_cycles clean cycles.
  ReliabilityMonitor mon(1e-7, small_window());
  feed_cycle(mon, 10, 10);  // fully corrupted cycle
  (void)mon.on_cycle_end();
  for (int c = 0; c < 4; ++c) {
    feed_cycle(mon, 10, 0);
    (void)mon.on_cycle_end();
  }
  // Window holds the last 4 cycles, all clean.
  EXPECT_EQ(mon.window_frames(), 80);
  EXPECT_DOUBLE_EQ(mon.observed_frame_error_rate(), 0.0);
  EXPECT_DOUBLE_EQ(mon.estimated_ber(), 0.0);
}

TEST(MonitorTest, StarvedChannelHasNoEstimate) {
  // A blacked-out channel records zero verdicts. That is absence of
  // evidence, not evidence of a perfect wire: channel_estimate must be
  // empty and the defined fallback is the planned BER.
  ReliabilityMonitor mon(1e-5, small_window());
  for (int i = 0; i < 50; ++i) mon.record_tx(ChannelId::kB, 1000, i < 5);
  EXPECT_TRUE(mon.starved(ChannelId::kA));
  EXPECT_FALSE(mon.starved(ChannelId::kB));
  EXPECT_FALSE(mon.channel_estimate(ChannelId::kA).has_value());
  ASSERT_TRUE(mon.channel_estimate(ChannelId::kB).has_value());
  EXPECT_DOUBLE_EQ(mon.estimated_ber(ChannelId::kA), 1e-5);
  EXPECT_GT(mon.estimated_ber(ChannelId::kB), 1e-5);
}

TEST(MonitorTest, WorstChannelSkipsStarvedChannels) {
  // Only channel B has samples; the worst-channel estimate must come
  // from B alone — the starved channel neither drags the estimate to
  // the planned baseline nor fakes a clean zero.
  ReliabilityMonitor mon(1e-5, small_window());
  for (int i = 0; i < 100; ++i) mon.record_tx(ChannelId::kB, 1000, false);
  EXPECT_DOUBLE_EQ(mon.worst_channel_estimate(), 0.0);

  for (int i = 0; i < 10; ++i) mon.record_tx(ChannelId::kB, 1000, true);
  EXPECT_DOUBLE_EQ(mon.worst_channel_estimate(),
                   *mon.channel_estimate(ChannelId::kB));
}

TEST(MonitorTest, FullyStarvedWindowFallsBackToPlan) {
  // No traffic at all (total blackout): every estimate that has a
  // defined fallback reports the planned BER; nothing divides by zero.
  ReliabilityMonitor mon(1e-5, small_window());
  for (int c = 0; c < 6; ++c) EXPECT_FALSE(mon.on_cycle_end());
  EXPECT_TRUE(mon.starved(ChannelId::kA));
  EXPECT_TRUE(mon.starved(ChannelId::kB));
  EXPECT_DOUBLE_EQ(mon.worst_channel_estimate(), 1e-5);
  EXPECT_DOUBLE_EQ(mon.estimated_ber(ChannelId::kA), 1e-5);
  EXPECT_DOUBLE_EQ(mon.estimated_ber(ChannelId::kB), 1e-5);
  EXPECT_EQ(mon.drift_detections(), 0);
}

TEST(MonitorTest, ChannelRecoveryRestoresEstimate) {
  // Traffic returns after a starved window: the estimate picks the new
  // samples up immediately.
  auto opt = small_window();
  ReliabilityMonitor mon(1e-7, opt);
  for (int c = 0; c < opt.window_cycles + 1; ++c) (void)mon.on_cycle_end();
  ASSERT_TRUE(mon.starved(ChannelId::kA));
  for (int i = 0; i < 10; ++i) mon.record_tx(ChannelId::kA, 1000, false);
  EXPECT_FALSE(mon.starved(ChannelId::kA));
  EXPECT_DOUBLE_EQ(mon.estimated_ber(ChannelId::kA), 0.0);
}

TEST(MonitorTest, HysteresisLatchEntersAtTriggerFactor) {
  // 2% frame errors at 1000 bits estimate ~2e-5 against planned 1e-7:
  // ratio ~200, far past trigger_factor=5 — the latch must set and the
  // ratio must be exposed for the mode protocol.
  ReliabilityMonitor mon(1e-7, small_window());
  EXPECT_FALSE(mon.drift_active());
  EXPECT_DOUBLE_EQ(mon.drift_ratio(), 1.0);
  feed_cycle(mon, 50, 1);
  (void)mon.on_cycle_end();
  EXPECT_TRUE(mon.drift_active());
  EXPECT_GT(mon.drift_ratio(), 5.0);
}

TEST(MonitorTest, HysteresisLatchIgnoresReplanCooldown) {
  // The one-shot detection return is cooldown-gated, but the latched
  // signal is not: the mode protocol has its own dwell damping and must
  // keep seeing the drift while the re-planner is cooling down.
  ReliabilityMonitor mon(1e-7, small_window());
  feed_cycle(mon, 50, 1);
  ASSERT_TRUE(mon.on_cycle_end());
  mon.note_replanned(1e-7);  // baseline kept: drift ratio stays high
  feed_cycle(mon, 50, 1);
  EXPECT_FALSE(mon.on_cycle_end());  // cooldown suppresses redetection
  EXPECT_TRUE(mon.drift_active());   // ...but the latch stays set
}

TEST(MonitorTest, HysteresisExitNeedsCalmDwell) {
  auto opt = small_window();
  opt.exit_factor = 2.0;
  opt.min_dwell_cycles = 2;
  ReliabilityMonitor mon(1e-7, opt);
  feed_cycle(mon, 50, 1);
  (void)mon.on_cycle_end();
  ASSERT_TRUE(mon.drift_active());
  // Clean cycles age the burst out of the 4-cycle window; the latch
  // must hold through min_dwell_cycles=2 calm boundaries and release
  // only on the one after (calm_cycles > min_dwell).
  for (int c = 0; c < 6; ++c) {
    feed_cycle(mon, 50, 0);
    (void)mon.on_cycle_end();
    if (mon.drift_ratio() >= opt.exit_factor) continue;  // still windowed
    break;
  }
  ASSERT_LT(mon.drift_ratio(), opt.exit_factor);
  EXPECT_TRUE(mon.drift_active());  // calm streak just started
  feed_cycle(mon, 50, 0);
  (void)mon.on_cycle_end();
  EXPECT_TRUE(mon.drift_active());  // calm_cycles == 2 == min_dwell
  feed_cycle(mon, 50, 0);
  (void)mon.on_cycle_end();
  EXPECT_FALSE(mon.drift_active());  // calm_cycles = 3 > min_dwell
}

TEST(MonitorTest, HysteresisFlapBetweenExitAndTriggerHoldsLatch) {
  // A level between exit_factor and trigger_factor is the hysteresis
  // band: it must neither set a clear latch nor clear a set one, no
  // matter how long it flaps there.
  auto opt = small_window();
  opt.window_cycles = 1;  // estimate follows each cycle exactly
  opt.exit_factor = 2.0;
  opt.min_dwell_cycles = 1;
  ReliabilityMonitor mon(1e-6, opt);
  // ~3e-6 estimate: ratio ~3, inside (exit=2, trigger=5).
  auto feed_band = [&] {
    for (const auto ch : {ChannelId::kA, ChannelId::kB}) {
      for (int i = 0; i < 1000; ++i) mon.record_tx(ch, 1000, i < 3);
    }
  };
  for (int c = 0; c < 8; ++c) {
    feed_band();
    (void)mon.on_cycle_end();
    EXPECT_FALSE(mon.drift_active()) << "cycle " << c;
  }
  // Now latch with a real burst, then flap in the band again: held.
  feed_cycle(mon, 50, 5);
  (void)mon.on_cycle_end();
  ASSERT_TRUE(mon.drift_active());
  for (int c = 0; c < 8; ++c) {
    feed_band();
    (void)mon.on_cycle_end();
    EXPECT_TRUE(mon.drift_active()) << "cycle " << c;
  }
}

TEST(MonitorTest, InvalidOptionsThrow) {
  ReliabilityMonitorOptions opt;
  EXPECT_THROW(ReliabilityMonitor(1.5, opt), std::invalid_argument);
  opt.window_cycles = 0;
  EXPECT_THROW(ReliabilityMonitor(1e-7, opt), std::invalid_argument);
  opt = ReliabilityMonitorOptions{};
  opt.trigger_factor = 1.0;  // must exceed 1
  EXPECT_THROW(ReliabilityMonitor(1e-7, opt), std::invalid_argument);
  opt = ReliabilityMonitorOptions{};
  opt.min_window_frames = 0;
  EXPECT_THROW(ReliabilityMonitor(1e-7, opt), std::invalid_argument);
  opt = ReliabilityMonitorOptions{};
  opt.cooldown_cycles = -1;
  EXPECT_THROW(ReliabilityMonitor(1e-7, opt), std::invalid_argument);
  opt = ReliabilityMonitorOptions{};
  opt.exit_factor = 0.5;  // must be >= 1
  EXPECT_THROW(ReliabilityMonitor(1e-7, opt), std::invalid_argument);
  opt = ReliabilityMonitorOptions{};
  opt.exit_factor = opt.trigger_factor + 1.0;  // must be <= trigger
  EXPECT_THROW(ReliabilityMonitor(1e-7, opt), std::invalid_argument);
  opt = ReliabilityMonitorOptions{};
  opt.min_dwell_cycles = -1;
  EXPECT_THROW(ReliabilityMonitor(1e-7, opt), std::invalid_argument);
  ReliabilityMonitor ok(1e-7, ReliabilityMonitorOptions{});
  EXPECT_THROW(ok.note_replanned(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace coeff::fault
