#include "fault/reliability.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "fault/ber.hpp"

namespace coeff::fault {
namespace {

net::MessageSet two_messages() {
  net::Message a;
  a.id = 1;
  a.period = sim::millis(1);
  a.deadline = sim::millis(1);
  a.size_bits = 1500;
  net::Message b;
  b.id = 2;
  b.period = sim::millis(50);
  b.deadline = sim::millis(50);
  b.size_bits = 300;
  return net::MessageSet({a, b});
}

TEST(ReliabilityTest, Theorem1MatchesManualProduct) {
  const auto set = two_messages();
  const double ber = 1e-7;
  const sim::Time u = sim::seconds(60);
  const std::vector<int> copies{2, 1};
  const double p1 = frame_failure_probability(1500, ber);
  const double p2 = frame_failure_probability(300, ber);
  const double expected =
      std::pow(1.0 - std::pow(p1, 3), 60.0 / 0.001) *
      std::pow(1.0 - std::pow(p2, 2), 60.0 / 0.05);
  EXPECT_NEAR(set_reliability(set, copies, ber, u), expected, 1e-9);
}

TEST(ReliabilityTest, MissingCopiesDefaultToZero) {
  const auto set = two_messages();
  const double with_short = log_set_reliability(set, {1}, 1e-7,
                                                sim::seconds(1));
  const double with_full = log_set_reliability(set, {1, 0}, 1e-7,
                                               sim::seconds(1));
  EXPECT_DOUBLE_EQ(with_short, with_full);
}

TEST(ReliabilityTest, MoreCopiesNeverHurt) {
  const auto set = two_messages();
  double prev = log_set_reliability(set, {0, 0}, 1e-6, sim::seconds(3600));
  for (int k = 1; k <= 4; ++k) {
    const double lr =
        log_set_reliability(set, {k, k}, 1e-6, sim::seconds(3600));
    EXPECT_GT(lr, prev);
    prev = lr;
  }
}

TEST(SolverTest, DifferentiatedMeetsGoal) {
  const auto set = two_messages();
  SolverOptions opt;
  opt.ber = 1e-7;
  opt.rho = 1.0 - 1e-7;
  opt.u = sim::seconds(3600);
  const auto plan = solve_differentiated(set, opt);
  EXPECT_GE(plan.log_reliability, std::log(opt.rho));
  EXPECT_GE(plan.reliability(), opt.rho);
}

TEST(SolverTest, DifferentiatedIsDifferentiated) {
  // The fast large message needs more copies than the slow small one.
  const auto set = two_messages();
  SolverOptions opt;
  opt.ber = 1e-7;
  opt.rho = 1.0 - 1e-7;
  opt.u = sim::seconds(3600);
  const auto plan = solve_differentiated(set, opt);
  ASSERT_EQ(plan.copies.size(), 2u);
  EXPECT_GT(plan.copies[0], plan.copies[1]);
}

TEST(SolverTest, DifferentiatedIsMinimalAtEveryStep) {
  // Removing one copy from any message must violate the goal; otherwise
  // the greedy stopped too late.
  const auto set = two_messages();
  SolverOptions opt;
  opt.ber = 1e-6;
  opt.rho = 1.0 - 1e-6;
  opt.u = sim::seconds(3600);
  const auto plan = solve_differentiated(set, opt);
  const double target = std::log(opt.rho);
  for (std::size_t z = 0; z < plan.copies.size(); ++z) {
    if (plan.copies[z] == 0) continue;
    auto fewer = plan.copies;
    --fewer[z];
    EXPECT_LT(log_set_reliability(set, fewer, opt.ber, opt.u), target)
        << "copy " << z << " was unnecessary";
  }
}

TEST(SolverTest, ZeroGoalNeedsNoCopies) {
  const auto set = two_messages();
  SolverOptions opt;
  opt.rho = 0.0;
  const auto plan = solve_differentiated(set, opt);
  EXPECT_EQ(plan.total_copies(), 0);
}

TEST(SolverTest, UnreachableGoalThrowsWhenOptedIn) {
  const auto set = two_messages();
  SolverOptions opt;
  opt.ber = 0.01;  // huge BER: 1500-bit frames nearly always fail
  opt.rho = 1.0 - 1e-9;
  opt.u = sim::seconds(3600);
  opt.max_copies_per_message = 2;
  opt.throw_on_infeasible = true;
  EXPECT_THROW((void)solve_differentiated(set, opt), std::runtime_error);
  EXPECT_THROW((void)solve_uniform(set, opt), std::runtime_error);
}

TEST(SolverTest, UnreachableGoalDegradesByDefault) {
  const auto set = two_messages();
  SolverOptions opt;
  opt.ber = 0.01;
  opt.rho = 1.0 - 1e-9;
  opt.u = sim::seconds(3600);
  opt.max_copies_per_message = 2;
  const auto diff = solve_differentiated(set, opt);
  EXPECT_TRUE(diff.degraded);
  EXPECT_LT(diff.log_reliability, diff.target_log_reliability);
  // The degraded plan is still the best available: every message sits at
  // the copy cap (nothing left to add).
  for (const int k : diff.copies) EXPECT_EQ(k, opt.max_copies_per_message);
  const auto uni = solve_uniform(set, opt);
  EXPECT_TRUE(uni.degraded);
  EXPECT_LT(uni.log_reliability, uni.target_log_reliability);
  for (const int k : uni.copies) EXPECT_EQ(k, opt.max_copies_per_message);
}

TEST(SolverTest, FeasiblePlanIsNotDegraded) {
  const auto set = two_messages();
  SolverOptions opt;
  opt.ber = 1e-7;
  opt.rho = 1.0 - 1e-7;
  opt.u = sim::seconds(3600);
  const auto plan = solve_differentiated(set, opt);
  EXPECT_FALSE(plan.degraded);
  EXPECT_NEAR(plan.target_log_reliability, std::log(opt.rho), 1e-15);
  EXPECT_GE(plan.log_reliability, plan.target_log_reliability);
}

TEST(SolverTest, InvalidOptionsThrow) {
  const auto set = two_messages();
  SolverOptions opt;
  opt.rho = 1.0;  // must be < 1
  EXPECT_THROW((void)solve_differentiated(set, opt), std::invalid_argument);
  opt.rho = 0.5;
  opt.u = sim::Time::zero();
  EXPECT_THROW((void)solve_differentiated(set, opt), std::invalid_argument);
  opt.u = sim::seconds(1);
  opt.ber = 1.5;  // probability, must live in [0, 1]
  EXPECT_THROW((void)solve_differentiated(set, opt), std::invalid_argument);
}

TEST(SolverTest, InvalidOptionsNameTheOffender) {
  // The error message must say which option is bad, not just "invalid".
  const auto set = two_messages();
  SolverOptions opt;
  opt.rho = 0.5;
  opt.ber = -0.25;
  try {
    (void)solve_differentiated(set, opt);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ber"), std::string::npos)
        << e.what();
  }
  opt.ber = 1e-7;
  opt.rho = 1.25;
  try {
    (void)solve_differentiated(set, opt);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("rho"), std::string::npos)
        << e.what();
  }
  opt.rho = 0.5;
  opt.u = sim::Time::zero();
  try {
    (void)solve_differentiated(set, opt);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("u"), std::string::npos) << e.what();
  }
}

TEST(SolverTest, UniformMeetsGoalWithEqualCopies) {
  const auto set = two_messages();
  SolverOptions opt;
  opt.ber = 1e-7;
  opt.rho = 1.0 - 1e-7;
  opt.u = sim::seconds(3600);
  const auto plan = solve_uniform(set, opt);
  EXPECT_GE(plan.reliability(), opt.rho);
  ASSERT_EQ(plan.copies.size(), 2u);
  EXPECT_EQ(plan.copies[0], plan.copies[1]);
}

TEST(SolverTest, DifferentiatedAddsLessLoadThanUniform) {
  // The headline claim: meeting the same rho costs less bandwidth when
  // retransmissions are differentiated.
  const auto set = two_messages();
  SolverOptions opt;
  opt.ber = 1e-7;
  opt.rho = 1.0 - 1e-7;
  opt.u = sim::seconds(3600);
  const auto diff = solve_differentiated(set, opt);
  const auto uni = solve_uniform(set, opt);
  EXPECT_LE(diff.added_load_bits_per_second,
            uni.added_load_bits_per_second);
}

TEST(SolverTest, UniformRoundsAccountsForPairedCopies) {
  const auto set = two_messages();
  SolverOptions opt;
  opt.ber = 1e-7;
  opt.rho = 1.0 - 1e-7;
  opt.u = sim::seconds(3600);
  const int rounds2 = solve_uniform_rounds(set, opt, 2);
  const int rounds1 = solve_uniform_rounds(set, opt, 1);
  // Mirrored pairs square the per-round loss, so fewer rounds suffice.
  EXPECT_LE(rounds2, rounds1);
  EXPECT_GE(rounds2, 1);
  // Verify the returned round count actually meets the goal.
  std::vector<int> copies(set.size(), rounds2 * 2 - 1);
  EXPECT_GE(log_set_reliability(set, copies, opt.ber, opt.u),
            std::log(opt.rho));
}

TEST(SolverTest, UniformRoundsValidation) {
  const auto set = two_messages();
  SolverOptions opt;
  opt.rho = 0.9;
  EXPECT_THROW((void)solve_uniform_rounds(set, opt, 0),
               std::invalid_argument);
}

TEST(PlanTest, Accessors) {
  RetransmissionPlan plan;
  plan.copies = {1, 3, 0};
  plan.log_reliability = std::log(0.5);
  EXPECT_EQ(plan.total_copies(), 4);
  EXPECT_EQ(plan.max_copies(), 3);
  EXPECT_NEAR(plan.reliability(), 0.5, 1e-12);
}

}  // namespace
}  // namespace coeff::fault
