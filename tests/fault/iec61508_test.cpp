#include "fault/iec61508.hpp"

#include <gtest/gtest.h>

namespace coeff::fault {
namespace {

TEST(Iec61508Test, SilBands) {
  EXPECT_DOUBLE_EQ(max_failure_probability_per_hour(Sil::kSil1), 1e-5);
  EXPECT_DOUBLE_EQ(max_failure_probability_per_hour(Sil::kSil2), 1e-6);
  EXPECT_DOUBLE_EQ(max_failure_probability_per_hour(Sil::kSil3), 1e-7);
  EXPECT_DOUBLE_EQ(max_failure_probability_per_hour(Sil::kSil4), 1e-9);
}

TEST(Iec61508Test, ReliabilityGoalOverOneHour) {
  EXPECT_DOUBLE_EQ(reliability_goal(Sil::kSil3, sim::seconds(3600)),
                   1.0 - 1e-7);
}

TEST(Iec61508Test, ReliabilityGoalScalesWithTime) {
  const double one_hour = reliability_goal(Sil::kSil2, sim::seconds(3600));
  const double half_hour = reliability_goal(Sil::kSil2, sim::seconds(1800));
  EXPECT_GT(half_hour, one_hour);
  EXPECT_NEAR(1.0 - half_hour, (1.0 - one_hour) / 2.0, 1e-15);
}

TEST(Iec61508Test, AbsurdlyLongWindowSaturatesAtZero) {
  // gamma >= 1 means no reliability can be promised.
  EXPECT_DOUBLE_EQ(
      reliability_goal(Sil::kSil1, sim::seconds(3600) * 200'000), 0.0);
}

TEST(Iec61508Test, NonPositiveWindowThrows) {
  EXPECT_THROW((void)reliability_goal(Sil::kSil1, sim::Time::zero()),
               std::invalid_argument);
}

TEST(Iec61508Test, AchievedSilClassification) {
  EXPECT_EQ(achieved_sil(1e-10), 4);
  EXPECT_EQ(achieved_sil(1e-8), 3);
  EXPECT_EQ(achieved_sil(5e-7), 2);
  EXPECT_EQ(achieved_sil(5e-6), 1);
  EXPECT_EQ(achieved_sil(1e-3), 0);
}

TEST(Iec61508Test, AchievedSilBoundaries) {
  EXPECT_EQ(achieved_sil(1e-9), 4);
  EXPECT_EQ(achieved_sil(1e-7), 3);
  EXPECT_EQ(achieved_sil(1e-6), 2);
  EXPECT_EQ(achieved_sil(1e-5), 1);
  EXPECT_EQ(achieved_sil(0.0), 4);
}

TEST(Iec61508Test, NegativeRateThrows) {
  EXPECT_THROW((void)achieved_sil(-1.0), std::invalid_argument);
}

TEST(Iec61508Test, RoundTripGoalAndClassification) {
  for (auto sil : {Sil::kSil1, Sil::kSil2, Sil::kSil3, Sil::kSil4}) {
    const double gamma = max_failure_probability_per_hour(sil);
    EXPECT_GE(achieved_sil(gamma), static_cast<int>(sil));
  }
}

}  // namespace
}  // namespace coeff::fault
