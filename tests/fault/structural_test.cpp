#include "fault/structural.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace coeff::fault {
namespace {

using flexray::ChannelId;
using flexray::TopologyEventKind;

TEST(StructuralConfigTest, EmptyDetectsNoFaultSources) {
  StructuralFaultConfig config;
  EXPECT_TRUE(config.empty());
  config.blackouts.push_back(
      {ChannelId::kA, sim::millis(1), sim::millis(2)});
  EXPECT_FALSE(config.empty());
}

TEST(StructuralConfigTest, ValidateRejectsBackwardsAndNegative) {
  StructuralFaultConfig config;
  config.crashes.push_back({units::NodeId{-1}, sim::millis(1)});
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = {};
  config.crashes.push_back(
      {units::NodeId{0}, sim::millis(5), sim::millis(3)});  // restart < crash
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = {};
  config.blackouts.push_back(
      {ChannelId::kB, sim::millis(4), sim::millis(4)});  // empty window
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = {};
  config.stochastic_crashes.crashes_per_second = 1.0;
  config.stochastic_crashes.num_nodes = 0;  // rate with no nodes
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(NodeFaultModelTest, ScheduledCrashReplaysInOrder) {
  StructuralFaultConfig config;
  config.crashes.push_back(
      {units::NodeId{1}, sim::millis(5), sim::millis(20)});
  NodeFaultModel model(config, 1);

  ASSERT_EQ(model.schedule().size(), 2u);
  EXPECT_EQ(model.schedule()[0].kind, TopologyEventKind::kNodeCrash);
  EXPECT_EQ(model.schedule()[1].kind, TopologyEventKind::kNodeRestart);

  EXPECT_TRUE(model.poll(sim::millis(4)).empty());
  EXPECT_FALSE(model.node_down(units::NodeId{1}));

  const auto crash = model.poll(sim::millis(5));
  ASSERT_EQ(crash.size(), 1u);
  EXPECT_EQ(crash[0].kind, TopologyEventKind::kNodeCrash);
  EXPECT_EQ(crash[0].node, units::NodeId{1});
  EXPECT_TRUE(model.node_down(units::NodeId{1}));

  const auto restart = model.poll(sim::millis(25));
  ASSERT_EQ(restart.size(), 1u);
  EXPECT_EQ(restart[0].kind, TopologyEventKind::kNodeRestart);
  EXPECT_FALSE(model.node_down(units::NodeId{1}));
}

TEST(NodeFaultModelTest, BlackoutFlipsChannelState) {
  StructuralFaultConfig config;
  config.blackouts.push_back({ChannelId::kA, sim::millis(2), sim::millis(6)});
  NodeFaultModel model(config, 1);

  (void)model.poll(sim::millis(2));
  EXPECT_TRUE(model.channel_down(ChannelId::kA));
  EXPECT_FALSE(model.channel_down(ChannelId::kB));
  (void)model.poll(sim::millis(6));
  EXPECT_FALSE(model.channel_down(ChannelId::kA));
}

TEST(NodeFaultModelTest, OverlappingWindowsCoalesce) {
  // Two overlapping crash windows for one node must not produce a
  // double-crash (the cluster would trace a crash of a node already
  // down, tripping the trace linter's causality rule).
  StructuralFaultConfig config;
  config.crashes.push_back(
      {units::NodeId{0}, sim::millis(1), sim::millis(10)});
  config.crashes.push_back(
      {units::NodeId{0}, sim::millis(5), sim::millis(15)});
  NodeFaultModel model(config, 1);

  ASSERT_EQ(model.schedule().size(), 2u);
  EXPECT_EQ(model.schedule()[0].kind, TopologyEventKind::kNodeCrash);
  EXPECT_EQ(model.schedule()[0].at, sim::millis(1));
  EXPECT_EQ(model.schedule()[1].kind, TopologyEventKind::kNodeRestart);
  EXPECT_EQ(model.schedule()[1].at, sim::millis(15));
}

TEST(NodeFaultModelTest, BabbleJamsSlotOnConfiguredChannels) {
  StructuralFaultConfig config;
  BabbleWindow babble;
  babble.babbler = units::NodeId{2};
  babble.slot = units::SlotId{3};
  babble.channel = ChannelId::kA;  // one branch only
  babble.at = sim::millis(1);
  babble.until = sim::millis(4);
  config.babbles.push_back(babble);
  NodeFaultModel model(config, 1);

  EXPECT_TRUE(model.slot_jammed(units::SlotId{3}, ChannelId::kA,
                                sim::millis(2)));
  EXPECT_FALSE(model.slot_jammed(units::SlotId{3}, ChannelId::kB,
                                 sim::millis(2)));
  EXPECT_FALSE(model.slot_jammed(units::SlotId{4}, ChannelId::kA,
                                 sim::millis(2)));
  EXPECT_FALSE(model.slot_jammed(units::SlotId{3}, ChannelId::kA,
                                 sim::millis(5)));

  // No channel set: the babbler drives both branches.
  config.babbles[0].channel.reset();
  NodeFaultModel both(config, 1);
  EXPECT_TRUE(both.slot_jammed(units::SlotId{3}, ChannelId::kA,
                               sim::millis(2)));
  EXPECT_TRUE(both.slot_jammed(units::SlotId{3}, ChannelId::kB,
                               sim::millis(2)));
}

TEST(NodeFaultModelTest, DriftWindowMarksNodeOutOfSync) {
  StructuralFaultConfig config;
  config.drifts.push_back(
      {units::NodeId{1}, sim::millis(3), sim::millis(7), 1500.0});
  NodeFaultModel model(config, 1);

  EXPECT_FALSE(model.node_out_of_sync(units::NodeId{1}, sim::millis(2)));
  EXPECT_TRUE(model.node_out_of_sync(units::NodeId{1}, sim::millis(5)));
  EXPECT_FALSE(model.node_out_of_sync(units::NodeId{0}, sim::millis(5)));
  EXPECT_FALSE(model.node_out_of_sync(units::NodeId{1}, sim::millis(7)));
}

TEST(NodeFaultModelTest, StochasticExpansionIsDeterministicPerSeed) {
  StructuralFaultConfig config;
  config.stochastic_crashes.crashes_per_second = 200.0;
  config.stochastic_crashes.mean_time_to_repair = sim::millis(5);
  config.stochastic_crashes.horizon = sim::millis(100);
  config.stochastic_crashes.num_nodes = 4;
  config.stochastic_blackouts.outages_per_second = 100.0;
  config.stochastic_blackouts.mean_outage = sim::millis(3);
  config.stochastic_blackouts.horizon = sim::millis(100);

  NodeFaultModel a(config, 7);
  NodeFaultModel b(config, 7);
  NodeFaultModel c(config, 8);

  ASSERT_FALSE(a.schedule().empty());
  ASSERT_EQ(a.schedule().size(), b.schedule().size());
  for (std::size_t i = 0; i < a.schedule().size(); ++i) {
    EXPECT_EQ(a.schedule()[i].kind, b.schedule()[i].kind);
    EXPECT_EQ(a.schedule()[i].at, b.schedule()[i].at);
    EXPECT_EQ(a.schedule()[i].node, b.schedule()[i].node);
    EXPECT_EQ(a.schedule()[i].channel, b.schedule()[i].channel);
  }
  // A different seed draws a different history (sizes or times differ).
  bool different = a.schedule().size() != c.schedule().size();
  for (std::size_t i = 0; !different && i < a.schedule().size(); ++i) {
    different = a.schedule()[i].at != c.schedule()[i].at;
  }
  EXPECT_TRUE(different);
}

TEST(NodeFaultModelTest, StochasticEventsNeverDoubleCrash) {
  StructuralFaultConfig config;
  config.stochastic_crashes.crashes_per_second = 500.0;
  config.stochastic_crashes.mean_time_to_repair = sim::millis(10);
  config.stochastic_crashes.horizon = sim::millis(200);
  config.stochastic_crashes.num_nodes = 3;
  NodeFaultModel model(config, 11);

  std::vector<bool> down(3, false);
  for (const auto& ev : model.schedule()) {
    if (ev.kind == TopologyEventKind::kNodeCrash) {
      const auto idx = static_cast<std::size_t>(ev.node.value());
      EXPECT_FALSE(down[idx]) << "double crash of node " << ev.node.value();
      down[idx] = true;
    } else if (ev.kind == TopologyEventKind::kNodeRestart) {
      const auto idx = static_cast<std::size_t>(ev.node.value());
      EXPECT_TRUE(down[idx]) << "restart of live node " << ev.node.value();
      down[idx] = false;
    }
  }
}

TEST(NodeFaultModelTest, DescribeNamesEveryFaultClass) {
  StructuralFaultConfig config;
  config.crashes.push_back({units::NodeId{0}, sim::millis(1), sim::millis(2)});
  config.blackouts.push_back({ChannelId::kB, sim::millis(1), sim::millis(2)});
  NodeFaultModel model(config, 1);
  const std::string text = model.describe();
  EXPECT_NE(text.find("crash"), std::string::npos);
  EXPECT_NE(text.find("blackout"), std::string::npos);
}

TEST(SilentNodeDetectorTest, FlagsAfterThresholdConsecutiveSilentCycles) {
  SilentNodeDetector det(3, /*silent_cycle_threshold=*/2);

  det.note_expected(units::NodeId{1});
  EXPECT_TRUE(det.on_cycle_end().empty());  // 1 silent cycle: below threshold

  det.note_expected(units::NodeId{1});
  const auto flagged = det.on_cycle_end();
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], units::NodeId{1});
  EXPECT_TRUE(det.silent(units::NodeId{1}));
  EXPECT_EQ(det.detections(), 1);

  // Flagged exactly once: staying silent does not re-flag.
  det.note_expected(units::NodeId{1});
  EXPECT_TRUE(det.on_cycle_end().empty());
  EXPECT_EQ(det.detections(), 1);
}

TEST(SilentNodeDetectorTest, ActivityResetsSilenceAndFlag) {
  SilentNodeDetector det(2, 2);
  for (int c = 0; c < 2; ++c) {
    det.note_expected(units::NodeId{0});
    (void)det.on_cycle_end();
  }
  ASSERT_TRUE(det.silent(units::NodeId{0}));

  // The node transmits again (restart): the flag clears and the count
  // restarts from zero.
  det.note_expected(units::NodeId{0});
  det.note_activity(units::NodeId{0});
  EXPECT_TRUE(det.on_cycle_end().empty());
  EXPECT_FALSE(det.silent(units::NodeId{0}));

  det.note_expected(units::NodeId{0});
  EXPECT_TRUE(det.on_cycle_end().empty());  // 1 silent cycle again
  det.note_expected(units::NodeId{0});
  EXPECT_EQ(det.on_cycle_end().size(), 1u);  // re-detected after recovery
  EXPECT_EQ(det.detections(), 2);
}

TEST(SilentNodeDetectorTest, UnexpectedNodesAreNeverFlagged) {
  SilentNodeDetector det(2, 1);
  for (int c = 0; c < 5; ++c) {
    EXPECT_TRUE(det.on_cycle_end().empty());
  }
  EXPECT_FALSE(det.silent(units::NodeId{0}));
  EXPECT_FALSE(det.silent(units::NodeId{1}));
}

}  // namespace
}  // namespace coeff::fault
