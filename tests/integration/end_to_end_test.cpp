// End-to-end integration tests: full cluster runs on the paper's
// workloads, checking cross-module invariants rather than unit
// behaviour.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "net/workloads.hpp"

namespace coeff::core {
namespace {

ExperimentConfig loaded_config(std::int64_t minislots, double ber,
                               std::uint64_t seed) {
  ExperimentConfig config;
  config.cluster = paper_cluster_dynamic_suite(minislots);
  sim::Rng rng(seed);
  net::SyntheticStaticOptions statics;
  statics.count = 80;
  config.statics = net::synthetic_static(statics, rng);
  net::SaeAperiodicOptions sae;
  sae.static_slots = 80;
  sae.min_bits = 256;
  sae.max_bits = 2000;
  config.dynamics = net::sae_aperiodic(sae, rng);
  config.arrivals.process = net::ArrivalProcess::kBursty;
  config.arrivals.burst = 3;
  config.ber = ber;
  config.sil = fault::Sil::kSil3;
  config.batch_window = sim::millis(500);
  config.seed = seed;
  return config;
}

TEST(EndToEndTest, AccountingIdentitiesHold) {
  for (auto scheme : {SchemeKind::kCoEfficient, SchemeKind::kFspec}) {
    const auto r = run_experiment(loaded_config(50, 1e-6, 3), scheme);
    const auto& st = r.run;
    // Every released instance settles exactly once.
    EXPECT_EQ(st.statics.delivered + st.statics.missed, st.statics.released)
        << to_string(scheme);
    EXPECT_EQ(st.dynamics.delivered + st.dynamics.missed,
              st.dynamics.released)
        << to_string(scheme);
    // Corrupted copies are a subset of sent copies.
    EXPECT_LE(st.statics.copies_corrupted, st.statics.copies_sent);
    EXPECT_LE(st.dynamics.copies_corrupted, st.dynamics.copies_sent);
    // Wire busy time never exceeds capacity.
    EXPECT_LE(st.static_wire_busy, st.static_wire_capacity);
    EXPECT_LE(st.dynamic_wire_busy, st.dynamic_wire_capacity);
    // Useful bits can't exceed what was transmitted.
    EXPECT_LE(st.useful_bits_static_wire + st.useful_bits_dynamic_wire,
              st.statics.useful_payload_bits + st.dynamics.useful_payload_bits);
  }
}

TEST(EndToEndTest, CoEfficientDominatesFspecUnderLoad) {
  const auto config = loaded_config(25, 1e-7, 7);
  const auto coeff = run_experiment(config, SchemeKind::kCoEfficient);
  const auto fspec = run_experiment(config, SchemeKind::kFspec);
  EXPECT_LE(coeff.run.overall_miss_ratio(), fspec.run.overall_miss_ratio());
  EXPECT_LE(coeff.run.dynamics.miss_ratio(), fspec.run.dynamics.miss_ratio());
  EXPECT_GE(coeff.run.dynamics.useful_payload_bits,
            fspec.run.dynamics.useful_payload_bits);
}

TEST(EndToEndTest, MoreMinislotsNeverHurtDynamics) {
  double prev_miss = 1.1;
  for (std::int64_t minislots : {25, 50, 100}) {
    const auto r = run_experiment(loaded_config(minislots, 1e-7, 5),
                                  SchemeKind::kFspec);
    const double miss = r.run.dynamics.miss_ratio();
    EXPECT_LE(miss, prev_miss + 1e-9) << minislots << " minislots";
    prev_miss = miss;
  }
}

TEST(EndToEndTest, FaultFreeRunsDeliverAllDynamics) {
  auto config = loaded_config(100, 0.0, 9);
  config.rho = 0.0;
  config.arrivals.burst = 1;
  config.arrivals.process = net::ArrivalProcess::kPeriodic;
  const auto r = run_experiment(config, SchemeKind::kCoEfficient);
  EXPECT_EQ(r.run.dynamics.missed, 0);
  EXPECT_EQ(r.run.dynamics.copies_corrupted, 0);
}

TEST(EndToEndTest, GoldenDeterminismLock) {
  // Fixed-seed regression: these exact counters must never drift
  // silently. If a deliberate behaviour change moves them, update the
  // numbers alongside the change.
  const auto r = run_experiment(loaded_config(50, 1e-6, 3),
                                SchemeKind::kCoEfficient);
  const auto again = run_experiment(loaded_config(50, 1e-6, 3),
                                    SchemeKind::kCoEfficient);
  EXPECT_EQ(r.run.statics.released, again.run.statics.released);
  EXPECT_EQ(r.run.statics.delivered, again.run.statics.delivered);
  EXPECT_EQ(r.run.dynamics.delivered, again.run.dynamics.delivered);
  EXPECT_EQ(r.run.statics.copies_corrupted,
            again.run.statics.copies_corrupted);
  EXPECT_EQ(r.run.slack_slots_stolen, again.run.slack_slots_stolen);
  EXPECT_EQ(r.run.running_time, again.run.running_time);
}

TEST(EndToEndTest, HigherBerMeansMoreCorruption) {
  std::int64_t prev = -1;
  for (double ber : {1e-8, 1e-6, 1e-4}) {
    auto config = loaded_config(50, ber, 11);
    // A trivially satisfied goal isolates corruption counting from
    // retransmission planning (k = 0, rounds = 1 for every message).
    config.rho = 0.5;
    const auto r = run_experiment(config, SchemeKind::kFspec);
    const std::int64_t corrupted =
        r.run.statics.copies_corrupted + r.run.dynamics.copies_corrupted;
    EXPECT_GT(corrupted, prev);
    prev = corrupted;
  }
}

TEST(EndToEndTest, BbwAccMergedSuiteRuns) {
  ExperimentConfig config;
  config.cluster = paper_cluster_apps();
  config.statics = net::brake_by_wire().merged_with(net::adaptive_cruise());
  config.ber = 1e-7;
  config.sil = fault::Sil::kSil3;
  config.batch_window = sim::millis(200);
  for (auto scheme : {SchemeKind::kCoEfficient, SchemeKind::kFspec}) {
    const auto r = run_experiment(config, scheme);
    EXPECT_GT(r.run.statics.released, 0) << to_string(scheme);
    EXPECT_GT(r.run.statics.delivered, 0) << to_string(scheme);
  }
}

TEST(EndToEndTest, OverloadedAperiodicsDegradeGracefully) {
  // Burst 30: far beyond what any configuration can carry. Nothing may
  // crash, accounting must stay consistent, and CoEfficient must still
  // deliver at least as much as FSPEC.
  auto config = loaded_config(25, 1e-7, 13);
  config.arrivals.burst = 30;
  const auto coeff = run_experiment(config, SchemeKind::kCoEfficient);
  const auto fspec = run_experiment(config, SchemeKind::kFspec);
  EXPECT_EQ(coeff.run.dynamics.delivered + coeff.run.dynamics.missed,
            coeff.run.dynamics.released);
  EXPECT_GE(coeff.run.dynamics.delivered, fspec.run.dynamics.delivered);
}

}  // namespace
}  // namespace coeff::core
