// Parameterized property sweeps (TEST_P): invariants that must hold for
// every combination of cluster geometry, scheme, fault rate, and
// arrival process.
#include <gtest/gtest.h>

#include <tuple>

#include "core/experiment.hpp"
#include "fault/reliability.hpp"
#include "net/workloads.hpp"
#include "sched/slack_table.hpp"

namespace coeff::core {
namespace {

// ---------------------------------------------------------------------
// Property: for every (minislots, scheme, ber) combination, a full run
// settles every instance, never over-uses the wire, and terminates.
// ---------------------------------------------------------------------
using RunParams = std::tuple<std::int64_t /*minislots*/, SchemeKind, double>;

class RunInvariants : public ::testing::TestWithParam<RunParams> {};

TEST_P(RunInvariants, SettleAndConserve) {
  const auto [minislots, scheme, ber] = GetParam();
  ExperimentConfig config;
  config.cluster = paper_cluster_dynamic_suite(minislots);
  sim::Rng rng(29);
  net::SyntheticStaticOptions statics;
  statics.count = 40;
  config.statics = net::synthetic_static(statics, rng);
  net::SaeAperiodicOptions sae;
  sae.static_slots = 80;
  config.dynamics = net::sae_aperiodic(sae, rng);
  config.ber = ber;
  config.sil = fault::Sil::kSil3;
  config.batch_window = sim::millis(250);
  const auto r = run_experiment(config, scheme);

  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.run.statics.delivered + r.run.statics.missed,
            r.run.statics.released);
  EXPECT_EQ(r.run.dynamics.delivered + r.run.dynamics.missed,
            r.run.dynamics.released);
  EXPECT_LE(r.run.static_wire_busy, r.run.static_wire_capacity);
  EXPECT_LE(r.run.dynamic_wire_busy, r.run.dynamic_wire_capacity);
  EXPECT_GE(r.run.running_time, sim::Time::zero());
  if (ber == 0.0) {
    EXPECT_EQ(r.run.statics.copies_corrupted, 0);
    EXPECT_EQ(r.run.dynamics.copies_corrupted, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RunInvariants,
    ::testing::Combine(::testing::Values<std::int64_t>(25, 50, 100),
                       ::testing::Values(SchemeKind::kCoEfficient,
                                         SchemeKind::kFspec),
                       ::testing::Values(0.0, 1e-7, 1e-5)));

// ---------------------------------------------------------------------
// Property: the Theorem-1 solver meets every goal it accepts, for a
// sweep of (ber, gamma) pairs, and differentiated never costs more
// bandwidth than uniform.
// ---------------------------------------------------------------------
using SolverParams = std::tuple<double /*ber*/, double /*gamma*/>;

class SolverProperties : public ::testing::TestWithParam<SolverParams> {};

TEST_P(SolverProperties, MeetsGoalAndBeatsUniform) {
  const auto [ber, gamma] = GetParam();
  const auto set = net::brake_by_wire();
  fault::SolverOptions opt;
  opt.ber = ber;
  opt.rho = 1.0 - gamma;
  opt.max_copies_per_message = 12;
  const auto diff = fault::solve_differentiated(set, opt);
  const auto uni = fault::solve_uniform(set, opt);
  EXPECT_GE(diff.reliability(), opt.rho);
  EXPECT_GE(uni.reliability(), opt.rho);
  EXPECT_LE(diff.added_load_bits_per_second, uni.added_load_bits_per_second);
  // Consistency: re-evaluating the plan reproduces its stored value.
  EXPECT_NEAR(fault::log_set_reliability(set, diff.copies, ber, opt.u),
              diff.log_reliability, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverProperties,
    ::testing::Combine(::testing::Values(1e-8, 1e-7, 1e-6),
                       ::testing::Values(1e-5, 1e-7, 1e-9)));

// ---------------------------------------------------------------------
// Property: slack is monotone in priority level — dropping the
// highest-priority constraints can only increase the available slack.
// ---------------------------------------------------------------------
class SlackLevelMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(SlackLevelMonotonicity, SlackGrowsAsLevelsDrop) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<sched::PeriodicTask> tasks;
  for (int i = 0; i < 4; ++i) {
    sched::PeriodicTask t;
    t.id = i;
    t.period = sim::millis(rng.uniform_int(1, 4) * 10);
    t.wcet = sim::millis(rng.uniform_int(1, 3));
    t.deadline = t.period;
    t.offset = sim::millis(rng.uniform_int(0, 5));
    tasks.push_back(t);
  }
  sched::SlackTable table{sched::TaskSet(tasks)};
  if (!table.schedulable()) GTEST_SKIP();
  for (int q = 0; q < 20; ++q) {
    const auto t = sim::millis(rng.uniform_int(0, 200));
    sim::Time prev = sim::Time::zero();
    for (std::size_t level = 0; level < table.levels(); ++level) {
      const auto s = table.slack_at(t, level);
      EXPECT_GE(s, prev) << "level " << level << " t " << t.ns();
      prev = s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlackLevelMonotonicity,
                         ::testing::Range(1, 12));

// ---------------------------------------------------------------------
// Property: arrival generators respect the horizon and ordering for all
// processes.
// ---------------------------------------------------------------------
class ArrivalProperties
    : public ::testing::TestWithParam<net::ArrivalProcess> {};

TEST_P(ArrivalProperties, SortedAndWithinHorizon) {
  net::Message m;
  m.period = sim::millis(7);
  m.offset = sim::micros(300);
  sim::Rng rng(5);
  net::ArrivalOptions opt;
  opt.process = GetParam();
  opt.burst = 4;
  const auto horizon = sim::millis(500);
  const auto times = net::arrivals(m, horizon, opt, rng);
  ASSERT_FALSE(times.empty());
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_GE(times[i], sim::Time::zero());
    EXPECT_LT(times[i], horizon);
    if (i > 0) {
      EXPECT_GE(times[i], times[i - 1]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllProcesses, ArrivalProperties,
                         ::testing::Values(net::ArrivalProcess::kPeriodic,
                                           net::ArrivalProcess::kPoisson,
                                           net::ArrivalProcess::kBursty));

}  // namespace
}  // namespace coeff::core
