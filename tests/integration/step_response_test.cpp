// Acceptance scenario for the reliability-monitoring loop: the wire BER
// steps 1e-7 -> 1e-5 mid-run. With the monitor enabled the drift is
// detected, the differentiated solver re-runs against the estimated BER
// and the swapped plan restores reliability >= rho at the new BER. The
// identical scenario without the monitor keeps flying the stale plan,
// which demonstrably misses rho at the stepped BER.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/experiment.hpp"
#include "fault/reliability.hpp"
#include "net/workloads.hpp"
#include "sim/random.hpp"
#include "sim/trace.hpp"

namespace coeff::core {
namespace {

constexpr double kPlannedBer = 1e-7;
constexpr double kSteppedBer = 1e-5;

ExperimentConfig step_config(sim::Trace* trace, bool enable_monitor) {
  ExperimentConfig config;
  config.cluster = paper_cluster_apps();
  config.statics = net::brake_by_wire();
  config.ber = kPlannedBer;
  config.sil = fault::Sil::kSil3;
  config.batch_window = sim::seconds(1);  // 1000 cycles at 1 ms/cycle
  config.seed = 42;
  config.ber_step_at = sim::millis(300);
  config.ber_step = kSteppedBer;
  config.enable_monitor = enable_monitor;
  config.monitor.window_cycles = 100;
  config.monitor.min_window_frames = 500;
  config.monitor.trigger_factor = 5.0;
  config.monitor.cooldown_cycles = 100;
  config.trace = trace;
  return config;
}

TEST(StepResponseTest, MonitorDetectsDriftAndReplansToMeetRho) {
  sim::Trace trace;
  const auto config = step_config(&trace, /*enable_monitor=*/true);
  const auto result = run_experiment(config, SchemeKind::kCoEfficient);

  // Drift detected and at least one online re-plan happened, surfaced
  // both in the metrics and the structured trace.
  EXPECT_GE(result.run.plan_swaps, 1);
  EXPECT_GE(trace.count(sim::TraceKind::kBerDrift), 1u);
  EXPECT_GE(trace.count(sim::TraceKind::kPlanSwap), 1u);

  // The swapped plan was solved against the estimated (stepped) BER and
  // meets the goal there: not degraded, achieved >= target.
  EXPECT_FALSE(result.run.plan_degraded);
  EXPECT_GE(result.run.plan_achieved_log_r, result.run.plan_target_log_r);

  // And it restores reliability at the true stepped BER: Theorem 1 over
  // the final copy vector, evaluated at 1e-5, clears log rho.
  const double log_rho = std::log(result.rho_target);
  const double post_swap_log_r = fault::log_set_reliability(
      config.statics, result.final_plan.copies, kSteppedBer, config.u);
  EXPECT_GE(post_swap_log_r, log_rho);

  // The re-plan bought real redundancy, not a no-op swap.
  const auto initial = [&] {
    fault::SolverOptions opt;
    opt.ber = kPlannedBer;
    opt.rho = result.rho_target;
    opt.u = config.u;
    opt.max_copies_per_message = config.max_copies;
    return fault::solve_differentiated(config.statics, opt);
  }();
  EXPECT_GT(result.final_plan.total_copies(), initial.total_copies());
}

TEST(StepResponseTest, WithoutMonitorTheStalePlanMissesRho) {
  const auto config = step_config(nullptr, /*enable_monitor=*/false);
  const auto result = run_experiment(config, SchemeKind::kCoEfficient);

  // No monitor: the plan never changes.
  EXPECT_EQ(result.run.plan_swaps, 0);

  // The plan solved for 1e-7 still meets rho *at 1e-7* ...
  const double log_rho = std::log(result.rho_target);
  EXPECT_GE(fault::log_set_reliability(config.statics,
                                       result.final_plan.copies, kPlannedBer,
                                       config.u),
            log_rho);
  // ... but at the stepped BER it demonstrably misses the goal.
  EXPECT_LT(fault::log_set_reliability(config.statics,
                                       result.final_plan.copies, kSteppedBer,
                                       config.u),
            log_rho);
}

TEST(StepResponseTest, MonitoredRunIsDeterministicPerSeed) {
  const auto config = step_config(nullptr, /*enable_monitor=*/true);
  const auto a = run_experiment(config, SchemeKind::kCoEfficient);
  const auto b = run_experiment(config, SchemeKind::kCoEfficient);
  EXPECT_EQ(a.run.plan_swaps, b.run.plan_swaps);
  EXPECT_EQ(a.final_plan.copies, b.final_plan.copies);
  EXPECT_EQ(a.run.statics.delivered, b.run.statics.delivered);
  EXPECT_EQ(a.run.statics.copies_corrupted, b.run.statics.copies_corrupted);
  EXPECT_DOUBLE_EQ(a.run.plan_achieved_log_r, b.run.plan_achieved_log_r);
}

TEST(StepResponseTest, DegradedModeShedsDynamicsAndFlagsThePlan) {
  // An unreachable goal (harsh BER, tight copy cap) must not throw by
  // default: the scheduler flies the best achievable plan, flags it
  // degraded, sheds dynamic-segment load and reports both through the
  // metrics and the trace.
  sim::Trace trace;
  ExperimentConfig config;
  config.cluster = paper_cluster_apps();
  config.statics = net::brake_by_wire();
  sim::Rng rng(7);
  net::SaeAperiodicOptions sae;
  sae.count = 10;
  config.dynamics = net::sae_aperiodic(sae, rng);
  config.ber = 0.01;
  config.rho = 1.0 - 1e-9;
  config.max_copies = 2;
  config.batch_window = sim::millis(200);
  config.trace = &trace;
  const auto result = run_experiment(config, SchemeKind::kCoEfficient);

  EXPECT_TRUE(result.run.plan_degraded);
  EXPECT_TRUE(result.final_plan.degraded);
  EXPECT_LT(result.run.plan_achieved_log_r, result.run.plan_target_log_r);
  // Every dynamic arrival was shed (and therefore missed), each one
  // surfaced as a kLoadShed trace record.
  EXPECT_GT(result.run.dynamic_frames_shed, 0);
  EXPECT_EQ(result.run.dynamic_frames_shed, result.run.dynamics.released);
  EXPECT_EQ(result.run.dynamics.delivered, 0);
  EXPECT_EQ(trace.count(sim::TraceKind::kLoadShed),
            static_cast<std::size_t>(result.run.dynamic_frames_shed));
  // Degraded mode keeps stolen static slack for the safety-critical
  // statics: no dynamic frames ride the static segment.
  EXPECT_EQ(result.run.dynamic_in_static_slots, 0);

  // Opting into the old contract still throws.
  ExperimentConfig strict = config;
  strict.trace = nullptr;
  strict.throw_on_infeasible = true;
  EXPECT_THROW((void)run_experiment(strict, SchemeKind::kCoEfficient),
               std::runtime_error);
}

}  // namespace
}  // namespace coeff::core
