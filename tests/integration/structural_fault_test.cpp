// Structural-fault acceptance: a scheduled single-channel blackout plus
// one node crash/restart must leave CoEfficient's static segment with
// zero deadline misses (dual-channel failover + membership re-planning),
// while FSPEC's miss ratio rises; the whole history is deterministic per
// seed and the recorded trace survives the structural linter rules.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/trace_lint.hpp"
#include "core/experiment.hpp"
#include "core/fspec.hpp"
#include "core/sweep.hpp"
#include "fault/fault_model.hpp"
#include "fault/structural.hpp"
#include "flexray/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace coeff::core {
namespace {

using flexray::ChannelId;

/// Four nodes, one 400-bit static message each, period = deadline =
/// one 1 ms cycle — every node is expected in every cycle, so a crash
/// is visible immediately and a failover must land within the deadline.
net::MessageSet four_node_statics() {
  net::MessageSet set;
  for (int n = 0; n < 4; ++n) {
    net::Message m;
    m.id = n + 1;
    m.node = n;
    m.kind = net::MessageKind::kStatic;
    m.period = sim::millis(1);
    m.deadline = sim::millis(1);
    m.size_bits = 400;
    set.add(m);
  }
  return set;
}

flexray::ClusterConfig four_node_cluster() {
  flexray::ClusterConfig cfg;
  cfg.g_macro_per_cycle = units::Macroticks{1000};
  cfg.g_number_of_static_slots = 6;
  cfg.gd_static_slot = units::Macroticks{50};
  cfg.g_number_of_minislots = 20;
  cfg.bus_bit_rate = 50'000'000;
  cfg.num_nodes = 4;
  return cfg;
}

/// Blackout of channel A over cycles [5, 20), node 1 down over
/// cycles [10, 30); the two faults overlap during [10, 20).
fault::StructuralFaultConfig acceptance_faults() {
  fault::StructuralFaultConfig structural;
  structural.blackouts.push_back(
      {ChannelId::kA, sim::millis(5), sim::millis(20)});
  structural.crashes.push_back(
      {units::NodeId{1}, sim::millis(10), sim::millis(30)});
  return structural;
}

ExperimentConfig acceptance_config(double ber) {
  ExperimentConfig config;
  config.cluster = four_node_cluster();
  config.statics = four_node_statics();
  config.ber = ber;
  config.batch_window = sim::millis(50);
  config.structural = acceptance_faults();
  config.seed = 7;
  return config;
}

TEST(StructuralFaultTest, CoEfficientRidesOutBlackoutAndCrash) {
  const auto result = run_experiment(acceptance_config(0.0),
                                     SchemeKind::kCoEfficient);
  ASSERT_TRUE(result.drained);

  // The headline guarantee: no live producer misses a static deadline.
  EXPECT_EQ(result.run.statics.missed, 0);
  EXPECT_GT(result.run.statics.delivered, 0);

  // The dark home channel was survived by re-homing onto channel B...
  EXPECT_GT(result.run.failovers, 0);
  EXPECT_GT(result.run.failover_latency.count(), 0);
  // ...not by clocking frames into the dead wire.
  EXPECT_EQ(result.run.frames_lost, 0);

  // The crashed node's instances are availability losses, not
  // scheduling misses.
  EXPECT_GT(result.run.statics.source_lost, 0);

  // Structural bookkeeping: one crash, one reintegration, one outage,
  // and a membership re-plan on each edge of the crash window.
  EXPECT_EQ(result.run.node_crashes, 1);
  EXPECT_EQ(result.run.node_restarts, 1);
  EXPECT_EQ(result.run.channel_outages, 1);
  EXPECT_EQ(result.run.channel_down_cycles, 15);
  EXPECT_EQ(result.run.membership_replans, 2);
}

TEST(StructuralFaultTest, FspecMissRatioRisesUnderBlackout) {
  // BER high enough that single-channel operation visibly hurts
  // (~33% frame-corruption odds on a 400-bit frame).
  auto blackout = acceptance_config(1e-3);
  blackout.structural.crashes.clear();  // isolate the channel fault
  auto clean = blackout;
  clean.structural = {};

  const auto dark = run_experiment(blackout, SchemeKind::kFspec);
  const auto base = run_experiment(clean, SchemeKind::kFspec);

  // FSPEC drains its owed channel-A mirrors into the dead wire and
  // pays for it in deadline misses.
  EXPECT_GT(dark.run.frames_lost, 0);
  EXPECT_GT(dark.run.statics.missed, base.run.statics.missed);
  EXPECT_GT(dark.run.statics.miss_ratio(), base.run.statics.miss_ratio());
}

TEST(StructuralFaultTest, CoEfficientBeatsFspecUnderStructuralFaults) {
  auto config = acceptance_config(1e-3);
  // Give the static segment idle headroom: CoEfficient's advantage is
  // reusing idle slots as retransmission slack, which a fully-packed
  // 6-slot segment cannot show.
  config.cluster.g_number_of_static_slots = 12;
  const auto coeff = run_experiment(config, SchemeKind::kCoEfficient);
  const auto fspec = run_experiment(config, SchemeKind::kFspec);
  EXPECT_LT(coeff.run.statics.miss_ratio(), fspec.run.statics.miss_ratio());
}

TEST(StructuralFaultTest, StructuralHistoryIsDeterministicPerSeed) {
  const auto config = acceptance_config(1e-3);
  const auto a = run_experiment(config, SchemeKind::kCoEfficient);
  const auto b = run_experiment(config, SchemeKind::kCoEfficient);
  EXPECT_EQ(a.run.summary(), b.run.summary());
}

TEST(StructuralFaultTest, StochasticCrashesAreDeterministicPerSeed) {
  auto config = acceptance_config(1e-4);
  config.structural = {};
  config.structural.stochastic_crashes.crashes_per_second = 100.0;
  config.structural.stochastic_crashes.mean_time_to_repair = sim::millis(5);
  config.structural.stochastic_crashes.horizon = sim::millis(50);
  config.structural.stochastic_crashes.num_nodes = 4;

  const auto a = run_experiment(config, SchemeKind::kCoEfficient);
  const auto b = run_experiment(config, SchemeKind::kCoEfficient);
  EXPECT_GT(a.run.node_crashes, 0);
  EXPECT_EQ(a.run.summary(), b.run.summary());

  auto reseeded = config;
  reseeded.seed = 8;
  const auto c = run_experiment(reseeded, SchemeKind::kCoEfficient);
  EXPECT_NE(a.run.summary(), c.run.summary());
}

TEST(StructuralFaultTest, TraceSurvivesStructuralLinterRules) {
  sim::Trace trace;
  auto config = acceptance_config(0.0);
  config.trace = &trace;
  const auto result = run_experiment(config, SchemeKind::kCoEfficient);
  ASSERT_TRUE(result.drained);

  // The structural story actually reached the trace.
  EXPECT_EQ(trace.count(sim::TraceKind::kNodeCrash), 1u);
  EXPECT_EQ(trace.count(sim::TraceKind::kNodeRestart), 1u);
  EXPECT_EQ(trace.count(sim::TraceKind::kChannelDown), 1u);
  EXPECT_EQ(trace.count(sim::TraceKind::kChannelUp), 1u);
  EXPECT_GT(trace.count(sim::TraceKind::kFailover), 0u);

  analysis::TraceLintInput input;
  input.trace = &trace;
  input.cluster = &config.cluster;
  input.discipline = analysis::RetxDiscipline::kPlanned;
  const auto report = analysis::lint_trace(input);
  EXPECT_EQ(report.count(analysis::Severity::kError), 0u)
      << report.render_text();
}

TEST(StructuralFaultTest, ReplicaVotingAcceptsCleanRuns) {
  auto config = acceptance_config(0.0);
  config.structural = {};
  config.vote_replicas = 3;
  const auto result = run_experiment(config, SchemeKind::kCoEfficient);
  ASSERT_TRUE(result.drained);
  EXPECT_GT(result.run.votes_accepted, 0);
  EXPECT_EQ(result.run.votes_rejected, 0);
  EXPECT_EQ(result.run.statics.missed, 0);
  // k-replica voting sends at least k copies of every accepted instance.
  EXPECT_GE(result.run.statics.copies_sent, 3 * result.run.votes_accepted);
}

TEST(StructuralFaultTest, ReplicaVotingRejectsPoisonedChannel) {
  // At BER 5e-2 a 400-bit frame is corrupted with near certainty: no
  // majority of clean replicas can form and nothing may be accepted.
  auto config = acceptance_config(5e-2);
  config.structural = {};
  config.vote_replicas = 3;
  const auto result = run_experiment(config, SchemeKind::kCoEfficient);
  EXPECT_GT(result.run.votes_rejected, 0);
  EXPECT_EQ(result.run.votes_accepted, 0);
  EXPECT_EQ(result.run.statics.delivered, 0);
}

// --- Burst / common-mode physics x structural faults -------------------
//
// The fault models promise an independent verdict stream per channel.
// Blacking out channel A must therefore leave channel B's verdict
// history bit-identical: the surviving channel's physics cannot be
// perturbed by the dead one. FSPEC mirrors unconditionally, so its
// channel-B schedule is the same with and without the blackout.

class SurvivingChannelTest : public ::testing::Test {
 protected:
  /// Runs 40 cycles of FSPEC under `model`, optionally with a channel-A
  /// blackout over cycles [5, 25), and returns (B verdicts, B faults).
  std::pair<std::int64_t, std::int64_t> run(fault::FaultModel& model,
                                            bool blackout) {
    sim::Engine engine;
    FspecScheduler sched(four_node_cluster(), four_node_statics(), {},
                         sim::millis(40), {});
    flexray::Cluster cluster(engine, four_node_cluster(), sched,
                             model.as_corruption_fn(), nullptr);
    fault::StructuralFaultConfig structural;
    std::unique_ptr<fault::NodeFaultModel> provider;
    if (blackout) {
      structural.blackouts.push_back(
          {ChannelId::kA, sim::millis(5), sim::millis(25)});
      provider = std::make_unique<fault::NodeFaultModel>(structural, 1);
      cluster.set_fault_provider(provider.get());
    }
    cluster.run_cycles(40);
    return {model.channel_verdicts(ChannelId::kB),
            model.channel_faults(ChannelId::kB)};
  }
};

TEST_F(SurvivingChannelTest, GilbertElliottStreamUnperturbedByBlackout) {
  fault::GilbertElliottParams params;
  params.p_good_to_bad = 0.05;
  params.p_bad_to_good = 0.2;
  params.ber_good = 1e-6;
  params.ber_bad = 2e-3;

  fault::GilbertElliottModel clean(params, 3);
  fault::GilbertElliottModel dark(params, 3);
  const auto base = run(clean, /*blackout=*/false);
  const auto survivor = run(dark, /*blackout=*/true);

  EXPECT_EQ(survivor.first, base.first);
  EXPECT_EQ(survivor.second, base.second);
  // Sanity: the dead wire really did draw fewer verdicts.
  EXPECT_LT(dark.channel_verdicts(ChannelId::kA),
            clean.channel_verdicts(ChannelId::kA));
}

TEST_F(SurvivingChannelTest, CommonModeStreamUnperturbedByBlackout) {
  fault::CommonModeModel clean(2e-3, 0.5, 3);
  fault::CommonModeModel dark(2e-3, 0.5, 3);
  const auto base = run(clean, /*blackout=*/false);
  const auto survivor = run(dark, /*blackout=*/true);

  EXPECT_EQ(survivor.first, base.first);
  EXPECT_EQ(survivor.second, base.second);
  EXPECT_LT(dark.channel_verdicts(ChannelId::kA),
            clean.channel_verdicts(ChannelId::kA));
}

// --- Sweep determinism under structural faults -------------------------

TEST(StructuralFaultTest, SweepJobsInvariantWithStructuralFaults) {
  std::vector<SweepCell> cells;
  for (auto scheme : {SchemeKind::kCoEfficient, SchemeKind::kFspec}) {
    for (std::uint64_t seed : {7ULL, 8ULL, 9ULL}) {
      SweepCell cell;
      cell.config = acceptance_config(1e-3);
      cell.config.seed = seed;
      cell.scheme = scheme;
      cell.label = std::string(to_string(scheme)) + "/seed=" +
                   std::to_string(seed);
      cells.push_back(std::move(cell));
    }
  }

  const auto serial = SweepRunner(1).run(cells);
  const auto parallel = SweepRunner(4).run(cells);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].label, parallel.cells[i].label);
    EXPECT_EQ(serial.cells[i].result.run.summary(),
              parallel.cells[i].result.run.summary())
        << serial.cells[i].label;
  }
}

}  // namespace
}  // namespace coeff::core
