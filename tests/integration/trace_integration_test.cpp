// Trace integration: a real cluster run must leave a coherent,
// chronologically ordered protocol trace.
#include <gtest/gtest.h>

#include "core/coefficient.hpp"
#include "fault/injector.hpp"
#include "flexray/cluster.hpp"
#include "sim/engine.hpp"

namespace coeff::core {
namespace {

net::MessageSet one_static_message() {
  net::Message m;
  m.id = 1;
  m.node = 0;
  m.kind = net::MessageKind::kStatic;
  m.period = sim::millis(1);
  m.deadline = sim::millis(1);
  m.size_bits = 400;
  return net::MessageSet({m});
}

flexray::ClusterConfig tiny_cluster() {
  flexray::ClusterConfig cfg;
  cfg.g_macro_per_cycle = units::Macroticks{1000};
  cfg.g_number_of_static_slots = 4;
  cfg.gd_static_slot = units::Macroticks{50};
  cfg.g_number_of_minislots = 20;
  cfg.bus_bit_rate = 50'000'000;
  cfg.num_nodes = 2;
  return cfg;
}

TEST(TraceIntegrationTest, CleanRunTracesCycleAndTxEvents) {
  sim::Engine engine;
  sim::Trace trace;
  CoEfficientScheduler sched(tiny_cluster(), one_static_message(), {},
                             sim::millis(10), {});
  fault::FaultInjector injector(0.0, 1);
  flexray::Cluster cluster(engine, tiny_cluster(), sched,
                           injector.as_corruption_fn(), &trace);
  cluster.run_cycles(10);

  EXPECT_EQ(trace.count(sim::TraceKind::kCycleStart), 10u);
  EXPECT_EQ(trace.count(sim::TraceKind::kTxSuccess), 10u);
  EXPECT_EQ(trace.count(sim::TraceKind::kTxCorrupted), 0u);

  // Chronological order.
  sim::Time last;
  for (const auto& record : trace.records()) {
    EXPECT_GE(record.at, last);
    last = record.at;
  }
  // The dump names the events.
  EXPECT_NE(trace.dump().find("tx_success"), std::string::npos);
}

TEST(TraceIntegrationTest, CorruptedRunTracesFaults) {
  sim::Engine engine;
  sim::Trace trace;
  CoEfficientScheduler sched(tiny_cluster(), one_static_message(), {},
                             sim::millis(10), {});
  fault::FaultInjector injector(1.0, 1);
  flexray::Cluster cluster(engine, tiny_cluster(), sched,
                           injector.as_corruption_fn(), &trace);
  cluster.run_cycles(5);
  EXPECT_EQ(trace.count(sim::TraceKind::kTxCorrupted), 5u);
  EXPECT_EQ(trace.count(sim::TraceKind::kTxSuccess), 0u);
}

TEST(TraceIntegrationTest, DisabledTraceCostsNothing) {
  sim::Engine engine;
  sim::Trace trace;
  trace.set_enabled(false);
  CoEfficientScheduler sched(tiny_cluster(), one_static_message(), {},
                             sim::millis(10), {});
  fault::FaultInjector injector(0.0, 1);
  flexray::Cluster cluster(engine, tiny_cluster(), sched,
                           injector.as_corruption_fn(), &trace);
  cluster.run_cycles(5);
  EXPECT_TRUE(trace.records().empty());
}

}  // namespace
}  // namespace coeff::core
