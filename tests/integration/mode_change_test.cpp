// Acceptance scenario for the mixed-criticality mode-change protocol
// (DESIGN.md §16): a BER burst (step up at 100 ms, back down at 250 ms)
// drives NORMAL -> DEGRADED within the monitor window, low-criticality
// dynamics are shed at cycle boundaries while the safety statics keep
// their slots, and once the wire calms down the protocol returns to
// NORMAL and matches up the shed backlog in bounded bursts. The whole
// trajectory must be byte-identical across the compiled and interpreted
// engines, and the recorded trace must survive the mode-protocol linter
// rules.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/trace_lint.hpp"
#include "core/experiment.hpp"
#include "net/workloads.hpp"
#include "sched/criticality.hpp"
#include "sim/random.hpp"
#include "sim/trace.hpp"

namespace coeff::core {
namespace {

/// BBW statics + SAE aperiodics on the 1 ms application cluster. The
/// monitor's re-plan cooldown is parked out of reach so the drift latch
/// feeds the mode machine without a plan swap resetting the ratio
/// mid-burst — the mode trajectory is the thing under test.
ExperimentConfig burst_config(sim::Trace* trace) {
  ExperimentConfig config;
  config.cluster = paper_cluster_apps();
  config.statics = net::brake_by_wire();
  sim::Rng rng(5);
  net::SaeAperiodicOptions sae;
  sae.count = 12;
  config.dynamics = net::sae_aperiodic(sae, rng);
  config.ber = 1e-7;
  config.sil = fault::Sil::kSil3;
  config.batch_window = sim::millis(400);  // 400 cycles at 1 ms/cycle
  config.seed = 17;
  config.ber_step_at = sim::millis(100);
  config.ber_step = 2e-5;
  config.ber_step2_at = sim::millis(250);
  config.ber_step2 = 1e-7;
  config.enable_monitor = true;
  config.monitor.window_cycles = 50;
  config.monitor.min_window_frames = 200;
  config.monitor.trigger_factor = 5.0;
  config.monitor.cooldown_cycles = 1000000;
  config.mode_policy = *sched::parse_mode_policy("aggressive,window=400");
  config.power.enabled = true;
  config.trace = trace;
  return config;
}

std::set<int> dynamic_ids(const ExperimentConfig& config) {
  std::set<int> ids;
  for (const auto& m : config.dynamics.messages()) ids.insert(m.id);
  return ids;
}

std::string trace_csv(const sim::Trace& trace) {
  std::string out = "at_ns,kind,a,b,c,d,note\n";
  for (const auto& r : trace.records()) {
    out += std::to_string(r.at.ns());
    out += ',';
    out += sim::to_string(r.kind);
    out += ',';
    out += std::to_string(r.a);
    out += ',';
    out += std::to_string(r.b);
    out += ',';
    out += std::to_string(r.c);
    out += ',';
    out += std::to_string(r.d);
    out += ',';
    out += r.note;
    out += '\n';
  }
  return out;
}

TEST(ModeChangeTest, BurstDegradesShedsAndMatchesUp) {
  sim::Trace trace;
  const auto config = burst_config(&trace);
  const auto result = run_experiment(config, SchemeKind::kCoEfficient);
  ASSERT_TRUE(result.drained);

  // The burst degraded the cluster and the calm window recovered it:
  // at least one escalation and one step back down, ending in NORMAL.
  EXPECT_GE(result.run.mode_changes, 2);
  EXPECT_EQ(result.run.final_mode, 0);
  EXPECT_GT(result.run.mode_cycles_l1, 0);
  EXPECT_GT(result.run.mode_cycles_normal, 0);

  // First transition: NORMAL -> DEGRADED-L1, at a cycle boundary inside
  // the monitor window after the step at cycle 100.
  std::vector<sim::TraceRecord> changes;
  for (const auto& r : trace.records()) {
    if (r.kind == sim::TraceKind::kModeChange) changes.push_back(r);
  }
  ASSERT_FALSE(changes.empty());
  EXPECT_EQ(changes.front().a, 0);
  EXPECT_EQ(changes.front().b, 1);
  EXPECT_GT(changes.front().c, 100);
  EXPECT_LE(changes.front().c, 100 + config.monitor.window_cycles + 25);

  // Shedding hit only low-criticality dynamics, never the statics.
  EXPECT_GT(result.run.mode_sheds, 0);
  const auto dyn = dynamic_ids(config);
  for (const auto& r : trace.records()) {
    if (r.kind != sim::TraceKind::kShedByMode) continue;
    EXPECT_TRUE(dyn.count(static_cast<int>(r.a)) > 0) << "shed id " << r.a;
    EXPECT_TRUE(r.c == 1 || r.c == 2) << "shed outside degraded mode";
    EXPECT_EQ(r.d, 0) << "shed a non-low message in mode " << r.c;
  }
  // Statics kept flying through the burst.
  EXPECT_GT(result.run.statics.delivered, 0);

  // Match-up: with the window parked at 400 cycles nothing is
  // abandoned, the whole backlog is re-admitted after the recovery
  // window, and the trace agrees with the counters.
  EXPECT_GT(result.run.matchups, 0);
  EXPECT_EQ(result.run.matchup_abandoned, 0);
  EXPECT_EQ(trace.count(sim::TraceKind::kMatchUp),
            static_cast<std::size_t>(result.run.matchups));
  EXPECT_EQ(trace.count(sim::TraceKind::kModeChange),
            static_cast<std::size_t>(result.run.mode_changes));
  EXPECT_EQ(trace.count(sim::TraceKind::kShedByMode),
            static_cast<std::size_t>(result.run.mode_sheds));

  // The energy meter accounted every cycle and sleeping in degraded
  // modes saved something.
  EXPECT_GT(result.run.energy_total_uj, 0.0);
  EXPECT_EQ(result.run.energy_cycles, result.cycles_run);
  EXPECT_GE(result.run.energy_sleep_saved_uj, 0.0);
}

TEST(ModeChangeTest, MediumCriticalityRidesOutL1) {
  // Give two dynamics an explicit medium level: DEGRADED-L1 admits
  // medium (floor = medium) and sheds only the lows; DEGRADED-L2 sheds
  // both. Every shed record must respect the admission floor.
  sim::Trace trace;
  auto config = burst_config(&trace);
  sched::CriticalitySpec spec;
  spec.static_default = net::Criticality::kHigh;
  spec.dynamic_default = net::Criticality::kLow;
  int promoted = 0;
  for (const auto& m : config.dynamics.messages()) {
    if (promoted < 2) {
      spec.overrides.emplace_back(m.id, net::Criticality::kMedium);
      ++promoted;
    }
  }
  ASSERT_EQ(promoted, 2);
  config.statics = sched::with_criticality(config.statics, spec);
  config.dynamics = sched::with_criticality(config.dynamics, spec);
  const auto result = run_experiment(config, SchemeKind::kCoEfficient);
  ASSERT_TRUE(result.drained);
  EXPECT_GT(result.run.mode_sheds, 0);
  for (const auto& r : trace.records()) {
    if (r.kind != sim::TraceKind::kShedByMode) continue;
    if (r.c == 1) {
      EXPECT_EQ(r.d, 0) << "L1 must admit medium criticality";
    } else {
      EXPECT_EQ(r.c, 2);
      EXPECT_LE(r.d, 1) << "high criticality is never shed";
    }
  }
}

TEST(ModeChangeTest, TrajectoryIsByteIdenticalAcrossEngines) {
  sim::Trace compiled_trace;
  auto compiled_config = burst_config(&compiled_trace);
  compiled_config.engine = flexray::EngineMode::kCompiled;
  const auto compiled =
      run_experiment(compiled_config, SchemeKind::kCoEfficient);

  sim::Trace interpreted_trace;
  auto interpreted_config = burst_config(&interpreted_trace);
  interpreted_config.engine = flexray::EngineMode::kInterpreted;
  const auto interpreted =
      run_experiment(interpreted_config, SchemeKind::kCoEfficient);

  EXPECT_EQ(trace_csv(compiled_trace), trace_csv(interpreted_trace));
  EXPECT_EQ(compiled.run.summary(), interpreted.run.summary());
  EXPECT_EQ(compiled.run.mode_changes, interpreted.run.mode_changes);
  EXPECT_EQ(compiled.run.mode_sheds, interpreted.run.mode_sheds);
  EXPECT_EQ(compiled.run.matchups, interpreted.run.matchups);
  EXPECT_EQ(compiled.run.energy_total_uj, interpreted.run.energy_total_uj);
  EXPECT_GT(compiled.compiled_cycles, 0);
  EXPECT_EQ(interpreted.compiled_cycles, 0);
}

TEST(ModeChangeTest, RecordedTraceSurvivesTheModeLinterRules) {
  sim::Trace trace;
  const auto config = burst_config(&trace);
  const auto result = run_experiment(config, SchemeKind::kCoEfficient);
  ASSERT_TRUE(result.drained);
  ASSERT_GT(trace.count(sim::TraceKind::kModeChange), 0u);
  ASSERT_GT(trace.count(sim::TraceKind::kMatchUp), 0u);

  analysis::TraceLintInput input;
  input.trace = &trace;
  input.cluster = &config.cluster;
  input.discipline = analysis::RetxDiscipline::kPlanned;
  const auto report = analysis::lint_trace(input);
  EXPECT_EQ(report.count(analysis::Severity::kError), 0u)
      << report.render_text();
}

}  // namespace
}  // namespace coeff::core
