// Differential acceptance for the compiled cycle engine (DESIGN.md §12):
// the compiled and interpreted walks must be observationally identical —
// byte-identical trace CSVs and RunStats — across schemes, fault
// models, structural faults, the online monitor, and sweep parallelism.
// Speed is allowed to differ; behaviour is not.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "fault/structural.hpp"
#include "net/workloads.hpp"
#include "sim/trace.hpp"

namespace coeff::core {
namespace {

/// Render a trace as CSV. Differential assertions compare these
/// strings wholesale, so any drift in record order, timestamps, tags or
/// notes between the two engines fails loudly with a real diff.
std::string trace_csv(const sim::Trace& trace) {
  std::string out = "at_ns,kind,a,b,c,d,note\n";
  for (const auto& r : trace.records()) {
    out += std::to_string(r.at.ns());
    out += ',';
    out += sim::to_string(r.kind);
    out += ',';
    out += std::to_string(r.a);
    out += ',';
    out += std::to_string(r.b);
    out += ',';
    out += std::to_string(r.c);
    out += ',';
    out += std::to_string(r.d);
    out += ',';
    out += r.note;
    out += '\n';
  }
  return out;
}

struct EngineRun {
  ExperimentResult result;
  std::string csv;
};

EngineRun run_with_engine(ExperimentConfig config, SchemeKind scheme,
                          flexray::EngineMode engine) {
  sim::Trace trace;
  config.engine = engine;
  config.trace = &trace;
  EngineRun run;
  run.result = run_experiment(config, scheme);
  run.csv = trace_csv(trace);
  return run;
}

/// The workload shared by the grid: BBW statics + SAE aperiodics on the
/// 1 ms application cluster, hot enough BER that fault verdicts matter.
ExperimentConfig grid_config() {
  ExperimentConfig config;
  config.cluster = paper_cluster_apps();
  config.statics = net::brake_by_wire();
  sim::Rng rng(3);
  net::SaeAperiodicOptions sae;
  sae.static_slots = static_cast<int>(config.cluster.g_number_of_static_slots);
  sae.count = 20;
  config.dynamics = net::sae_aperiodic(sae, rng);
  config.ber = 1e-5;
  config.sil = fault::Sil::kSil3;
  config.batch_window = sim::millis(60);
  config.seed = 11;
  return config;
}

void expect_identical(const EngineRun& compiled, const EngineRun& interpreted) {
  // Byte-identical trace CSV is the strongest check: every wire event,
  // verdict, failover and rebuild at the same timestamp with the same
  // tags.
  EXPECT_EQ(compiled.csv, interpreted.csv);
  const ExperimentResult& c = compiled.result;
  const ExperimentResult& i = interpreted.result;
  EXPECT_EQ(c.run.summary(), i.run.summary());
  EXPECT_EQ(c.run.overall_miss_ratio(), i.run.overall_miss_ratio());
  EXPECT_EQ(c.run.statics.copies_corrupted, i.run.statics.copies_corrupted);
  EXPECT_EQ(c.run.retransmission_copies_sent, i.run.retransmission_copies_sent);
  EXPECT_EQ(c.run.slack_slots_stolen, i.run.slack_slots_stolen);
  EXPECT_EQ(c.run.plan_swaps, i.run.plan_swaps);
  EXPECT_EQ(c.run.failovers, i.run.failovers);
  EXPECT_EQ(c.run.frames_lost, i.run.frames_lost);
  EXPECT_EQ(c.run.running_time.ns(), i.run.running_time.ns());
  EXPECT_EQ(c.cycles_run, i.cycles_run);
  EXPECT_EQ(c.drained, i.drained);
  EXPECT_EQ(c.final_plan.copies, i.final_plan.copies);
  // And the comparison must not be vacuous.
  EXPECT_GT(c.compiled_cycles, 0);
  EXPECT_EQ(i.compiled_cycles, 0);
}

TEST(EngineDifferentialTest, SchemeByFaultModelGridIsByteIdentical) {
  for (const auto scheme :
       {SchemeKind::kCoEfficient, SchemeKind::kFspec, SchemeKind::kHosa}) {
    for (const auto kind :
         {fault::FaultModelKind::kIid, fault::FaultModelKind::kGilbertElliott,
          fault::FaultModelKind::kCommonMode,
          fault::FaultModelKind::kIidCounter}) {
      SCOPED_TRACE(std::string(to_string(scheme)) + " x " +
                   fault::to_string(kind));
      ExperimentConfig config = grid_config();
      config.fault_model.kind = kind;
      config.fault_model.common_fraction = 0.5;
      config.fault_model.gilbert_elliott.p_good_to_bad = 0.02;
      const auto compiled =
          run_with_engine(config, scheme, flexray::EngineMode::kCompiled);
      const auto interpreted =
          run_with_engine(config, scheme, flexray::EngineMode::kInterpreted);
      expect_identical(compiled, interpreted);
      // Clean topology: every cycle took the compiled path.
      EXPECT_EQ(compiled.result.compiled_cycles,
                compiled.result.cycles_run);
    }
  }
}

TEST(EngineDifferentialTest, MonitorAndBerStepStayIdentical) {
  ExperimentConfig config = grid_config();
  config.batch_window = sim::millis(200);
  config.ber = 1e-7;
  config.ber_step_at = sim::millis(60);
  config.ber_step = 1e-4;
  config.enable_monitor = true;
  config.monitor.window_cycles = 50;
  config.monitor.min_window_frames = 200;
  config.monitor.cooldown_cycles = 50;
  const auto compiled = run_with_engine(config, SchemeKind::kCoEfficient,
                                        flexray::EngineMode::kCompiled);
  const auto interpreted = run_with_engine(config, SchemeKind::kCoEfficient,
                                           flexray::EngineMode::kInterpreted);
  expect_identical(compiled, interpreted);
  // The scenario actually re-planned, so the kPlanSwap -> template
  // rebuild path was exercised, not just the steady state.
  EXPECT_GT(compiled.result.run.plan_swaps, 0);
}

// Structural faults force the compiled engine back onto the interpreted
// path in exactly the cycles a wire-level fault could touch; the
// failover/voting semantics of the fault-domain layer must survive the
// mode switches byte for byte.
TEST(EngineDifferentialTest, StructuralFaultFallbackStaysIdentical) {
  for (const auto scheme : {SchemeKind::kCoEfficient, SchemeKind::kFspec}) {
    SCOPED_TRACE(to_string(scheme));
    ExperimentConfig config = grid_config();
    config.ber = 1e-6;
    config.structural.blackouts.push_back(
        {flexray::ChannelId::kA, sim::millis(5), sim::millis(20)});
    config.structural.crashes.push_back(
        {units::NodeId{1}, sim::millis(10), sim::millis(30)});
    fault::BabbleWindow babble;
    babble.babbler = units::NodeId{2};
    babble.slot = units::SlotId{2};
    babble.channel = flexray::ChannelId::kB;
    babble.at = sim::millis(8);
    babble.until = sim::millis(12);
    config.structural.babbles.push_back(babble);
    config.vote_replicas = scheme == SchemeKind::kCoEfficient ? 3 : 0;
    const auto compiled =
        run_with_engine(config, scheme, flexray::EngineMode::kCompiled);
    const auto interpreted =
        run_with_engine(config, scheme, flexray::EngineMode::kInterpreted);
    EXPECT_EQ(compiled.csv, interpreted.csv);
    EXPECT_EQ(compiled.result.run.summary(), interpreted.result.run.summary());
    EXPECT_EQ(compiled.result.run.failovers, interpreted.result.run.failovers);
    EXPECT_EQ(compiled.result.run.membership_replans,
              interpreted.result.run.membership_replans);
    EXPECT_EQ(compiled.result.cycles_run, interpreted.result.cycles_run);
    // Babble window inside [8,12) ms: those cycles must have fallen
    // back, the rest must have compiled.
    EXPECT_GT(compiled.result.compiled_cycles, 0);
    EXPECT_LT(compiled.result.compiled_cycles, compiled.result.cycles_run);
  }
}

// Sweep parallelism on top of the compiled engine: jobs=1 and jobs=4
// must agree with each other and with the interpreted engine.
TEST(EngineDifferentialTest, SweepJobsOneVsFourMatchAcrossEngines) {
  std::vector<SweepCell> compiled_cells;
  std::vector<SweepCell> interpreted_cells;
  for (const auto scheme : {SchemeKind::kCoEfficient, SchemeKind::kFspec}) {
    for (const std::uint64_t seed : {11ULL, 29ULL}) {
      ExperimentConfig config = grid_config();
      config.seed = seed;
      const std::string label =
          std::string(to_string(scheme)) + "/seed=" + std::to_string(seed);
      config.engine = flexray::EngineMode::kCompiled;
      compiled_cells.push_back({config, scheme, label});
      config.engine = flexray::EngineMode::kInterpreted;
      interpreted_cells.push_back({config, scheme, label});
    }
  }
  const SweepReport serial = SweepRunner(1).run(compiled_cells);
  const SweepReport parallel = SweepRunner(4).run(compiled_cells);
  const SweepReport reference = SweepRunner(4).run(interpreted_cells);
  ASSERT_EQ(serial.cells.size(), compiled_cells.size());
  for (std::size_t i = 0; i < compiled_cells.size(); ++i) {
    SCOPED_TRACE(compiled_cells[i].label);
    const ExperimentResult& a = serial.cells[i].result;
    const ExperimentResult& b = parallel.cells[i].result;
    const ExperimentResult& r = reference.cells[i].result;
    EXPECT_EQ(a.run.summary(), b.run.summary());
    EXPECT_EQ(a.run.summary(), r.run.summary());
    EXPECT_EQ(a.cycles_run, b.cycles_run);
    EXPECT_EQ(a.cycles_run, r.cycles_run);
    EXPECT_EQ(a.run.overall_miss_ratio(), r.run.overall_miss_ratio());
    EXPECT_GT(a.compiled_cycles, 0);
    EXPECT_EQ(r.compiled_cycles, 0);
  }
}

}  // namespace
}  // namespace coeff::core
