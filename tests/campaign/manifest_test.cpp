// Manifest roundtrip + rejection tests: the write-ahead identity record
// must survive a rename-based rewrite exactly and refuse anything torn,
// tampered, or from a different format version.
#include "campaign/manifest.hpp"

#include <gtest/gtest.h>

#include <string>

#include "campaign/checkpoint.hpp"

namespace coeff::campaign {
namespace {

CampaignManifest sample() {
  CampaignManifest manifest;
  manifest.name = "nightly";
  manifest.seed = 1234567890123ULL;
  manifest.cells = 5000;
  manifest.shards = 8;
  manifest.isolation = Isolation::kThread;
  manifest.watchdog_ms = 12000;
  manifest.max_attempts = 3;
  manifest.backoff_base_ms = 150;
  manifest.distribution.min_nodes = 4;
  manifest.distribution.max_nodes = 32;
  manifest.distribution.min_util = 0.2;
  manifest.distribution.max_util = 0.55;
  manifest.distribution.schemes = {core::SchemeKind::kCoEfficient,
                                   core::SchemeKind::kHosa};
  manifest.distribution.window_ms = 250;
  return manifest;
}

TEST(Manifest, RendersAndParsesRoundTrip) {
  const CampaignManifest original = sample();
  const ManifestLoad load = parse_manifest(render_manifest(original));
  ASSERT_TRUE(load.ok) << load.error;
  const CampaignManifest& m = load.manifest;
  EXPECT_EQ(m.name, original.name);
  EXPECT_EQ(m.seed, original.seed);
  EXPECT_EQ(m.cells, original.cells);
  EXPECT_EQ(m.shards, original.shards);
  EXPECT_EQ(m.isolation, original.isolation);
  EXPECT_EQ(m.watchdog_ms, original.watchdog_ms);
  EXPECT_EQ(m.max_attempts, original.max_attempts);
  EXPECT_EQ(m.backoff_base_ms, original.backoff_base_ms);
  EXPECT_EQ(m.distribution.min_nodes, original.distribution.min_nodes);
  EXPECT_EQ(m.distribution.max_nodes, original.distribution.max_nodes);
  EXPECT_DOUBLE_EQ(m.distribution.min_util, original.distribution.min_util);
  EXPECT_DOUBLE_EQ(m.distribution.max_util, original.distribution.max_util);
  EXPECT_EQ(m.distribution.schemes, original.distribution.schemes);
  EXPECT_EQ(m.distribution.window_ms, original.distribution.window_ms);
  // Render is canonical: a reparse renders byte-identically.
  EXPECT_EQ(render_manifest(m), render_manifest(original));
}

TEST(Manifest, RejectsBitFlipAnywhere) {
  const std::string bytes = render_manifest(sample());
  // Every sampled flip lands in either the CRC-protected body or the
  // trailer itself; none may parse.
  for (std::size_t i = 0; i < bytes.size(); i += 7) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x20);
    EXPECT_FALSE(parse_manifest(mutated).ok) << "flip at byte " << i;
  }
}

TEST(Manifest, RejectsTruncation) {
  const std::string bytes = render_manifest(sample());
  for (const std::size_t cut : {2u, 8u, 30u}) {
    EXPECT_FALSE(parse_manifest(bytes.substr(0, bytes.size() - cut)).ok)
        << "cut " << cut;
  }
}

TEST(Manifest, RejectsUnknownKeysAndVersions) {
  CampaignManifest manifest = sample();
  std::string bytes = render_manifest(manifest);
  // Unknown key, re-sealed with a fresh CRC so only the schema differs.
  const std::size_t trailer = bytes.rfind("#crc32=");
  std::string body = bytes.substr(0, trailer) + "mystery_key=1\n";
  char crc_line[24];
  std::snprintf(crc_line, sizeof crc_line, "#crc32=%08X", crc32(body));
  EXPECT_FALSE(parse_manifest(body + crc_line + "\n").ok);

  std::string v2 = "coeffcamp-manifest v2\n";
  std::snprintf(crc_line, sizeof crc_line, "#crc32=%08X", crc32(v2));
  EXPECT_FALSE(parse_manifest(v2 + crc_line + "\n").ok);
}

TEST(Manifest, ValidateRejectsNonsense) {
  CampaignManifest manifest = sample();
  manifest.cells = 0;
  EXPECT_THROW(manifest.validate(), std::invalid_argument);
  manifest = sample();
  manifest.shards = 0;
  EXPECT_THROW(manifest.validate(), std::invalid_argument);
  manifest = sample();
  manifest.status = "sideways";
  EXPECT_THROW(manifest.validate(), std::invalid_argument);
  manifest = sample();
  manifest.distribution.min_util = 0.9;  // > max_util
  EXPECT_THROW(manifest.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace coeff::campaign
