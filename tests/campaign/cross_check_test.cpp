// Campaign-side plumbing of the analytic cross-check: the static-
// segment counters ride the JSONL row schema (with tolerant parsing of
// pre-schema rows), and cross_check_prob filters the eligible
// population before re-deriving envelopes.
#include "campaign/cross_check.hpp"

#include <gtest/gtest.h>

#include <string>

#include "analysis/diagnostic.hpp"
#include "campaign/report.hpp"

namespace coeff::campaign {
namespace {

ResultRow ok_row(std::int64_t cell) {
  ResultRow row;
  row.cell = cell;
  row.seed = 7;
  row.status = "ok";
  row.scheme = "coefficient";
  row.fault = "iid";
  row.structural = "none";
  row.nodes = 4;
  row.statics = 8;
  row.released = 1200;
  row.delivered = 1100;
  row.missed = 100;
  row.s_released = 1000;
  row.s_missed = 80;
  return row;
}

TEST(CrossCheck, RowRoundTripCarriesStaticSegmentCounters) {
  const ResultRow row = ok_row(3);
  const std::string line = render_row(row);
  EXPECT_NE(line.find("\"s_released\":1000"), std::string::npos);
  EXPECT_NE(line.find("\"s_missed\":80"), std::string::npos);
  const auto parsed = parse_row(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->s_released, 1000);
  EXPECT_EQ(parsed->s_missed, 80);
}

TEST(CrossCheck, LegacyRowsWithoutStaticCountersParseToZero) {
  // A pre-schema row (older campaign): absent keys default to 0 and the
  // row stays usable — it just drops out of the analytic population.
  const std::string legacy =
      "{\"cell\":1,\"seed\":9,\"status\":\"ok\",\"scheme\":\"hosa\","
      "\"fault\":\"iid\",\"structural\":\"none\",\"nodes\":2,\"statics\":8,"
      "\"dynamics\":0,\"util\":0.2,\"ber\":1e-06,\"released\":10,"
      "\"delivered\":10,\"missed\":0,\"source_lost\":0,\"copies_sent\":0,"
      "\"cycles\":5,\"miss_ratio\":0,\"degraded\":false,\"plan_swaps\":0,"
      "\"failovers\":0,\"frames_lost\":0}";
  const auto parsed = parse_row(legacy);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->s_released, 0);
  EXPECT_EQ(parsed->s_missed, 0);
}

TEST(CrossCheck, GarbledStaticCountersRejectTheRow) {
  std::string line = render_row(ok_row(0));
  const auto pos = line.find("\"s_released\":1000");
  ASSERT_NE(pos, std::string::npos);
  line.replace(pos, 17, "\"s_released\":zzzz");
  EXPECT_FALSE(parse_row(line).has_value());
}

TEST(CrossCheck, FiltersIneligibleRowsAndHonorsCellCap) {
  CampaignManifest manifest;
  manifest.seed = 20260809;
  manifest.cells = 8;

  std::vector<ResultRow> rows;
  rows.push_back(ok_row(0));
  rows.push_back(ok_row(1));
  rows.push_back(ok_row(2));
  ResultRow failed = ok_row(3);
  failed.status = "failed";
  rows.push_back(failed);
  ResultRow structural = ok_row(4);
  structural.structural = "babble";  // model speaks only about channel loss
  rows.push_back(structural);
  ResultRow legacy = ok_row(5);
  legacy.s_released = 0;  // pre-schema row: no static population recorded
  rows.push_back(legacy);

  CrossCheckOptions options;
  options.max_cells = 2;
  analysis::Report report;
  const CrossCheckSummary summary =
      cross_check_prob(manifest, rows, options, report);
  EXPECT_EQ(summary.eligible, 3u);
  EXPECT_EQ(summary.checked, 2u);
  EXPECT_EQ(summary.diverged,
            report.count_rule("analysis.prob-vs-campaign-divergence"));
  // None of these rows recorded a dynamic population (d_released == 0),
  // so the dynamic leg must skip them all — a legacy campaign is never
  // miscounted as clean-measured dynamic evidence.
  EXPECT_EQ(summary.dyn_eligible, 0u);
  EXPECT_EQ(summary.dyn_checked, 0u);
  EXPECT_EQ(summary.dyn_diverged, 0u);
  EXPECT_EQ(report.count_rule("analysis.dyn-vs-campaign-divergence"), 0u);
}

TEST(CrossCheck, DynamicLegCountsOnlyRowsWithRecordedDynamicPopulation) {
  CampaignManifest manifest;
  manifest.seed = 20260809;
  manifest.cells = 8;

  std::vector<ResultRow> rows;
  for (std::int64_t cell = 0; cell < 3; ++cell) {
    ResultRow row = ok_row(cell);
    row.d_released = 400;
    row.d_missed = 0;
    rows.push_back(row);
  }
  ResultRow legacy = ok_row(3);  // d_released stays 0: pre-schema row
  rows.push_back(legacy);

  CrossCheckOptions options;
  options.max_cells = 2;
  analysis::Report report;
  const CrossCheckSummary summary =
      cross_check_prob(manifest, rows, options, report);
  EXPECT_EQ(summary.dyn_eligible, 3u);
  // Capped like the static leg; a regenerated cell without a dynamic
  // message set contributes eligibility but no analytic sample.
  EXPECT_LE(summary.dyn_checked, 2u);
  EXPECT_EQ(summary.dyn_diverged,
            report.count_rule("analysis.dyn-vs-campaign-divergence"));
}

}  // namespace
}  // namespace coeff::campaign
