// Durability unit tests for the campaign checkpoint layer: atomic file
// replacement, CRC-sealed records, torn-tail recovery vs mid-file
// corruption, and writer reopen semantics.
#include "campaign/checkpoint.hpp"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace coeff::campaign {
namespace {

/// Fresh per-test scratch path under the build tree.
std::string scratch(const char* name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string path = std::string("ckpt_") + info->name() + "_" + name;
  (void)::remove(path.c_str());
  return path;
}

CheckpointHeader test_header() {
  CheckpointHeader header;
  header.shard = 1;
  header.shards = 4;
  header.campaign_seed = 99;
  header.cells = 40;
  return header;
}

TEST(AtomicWrite, ReplacesContentCompletely) {
  const std::string path = scratch("file");
  ASSERT_TRUE(atomic_write_file(path, "first contents\n"));
  ASSERT_TRUE(atomic_write_file(path, "second\n"));
  EXPECT_EQ(read_file(path).value_or(""), "second\n");
  // The temp file used for staging must not linger.
  struct stat st{};
  EXPECT_NE(::stat((path + ".tmp").c_str(), &st), 0);
  (void)::remove(path.c_str());
}

TEST(AtomicWrite, FailureLeavesOriginalUntouched) {
  std::string error;
  EXPECT_FALSE(atomic_write_file("no_such_dir/x/y", "data", &error));
  EXPECT_FALSE(error.empty());
}

TEST(RecordSeal, RoundTripsAndRejectsTampering) {
  const std::string sealed = seal_record("I 7 2");
  const auto unsealed = unseal_record(sealed);
  ASSERT_TRUE(unsealed.has_value());
  EXPECT_EQ(*unsealed, "I 7 2");
  std::string tampered = sealed;
  tampered[0] = 'D';
  EXPECT_FALSE(unseal_record(tampered).has_value());
  EXPECT_FALSE(unseal_record("no-crc-separator").has_value());
}

TEST(CheckpointWriter, AppendsAndReloads) {
  const std::string path = scratch("log");
  CheckpointWriter writer;
  ASSERT_TRUE(writer.open(path, test_header(), /*durable=*/false));
  CheckpointRecord intent;
  intent.kind = CheckpointRecordKind::kIntent;
  intent.cell = 5;
  intent.attempt = 1;
  ASSERT_TRUE(writer.append(intent));
  CheckpointRecord done;
  done.kind = CheckpointRecordKind::kDone;
  done.cell = 5;
  ASSERT_TRUE(writer.append(done));
  writer.close();

  const CheckpointLoad load = load_checkpoint(path);
  ASSERT_TRUE(load.ok) << load.error;
  EXPECT_EQ(load.header.shard, 1);
  EXPECT_EQ(load.header.cells, 40);
  ASSERT_EQ(load.records.size(), 2u);
  EXPECT_EQ(load.records[0].kind, CheckpointRecordKind::kIntent);
  EXPECT_EQ(load.records[0].cell, 5);
  EXPECT_EQ(load.records[0].attempt, 1);
  EXPECT_EQ(load.records[1].kind, CheckpointRecordKind::kDone);
  EXPECT_FALSE(load.recovered_torn_tail);
  (void)::remove(path.c_str());
}

TEST(CheckpointWriter, ReopenRejectsMismatchedIdentity) {
  const std::string path = scratch("log");
  {
    CheckpointWriter writer;
    ASSERT_TRUE(writer.open(path, test_header(), false));
  }
  CheckpointHeader other = test_header();
  other.campaign_seed = 100;
  CheckpointWriter writer;
  std::string error;
  EXPECT_FALSE(writer.open(path, other, false, &error));
  EXPECT_FALSE(error.empty());
  (void)::remove(path.c_str());
}

/// The kill -9 signature: the final record is cut mid-bytes. The loader
/// must keep every complete record, flag the torn tail, and stay ok.
TEST(CheckpointTorn, TruncateMidRecordRecoversCleanly) {
  const std::string path = scratch("log");
  {
    CheckpointWriter writer;
    ASSERT_TRUE(writer.open(path, test_header(), false));
    for (std::int64_t cell : {1, 5, 9}) {
      CheckpointRecord record;
      record.kind = CheckpointRecordKind::kIntent;
      record.cell = cell;
      record.attempt = 1;
      ASSERT_TRUE(writer.append(record));
    }
  }
  const std::string full = read_file(path).value();
  for (std::size_t cut = 1; cut < 12; ++cut) {
    ASSERT_TRUE(atomic_write_file(path, full.substr(0, full.size() - cut)));
    const CheckpointLoad load = load_checkpoint(path);
    ASSERT_TRUE(load.ok) << "cut=" << cut << ": " << load.error;
    EXPECT_TRUE(load.recovered_torn_tail) << "cut=" << cut;
    EXPECT_EQ(load.records.size(), 2u) << "cut=" << cut;
    EXPECT_GT(load.torn_bytes, 0u) << "cut=" << cut;
  }
  (void)::remove(path.c_str());
}

/// Corruption *before* the tail is not kill residue — it must be an
/// error, never silently skipped.
TEST(CheckpointTorn, MidFileCorruptionIsAnError) {
  const std::string path = scratch("log");
  {
    CheckpointWriter writer;
    ASSERT_TRUE(writer.open(path, test_header(), false));
    for (std::int64_t cell : {1, 5}) {
      CheckpointRecord record;
      record.kind = CheckpointRecordKind::kDone;
      record.cell = cell;
      ASSERT_TRUE(writer.append(record));
    }
  }
  std::string bytes = read_file(path).value();
  // Flip a byte inside the *first* record line (after the header line).
  const std::size_t first_record = bytes.find('\n') + 3;
  bytes[first_record] = bytes[first_record] == 'X' ? 'Y' : 'X';
  ASSERT_TRUE(atomic_write_file(path, bytes));
  const CheckpointLoad load = load_checkpoint(path);
  EXPECT_FALSE(load.ok);
  EXPECT_GT(load.bad_record_line, 0);
  (void)::remove(path.c_str());
}

TEST(CheckpointParse, GarbageInputsNeverThrow) {
  EXPECT_FALSE(parse_checkpoint("").ok);
  EXPECT_FALSE(parse_checkpoint("not a checkpoint\n").ok);
  EXPECT_FALSE(parse_checkpoint(std::string(4096, '\xff')).ok);
  EXPECT_FALSE(parse_checkpoint("coeffcamp-ckpt v9 shard=0").ok);
  EXPECT_FALSE(load_checkpoint("definitely_missing_file").ok);
}

}  // namespace
}  // namespace coeff::campaign
