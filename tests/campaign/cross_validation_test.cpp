// Cross-validation acceptance suite (DESIGN.md §14 + §15): for the full
// scheme x fault-model cross (3 x 4 = 12 seeded cells), the simulated
// static-segment miss ratio must fall inside the analytic P(miss)
// envelope [lower - slack, upper + slack] — and, with each cell now
// carrying a 12-message SAE-style dynamic set, the simulated dynamic
// miss ratio must fall inside the DynWcrt minislot-contention envelope
// the same way. A divergence here means a verifier or the simulator
// drifted — exactly what rules analysis.prob-vs-campaign-divergence and
// analysis.dyn-vs-campaign-divergence exist to catch.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "analysis/dyn_wcrt.hpp"
#include "analysis/prob_wcrt.hpp"
#include "campaign/cross_check.hpp"
#include "campaign/scenario.hpp"
#include "core/experiment.hpp"
#include "net/workloads.hpp"

namespace coeff::campaign {
namespace {

struct Cell {
  core::SchemeKind scheme;
  fault::FaultModelKind fault;
  std::uint64_t seed;
};

ScenarioSpec make_spec(const Cell& cell, std::int64_t index) {
  ScenarioSpec spec;
  spec.cell = index;
  spec.seed = cell.seed;
  spec.scheme = cell.scheme;
  spec.nodes = 8;
  spec.num_statics = 12;
  spec.num_dynamics = 12;
  spec.utilization = 0.35;
  spec.window_ms = 200;
  spec.fault_model.kind = cell.fault;
  spec.fault_model.ber = 1e-6;
  spec.structural = StructuralKind::kNone;
  return spec;
}

TEST(CrossValidation, SimulatedMissRatioInsideAnalyticEnvelope) {
  const std::vector<core::SchemeKind> schemes = {
      core::SchemeKind::kCoEfficient, core::SchemeKind::kFspec,
      core::SchemeKind::kHosa};
  const std::vector<fault::FaultModelKind> faults = {
      fault::FaultModelKind::kIid, fault::FaultModelKind::kIidCounter,
      fault::FaultModelKind::kGilbertElliott,
      fault::FaultModelKind::kCommonMode};

  const ScenarioGenerator generator(20260809, ScenarioDistribution{});
  std::vector<analysis::DivergenceSample> samples;
  std::vector<analysis::DivergenceSample> dyn_samples;
  std::int64_t index = 0;
  for (const core::SchemeKind scheme : schemes) {
    for (const fault::FaultModelKind fault : faults) {
      const Cell cell{scheme, fault,
                      0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(
                                                  index + 1)};
      const ScenarioSpec spec = make_spec(cell, index);
      const core::ExperimentConfig config = generator.config(spec);
      const core::ExperimentResult measured =
          core::run_experiment(config, spec.scheme);
      ASSERT_GT(measured.run.statics.released, 0)
          << scheme_tag(scheme) << "/" << fault::to_string(fault);
      ASSERT_GT(measured.run.dynamics.released, 0)
          << scheme_tag(scheme) << "/" << fault::to_string(fault);

      const auto setup =
          make_prob_setup(config, spec.scheme, analysis::ProbWcrtOptions{});
      const analysis::ProbWcrtResult analytic =
          analysis::analyze_prob_wcrt(setup->input);
      const auto [lower, upper] = envelope_miss_ratio(analytic);

      const std::string label = std::string(scheme_tag(scheme)) + "/" +
                                fault::to_string(fault);
      analysis::DivergenceSample sample;
      sample.label = label;
      sample.released = measured.run.statics.released;
      sample.missed = measured.run.statics.missed;
      sample.p_lower = lower;
      sample.p_upper = upper;
      samples.push_back(std::move(sample));

      // Dynamic-segment leg of the same cell: the measured FTDMA miss
      // ratio against the DynWcrt minislot-contention envelope.
      ASSERT_TRUE(setup->has_dynamics) << label;
      const analysis::DynWcrtResult dyn_analytic =
          analysis::analyze_dyn_wcrt(setup->dyn_input);
      const auto [dyn_lower, dyn_upper] = dyn_envelope_miss_ratio(dyn_analytic);
      analysis::DivergenceSample dyn_sample;
      dyn_sample.label = label + " (dynamic)";
      dyn_sample.released = measured.run.dynamics.released;
      dyn_sample.missed = measured.run.dynamics.missed;
      dyn_sample.p_lower = dyn_lower;
      dyn_sample.p_upper = dyn_upper;
      dyn_samples.push_back(std::move(dyn_sample));
      ++index;
    }
  }
  ASSERT_EQ(samples.size(), 12u);
  ASSERT_EQ(dyn_samples.size(), 12u);

  analysis::Report report;
  analysis::check_divergence(samples, report);
  analysis::check_divergence(dyn_samples, report,
                             "analysis.dyn-vs-campaign-divergence");
  EXPECT_TRUE(report.empty()) << report.render_text();
}

// The envelope claim must hold on the shipped paper workloads too —
// including bbw, whose boundary-crossing class-A placements make the
// simulator lose instances deterministically (the analytic upper edge
// accounts for exactly that).
TEST(CrossValidation, PaperWorkloadsInsideEnvelope) {
  std::vector<analysis::DivergenceSample> samples;
  std::vector<analysis::DivergenceSample> dyn_samples;
  for (const char* workload : {"bbw", "acc"}) {
    core::ExperimentConfig config;
    config.cluster = core::paper_cluster_apps(25);
    config.statics = std::string(workload) == "bbw" ? net::brake_by_wire()
                                                    : net::adaptive_cruise();
    // The shipped SAE aperiodic mix rides the dynamic segment of both
    // paper workloads (same construction as coeffctl's default).
    sim::Rng rng(0x5DEECE66DULL);
    net::SaeAperiodicOptions sae;
    sae.static_slots =
        static_cast<int>(config.cluster.g_number_of_static_slots);
    config.dynamics = net::sae_aperiodic(sae, rng);
    config.batch_window = sim::millis(200);
    config.ber = 1e-7;
    config.fault_model.ber = 1e-7;
    const core::ExperimentResult measured =
        core::run_experiment(config, core::SchemeKind::kCoEfficient);
    ASSERT_GT(measured.run.statics.released, 0) << workload;
    ASSERT_GT(measured.run.dynamics.released, 0) << workload;

    const auto setup = make_prob_setup(config, core::SchemeKind::kCoEfficient,
                                       analysis::ProbWcrtOptions{});
    const analysis::ProbWcrtResult analytic =
        analysis::analyze_prob_wcrt(setup->input);
    const auto [lower, upper] = envelope_miss_ratio(analytic);
    analysis::DivergenceSample sample;
    sample.label = workload;
    sample.released = measured.run.statics.released;
    sample.missed = measured.run.statics.missed;
    sample.p_lower = lower;
    sample.p_upper = upper;
    samples.push_back(std::move(sample));

    ASSERT_TRUE(setup->has_dynamics) << workload;
    const analysis::DynWcrtResult dyn_analytic =
        analysis::analyze_dyn_wcrt(setup->dyn_input);
    const auto [dyn_lower, dyn_upper] = dyn_envelope_miss_ratio(dyn_analytic);
    analysis::DivergenceSample dyn_sample;
    dyn_sample.label = std::string(workload) + " (dynamic)";
    dyn_sample.released = measured.run.dynamics.released;
    dyn_sample.missed = measured.run.dynamics.missed;
    dyn_sample.p_lower = dyn_lower;
    dyn_sample.p_upper = dyn_upper;
    dyn_samples.push_back(std::move(dyn_sample));
  }
  analysis::Report report;
  analysis::check_divergence(samples, report);
  analysis::check_divergence(dyn_samples, report,
                             "analysis.dyn-vs-campaign-divergence");
  EXPECT_TRUE(report.empty()) << report.render_text();
}

}  // namespace
}  // namespace coeff::campaign
