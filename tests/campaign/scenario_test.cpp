// Scenario factory tests: stateless determinism, distribution bounds,
// UUniFast correctness, and validity of every materialized experiment.
#include "campaign/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/random.hpp"

namespace coeff::campaign {
namespace {

ScenarioDistribution small_dist() {
  ScenarioDistribution dist;
  dist.max_nodes = 16;
  dist.schemes = {core::SchemeKind::kCoEfficient, core::SchemeKind::kFspec,
                  core::SchemeKind::kHosa};
  dist.window_ms = 50;
  return dist;
}

TEST(UUniFast, SumsToTotalAndStaysNonNegative) {
  sim::Rng rng(7);
  for (const int n : {1, 2, 8, 40}) {
    const auto shares = uunifast(n, 0.6, rng);
    ASSERT_EQ(shares.size(), static_cast<std::size_t>(n));
    double sum = 0.0;
    for (const double u : shares) {
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 0.6 + 1e-9);
      sum += u;
    }
    EXPECT_NEAR(sum, 0.6, 1e-9);
  }
}

TEST(ScenarioGenerator, SpecsAreStatelessAndOrderIndependent) {
  const ScenarioGenerator a(42, small_dist());
  const ScenarioGenerator b(42, small_dist());
  // Draw in opposite orders; every cell must come out identical.
  for (std::int64_t cell = 0; cell < 64; ++cell) {
    const ScenarioSpec left = a.spec(cell);
    const ScenarioSpec right = b.spec(63 - (63 - cell));
    EXPECT_EQ(left.seed, right.seed);
    EXPECT_EQ(left.scheme, right.scheme);
    EXPECT_EQ(left.nodes, right.nodes);
    EXPECT_EQ(left.num_statics, right.num_statics);
    EXPECT_EQ(left.fault_model.kind, right.fault_model.kind);
    EXPECT_EQ(left.structural, right.structural);
  }
}

TEST(ScenarioGenerator, DifferentSeedsDiverge) {
  const ScenarioGenerator a(1, small_dist());
  const ScenarioGenerator b(2, small_dist());
  int different = 0;
  for (std::int64_t cell = 0; cell < 32; ++cell) {
    if (a.spec(cell).seed != b.spec(cell).seed) ++different;
  }
  EXPECT_EQ(different, 32);
}

TEST(ScenarioGenerator, DrawsStayInsideTheDistribution) {
  const ScenarioDistribution dist = small_dist();
  const ScenarioGenerator gen(7, dist);
  std::set<StructuralKind> structurals;
  std::set<fault::FaultModelKind> faults;
  std::set<core::SchemeKind> schemes;
  for (std::int64_t cell = 0; cell < 400; ++cell) {
    const ScenarioSpec spec = gen.spec(cell);
    EXPECT_GE(spec.nodes, dist.min_nodes);
    EXPECT_LE(spec.nodes, dist.max_nodes);
    EXPECT_GE(spec.num_statics, dist.min_statics);
    EXPECT_LE(spec.num_statics, dist.max_statics);
    EXPECT_LE(spec.num_dynamics, dist.max_dynamics);
    EXPECT_GE(spec.utilization, dist.min_util);
    EXPECT_LE(spec.utilization, dist.max_util);
    EXPECT_GE(std::log10(spec.fault_model.ber), dist.min_log10_ber - 1e-9);
    EXPECT_LE(std::log10(spec.fault_model.ber), dist.max_log10_ber + 1e-9);
    EXPECT_EQ(spec.window_ms, dist.window_ms);
    structurals.insert(spec.structural);
    faults.insert(spec.fault_model.kind);
    schemes.insert(spec.scheme);
  }
  // The full cross shows up in a 400-cell population.
  EXPECT_EQ(structurals.size(), 5u);
  EXPECT_EQ(faults.size(), 3u);
  EXPECT_EQ(schemes.size(), 3u);
}

/// Every materialized config must pass the same validation the
/// experiment entry point enforces — a generator that can emit an
/// invalid cell would poison campaigns with spurious quarantines.
TEST(ScenarioGenerator, MaterializedConfigsAreValid) {
  const ScenarioGenerator gen(11, small_dist());
  for (std::int64_t cell = 0; cell < 60; ++cell) {
    const ScenarioSpec spec = gen.spec(cell);
    const core::ExperimentConfig config = gen.config(spec);
    EXPECT_NO_THROW(config.cluster.validate()) << "cell " << cell;
    EXPECT_NO_THROW(config.statics.validate()) << "cell " << cell;
    EXPECT_NO_THROW(config.dynamics.validate()) << "cell " << cell;
    EXPECT_NO_THROW(config.structural.validate()) << "cell " << cell;
    EXPECT_EQ(config.seed, spec.seed);
    EXPECT_EQ(static_cast<int>(config.cluster.num_nodes), spec.nodes);
  }
}

TEST(ScenarioGenerator, CriticalityAxisNeverPerturbsTheOtherDraws) {
  // The criticality axis draws from its own salted stream: enabling it
  // must leave every spec() field byte-identical (existing campaigns
  // keep their cell assignments) and only decorate the materialized
  // config with a mode policy, criticality levels and the power model.
  auto dist = small_dist();
  const ScenarioGenerator plain(42, dist);
  dist.criticality = true;
  const ScenarioGenerator crit(42, dist);
  for (std::int64_t cell = 0; cell < 32; ++cell) {
    const ScenarioSpec a = plain.spec(cell);
    const ScenarioSpec b = crit.spec(cell);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(a.num_statics, b.num_statics);
    EXPECT_EQ(a.fault_model.kind, b.fault_model.kind);
    EXPECT_EQ(a.structural, b.structural);

    const core::ExperimentConfig off = plain.config(a);
    const core::ExperimentConfig on = crit.config(b);
    EXPECT_FALSE(off.mode_policy.enabled);
    EXPECT_FALSE(off.power.enabled);
    EXPECT_TRUE(on.mode_policy.enabled) << "cell " << cell;
    EXPECT_TRUE(on.power.enabled);
    EXPECT_EQ(off.statics.messages().size(), on.statics.messages().size());
    // Deterministic per seed: re-materializing draws the same policy.
    const core::ExperimentConfig again = crit.config(b);
    EXPECT_EQ(on.mode_policy.min_dwell_cycles,
              again.mode_policy.min_dwell_cycles);
    EXPECT_DOUBLE_EQ(on.mode_policy.enter_l1_factor,
                     again.mode_policy.enter_l1_factor);
  }
}

TEST(ScenarioTags, RoundTrip) {
  for (const auto scheme :
       {core::SchemeKind::kCoEfficient, core::SchemeKind::kFspec,
        core::SchemeKind::kHosa}) {
    EXPECT_EQ(parse_scheme_tag(scheme_tag(scheme)), scheme);
  }
  for (const auto kind :
       {StructuralKind::kNone, StructuralKind::kCrash,
        StructuralKind::kBlackout, StructuralKind::kBabble,
        StructuralKind::kDrift}) {
    EXPECT_EQ(parse_structural_tag(to_string(kind)), kind);
  }
  EXPECT_FALSE(parse_scheme_tag("nope").has_value());
  EXPECT_FALSE(parse_structural_tag("nope").has_value());
}

}  // namespace
}  // namespace coeff::campaign
