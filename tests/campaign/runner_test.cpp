// Campaign runner robustness tests: clean runs under both isolation
// modes (byte-identical reports), poison-cell retry + quarantine with
// the repro seed, watchdog timeouts, disk-full degradation, and the
// manifest-consistency lint over everything the runner leaves behind.
#include "campaign/runner.hpp"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "campaign/checkpoint.hpp"
#include "campaign/lint.hpp"
#include "campaign/report.hpp"

namespace coeff::campaign {
namespace {

CampaignManifest small_manifest(std::int64_t cells, int shards) {
  CampaignManifest manifest;
  manifest.name = "test";
  manifest.seed = 21;
  manifest.cells = cells;
  manifest.shards = shards;
  manifest.watchdog_ms = 20000;
  manifest.backoff_base_ms = 20;
  manifest.distribution.max_nodes = 12;
  manifest.distribution.window_ms = 25;
  manifest.distribution.schemes = {core::SchemeKind::kCoEfficient,
                                   core::SchemeKind::kFspec,
                                   core::SchemeKind::kHosa};
  return manifest;
}

std::string fresh_dir(const char* tag) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = std::string("campaign_") + info->name() + "_" + tag;
  const std::string cmd = "rm -rf " + dir;
  (void)std::system(cmd.c_str());
  return dir;
}

CampaignOptions options_for(const std::string& dir,
                            const CampaignManifest& manifest) {
  CampaignOptions options;
  options.dir = dir;
  options.manifest = manifest;
  options.durable = false;  // kills in tests never outlive the page cache
  options.poll_ms = 5;
  return options;
}

std::string report_json(const std::string& dir) {
  const ManifestLoad load = load_manifest(manifest_path(dir));
  if (!load.ok) return "unloadable: " + load.error;
  const ResultScan scan = scan_results(dir, load.manifest);
  return render_report_json(aggregate_rows(scan.rows, load.manifest.cells),
                            load.manifest);
}

TEST(CampaignRunner, ProcessAndThreadIsolationAgreeByteForByte) {
  const std::string proc_dir = fresh_dir("proc");
  const std::string thread_dir = fresh_dir("thread");
  CampaignManifest manifest = small_manifest(24, 3);

  manifest.isolation = Isolation::kProcess;
  const CampaignOutcome proc =
      CampaignRunner::run(options_for(proc_dir, manifest));
  ASSERT_TRUE(proc.ok) << proc.error;
  EXPECT_EQ(proc.completed, 24);
  EXPECT_EQ(proc.quarantined, 0);

  manifest.isolation = Isolation::kThread;
  const CampaignOutcome thread =
      CampaignRunner::run(options_for(thread_dir, manifest));
  ASSERT_TRUE(thread.ok) << thread.error;
  EXPECT_EQ(thread.completed, 24);

  // Same population, same seeds -> same rows, regardless of isolation.
  // (The manifest differs in the isolation field, so compare row data
  // via reports rendered under one manifest identity.)
  const ManifestLoad load = load_manifest(manifest_path(proc_dir));
  ASSERT_TRUE(load.ok);
  const auto proc_rows = scan_results(proc_dir, load.manifest).rows;
  const auto thread_rows = scan_results(thread_dir, load.manifest).rows;
  ASSERT_EQ(proc_rows.size(), thread_rows.size());
  for (std::size_t i = 0; i < proc_rows.size(); ++i) {
    EXPECT_EQ(render_row(proc_rows[i]), render_row(thread_rows[i]));
  }

  // Both directories pass the consistency lint clean of errors.
  EXPECT_FALSE(lint_campaign(proc_dir).has_errors());
  EXPECT_FALSE(lint_campaign(thread_dir).has_errors());
}

TEST(CampaignRunner, RefusesToOverwriteAnExistingCampaign) {
  const std::string dir = fresh_dir("dir");
  const CampaignManifest manifest = small_manifest(4, 2);
  ASSERT_TRUE(CampaignRunner::run(options_for(dir, manifest)).ok);
  const CampaignOutcome again =
      CampaignRunner::run(options_for(dir, manifest));
  EXPECT_FALSE(again.ok);
  EXPECT_NE(again.error.find("resume"), std::string::npos);
}

TEST(CampaignRunner, ResumeOfCompleteCampaignIsIdempotent) {
  const std::string dir = fresh_dir("dir");
  const CampaignManifest manifest = small_manifest(6, 2);
  ASSERT_TRUE(CampaignRunner::run(options_for(dir, manifest)).ok);
  const std::string before = report_json(dir);
  CampaignOptions overrides;
  overrides.durable = false;
  const CampaignOutcome resumed = CampaignRunner::resume(dir, overrides);
  EXPECT_TRUE(resumed.ok) << resumed.error;
  EXPECT_EQ(resumed.completed, 6);
  EXPECT_EQ(report_json(dir), before);
}

/// A cell that crashes its worker on every attempt must be retried
/// exactly max_attempts times, then quarantined with the repro seed —
/// the acceptance criterion for poison handling.
TEST(CampaignRunner, PoisonCellIsRetriedThenQuarantinedWithReproSeed) {
  const std::string dir = fresh_dir("dir");
  CampaignManifest manifest = small_manifest(10, 2);
  manifest.max_attempts = 2;
  CampaignOptions options = options_for(dir, manifest);
  options.crash_cells = {5};
  const CampaignOutcome outcome = CampaignRunner::run(options);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.completed, 9);
  EXPECT_EQ(outcome.quarantined, 1);
  EXPECT_GE(outcome.respawns, 2);  // two crashes -> two respawns

  const ManifestLoad load = load_manifest(manifest_path(dir));
  ASSERT_TRUE(load.ok);
  const ResultScan scan = scan_results(dir, load.manifest);
  const CampaignAggregate agg =
      aggregate_rows(scan.rows, load.manifest.cells);
  ASSERT_EQ(agg.quarantined.size(), 1u);
  const ResultRow& row = agg.quarantined[0];
  EXPECT_EQ(row.cell, 5);
  EXPECT_EQ(row.attempts, 2);
  EXPECT_EQ(row.reason, "crash");
  // The recorded repro seed is the cell's generated seed.
  const ScenarioGenerator generator(manifest.seed, manifest.distribution);
  EXPECT_EQ(row.seed, generator.spec(5).seed);
  EXPECT_FALSE(lint_campaign(dir).has_errors());
}

/// A hung cell trips the per-cell watchdog: the shard is killed,
/// retried with backoff, and the cell quarantined once the attempt
/// budget is spent.
TEST(CampaignRunner, HungCellTripsWatchdogAndIsQuarantined) {
  const std::string dir = fresh_dir("dir");
  CampaignManifest manifest = small_manifest(8, 2);
  manifest.watchdog_ms = 400;
  manifest.max_attempts = 2;
  manifest.backoff_base_ms = 30;
  CampaignOptions options = options_for(dir, manifest);
  options.hang_cells = {3};
  const CampaignOutcome outcome = CampaignRunner::run(options);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.completed, 7);
  EXPECT_EQ(outcome.quarantined, 1);
  EXPECT_GE(outcome.respawns, 2);

  const ManifestLoad load = load_manifest(manifest_path(dir));
  ASSERT_TRUE(load.ok);
  const CampaignAggregate agg = aggregate_rows(
      scan_results(dir, load.manifest).rows, load.manifest.cells);
  ASSERT_EQ(agg.quarantined.size(), 1u);
  EXPECT_EQ(agg.quarantined[0].cell, 3);
  EXPECT_EQ(agg.quarantined[0].reason, "watchdog-timeout");
  EXPECT_FALSE(lint_campaign(dir).has_errors());
}

/// Disk-full degradation: pointing a shard's result file at /dev/full
/// makes every row write fail with ENOSPC. The campaign must finish
/// with exact accounting (checkpoints intact, manifest never corrupt)
/// and flag itself degraded instead of dying.
TEST(CampaignRunner, DiskFullShedsDetailButNeverCorruptsState) {
  if (::access("/dev/full", W_OK) != 0) {
    GTEST_SKIP() << "/dev/full not writable in this environment";
  }
  const std::string dir = fresh_dir("dir");
  CampaignManifest manifest = small_manifest(6, 2);
  manifest.isolation = Isolation::kThread;
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  // Pre-plant the symlink; the worker opens the path for append.
  ASSERT_EQ(::symlink("/dev/full", shard_results_path(dir, 0).c_str()), 0);
  const CampaignOutcome outcome =
      CampaignRunner::run(options_for(dir, manifest));
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_TRUE(outcome.degraded);
  EXPECT_EQ(outcome.completed, 6);

  const ManifestLoad load = load_manifest(manifest_path(dir));
  ASSERT_TRUE(load.ok) << load.error;
  EXPECT_EQ(load.manifest.status, "degraded");
  // Shard 0's checkpoint still accounts every cell and records the
  // degradation; shard 1's rows survived untouched.
  const CheckpointLoad ckpt = load_checkpoint(shard_checkpoint_path(dir, 0));
  ASSERT_TRUE(ckpt.ok) << ckpt.error;
  bool saw_degrade = false;
  for (const auto& record : ckpt.records) {
    saw_degrade |= record.kind == CheckpointRecordKind::kDegrade;
  }
  EXPECT_TRUE(saw_degrade);
}

TEST(CampaignRunner, ParseCellList) {
  EXPECT_TRUE(CampaignRunner::parse_cell_list(nullptr).empty());
  EXPECT_TRUE(CampaignRunner::parse_cell_list("").empty());
  const auto cells = CampaignRunner::parse_cell_list("3,17,99");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], 3);
  EXPECT_EQ(cells[1], 17);
  EXPECT_EQ(cells[2], 99);
}

}  // namespace
}  // namespace coeff::campaign
