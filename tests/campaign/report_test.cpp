// Result-row and aggregation tests: JSONL roundtrip, dedup-by-cell
// (keep-last), torn-tail tolerance in the scanner, and deterministic
// report rendering.
#include "campaign/report.hpp"

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace coeff::campaign {
namespace {

ResultRow ok_row(std::int64_t cell) {
  ResultRow row;
  row.cell = cell;
  row.seed = 1000 + static_cast<std::uint64_t>(cell);
  row.status = "ok";
  row.scheme = "coefficient";
  row.fault = "iid";
  row.structural = "none";
  row.nodes = 8;
  row.statics = 20;
  row.dynamics = 6;
  row.util = 0.31;
  row.ber = 1e-6;
  row.released = 100;
  row.delivered = 98;
  row.missed = 2;
  row.copies_sent = 140;
  row.cycles = 20;
  row.miss_ratio = 0.02;
  row.d_released = 30;
  row.d_missed = 1;
  row.m_changes = 2;
  row.m_shed = 5;
  row.m_matchup = 4;
  row.m_dwell_l1 = 6;
  row.m_dwell_l2 = 1;
  row.e_total_uj = 12.5;
  row.e_sleep_uj = 1.25;
  return row;
}

/// Strip the d_* fields from a rendered row, producing the exact line an
/// older campaign (pre-dynamic-counters schema) would have written.
std::string strip_dynamic_counters(std::string line) {
  const auto start = line.find(",\"d_released\"");
  const auto end = line.rfind('}');
  EXPECT_NE(start, std::string::npos);
  line.erase(start, end - start);
  return line;
}

/// Strip only the mode/energy fields, producing the line a campaign
/// from the dynamic-counters era (pre-mode-protocol schema) wrote.
std::string strip_mode_energy_counters(std::string line) {
  const auto start = line.find(",\"m_changes\"");
  const auto end = line.rfind('}');
  EXPECT_NE(start, std::string::npos);
  line.erase(start, end - start);
  return line;
}

TEST(ResultRow, RendersAndParsesRoundTrip) {
  const ResultRow row = ok_row(7);
  const auto parsed = parse_row(render_row(row));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cell, row.cell);
  EXPECT_EQ(parsed->seed, row.seed);
  EXPECT_EQ(parsed->status, row.status);
  EXPECT_EQ(parsed->scheme, row.scheme);
  EXPECT_EQ(parsed->fault, row.fault);
  EXPECT_EQ(parsed->released, row.released);
  EXPECT_EQ(parsed->missed, row.missed);
  EXPECT_DOUBLE_EQ(parsed->miss_ratio, row.miss_ratio);
  EXPECT_EQ(parsed->d_released, row.d_released);
  EXPECT_EQ(parsed->d_missed, row.d_missed);
  EXPECT_EQ(parsed->m_changes, row.m_changes);
  EXPECT_EQ(parsed->m_shed, row.m_shed);
  EXPECT_EQ(parsed->m_matchup, row.m_matchup);
  EXPECT_EQ(parsed->m_dwell_l1, row.m_dwell_l1);
  EXPECT_EQ(parsed->m_dwell_l2, row.m_dwell_l2);
  EXPECT_DOUBLE_EQ(parsed->e_total_uj, row.e_total_uj);
  EXPECT_DOUBLE_EQ(parsed->e_sleep_uj, row.e_sleep_uj);
  // Canonical: render(parse(render(x))) == render(x).
  EXPECT_EQ(render_row(*parsed), render_row(row));
}

TEST(ResultRow, LegacyRowsWithoutModeCountersParseToZero) {
  // Rows from campaigns that predate the mode/energy counters keep
  // parsing; the new fields default to 0 (the "protocol off" reading)
  // while every older field survives untouched.
  const std::string legacy = strip_mode_energy_counters(render_row(ok_row(7)));
  const auto parsed = parse_row(legacy);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cell, 7);
  EXPECT_EQ(parsed->d_released, 30);  // dynamic-era fields still there
  EXPECT_EQ(parsed->m_changes, 0);
  EXPECT_EQ(parsed->m_shed, 0);
  EXPECT_EQ(parsed->m_matchup, 0);
  EXPECT_EQ(parsed->m_dwell_l1, 0);
  EXPECT_EQ(parsed->m_dwell_l2, 0);
  EXPECT_DOUBLE_EQ(parsed->e_total_uj, 0.0);
  EXPECT_DOUBLE_EQ(parsed->e_sleep_uj, 0.0);
}

TEST(ResultRow, GarbledModeCountersRejectTheRow) {
  // Present-but-unreadable is a corrupt row, not a legacy row.
  std::string line = render_row(ok_row(7));
  const auto pos = line.find("\"m_shed\":5");
  ASSERT_NE(pos, std::string::npos);
  line.replace(pos, std::string("\"m_shed\":5").size(), "\"m_shed\":xyz");
  EXPECT_FALSE(parse_row(line).has_value());

  std::string eline = render_row(ok_row(7));
  const auto epos = eline.find("\"e_total_uj\":");
  ASSERT_NE(epos, std::string::npos);
  const auto evalue_end = eline.find_first_of(",}", epos + 13);
  eline.replace(epos + 13, evalue_end - (epos + 13), "bogus");
  EXPECT_FALSE(parse_row(eline).has_value());
}

TEST(ResultRow, LegacyRowsWithoutDynamicCountersParseToZero) {
  // Rows from campaigns that predate the d_* counters must keep parsing
  // and default to 0 — the dynamic cross-check then skips them instead
  // of treating them as clean-measured cells.
  const std::string legacy = strip_dynamic_counters(render_row(ok_row(7)));
  const auto parsed = parse_row(legacy);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cell, 7);
  EXPECT_EQ(parsed->released, 100);
  EXPECT_EQ(parsed->d_released, 0);
  EXPECT_EQ(parsed->d_missed, 0);
}

TEST(ResultRow, GarbledDynamicCountersRejectTheRow) {
  std::string line = render_row(ok_row(7));
  const auto pos = line.find("\"d_released\":30");
  ASSERT_NE(pos, std::string::npos);
  line.replace(pos, std::string("\"d_released\":30").size(),
               "\"d_released\":oops");
  EXPECT_FALSE(parse_row(line).has_value());
}

TEST(ResultRow, FailedRowCarriesReproHandle) {
  ResultRow row;
  row.cell = 3;
  row.seed = 777;
  row.status = "failed";
  row.scheme = "hosa";
  row.fault = "gilbert-elliott";
  row.structural = "crash";
  row.attempts = 2;
  row.reason = "watchdog-timeout";
  const auto parsed = parse_row(render_row(row));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, "failed");
  EXPECT_EQ(parsed->seed, 777u);
  EXPECT_EQ(parsed->attempts, 2);
  EXPECT_EQ(parsed->reason, "watchdog-timeout");
}

TEST(ResultRow, GarbageNeverParses) {
  EXPECT_FALSE(parse_row("").has_value());
  EXPECT_FALSE(parse_row("not json").has_value());
  EXPECT_FALSE(parse_row("{\"cell\":}").has_value());
  EXPECT_FALSE(parse_row(std::string(512, '{')).has_value());
}

class ScanFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string("scan_") +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    (void)::mkdir(dir_.c_str(), 0755);
    manifest_.cells = 8;
    manifest_.shards = 2;
  }
  void TearDown() override {
    for (int shard = 0; shard < manifest_.shards; ++shard) {
      (void)::remove(shard_results_path(dir_, shard).c_str());
    }
    (void)::rmdir(dir_.c_str());
  }
  void write_shard(int shard, const std::string& contents) {
    std::ofstream out(shard_results_path(dir_, shard), std::ios::binary);
    out << contents;
  }
  std::string dir_;
  CampaignManifest manifest_;
};

TEST_F(ScanFixture, DedupsByCellKeepingLast) {
  ResultRow stale = ok_row(2);
  stale.released = 1;  // superseded by the re-run after a resume
  write_shard(0, render_row(ok_row(0)) + "\n" + render_row(stale) + "\n" +
                     render_row(ok_row(2)) + "\n");
  write_shard(1, render_row(ok_row(1)) + "\n");
  const ResultScan scan = scan_results(dir_, manifest_);
  EXPECT_TRUE(scan.errors.empty());
  EXPECT_EQ(scan.duplicate_rows, 1);
  ASSERT_EQ(scan.rows.size(), 3u);
  EXPECT_EQ(scan.rows[0].cell, 0);
  EXPECT_EQ(scan.rows[1].cell, 1);
  EXPECT_EQ(scan.rows[2].cell, 2);
  EXPECT_EQ(scan.rows[2].released, 100);  // the later row won
}

TEST_F(ScanFixture, ToleratesTornTailAndCountsGarbage) {
  const std::string full = render_row(ok_row(0)) + "\n";
  write_shard(0, full + full.substr(0, full.size() / 2));  // torn tail
  write_shard(1, "mid-file garbage line\n" + render_row(ok_row(1)) + "\n");
  const ResultScan scan = scan_results(dir_, manifest_);
  EXPECT_EQ(scan.torn_tail_lines, 1);
  EXPECT_EQ(scan.unparsed_lines, 1);
  ASSERT_EQ(scan.rows.size(), 2u);
}

TEST(Aggregate, FoldsAndRendersDeterministically) {
  std::vector<ResultRow> rows;
  for (std::int64_t cell = 0; cell < 6; ++cell) rows.push_back(ok_row(cell));
  rows[3].status = "failed";
  rows[3].reason = "crash";
  rows[4].status = "shed";
  const CampaignAggregate aggregate = aggregate_rows(rows, 8);
  EXPECT_EQ(aggregate.expected, 8);
  EXPECT_EQ(aggregate.ok, 4);
  EXPECT_EQ(aggregate.failed, 1);
  EXPECT_EQ(aggregate.shed, 1);
  EXPECT_EQ(aggregate.missing, 2);
  EXPECT_EQ(aggregate.released, 4 * 100);
  EXPECT_EQ(aggregate.d_released, 4 * 30);
  EXPECT_EQ(aggregate.d_missed, 4 * 1);
  ASSERT_EQ(aggregate.quarantined.size(), 1u);
  EXPECT_EQ(aggregate.quarantined[0].cell, 3);
  ASSERT_EQ(aggregate.missing_cells.size(), 2u);

  CampaignManifest manifest;
  manifest.cells = 8;
  const std::string once = render_report_json(aggregate, manifest);
  const std::string twice =
      render_report_json(aggregate_rows(rows, 8), manifest);
  EXPECT_EQ(once, twice);
  EXPECT_NE(once.find("\"ok\":4"), std::string::npos);
  EXPECT_NE(once.find("\"d_released\":120"), std::string::npos);
  EXPECT_NE(once.find("\"d_missed\":4"), std::string::npos);
}

TEST(Aggregate, LegacyRowsAggregateWithZeroDynamicCounters) {
  // A mixed campaign — some rows written before the d_* schema — must
  // aggregate exactly the modern rows' dynamic counters, not reject or
  // miscount the legacy ones.
  std::vector<ResultRow> rows;
  for (std::int64_t cell = 0; cell < 4; ++cell) {
    const std::string line =
        cell < 2 ? strip_dynamic_counters(render_row(ok_row(cell)))
                 : render_row(ok_row(cell));
    const auto parsed = parse_row(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    rows.push_back(*parsed);
  }
  const CampaignAggregate aggregate = aggregate_rows(rows, 4);
  EXPECT_EQ(aggregate.ok, 4);
  EXPECT_EQ(aggregate.released, 4 * 100);  // static counters unaffected
  EXPECT_EQ(aggregate.d_released, 2 * 30);
  EXPECT_EQ(aggregate.d_missed, 2 * 1);
}

TEST(Aggregate, ModeAndEnergyCountersFoldAcrossEras) {
  // Two legacy rows (mode/energy absent => 0) and two modern rows: the
  // fold must sum exactly the modern contributions, and the report JSON
  // must carry the new keys.
  std::vector<ResultRow> rows;
  for (std::int64_t cell = 0; cell < 4; ++cell) {
    const std::string line =
        cell < 2 ? strip_mode_energy_counters(render_row(ok_row(cell)))
                 : render_row(ok_row(cell));
    const auto parsed = parse_row(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    rows.push_back(*parsed);
  }
  const CampaignAggregate aggregate = aggregate_rows(rows, 4);
  EXPECT_EQ(aggregate.ok, 4);
  EXPECT_EQ(aggregate.m_changes, 2 * 2);
  EXPECT_EQ(aggregate.m_shed, 2 * 5);
  EXPECT_EQ(aggregate.m_matchup, 2 * 4);
  EXPECT_EQ(aggregate.m_dwell_l1, 2 * 6);
  EXPECT_EQ(aggregate.m_dwell_l2, 2 * 1);
  EXPECT_DOUBLE_EQ(aggregate.e_total_uj, 2 * 12.5);
  EXPECT_DOUBLE_EQ(aggregate.e_sleep_uj, 2 * 1.25);

  CampaignManifest manifest;
  manifest.cells = 4;
  const std::string json = render_report_json(aggregate, manifest);
  EXPECT_NE(json.find("\"m_shed\":10"), std::string::npos);
  EXPECT_NE(json.find("\"m_matchup\":8"), std::string::npos);
  EXPECT_NE(json.find("\"e_total_uj\":"), std::string::npos);
  const std::string text = render_report_text(aggregate, manifest);
  EXPECT_NE(text.find("mode"), std::string::npos);
  EXPECT_NE(text.find("energy"), std::string::npos);
}

}  // namespace
}  // namespace coeff::campaign
