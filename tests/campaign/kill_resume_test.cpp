// The headline acceptance test: a 1000-cell sharded campaign is
// SIGKILLed mid-run (supervisor and workers die together), resumed from
// the manifest + checkpoints alone, and the final aggregate report must
// be byte-identical to an uninterrupted run with the same seed and
// shard count.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "campaign/checkpoint.hpp"
#include "campaign/lint.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"

namespace coeff::campaign {
namespace {

constexpr std::int64_t kCells = 1000;
constexpr int kShards = 4;

CampaignManifest big_manifest() {
  CampaignManifest manifest;
  manifest.name = "killtest";
  manifest.seed = 20260809;
  manifest.cells = kCells;
  manifest.shards = kShards;
  manifest.backoff_base_ms = 20;
  manifest.distribution.max_nodes = 12;
  manifest.distribution.window_ms = 25;
  manifest.distribution.schemes = {core::SchemeKind::kCoEfficient,
                                   core::SchemeKind::kFspec,
                                   core::SchemeKind::kHosa};
  return manifest;
}

CampaignOptions options_for(const std::string& dir) {
  CampaignOptions options;
  options.dir = dir;
  options.manifest = big_manifest();
  options.durable = false;  // a SIGKILL never outlives the page cache
  options.poll_ms = 5;
  return options;
}

std::string fresh_dir(const char* tag) {
  const std::string dir = std::string("campaign_killresume_") + tag;
  const std::string cmd = "rm -rf " + dir;
  (void)std::system(cmd.c_str());
  return dir;
}

std::string report_json(const std::string& dir) {
  const ManifestLoad load = load_manifest(manifest_path(dir));
  EXPECT_TRUE(load.ok) << load.error;
  const ResultScan scan = scan_results(dir, load.manifest);
  return render_report_json(aggregate_rows(scan.rows, load.manifest.cells),
                            load.manifest);
}

std::int64_t rows_on_disk(const std::string& dir) {
  std::int64_t rows = 0;
  for (int shard = 0; shard < kShards; ++shard) {
    const auto bytes = read_file(shard_results_path(dir, shard));
    if (!bytes.has_value()) continue;
    for (const char c : *bytes) rows += c == '\n';
  }
  return rows;
}

TEST(KillResume, ResumedCampaignReportIsByteIdenticalToUninterrupted) {
  // 1) Uninterrupted reference run.
  const std::string ref_dir = fresh_dir("ref");
  const CampaignOutcome ref = CampaignRunner::run(options_for(ref_dir));
  ASSERT_TRUE(ref.ok) << ref.error;
  ASSERT_EQ(ref.completed, kCells);
  const std::string ref_report = report_json(ref_dir);

  // 2) Same campaign, but the whole supervisor process tree is
  //    SIGKILLed once roughly half the rows are on disk.
  const std::string kill_dir = fresh_dir("kill");
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    const CampaignOutcome outcome = CampaignRunner::run(options_for(kill_dir));
    _exit(outcome.ok ? 0 : 1);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  std::int64_t rows = 0;
  while ((rows = rows_on_disk(kill_dir)) < kCells / 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "campaign never reached the kill point (" << rows << " rows)";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  // The mid-campaign state must be readable but incomplete.
  ASSERT_LT(rows, kCells);

  // 3) Give the PDEATHSIG-killed workers a beat to disappear, then
  //    resume in this process. Every finished cell is skipped; the
  //    in-flight ones re-run.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  CampaignOptions overrides;
  overrides.durable = false;
  overrides.poll_ms = 5;
  const CampaignOutcome resumed = CampaignRunner::resume(kill_dir, overrides);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  EXPECT_EQ(resumed.completed, kCells);
  EXPECT_EQ(resumed.quarantined, 0);

  // 4) The acceptance bar: byte-identical aggregate reports, and a
  //    clean consistency lint over the resumed directory.
  EXPECT_EQ(report_json(kill_dir), ref_report);
  EXPECT_FALSE(lint_campaign(kill_dir).has_errors());
}

}  // namespace
}  // namespace coeff::campaign
