// Negative-compilation matrix for the units layer (DESIGN.md §10).
//
// Each MISUSE_* block is a statement that the strong types must REJECT
// at compile time; check_misuse.cmake compiles this file once per macro
// with -fsyntax-only and asserts failure. MISUSE_OK is the positive
// control: it must compile, proving the harness, include paths and
// language mode are sound (otherwise every negative case would "pass"
// vacuously).
#include <cstdint>

#include "units/convert.hpp"
#include "units/units.hpp"

namespace u = coeff::units;
namespace sim = coeff::sim;

void misuse() {
  [[maybe_unused]] u::Microseconds us{40};
  [[maybe_unused]] u::Macroticks mt{8};
  [[maybe_unused]] u::CycleTime ct{100};
  [[maybe_unused]] u::CycleIndex cycle{2};
  [[maybe_unused]] u::SlotId slot{5};
  [[maybe_unused]] u::MinislotId mini{3};
  [[maybe_unused]] u::FrameId frame{17};
  [[maybe_unused]] u::NodeId node{1};

#if defined(MISUSE_OK)
  // Sanctioned operations only; must compile.
  [[maybe_unused]] auto a = mt + u::Macroticks{1};
  [[maybe_unused]] auto b = us * 2;
  [[maybe_unused]] auto c = cycle + 1;
  [[maybe_unused]] auto d = u::to_frame_id(slot);
  [[maybe_unused]] auto e = u::to_time(us);
#elif defined(MISUSE_CROSS_UNIT_ADD)
  // Microseconds + Macroticks is dimensionally meaningless.
  [[maybe_unused]] auto x = us + mt;
#elif defined(MISUSE_IMPLICIT_FROM_RAW)
  // No implicit construction from the raw representation.
  [[maybe_unused]] u::Macroticks x = 8;
#elif defined(MISUSE_IMPLICIT_TO_RAW)
  // No implicit conversion back to the raw representation.
  [[maybe_unused]] std::int64_t x = mt;
#elif defined(MISUSE_QUANTITY_TIMES_QUANTITY)
  // MT * MT has no meaning in this codebase (and would be MT^2 anyway).
  [[maybe_unused]] auto x = mt * mt;
#elif defined(MISUSE_ORDINAL_PLUS_ORDINAL)
  // Positions don't add; only position +/- step and position - position.
  [[maybe_unused]] auto x = cycle + u::CycleIndex{1};
#elif defined(MISUSE_CROSS_ORDINAL_COMPARE)
  // A slot number is not a minislot number.
  [[maybe_unused]] bool x = slot == mini;
#elif defined(MISUSE_CROSS_ORDINAL_DIFF)
  [[maybe_unused]] auto x = slot - mini;
#elif defined(MISUSE_IDENTIFIER_ARITHMETIC)
  // Identifiers carry no arithmetic at all.
  [[maybe_unused]] auto x = frame + 1;
#elif defined(MISUSE_IDENTIFIER_CROSS_COMPARE)
  // A frame id is not a node id, even when both hold small integers.
  [[maybe_unused]] bool x = frame == node;
#elif defined(MISUSE_SLOT_AS_FRAME_WITHOUT_CONVERSION)
  // The SlotId -> FrameId crossing must go through to_frame_id.
  [[maybe_unused]] u::FrameId x{slot};
#elif defined(MISUSE_TIME_FROM_MACROTICKS_WITHOUT_GRID)
  // Macroticks -> sim::Time needs the configured macrotick length.
  [[maybe_unused]] sim::Time x = u::to_time(mt);
#elif defined(MISUSE_QUANTITY_DIVIDE_CROSS_UNIT)
  // "How many macroticks fit in these microseconds" must go through
  // the named grid conversions, never raw division.
  [[maybe_unused]] auto x = us / mt;
#else
#error "units_misuse.cpp compiled without selecting a MISUSE_* case"
#endif
}
