# Negative-compilation driver for units_misuse.cpp.
#
# Usage (see tests/CMakeLists.txt):
#   cmake -DCXX=<compiler> -DSRC=<units_misuse.cpp>
#         -DINCLUDE_DIR=<repo>/src -P check_misuse.cmake
#
# Compiles SRC once per MISUSE_* case with -fsyntax-only. The OK case
# must compile; every other case must fail. Any deviation fails the
# ctest entry with the offending case and compiler output.

set(cases
  MISUSE_CROSS_UNIT_ADD
  MISUSE_IMPLICIT_FROM_RAW
  MISUSE_IMPLICIT_TO_RAW
  MISUSE_QUANTITY_TIMES_QUANTITY
  MISUSE_ORDINAL_PLUS_ORDINAL
  MISUSE_CROSS_ORDINAL_COMPARE
  MISUSE_CROSS_ORDINAL_DIFF
  MISUSE_IDENTIFIER_ARITHMETIC
  MISUSE_IDENTIFIER_CROSS_COMPARE
  MISUSE_SLOT_AS_FRAME_WITHOUT_CONVERSION
  MISUSE_TIME_FROM_MACROTICKS_WITHOUT_GRID
  MISUSE_QUANTITY_DIVIDE_CROSS_UNIT
)

function(compile_case macro out_ok out_log)
  execute_process(
    COMMAND ${CXX} -std=c++20 -fsyntax-only -D${macro}
            -I${INCLUDE_DIR} ${SRC}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(rc EQUAL 0)
    set(${out_ok} TRUE PARENT_SCOPE)
  else()
    set(${out_ok} FALSE PARENT_SCOPE)
  endif()
  set(${out_log} "${out}${err}" PARENT_SCOPE)
endfunction()

# Positive control: if even the sanctioned arithmetic fails to compile,
# the negative results below would be meaningless.
compile_case(MISUSE_OK ok log)
if(NOT ok)
  message(FATAL_ERROR
    "positive control MISUSE_OK failed to compile:\n${log}")
endif()

set(failures "")
foreach(case IN LISTS cases)
  compile_case(${case} ok log)
  if(ok)
    list(APPEND failures ${case})
    message(STATUS "FAIL ${case}: compiled but must be rejected")
  else()
    message(STATUS "ok   ${case}: rejected as required")
  endif()
endforeach()

list(LENGTH cases n)
if(failures)
  message(FATAL_ERROR
    "units misuse matrix: these cases compiled but must not: ${failures}")
endif()
message(STATUS "units misuse matrix: all ${n} misuse cases rejected")
