#include "units/units.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <unordered_map>

#include "units/convert.hpp"

namespace coeff::units {
namespace {

// --- Quantity arithmetic -------------------------------------------------

TEST(QuantityTest, AdditiveAndScalingArithmetic) {
  const Macroticks a{40};
  const Macroticks b{8};
  EXPECT_EQ(a + b, Macroticks{48});
  EXPECT_EQ(a - b, Macroticks{32});
  EXPECT_EQ(a * 3, Macroticks{120});
  EXPECT_EQ(3 * a, Macroticks{120});
  EXPECT_EQ(a / 4, Macroticks{10});
  EXPECT_EQ(a / b, 5);  // dimensionless ratio
  EXPECT_EQ(a % b, Macroticks::zero());
  EXPECT_EQ(Macroticks{41} % b, Macroticks{1});
  Macroticks c = a;
  c += b;
  c -= Macroticks{3};
  EXPECT_EQ(c, Macroticks{45});
  EXPECT_EQ(-b, Macroticks{-8});
}

TEST(QuantityTest, TruncatingDivisionIsTowardZero) {
  EXPECT_EQ(Macroticks{7} / 2, Macroticks{3});
  EXPECT_EQ(Macroticks{7} / Macroticks{2}, 3);
}

// Hyperperiod-scale sums must fail loudly, not wrap. A 64-cycle
// hyperperiod of 5 ms cycles is ~3.2e8 ns; the overflow horizon is only
// reachable through a bug, and when it is we want the throw.
TEST(QuantityTest, OverflowThrowsInsteadOfWrapping) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  const Macroticks huge{kMax - 1};
  EXPECT_THROW((void)(huge + Macroticks{2}), std::overflow_error);
  EXPECT_THROW((void)(Macroticks{kMax} * 2), std::overflow_error);
  EXPECT_THROW((void)(Macroticks{-2} - Macroticks{kMax}), std::overflow_error);
  EXPECT_THROW((void)-Macroticks{std::numeric_limits<std::int64_t>::min()},
               std::overflow_error);
  Macroticks acc{kMax - 10};
  EXPECT_THROW(acc += Macroticks{11}, std::overflow_error);
  // No silent wrap: the accumulator is untouched after the throw... or at
  // least still equal to a legal value, never a wrapped negative one.
  EXPECT_GE(acc, Macroticks::zero());
}

TEST(OrdinalTest, SteppingAndDifferences) {
  CycleIndex c{5};
  ++c;
  EXPECT_EQ(c, CycleIndex{6});
  EXPECT_EQ(c + 4, CycleIndex{10});
  EXPECT_EQ(c - 2, CycleIndex{4});
  EXPECT_EQ(CycleIndex{10} - CycleIndex{6}, 4);
  EXPECT_LT(CycleIndex{3}, CycleIndex{4});
  EXPECT_THROW(
      (void)(CycleIndex{std::numeric_limits<std::int64_t>::max()} + 1),
      std::overflow_error);
}

TEST(IdentifierTest, ComparesAndHashesButHasNoArithmetic) {
  EXPECT_EQ(FrameId{17}, FrameId{17});
  EXPECT_NE(NodeId{1}, NodeId{2});
  EXPECT_LT(FrameId{3}, FrameId{4});
  std::unordered_map<FrameId, int> by_frame;
  by_frame[FrameId{100}] = 7;
  EXPECT_EQ(by_frame.at(FrameId{100}), 7);
  std::unordered_map<SlotId, int> by_slot;  // ordinals hash too
  by_slot[SlotId{3}] = 9;
  EXPECT_EQ(by_slot.at(SlotId{3}), 9);
}

// --- SlotId <-> FrameId crossing -----------------------------------------

TEST(FrameIdTest, SlotCrossingRoundTripsInsideElevenBits) {
  for (std::int64_t s : {1, 100, 2047}) {
    EXPECT_EQ(to_slot_id(to_frame_id(SlotId{s})), SlotId{s});
  }
  EXPECT_THROW((void)to_frame_id(SlotId{2048}), std::overflow_error);
  EXPECT_THROW((void)to_frame_id(SlotId{-1}), std::overflow_error);
}

// --- Microseconds <-> sim::Time ------------------------------------------

TEST(ConvertTest, MicrosecondsRoundTrip) {
  EXPECT_EQ(to_time(Microseconds{40}), sim::micros(40));
  EXPECT_EQ(to_microseconds(sim::micros(40)), Microseconds{40});
  EXPECT_FALSE(is_whole_microseconds(sim::nanos(1500)));
  EXPECT_THROW((void)to_microseconds(sim::nanos(1500)),
               std::invalid_argument);
  EXPECT_EQ(floor_microseconds(sim::nanos(1500)), Microseconds{1});
}

// --- Macroticks on a non-integer us/MT grid ------------------------------
// The paper's clusters use a 1 us macrotick, but FlexRay permits e.g.
// 1.375 us. All macrotick conversions must stay exact on any
// whole-nanosecond grid, and the exact form must reject off-grid times.

TEST(ConvertTest, MacrotickConversionsOnFractionalMicrosecondGrid) {
  const sim::Time mt = sim::nanos(1375);  // 1.375 us per macrotick
  EXPECT_EQ(to_time(Macroticks{8}, mt), sim::nanos(11'000));
  EXPECT_EQ(to_macroticks(sim::nanos(11'000), mt), Macroticks{8});
  EXPECT_FALSE(is_on_macrotick_grid(sim::micros(11), sim::nanos(1500)));
  EXPECT_THROW((void)to_macroticks(sim::nanos(11'001), mt),
               std::invalid_argument);
  // Rounding forms state their direction in the name.
  EXPECT_EQ(floor_macroticks(sim::nanos(11'001), mt), Macroticks{8});
  EXPECT_EQ(ceil_macroticks(sim::nanos(11'001), mt), Macroticks{9});
  EXPECT_EQ(ceil_macroticks(sim::nanos(11'000), mt), Macroticks{8});
}

TEST(ConvertTest, MacrotickOverflowAtHyperperiodScaleThrows) {
  // ~9.2e18 ns horizon / 1375 ns per MT: a count above ~6.7e15 MT can
  // no longer be expressed as sim::Time. This must throw, not wrap.
  const sim::Time mt = sim::nanos(1375);
  const Macroticks too_many{std::numeric_limits<std::int64_t>::max() / 1000};
  EXPECT_THROW((void)to_time(too_many, mt), std::overflow_error);
  EXPECT_THROW((void)to_time(Microseconds{
                   std::numeric_limits<std::int64_t>::max() / 10}),
               std::overflow_error);
}

// --- CycleTime wrap at the 5 ms cycle boundary ---------------------------

TEST(ConvertTest, CycleTimeWrapsAtCycleBoundary) {
  const sim::Time cycle = sim::millis(5);
  EXPECT_EQ(wrap_cycle_time(sim::Time::zero(), cycle), CycleTime::zero());
  EXPECT_EQ(wrap_cycle_time(sim::millis(5) - sim::nanos(1), cycle),
            to_cycle_time(sim::millis(5) - sim::nanos(1)));
  EXPECT_EQ(wrap_cycle_time(sim::millis(5), cycle), CycleTime::zero());
  EXPECT_EQ(wrap_cycle_time(sim::millis(12), cycle),
            to_cycle_time(sim::millis(2)));
  EXPECT_THROW((void)to_cycle_time(sim::nanos(-1)), std::invalid_argument);
}

// --- Compile-time surface -------------------------------------------------
// The zero-overhead static_asserts live in units.hpp; exercise the
// constexpr surface here so a regression to runtime-only evaluation
// (e.g. a non-constexpr checked_add) breaks the build via these tests.

static_assert(Macroticks{40} + Macroticks{8} == Macroticks{48});
static_assert(to_time(Microseconds{3}) == sim::Time{3'000});
static_assert(to_frame_id(SlotId{17}).value() == 17);
static_assert(CycleIndex{7} - CycleIndex{2} == 5);

}  // namespace
}  // namespace coeff::units
