#include "net/message.hpp"

#include <gtest/gtest.h>

namespace coeff::net {
namespace {

Message make(int id, int period_ms, int deadline_ms, int bits,
             MessageKind kind = MessageKind::kStatic) {
  Message m;
  m.id = id;
  m.name = "m" + std::to_string(id);
  m.node = id % 10;
  m.kind = kind;
  m.period = sim::millis(period_ms);
  m.deadline = sim::millis(deadline_ms);
  m.size_bits = bits;
  return m;
}

TEST(MessageSetTest, ValidSetPasses) {
  MessageSet set({make(1, 10, 5, 100), make(2, 20, 20, 200)});
  EXPECT_NO_THROW(set.validate());
}

TEST(MessageSetTest, DuplicateIdsRejected) {
  MessageSet set({make(1, 10, 5, 100), make(1, 20, 20, 200)});
  EXPECT_THROW(set.validate(), std::invalid_argument);
}

TEST(MessageSetTest, NonPositiveFieldsRejected) {
  auto bad_period = make(1, 0, 5, 100);
  EXPECT_THROW(MessageSet({bad_period}).validate(), std::invalid_argument);
  auto bad_size = make(1, 10, 5, 0);
  EXPECT_THROW(MessageSet({bad_size}).validate(), std::invalid_argument);
}

TEST(MessageSetTest, DeadlineBeyondPeriodRejected) {
  auto m = make(1, 10, 11, 100);
  EXPECT_THROW(MessageSet({m}).validate(), std::invalid_argument);
}

TEST(MessageSetTest, NegativeOffsetRejected) {
  auto m = make(1, 10, 5, 100);
  m.offset = sim::millis(-1);
  EXPECT_THROW(MessageSet({m}).validate(), std::invalid_argument);
}

TEST(MessageSetTest, OffsetBeyondPeriodRejected) {
  auto m = make(1, 10, 5, 100);
  m.offset = sim::millis(11);
  EXPECT_THROW(MessageSet({m}).validate(), std::invalid_argument);
}

TEST(MessageSetTest, DuplicateStaticFrameIdsRejected) {
  auto a = make(1, 10, 5, 100);
  auto b = make(2, 10, 5, 100);
  a.frame_id = 3;
  b.frame_id = 3;
  EXPECT_THROW(MessageSet({a, b}).validate(), std::invalid_argument);
}

TEST(MessageSetTest, DynamicFrameIdsMayRepeatAcrossKinds) {
  auto a = make(1, 10, 5, 100, MessageKind::kDynamic);
  auto b = make(2, 10, 5, 100, MessageKind::kDynamic);
  a.frame_id = 90;
  b.frame_id = 90;  // FlexRay allows shared dynamic frame ids
  EXPECT_NO_THROW(MessageSet({a, b}).validate());
}

TEST(MessageSetTest, OfKindFilters) {
  MessageSet set({make(1, 10, 5, 100), make(2, 10, 5, 100,
                                            MessageKind::kDynamic)});
  EXPECT_EQ(set.of_kind(MessageKind::kStatic).size(), 1u);
  EXPECT_EQ(set.of_kind(MessageKind::kDynamic).size(), 1u);
  EXPECT_EQ(set.of_kind(MessageKind::kStatic)[0].id, 1);
}

TEST(MessageSetTest, PrefixTakesFirstN) {
  MessageSet set({make(1, 10, 5, 1), make(2, 10, 5, 1), make(3, 10, 5, 1)});
  EXPECT_EQ(set.prefix(2).size(), 2u);
  EXPECT_EQ(set.prefix(10).size(), 3u);
  EXPECT_EQ(set.prefix(0).size(), 0u);
}

TEST(MessageSetTest, MergePreservesAll) {
  MessageSet a({make(1, 10, 5, 1)});
  MessageSet b({make(2, 10, 5, 1)});
  const auto merged = a.merged_with(b);
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_NO_THROW(merged.validate());
}

TEST(MessageSetTest, DemandedBandwidth) {
  // 1000 bits every 10 ms = 100 kb/s; plus 500 bits every 5 ms = 100 kb/s.
  MessageSet set({make(1, 10, 5, 1000), make(2, 5, 5, 500)});
  EXPECT_NEAR(set.demanded_bits_per_second(), 200'000.0, 1e-6);
}

TEST(MessageSetTest, Hyperperiod) {
  MessageSet set({make(1, 8, 8, 1), make(2, 12, 12, 1)});
  EXPECT_EQ(set.hyperperiod(), sim::millis(24));
}

TEST(MessageSetTest, HyperperiodOverflowThrows) {
  auto a = make(1, 9973, 9973, 1);   // large coprime periods
  auto b = make(2, 9967, 9967, 1);
  auto c = make(3, 9949, 9949, 1);
  EXPECT_THROW((void)MessageSet({a, b, c}).hyperperiod(), std::domain_error);
}

TEST(MessageSetTest, FindById) {
  MessageSet set({make(5, 10, 5, 1)});
  ASSERT_NE(set.find(5), nullptr);
  EXPECT_EQ(set.find(5)->id, 5);
  EXPECT_EQ(set.find(6), nullptr);
}

TEST(MessageSetTest, KindNames) {
  EXPECT_STREQ(to_string(MessageKind::kStatic), "static");
  EXPECT_STREQ(to_string(MessageKind::kDynamic), "dynamic");
}

}  // namespace
}  // namespace coeff::net
