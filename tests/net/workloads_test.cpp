#include "net/workloads.hpp"

#include <gtest/gtest.h>

#include <set>

namespace coeff::net {
namespace {

TEST(WorkloadsTest, BbwMatchesTableII) {
  const auto set = brake_by_wire();
  ASSERT_EQ(set.size(), 20u);
  // Spot-check rows 1, 3 and 17 of Table II.
  EXPECT_EQ(set[0].offset, sim::micros(280));
  EXPECT_EQ(set[0].period, sim::millis(8));
  EXPECT_EQ(set[0].deadline, sim::millis(8));
  EXPECT_EQ(set[0].size_bits, 1292);
  EXPECT_EQ(set[2].period, sim::millis(1));
  EXPECT_EQ(set[2].size_bits, 1574);
  EXPECT_EQ(set[16].size_bits, 1742);  // the largest BBW message
  EXPECT_NO_THROW(set.validate());
}

TEST(WorkloadsTest, BbwPeriodHistogram) {
  const auto set = brake_by_wire();
  int ones = 0, eights = 0;
  for (const auto& m : set.messages()) {
    if (m.period == sim::millis(1)) ++ones;
    if (m.period == sim::millis(8)) ++eights;
  }
  EXPECT_EQ(ones, 9);
  EXPECT_EQ(eights, 11);
}

TEST(WorkloadsTest, AccMatchesTableIII) {
  const auto set = adaptive_cruise();
  ASSERT_EQ(set.size(), 20u);
  EXPECT_EQ(set[0].offset, sim::micros(420));
  EXPECT_EQ(set[0].period, sim::millis(16));
  EXPECT_EQ(set[0].size_bits, 1024);
  EXPECT_EQ(set[12].period, sim::millis(32));
  EXPECT_EQ(set[12].size_bits, 1280);
  EXPECT_EQ(set[15].size_bits, 256);
  EXPECT_NO_THROW(set.validate());
}

TEST(WorkloadsTest, AccPeriodsAreSixteenTwentyFourThirtyTwo) {
  const auto set = adaptive_cruise();
  for (const auto& m : set.messages()) {
    EXPECT_TRUE(m.period == sim::millis(16) || m.period == sim::millis(24) ||
                m.period == sim::millis(32));
    EXPECT_EQ(m.deadline, m.period);
  }
}

TEST(WorkloadsTest, BbwAndAccIdsDisjoint) {
  const auto merged = brake_by_wire().merged_with(adaptive_cruise());
  EXPECT_NO_THROW(merged.validate());
  EXPECT_EQ(merged.size(), 40u);
}

TEST(WorkloadsTest, MessagesSpreadOverTenNodes) {
  const auto set = brake_by_wire();
  std::set<int> nodes;
  for (const auto& m : set.messages()) nodes.insert(m.node);
  EXPECT_EQ(nodes.size(), 10u);
}

TEST(WorkloadsTest, SyntheticRespectsRanges) {
  sim::Rng rng(1);
  SyntheticStaticOptions opt;
  opt.count = 200;
  const auto set = synthetic_static(opt, rng);
  ASSERT_EQ(set.size(), 200u);
  for (const auto& m : set.messages()) {
    EXPECT_GE(m.period, opt.min_period);
    EXPECT_LE(m.period, opt.max_period);
    EXPECT_GE(m.deadline, sim::Time::zero());
    EXPECT_LE(m.deadline, std::min(opt.max_deadline, m.period));
    EXPECT_GE(m.size_bits, opt.min_bits);
    EXPECT_LE(m.size_bits, opt.max_bits);
    // Periods are whole communication cycles so the hyperperiod stays
    // bounded.
    EXPECT_EQ(m.period % sim::millis(5), sim::Time::zero());
  }
  EXPECT_NO_THROW(set.validate());
}

TEST(WorkloadsTest, SyntheticIsDeterministicPerSeed) {
  sim::Rng a(9), b(9), c(10);
  SyntheticStaticOptions opt;
  opt.count = 50;
  const auto sa = synthetic_static(opt, a);
  const auto sb = synthetic_static(opt, b);
  const auto sc = synthetic_static(opt, c);
  bool any_diff = false;
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(sa[i].period, sb[i].period);
    EXPECT_EQ(sa[i].size_bits, sb[i].size_bits);
    if (sa[i].period != sc[i].period || sa[i].size_bits != sc[i].size_bits) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(WorkloadsTest, SyntheticEmptyAndInvalid) {
  sim::Rng rng(1);
  SyntheticStaticOptions opt;
  opt.count = 0;
  EXPECT_TRUE(synthetic_static(opt, rng).empty());
  opt.count = 1;
  opt.min_bits = 100;
  opt.max_bits = 10;
  EXPECT_THROW((void)synthetic_static(opt, rng), std::invalid_argument);
}

TEST(WorkloadsTest, SaeAperiodicMatchesPaperIds) {
  sim::Rng rng(2);
  SaeAperiodicOptions opt;
  opt.static_slots = 80;
  auto set = sae_aperiodic(opt, rng);
  ASSERT_EQ(set.size(), 30u);
  EXPECT_EQ(set[0].frame_id, 81);
  EXPECT_EQ(set[29].frame_id, 110);
  for (const auto& m : set.messages()) {
    EXPECT_EQ(m.kind, MessageKind::kDynamic);
    EXPECT_EQ(m.period, sim::millis(50));
    EXPECT_EQ(m.deadline, sim::millis(50));
  }
  opt.static_slots = 120;
  sim::Rng rng2(2);
  set = sae_aperiodic(opt, rng2);
  EXPECT_EQ(set[0].frame_id, 121);
  EXPECT_EQ(set[29].frame_id, 150);
}

TEST(ArrivalsTest, PeriodicArrivals) {
  Message m;
  m.period = sim::millis(10);
  m.offset = sim::millis(3);
  sim::Rng rng(1);
  const auto times = arrivals(m, sim::millis(40), {}, rng);
  ASSERT_EQ(times.size(), 4u);
  EXPECT_EQ(times[0], sim::millis(3));
  EXPECT_EQ(times[3], sim::millis(33));
}

TEST(ArrivalsTest, PeriodicRespectsHorizon) {
  Message m;
  m.period = sim::millis(10);
  m.offset = sim::Time::zero();
  sim::Rng rng(1);
  const auto times = arrivals(m, sim::millis(10), {}, rng);
  EXPECT_EQ(times.size(), 1u);  // only t=0; t=10 is outside [0, 10)
}

TEST(ArrivalsTest, PoissonMeanRateMatchesPeriod) {
  Message m;
  m.period = sim::millis(10);
  m.offset = sim::Time::zero();
  sim::Rng rng(5);
  ArrivalOptions opt;
  opt.process = ArrivalProcess::kPoisson;
  const auto times = arrivals(m, sim::seconds(100), opt, rng);
  // Expect ~10000 arrivals over 100 s at one per 10 ms.
  EXPECT_NEAR(static_cast<double>(times.size()), 10'000.0, 300.0);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GE(times[i], times[i - 1]);
  }
}

TEST(ArrivalsTest, BurstyProducesBurstSizedGroups) {
  Message m;
  m.period = sim::millis(10);
  m.offset = sim::Time::zero();
  sim::Rng rng(5);
  ArrivalOptions opt;
  opt.process = ArrivalProcess::kBursty;
  opt.burst = 3;
  const auto times = arrivals(m, sim::millis(20), opt, rng);
  ASSERT_EQ(times.size(), 6u);
  EXPECT_EQ(times[0], sim::Time::zero());
  EXPECT_EQ(times[1], sim::micros(100));
  EXPECT_EQ(times[2], sim::micros(200));
  EXPECT_EQ(times[3], sim::millis(10));
}

}  // namespace
}  // namespace coeff::net
