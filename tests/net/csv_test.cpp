#include "net/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "net/workloads.hpp"

namespace coeff::net {
namespace {

TEST(CsvTest, RoundTripBbw) {
  const auto original = brake_by_wire();
  const auto parsed = from_csv(to_csv(original));
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed[i].id, original[i].id);
    EXPECT_EQ(parsed[i].name, original[i].name);
    EXPECT_EQ(parsed[i].node, original[i].node);
    EXPECT_EQ(parsed[i].kind, original[i].kind);
    EXPECT_EQ(parsed[i].period, original[i].period);
    EXPECT_EQ(parsed[i].offset, original[i].offset);
    EXPECT_EQ(parsed[i].deadline, original[i].deadline);
    EXPECT_EQ(parsed[i].size_bits, original[i].size_bits);
    EXPECT_EQ(parsed[i].frame_id, original[i].frame_id);
  }
}

TEST(CsvTest, RoundTripDynamicSet) {
  sim::Rng rng(4);
  SaeAperiodicOptions opt;
  const auto original = sae_aperiodic(opt, rng);
  const auto parsed = from_csv(to_csv(original));
  ASSERT_EQ(parsed.size(), original.size());
  EXPECT_EQ(parsed[0].kind, MessageKind::kDynamic);
  EXPECT_EQ(parsed[0].frame_id, original[0].frame_id);
}

TEST(CsvTest, CommentsAndBlankLinesSkipped) {
  const std::string text =
      "# a comment\n"
      "\n"
      "id,name,node,kind,period_us,offset_us,deadline_us,size_bits,frame_id\n"
      "1, brake , 0, static, 8000, 280, 8000, 1292, 0\n"
      "# another comment\n"
      "2,steer,1,dynamic,50000,0,50000,512,90\n";
  const auto set = from_csv(text);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set[0].name, "brake");
  EXPECT_EQ(set[0].period, sim::millis(8));
  EXPECT_EQ(set[1].kind, MessageKind::kDynamic);
  EXPECT_EQ(set[1].frame_id, 90);
}

TEST(CsvTest, WrongFieldCountRejectedWithLineNumber) {
  try {
    (void)from_csv("1,short,line\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
}

TEST(CsvTest, BadNumberRejected) {
  EXPECT_THROW((void)from_csv("1,x,0,static,abc,0,100,10,0\n"),
               std::invalid_argument);
  EXPECT_THROW((void)from_csv("1,x,0,static,100x,0,100,10,0\n"),
               std::invalid_argument);
}

TEST(CsvTest, BadKindRejected) {
  EXPECT_THROW((void)from_csv("1,x,0,sporadic,100,0,100,10,0\n"),
               std::invalid_argument);
}

TEST(CsvTest, ParsedSetIsValidated) {
  // deadline > period violates the constrained-deadline model.
  EXPECT_THROW((void)from_csv("1,x,0,static,100,0,200,10,0\n"),
               std::invalid_argument);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = "/tmp/coeff_csv_test.csv";
  save_csv(adaptive_cruise(), path);
  const auto loaded = load_csv(path);
  EXPECT_EQ(loaded.size(), 20u);
  EXPECT_EQ(loaded[0].period, sim::millis(16));
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileThrows) {
  EXPECT_THROW((void)load_csv("/nonexistent/really/not.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace coeff::net
