#include "net/signal.hpp"

#include <gtest/gtest.h>

namespace coeff::net {
namespace {

Signal sig(int id, int node, int period_ms, int bits,
           int deadline_ms = 0, int offset_us = 0) {
  Signal s;
  s.id = id;
  s.node = node;
  s.period = sim::millis(period_ms);
  s.deadline = deadline_ms > 0 ? sim::millis(deadline_ms)
                               : sim::millis(period_ms);
  s.offset = sim::micros(offset_us);
  s.bits = bits;
  return s;
}

TEST(PackingTest, SameNodeAndPeriodShareAFrame) {
  const auto set = pack_signals({sig(1, 0, 10, 100), sig(2, 0, 10, 100)});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set[0].size_bits, 200);
  EXPECT_EQ(set[0].period, sim::millis(10));
  EXPECT_EQ(set[0].node, 0);
}

TEST(PackingTest, DifferentNodesNeverShare) {
  const auto set = pack_signals({sig(1, 0, 10, 100), sig(2, 1, 10, 100)});
  EXPECT_EQ(set.size(), 2u);
}

TEST(PackingTest, DifferentPeriodsNeverShare) {
  const auto set = pack_signals({sig(1, 0, 10, 100), sig(2, 0, 20, 100)});
  EXPECT_EQ(set.size(), 2u);
}

TEST(PackingTest, RespectsFrameCapacity) {
  PackingOptions opt;
  opt.max_frame_bits = 250;
  const auto set = pack_signals(
      {sig(1, 0, 10, 100), sig(2, 0, 10, 100), sig(3, 0, 10, 100)}, opt);
  // 3 x 100 bits with a 250-bit frame: two frames (200 + 100).
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set[0].size_bits + set[1].size_bits, 300);
  for (const auto& m : set.messages()) {
    EXPECT_LE(m.size_bits, opt.max_frame_bits);
  }
}

TEST(PackingTest, FirstFitDecreasingPacksTightly) {
  PackingOptions opt;
  opt.max_frame_bits = 100;
  // Sizes 60, 60, 40, 40 -> FFD packs (60+40) x 2 = 2 frames.
  const auto set = pack_signals({sig(1, 0, 10, 60), sig(2, 0, 10, 40),
                                 sig(3, 0, 10, 60), sig(4, 0, 10, 40)},
                                opt);
  EXPECT_EQ(set.size(), 2u);
}

TEST(PackingTest, PackedFrameInheritsTightestDeadlineAndEarliestOffset) {
  const auto set = pack_signals(
      {sig(1, 0, 10, 100, 8, 500), sig(2, 0, 10, 100, 4, 200)});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set[0].deadline, sim::millis(4));
  EXPECT_EQ(set[0].offset, sim::micros(200));
}

TEST(PackingTest, OversizedSignalThrows) {
  PackingOptions opt;
  opt.max_frame_bits = 50;
  EXPECT_THROW((void)pack_signals({sig(1, 0, 10, 51)}, opt),
               std::invalid_argument);
}

TEST(PackingTest, NonPositiveSignalThrows) {
  EXPECT_THROW((void)pack_signals({sig(1, 0, 10, 0)}), std::invalid_argument);
}

TEST(PackingTest, MessageIdsStartAtConfiguredBase) {
  PackingOptions opt;
  opt.first_message_id = 500;
  const auto set = pack_signals({sig(1, 0, 10, 10), sig(2, 1, 10, 10)}, opt);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set[0].id, 500);
  EXPECT_EQ(set[1].id, 501);
  EXPECT_NO_THROW(set.validate());
}

TEST(PackingTest, KindPropagates) {
  PackingOptions opt;
  opt.kind = MessageKind::kDynamic;
  const auto set = pack_signals({sig(1, 0, 10, 10)}, opt);
  EXPECT_EQ(set[0].kind, MessageKind::kDynamic);
}

TEST(PackingTest, EmptyInputGivesEmptySet) {
  EXPECT_TRUE(pack_signals({}).empty());
}

TEST(PackingTest, BeatsUnpackedFrameCount) {
  // 2500-signal style scenario in miniature: many small same-rate
  // signals pack into far fewer frames than one-per-signal.
  std::vector<Signal> signals;
  for (int i = 0; i < 100; ++i) {
    signals.push_back(sig(i, i % 5, 10, 64));
  }
  const auto set = pack_signals(signals);
  EXPECT_LT(set.size(), unpacked_frame_count(signals) / 4);
}

}  // namespace
}  // namespace coeff::net
