#include "sched/slack_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/random.hpp"

namespace coeff::sched {
namespace {

PeriodicTask task(int id, int wcet_ms, int period_ms, int deadline_ms = 0,
                  int offset_ms = 0) {
  PeriodicTask t;
  t.id = id;
  t.wcet = sim::millis(wcet_ms);
  t.period = sim::millis(period_ms);
  t.deadline = deadline_ms > 0 ? sim::millis(deadline_ms)
                               : sim::millis(period_ms);
  t.offset = sim::millis(offset_ms);
  return t;
}

TEST(SlackTableTest, SchedulableFlag) {
  EXPECT_TRUE(SlackTable(TaskSet({task(1, 2, 10)})).schedulable());
  EXPECT_FALSE(
      SlackTable(TaskSet({task(1, 3, 4), task(2, 3, 8, 8)})).schedulable());
}

TEST(SlackTableTest, SingleTaskSlackIsDeadlineMinusWcet) {
  // Task: C=2, T=D=10. At t=0 the job must finish by 10; the level-0
  // idle before that deadline is 10 - 2 = 8 ms.
  SlackTable table(TaskSet({task(1, 2, 10)}));
  EXPECT_EQ(table.level_slack(0, sim::Time::zero()), sim::millis(8));
}

TEST(SlackTableTest, SlackShrinksBeforeDeadline) {
  SlackTable table(TaskSet({task(1, 2, 10)}));
  // After the job finished (t=2), idle accrues until d=10: slack at t=5
  // is idle in (5, 10] = 5 ... but the *next* job (d=20) allows more; the
  // min over future deadlines governs.
  const auto s5 = table.level_slack(0, sim::millis(5));
  EXPECT_EQ(s5, sim::millis(5));
  const auto s9 = table.level_slack(0, sim::millis(9));
  EXPECT_EQ(s9, sim::millis(1));
}

TEST(SlackTableTest, CumulativeIdleMatchesSchedule) {
  SlackTable table(TaskSet({task(1, 2, 10)}));
  EXPECT_EQ(table.cumulative_idle(0, sim::millis(2)), sim::Time::zero());
  EXPECT_EQ(table.cumulative_idle(0, sim::millis(10)), sim::millis(8));
  EXPECT_EQ(table.cumulative_idle(0, sim::millis(12)), sim::millis(8));
  EXPECT_EQ(table.cumulative_idle(0, sim::millis(20)), sim::millis(16));
}

TEST(SlackTableTest, IdleBetween) {
  SlackTable table(TaskSet({task(1, 2, 10)}));
  EXPECT_EQ(table.idle_between(0, sim::millis(0), sim::millis(10)),
            sim::millis(8));
  EXPECT_EQ(table.idle_between(0, sim::millis(1), sim::millis(2)),
            sim::Time::zero());
  EXPECT_EQ(table.idle_between(0, sim::millis(5), sim::millis(5)),
            sim::Time::zero());
}

TEST(SlackTableTest, PeriodicExtensionBeyondTable) {
  // Queries far beyond 3H must extend periodically.
  SlackTable table(TaskSet({task(1, 2, 10)}));
  const auto far = table.cumulative_idle(0, sim::millis(1000));
  EXPECT_EQ(far, sim::millis(800));
  EXPECT_EQ(table.level_slack(0, sim::millis(1005)), sim::millis(5));
}

TEST(SlackTableTest, FullUtilizationHasZeroSlack) {
  SlackTable table(TaskSet({task(1, 1, 2), task(2, 2, 4)}));
  ASSERT_TRUE(table.schedulable());
  for (int t_ms : {0, 1, 2, 3, 5, 40, 400}) {
    EXPECT_EQ(table.slack_at(sim::millis(t_ms)), sim::Time::zero())
        << "t=" << t_ms;
  }
}

TEST(SlackTableTest, SlackAtIsMinOverLevels) {
  SlackTable table(TaskSet({task(1, 1, 5), task(2, 1, 10)}));
  const auto t = sim::Time::zero();
  const auto s = table.slack_at(t);
  EXPECT_LE(s, table.level_slack(0, t));
  EXPECT_LE(s, table.level_slack(1, t));
  // From level 1 only, the higher level's constraint drops out.
  EXPECT_GE(table.slack_at(t, 1), s);
}

TEST(SlackTableTest, TwoTaskKnownSlack) {
  // C=(1,2), T=D=(5,10). Level-1 busy: [0,3) (1ms task1 + 2ms task2).
  // Level-1 idle before d=10: (3,5)u(6,10) minus task1's second job at
  // [5,6) -> idle = 2 + 4 = 6. Level-0 idle before d=5: (1,5) = 4.
  SlackTable table(TaskSet({task(1, 1, 5), task(2, 2, 10)}));
  EXPECT_EQ(table.level_slack(0, sim::Time::zero()), sim::millis(4));
  EXPECT_EQ(table.level_slack(1, sim::Time::zero()), sim::millis(6));
  EXPECT_EQ(table.slack_at(sim::Time::zero()), sim::millis(4));
}

TEST(SlackTableTest, OffsetsShiftSlackWindows) {
  SlackTable table(TaskSet({task(1, 2, 10, 10, 3)}));
  // First job at [3,5), deadline 13. At t=0 the idle before 13 is
  // [0,3) + [5,13) = 3 + 8 = 11.
  EXPECT_EQ(table.level_slack(0, sim::Time::zero()), sim::millis(11));
}

TEST(SlackTableTest, SlackNeverNegative) {
  sim::Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<PeriodicTask> tasks;
    const int n = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < n; ++i) {
      const int period = static_cast<int>(rng.uniform_int(1, 5)) * 10;
      tasks.push_back(task(i, static_cast<int>(rng.uniform_int(1, 3)),
                           period, 0,
                           static_cast<int>(rng.uniform_int(0, 5))));
    }
    SlackTable table{TaskSet(tasks)};
    if (!table.schedulable()) continue;
    for (int q = 0; q < 50; ++q) {
      const auto t = sim::millis(rng.uniform_int(0, 500));
      EXPECT_GE(table.slack_at(t), sim::Time::zero());
    }
  }
}

TEST(SlackTableTest, MergedFastPathMatchesPerLevelMin) {
  // slack_at(t, 0) is served from the precomputed merged curve; it must
  // agree exactly with the definition min_i level_slack(i, t) at
  // arbitrary instants, including far beyond the table window.
  sim::Rng rng(11);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<PeriodicTask> tasks;
    const int n = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < n; ++i) {
      const int period = static_cast<int>(rng.uniform_int(1, 5)) * 10;
      tasks.push_back(task(i, static_cast<int>(rng.uniform_int(1, 3)),
                           period, 0,
                           static_cast<int>(rng.uniform_int(0, 7))));
    }
    SlackTable table{TaskSet(tasks)};
    if (!table.schedulable()) continue;
    for (int q = 0; q < 200; ++q) {
      // Mix fine-grained early times with instants many hyperperiods out.
      const sim::Time t =
          q % 3 == 0 ? table.hyperperiod() * rng.uniform_int(2, 1000) +
                           sim::micros(rng.uniform_int(0, 100'000))
                     : sim::micros(rng.uniform_int(0, 300'000));
      sim::Time expected = sim::Time::max();
      for (std::size_t level = 0; level < table.levels(); ++level) {
        expected = std::min(expected, table.level_slack(level, t));
      }
      EXPECT_EQ(table.slack_at(t, 0), expected) << "t=" << t.ns() << "ns";
    }
  }
}

TEST(SlackTableTest, CumulativeIdleSteadyStateFarBeyondTable) {
  // At t = kH + eps for large k, cumulative idle must equal the folded
  // value plus whole-hyperperiod increments — no drift, no overflow of
  // the fold for k in the millions.
  SlackTable table(TaskSet({task(1, 2, 10), task(2, 3, 20, 20, 3)}));
  ASSERT_TRUE(table.schedulable());
  const sim::Time h = table.hyperperiod();
  for (std::size_t level = 0; level < table.levels(); ++level) {
    const sim::Time per_h =
        table.cumulative_idle(level, h * 2) - table.cumulative_idle(level, h);
    for (const std::int64_t k : {3LL, 7LL, 1000LL, 1'000'000LL}) {
      for (const sim::Time eps : {sim::Time::zero(), sim::micros(1),
                                  sim::millis(4), h - sim::micros(1)}) {
        EXPECT_EQ(table.cumulative_idle(level, h * k + eps),
                  table.cumulative_idle(level, h + eps) + per_h * (k - 1))
            << "level=" << level << " k=" << k << " eps=" << eps.ns();
      }
    }
  }
}

TEST(SlackTableTest, LevelSlackPeriodicInSteadyState) {
  // level_slack and slack_at fold queries at t and t + kH (t >= H) to
  // the same instant, for arbitrarily large k.
  SlackTable table(TaskSet({task(1, 1, 5), task(2, 2, 10, 10, 2)}));
  ASSERT_TRUE(table.schedulable());
  const sim::Time h = table.hyperperiod();
  for (const std::int64_t k : {1LL, 5LL, 12'345LL, 10'000'000LL}) {
    for (const sim::Time eps :
         {sim::Time::zero(), sim::micros(250), sim::millis(3),
          sim::millis(7) + sim::micros(999)}) {
      const sim::Time t = h + eps;
      for (std::size_t level = 0; level < table.levels(); ++level) {
        EXPECT_EQ(table.level_slack(level, t + h * k),
                  table.level_slack(level, t))
            << "level=" << level << " k=" << k << " eps=" << eps.ns();
      }
      EXPECT_EQ(table.slack_at(t + h * k), table.slack_at(t));
    }
  }
}

TEST(SlackTableTest, SharedCacheReturnsSameTableForIdenticalSets) {
  const TaskSet a({task(1, 2, 10), task(2, 3, 20)});
  const TaskSet b({task(2, 3, 20), task(1, 2, 10)});  // same set, any order
  const TaskSet c({task(1, 2, 10), task(2, 4, 20)});  // different wcet
  const auto ta = SlackTable::shared(a);
  const auto tb = SlackTable::shared(b);
  const auto tc = SlackTable::shared(c);
  EXPECT_EQ(ta.get(), tb.get());
  EXPECT_NE(ta.get(), tc.get());
  EXPECT_EQ(ta->hyperperiod(), sim::millis(20));
}

TEST(SlackTableTest, NegativeTimeThrows) {
  SlackTable table(TaskSet({task(1, 2, 10)}));
  EXPECT_THROW((void)table.level_slack(0, sim::millis(-1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace coeff::sched
