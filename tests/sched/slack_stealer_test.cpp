// Tests the runtime slack stealer, including the central safety
// property: any sequence of grants it allows, replayed as top-priority
// inserted blocks in the exact schedule simulator, never causes a
// periodic deadline miss.
#include "sched/slack_stealer.hpp"

#include <gtest/gtest.h>

#include "sched/periodic_schedule.hpp"
#include "sim/random.hpp"

namespace coeff::sched {
namespace {

PeriodicTask task(int id, int wcet_ms, int period_ms, int deadline_ms = 0,
                  int offset_ms = 0) {
  PeriodicTask t;
  t.id = id;
  t.wcet = sim::millis(wcet_ms);
  t.period = sim::millis(period_ms);
  t.deadline = deadline_ms > 0 ? sim::millis(deadline_ms)
                               : sim::millis(period_ms);
  t.offset = sim::millis(offset_ms);
  return t;
}

TEST(SlackStealerTest, UnschedulableSetRejectedAtConstruction) {
  TaskSet set({task(1, 3, 4), task(2, 3, 8, 8)});
  EXPECT_THROW(SlackStealer{set}, std::invalid_argument);
}

TEST(SlackStealerTest, AvailableMatchesTableInitially) {
  TaskSet set({task(1, 2, 10)});
  SlackStealer stealer(set);
  EXPECT_EQ(stealer.available(sim::Time::zero()), sim::millis(8));
}

TEST(SlackStealerTest, StealReducesAvailability) {
  TaskSet set({task(1, 2, 10)});
  SlackStealer stealer(set);
  EXPECT_TRUE(stealer.try_steal(sim::Time::zero(), sim::millis(3)));
  EXPECT_EQ(stealer.available(sim::Time::zero()), sim::millis(5));
}

TEST(SlackStealerTest, OverStealRefused) {
  TaskSet set({task(1, 2, 10)});
  SlackStealer stealer(set);
  EXPECT_FALSE(stealer.try_steal(sim::Time::zero(), sim::millis(9)));
  // Refusal must not consume anything.
  EXPECT_EQ(stealer.available(sim::Time::zero()), sim::millis(8));
}

TEST(SlackStealerTest, DebtAbsorbedByPassingIdleTime) {
  TaskSet set({task(1, 2, 10)});
  SlackStealer stealer(set);
  ASSERT_TRUE(stealer.try_steal(sim::Time::zero(), sim::millis(8)));
  EXPECT_EQ(stealer.available(sim::Time::zero()), sim::Time::zero());
  // By t = 12 ms the schedule has idled 8 ms (at 10..12 the second job
  // runs): debt fully absorbed, and the next deadline (20 ms) allows
  // idle (12, 20] = 8 ms again.
  EXPECT_EQ(stealer.available(sim::millis(12)), sim::millis(8));
}

TEST(SlackStealerTest, TimeMustNotMoveBackwards) {
  TaskSet set({task(1, 2, 10)});
  SlackStealer stealer(set);
  (void)stealer.available(sim::millis(5));
  EXPECT_THROW((void)stealer.available(sim::millis(1)),
               std::invalid_argument);
}

TEST(SlackStealerTest, NegativeStealRejected) {
  TaskSet set({task(1, 2, 10)});
  SlackStealer stealer(set);
  EXPECT_THROW(stealer.try_steal(sim::Time::zero(), sim::millis(-1)),
               std::invalid_argument);
}

TEST(SlackStealerTest, GrantedStealsAreSafe_Property) {
  // Replay randomized grant sequences into the exact simulator: no
  // periodic deadline may ever be missed.
  sim::Rng rng(17);
  int granted_total = 0;
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<PeriodicTask> tasks;
    const int n = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < n; ++i) {
      const int period = static_cast<int>(rng.uniform_int(1, 4)) * 8;
      const int wcet = static_cast<int>(rng.uniform_int(1, 3));
      const int offset = static_cast<int>(rng.uniform_int(0, 4));
      tasks.push_back(task(i, wcet, period, 0, offset));
    }
    TaskSet set(tasks);
    SlackTable probe(set);
    if (!probe.schedulable()) continue;

    SlackStealer stealer(set);
    std::vector<InsertedBlock> blocks;
    sim::Time t = sim::Time::zero();
    const sim::Time horizon = set.hyperperiod() * 2;
    while (t < horizon) {
      const auto want = sim::millis(rng.uniform_int(1, 4));
      if (stealer.try_steal(t, want)) {
        blocks.push_back({t, want});
        ++granted_total;
        t += want;  // the stolen block occupies the bus
      }
      t += sim::millis(rng.uniform_int(1, 6));
    }
    const auto result = simulate_periodic(set, horizon + set.hyperperiod(),
                                          blocks);
    EXPECT_FALSE(result.any_deadline_missed)
        << "trial " << trial << " with " << blocks.size() << " steals";
  }
  EXPECT_GT(granted_total, 50);  // the property must not pass vacuously
}

TEST(SlackStealerTest, ExactnessOnSingleTask) {
  // For one task the safe limit is exactly the idle before each
  // deadline; stealing the full availability then one more unit must be
  // refused.
  TaskSet set({task(1, 4, 10)});
  SlackStealer stealer(set);
  const auto avail = stealer.available(sim::Time::zero());
  EXPECT_EQ(avail, sim::millis(6));
  EXPECT_TRUE(stealer.try_steal(sim::Time::zero(), avail));
  EXPECT_FALSE(stealer.try_steal(sim::Time::zero(), sim::micros(1)));
}

TEST(SlackStealerTest, HardAdmissionRespectsDeadline) {
  TaskSet set({task(1, 2, 10)});
  SlackStealer stealer(set);
  // 3 ms of work by t=20: fits (slack 8).
  EXPECT_TRUE(stealer.admit_hard(sim::Time::zero(), sim::millis(3),
                                 sim::millis(20)));
  EXPECT_EQ(stealer.hard_backlog(), sim::millis(3));
  // 2 ms more by t=4: backlog 3 + 2 = 5 > 4 -> too late even though
  // slack exists.
  EXPECT_FALSE(stealer.admit_hard(sim::millis(0), sim::millis(2),
                                  sim::millis(4)));
}

TEST(SlackStealerTest, HardAdmissionRespectsSlack) {
  TaskSet set({task(1, 2, 10)});
  SlackStealer stealer(set);
  EXPECT_TRUE(stealer.admit_hard(sim::Time::zero(), sim::millis(8),
                                 sim::seconds(1)));
  // Slack exhausted: even a tiny job with a huge deadline is refused.
  EXPECT_FALSE(stealer.admit_hard(sim::Time::zero(), sim::millis(1),
                                  sim::seconds(1)));
}

TEST(SlackStealerTest, ExecutedBacklogFreesAdmission) {
  TaskSet set({task(1, 2, 10)});
  SlackStealer stealer(set);
  ASSERT_TRUE(stealer.admit_hard(sim::Time::zero(), sim::millis(4),
                                 sim::millis(9)));
  stealer.on_hard_executed(sim::millis(4));
  EXPECT_EQ(stealer.hard_backlog(), sim::Time::zero());
  // After idle absorbs the debt, admission opens up again.
  EXPECT_TRUE(stealer.admit_hard(sim::millis(12), sim::millis(4),
                                 sim::millis(19)));
}

TEST(SlackStealerTest, ExecutingMoreThanBacklogThrows) {
  TaskSet set({task(1, 2, 10)});
  SlackStealer stealer(set);
  EXPECT_THROW(stealer.on_hard_executed(sim::millis(1)),
               std::invalid_argument);
}

TEST(SlackStealerTest, NonPositiveHardWorkThrows) {
  TaskSet set({task(1, 2, 10)});
  SlackStealer stealer(set);
  EXPECT_THROW(stealer.admit_hard(sim::Time::zero(), sim::Time::zero(),
                                  sim::millis(5)),
               std::invalid_argument);
}

TEST(SlackStealerTest, DebtAbsorptionAcrossHyperperiodWraps) {
  // Steal the full slack many hyperperiods into steady state, then let
  // wall-clock cross hyperperiod boundaries: the debt must be absorbed
  // by the folded idle curve exactly as it is inside the table window.
  TaskSet set({task(1, 2, 10)});
  SlackStealer stealer(set);
  const sim::Time h = stealer.table().hyperperiod();
  const sim::Time t0 = h * 1'000'000;  // far beyond the 3H table
  EXPECT_EQ(stealer.available(t0), sim::millis(8));
  ASSERT_TRUE(stealer.try_steal(t0, sim::millis(8)));
  EXPECT_EQ(stealer.available(t0), sim::Time::zero());
  // Crossing into the next hyperperiod: by t0 + 12ms the schedule has
  // idled 8 ms (job runs in [10, 12) of each period), absorbing the
  // debt; the next deadline then re-opens the full 8 ms.
  EXPECT_EQ(stealer.available(t0 + sim::millis(12)), sim::millis(8));
  // And the cycle repeats wrap after wrap.
  ASSERT_TRUE(stealer.try_steal(t0 + h * 3, sim::millis(8)));
  EXPECT_EQ(stealer.available(t0 + h * 3), sim::Time::zero());
  EXPECT_EQ(stealer.available(t0 + h * 5), sim::millis(8));
}

TEST(SlackStealerTest, SteadyStateAvailabilityMatchesEarlyWindow) {
  // A stealer driven k hyperperiods late must see the same availability
  // sequence as one driven inside the table window.
  TaskSet set({task(1, 1, 5), task(2, 2, 10, 10, 2)});
  SlackStealer early(set);
  SlackStealer late(set);
  const sim::Time h = early.table().hyperperiod();
  const sim::Time shift = h * 987'654;
  for (int step = 0; step < 40; ++step) {
    const sim::Time t = h + sim::micros(step * 400);
    EXPECT_EQ(early.available(t), late.available(t + shift))
        << "step " << step;
    if (step % 7 == 3) {
      const sim::Time x = sim::micros(200);
      EXPECT_EQ(early.try_steal(t, x), late.try_steal(t + shift, x));
    }
  }
}

TEST(SlackStealerTest, HardAdmissionAcrossWrapBoundary) {
  // Admission charged right before a hyperperiod boundary is honored on
  // the other side: the debt survives the fold and keeps later
  // admissions honest.
  TaskSet set({task(1, 2, 10)});
  SlackStealer stealer(set);
  const sim::Time h = stealer.table().hyperperiod();
  const sim::Time t = h * 424'242 - sim::millis(1);  // 1 ms before a wrap
  // Only the 1 ms of idle left before the imminent deadline is
  // admissible, exactly as inside the table window.
  EXPECT_EQ(stealer.available(t), sim::millis(1));
  EXPECT_FALSE(stealer.admit_hard(t, sim::millis(2), t + sim::millis(30)));
  ASSERT_TRUE(stealer.admit_hard(t, sim::millis(1), t + sim::millis(30)));
  EXPECT_EQ(stealer.available(t), sim::Time::zero());
  stealer.on_hard_executed(sim::millis(1));
  // The idle minute right before the boundary absorbs the debt; on the
  // far side of the wrap the full per-period slack is open again.
  EXPECT_EQ(stealer.available(t + sim::millis(1)), sim::millis(8));
}

TEST(SlackStealerTest, LevelRestrictedStealIgnoresHigherLevels) {
  // Stealing at level 1 may not be limited by level 0's deadlines.
  TaskSet set({task(1, 1, 5), task(2, 2, 20)});
  SlackStealer stealer(set);
  const auto all = stealer.available(sim::Time::zero(), 0);
  const auto low = stealer.available(sim::Time::zero(), 1);
  EXPECT_GE(low, all);
}

}  // namespace
}  // namespace coeff::sched
